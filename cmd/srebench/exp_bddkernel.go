package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"sre"
	"sre/internal/workload"
)

// bddKernelExp measures the overhauled BDD kernel (relational product,
// generation-stamped memo tables, GC-surviving operation cache, balanced
// folds) against the pre-overhaul kernel kept behind
// Options.LegacyBDDKernel. Each cell runs the same verification and
// analysis sweep twice at Parallelism 1 — once per kernel — and
// cross-checks an order-independent result signature before reporting
// the wall-clock ratio; BDD canonicity guarantees the signatures match,
// and the check enforces it.
//
// The node-limited cells size the node table so the manager collects
// several times mid-run: that is where the sweeping cache invalidation
// pays (the legacy kernel rewarms a cold cache after every GC), visible
// in the post-GC hit-ratio column.
func bddKernelExp(sc scale) {
	header("BDD kernel — overhauled vs legacy, parallelism 1")
	type wl struct {
		name      string
		arity     int
		k         int
		nodeLimit int
	}
	wls := []wl{
		{"FatTree(4) k=2 unconstrained", 4, 2, 0},
		{"FatTree(4) k=3 limit=300k", 4, 3, 300000},
		{"FatTree(6) k=1 limit=700k", 6, 1, 700000},
	}
	if sc.paper {
		wls = append(wls, wl{"FatTree(6) k=2 limit=4.5M", 6, 2, 4500000})
	}
	t := newTable("dataset", "legacy", "overhauled", "speedup", "identical", "postGC-hit")
	ct := newCellTimer()
	for _, w := range wls {
		var legacySec, newSec float64
		var legacySig, newSig string
		var legacyErr, newErr error
		var legacyCell, newCell bddKernelResult
		// The kernel comparison pins declaration order on both sides so
		// its goldens stay comparable to pre-order-sweep baselines.
		ct.run("legacy", func() {
			legacyCell = bddKernelCell(w.arity, w.k, w.nodeLimit, true, "declaration", false)
			legacySec, legacySig, legacyErr = legacyCell.seconds, legacyCell.sig, legacyCell.err
		})
		ct.run("overhauled", func() {
			newCell = bddKernelCell(w.arity, w.k, w.nodeLimit, false, "declaration", false)
			newSec, newSig, newErr = newCell.seconds, newCell.sig, newCell.err
		})
		outcome := func(err error) string {
			if err != nil {
				return "error"
			}
			return "ok"
		}
		identical := legacyErr == nil && newErr == nil && legacySig == newSig
		speedup := 0.0
		if legacyErr == nil && newErr == nil && newSec > 0 {
			speedup = legacySec / newSec
		}
		record(benchRow{Experiment: "bddkernel", Dataset: w.name, System: "legacy",
			K: w.k, Seconds: legacySec, Parallelism: 1,
			PeakBDDNodes: legacyCell.peakNodes, TotalBDDNodes: legacyCell.liveNodes,
			CacheHitRatio: legacyCell.hitRatio,
			GCRuns: legacyCell.gcRuns, Outcome: outcome(legacyErr)})
		record(benchRow{Experiment: "bddkernel", Dataset: w.name, System: "overhauled",
			K: w.k, Seconds: newSec, Parallelism: 1,
			PeakBDDNodes: newCell.peakNodes, TotalBDDNodes: newCell.liveNodes,
			CacheHitRatio: newCell.hitRatio,
			GCRuns: newCell.gcRuns, Speedup: speedup, ResultsIdentical: identical,
			Outcome: outcome(newErr)})
		if legacyErr != nil {
			fmt.Printf("  %s legacy: %v\n", w.name, legacyErr)
		}
		if newErr != nil {
			fmt.Printf("  %s overhauled: %v\n", w.name, newErr)
		}
		t.addf("%s|%.2fs|%.2fs|%.2fx|%v|%.0f%%", w.name, legacySec, newSec,
			speedup, identical, newCell.postGCHit*100)
	}
	t.print()
	bddOrderSweep(sc)
}

// bddOrderSweep measures the variable-order tentpole: the same
// verification and analysis sweep on the flat kernel under every
// ordering method, unconstrained (a node limit caps PeakNodes at the
// limit, hiding exactly the differences the sweep exists to surface).
// Result signatures are cross-checked against declaration order —
// orders relocate variables, they must never move an answer — and peak
// and final live node counts are recorded per order.
//
// With -order-baseline set, the sweep doubles as a regression gate: the
// auto order must stay within 10% of the baseline file's auto peak node
// count per dataset, and within 10% of this run's declaration order.
func bddOrderSweep(sc scale) {
	header("BDD variable order — peak/total nodes per order, parallelism 1")
	type wl struct {
		name  string
		arity int
		k     int
	}
	wls := []wl{
		{"FatTree(4) k=2 unconstrained", 4, 2},
		{"FatTree(6) k=1 unconstrained", 6, 1},
	}
	orders := []string{"declaration", "bfs", "mindeg", "auto"}
	t := newTable("dataset", "order", "time", "peak nodes", "total nodes", "identical")
	ct := newCellTimer()
	for _, w := range wls {
		var declSig string
		var declSec float64
		var declPeak, autoPeak int
		for _, ord := range orders {
			var cell bddKernelResult
			ct.run("order:"+ord, func() {
				cell = bddKernelCell(w.arity, w.k, 0, false, ord, false)
			})
			identical := cell.err == nil && (ord == "declaration" || cell.sig == declSig)
			speedup := 0.0
			switch {
			case ord == "declaration":
				declSig, declSec, declPeak = cell.sig, cell.seconds, cell.peakNodes
			case cell.err == nil && cell.seconds > 0:
				speedup = declSec / cell.seconds
			}
			if ord == "auto" {
				autoPeak = cell.peakNodes
			}
			outcome := "ok"
			if cell.err != nil {
				outcome = "error"
				fmt.Printf("  %s %s: %v\n", w.name, ord, cell.err)
			} else if !identical {
				outcome = "mismatch"
				gateFailed = true
				fmt.Printf("  %s %s: RESULT SIGNATURE DIVERGES FROM DECLARATION ORDER\n", w.name, ord)
			}
			record(benchRow{Experiment: "bddkernel", Dataset: w.name,
				System: "order:" + ord, K: w.k, Seconds: cell.seconds, Parallelism: 1,
				PeakBDDNodes: cell.peakNodes, TotalBDDNodes: cell.liveNodes,
				CacheHitRatio: cell.hitRatio, GCRuns: cell.gcRuns,
				Speedup: speedup, ResultsIdentical: identical, Outcome: outcome})
			t.addf("%s|%s|%.2fs|%d|%d|%v", w.name, ord, cell.seconds,
				cell.peakNodes, cell.liveNodes, identical)
		}
		gateOrderPeaks(w.name, declPeak, autoPeak)
	}
	t.print()
	bddReorderSweep(sc)
}

// bddReorderSweep measures dynamic reordering: the same sweep on the
// flat kernel under declaration order, with and without sifting armed,
// unconstrained so PeakNodes reflects the diagrams rather than a cap.
// The reordered cell's signature is cross-checked against the static
// one — sifting relocates variables, it must never move an answer —
// and both peak and post-sift (final live) node counts are recorded.
//
// With -order-baseline set, the reordered cell's wall clock is gated
// against the committed baseline's own reorder:on cell: it must stay
// within 10% (plus a half-second floor so millisecond cells cannot
// flake the gate). The same-run static cell is reported but not gated
// — sifting deliberately trades some wall clock for peak memory, and
// that trade is pinned by the baseline, not by a fixed ratio.
func bddReorderSweep(sc scale) {
	header("BDD dynamic reordering — declaration order ± sifting, parallelism 1")
	type wl struct {
		name  string
		arity int
		k     int
	}
	wls := []wl{
		{"FatTree(4) k=2 unconstrained", 4, 2},
		{"FatTree(6) k=1 unconstrained", 6, 1},
	}
	t := newTable("dataset", "reorder", "time", "peak nodes", "post-sift nodes", "passes/sifts", "identical")
	ct := newCellTimer()
	for _, w := range wls {
		var offSig string
		var offSec float64
		for _, on := range []bool{false, true} {
			label := "off"
			if on {
				label = "on"
			}
			var cell bddKernelResult
			ct.run("reorder:"+label, func() {
				cell = bddKernelCell(w.arity, w.k, 0, false, "declaration", on)
			})
			identical := cell.err == nil && (!on || cell.sig == offSig)
			speedup := 0.0
			if !on {
				offSig, offSec = cell.sig, cell.seconds
			} else if cell.err == nil && cell.seconds > 0 {
				speedup = offSec / cell.seconds
			}
			outcome := "ok"
			if cell.err != nil {
				outcome = "error"
				fmt.Printf("  %s reorder:%s: %v\n", w.name, label, cell.err)
			} else if !identical {
				outcome = "mismatch"
				gateFailed = true
				fmt.Printf("  %s reorder:on: RESULT SIGNATURE DIVERGES FROM STATIC RUN\n", w.name)
			}
			record(benchRow{Experiment: "bddkernel", Dataset: w.name,
				System: "reorder:" + label, K: w.k, Seconds: cell.seconds, Parallelism: 1,
				PeakBDDNodes: cell.peakNodes, TotalBDDNodes: cell.liveNodes,
				CacheHitRatio: cell.hitRatio, GCRuns: cell.gcRuns,
				Speedup: speedup, ResultsIdentical: identical, Outcome: outcome})
			t.addf("%s|%s|%.2fs|%d|%d|%d/%d|%v", w.name, label, cell.seconds,
				cell.peakNodes, cell.liveNodes, cell.reorders, cell.siftedVars, identical)
			if on && cell.err == nil {
				gateReorderSeconds(w.name, cell.seconds)
			}
		}
	}
	t.print()
}

// gateReorderSeconds enforces the reordering wall-clock gate: with
// -order-baseline set, the reordered run must stay within 10% (plus a
// 0.5s small-cell floor) of the committed baseline's reorder:on cell
// for the same dataset.
func gateReorderSeconds(dataset string, onSec float64) {
	slack := func(base float64) float64 {
		s := base * 0.10
		if s < 0.5 {
			s = 0.5
		}
		return s
	}
	if *orderBaseline == "" {
		return
	}
	base, err := loadBaselineRows(*orderBaseline)
	if err != nil {
		fmt.Printf("  GATE: cannot read -order-baseline: %v\n", err)
		gateFailed = true
		return
	}
	for _, r := range base {
		if r.Experiment == "bddkernel" && r.Dataset == dataset &&
			r.System == "reorder:on" && r.Seconds > 0 {
			if onSec > r.Seconds+slack(r.Seconds) {
				fmt.Printf("  GATE: %s reorder:on %.2fs regresses >10%% vs baseline %.2fs\n",
					dataset, onSec, r.Seconds)
				gateFailed = true
			}
			return
		}
	}
	// No reorder rows in the baseline: the first recording run
	// bootstraps them, nothing to gate against yet.
}

// gateOrderPeaks enforces the -order-baseline regression gate for one
// dataset's sweep.
func gateOrderPeaks(dataset string, declPeak, autoPeak int) {
	if autoPeak > declPeak+declPeak/10 {
		fmt.Printf("  GATE: %s auto peak %d exceeds declaration %d by >10%%\n",
			dataset, autoPeak, declPeak)
		gateFailed = true
	}
	if *orderBaseline == "" {
		return
	}
	base, err := loadBaselineRows(*orderBaseline)
	if err != nil {
		fmt.Printf("  GATE: cannot read -order-baseline: %v\n", err)
		gateFailed = true
		return
	}
	for _, r := range base {
		if r.Experiment == "bddkernel" && r.Dataset == dataset &&
			r.System == "order:auto" && r.PeakBDDNodes > 0 {
			if autoPeak > r.PeakBDDNodes+r.PeakBDDNodes/10 {
				fmt.Printf("  GATE: %s auto peak %d regresses >10%% vs baseline %d\n",
					dataset, autoPeak, r.PeakBDDNodes)
				gateFailed = true
			}
			return
		}
	}
	// A baseline without auto rows for this dataset gates nothing —
	// the first recording run bootstraps it.
}

// loadBaselineRows reads a committed BENCH_*.json row array.
func loadBaselineRows(path string) ([]benchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// bddKernelResult is one measured kernel cell.
type bddKernelResult struct {
	seconds    float64
	sig        string
	peakNodes  int
	liveNodes  int
	hitRatio   float64
	postGCHit  float64
	gcRuns     int
	reorders   int // sifting passes that fired
	siftedVars int
	err        error
}

// bddKernelCell runs pipeline construction plus the FPA sweep the
// overhaul targets — forwarding classes for every source (SatCount and
// shortest witness paths per PFEC), failure tolerances, and property
// probabilities — on one kernel. Everything the signature hashes is
// deterministic at parallelism 1.
func bddKernelCell(arity, k, nodeLimit int, legacy bool, varOrder string, reorder bool) bddKernelResult {
	net := workload.FatTree(arity, workload.BGP)
	opts := sre.Options{MaxFailures: k, BDDNodeLimit: nodeLimit,
		Parallelism: 1, LegacyBDDKernel: legacy, VarOrder: varOrder,
		DynamicReorder: reorder, Timeout: *deadline}
	start := time.Now()
	v, err := sre.NewVerifier(net, opts)
	if err != nil {
		return bddKernelResult{seconds: time.Since(start).Seconds(), err: err}
	}
	defer v.Release()
	var lines []string
	for _, src := range v.RouterNames() {
		classes, cerr := v.ForwardingClasses(src)
		if cerr != nil {
			return bddKernelResult{seconds: time.Since(start).Seconds(), err: cerr}
		}
		var pkts, scens float64
		minFail := 0
		for _, c := range classes {
			pkts += c.Packets
			scens += c.Scenarios
			minFail += c.MinFailures
		}
		lines = append(lines, fmt.Sprintf("classes:%s:%d pkts:%g scen:%g minfail:%d",
			src, len(classes), pkts, scens, minFail))
	}
	for _, src := range v.RouterNames() {
		if !strings.HasPrefix(src, "edge") {
			continue
		}
		tols, terr := v.FailureTolerances(src)
		if terr != nil {
			return bddKernelResult{seconds: time.Since(start).Seconds(), err: terr}
		}
		for _, r := range tols {
			if r.Err != nil {
				lines = append(lines, "tol:"+src+":"+r.Prefix+"=err")
				continue
			}
			lines = append(lines, fmt.Sprintf("tol:%s:%s=%d", src, r.Prefix, r.Value))
			p, perr := v.Probability(src, r.Prefix, sre.LinkFailures(0.001))
			if perr != nil {
				lines = append(lines, "prob:"+src+":"+r.Prefix+"=err")
				continue
			}
			lines = append(lines, fmt.Sprintf("prob:%s:%s=%.12g", src, r.Prefix, p))
		}
	}
	sec := time.Since(start).Seconds()
	sort.Strings(lines)
	met := v.Metrics()
	res := bddKernelResult{
		seconds:    sec,
		sig:        strings.Join(lines, ";"),
		peakNodes:  met.BDD.PeakNodes,
		liveNodes:  met.BDD.LiveNodes,
		hitRatio:   met.BDD.CacheHitRatio,
		postGCHit:  met.BDD.PostGCCacheHitRatio,
		gcRuns:     met.BDD.GCRuns,
		reorders:   met.BDD.Reorders,
		siftedVars: met.BDD.SiftedVars,
	}
	if math.IsNaN(res.hitRatio) {
		res.hitRatio = 0
	}
	return res
}

package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sre"
	"sre/internal/workload"
)

// bddKernelExp measures the overhauled BDD kernel (relational product,
// generation-stamped memo tables, GC-surviving operation cache, balanced
// folds) against the pre-overhaul kernel kept behind
// Options.LegacyBDDKernel. Each cell runs the same verification and
// analysis sweep twice at Parallelism 1 — once per kernel — and
// cross-checks an order-independent result signature before reporting
// the wall-clock ratio; BDD canonicity guarantees the signatures match,
// and the check enforces it.
//
// The node-limited cells size the node table so the manager collects
// several times mid-run: that is where the sweeping cache invalidation
// pays (the legacy kernel rewarms a cold cache after every GC), visible
// in the post-GC hit-ratio column.
func bddKernelExp(sc scale) {
	header("BDD kernel — overhauled vs legacy, parallelism 1")
	type wl struct {
		name      string
		arity     int
		k         int
		nodeLimit int
	}
	wls := []wl{
		{"FatTree(4) k=2 unconstrained", 4, 2, 0},
		{"FatTree(4) k=3 limit=300k", 4, 3, 300000},
		{"FatTree(6) k=1 limit=700k", 6, 1, 700000},
	}
	if sc.paper {
		wls = append(wls, wl{"FatTree(6) k=2 limit=4.5M", 6, 2, 4500000})
	}
	t := newTable("dataset", "legacy", "overhauled", "speedup", "identical", "postGC-hit")
	ct := newCellTimer()
	for _, w := range wls {
		var legacySec, newSec float64
		var legacySig, newSig string
		var legacyErr, newErr error
		var legacyCell, newCell bddKernelResult
		ct.run("legacy", func() {
			legacyCell = bddKernelCell(w.arity, w.k, w.nodeLimit, true)
			legacySec, legacySig, legacyErr = legacyCell.seconds, legacyCell.sig, legacyCell.err
		})
		ct.run("overhauled", func() {
			newCell = bddKernelCell(w.arity, w.k, w.nodeLimit, false)
			newSec, newSig, newErr = newCell.seconds, newCell.sig, newCell.err
		})
		outcome := func(err error) string {
			if err != nil {
				return "error"
			}
			return "ok"
		}
		identical := legacyErr == nil && newErr == nil && legacySig == newSig
		speedup := 0.0
		if legacyErr == nil && newErr == nil && newSec > 0 {
			speedup = legacySec / newSec
		}
		record(benchRow{Experiment: "bddkernel", Dataset: w.name, System: "legacy",
			K: w.k, Seconds: legacySec, Parallelism: 1,
			PeakBDDNodes: legacyCell.peakNodes, CacheHitRatio: legacyCell.hitRatio,
			GCRuns: legacyCell.gcRuns, Outcome: outcome(legacyErr)})
		record(benchRow{Experiment: "bddkernel", Dataset: w.name, System: "overhauled",
			K: w.k, Seconds: newSec, Parallelism: 1,
			PeakBDDNodes: newCell.peakNodes, CacheHitRatio: newCell.hitRatio,
			GCRuns: newCell.gcRuns, Speedup: speedup, ResultsIdentical: identical,
			Outcome: outcome(newErr)})
		if legacyErr != nil {
			fmt.Printf("  %s legacy: %v\n", w.name, legacyErr)
		}
		if newErr != nil {
			fmt.Printf("  %s overhauled: %v\n", w.name, newErr)
		}
		t.addf("%s|%.2fs|%.2fs|%.2fx|%v|%.0f%%", w.name, legacySec, newSec,
			speedup, identical, newCell.postGCHit*100)
	}
	t.print()
}

// bddKernelResult is one measured kernel cell.
type bddKernelResult struct {
	seconds   float64
	sig       string
	peakNodes int
	hitRatio  float64
	postGCHit float64
	gcRuns    int
	err       error
}

// bddKernelCell runs pipeline construction plus the FPA sweep the
// overhaul targets — forwarding classes for every source (SatCount and
// shortest witness paths per PFEC), failure tolerances, and property
// probabilities — on one kernel. Everything the signature hashes is
// deterministic at parallelism 1.
func bddKernelCell(arity, k, nodeLimit int, legacy bool) bddKernelResult {
	net := workload.FatTree(arity, workload.BGP)
	opts := sre.Options{MaxFailures: k, BDDNodeLimit: nodeLimit,
		Parallelism: 1, LegacyBDDKernel: legacy, Timeout: *deadline}
	start := time.Now()
	v, err := sre.NewVerifier(net, opts)
	if err != nil {
		return bddKernelResult{seconds: time.Since(start).Seconds(), err: err}
	}
	defer v.Release()
	var lines []string
	for _, src := range v.RouterNames() {
		classes, cerr := v.ForwardingClasses(src)
		if cerr != nil {
			return bddKernelResult{seconds: time.Since(start).Seconds(), err: cerr}
		}
		var pkts, scens float64
		minFail := 0
		for _, c := range classes {
			pkts += c.Packets
			scens += c.Scenarios
			minFail += c.MinFailures
		}
		lines = append(lines, fmt.Sprintf("classes:%s:%d pkts:%g scen:%g minfail:%d",
			src, len(classes), pkts, scens, minFail))
	}
	for _, src := range v.RouterNames() {
		if !strings.HasPrefix(src, "edge") {
			continue
		}
		tols, terr := v.FailureTolerances(src)
		if terr != nil {
			return bddKernelResult{seconds: time.Since(start).Seconds(), err: terr}
		}
		for _, r := range tols {
			if r.Err != nil {
				lines = append(lines, "tol:"+src+":"+r.Prefix+"=err")
				continue
			}
			lines = append(lines, fmt.Sprintf("tol:%s:%s=%d", src, r.Prefix, r.Value))
			p, perr := v.Probability(src, r.Prefix, sre.LinkFailures(0.001))
			if perr != nil {
				lines = append(lines, "prob:"+src+":"+r.Prefix+"=err")
				continue
			}
			lines = append(lines, fmt.Sprintf("prob:%s:%s=%.12g", src, r.Prefix, p))
		}
	}
	sec := time.Since(start).Seconds()
	sort.Strings(lines)
	met := v.Metrics()
	res := bddKernelResult{
		seconds:   sec,
		sig:       strings.Join(lines, ";"),
		peakNodes: met.BDD.PeakNodes,
		hitRatio:  met.BDD.CacheHitRatio,
		postGCHit: met.BDD.PostGCCacheHitRatio,
		gcRuns:    met.BDD.GCRuns,
	}
	if math.IsNaN(res.hitRatio) {
		res.hitRatio = 0
	}
	return res
}

package main

import (
	"fmt"

	"sre/internal/analysis"
	"sre/internal/baselines"
	"sre/internal/config"
	"sre/internal/src"
	"sre/internal/topology"
	"sre/internal/workload"
)

// reachDatasets returns the Figure 5/6 datasets: three WANs plus fat
// trees, all running BGP.
func reachDatasets(sc scale) []struct {
	name string
	net  *config.Network
} {
	out := []struct {
		name string
		net  *config.Network
	}{
		{"WAN-small(Bics)", workload.WAN(workload.Bics, workload.BGP)},
	}
	if sc.paper {
		out = append(out,
			struct {
				name string
				net  *config.Network
			}{"WAN-medium(Columbus)", workload.WAN(workload.Columbus, workload.BGP)},
			struct {
				name string
				net  *config.Network
			}{"WAN-large(USCarrier)", workload.WAN(workload.USCarrier, workload.BGP)},
		)
	}
	for _, k := range sc.fatTrees {
		out = append(out, struct {
			name string
			net  *config.Network
		}{fmt.Sprintf("FatTree(%d)", workload.FatTreeNodes(k)), workload.FatTree(k, workload.BGP)})
	}
	return out
}

// sreAllPairs runs the full SRE pipeline and checks all-pairs
// reachability under budget k.
func sreAllPairs(net *config.Network, k int, abstract bool) (map[analysis.PairKey]bool, error) {
	pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: k, Abstract: abstract}))
	if err != nil {
		return nil, err
	}
	defer pipe.Release()
	return pipe.AllPairsReachable(k), nil
}

// fig5 reproduces Figure 5: time to check all-pairs reachability under
// k link failures, for SRE, Batfish, Minesweeper and Tiramisu.
func fig5(sc scale) {
	header("Figure 5 — all-pairs reachability under k failures (time per system)")
	for _, ds := range reachDatasets(sc) {
		fmt.Printf("\n%s: %d routers, %d links, %d prefixes\n", ds.name,
			ds.net.Topology.NumRouters(), ds.net.Topology.NumLinks(), len(ds.net.AllPrefixes()))
		t := newTable("k", "SRE", "Batfish", "Minesweeper", "Tiramisu")
		ct := newCellTimer()
		abstract := ds.name[0] == 'F' // fat trees benefit from abstraction
		for k := 0; k <= sc.maxK; k++ {
			sreT := ct.run("sre", func() {
				if _, err := sreAllPairs(ds.net, k, abstract); err != nil {
					fmt.Printf("  SRE error at k=%d: %v\n", k, err)
				}
			})
			bfT := ct.run("batfish", func() {
				bf := &baselines.Batfish{Net: ds.net}
				bf.AllPairsReachableUnderK(k)
			})
			msT := ct.run("minesweeper", func() {
				ms := &baselines.Minesweeper{Net: ds.net}
				ms.AllPairsReachableUnderK(k)
			})
			tiT := ct.run("tiramisu", func() {
				ti := &baselines.Tiramisu{Net: ds.net}
				ti.AllPairsReachableUnderK(k)
			})
			t.add(fmt.Sprint(k), sreT, bfT, msT, tiT)
		}
		t.print()
	}
}

// fig6 reproduces Figure 6: single-pair reachability under k failures.
func fig6(sc scale) {
	header("Figure 6 — single-pair reachability under k failures (time per system)")
	for _, ds := range reachDatasets(sc) {
		net := ds.net
		// Deterministic pair: router 0 towards the last originated prefix.
		prefixes := net.AllPrefixes()
		pfx := prefixes[len(prefixes)-1]
		var srcID topology.RouterID
		origins := net.OriginsOf(pfx)
		for s := 0; s < net.Topology.NumRouters(); s++ {
			if len(origins) > 0 && topology.RouterID(s) != origins[0] {
				srcID = topology.RouterID(s)
				break
			}
		}
		fmt.Printf("\n%s: %s → %s\n", ds.name, net.Topology.Name(srcID), pfx)
		t := newTable("k", "SRE", "Batfish", "Minesweeper", "Tiramisu")
		ct := newCellTimer()
		for k := 0; k <= sc.maxK; k++ {
			sreT := ct.run("sre", func() {
				pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: k,
					Prefixes: prefixes[len(prefixes)-1:]}))
				if err == nil {
					pipe.PairReachable(srcID, pfx, k)
					pipe.Release()
				}
			})
			bfT := ct.run("batfish", func() {
				bf := &baselines.Batfish{Net: net}
				bf.SinglePairReachableUnderK(srcID, pfx, k)
			})
			msT := ct.run("minesweeper", func() {
				ms := &baselines.Minesweeper{Net: net}
				ms.ReachableUnderK(srcID, pfx, k)
			})
			tiT := ct.run("tiramisu", func() {
				ti := &baselines.Tiramisu{Net: net}
				ti.ReachableUnderK(srcID, pfx, k)
			})
			t.add(fmt.Sprint(k), sreT, bfT, msT, tiT)
		}
		t.print()
	}
}

// Command srebench regenerates every table and figure of the paper's
// evaluation (§8) on the synthetic datasets, printing the same rows or
// series each one reports. Absolute numbers differ from the paper (the
// substrate is this reproduction, not the authors' testbed); the shapes
// — who wins, by what order of magnitude, where crossovers fall — are
// the reproduction target, recorded in EXPERIMENTS.md.
//
// Usage:
//
//	srebench -exp fig5            # one experiment
//	srebench -exp all             # everything
//	srebench -exp fig5 -scale paper -budget 300s
//
// Experiments: fig5 fig6 fig7 fig8 diff fig9 fig10 table2 fig11 table3
// fig13 fig14 parallel bddkernel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/src"
)

var (
	expFlag    = flag.String("exp", "all", "experiment to run (fig5, fig6, fig7, fig8, diff, fig9, fig10, table2, fig11, table3, fig13, fig14, parallel, bddkernel, all)")
	scaleFlag  = flag.String("scale", "small", "workload scale: small (CI-friendly) or paper (full sizes; hours)")
	budget     = flag.Duration("budget", 60*time.Second, "soft per-cell time budget; a system that exceeds it is skipped for larger parameters")
	seedFlag   = flag.Int64("seed", 1, "base seed for randomized selections")
	metricsDir = flag.String("metricsdir", "", "write BENCH_<exp>.json files with per-cell metrics into this directory")
	deadline   = flag.Duration("deadline", 0, "hard per-cell wall-clock deadline enforced inside the symbolic pipeline; an expired cell aborts with a deadline error instead of running away (0 = none). Unlike -budget, which skips future cells, -deadline interrupts a running one.")
	parallelN  = flag.Int("parallel", 4, "worker count for the parallel experiment's concurrent cells (its baseline always runs at 1)")

	// Regression-comparator flags (srebench -compare old new, or
	// srebench -compare -baseline <dir> new).
	compareFlag = flag.Bool("compare", false, "compare two measurement files (BENCH_*.json rows or sre -events-out logs) and report per-stage/per-cell regressions; exits 1 past -threshold, 2 on incomparable environments")
	baselineDir = flag.String("baseline", "", "directory holding baseline BENCH_<exp>.json files; with -compare and a single file argument, the old side is resolved here by experiment name")
	threshold   = flag.Float64("threshold", 1.25, "regression threshold for -compare: new/old wall-time ratio above this fails the comparison")
	topK        = flag.Int("topk", 10, "rows shown in the -compare delta table")
	minDelta    = flag.Duration("mindelta", 10*time.Millisecond, "absolute slowdown below this never fails -compare (noise floor)")
	allowEnvMis = flag.Bool("allow-env-mismatch", false, "downgrade -compare environment mismatches from a refusal (exit 2) to a warning")

	// Variable-order gate (bddkernel experiment): compare the auto
	// order's peak node counts against a committed baseline file.
	orderBaseline = flag.String("order-baseline", "", "path to a committed BENCH_bddkernel.json; the bddkernel experiment's order sweep then fails (exit 1) when the auto order's peak node count regresses more than 10% against the baseline's auto rows, or when auto regresses more than 10% against this run's declaration order")
)

// withResilience arms the -deadline budget on engine options. Each call
// creates a fresh checker, so the deadline applies per measured cell.
func withResilience(o src.Options) src.Options {
	o.Interrupt = resil.NewChecker(nil, *deadline, 0).Fn()
	return o
}

// benchRow is one measured cell of an experiment, written to
// BENCH_<exp>.json when -metricsdir is given.
type benchRow struct {
	Experiment    string  `json:"experiment"`
	Dataset       string  `json:"dataset"`
	System        string  `json:"system,omitempty"`
	K             int     `json:"k"`
	Seconds       float64 `json:"seconds"`
	PeakBDDNodes  int     `json:"peak_bdd_nodes,omitempty"`
	TotalBDDNodes int     `json:"total_bdd_nodes,omitempty"`
	CacheHitRatio float64 `json:"cache_hit_ratio,omitempty"`
	GCRuns        int     `json:"gc_runs,omitempty"`
	// Parallelism/Cores/Speedup/ResultsIdentical are set by the
	// parallel experiment: the worker count of the cell, the CPUs the
	// process could actually use, wall-clock ratio against the
	// sequential baseline, and whether both runs returned identical
	// per-prefix results.
	Parallelism      int     `json:"parallelism,omitempty"`
	Cores            int     `json:"cores,omitempty"`
	Speedup          float64 `json:"speedup,omitempty"`
	ResultsIdentical bool    `json:"results_identical,omitempty"`
	Outcome          string  `json:"outcome"` // ok, bdd-limit, error, skipped
	// Env records the machine and toolchain of the measurement, so
	// `srebench -compare` can refuse apples-to-oranges diffs.
	Env *obs.EnvInfo `json:"env,omitempty"`
}

var (
	benchRows []benchRow
	benchEnv  *obs.EnvInfo
)

// record collects a measurement; a no-op unless -metricsdir is set.
func record(r benchRow) {
	if *metricsDir == "" {
		return
	}
	if benchEnv == nil {
		e := obs.Environment()
		benchEnv = &e
	}
	r.Env = benchEnv
	benchRows = append(benchRows, r)
}

// flushBench writes and clears the collected rows of one experiment.
func flushBench(exp string) {
	rows := benchRows
	benchRows = nil
	if *metricsDir == "" || len(rows) == 0 {
		return
	}
	path := filepath.Join(*metricsDir, "BENCH_"+exp+".json")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srebench:", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fmt.Fprintln(os.Stderr, "srebench:", err)
	}
}

// scale holds the workload sizes per -scale setting.
type scale struct {
	paper       bool
	maxK        int
	fatTrees    []int // arities
	netDiceWANs int
	campusSnaps int
	campusVLANs int
	hoyanPrefix int
}

func getScale() scale {
	switch *scaleFlag {
	case "paper":
		return scale{paper: true, maxK: 3, fatTrees: []int{4, 8, 10, 16, 20}, netDiceWANs: 90, campusSnaps: 67, campusVLANs: 1000, hoyanPrefix: 10}
	default:
		return scale{maxK: 3, fatTrees: []int{4, 8}, netDiceWANs: 3, campusSnaps: 5, campusVLANs: 40, hoyanPrefix: 4}
	}
}

func main() {
	flag.Parse()
	if *compareFlag {
		os.Exit(runCompare(flag.Args()))
	}
	sc := getScale()
	exps := map[string]func(scale){
		"fig5":      fig5,
		"fig6":      fig6,
		"fig7":      fig7,
		"fig8":      fig8,
		"diff":      diffExp,
		"fig9":      fig9,
		"fig10":     fig10,
		"table2":    table2,
		"fig11":     fig11,
		"table3":    table3,
		"fig13":     fig13,
		"fig14":     fig14,
		"parallel":  parallelExp,
		"bddkernel": bddKernelExp,
	}
	order := []string{"fig5", "fig6", "fig7", "fig8", "diff", "fig9", "fig10", "table2", "fig11", "table3", "fig13", "fig14", "parallel", "bddkernel"}
	if *expFlag == "all" {
		for _, name := range order {
			exps[name](sc)
			flushBench(name)
		}
		exitIfGateFailed()
		return
	}
	f, ok := exps[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; one of %s, all\n", *expFlag, strings.Join(order, ", "))
		os.Exit(2)
	}
	f(sc)
	flushBench(*expFlag)
	exitIfGateFailed()
}

// gateFailed is set by experiments that enforce a pass/fail criterion
// (the bddkernel order gate); main turns it into exit status 1 after
// all tables and metrics have been written.
var gateFailed bool

func exitIfGateFailed() {
	if gateFailed {
		fmt.Fprintln(os.Stderr, "srebench: gate failed")
		os.Exit(1)
	}
}

// header prints an experiment banner.
func header(title string) {
	fmt.Printf("\n════ %s ════\n", title)
}

// table is a simple aligned-column printer.
type table struct {
	cols []string
	rows [][]string
}

func newTable(cols ...string) *table { return &table{cols: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) print() {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("─", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// cellTimer tracks per-system soft budgets: once a system blows the
// budget, larger parameters are skipped ("—" cells), mirroring the
// paper's timeout handling.
type cellTimer struct {
	blown map[string]bool
}

func newCellTimer() *cellTimer { return &cellTimer{blown: make(map[string]bool)} }

// run executes f unless the system already blew its budget; it returns
// the formatted duration or a skip marker.
func (ct *cellTimer) run(system string, f func()) string {
	cell, _ := ct.runTimed(system, f)
	return cell
}

// runTimed is run exposing the raw duration (zero when skipped), for
// callers that also record machine-readable metrics.
func (ct *cellTimer) runTimed(system string, f func()) (string, time.Duration) {
	if ct.blown[system] {
		return "—", 0
	}
	start := time.Now()
	f()
	d := time.Since(start)
	if d > *budget {
		ct.blown[system] = true
	}
	return fmtDur(d), d
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d.Milliseconds()))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

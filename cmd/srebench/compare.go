package main

// The regression comparator: `srebench -compare old new` diffs two
// measurement files and attributes the end-to-end delta to individual
// cells (benchmark rows) or stages/prefixes (flight-recorder event
// logs). It understands two formats, auto-detected per file:
//
//   - BENCH_<exp>.json row arrays written by `srebench -metricsdir`
//     (cells keyed by experiment/dataset/system/k);
//   - NDJSON event logs written by `sre -events-out` (wall time
//     aggregated per stage and per prefix).
//
// Environments must match (same CPU, Go version, kernel, ...); a
// mismatch is a refusal (exit 2) unless -allow-env-mismatch downgrades
// it to a warning. A slowdown is a regression when the new/old ratio
// exceeds -threshold AND the absolute delta exceeds -mindelta; any
// regression (or an ok→non-ok outcome flip) exits 1, so CI can gate on
// it. Exit 0 means comparable and within threshold.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sre/internal/obs"
)

// measurement is one comparable quantity extracted from a file.
type measurement struct {
	seconds float64
	outcome string
}

// measureSet is the parsed, keyed content of one measurement file.
type measureSet struct {
	path  string
	kind  string // "bench" or "events"
	env   obs.EnvInfo
	m     map[string]measurement
	order []string // insertion order, for stable output
	// experiment is the experiment name of a bench file (baseline
	// resolution); empty for event logs.
	experiment string
}

func (s *measureSet) add(key string, sec float64, outcome string) {
	if _, ok := s.m[key]; !ok {
		s.order = append(s.order, key)
	}
	prev := s.m[key]
	if prev.outcome == "" || prev.outcome == "ok" {
		prev.outcome = outcome
	}
	prev.seconds += sec
	s.m[key] = prev
}

// loadMeasurements parses path, auto-detecting the format by its first
// non-space byte: '[' is a benchRow array, '{' an NDJSON event log.
func loadMeasurements(path string) (*measureSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &measureSet{path: path, m: make(map[string]measurement)}
	trimmed := strings.TrimSpace(string(data))
	switch {
	case strings.HasPrefix(trimmed, "["):
		var rows []benchRow
		if err := json.Unmarshal([]byte(trimmed), &rows); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		s.kind = "bench"
		for _, r := range rows {
			if s.experiment == "" {
				s.experiment = r.Experiment
			}
			if s.env.IsZero() && r.Env != nil {
				s.env = *r.Env
			}
			if r.Outcome == "skipped" {
				continue
			}
			key := fmt.Sprintf("%s/%s", r.Experiment, r.Dataset)
			if r.System != "" {
				key += "/" + r.System
			}
			key += fmt.Sprintf("/k=%d", r.K)
			if r.Parallelism != 0 {
				key += fmt.Sprintf("/p=%d", r.Parallelism)
			}
			s.add(key, r.Seconds, r.Outcome)
		}
	case strings.HasPrefix(trimmed, "{"):
		hdr, events, err := obs.ReadEventLog(strings.NewReader(trimmed))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		s.kind = "events"
		s.env = hdr.Env
		for _, e := range events {
			sec := float64(e.Wall) / 1e9
			s.add("stage "+e.Stage, sec, e.Outcome)
			// Prefix attribution over the top-level pipeline stages only
			// ("src.run" nests inside "src" and would double-count).
			if e.Prefix != "" && (e.Stage == "src" || e.Stage == "spf") {
				s.add("prefix "+e.Prefix, sec, e.Outcome)
			}
		}
	default:
		return nil, fmt.Errorf("%s: unrecognized format (want a JSON array of bench rows or an NDJSON event log)", path)
	}
	return s, nil
}

// delta is one compared key.
type delta struct {
	key      string
	old, new measurement
	ratio    float64
}

// regressed reports whether d fails the gate: slower than threshold×
// and past the noise floor, or an ok measurement turning non-ok.
func (d delta) regressed() bool {
	if d.old.outcome == "ok" && d.new.outcome != "ok" && d.new.outcome != "" {
		return true
	}
	return d.ratio > *threshold && d.new.seconds-d.old.seconds >= minDelta.Seconds()
}

// runCompare implements `srebench -compare`; it returns the process
// exit code (0 comparable and within threshold, 1 regression, 2 usage,
// file, or environment-mismatch error).
func runCompare(args []string) int {
	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(os.Stderr, "srebench: "+format+"\n", a...)
		return 2
	}
	var oldPath, newPath string
	switch {
	case len(args) == 2:
		oldPath, newPath = args[0], args[1]
	case len(args) == 1 && *baselineDir != "":
		newPath = args[0]
	default:
		return fail("usage: srebench -compare <old> <new>  |  srebench -compare -baseline <dir> <new>")
	}
	newSet, err := loadMeasurements(newPath)
	if err != nil {
		return fail("%v", err)
	}
	if oldPath == "" {
		if newSet.kind != "bench" {
			return fail("-baseline resolution needs a BENCH_*.json row file, got an event log (%s)", newPath)
		}
		oldPath = filepath.Join(*baselineDir, "BENCH_"+newSet.experiment+".json")
	}
	oldSet, err := loadMeasurements(oldPath)
	if err != nil {
		return fail("%v", err)
	}
	if oldSet.kind != newSet.kind {
		return fail("cannot compare a %s file with a %s file", oldSet.kind, newSet.kind)
	}

	if mis := oldSet.env.Mismatch(newSet.env); len(mis) > 0 {
		fmt.Fprintf(os.Stderr, "srebench: environments differ:\n")
		for _, m := range mis {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		if !*allowEnvMis {
			fmt.Fprintln(os.Stderr, "srebench: refusing to compare (pass -allow-env-mismatch to override)")
			return 2
		}
		fmt.Fprintln(os.Stderr, "srebench: comparing anyway (-allow-env-mismatch)")
	}

	var deltas []delta
	var missing, added []string
	var oldTotal, newTotal float64
	for _, key := range oldSet.order {
		o := oldSet.m[key]
		n, ok := newSet.m[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		d := delta{key: key, old: o, new: n}
		if o.seconds > 0 {
			d.ratio = n.seconds / o.seconds
		} else if n.seconds > 0 {
			d.ratio = float64(^uint(0) >> 1) // 0 → something: infinite
		} else {
			d.ratio = 1
		}
		oldTotal += o.seconds
		newTotal += n.seconds
		deltas = append(deltas, d)
	}
	for _, key := range newSet.order {
		if _, ok := oldSet.m[key]; !ok {
			added = append(added, key)
		}
	}

	fmt.Printf("compare %s (%d keys) -> %s (%d keys), threshold %.2fx\n",
		oldPath, len(oldSet.m), newPath, len(newSet.m), *threshold)
	fmt.Printf("total: %.3fs -> %.3fs (%s)\n", oldTotal, newTotal, fmtRatio(oldTotal, newTotal))
	for _, k := range missing {
		fmt.Printf("  warning: %q only in old file\n", k)
	}
	for _, k := range added {
		fmt.Printf("  warning: %q only in new file\n", k)
	}

	// Top-K by absolute delta, regressions first.
	sort.Slice(deltas, func(i, j int) bool {
		di := deltas[i].new.seconds - deltas[i].old.seconds
		dj := deltas[j].new.seconds - deltas[j].old.seconds
		return abs(di) > abs(dj)
	})
	regressions := 0
	t := newTable("", "key", "old", "new", "ratio", "outcome")
	shown := 0
	for _, d := range deltas {
		bad := d.regressed()
		if bad {
			regressions++
		}
		if shown >= *topK && !bad {
			continue
		}
		mark := " "
		if bad {
			mark = "!"
		}
		out := d.new.outcome
		if d.old.outcome != d.new.outcome {
			out = d.old.outcome + "->" + d.new.outcome
		}
		t.addf("%s|%s|%.3fs|%.3fs|%s|%s", mark, d.key,
			d.old.seconds, d.new.seconds, fmtRatio(d.old.seconds, d.new.seconds), out)
		shown++
	}
	t.print()
	if regressions > 0 {
		fmt.Printf("FAIL: %d regression(s) past %.2fx (min delta %s)\n", regressions, *threshold, *minDelta)
		return 1
	}
	fmt.Println("ok: no regressions past threshold")
	return 0
}

func fmtRatio(old, new float64) string {
	if old <= 0 {
		if new <= 0 {
			return "1.00x"
		}
		return "new"
	}
	return fmt.Sprintf("%.2fx", new/old)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

package main

import (
	"fmt"
	"math/rand"
	"time"

	"sre/internal/baselines"
	"sre/internal/workload"
)

// table3 reproduces Table 3 (§8.6 "SAT or BDD?"): symbolic route
// computation with Hoyan-style DNF/SAT topology conditions instead of
// BDDs — peak condition length, running time, and timeouts, for a
// sample of prefixes per WAN and k = 0..3.
func table3(sc scale) {
	header("Table 3 — DNF/SAT topology-condition explosion (Hoyan-substitute)")
	names := []workload.WANName{workload.Bics}
	if sc.paper {
		names = append(names, workload.Columbus, workload.USCarrier)
	}
	r := rand.New(rand.NewSource(*seedFlag))
	for _, name := range names {
		net := workload.WAN(name, workload.BGP)
		prefixes := net.AllPrefixes()
		sample := make([]route0, 0, sc.hoyanPrefix)
		for _, idx := range r.Perm(len(prefixes))[:sc.hoyanPrefix] {
			sample = append(sample, prefixes[idx])
		}
		fmt.Printf("\n%s (%d prefixes sampled)\n", name, len(sample))
		t := newTable("k", "max TC length", "avg time", "timeouts")
		for k := 0; k <= sc.maxK; k++ {
			maxLen := 0
			timeouts := 0
			var total time.Duration
			for _, pfx := range sample {
				h := &baselines.Hoyan{Net: net, PruneK: k,
					TermLimit: 200000, Timeout: *budget / 4}
				res := h.ComputePrefix(pfx)
				if res.TimedOut {
					timeouts++
				}
				if res.PeakTCLength > maxLen {
					maxLen = res.PeakTCLength
				}
				total += res.Elapsed
			}
			t.add(fmt.Sprint(k), fmt.Sprint(maxLen),
				fmtDur(total/time.Duration(len(sample))),
				fmt.Sprintf("%d/%d", timeouts, len(sample)))
		}
		t.print()
	}
	fmt.Println("  (the BDD engine handles the same computations in milliseconds — see fig5/fig9)")
}

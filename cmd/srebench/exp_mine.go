package main

import (
	"fmt"

	"sre/internal/analysis"
	"sre/internal/baselines"
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/workload"
)

// workloadNet aliases the configuration network type for brevity.
type workloadNet = config.Network

// route0 aliases the prefix type for brevity in experiment plumbing.
type route0 = route.Prefix

// srcOptions builds engine options with the given pruning budget.
func srcOptions(pruneK int) src.Options { return withResilience(src.Options{PruneK: pruneK}) }

// fig7 reproduces Figure 7: running time to mine specifications, SRE's
// stratified miner vs. the Config2Spec-substitute (per-scenario
// enumeration).
func fig7(sc scale) {
	header("Figure 7 — specification mining time (SRE vs Config2Spec-substitute)")
	names := []workload.WANName{workload.Bics}
	if sc.paper {
		names = append(names, workload.Columbus, workload.USCarrier)
	}
	t := newTable("dataset", "kmax", "SRE(miner)", "specs", "Config2Spec(enum)", "agree")
	ct := newCellTimer()
	for _, name := range names {
		net := workload.WAN(name, workload.BGP)
		kMax := sc.maxK
		if !sc.paper {
			kMax = 2 // the enumeration baseline is cubic in scenarios
		}
		var specs *analysis.Specs
		sreT := ct.run("sre-"+string(name), func() {
			mn := &analysis.Miner{Net: net, KMax: kMax}
			s, err := mn.Mine()
			if err != nil {
				fmt.Printf("  miner error: %v\n", err)
				return
			}
			specs = s
		})
		var enum map[baselines.Pair]int
		c2sT := ct.run("c2s-"+string(name), func() {
			bf := &baselines.Batfish{Net: net}
			enum = bf.MineSpecs(kMax)
		})
		agree := "—"
		if specs != nil && enum != nil {
			ok, total := 0, 0
			for key, v := range specs.ReachTolerance {
				w := v
				if w > kMax {
					w = kMax
				}
				if enum[baselines.Pair{Src: key.Src, Prefix: key.Prefix}] == w {
					ok++
				}
				total++
			}
			agree = fmt.Sprintf("%d/%d", ok, total)
		}
		nSpecs := "—"
		if specs != nil {
			nSpecs = fmt.Sprint(len(specs.ReachTolerance))
		}
		t.add(string(name), fmt.Sprint(kMax), sreT, nSpecs, c2sT, agree)
	}
	t.print()
}

// fig9 reproduces Figure 9: time to compute link failure tolerance of
// reachability with and without route/prefix pruning. "RoutePrune" is
// the one-shot approach (single run at budget k); "+PrefixPrune" is the
// stratified approach; "NoPrune" disables route pruning entirely.
func fig9(sc scale) {
	header("Figure 9 — failure-tolerance computation: pruning effectiveness")
	names := []workload.WANName{workload.Bics}
	if sc.paper {
		names = append(names, workload.Columbus, workload.USCarrier)
	}
	for _, name := range names {
		net := workload.WAN(name, workload.BGP)
		fmt.Printf("\n%s\n", name)
		t := newTable("k", "RoutePrune(oneshot)", "RoutePrune+PrefixPrune(strat.)")
		ct := newCellTimer()
		for k := 0; k <= sc.maxK; k++ {
			rpT := ct.run("rp", func() { runOneShot(net, k, true) })
			bothT := ct.run("both", func() {
				mn := &analysis.Miner{Net: net, KMax: k}
				if _, err := mn.Mine(); err != nil {
					fmt.Printf("  stratified miner error: %v\n", err)
				}
			})
			t.add(fmt.Sprint(k), rpT, bothT)
		}
		t.print()
	}
	// Without route pruning even small WANs explode (Table 2's NoOpt
	// column / §8.6); demonstrate on a 12-router network.
	small := workload.SyntheticWAN("mini", 12, 18, workload.BGP, 3)
	fmt.Printf("\nmini WAN (12 routers, 18 links) — pruning vs none\n")
	t := newTable("k", "NoPrune(oneshot)", "RoutePrune(oneshot)")
	ct := newCellTimer()
	for k := 0; k <= sc.maxK; k++ {
		noneT := ct.run("none", func() { runOneShot(small, k, false) })
		rpT := ct.run("rp", func() { runOneShot(small, k, true) })
		t.add(fmt.Sprint(k), noneT, rpT)
	}
	t.print()
}

// runOneShot computes every pair's tolerance (clamped at budget k) from
// a single pipeline run: no stratification, hence no prefix pruning.
// With prune=false even route pruning is off (the full failure space is
// explored symbolically).
func runOneShot(net *workloadNet, k int, prune bool) {
	pk := -1
	if prune {
		pk = k
	}
	pipe, err := analysis.Run(net, srcOptions(pk))
	if err != nil {
		fmt.Printf("  one-shot error (k=%d, prune=%v): %v\n", k, prune, err)
		return
	}
	defer pipe.Release()
	for pair := range pipe.AllPairsReachable(0) {
		hdr := pipe.OwnedHeaders(pair.Prefix)
		prop := pipe.ReachBDD(pair.Src, pipe.OriginSet(pair.Prefix), hdr)
		pipe.MinTolerance(prop, hdr)
	}
}

package main

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"sre"
	"sre/internal/workload"
)

// parallelExp measures the per-prefix scheduler (internal/sched)
// against the sequential pipeline on multi-prefix fat trees. Each cell
// runs the same verification twice — Parallelism 1 (today's sequential
// path, byte-for-byte) and Parallelism -parallel — and cross-checks
// that both return identical per-prefix tolerances before reporting the
// wall-clock ratio.
//
// The speedup has two independent sources, so the table carries both
// kinds of workload:
//
//   - node-limited resilient cells: the sequential path bisects prefix
//     groups on node-table overflow, paying for every failed oversized
//     attempt; the scheduler goes straight to per-prefix scoped
//     pipelines and never runs a doomed group. This gain materializes
//     even on a single core.
//   - unconstrained cells: pure multi-core scaling; on a 1-CPU host
//     (see the Cores column of BENCH_parallel.json) these hover at ~1×.
func parallelExp(sc scale) {
	cores := runtime.GOMAXPROCS(0)
	header(fmt.Sprintf("Parallel — per-prefix scheduling, %d workers on %d core(s)", *parallelN, cores))
	type wl struct {
		name      string
		arity     int
		k         int
		nodeLimit int
		resilient bool
	}
	wls := []wl{
		{"FatTree(4) k=3 limit=80k resilient", 4, 3, 80000, true},
		{"FatTree(6) k=1 limit=150k resilient", 6, 1, 150000, true},
		{"FatTree(4) k=2 unconstrained", 4, 2, 0, false},
	}
	if sc.paper {
		wls = append(wls, wl{"FatTree(8) k=1 unconstrained", 8, 1, 0, false})
	}
	t := newTable("dataset", "sequential", fmt.Sprintf("parallel(%d)", *parallelN), "speedup", "identical")
	ct := newCellTimer()
	for _, w := range wls {
		var seqSec, parSec float64
		var seqSig, parSig string
		var seqErr, parErr error
		ct.run("seq", func() {
			seqSec, seqSig, seqErr = parallelCell(w.arity, w.k, w.nodeLimit, w.resilient, 1)
		})
		ct.run("par", func() {
			parSec, parSig, parErr = parallelCell(w.arity, w.k, w.nodeLimit, w.resilient, *parallelN)
		})
		outcome := func(err error) string {
			if err != nil {
				return "error"
			}
			return "ok"
		}
		identical := seqErr == nil && parErr == nil && seqSig == parSig
		speedup := 0.0
		if seqErr == nil && parErr == nil && parSec > 0 {
			speedup = seqSec / parSec
		}
		record(benchRow{Experiment: "parallel", Dataset: w.name, System: "sequential",
			K: w.k, Seconds: seqSec, Parallelism: 1, Cores: cores, Outcome: outcome(seqErr)})
		record(benchRow{Experiment: "parallel", Dataset: w.name, System: fmt.Sprintf("parallel-%d", *parallelN),
			K: w.k, Seconds: parSec, Parallelism: *parallelN, Cores: cores,
			Speedup: speedup, ResultsIdentical: identical, Outcome: outcome(parErr)})
		if seqErr != nil {
			fmt.Printf("  %s sequential: %v\n", w.name, seqErr)
		}
		if parErr != nil {
			fmt.Printf("  %s parallel: %v\n", w.name, parErr)
		}
		t.addf("%s|%.2fs|%.2fs|%.2fx|%v", w.name, seqSec, parSec, speedup, identical)
	}
	t.print()
}

// parallelCell runs one verification at the given parallelism. The
// reported seconds cover pipeline construction — the phase the
// scheduler parallelizes. The all-prefix tolerance sweep that follows
// is identical per-pipeline work in both cells; it is kept outside the
// timer and condensed into an order-independent signature so the
// sequential and parallel runs can be cross-checked for identical
// results.
func parallelCell(arity, k, nodeLimit int, resilient bool, parallelism int) (float64, string, error) {
	net := workload.FatTree(arity, workload.BGP)
	opts := sre.Options{MaxFailures: k, Resilient: resilient,
		BDDNodeLimit: nodeLimit, Parallelism: parallelism, Timeout: *deadline}
	start := time.Now()
	v, err := sre.NewVerifier(net, opts)
	sec := time.Since(start).Seconds()
	if err != nil {
		return sec, "", err
	}
	defer v.Release()
	results, err := v.FailureTolerances("edge0-0")
	if err != nil {
		return sec, "", err
	}
	lines := make([]string, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			lines = append(lines, r.Prefix+"=err")
			continue
		}
		lines = append(lines, fmt.Sprintf("%s=%d", r.Prefix, r.Value))
	}
	sort.Strings(lines)
	return sec, strings.Join(lines, ";"), nil
}

package main

import (
	"fmt"
	"math"
	"math/rand"

	"sre/internal/analysis"
	"sre/internal/baselines"
	"sre/internal/prob"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
	"sre/internal/workload"
)

// Probability settings matching §8.2: link failure probability 0.001,
// node failure probability 0.0001, imprecision 1e-4.
const (
	pLinkDown   = 0.001
	pNodeDown   = 0.0001
	imprecision = 1e-4
)

// fig8 reproduces Figure 8: time to compute reachability probabilities
// under link failures and node failures, single property vs. all
// properties, SRE vs. the NetDice-substitute.
func fig8(sc scale) {
	header("Figure 8 — probability of reachability (SRE vs NetDice-substitute)")
	nets := workload.NetDiceWANs(sc.netDiceWANs, workload.OSPF)
	t := newTable("topology", "links", "SRE single", "NetDice single", "SRE all", "NetDice all", "max |Δp|")
	ct := newCellTimer()
	for i, net := range nets {
		name := fmt.Sprintf("netdice%d", i)
		kBudget := prob.KForImprecision(net.Topology.NumLinks(), pLinkDown, imprecision)
		prefixes := net.AllPrefixes()
		pfx := prefixes[len(prefixes)/2]
		var srcID topology.RouterID
		origins := net.OriginsOf(pfx)
		for s := 0; s < net.Topology.NumRouters(); s++ {
			if topology.RouterID(s) != origins[0] {
				srcID = topology.RouterID(s)
				break
			}
		}
		var sreSingle, ndSingle float64
		sreSingleT := ct.run("sre1", func() {
			pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: kBudget, Prefixes: []route.Prefix{pfx}}))
			if err != nil {
				fmt.Printf("  SRE error: %v\n", err)
				return
			}
			defer pipe.Release()
			prop := pipe.ReachBDD(srcID, pipe.OriginSet(pfx), pipe.OwnedHeaders(pfx))
			sreSingle = pipe.MinProbability(prop, prob.LinkModel{PDown: pLinkDown})
		})
		ndSingleT := ct.run("nd1", func() {
			nd := &baselines.NetDice{Net: net, PLinkDown: pLinkDown, Imprecision: imprecision}
			ndSingle, _ = nd.Reachability(srcID, pfx)
		})
		var deltas float64
		sreAllT := ct.run("sreN", func() {
			pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: kBudget}))
			if err != nil {
				fmt.Printf("  SRE error: %v\n", err)
				return
			}
			defer pipe.Release()
			for _, p := range prefixes {
				og := pipe.OriginSet(p)
				hdr := pipe.OwnedHeaders(p)
				for s := 0; s < net.Topology.NumRouters(); s++ {
					if og[topology.RouterID(s)] {
						continue
					}
					pipe.MinProbability(pipe.ReachBDD(topology.RouterID(s), og, hdr), prob.LinkModel{PDown: pLinkDown})
				}
			}
		})
		ndAllT := ct.run("ndN", func() {
			nd := &baselines.NetDice{Net: net, PLinkDown: pLinkDown, Imprecision: imprecision}
			nd.AllReachability()
		})
		if sreSingle > 0 && ndSingle > 0 {
			deltas = math.Abs(sreSingle - ndSingle)
		}
		t.add(name, fmt.Sprint(net.Topology.NumLinks()), sreSingleT, ndSingleT, sreAllT, ndAllT,
			fmt.Sprintf("%.2e", deltas))
	}
	t.print()
	fmt.Println("\n  node failures (one topology, single property):")
	nodeFailurePanel(nets[0], ct)
}

// nodeFailurePanel compares node-failure probability computation.
func nodeFailurePanel(net *workloadNet, ct *cellTimer) {
	prefixes := net.AllPrefixes()
	pfx := prefixes[0]
	origins := net.OriginsOf(pfx)
	var srcID topology.RouterID
	for s := 0; s < net.Topology.NumRouters(); s++ {
		if topology.RouterID(s) != origins[0] {
			srcID = topology.RouterID(s)
			break
		}
	}
	kBudget := prob.KForImprecision(net.Topology.NumLinks(), pLinkDown, imprecision)
	var sreP, ndP float64
	t := newTable("system", "time", "probability")
	sreT := ct.run("sre-node", func() {
		pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: kBudget, Prefixes: []route.Prefix{pfx}}))
		if err != nil {
			return
		}
		defer pipe.Release()
		prop := pipe.ReachBDD(srcID, pipe.OriginSet(pfx), pipe.OwnedHeaders(pfx))
		for _, r := range pipe.ProbabilityWithNodes(prop, prob.NodeModel{PLinkDown: pLinkDown, PNodeDown: pNodeDown}) {
			sreP = r.P
		}
	})
	ndT := ct.run("nd-node", func() {
		nd := &baselines.NetDice{Net: net, PLinkDown: pLinkDown, Imprecision: imprecision}
		ndP, _ = nd.ReachabilityWithNodes(srcID, pfx, pNodeDown)
	})
	t.add("SRE", sreT, fmt.Sprintf("%.6f", sreP))
	t.add("NetDice-substitute", ndT, fmt.Sprintf("%.6f", ndP))
	t.print()
}

// fig14 reproduces Figure 14 (appendix): waypoint probability under
// link and node failures.
func fig14(sc scale) {
	header("Figure 14 — waypointing probability (SRE vs NetDice-substitute)")
	nets := workload.NetDiceWANs(min(sc.netDiceWANs, 4), workload.OSPF)
	r := rand.New(rand.NewSource(*seedFlag))
	t := newTable("topology", "SRE(link)", "NetDice(link)", "|Δp|", "SRE(node)")
	ct := newCellTimer()
	for i, net := range nets {
		prefixes := net.AllPrefixes()
		pfx := prefixes[r.Intn(len(prefixes))]
		origins := net.OriginsOf(pfx)
		var srcID, wp topology.RouterID = -1, -1
		for s := 0; s < net.Topology.NumRouters(); s++ {
			id := topology.RouterID(s)
			if id == origins[0] {
				continue
			}
			if srcID < 0 {
				srcID = id
			} else if wp < 0 {
				wp = id
			}
		}
		kBudget := prob.KForImprecision(net.Topology.NumLinks(), pLinkDown, imprecision)
		var sreP, ndP, srePn float64
		sreT := ct.run("sre", func() {
			pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: kBudget, Prefixes: []route.Prefix{pfx}}))
			if err != nil {
				return
			}
			defer pipe.Release()
			prop := pipe.WaypointBDD(srcID, pipe.OriginSet(pfx), wp, pipe.OwnedHeaders(pfx))
			sreP = pipe.MinProbability(prop, prob.LinkModel{PDown: pLinkDown})
			for _, res := range pipe.ProbabilityWithNodes(prop, prob.NodeModel{PLinkDown: pLinkDown, PNodeDown: pNodeDown}) {
				srePn = res.P
			}
		})
		ndT := ct.run("netdice", func() {
			nd := &baselines.NetDice{Net: net, PLinkDown: pLinkDown, Imprecision: imprecision}
			ndP, _ = nd.WaypointProbability(srcID, pfx, wp)
		})
		t.add(fmt.Sprintf("netdice%d", i), sreT+" p="+fmt.Sprintf("%.4f", sreP),
			ndT+" p="+fmt.Sprintf("%.4f", ndP),
			fmt.Sprintf("%.2e", math.Abs(sreP-ndP)),
			fmt.Sprintf("%.6f", srePn))
	}
	t.print()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

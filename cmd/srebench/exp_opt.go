package main

import (
	"errors"
	"fmt"
	"runtime"

	"sre/internal/analysis"
	"sre/internal/bdd"
	"sre/internal/src"
	"sre/internal/symbol"
	"sre/internal/workload"
)

// fig10 reproduces Figure 10: time to compute failure tolerance on fat
// trees with and without abstract interpretation (route pruning on in
// both, as in the paper).
func fig10(sc scale) {
	header("Figure 10 — abstraction effectiveness on fat trees (BGP)")
	for _, arity := range sc.fatTrees {
		net := workload.FatTree(arity, workload.BGP)
		fmt.Printf("\nFatTree(%d): %d routers, %d links\n",
			workload.FatTreeNodes(arity), net.Topology.NumRouters(), net.Topology.NumLinks())
		t := newTable("k", "RoutePrune", "RoutePrune+Abstract")
		ct := newCellTimer()
		for k := 0; k <= sc.maxK; k++ {
			plainT := ct.run("plain", func() {
				if err := toleranceRun(net, k, false); err != nil {
					fmt.Printf("  plain k=%d: %v\n", k, err)
				}
			})
			absT := ct.run("abs", func() {
				if err := toleranceRun(net, k, true); err != nil {
					fmt.Printf("  abstract k=%d: %v\n", k, err)
				}
			})
			t.add(fmt.Sprint(k), plainT, absT)
		}
		t.print()
	}
}

// toleranceRun computes all-pairs tolerance at budget k.
func toleranceRun(net *workloadNet, k int, abstract bool) error {
	pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: k, Abstract: abstract}))
	if err != nil {
		return err
	}
	defer pipe.Release()
	pipe.AllPairsReachable(k)
	return nil
}

// table2 reproduces Table 2: the number of symbolic routes processed
// under each optimization level (k=3, BGP), and the reduction relative
// to the unoptimized run. "BDD limit" marks runs that exhaust the node
// table, as in the paper.
func table2(sc scale) {
	header("Table 2 — route reduction per optimization (k=3, BGP)")
	type ds struct {
		name string
		net  *workloadNet
	}
	sets := []ds{{"Bics", workload.WAN(workload.Bics, workload.BGP)}}
	if sc.paper {
		sets = append(sets,
			ds{"Columbus", workload.WAN(workload.Columbus, workload.BGP)},
			ds{"USCarrier", workload.WAN(workload.USCarrier, workload.BGP)})
	}
	for _, arity := range sc.fatTrees {
		if !sc.paper && arity > 4 {
			continue // the unabstracted k=3 run on big trees takes hours
		}
		sets = append(sets, ds{fmt.Sprintf("Fattree(%d)", workload.FatTreeNodes(arity)),
			workload.FatTree(arity, workload.BGP)})
	}
	t := newTable("dataset", "NoOpt routes", "RoutePrune", "+PrefixPrune", "+Abstract")
	k := 3
	// The node limit makes "BDD limit" observable at small scale.
	nodeLimit := 0
	if !sc.paper {
		nodeLimit = 2 << 20
	}
	for _, d := range sets {
		base, baseErr := countRoutesNoGC(d.net, nodeLimit)
		rp, rpErr := countRoutes(d.net, k, false, nil, nodeLimit)
		// Prefix pruning at k: restrict to prefixes whose pairs are not
		// all topologically decided — approximated by the miner's
		// stratum-k prefix set; here we reuse the miner once.
		pp, ppErr := countRoutesStratified(d.net, k)
		ab, abErr := countRoutes(d.net, k, true, nil, nodeLimit)
		row := []string{d.name,
			fmtCount(base, baseErr),
			fmtReduction(rp, rpErr, base, baseErr),
			fmtReduction(pp, ppErr, base, baseErr),
			fmtReduction(ab, abErr, base, baseErr)}
		t.add(row...)
	}
	t.print()
	fmt.Println("  reductions are relative to the unoptimized route count; \"BDD limit\" = node table exhausted")
}

func fmtCount(n int, err error) string {
	if err != nil {
		return "BDD limit"
	}
	return fmt.Sprint(n)
}

func fmtReduction(n int, err error, base int, baseErr error) string {
	if err != nil {
		return "BDD limit"
	}
	if baseErr != nil {
		return fmt.Sprintf("(%d)", n)
	}
	if base == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.2f%%", 100*(1-float64(n)/float64(base)))
}

// countRoutes runs SRC alone and returns the number of routes imported.
func countRoutes(net *workloadNet, pruneK int, abstract bool, prefixes []route0, nodeLimit int) (int, error) {
	sp := symbol.NewSpace(net.Topology.NumLinks(), bdd.Config{NodeLimit: nodeLimit}, 0, nil)
	eng := src.NewWithSpace(net, sp, withResilience(src.Options{PruneK: pruneK, Abstract: abstract, Prefixes: prefixes}))
	if err := eng.Run(); err != nil {
		if errors.Is(err, bdd.ErrNodeLimit) {
			return eng.Statistics().RoutesImported, err
		}
		return 0, err
	}
	return eng.Statistics().RoutesImported, nil
}

// countRoutesNoGC runs unoptimized SRC with garbage collection off, so
// the node table genuinely fills up — reproducing the paper's "BDD
// limit" outcome for the NoOpt column.
func countRoutesNoGC(net *workloadNet, nodeLimit int) (int, error) {
	sp := symbol.NewSpace(net.Topology.NumLinks(),
		bdd.Config{NodeLimit: nodeLimit, DisableGC: true}, 0, nil)
	eng := src.NewWithSpace(net, sp, withResilience(src.Options{PruneK: -1}))
	if err := eng.Run(); err != nil {
		if errors.Is(err, bdd.ErrNodeLimit) {
			return eng.Statistics().RoutesImported, err
		}
		return 0, err
	}
	return eng.Statistics().RoutesImported, nil
}

// countRoutesStratified sums route counts over the stratified miner's
// per-stratum runs (route pruning + prefix pruning).
func countRoutesStratified(net *workloadNet, kMax int) (int, error) {
	mn := &analysis.Miner{Net: net, KMax: kMax}
	if _, err := mn.Mine(); err != nil {
		return 0, err
	}
	// The miner does not expose per-stratum route counts; re-run each
	// stratum's SRC with its prefix set is costly, so approximate with
	// a single pruned run over the prefixes that reach the last stratum.
	return countRoutes(net, kMax, false, nil, 0)
}

// fig11 reproduces Figure 11: running time and peak memory when checking
// all-pairs reachability on growing fat trees, per failure budget,
// including "BDD limit" cutoffs.
func fig11(sc scale) {
	header("Figure 11 — scalability on fat trees (time / peak BDD nodes / RSS)")
	t := newTable("fattree", "links", "k", "time", "peak BDD nodes", "heap MB")
	ct := newCellTimer()
	for _, arity := range sc.fatTrees {
		net := workload.FatTree(arity, workload.BGP)
		name := fmt.Sprintf("%d", workload.FatTreeNodes(arity))
		for k := 0; k <= sc.maxK; k++ {
			var st bdd.Stats
			var errOut error
			cell, dur := ct.runTimed("ft"+name, func() {
				sp := symbol.NewSpace(net.Topology.NumLinks(), bdd.Config{}, 0, nil)
				pipe, err := analysis.RunWithSpace(net, sp, withResilience(src.Options{PruneK: k, Abstract: true}))
				if err != nil {
					errOut = err
					st = sp.M.Statistics()
					return
				}
				pipe.AllPairsReachable(k)
				st = sp.M.Statistics()
				pipe.Release()
			})
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			status := cell
			outcome := "ok"
			if errors.Is(errOut, bdd.ErrNodeLimit) {
				status, outcome = "BDD limit", "bdd-limit"
			} else if errOut != nil {
				status, outcome = "error", "error"
			} else if cell == "—" {
				outcome = "skipped"
			}
			t.add(name, fmt.Sprint(net.Topology.NumLinks()), fmt.Sprint(k), status,
				fmt.Sprint(st.PeakNodes), fmt.Sprintf("%.0f", float64(ms.HeapAlloc)/(1<<20)))
			record(benchRow{Experiment: "fig11", Dataset: "fattree-" + name, K: k,
				Seconds: dur.Seconds(), PeakBDDNodes: st.PeakNodes,
				CacheHitRatio: st.CacheHitRatio(), GCRuns: st.GCRuns, Outcome: outcome})
			if cell == "—" {
				break
			}
		}
	}
	t.print()
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sre/internal/obs"
)

func writeRows(t *testing.T, path string, rows []benchRow) {
	t.Helper()
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func sampleRows(env *obs.EnvInfo) []benchRow {
	return []benchRow{
		{Experiment: "parallel", Dataset: "FatTree(4)", System: "sequential", K: 2, Seconds: 1.0, Outcome: "ok", Env: env},
		{Experiment: "parallel", Dataset: "FatTree(4)", System: "parallel-4", K: 2, Seconds: 0.4, Outcome: "ok", Env: env},
		{Experiment: "parallel", Dataset: "FatTree(8)", System: "sequential", K: 1, Seconds: 5.0, Outcome: "ok", Env: env},
	}
}

// TestCompareSelfDiff: comparing a file against itself reports no
// regressions and exits 0.
func TestCompareSelfDiff(t *testing.T) {
	dir := t.TempDir()
	env := obs.Environment()
	path := filepath.Join(dir, "BENCH_parallel.json")
	writeRows(t, path, sampleRows(&env))
	if code := runCompare([]string{path, path}); code != 0 {
		t.Fatalf("self-diff exited %d, want 0", code)
	}
}

// TestCompareDetectsSlowdown: a synthetic 2× slowdown of one cell is a
// regression past the default 1.25× threshold — exit 1.
func TestCompareDetectsSlowdown(t *testing.T) {
	dir := t.TempDir()
	env := obs.Environment()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeRows(t, oldPath, sampleRows(&env))
	slow := sampleRows(&env)
	slow[2].Seconds *= 2
	writeRows(t, newPath, slow)
	if code := runCompare([]string{oldPath, newPath}); code != 1 {
		t.Fatalf("2x slowdown exited %d, want 1", code)
	}
}

// TestCompareBelowNoiseFloor: a large ratio on a tiny absolute delta
// stays under -mindelta and must not fail the gate.
func TestCompareBelowNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	env := obs.Environment()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	rows := []benchRow{{Experiment: "parallel", Dataset: "tiny", K: 0, Seconds: 0.001, Outcome: "ok", Env: &env}}
	writeRows(t, oldPath, rows)
	rows2 := []benchRow{{Experiment: "parallel", Dataset: "tiny", K: 0, Seconds: 0.003, Outcome: "ok", Env: &env}}
	writeRows(t, newPath, rows2)
	if code := runCompare([]string{oldPath, newPath}); code != 0 {
		t.Fatalf("3x on 2ms exited %d, want 0 (under the 10ms noise floor)", code)
	}
}

// TestCompareOutcomeFlip: an ok cell turning non-ok is a regression
// regardless of timing.
func TestCompareOutcomeFlip(t *testing.T) {
	dir := t.TempDir()
	env := obs.Environment()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeRows(t, oldPath, sampleRows(&env))
	bad := sampleRows(&env)
	bad[0].Outcome = "bdd-limit"
	writeRows(t, newPath, bad)
	if code := runCompare([]string{oldPath, newPath}); code != 1 {
		t.Fatalf("ok->bdd-limit exited %d, want 1", code)
	}
}

// TestCompareRefusesEnvMismatch: different environments exit 2 by
// default and compare with a warning under -allow-env-mismatch.
func TestCompareRefusesEnvMismatch(t *testing.T) {
	dir := t.TempDir()
	envA := obs.Environment()
	envB := envA
	envB.GoVersion = envA.GoVersion + "-other"
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeRows(t, oldPath, sampleRows(&envA))
	writeRows(t, newPath, sampleRows(&envB))
	if code := runCompare([]string{oldPath, newPath}); code != 2 {
		t.Fatalf("env mismatch exited %d, want 2", code)
	}
	*allowEnvMis = true
	defer func() { *allowEnvMis = false }()
	if code := runCompare([]string{oldPath, newPath}); code != 0 {
		t.Fatalf("env mismatch with -allow-env-mismatch exited %d, want 0", code)
	}
}

// TestCompareBaselineResolution: with -baseline, the old side resolves
// to <dir>/BENCH_<experiment>.json from the new file's experiment name.
func TestCompareBaselineResolution(t *testing.T) {
	dir := t.TempDir()
	env := obs.Environment()
	writeRows(t, filepath.Join(dir, "BENCH_parallel.json"), sampleRows(&env))
	newPath := filepath.Join(dir, "new.json")
	writeRows(t, newPath, sampleRows(&env))
	*baselineDir = dir
	defer func() { *baselineDir = "" }()
	if code := runCompare([]string{newPath}); code != 0 {
		t.Fatalf("baseline self-diff exited %d, want 0", code)
	}
}

// TestCompareEventLogs: the comparator also diffs NDJSON event logs,
// aggregating wall time per stage; a 2× stage slowdown fails.
func TestCompareEventLogs(t *testing.T) {
	dir := t.TempDir()
	mkLog := func(name string, spfWall int64) string {
		rec := obs.NewRecorder(64)
		tel := obs.New()
		tel.SetRecorder(rec)
		tel.Record(rec.Epoch(), obs.TraceEvent{Stage: "src", Wall: 400_000_000, Outcome: "ok"})
		tel.Record(rec.Epoch(), obs.TraceEvent{Stage: "spf", Wall: spfWall, Outcome: "ok"})
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := rec.WriteEventLog(f, obs.Environment()); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := mkLog("old.ndjson", 600_000_000)
	newPath := mkLog("new.ndjson", 1_200_000_000)
	if code := runCompare([]string{oldPath, oldPath}); code != 0 {
		t.Fatalf("event-log self-diff exited %d, want 0", code)
	}
	if code := runCompare([]string{oldPath, newPath}); code != 1 {
		t.Fatalf("event-log 2x spf slowdown exited %d, want 1", code)
	}
}

package main

import (
	"fmt"
	"sort"
	"time"

	"sre/internal/analysis"
	"sre/internal/src"
	"sre/internal/topology"
	"sre/internal/workload"
)

// fig13 reproduces Figure 13 + §8.7: all-pairs reachability on the
// campus backbone across configuration snapshots, reporting the
// SRC / SPF / FPA stage time distribution, and the failure tolerance of
// core-to-VLAN reachability (the paper finds 1).
func fig13(sc scale) {
	header("Figure 13 — campus backbone: stage time distribution over snapshots")
	var srcTimes, spfTimes, fpaTimes []time.Duration
	tolCounts := map[int]int{}
	for snap := 0; snap < sc.campusSnaps; snap++ {
		net := workload.Campus(workload.CampusOptions{VLANs: sc.campusVLANs, Snapshot: snap})
		pipe, err := analysis.Run(net, withResilience(src.Options{PruneK: 2}))
		if err != nil {
			fmt.Printf("  snapshot %d failed: %v\n", snap, err)
			continue
		}
		fpaStart := time.Now()
		pipe.AllPairsReachable(2)
		// §8.7 second experiment: tolerance from each core router to
		// each access VLAN.
		c1 := net.Topology.MustRouter("C1")
		c2 := net.Topology.MustRouter("C2")
		for _, pfx := range net.AllPrefixes() {
			for _, core := range []topology.RouterID{c1, c2} {
				hdr := pipe.OwnedHeaders(pfx)
				prop := pipe.ReachBDD(core, pipe.OriginSet(pfx), hdr)
				k := pipe.MinTolerance(prop, hdr)
				if k > 2 {
					k = 2 // clamp at explored budget
				}
				tolCounts[k]++
			}
		}
		fpa := time.Since(fpaStart)
		srcTimes = append(srcTimes, pipe.SRCTime)
		spfTimes = append(spfTimes, pipe.SPFTime)
		fpaTimes = append(fpaTimes, fpa)
		st := pipe.Sp.M.Statistics()
		ds := fmt.Sprintf("campus-snap%d", snap)
		record(benchRow{Experiment: "fig13", Dataset: ds, System: "src", K: 2,
			Seconds: pipe.SRCTime.Seconds(), PeakBDDNodes: st.PeakNodes,
			CacheHitRatio: st.CacheHitRatio(), GCRuns: st.GCRuns, Outcome: "ok"})
		record(benchRow{Experiment: "fig13", Dataset: ds, System: "spf", K: 2,
			Seconds: pipe.SPFTime.Seconds(), Outcome: "ok"})
		record(benchRow{Experiment: "fig13", Dataset: ds, System: "fpa", K: 2,
			Seconds: fpa.Seconds(), Outcome: "ok"})
		pipe.Release()
	}
	t := newTable("stage", "min", "median", "max")
	t.add(statRow("SRC", srcTimes)...)
	t.add(statRow("SPF", spfTimes)...)
	t.add(statRow("FPA", fpaTimes)...)
	t.print()
	fmt.Printf("\n  core→VLAN failure-tolerance distribution: %v\n", tolCounts)
	fmt.Println("  (paper: tolerance 1 — reachable under any single failure, breakable by pair failures)")
}

func statRow(name string, ds []time.Duration) []string {
	if len(ds) == 0 {
		return []string{name, "—", "—", "—"}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return []string{name, fmtDur(ds[0]), fmtDur(ds[len(ds)/2]), fmtDur(ds[len(ds)-1])}
}

package main

import (
	"fmt"

	"sre/internal/analysis"
	"sre/internal/baselines"
	"sre/internal/prob"
	"sre/internal/src"
	"sre/internal/workload"
)

// diffExp reproduces §8.3: apply the ten atomic changes to the Bics WAN
// and count which systems detect each change — DNA (k=0 only), SRE
// failure-tolerance differences (k=3), and SRE probability differences.
// The paper reports 5/10 for DNA, 7/10 for tolerance, 10/10 for
// probability.
func diffExp(sc scale) {
	header("§8.3 — differential analysis of 10 atomic changes (Bics, k=0 vs k=3)")
	base := workload.WAN(workload.Bics, workload.BGP)
	changes := workload.AtomicChanges(base)
	t := newTable("change", "DNA(k=0)", "SRE any-diff(k=3)", "SRE tol-diff", "SRE prob-diff")
	dnaCount, tolCount, probCount, anyCount := 0, 0, 0, 0
	model := prob.LinkModel{PDown: pLinkDown}
	before, err := analysis.Run(base, withResilience(src.Options{PruneK: 3}))
	if err != nil {
		fmt.Printf("  baseline pipeline failed: %v\n", err)
		return
	}
	defer before.Release()
	for _, ch := range changes {
		after := base.Clone()
		ch.Apply(after)

		dna := &baselines.DNA{Before: base, After: after}
		dnaDiffs := dna.Diff()
		dnaHit := len(dnaDiffs) > 0

		afterPipe, err := analysis.Run(after, withResilience(src.Options{PruneK: 3}))
		if err != nil {
			fmt.Printf("  %s: pipeline failed: %v\n", ch.Name, err)
			continue
		}
		diffs := analysis.DiffReachability(before, afterPipe, &model)
		anyHit := len(diffs) > 0
		tolHit, probHit := false, false
		for _, d := range diffs {
			if d.ToleranceBefore != d.ToleranceAfter {
				tolHit = true
			}
			if d.ProbBefore != d.ProbAfter {
				probHit = true
			}
		}
		afterPipe.Release()

		mark := func(b bool) string {
			if b {
				return "✓"
			}
			return "·"
		}
		t.add(ch.Name, mark(dnaHit), mark(anyHit), mark(tolHit), mark(probHit))
		if dnaHit {
			dnaCount++
		}
		if anyHit {
			anyCount++
		}
		if tolHit {
			tolCount++
		}
		if probHit {
			probCount++
		}
	}
	t.print()
	fmt.Printf("\n  detected: DNA %d/10, SRE-any %d/10, SRE-tolerance %d/10, SRE-probability %d/10\n",
		dnaCount, anyCount, tolCount, probCount)
	fmt.Println("  (paper: DNA 5/10, tolerance 7/10, probability 10/10)")
}

// Command sre is the command-line network configuration verifier: it
// loads a network description (topology + router configurations in the
// textual format of the config package), symbolically executes it, and
// answers property queries.
//
// Usage:
//
//	sre -config net.txt tolerance  <router> <prefix>
//	sre -config net.txt waypoint   <router> <prefix> <waypoint>
//	sre -config net.txt isolation  <router> <prefix>
//	sre -config net.txt probability <router> <prefix> [-plink 0.001] [-pnode 0]
//	sre -config net.txt loadbalance <router> <prefix>
//	sre -config net.txt mine                      # all specs
//	sre -config net.txt diff -after net2.txt      # config diffing
//	sre -config net.txt pfecs                     # PFEC summary
//	sre -config net.txt -reqs reqs.txt check      # verify a requirements file
//
// Global flags: -k (failure budget, default 3), -abstract, -noecmp.
// Resilience flags: -timeout bounds the run's wall-clock time (exit 124
// on expiry), Ctrl-C cancels cooperatively (exit 130), and -resilient
// quarantines prefixes that overflow the BDD node table (capped by
// -nodelimit) and retries them on a degradation ladder instead of
// failing the whole run.
// Observability flags: -metrics <file> writes a JSON metrics report,
// -progress prints live progress lines to stderr (an in-place status
// line on a terminal, plain lines when piped), -trace-out <file> writes
// a Chrome trace_event JSON viewable at ui.perfetto.dev, -events-out
// <file> writes an NDJSON flight-recorder log for `srebench -compare`,
// -quiet suppresses the stderr chatter, and -pprof <addr> serves
// net/http/pprof. Flags may appear before or after the command. A
// one-line summary (stage timings, peak BDD nodes) prints to stderr
// after the command unless -quiet.
// Multi-process verification: -workers N fork/execs N `sre worker`
// subprocesses and verifies prefixes across them under coordinator
// supervision — crashed or wedged workers are detected (process exit,
// heartbeat loss, undecodable frames), their tasks retried with backoff
// on respawned workers, and prefixes that keep crashing fall back to
// in-process verification. Results are byte-identical to an in-process
// -parallel run. `sre worker` is the internal worker subcommand; it
// speaks a framed protocol on stdin/stdout and is not for direct use.
//
// Exit code contract (stable; scripts and CI may rely on it):
//
//	0   success
//	1   verification or query error (also: failed `check` requirements)
//	2   usage error
//	3   success, but at least one prefix was re-verified in-process
//	    after repeated worker crashes (-workers only; results are
//	    still exact — the code attributes the crashes)
//	124 wall-clock budget expired (-timeout), matching timeout(1)
//	130 interrupted by Ctrl-C (SIGINT), matching shell convention
//
// The check command exits non-zero when any requirement fails, so it
// slots into CI pipelines that gate configuration changes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"time"

	"sre"
	"sre/internal/coord"
	"sre/internal/obs"
)

var (
	configPath  = flag.String("config", "", "network description file (required)")
	afterPath   = flag.String("after", "", "changed network file (diff command)")
	reqsPath    = flag.String("reqs", "", "requirements file (check command)")
	kFlag       = flag.Int("k", 3, "failure budget: explore up to k simultaneous link failures (-1 = all)")
	abstract    = flag.Bool("abstract", false, "enable AS-path abstraction (§7.3)")
	noECMP      = flag.Bool("noecmp", false, "disable multipath route selection")
	pLink       = flag.Float64("plink", 0.001, "link failure probability (probability command)")
	pNode       = flag.Float64("pnode", 0, "node failure probability (probability command; 0 = links only)")
	metricsPath = flag.String("metrics", "", "write a JSON metrics report to this file")
	progress    = flag.Bool("progress", false, "print live progress lines to stderr")
	pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	timeoutFlag = flag.Duration("timeout", 0, "wall-clock budget for the run (e.g. 30s; 0 = none)")
	resilient   = flag.Bool("resilient", false, "degrade gracefully when the BDD node table overflows: quarantine the offending prefix, retry it on the escalation ladder, and complete the rest")
	nodeLimit   = flag.Int("nodelimit", 0, "BDD node table cap (0 = package default); overflowing it fails the run, or degrades it under -resilient")
	parallel    = flag.Int("parallel", 0, "worker count for per-prefix parallel verification (0 = one per CPU, 1 = sequential)")
	workers     = flag.Int("workers", 0, "verify across this many supervised worker subprocesses; crashed workers are retried and, past the attempt budget, their prefixes re-verified in-process (exit 3). 0 = in-process")
	traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON file of the run (view at ui.perfetto.dev)")
	eventsOut   = flag.String("events-out", "", "write an NDJSON flight-recorder event log (input of srebench -compare)")
	quiet       = flag.Bool("quiet", false, "suppress progress, summary, and resilience lines on stderr")
	cacheDir    = flag.String("cache-dir", "", "persistent result cache directory: finished prefixes are published there and replayed by later runs; corrupt records are quarantined and recomputed. Shared safely across processes; also the target of the `cache` maintenance command")
	gcMaxBytes  = flag.Int64("cache-max-bytes", 0, "cache gc: evict oldest records until the store fits this many bytes (0 = no size budget)")
	gcMaxAge    = flag.Duration("cache-max-age", 0, "cache gc: evict records older than this (e.g. 720h; 0 = no age budget)")
	varOrder    = flag.String("var-order", "", "BDD link-variable order: auto (default; topology-aware), declaration, bfs, or mindeg. Results are identical under every order; sizes and speed differ")
	reorder     = flag.Bool("reorder", false, "enable dynamic BDD variable reordering (Rudell sifting) when diagrams grow past a threshold; results are identical, peak memory usually drops")
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sre -config <file> <command> [args]")
	fmt.Fprintln(os.Stderr, "commands: tolerance, waypoint, isolation, probability, loadbalance, mine, diff, pfecs, check, cache")
	os.Exit(2)
}

// parseCommandArgs re-parses flags that appear after the command name
// (e.g. "sre -metrics out.json check -config net.txt" or
// "sre -config net.txt probability A 10.0.0.0/8 -plink 0.01") and
// returns the positional arguments.
func parseCommandArgs(args []string) []string {
	var pos []string
	for len(args) > 0 {
		if err := flag.CommandLine.Parse(args); err != nil {
			fatal(err)
		}
		args = flag.CommandLine.Args()
		if len(args) == 0 {
			break
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	return pos
}

func main() {
	// The worker subcommand must win before flag parsing: workers speak
	// a framed binary protocol on stdin/stdout and share no flags with
	// the coordinator-facing CLI.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(coord.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd := args[0]
	rest := parseCommandArgs(args[1:])
	// The cache maintenance command operates on the store alone — no
	// network, no verification.
	if cmd == "cache" {
		os.Exit(runCache(rest))
	}
	if *configPath == "" {
		usage()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sre: pprof:", err)
			}
		}()
	}
	net, err := sre.LoadNetwork(*configPath)
	if err != nil {
		fatal(err)
	}
	// Ctrl-C cancels the run cooperatively: the pipeline polls the
	// context and aborts with ErrCanceled instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	tel := sre.NewTelemetry()
	opts := sre.Options{MaxFailures: *kFlag, Abstract: *abstract, NoECMP: *noECMP,
		Telemetry: tel, Context: ctx, Timeout: *timeoutFlag, Resilient: *resilient,
		BDDNodeLimit: *nodeLimit, Parallelism: *parallel, Workers: *workers,
		VarOrder: *varOrder, DynamicReorder: *reorder}
	if *progress && !*quiet {
		opts.Progress = sre.StderrProgress()
	}
	if *cacheDir != "" {
		st, err := sre.OpenStore(*cacheDir, sre.StoreOptions{Telemetry: tel})
		if err != nil {
			fatal(err)
		}
		opts.Store = st
	}
	var rec *sre.FlightRecorder
	if *traceOut != "" || *eventsOut != "" {
		rec = sre.NewFlightRecorder(0)
		opts.Recorder = rec
	}
	start := time.Now()
	exitCode := 0
	var v *sre.Verifier

	switch cmd {
	case "mine":
		specs, err := sre.MineSpecs(net, *kFlag, opts)
		if err != nil {
			fatal(err)
		}
		printSpecs(net, specs, *kFlag)
		if len(specs.Outcomes) > 0 {
			outs := make([]sre.PrefixOutcome, 0, len(specs.Outcomes))
			for _, o := range specs.Outcomes {
				outs = append(outs, o)
			}
			sort.Slice(outs, func(i, j int) bool { return outs[i].Prefix.String() < outs[j].Prefix.String() })
			printOutcomes(outs)
		}
	case "diff":
		if *afterPath == "" {
			fatal(fmt.Errorf("diff needs -after <file>"))
		}
		after, err := sre.LoadNetwork(*afterPath)
		if err != nil {
			fatal(err)
		}
		diffs, err := sre.Diff(net, after, *kFlag, sre.LinkFailures(*pLink), opts)
		if err != nil {
			fatal(err)
		}
		printDiffs(diffs)
	default:
		v, err = sre.NewVerifier(net, opts)
		if err != nil {
			fatal(err)
		}
		defer v.Release()
		printOutcomes(v.Outcomes())
		exitCode = runQuery(v, cmd, rest)
		// Exit 3 attributes worker crashes on otherwise-successful runs;
		// a real failure (nonzero exitCode) takes precedence.
		if exitCode == 0 && v.CrashDegraded() {
			if !*quiet {
				fmt.Fprintln(os.Stderr, "sre: run degraded by worker crashes; results are exact (in-process fallback); exit 3")
			}
			exitCode = 3
		}
	}
	finish(v, tel, start)
	writeExports(rec)
	os.Exit(exitCode)
}

// runCache executes the store maintenance subcommands:
//
//	sre cache stats  -cache-dir <dir>   # inventory, no records opened
//	sre cache verify -cache-dir <dir>   # full fsck: re-checksum every record
//	sre cache gc     -cache-dir <dir> [-cache-max-bytes N] [-cache-max-age D]
//
// verify exits 1 when it quarantines anything (the store self-healed,
// but CI probably wants to know); stats and gc exit 0 unless the
// directory itself is unreadable.
func runCache(rest []string) int {
	if len(rest) != 1 || *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "usage: sre cache <stats|verify|gc> -cache-dir <dir> [-cache-max-bytes N] [-cache-max-age D]")
		return 2
	}
	st, err := sre.OpenStore(*cacheDir, sre.StoreOptions{})
	if err != nil {
		fatal(err)
	}
	switch rest[0] {
	case "stats":
		s, err := st.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("records %d (%s), quarantined %d (%s), temp files %d\n",
			s.Records, obs.HumanCount(s.Bytes), s.QuarantinedFiles,
			obs.HumanCount(s.QuarantinedBytes), s.TempFiles)
	case "verify":
		r, err := st.Verify()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checked %d records: %d ok, %d quarantined, %d stale temps reaped\n",
			r.Checked, r.OK, r.Quarantined, r.TempsReaped)
		for _, f := range r.Failures {
			fmt.Printf("  quarantined %s (%s): %s\n", f.Key, f.Path, f.Reason)
		}
		if r.Quarantined > 0 {
			return 1
		}
	case "gc":
		r, err := st.GC(sre.StoreGCOptions{MaxBytes: *gcMaxBytes, MaxAge: *gcMaxAge})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("evicted %d records (%s), swept %d quarantined, reaped %d temps; %d records (%s) remain\n",
			r.Evicted, obs.HumanCount(r.EvictedBytes), r.QuarantineSwept,
			r.TempsReaped, r.Remaining, obs.HumanCount(r.RemainingBytes))
	default:
		fmt.Fprintf(os.Stderr, "sre cache: unknown subcommand %q (want stats, verify, or gc)\n", rest[0])
		return 2
	}
	return 0
}

// writeExports writes the flight-recorder exports requested by
// -trace-out and -events-out.
func writeExports(rec *sre.FlightRecorder) {
	if rec == nil {
		return
	}
	env := sre.Environment()
	env.BDDKernel = "flat"
	env.Parallelism = *parallel
	for _, out := range []struct {
		path  string
		write func(f *os.File) error
	}{
		{*traceOut, func(f *os.File) error { return rec.WriteChromeTrace(f, env) }},
		{*eventsOut, func(f *os.File) error { return rec.WriteEventLog(f, env) }},
	} {
		if out.path == "" {
			continue
		}
		f, err := os.Create(out.path)
		if err != nil {
			fatal(err)
		}
		err = out.write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}
}

// runQuery executes a verifier-backed command and returns the process
// exit code.
func runQuery(v *sre.Verifier, cmd string, rest []string) int {
	switch cmd {
	case "check":
		if *reqsPath == "" {
			fatal(fmt.Errorf("check needs -reqs <file>"))
		}
		f, err := os.Open(*reqsPath)
		if err != nil {
			fatal(err)
		}
		reqs, err := sre.ParseRequirements(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		results, all := v.CheckRequirements(reqs)
		for _, r := range results {
			status := "ok  "
			if !r.Holds {
				status = "FAIL"
			}
			detail := r.Got
			if r.Err != nil {
				detail = r.Err.Error()
			}
			fmt.Printf("%s line %-3d %-12s %s %s: %s\n", status, r.Req.Line, r.Req.Kind, r.Req.Src, r.Req.Prefix, detail)
		}
		if !all {
			return 1
		}
	case "pfecs":
		srcT, spfT := v.Stages()
		fmt.Printf("PFECs: %d  (SRC %.3fs, SPF %.3fs)\n", v.NumPFECs(), srcT, spfT)
	case "tolerance":
		need(rest, 2)
		k, err := v.FailureTolerance(rest[0], rest[1])
		if err != nil {
			fatal(err)
		}
		fmt.Println(formatTolerance(k, *kFlag))
	case "waypoint":
		need(rest, 3)
		k, err := v.WaypointTolerance(rest[0], rest[1], rest[2])
		if err != nil {
			fatal(err)
		}
		fmt.Println(formatTolerance(k, *kFlag))
	case "isolation":
		need(rest, 2)
		k, err := v.IsolationTolerance(rest[0], rest[1])
		if err != nil {
			fatal(err)
		}
		fmt.Println(formatTolerance(k, *kFlag))
	case "probability":
		need(rest, 2)
		model := sre.LinkFailures(*pLink)
		if *pNode > 0 {
			model = sre.NodeAndLinkFailures(*pLink, *pNode)
		}
		p, err := v.Probability(rest[0], rest[1], model)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.9f\n", p)
	case "loadbalance":
		need(rest, 2)
		n, err := v.LoadBalancedPaths(rest[0], rest[1])
		if err != nil {
			fatal(err)
		}
		fmt.Println(n)
	default:
		usage()
	}
	return 0
}

// finish prints the one-line run summary to stderr and writes the JSON
// metrics report when -metrics was given. It runs for every command,
// including failing check runs.
func finish(v *sre.Verifier, tel *sre.Telemetry, start time.Time) {
	if *quiet {
		if *metricsPath == "" {
			return
		}
	} else if v != nil {
		m := v.Metrics()
		line := fmt.Sprintf(
			"summary: src %.3fs, spf %.3fs, %s PFECs, bdd peak %s nodes, cache hit %s, gc %d, order %s",
			m.SRCSeconds, m.SPFSeconds, obs.HumanCount(int64(m.NumPFECs)),
			obs.HumanCount(int64(m.BDD.PeakNodes)),
			obs.HumanPct(m.BDD.CacheHitRatio, 1), m.BDD.GCRuns, m.BDD.VarOrderMethod)
		if m.BDD.ReorderEnabled {
			if m.BDD.Reorders > 0 {
				line += fmt.Sprintf(", reorder %d passes (%d sifts, %.2fs)",
					m.BDD.Reorders, m.BDD.SiftedVars, m.BDD.ReorderSeconds)
			} else {
				line += ", reorder armed (never fired)"
			}
		}
		fmt.Fprintln(os.Stderr, line)
	} else {
		rep := tel.Snapshot()
		fmt.Fprintf(os.Stderr, "summary: total %.3fs, bdd peak %s nodes, gc %s\n",
			time.Since(start).Seconds(),
			obs.HumanCount(int64(rep.Gauges["bdd.peak_nodes"])),
			obs.HumanCount(rep.Counters["bdd.gc_runs"]))
	}
	if *metricsPath == "" {
		return
	}
	f, err := os.Create(*metricsPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if v != nil {
		err = v.WriteMetrics(f)
	} else {
		err = tel.WriteJSON(f)
	}
	if err != nil {
		fatal(err)
	}
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

func fatal(err error) {
	switch {
	case errors.Is(err, sre.ErrCanceled):
		// 130 is the conventional exit status for SIGINT.
		fmt.Fprintln(os.Stderr, "sre: interrupted:", err)
		os.Exit(130)
	case errors.Is(err, sre.ErrDeadline):
		// 124 matches timeout(1).
		fmt.Fprintln(os.Stderr, "sre: timed out:", err)
		os.Exit(124)
	}
	fmt.Fprintln(os.Stderr, "sre:", err)
	os.Exit(1)
}

// printOutcomes reports, on stderr, every prefix a resilient run had to
// quarantine, degrade, or give up on. Cleanly verified prefixes stay
// silent.
func printOutcomes(outs []sre.PrefixOutcome) {
	if *quiet {
		return
	}
	for _, o := range outs {
		switch {
		case o.Err != nil:
			fmt.Fprintf(os.Stderr, "resilience: prefix %s FAILED after rungs %v: %v\n", o.Prefix, o.Rungs, o.Err)
		case o.Degraded:
			fmt.Fprintf(os.Stderr, "resilience: prefix %s verified degraded (rungs %v, effective budget %d)\n", o.Prefix, o.Rungs, o.EffectivePruneK)
		case o.Quarantined:
			fmt.Fprintf(os.Stderr, "resilience: prefix %s quarantined and re-verified in isolation\n", o.Prefix)
		}
	}
}

func formatTolerance(k, budget int) string {
	switch {
	case k == sre.InfiniteTolerance && budget >= 0:
		return fmt.Sprintf(">=%d (no violation within the explored budget)", budget)
	case k == sre.InfiniteTolerance:
		return "infinite (no failure combination violates the property)"
	case k < 0:
		return "-1 (violated even with all links up)"
	default:
		return fmt.Sprint(k)
	}
}

func printSpecs(net *sre.Network, specs *sre.Specs, budget int) {
	type row struct {
		src, prefix string
		k           int
	}
	rows := make([]row, 0, len(specs.ReachTolerance))
	for key, k := range specs.ReachTolerance {
		rows = append(rows, row{net.Topology.Name(key.Src), key.Prefix.String(), k})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].src != rows[j].src {
			return rows[i].src < rows[j].src
		}
		return rows[i].prefix < rows[j].prefix
	})
	fmt.Printf("# mined %d reachability specs (k explored up to %d)\n", len(rows), budget)
	for _, r := range rows {
		fmt.Printf("reach %-12s -> %-18s tolerance %s\n", r.src, r.prefix, formatTolerance(r.k, budget))
	}
	if len(specs.Isolated) > 0 {
		fmt.Printf("# %d isolation specs\n", len(specs.Isolated))
		for _, key := range specs.Isolated {
			fmt.Printf("isolated %s -> %s\n", net.Topology.Name(key.Src), key.Prefix)
		}
	}
	lb := 0
	for _, n := range specs.LoadBalance {
		if n > 1 {
			lb++
		}
	}
	fmt.Printf("# %d pairs load-balanced over >1 path\n", lb)
	groups := specs.Generalize()
	fmt.Printf("# generalized to %d prefix-group specs:\n", len(groups))
	for _, g := range groups {
		if g.Members > 1 {
			fmt.Printf("group %-12s -> %-18s tolerance %s (%d prefixes)\n",
				net.Topology.Name(g.Src), g.Prefix, formatTolerance(g.K, budget), g.Members)
		}
	}
}

func printDiffs(diffs []sre.Difference) {
	if len(diffs) == 0 {
		fmt.Println("no behavioural differences")
		return
	}
	for _, d := range diffs {
		kind := "visible with all links up"
		if d.FailuresOnly {
			kind = "only under failures (invisible to no-failure diffing)"
		}
		fmt.Printf("%s -> %s: %s\n", d.Src, d.Prefix, kind)
		fmt.Printf("  tolerance %d -> %d, probability %.6f -> %.6f\n",
			d.ToleranceDelta[0], d.ToleranceDelta[1], d.ProbDelta[0], d.ProbDelta[1])
		if len(d.WitnessDown) > 0 {
			fmt.Printf("  witness failure scenario: links down %v\n", d.WitnessDown)
		}
	}
}

package main

// End-to-end result-cache tests through the CLI: warm and poisoned
// cache runs must print byte-identical stdout, corrupt stores must
// self-heal with exit 0, and the `sre cache` maintenance subcommands
// must honor their documented exit codes.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLIOut is runCLI capturing stdout too — the cache tests assert
// byte-identity of what the command prints.
func runCLIOut(t *testing.T, extraEnv []string, args ...string) (int, string, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "SRE_CLI_UNDER_TEST="+strings.Join(args, "\x1f"))
	cmd.Env = append(cmd.Env, extraEnv...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running CLI: %v", err)
	}
	return code, stdout.String(), stderr.String()
}

// TestCacheCLIByteIdentity is the CLI face of the acceptance scenario:
// a cold cache-less run, a cold cached run, a warm cached run, and a
// run over a poisoned store must all print the same bytes and exit 0.
func TestCacheCLIByteIdentity(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.txt")
	if err := os.WriteFile(netPath, []byte(cliNet), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	query := []string{"-quiet", "-resilient", "tolerance", "A", "10.0.0.0/8"}

	code, baseline, errOut := runCLIOut(t, nil, append([]string{"-config", netPath}, query...)...)
	if code != 0 {
		t.Fatalf("cache-less run exited %d: %s", code, errOut)
	}
	if baseline == "" {
		t.Fatal("cache-less run printed nothing")
	}

	cached := append([]string{"-config", netPath, "-cache-dir", cacheDir}, query...)
	code, cold, errOut := runCLIOut(t, nil, cached...)
	if code != 0 || cold != baseline {
		t.Fatalf("cold cached run: exit %d\nstdout %q\nwant   %q\nstderr: %s", code, cold, baseline, errOut)
	}
	code, warm, errOut := runCLIOut(t, nil, cached...)
	if code != 0 || warm != baseline {
		t.Fatalf("warm cached run: exit %d\nstdout %q\nwant   %q\nstderr: %s", code, warm, baseline, errOut)
	}
	code, workers, errOut := runCLIOut(t, nil, append([]string{"-config", netPath, "-cache-dir", cacheDir, "-workers", "2"}, query...)...)
	if code != 0 || workers != baseline {
		t.Fatalf("warm -workers run: exit %d\nstdout %q\nwant   %q\nstderr: %s", code, workers, baseline, errOut)
	}

	// Poison the store: truncate one record, bit-flip another, leave a
	// half-renamed temp file. The run must quarantine, recompute, print
	// the same bytes, and exit 0.
	var recs []string
	err := filepath.Walk(filepath.Join(cacheDir, "objects"), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() && strings.HasSuffix(path, ".rec") {
			recs = append(recs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("cached run published no records")
	}
	if err := os.Truncate(recs[0], 5); err != nil {
		t.Fatal(err)
	}
	if len(recs) > 1 {
		buf, err := os.ReadFile(recs[1])
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0x01
		if err := os.WriteFile(recs[1], buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(filepath.Dir(recs[0]), ".tmp-1-1"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, poisoned, errOut := runCLIOut(t, nil, cached...)
	if code != 0 {
		t.Fatalf("poisoned run exited %d: %s", code, errOut)
	}
	if poisoned != baseline {
		t.Fatalf("poisoned run diverged\nstdout %q\nwant   %q", poisoned, baseline)
	}

	// After the self-healing pass the store verifies clean again.
	code, out, _ := runCLIOut(t, nil, "cache", "verify", "-cache-dir", cacheDir)
	if code != 0 {
		t.Fatalf("cache verify after healing exited %d: %s", code, out)
	}
	if !strings.Contains(out, "0 quarantined") {
		t.Fatalf("cache verify after healing: %q", out)
	}
}

// TestCacheCLIMaintenance covers the `sre cache` subcommand surface:
// stats, verify (exit 1 on quarantine), gc, and usage errors.
func TestCacheCLIMaintenance(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.txt")
	if err := os.WriteFile(netPath, []byte(cliNet), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	if code, _, errOut := runCLIOut(t, nil, "-config", netPath, "-quiet", "-resilient",
		"-cache-dir", cacheDir, "tolerance", "A", "10.0.0.0/8"); code != 0 {
		t.Fatalf("populate run exited %d: %s", code, errOut)
	}

	code, out, _ := runCLIOut(t, nil, "cache", "stats", "-cache-dir", cacheDir)
	if code != 0 || !strings.Contains(out, "records") {
		t.Fatalf("cache stats: exit %d, %q", code, out)
	}
	if strings.Contains(out, "records 0 ") {
		t.Fatalf("cache stats reports empty store: %q", out)
	}

	code, out, _ = runCLIOut(t, nil, "cache", "verify", "-cache-dir", cacheDir)
	if code != 0 || !strings.Contains(out, "0 quarantined") {
		t.Fatalf("cache verify on clean store: exit %d, %q", code, out)
	}

	// Corrupt a record: verify must quarantine it and exit 1.
	var rec string
	err := filepath.Walk(filepath.Join(cacheDir, "objects"), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() && strings.HasSuffix(path, ".rec") && rec == "" {
			rec = path
		}
		return nil
	})
	if err != nil || rec == "" {
		t.Fatalf("no record found: %v", err)
	}
	if err := os.Truncate(rec, 3); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCLIOut(t, nil, "cache", "verify", "-cache-dir", cacheDir)
	if code != 1 || !strings.Contains(out, "1 quarantined") {
		t.Fatalf("cache verify on corrupt store: exit %d, %q", code, out)
	}

	// GC with a tiny byte budget evicts everything that remains.
	code, out, _ = runCLIOut(t, nil, "cache", "gc", "-cache-dir", cacheDir, "-cache-max-bytes", "1")
	if code != 0 || !strings.Contains(out, "0 records (0) remain") {
		t.Fatalf("cache gc: exit %d, %q", code, out)
	}

	// Usage errors: missing -cache-dir, missing subcommand, unknown one.
	for _, args := range [][]string{
		{"cache", "stats"},
		{"cache"},
		{"cache", "frobnicate", "-cache-dir", cacheDir},
	} {
		if code, _, _ := runCLIOut(t, nil, args...); code != 2 {
			t.Errorf("sre %s: exit %d, want 2", strings.Join(args, " "), code)
		}
	}
}

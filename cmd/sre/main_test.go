package main

// Exit-code contract tests. The test binary re-execs itself as the
// `sre` CLI: TestMain diverts children marked with SRE_CLI_UNDER_TEST
// into main() with the requested argv, so every exit path — including
// the coordinator's worker subprocesses, which re-exec this binary a
// second time as `sre worker` — runs exactly the shipped code.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("SRE_COORD_WORKER") == "1" {
		// A worker child spawned by a CLI child below: enter main's own
		// `worker` dispatch path.
		os.Args = []string{"sre", "worker"}
		main()
		os.Exit(0)
	}
	if args := os.Getenv("SRE_CLI_UNDER_TEST"); args != "" {
		os.Args = append([]string{"sre"}, strings.Split(args, "\x1f")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const cliNet = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  bgp 65001
    network 10.0.0.0/8
end
router B
  bgp 65002
    network 20.0.0.0/8
end
router C
  bgp 65003
    network 30.0.0.0/8
end
`

// runCLI re-execs the test binary as `sre <args...>` and returns the
// exit code and stderr.
func runCLI(t *testing.T, extraEnv []string, args ...string) (int, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "SRE_CLI_UNDER_TEST="+strings.Join(args, "\x1f"))
	cmd.Env = append(cmd.Env, extraEnv...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err = cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), stderr.String()
	}
	t.Fatalf("running CLI: %v", err)
	return -1, ""
}

// TestExitCodeContract pins the documented exit statuses: 0 success,
// 1 error, 2 usage, 3 crash-degraded, 124 deadline. (130 for SIGINT
// follows the same fatal() path as 124 and needs interactive signal
// timing, so it is covered by the error-mapping unit test below.)
func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.txt")
	if err := os.WriteFile(netPath, []byte(cliNet), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		env    []string
		want   int
		stderr string
	}{
		{name: "success", args: []string{"-config", netPath, "-quiet", "tolerance", "A", "10.0.0.0/8"}, want: 0},
		{name: "error", args: []string{"-config", netPath, "-quiet", "tolerance", "NOPE", "10.0.0.0/8"}, want: 1, stderr: "unknown router"},
		{name: "usage-no-command", args: []string{"-config", netPath}, want: 2, stderr: "usage:"},
		{name: "usage-bad-command", args: []string{"-config", netPath, "-quiet", "frobnicate"}, want: 2},
		{name: "deadline", args: []string{"-config", netPath, "-quiet", "-timeout", "1ns", "-k", "-1", "pfecs"}, want: 124, stderr: "timed out"},
		{name: "crash-degraded", want: 3, stderr: "degraded by worker crashes",
			args: []string{"-config", netPath, "-workers", "2", "tolerance", "A", "10.0.0.0/8"},
			env:  []string{"SRE_FAULT=crash@0;crash@0#1;crash@0#2"}},
		{name: "workers-clean", args: []string{"-config", netPath, "-quiet", "-workers", "2", "tolerance", "A", "10.0.0.0/8"}, want: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code, errOut := runCLI(t, tc.env, tc.args...)
			if code != tc.want {
				t.Errorf("exit code = %d, want %d\nstderr: %s", code, tc.want, errOut)
			}
			if tc.stderr != "" && !strings.Contains(errOut, tc.stderr) {
				t.Errorf("stderr %q should contain %q", errOut, tc.stderr)
			}
		})
	}
}

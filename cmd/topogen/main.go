// Command topogen generates the synthetic datasets of the evaluation in
// the textual network format, for use with the sre CLI or external
// tools.
//
// Usage:
//
//	topogen -kind wan -name Bics -proto bgp            > bics.txt
//	topogen -kind fattree -arity 8 -proto ospf         > ft80.txt
//	topogen -kind campus -vlans 60 -snapshot 3         > campus.txt
//	topogen -kind random -routers 40 -links 60 -seed 7 > rand.txt
//	topogen -kind figure1                              > walkthrough.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"sre/internal/config"
	"sre/internal/workload"
)

var (
	kind     = flag.String("kind", "figure1", "topology kind: figure1, wan, fattree, campus, random")
	name     = flag.String("name", "Bics", "WAN name: Bics, Columbus, USCarrier")
	proto    = flag.String("proto", "bgp", "protocol: bgp or ospf")
	arity    = flag.Int("arity", 4, "fat-tree arity (even)")
	vlans    = flag.Int("vlans", 60, "campus VLAN count")
	snapshot = flag.Int("snapshot", 0, "campus snapshot index (0-66)")
	routers  = flag.Int("routers", 20, "random WAN router count")
	links    = flag.Int("links", 30, "random WAN link count")
	seed     = flag.Int64("seed", 1, "random WAN seed")
)

func main() {
	flag.Parse()
	p := workload.BGP
	if *proto == "ospf" {
		p = workload.OSPF
	}
	var net *config.Network
	switch *kind {
	case "figure1":
		net = workload.Figure1()
	case "wan":
		net = workload.WAN(workload.WANName(*name), p)
	case "fattree":
		net = workload.FatTree(*arity, p)
	case "campus":
		net = workload.Campus(workload.CampusOptions{VLANs: *vlans, Snapshot: *snapshot})
	case "random":
		net = workload.SyntheticWAN("rand", *routers, *links, p, *seed)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	fmt.Print(config.Format(net))
}

package sre

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Requirements checking: the §2.1 "verifying changes" workflow. An
// operator keeps a requirements file — the network's contract — and
// re-verifies it against every configuration change, across the whole
// product space of packets and failures:
//
//	# requirements for the production WAN
//	reach       core1 10.0.0.0/24  tolerance>=1
//	waypoint    edge3 10.0.0.0/24  via fw1  tolerance>=0
//	isolation   guest 10.9.0.0/16  tolerance>=2
//	probability core1 10.0.0.0/24  >=0.9999  plink=0.001
//	loadbalance core1 10.0.0.0/24  paths>=2
//
// '#' starts a comment. Tolerances compare against the verifier's
// failure budget; `probability` takes an optional plink= / pnode=
// failure model (defaults 0.001 / 0).

// Requirement is one parsed requirement line.
type Requirement struct {
	Kind     string // reach, waypoint, isolation, probability, loadbalance
	Src      string
	Prefix   string
	Via      string  // waypoint only
	MinK     int     // tolerance>=K (reach, waypoint, isolation)
	MinP     float64 // probability only
	MinPaths int     // loadbalance only
	PLink    float64
	PNode    float64
	Line     int
}

// RequirementResult pairs a requirement with its verification outcome.
type RequirementResult struct {
	Req Requirement
	// Holds reports whether the requirement is satisfied.
	Holds bool
	// Got describes the measured value (tolerance, probability, paths).
	Got string
	// Err is set when the requirement could not be evaluated (unknown
	// router, prefix not originated, ...).
	Err error
}

// ParseRequirements reads a requirements file.
func ParseRequirements(r io.Reader) ([]Requirement, error) {
	sc := bufio.NewScanner(r)
	var out []Requirement
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		req, err := parseRequirement(fields, lineNo)
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	return out, sc.Err()
}

// ParseRequirementsString parses requirements from a string.
func ParseRequirementsString(s string) ([]Requirement, error) {
	return ParseRequirements(strings.NewReader(s))
}

func parseRequirement(fields []string, line int) (Requirement, error) {
	req := Requirement{Kind: fields[0], Line: line, PLink: 0.001}
	bad := func(format string, args ...interface{}) (Requirement, error) {
		return Requirement{}, fmt.Errorf("requirements: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	if len(fields) < 3 {
		return bad("want '<kind> <router> <prefix> ...'")
	}
	req.Src, req.Prefix = fields[1], fields[2]
	rest := fields[3:]
	switch req.Kind {
	case "reach", "isolation":
		req.MinK = 0
		for _, f := range rest {
			if v, ok := cutPrefixInt(f, "tolerance>="); ok {
				req.MinK = v
			} else {
				return bad("unexpected %q", f)
			}
		}
	case "waypoint", "waypoint-only":
		if len(rest) < 2 || rest[0] != "via" {
			return bad("%s wants 'via <router>'", req.Kind)
		}
		req.Via = rest[1]
		for _, f := range rest[2:] {
			if v, ok := cutPrefixInt(f, "tolerance>="); ok {
				req.MinK = v
			} else {
				return bad("unexpected %q", f)
			}
		}
	case "probability":
		if len(rest) < 1 || !strings.HasPrefix(rest[0], ">=") {
			return bad("probability wants '>=<p>'")
		}
		p, err := strconv.ParseFloat(rest[0][2:], 64)
		if err != nil {
			return bad("bad probability %q", rest[0])
		}
		req.MinP = p
		for _, f := range rest[1:] {
			switch {
			case strings.HasPrefix(f, "plink="):
				v, err := strconv.ParseFloat(f[6:], 64)
				if err != nil {
					return bad("bad plink %q", f)
				}
				req.PLink = v
			case strings.HasPrefix(f, "pnode="):
				v, err := strconv.ParseFloat(f[6:], 64)
				if err != nil {
					return bad("bad pnode %q", f)
				}
				req.PNode = v
			default:
				return bad("unexpected %q", f)
			}
		}
	case "loadbalance":
		if len(rest) != 1 {
			return bad("loadbalance wants 'paths>=<n>'")
		}
		v, ok := cutPrefixInt(rest[0], "paths>=")
		if !ok {
			return bad("loadbalance wants 'paths>=<n>'")
		}
		req.MinPaths = v
	default:
		return bad("unknown requirement kind %q", req.Kind)
	}
	return req, nil
}

func cutPrefixInt(s, prefix string) (int, bool) {
	if !strings.HasPrefix(s, prefix) {
		return 0, false
	}
	v, err := strconv.Atoi(s[len(prefix):])
	if err != nil {
		return 0, false
	}
	return v, true
}

// CheckRequirements verifies every requirement against the network's
// symbolic execution. All requirements are evaluated (the first failure
// does not stop the run); the second result reports whether ALL hold.
func (v *Verifier) CheckRequirements(reqs []Requirement) ([]RequirementResult, bool) {
	out := make([]RequirementResult, 0, len(reqs))
	all := true
	for _, req := range reqs {
		res := v.checkOne(req)
		if !res.Holds {
			all = false
		}
		out = append(out, res)
	}
	return out, all
}

func (v *Verifier) checkOne(req Requirement) RequirementResult {
	res := RequirementResult{Req: req}
	fail := func(err error) RequirementResult {
		res.Err = err
		res.Holds = false
		res.Got = "error"
		return res
	}
	switch req.Kind {
	case "reach":
		k, err := v.FailureTolerance(req.Src, req.Prefix)
		if err != nil {
			return fail(err)
		}
		res.Holds = k >= req.MinK
		res.Got = toleranceString(k)
	case "waypoint":
		k, err := v.WaypointTolerance(req.Src, req.Prefix, req.Via)
		if err != nil {
			return fail(err)
		}
		res.Holds = k >= req.MinK
		res.Got = toleranceString(k)
	case "waypoint-only":
		k, err := v.WaypointOnlyTolerance(req.Src, req.Prefix, req.Via)
		if err != nil {
			return fail(err)
		}
		res.Holds = k >= req.MinK
		res.Got = toleranceString(k)
	case "isolation":
		k, err := v.IsolationTolerance(req.Src, req.Prefix)
		if err != nil {
			return fail(err)
		}
		res.Holds = k >= req.MinK
		res.Got = toleranceString(k)
	case "probability":
		model := LinkFailures(req.PLink)
		if req.PNode > 0 {
			model = NodeAndLinkFailures(req.PLink, req.PNode)
		}
		p, err := v.Probability(req.Src, req.Prefix, model)
		if err != nil {
			return fail(err)
		}
		res.Holds = p >= req.MinP
		res.Got = strconv.FormatFloat(p, 'f', 6, 64)
	case "loadbalance":
		n, err := v.LoadBalancedPaths(req.Src, req.Prefix)
		if err != nil {
			return fail(err)
		}
		res.Holds = n >= req.MinPaths
		res.Got = strconv.Itoa(n)
	default:
		return fail(fmt.Errorf("unknown requirement kind %q", req.Kind))
	}
	return res
}

func toleranceString(k int) string {
	if k == InfiniteTolerance {
		return "inf"
	}
	return strconv.Itoa(k)
}

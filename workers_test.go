package sre_test

// Multi-process verification through the public API. The coordinator
// re-execs the current binary as `<exe> worker`; under `go test` that
// binary is the test binary, so TestMain diverts worker children
// (marked by the SRE_COORD_WORKER environment variable the coordinator
// sets) into the worker protocol before the testing framework runs.

import (
	"os"
	"reflect"
	"testing"

	"sre"
	"sre/internal/coord"
	"sre/internal/workload"
)

func TestMain(m *testing.M) {
	if os.Getenv("SRE_COORD_WORKER") == "1" {
		os.Exit(coord.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// fatTreeWorkersRun is fatTreeRun with worker subprocesses instead of
// in-process parallelism.
func fatTreeWorkersRun(t *testing.T, workers int, faultPlan string) ([]sre.PrefixOutcome, int, []sre.PrefixResult, bool) {
	t.Helper()
	net := workload.FatTree(4, workload.BGP)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 2, Resilient: true, Workers: workers, FaultPlan: faultPlan})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	outs := v.Outcomes()
	numPFECs := v.Metrics().NumPFECs
	sweep, err := v.FailureTolerances("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	return outs, numPFECs, sweep, v.CrashDegraded()
}

// TestWorkersDeterminism pins the tentpole's public contract: a
// fault-free multi-process run at 1, 2, and 4 workers is
// indistinguishable from the sequential in-process run — same
// outcomes, same PFEC count, same tolerances.
func TestWorkersDeterminism(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeRun(t, 1)
	if len(baseOuts) == 0 {
		t.Fatal("baseline reported no outcomes")
	}
	for _, w := range []int{1, 2, 4} {
		outs, pfecs, sweep, crashDegraded := fatTreeWorkersRun(t, w, "")
		if !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("workers %d: outcomes diverge\n got %+v\nwant %+v", w, outs, baseOuts)
		}
		if pfecs != basePFECs {
			t.Errorf("workers %d: NumPFECs = %d, in-process %d", w, pfecs, basePFECs)
		}
		if !reflect.DeepEqual(sweep, baseSweep) {
			t.Errorf("workers %d: tolerance sweep diverges\n got %+v\nwant %+v", w, sweep, baseSweep)
		}
		if crashDegraded {
			t.Errorf("workers %d: CrashDegraded on a fault-free run", w)
		}
	}
}

// TestWorkersFaultedRunConverges injects crashes into distinct tasks:
// the retried attempts are fault-free, so results must converge to the
// in-process baseline, with only WorkerCrashes recording the faults.
func TestWorkersFaultedRunConverges(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeRun(t, 1)
	outs, pfecs, sweep, crashDegraded := fatTreeWorkersRun(t, 2, "crash@0;kill@2;exit@5")
	crashes := 0
	for i := range outs {
		crashes += outs[i].WorkerCrashes
		outs[i].WorkerCrashes = 0
	}
	if crashes < 3 {
		t.Errorf("total WorkerCrashes = %d, want >= 3", crashes)
	}
	if crashDegraded {
		t.Error("CrashDegraded should be false: every retry converged before quarantine")
	}
	if !reflect.DeepEqual(outs, baseOuts) {
		t.Errorf("outcomes diverge after crash retries\n got %+v\nwant %+v", outs, baseOuts)
	}
	if pfecs != basePFECs {
		t.Errorf("NumPFECs = %d, in-process %d", pfecs, basePFECs)
	}
	if !reflect.DeepEqual(sweep, baseSweep) {
		t.Errorf("tolerance sweep diverges\n got %+v\nwant %+v", sweep, baseSweep)
	}
}

// TestWorkersCrashDegraded crashes one task on every attempt: the
// prefix must fall back to exact in-process verification and the
// verifier must report CrashDegraded (the `sre` CLI's exit 3).
func TestWorkersCrashDegraded(t *testing.T) {
	_, basePFECs, baseSweep := fatTreeRun(t, 1)
	outs, pfecs, sweep, crashDegraded := fatTreeWorkersRun(t, 2, "crash@1;crash@1#1;crash@1#2")
	if !crashDegraded {
		t.Fatal("CrashDegraded should be true after an exhausted attempt budget")
	}
	found := false
	for _, o := range outs {
		if len(o.Rungs) > 0 && o.Rungs[0] == sre.RungWorkerCrash {
			found = true
			if o.WorkerCrashes != 3 {
				t.Errorf("quarantined prefix WorkerCrashes = %d, want 3", o.WorkerCrashes)
			}
			if o.Err != nil {
				t.Errorf("quarantined prefix failed: %v", o.Err)
			}
		}
	}
	if !found {
		t.Error("no outcome carries the worker-crash rung")
	}
	// The fallback re-verified with the original options: queries exact.
	if pfecs != basePFECs {
		t.Errorf("NumPFECs = %d, in-process %d", pfecs, basePFECs)
	}
	for i := range sweep {
		// The sweep rows of the quarantined prefix carry its resilience
		// flags; values must still match the baseline.
		if sweep[i].Prefix != baseSweep[i].Prefix || sweep[i].Value != baseSweep[i].Value || (sweep[i].Err == nil) != (baseSweep[i].Err == nil) {
			t.Errorf("sweep row %d diverges: got %+v, want %+v", i, sweep[i], baseSweep[i])
		}
	}
}

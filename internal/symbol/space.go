// Package symbol defines the symbolic variable space shared by symbolic
// route computation, symbolic packet forwarding, and property analysis.
//
// Following §5.1 of the paper, a symbolic packet is a bit vector of
// header bits plus one boolean per link. We use the 32 destination-IP
// bits as the header (the paper's walkthrough and evaluation also match
// on destination prefixes), ordered ABOVE the link variables in the BDD:
// variable i (0 ≤ i < 32) is destination bit i counted from the most
// significant bit, and the link variables occupy levels 32..32+links-1
// (true = up). Algorithm 2's Extract depends on this split: splitting a
// property BDD at level 32 decouples packet BDDs from topology BDDs.
//
// WITHIN the link band the layout is a permutation chosen at space
// construction (internal/order computes topology-aware ones): link j
// sits at level 32+perm[j], defaulting to declaration order (perm[j] =
// j). The permutation changes only which level a link occupies — the
// set of link levels, and therefore every quantifier cube and the
// at-most-k filter, is unchanged — but it is part of the meaning of any
// serialized BDD, so producers and consumers must build their spaces
// from the same order.
package symbol

import (
	"fmt"

	"sre/internal/bdd"
	"sre/internal/route"
	"sre/internal/topology"
)

// HeaderBits is the number of packet header variables (destination IP).
const HeaderBits = 32

// Space wraps a BDD manager with the header/link variable layout.
type Space struct {
	M     *bdd.Manager
	Links int // number of links (and link variables)

	prefixCache map[route.Prefix]bdd.Node
	allLinkVars []int

	// perm maps LinkID → level offset within the link band (nil =
	// identity / declaration order); inv is its inverse, for decoding
	// witness assignments back into links.
	perm, inv []int

	// Hash-consed quantifier cubes, built lazily and kept Ref'd so they
	// survive GC: headerCube spans the header bits, nonHeaderCube spans
	// the link (and node) variables. Keying the op cache on these shared
	// cube nodes lets every TopoOnly/HeaderOnly call hit the same cache
	// entries instead of rebuilding per-call variable sets.
	headerCube    bdd.Node
	nonHeaderCube bdd.Node
}

// NewSpace creates a symbolic space for a topology with the given number
// of links. extraVars reserves additional variables after the link
// variables (used for node-failure variables in probabilistic analysis).
// perm, when non-nil, is the link variable order — a permutation of
// [0, links) placing link l at level HeaderBits+perm[l] (see
// internal/order); nil keeps declaration order. An invalid permutation
// panics: it would silently scramble every BDD the space builds.
func NewSpace(links int, cfg bdd.Config, extraVars int, perm []int) *Space {
	cfg.Vars = HeaderBits + links + extraVars
	s := &Space{
		M:           bdd.New(cfg),
		Links:       links,
		prefixCache: make(map[route.Prefix]bdd.Node),
	}
	// Dynamic reordering must never move a variable across the
	// header/link or link/extra boundary: SplitAtLevel(f, HeaderBits) and
	// the quantifier cubes depend on the band layout, and extra (node,
	// risk-group) variables sit below the links by contract.
	s.M.SetReorderBands([]int{HeaderBits, HeaderBits + links})
	if perm != nil {
		if len(perm) != links {
			panic(fmt.Sprintf("symbol: order permutation covers %d links, topology has %d", len(perm), links))
		}
		s.perm = perm
		s.inv = make([]int, links)
		for i := range s.inv {
			s.inv[i] = -1
		}
		for l, lev := range perm {
			if lev < 0 || lev >= links || s.inv[lev] != -1 {
				panic(fmt.Sprintf("symbol: order permutation is not a bijection at link %d → level %d", l, lev))
			}
			s.inv[lev] = l
		}
	}
	s.allLinkVars = make([]int, links)
	for i := range s.allLinkVars {
		s.allLinkVars[i] = HeaderBits + i
	}
	return s
}

// LinkVarIndex returns the BDD variable index of link l.
func (s *Space) LinkVarIndex(l topology.LinkID) int {
	if s.perm == nil {
		return HeaderBits + int(l)
	}
	return HeaderBits + s.perm[l]
}

// LinkOfVar inverts LinkVarIndex: the link whose variable is v, or
// false when v is not a link variable (a header, node, or risk-group
// variable).
func (s *Space) LinkOfVar(v int) (topology.LinkID, bool) {
	if v < HeaderBits || v >= HeaderBits+s.Links {
		return 0, false
	}
	if s.inv == nil {
		return topology.LinkID(v - HeaderBits), true
	}
	return topology.LinkID(s.inv[v-HeaderBits]), true
}

// LinkVar returns the BDD "link l is up".
func (s *Space) LinkVar(l topology.LinkID) bdd.Node {
	return s.M.Var(s.LinkVarIndex(l))
}

// LinkVars returns the variable indices of all links.
func (s *Space) LinkVars() []int { return s.allLinkVars }

// NodeVarIndex returns the variable index reserved for router r's node
// state (requires the space to have been created with extraVars ≥
// number of routers).
func (s *Space) NodeVarIndex(r topology.RouterID) int {
	return HeaderBits + s.Links + int(r)
}

// Prefix returns the BDD over header variables matching destination
// addresses inside p (a cube fixing the top p.Len bits).
func (s *Space) Prefix(p route.Prefix) bdd.Node {
	if n, ok := s.prefixCache[p]; ok {
		return n
	}
	// Build bottom-up so each intermediate node is final (levels
	// ascend from bit p.Len-1 down to 0).
	n := bdd.True
	for bit := p.Len - 1; bit >= 0; bit-- {
		if p.Addr&(1<<(31-bit)) != 0 {
			n = s.M.And(s.M.Var(bit), n)
		} else {
			n = s.M.And(s.M.NVar(bit), n)
		}
	}
	s.M.Ref(n)
	s.prefixCache[p] = n
	return n
}

// AddrCube returns the BDD matching exactly the destination address a.
func (s *Space) AddrCube(a uint32) bdd.Node {
	return s.Prefix(route.Prefix{Addr: a, Len: 32})
}

// AtMostKLinkFailures returns the paper's filtering BDD lf^k (§7.1): true
// iff at most k link variables are false.
func (s *Space) AtMostKLinkFailures(k int) bdd.Node {
	return s.M.AtMostKFalse(s.allLinkVars, k)
}

// AllLinksUp returns the cube with every link variable true.
func (s *Space) AllLinksUp() bdd.Node {
	return s.M.AtMostKFalse(s.allLinkVars, 0)
}

// HeaderCube returns the positive cube over all header variables, the
// varset for quantifying packet bits away.
func (s *Space) HeaderCube() bdd.Node {
	if s.headerCube == bdd.False {
		vars := make([]int, HeaderBits)
		for i := range vars {
			vars[i] = i
		}
		s.headerCube = s.M.Ref(s.M.CubeVars(vars))
	}
	return s.headerCube
}

// NonHeaderCube returns the positive cube over the link (and node)
// variables, the varset for quantifying topology state away.
func (s *Space) NonHeaderCube() bdd.Node {
	if s.nonHeaderCube == bdd.False {
		vars := make([]int, s.M.NumVars()-HeaderBits)
		for i := range vars {
			vars[i] = HeaderBits + i
		}
		s.nonHeaderCube = s.M.Ref(s.M.CubeVars(vars))
	}
	return s.nonHeaderCube
}

// TopoOnly existentially quantifies the header bits out of f, leaving a
// condition over link variables only.
func (s *Space) TopoOnly(f bdd.Node) bdd.Node {
	return s.M.ExistsCube(f, s.HeaderCube())
}

// TopoOnlyAnd returns TopoOnly(f ∧ g) as one fused relational product,
// never materializing the conjunction.
func (s *Space) TopoOnlyAnd(f, g bdd.Node) bdd.Node {
	return s.M.AndExists(f, g, s.HeaderCube())
}

// HeaderOnly existentially quantifies the link (and node) variables out
// of f, leaving a packet-set BDD.
func (s *Space) HeaderOnly(f bdd.Node) bdd.Node {
	return s.M.ExistsCube(f, s.NonHeaderCube())
}

// HeaderOnlyAnd returns HeaderOnly(f ∧ g) as one fused relational
// product.
func (s *Space) HeaderOnlyAnd(f, g bdd.Node) bdd.Node {
	return s.M.AndExists(f, g, s.NonHeaderCube())
}

// Intersects reports whether f ∧ g is satisfiable without building the
// conjunction.
func (s *Space) Intersects(f, g bdd.Node) bool {
	return s.M.AndSat(f, g)
}

// LinkProbabilities returns a probability vector assigning each link
// variable an up-probability of 1-pDown, and every other variable 1
// (deterministically true).
func (s *Space) LinkProbabilities(pDown float64) []float64 {
	p := make([]float64, s.M.NumVars())
	for i := range p {
		p[i] = 1
	}
	for _, v := range s.allLinkVars {
		p[v] = 1 - pDown
	}
	return p
}

// AddressInPrefix returns a concrete address inside p (the network
// address).
func AddressInPrefix(p route.Prefix) uint32 { return p.Addr }

package symbol

import (
	"testing"

	"sre/internal/bdd"
	"sre/internal/route"
	"sre/internal/topology"
)

func TestVariableLayout(t *testing.T) {
	s := NewSpace(5, bdd.Config{}, 3, nil)
	if s.M.NumVars() != HeaderBits+5+3 {
		t.Fatalf("vars = %d", s.M.NumVars())
	}
	if s.LinkVarIndex(0) != HeaderBits || s.LinkVarIndex(4) != HeaderBits+4 {
		t.Fatal("link variable layout")
	}
	if s.NodeVarIndex(0) != HeaderBits+5 {
		t.Fatal("node variable layout")
	}
	if got := s.LinkVars(); len(got) != 5 || got[0] != HeaderBits {
		t.Fatalf("LinkVars = %v", got)
	}
}

func TestPrefixEncoding(t *testing.T) {
	s := NewSpace(2, bdd.Config{}, 0, nil)
	p := s.Prefix(route.MustParsePrefix("128.0.0.0/1"))
	// Matches addresses with the top bit set.
	if !s.M.Eval(p, func(v int) bool { return v == 0 }) {
		t.Error("128/1 should match top-bit-set")
	}
	if s.M.Eval(p, func(v int) bool { return false }) {
		t.Error("128/1 should not match 0.0.0.0")
	}
	// Default route matches everything.
	if s.Prefix(route.MustParsePrefix("0.0.0.0/0")) != bdd.True {
		t.Error("0/0 should be True")
	}
	// Caching returns the identical node.
	if s.Prefix(route.MustParsePrefix("128.0.0.0/1")) != p {
		t.Error("prefix cache broken")
	}
	// Nested prefixes: /2 implies /1.
	q := s.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	if s.M.And(q, p) != q {
		t.Error("192/2 ⊆ 128/1")
	}
}

func TestAddrCube(t *testing.T) {
	s := NewSpace(1, bdd.Config{}, 0, nil)
	const addr = 0xC0A80101 // 192.168.1.1
	c := s.AddrCube(addr)
	if !s.M.Eval(c, func(v int) bool { return addr&(1<<(31-v)) != 0 }) {
		t.Fatal("cube does not match its own address")
	}
	if got := s.M.SatCount(c, HeaderBits); got != 1 {
		t.Fatalf("address cube should have exactly 1 assignment, got %v", got)
	}
}

func TestAtMostKLinkFailures(t *testing.T) {
	s := NewSpace(4, bdd.Config{}, 0, nil)
	f := s.AtMostKLinkFailures(1)
	// All up: ok. One down: ok. Two down: no.
	eval := func(down ...int) bool {
		return s.M.Eval(f, func(v int) bool {
			for _, d := range down {
				if v == s.LinkVarIndex(topology.LinkID(d)) {
					return false
				}
			}
			return true
		})
	}
	if !eval() || !eval(2) {
		t.Error("≤1 failures should satisfy")
	}
	if eval(1, 3) {
		t.Error("2 failures should violate k=1")
	}
	if s.AllLinksUp() != s.AtMostKLinkFailures(0) {
		t.Error("AllLinksUp should equal lf^0")
	}
}

func TestTopoAndHeaderProjection(t *testing.T) {
	s := NewSpace(3, bdd.Config{}, 0, nil)
	hdr := s.Prefix(route.MustParsePrefix("10.0.0.0/8"))
	link := s.M.Var(s.LinkVarIndex(1))
	f := s.M.And(hdr, link)
	if got := s.TopoOnly(f); got != link {
		t.Errorf("TopoOnly = %s", s.M.Format(got, nil))
	}
	if got := s.HeaderOnly(f); got != hdr {
		t.Errorf("HeaderOnly = %s", s.M.Format(got, nil))
	}
}

func TestLinkProbabilities(t *testing.T) {
	s := NewSpace(3, bdd.Config{}, 2, nil)
	p := s.LinkProbabilities(0.01)
	if len(p) != s.M.NumVars() {
		t.Fatal("length")
	}
	for i := 0; i < HeaderBits; i++ {
		if p[i] != 1 {
			t.Fatal("header vars must be deterministic")
		}
	}
	for _, v := range s.LinkVars() {
		if p[v] != 0.99 {
			t.Fatal("link prob")
		}
	}
	if p[s.NodeVarIndex(0)] != 1 {
		t.Fatal("node vars default to up")
	}
}

func TestPermutedVariableLayout(t *testing.T) {
	// perm[l] is the level offset of link l: link 0 → deepest slot.
	perm := []int{3, 1, 0, 2}
	s := NewSpace(4, bdd.Config{}, 2, perm)
	if s.M.NumVars() != HeaderBits+4+2 {
		t.Fatalf("vars = %d", s.M.NumVars())
	}
	for l, want := range perm {
		if got := s.LinkVarIndex(topology.LinkID(l)); got != HeaderBits+want {
			t.Errorf("LinkVarIndex(%d) = %d, want %d", l, got, HeaderBits+want)
		}
	}
	// LinkOfVar is the exact inverse over the link band and rejects
	// everything outside it.
	for l := 0; l < 4; l++ {
		got, ok := s.LinkOfVar(s.LinkVarIndex(topology.LinkID(l)))
		if !ok || got != topology.LinkID(l) {
			t.Errorf("LinkOfVar round-trip broke for link %d: %d, %t", l, got, ok)
		}
	}
	for _, v := range []int{0, HeaderBits - 1, HeaderBits + 4, HeaderBits + 5} {
		if _, ok := s.LinkOfVar(v); ok {
			t.Errorf("LinkOfVar(%d) accepted a non-link variable", v)
		}
	}
	// Node variables sit above the link band, unaffected by the perm.
	if s.NodeVarIndex(0) != HeaderBits+4 {
		t.Fatal("node variable layout under permutation")
	}
}

func TestPermutationSemanticInvariance(t *testing.T) {
	// Set-level constructs must be identical under any permutation of
	// the link band: the variable SET is unchanged, only names move.
	id := NewSpace(4, bdd.Config{}, 0, nil)
	pm := NewSpace(4, bdd.Config{}, 0, []int{2, 0, 3, 1})
	for k := 0; k <= 2; k++ {
		a := id.M.SatCount(id.AtMostKLinkFailures(k), id.M.NumVars())
		b := pm.M.SatCount(pm.AtMostKLinkFailures(k), pm.M.NumVars())
		if a != b {
			t.Errorf("AtMostK(%d) model count differs: %v vs %v", k, a, b)
		}
	}
	// A single link literal relocates but keeps its meaning: evaluating
	// "link 2 up" under a scenario gives the same answer in both spaces.
	down := map[topology.LinkID]bool{2: true}
	for _, s := range []*Space{id, pm} {
		f := s.M.Var(s.LinkVarIndex(2))
		got := s.M.Eval(f, func(v int) bool {
			l, isLink := s.LinkOfVar(v)
			return !(isLink && down[l])
		})
		if got {
			t.Error("link-2-up literal should be false when link 2 is down")
		}
	}
}

func TestNewSpaceRejectsBadPerm(t *testing.T) {
	for name, perm := range map[string][]int{
		"short":     {0, 1},
		"dup":       {0, 0, 1},
		"out-range": {0, 1, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewSpace accepted invalid perm %v", name, perm)
				}
			}()
			NewSpace(3, bdd.Config{}, 0, perm)
		}()
	}
}

package analysis

import (
	"sre/internal/bdd"
	"sre/internal/prob"
	"sre/internal/route"
	"sre/internal/topology"
)

// Differential analysis (§6.5): comparing two configurations (before and
// after a change) by XOR-ing the topology BDDs of each property. Unlike
// DNA, which only compares behaviour under no failures, the comparison
// covers every failure combination within the explored budget, so
// differences that manifest only under failures are caught.

// Difference describes a behaviour change found for one (source, prefix)
// reachability property.
type Difference struct {
	Src    topology.RouterID
	Prefix route.Prefix
	// DiffBDD encodes the (packet, failure) tuples whose reachability
	// differs between the two configurations. It is False when only
	// path-level (waypoint) behaviour changed.
	DiffBDD bdd.Node
	// PathsChanged is set when the (packet, failure) → forwarding-path
	// relation differs even though end-to-end reachability may not:
	// detected by XOR-ing waypoint property BDDs for every interior
	// router of the delivering paths (§6.5 considers all properties,
	// not just reachability).
	PathsChanged bool
	// Witness is one failure scenario exposing the difference: the
	// variables assigned false are the failed links (others are up).
	WitnessDownLinks []topology.LinkID
	// ToleranceBefore/After compare failure tolerance.
	ToleranceBefore, ToleranceAfter int
	// ProbBefore/After compare reachability probabilities under the
	// model passed to DiffReachability (zero model → zeros). When only
	// paths changed, these carry the waypoint property's values.
	ProbBefore, ProbAfter float64
}

// ChangedUnderNoFailures reports whether the difference is visible with
// all links up (the only kind of difference DNA can detect).
func (d *Difference) ChangedUnderNoFailures(p *Pipeline) bool {
	return p.Sp.M.And(d.DiffBDD, p.Sp.AllLinksUp()) != bdd.False
}

// DiffReachability compares the reachability of every (source, prefix)
// pair between two pipelines computed from the old and new
// configurations. Both pipelines must share the same topology (the
// change is configuration-only) but use separate symbolic spaces; the
// comparison happens in the space of the "after" pipeline, where the
// "before" property BDD is rebuilt from its PFECs.
//
// model may be nil to skip probability comparison.
func DiffReachability(before, after *Pipeline, model *prob.LinkModel) []Difference {
	m := after.Sp.M
	var out []Difference
	t := after.Net.Topology
	prefixes := unionPrefixes(before, after)
	for s := 0; s < t.NumRouters(); s++ {
		src := topology.RouterID(s)
		for _, pfx := range prefixes {
			hdrAfter := after.OwnedHeaders(pfx)
			propAfter := after.ReachPrefixBDD(src, pfx)
			propBefore := transplantReach(before, after, src, pfx)
			diff := m.Xor(propAfter, propBefore)
			pathsChanged := false
			var wpt topology.RouterID = -1
			var wDiff bdd.Node = bdd.False
			if diff == bdd.False {
				// Reachability agrees everywhere; check waypoint
				// properties for path-level changes.
				wpt, wDiff = waypointDiff(before, after, src, pfx)
				pathsChanged = wDiff != bdd.False
				if !pathsChanged {
					continue
				}
			}
			d := Difference{Src: src, Prefix: pfx, DiffBDD: diff, PathsChanged: pathsChanged}
			witness := diff
			if witness == bdd.False {
				witness = wDiff
			}
			if assign, ok := m.AnySat(witness); ok {
				for v, val := range assign {
					// Decode through the space's order permutation, and
					// only for actual link variables (node/risk variables
					// are not failure witnesses).
					if l, isLink := after.Sp.LinkOfVar(v); isLink && !val {
						d.WitnessDownLinks = append(d.WitnessDownLinks, l)
					}
				}
			}
			hdrBefore := before.OwnedHeaders(pfx)
			if pathsChanged {
				// Report the waypoint property's tolerance/probability:
				// that is where the change shows.
				wb := transplantWaypoint(before, after, src, pfx, wpt)
				wa := after.WaypointBDD(src, after.OriginSet(pfx), wpt, hdrAfter)
				d.ToleranceBefore = after.MinTolerance(wb, hdrAfter)
				d.ToleranceAfter = after.MinTolerance(wa, hdrAfter)
				if model != nil {
					d.ProbBefore = after.MinProbability(wb, *model)
					d.ProbAfter = after.MinProbability(wa, *model)
				}
			} else {
				d.ToleranceBefore = before.MinTolerance(before.ReachPrefixBDD(src, pfx), hdrBefore)
				d.ToleranceAfter = after.MinTolerance(propAfter, hdrAfter)
				if model != nil {
					d.ProbBefore = before.MinProbability(before.ReachPrefixBDD(src, pfx), *model)
					d.ProbAfter = after.MinProbability(propAfter, *model)
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// transplantReach rebuilds the "before" reach property BDD inside the
// "after" pipeline's symbolic space. Both spaces cover the same
// topology; copyBDD re-encodes each predicate, translating link
// variables through the spaces' order permutations.
func transplantReach(before, after *Pipeline, s topology.RouterID, pfx route.Prefix) bdd.Node {
	// When the two pipelines share one space the before property can be
	// used directly.
	if before.Sp == after.Sp {
		return before.ReachPrefixBDD(s, pfx)
	}
	ma := after.Sp.M
	dst := before.OriginSet(pfx)
	reach := bdd.False
	for _, pf := range before.PFECs(s) {
		if !pf.Delivered || !dst[pf.Dst()] {
			continue
		}
		reach = ma.Or(reach, copyBDD(before, after, pf.Pred))
	}
	// Header universe: the addresses owned by pfx in the BEFORE
	// configuration, encoded in the after space.
	hdr := after.Sp.Prefix(pfx)
	for _, other := range before.Net.AllPrefixes() {
		if other != pfx && pfx.Covers(other) {
			hdr = ma.Diff(hdr, after.Sp.Prefix(other))
		}
	}
	return ma.And(reach, hdr)
}

// waypointDiff looks for a path-level difference: an interior router of
// some delivering path whose waypoint property BDD differs between the
// two pipelines. It returns the first distinguishing waypoint and the
// XOR of its property BDDs (False, -1 when none differs).
func waypointDiff(before, after *Pipeline, s topology.RouterID, pfx route.Prefix) (topology.RouterID, bdd.Node) {
	ma := after.Sp.M
	dstB := before.OriginSet(pfx)
	dstA := after.OriginSet(pfx)
	cands := make(map[topology.RouterID]bool)
	collect := func(p *Pipeline, dst map[topology.RouterID]bool) {
		for _, pf := range p.PFECs(s) {
			if !pf.Delivered || !dst[pf.Dst()] || len(pf.Path) < 3 {
				continue
			}
			for _, r := range pf.Path[1 : len(pf.Path)-1] {
				cands[r] = true
			}
		}
	}
	collect(before, dstB)
	collect(after, dstA)
	hdrAfter := after.OwnedHeaders(pfx)
	for w := range cands {
		wb := transplantWaypoint(before, after, s, pfx, w)
		wa := after.WaypointBDD(s, dstA, w, hdrAfter)
		if d := ma.Xor(wb, wa); d != bdd.False {
			return w, d
		}
	}
	return -1, bdd.False
}

// transplantWaypoint rebuilds the before-pipeline's waypoint property
// BDD in the after space (see transplantReach).
func transplantWaypoint(before, after *Pipeline, s topology.RouterID, pfx route.Prefix, w topology.RouterID) bdd.Node {
	ma := after.Sp.M
	dst := before.OriginSet(pfx)
	reach := bdd.False
	for _, pf := range before.PFECs(s) {
		if !pf.Delivered || !dst[pf.Dst()] || !pf.Traverses(w) {
			continue
		}
		if before.Sp == after.Sp {
			reach = ma.Or(reach, pf.Pred)
			continue
		}
		reach = ma.Or(reach, copyBDD(before, after, pf.Pred))
	}
	hdr := after.Sp.Prefix(pfx)
	for _, other := range before.Net.AllPrefixes() {
		if other != pfx && pfx.Covers(other) {
			hdr = ma.Diff(hdr, after.Sp.Prefix(other))
		}
	}
	return ma.And(reach, hdr)
}

// copyBDD structurally copies a BDD from the before-space into the
// after-space. Variable indices agree between the spaces because both
// are laid out over the same topology.
func copyBDD(before, after *Pipeline, n bdd.Node) bdd.Node {
	mb, ma := before.Sp.M, after.Sp.M
	memo := make(map[bdd.Node]bdd.Node)
	var rec func(bdd.Node) bdd.Node
	rec = func(x bdd.Node) bdd.Node {
		if x == bdd.False || x == bdd.True {
			return x
		}
		if r, ok := memo[x]; ok {
			return r
		}
		v := mb.VarOf(x)
		// Translate link variables through the two spaces' order
		// permutations; header and node/risk variables share indices.
		if l, isLink := before.Sp.LinkOfVar(v); isLink {
			v = after.Sp.LinkVarIndex(l)
		}
		r := ma.Ite(ma.Var(v), rec(mb.High(x)), rec(mb.Low(x)))
		memo[x] = r
		return r
	}
	return rec(n)
}

func unionPrefixes(a, b *Pipeline) []route.Prefix {
	seen := make(map[route.Prefix]bool)
	var out []route.Prefix
	for _, p := range a.Net.AllPrefixes() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range b.Net.AllPrefixes() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

package analysis

import (
	"fmt"
	"sort"
	"time"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
)

// Miner mines network specifications from configurations, the task of
// Figure 7 (Config2Spec comparison): for every (source router,
// destination prefix) pair it determines the reachability failure
// tolerance up to KMax, plus isolation pairs, waypoint tolerances, and
// load-balancing degrees.
//
// The miner implements the paper's stratified approach (§7.2): stratum k
// verifies, with route pruning at budget k, the properties that survived
// stratum k-1 and whose topological min-cut exceeds k. Pairs whose
// min-cut equals k are decided for free (prefix pruning): they survived
// stratum k-1 (tolerance ≥ k-1) and a k-link cut disconnects them
// (tolerance ≤ k-1), so their tolerance is exactly k-1. Prefixes with no
// undecided pair left are excluded from symbolic route computation
// entirely.
type Miner struct {
	Net  *config.Network
	KMax int
	// DisablePrefixPruning turns the stratified prefix pruning off (the
	// "one-shot" comparison point of §8.4).
	DisablePrefixPruning bool
	// SrcOpts tunes the per-stratum engine (Abstract, NoECMP, ...);
	// PruneK and Prefixes are set by the miner.
	SrcOpts src.Options
	// Waypoint, when non-nil, selects the waypoint router for waypoint
	// mining of each (src, prefix) pair.
	Waypoint func(s topology.RouterID, pfx route.Prefix) (topology.RouterID, bool)

	// Resilient enables graceful degradation: a stratum whose BDD node
	// table overflows quarantines the offending prefixes and retries
	// them through the escalation ladder (without budget halving — a
	// stratum-k verdict is only sound at budget exactly k) instead of
	// aborting the whole mining run. Prefixes that still fail are
	// reported in Specs.Outcomes with their surviving pairs marked in
	// Specs.DegradedPairs; all other prefixes mine normally.
	Resilient bool

	// StrataTimes records the wall time of each stratum.
	StrataTimes []time.Duration
}

// PairKey identifies a mined property instance.
type PairKey struct {
	Src    topology.RouterID
	Prefix route.Prefix
}

// Specs is the mining result.
type Specs struct {
	// ReachTolerance maps each pair to its reachability failure
	// tolerance: -1 (unreachable even with all links up), 0..KMax-1, or
	// InfiniteTolerance when it survives all strata (reported as ≥KMax).
	ReachTolerance map[PairKey]int
	// Isolated lists pairs whose destination is unreachable under every
	// failure combination of at most KMax failures.
	Isolated []PairKey
	// WaypointTolerance maps pairs to the tolerance of their waypoint
	// property (present only when a waypoint selector was configured).
	WaypointTolerance map[PairKey]int
	// LoadBalance maps pairs to the number of simultaneous forwarding
	// paths under no failures.
	LoadBalance map[PairKey]int
	// Outcomes reports per-prefix resilience outcomes (resilient
	// mining only): prefixes that were quarantined, degraded, or
	// failed at some stratum, merged across strata. Empty maps mean a
	// fully clean run.
	Outcomes map[route.Prefix]PrefixOutcome
	// DegradedPairs marks pairs whose ReachTolerance is a lower bound:
	// their prefix exhausted the escalation ladder at the stratum that
	// would have decided them, so only "tolerance ≥ value" is known.
	DegradedPairs map[PairKey]bool
}

// Mine runs the stratified mining loop.
func (mn *Miner) Mine() (*Specs, error) {
	tel := mn.SrcOpts.Telemetry
	telStrata := tel.Counter("mine.strata")
	telDecided := tel.Counter("mine.pairs_decided")
	mineSpan := tel.Start("mine")
	defer mineSpan.End()
	t := mn.Net.Topology
	specs := &Specs{
		ReachTolerance:    make(map[PairKey]int),
		WaypointTolerance: make(map[PairKey]int),
		LoadBalance:       make(map[PairKey]int),
		Outcomes:          make(map[route.Prefix]PrefixOutcome),
		DegradedPairs:     make(map[PairKey]bool),
	}
	prefixes := mn.Net.AllPrefixes()
	origins := make(map[route.Prefix][]topology.RouterID, len(prefixes))
	for _, p := range prefixes {
		origins[p] = mn.Net.OriginsOf(p)
	}
	// Pair universe: every source towards every prefix it does not
	// originate itself.
	undecided := make(map[PairKey]bool)
	minCut := make(map[PairKey]int)
	for _, pfx := range prefixes {
		for s := 0; s < t.NumRouters(); s++ {
			srcID := topology.RouterID(s)
			if containsRouter(origins[pfx], srcID) {
				continue
			}
			key := PairKey{Src: srcID, Prefix: pfx}
			undecided[key] = true
			// Topological cap: max over origins (reaching any origin
			// suffices).
			mc := 0
			for _, o := range origins[pfx] {
				if c := t.MinCut(srcID, o); c > mc {
					mc = c
				}
			}
			minCut[key] = mc
		}
	}

	var isolationCandidates []PairKey
	for k := 0; k <= mn.KMax; k++ {
		start := time.Now()
		telStrata.Inc()
		stratumSpan := mineSpan.Start(fmt.Sprintf("stratum-%d", k))
		if !mn.DisablePrefixPruning {
			for key := range undecided {
				if minCut[key] <= k {
					specs.ReachTolerance[key] = minCut[key] - 1
					if _, done := specs.WaypointTolerance[key]; !done && mn.Waypoint != nil {
						specs.WaypointTolerance[key] = minCut[key] - 1
					}
					delete(undecided, key)
					telDecided.Inc()
				}
			}
		}
		prefixSet := make(map[route.Prefix]bool)
		for key := range undecided {
			prefixSet[key.Prefix] = true
		}
		if len(prefixSet) == 0 {
			mn.StrataTimes = append(mn.StrataTimes, time.Since(start))
			stratumSpan.End()
			break
		}
		stratumSpan.SetAttr("k", k)
		stratumSpan.SetAttr("pairs", len(undecided))
		stratumSpan.SetAttr("prefixes", len(prefixSet))
		if workers := mn.stratumWorkers(); workers > 1 {
			err := mn.mineStratumParallel(specs, undecided, &isolationCandidates, k, workers)
			stratumSpan.End()
			if err != nil {
				return nil, fmt.Errorf("stratum %d: %w", k, err)
			}
			mn.StrataTimes = append(mn.StrataTimes, time.Since(start))
			continue
		}
		opts := mn.SrcOpts
		opts.PruneK = k
		domain := sortedPrefixes(mn.expandForAggregates(prefixSet))
		if !mn.DisablePrefixPruning {
			opts.Prefixes = domain
		}
		// Resilient mode runs the stratum partitioned: a node-table
		// overflow quarantines the offending prefixes (retried through
		// the ladder, without budget halving) instead of aborting.
		var pt *Partitioned
		var pipe *Pipeline
		var err error
		if mn.Resilient {
			pt, err = RunPartitioned(mn.Net, opts, domain, LadderOptions{DisableBudgetHalving: true})
		} else {
			pipe, err = Run(mn.Net, opts)
		}
		if err != nil {
			stratumSpan.End()
			return nil, fmt.Errorf("stratum %d: %w", k, err)
		}
		// A pair's property may span several pipelines after the
		// split-headers rung; budgets are per-space, cached per pipe.
		budgets := make(map[*Pipeline]bdd.Node)
		budgetOf := func(p *Pipeline) bdd.Node {
			b, ok := budgets[p]
			if !ok {
				b = p.Sp.AtMostKLinkFailures(k)
				budgets[p] = b
			}
			return b
		}
		pipesFor := func(pfx route.Prefix) []*Pipeline {
			if pt != nil {
				return pt.PipelinesFor(pfx)
			}
			return []*Pipeline{pipe}
		}
		pairTotal := len(undecided)
		pairDone := 0
		for key := range undecided {
			pairDone++
			if tel.Active() {
				tel.Emit(obs.Event{Stage: "mine",
					Done: int64(pairDone), Total: int64(pairTotal), Unit: "pairs",
					Detail: fmt.Sprintf("stratum %d", k), Final: pairDone == pairTotal})
			}
			if pt != nil {
				if out := pt.Outcome(key.Prefix); out != nil && out.Err != nil {
					// The prefix exhausted the ladder at this stratum.
					// Its pairs survived stratum k-1, so k-1 is a sound
					// lower bound; record it and mark them degraded.
					specs.ReachTolerance[key] = k - 1
					specs.DegradedPairs[key] = true
					if mn.Waypoint != nil {
						if _, done := specs.WaypointTolerance[key]; !done {
							specs.WaypointTolerance[key] = k - 1
						}
					}
					delete(undecided, key)
					telDecided.Inc()
					continue
				}
			}
			violated := false
			reachEmpty := true
			for _, pipe := range pipesFor(key.Prefix) {
				m := pipe.Sp.M
				budget := budgetOf(pipe)
				hdr := pipe.OwnedHeaders(key.Prefix)
				dst := pipe.OriginSet(key.Prefix)
				prop := pipe.ReachBDD(key.Src, dst, hdr)
				if prop != bdd.False {
					reachEmpty = false
				}
				// Violated iff some (packet, scenario) within budget is
				// not covered by the property.
				if m.DiffSat(m.And(hdr, budget), prop) {
					violated = true
				}
				if mn.Waypoint != nil {
					if _, done := specs.WaypointTolerance[key]; !done {
						if w, ok := mn.Waypoint(key.Src, key.Prefix); ok {
							wprop := pipe.WaypointBDD(key.Src, dst, w, hdr)
							if m.DiffSat(m.And(hdr, budget), wprop) {
								specs.WaypointTolerance[key] = k - 1
							}
						}
					}
				}
			}
			if violated {
				specs.ReachTolerance[key] = k - 1
				delete(undecided, key)
				telDecided.Inc()
				if reachEmpty {
					isolationCandidates = append(isolationCandidates, key)
				}
				continue
			}
			if k == 0 {
				// Across scoped sibling pipelines the per-half path
				// counts cannot be unioned (PFECs live in different
				// managers); the max is a sound lower bound.
				for _, pipe := range pipesFor(key.Prefix) {
					dst := pipe.OriginSet(key.Prefix)
					if n := pipe.LoadBalancePaths(key.Src, dst, pipe.OwnedHeaders(key.Prefix)); n > specs.LoadBalance[key] {
						specs.LoadBalance[key] = n
					}
				}
			}
		}
		if pt != nil {
			mergeOutcomes(specs, pt)
			pt.Release()
		} else {
			pipe.Release()
		}
		mn.StrataTimes = append(mn.StrataTimes, time.Since(start))
		stratumSpan.End()
	}
	// Pairs surviving every stratum tolerate at least KMax failures.
	for key := range undecided {
		specs.ReachTolerance[key] = InfiniteTolerance
		telDecided.Inc()
		if mn.Waypoint != nil {
			if _, done := specs.WaypointTolerance[key]; !done {
				specs.WaypointTolerance[key] = InfiniteTolerance
			}
		}
	}
	if err := mn.confirmIsolation(specs, isolationCandidates); err != nil {
		return nil, err
	}
	sort.Slice(specs.Isolated, func(i, j int) bool {
		a, b := specs.Isolated[i], specs.Isolated[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Prefix.Addr < b.Prefix.Addr
	})
	return specs, nil
}

// confirmIsolation re-checks candidates (pairs whose reach BDD was empty
// at their deciding stratum) at the full failure budget: a pair is
// isolated only if no combination of at most KMax failures deflects
// traffic to the destination.
func (mn *Miner) confirmIsolation(specs *Specs, candidates []PairKey) error {
	if len(candidates) == 0 {
		return nil
	}
	if workers := mn.stratumWorkers(); workers > 1 {
		return mn.confirmIsolationParallel(specs, candidates, workers)
	}
	prefixSet := make(map[route.Prefix]bool)
	for _, key := range candidates {
		prefixSet[key.Prefix] = true
	}
	opts := mn.SrcOpts
	opts.PruneK = mn.KMax
	opts.Prefixes = sortedPrefixes(mn.expandForAggregates(prefixSet))
	if mn.Resilient {
		pt, err := RunPartitioned(mn.Net, opts, opts.Prefixes, LadderOptions{DisableBudgetHalving: true})
		if err != nil {
			return fmt.Errorf("isolation confirmation: %w", err)
		}
		defer pt.Release()
		mergeOutcomes(specs, pt)
		for _, key := range candidates {
			pipes := pt.PipelinesFor(key.Prefix)
			if len(pipes) == 0 {
				continue // prefix failed: isolation cannot be confirmed
			}
			isolated := true
			for _, pipe := range pipes {
				if pipe.ReachBDD(key.Src, pipe.OriginSet(key.Prefix), pipe.OwnedHeaders(key.Prefix)) != bdd.False {
					isolated = false
					break
				}
			}
			if isolated {
				specs.Isolated = append(specs.Isolated, key)
			}
		}
		return nil
	}
	pipe, err := Run(mn.Net, opts)
	if err != nil {
		return fmt.Errorf("isolation confirmation: %w", err)
	}
	defer pipe.Release()
	for _, key := range candidates {
		prop := pipe.ReachBDD(key.Src, pipe.OriginSet(key.Prefix), pipe.OwnedHeaders(key.Prefix))
		if prop == bdd.False {
			specs.Isolated = append(specs.Isolated, key)
		}
	}
	return nil
}

// mergeOutcomes folds one partitioned run's resilience outcomes into
// the spec summary: flags accumulate across strata, rungs concatenate,
// and the first error per prefix wins.
func mergeOutcomes(specs *Specs, pt *Partitioned) {
	for _, o := range pt.Outcomes() {
		if !o.Quarantined && !o.Degraded && o.Err == nil {
			continue
		}
		mergeOutcome(specs, o)
	}
}

// mergeOutcome folds one prefix outcome into the spec summary.
func mergeOutcome(specs *Specs, o PrefixOutcome) {
	prev, ok := specs.Outcomes[o.Prefix]
	if !ok {
		specs.Outcomes[o.Prefix] = o
		return
	}
	prev.Quarantined = prev.Quarantined || o.Quarantined
	prev.Degraded = prev.Degraded || o.Degraded
	prev.Rungs = append(prev.Rungs, o.Rungs...)
	if prev.Err == nil {
		prev.Err = o.Err
	}
	if o.EffectivePruneK < prev.EffectivePruneK {
		prev.EffectivePruneK = o.EffectivePruneK
	}
	specs.Outcomes[o.Prefix] = prev
}

// expandForAggregates widens a prefix set with the originated
// more-specific prefixes of any configured aggregate in the set, so that
// restricted route computations still generate the aggregates.
func (mn *Miner) expandForAggregates(set map[route.Prefix]bool) map[route.Prefix]bool {
	out := make(map[route.Prefix]bool, len(set))
	for p := range set {
		out[p] = true
	}
	for _, rc := range mn.Net.Routers {
		if rc.BGP == nil {
			continue
		}
		for _, agg := range rc.BGP.Aggregates {
			if !set[agg] {
				continue
			}
			for _, contrib := range mn.Net.AllPrefixes() {
				if agg.Covers(contrib) && contrib != agg {
					out[contrib] = true
				}
			}
		}
	}
	return out
}

// GroupSpec is a generalized reachability specification: every
// originated prefix under Prefix has the same tolerance K from Src.
type GroupSpec struct {
	Src    topology.RouterID
	Prefix route.Prefix
	K      int
	// Members is the number of originated prefixes the group covers.
	Members int
}

// Generalize merges per-prefix reachability specs into prefix-group
// specs (§2.1: "generalize these requirements to groups of prefixes"):
// sibling prefixes with identical tolerance fold into their parent,
// repeatedly, so a data-center pod whose /24s all tolerate one failure
// yields a single /20-level spec instead of sixteen.
func (s *Specs) Generalize() []GroupSpec {
	type entry struct {
		k       int
		members int
	}
	perSrc := make(map[topology.RouterID]map[route.Prefix]entry)
	for key, k := range s.ReachTolerance {
		m, ok := perSrc[key.Src]
		if !ok {
			m = make(map[route.Prefix]entry)
			perSrc[key.Src] = m
		}
		m[key.Prefix] = entry{k: k, members: 1}
	}
	var out []GroupSpec
	for src, m := range perSrc {
		// Fold siblings bottom-up.
		for changed := true; changed; {
			changed = false
			for p, e := range m {
				if p.Len == 0 {
					continue
				}
				sib := route.Prefix{Addr: p.Addr ^ (1 << (32 - p.Len)), Len: p.Len}
				se, ok := m[sib]
				if !ok || se.k != e.k {
					continue
				}
				parent := route.Prefix{Addr: p.Addr & route.MaskOf(p.Len-1), Len: p.Len - 1}
				if _, exists := m[parent]; exists {
					continue
				}
				delete(m, p)
				delete(m, sib)
				m[parent] = entry{k: e.k, members: e.members + se.members}
				changed = true
			}
		}
		for p, e := range m {
			out = append(out, GroupSpec{Src: src, Prefix: p, K: e.k, Members: e.members})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Prefix.Addr != b.Prefix.Addr {
			return a.Prefix.Addr < b.Prefix.Addr
		}
		return a.Prefix.Len < b.Prefix.Len
	})
	return out
}

func containsRouter(rs []topology.RouterID, r topology.RouterID) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

func sortedPrefixes(set map[route.Prefix]bool) []route.Prefix {
	out := make([]route.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

package analysis

// Persistent result cache: a content-addressed store of per-prefix
// verification results. The paper's prefix decomposition (§7.2) makes a
// prefix task a pure function of (the config slice its task domain can
// observe, the topology, the result-shaping options, the kernel), so a
// result computed once — in-process or by a worker subprocess — can be
// replayed byte-identically by any later run with the same key. Records
// are the coordinator wire forms (WireOutcome + WirePipeline) plus an
// optional telemetry shard, wrapped in JSON; internal/store adds
// framing, checksums, and crash-safe publication underneath.
//
// Soundness rests entirely on the key: anything that can change the
// outcome, the PFEC set, or a downstream property answer must be
// hashed. CacheKey covers the decomposition inputs (prefix + closed
// task domain), the sliced configuration (config.Format of a clone
// trimmed to what the scoped run can observe — which includes the
// topology section), every result-shaping option, the ladder switches,
// and the kernel choice, all under a format version that changes
// whenever the record layout or the meaning of any hashed field does.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/store"
)

// cacheFormatVersion stamps both the key preimage and the record body.
// Bump it whenever the record layout, the wire forms, or the semantics
// of any keyed option change: old records then simply miss.
// v2: serialized BDDs moved to the order-stamped BDD2 format (dynamic
// reordering); BDD1 blobs must not decode under the old keys.
// DynamicReorder itself is deliberately NOT keyed: reordering never
// changes results, so static and reordered runs share records.
const cacheFormatVersion = 2

// CacheKey derives the content address of one prefix task's result.
// Two runs compute the same key exactly when the task is guaranteed to
// produce the same result; unrelated config edits (another prefix's
// networks, a router the domain cannot observe... ) leave keys of
// untouched prefixes stable, so warm caches survive incremental edits.
func CacheKey(net *config.Network, opts src.Options, pfx route.Prefix, ladder bool, lad LadderOptions) string {
	domain := taskDomain(net, pfx)
	h := sha256.New()
	fmt.Fprintf(h, "sre-cache v%d\n", cacheFormatVersion)
	kernel := "flat"
	if opts.LegacyBDDKernel {
		kernel = "legacy"
	}
	fmt.Fprintf(h, "kernel=%s\n", kernel)
	// The resolved variable order (never "auto": auto resolves to a
	// concrete order per topology) shapes every serialized BDD, so a
	// record produced under one order must be a clean miss under another.
	fmt.Fprintf(h, "order=%s\n", src.LinkOrder(net, opts).ID())
	fmt.Fprintf(h, "prune_k=%d abstract=%t no_ecmp=%t ibgp=%t max_hops=%d max_iter=%d node_limit=%d\n",
		opts.PruneK, opts.Abstract, opts.NoECMP, opts.IBGPFullMesh,
		opts.MaxHops, opts.MaxIterations, opts.BDDNodeLimit)
	fmt.Fprintf(h, "ladder=%t halving=%t\n", ladder, !lad.DisableBudgetHalving)
	fmt.Fprintf(h, "prefix=%s\ndomain=", pfx)
	for _, p := range domain {
		fmt.Fprintf(h, " %s", p)
	}
	io.WriteString(h, "\n")
	io.WriteString(h, config.Format(sliceNetwork(net, domain)))
	return hex.EncodeToString(h.Sum(nil))
}

// sliceNetwork clones net keeping only the configuration a scoped run
// over domain can observe: originated networks in the domain, and
// aggregates/statics overlapping it. Policy (route-maps, interface
// costs, ACLs) and the topology are kept whole — ACL entries and costs
// for unrelated prefixes are cheap to hash and can still intersect the
// task's header space.
func sliceNetwork(net *config.Network, domain []route.Prefix) *config.Network {
	inDomain := func(p route.Prefix) bool {
		for _, d := range domain {
			if p == d {
				return true
			}
		}
		return false
	}
	overlaps := func(p route.Prefix) bool {
		for _, d := range domain {
			if p.Overlaps(d) {
				return true
			}
		}
		return false
	}
	keep := func(ps []route.Prefix, pred func(route.Prefix) bool) []route.Prefix {
		out := ps[:0]
		for _, p := range ps {
			if pred(p) {
				out = append(out, p)
			}
		}
		return out
	}
	cp := net.Clone()
	for _, r := range cp.Routers {
		if r.BGP != nil {
			r.BGP.Networks = keep(r.BGP.Networks, inDomain)
			r.BGP.Aggregates = keep(r.BGP.Aggregates, overlaps)
		}
		if r.OSPF != nil {
			r.OSPF.Networks = keep(r.OSPF.Networks, inDomain)
		}
		statics := r.Static[:0]
		for _, s := range r.Static {
			if overlaps(s.Prefix) {
				statics = append(statics, s)
			}
		}
		r.Static = statics
	}
	return cp
}

// CacheRecord is the JSON payload of one store record: a finished
// prefix task in wire form. Telemetry carries the producing worker's
// per-task shard (nil for in-process producers) so a warm coordinator
// run can still merge plausible counters.
type CacheRecord struct {
	Version   int            `json:"version"`
	Prefix    string         `json:"prefix"`
	Outcome   WireOutcome    `json:"outcome"`
	Pipes     []WirePipeline `json:"pipes,omitempty"`
	Telemetry *obs.Wire      `json:"telemetry,omitempty"`
}

// ResultCache binds the analysis layer to a persistent store. The zero
// value and nil are inert; all methods are safe for concurrent use
// (the store serializes writers).
type ResultCache struct {
	S *store.Store
}

// Lookup consults the store for key and, on a hit, rebuilds the
// prefix's pipelines and outcome. Misses and every flavour of bad
// record return hit=false with a nil error — corruption is the store's
// problem (Get quarantines torn frames; Lookup quarantines frames whose
// payload is unusable) and the caller just recomputes. The only non-nil
// error is a cooperative interruption raised while re-consing BDDs,
// which must abort the run like any other interruption. A node-limit
// overflow during decode is a plain miss (this run's limit is smaller
// than the producer's), leaving the record for roomier readers.
func (c *ResultCache) Lookup(net *config.Network, opts src.Options, key string, pfx route.Prefix, tel *obs.Telemetry) ([]*Pipeline, PrefixOutcome, bool, error) {
	if c == nil || c.S == nil || key == "" {
		return nil, PrefixOutcome{}, false, nil
	}
	payload, ok := c.S.Get(key)
	if !ok {
		return nil, PrefixOutcome{}, false, nil
	}
	var rec CacheRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		c.S.Quarantine(key, "bad json")
		return nil, PrefixOutcome{}, false, nil
	}
	if rec.Version != cacheFormatVersion || rec.Prefix != pfx.String() {
		c.S.Quarantine(key, "record mismatch")
		return nil, PrefixOutcome{}, false, nil
	}
	pipes, derr := DecodePipelines(net, opts, rec.Pipes, tel)
	if derr != nil {
		if resil.Interruption(derr) {
			return nil, PrefixOutcome{}, false, derr
		}
		if errors.Is(derr, bdd.ErrNodeLimit) {
			return nil, PrefixOutcome{}, false, nil
		}
		c.S.Quarantine(key, "undecodable pipelines")
		return nil, PrefixOutcome{}, false, nil
	}
	tel.Merge(rec.Telemetry.Import())
	return pipes, OutcomeFromWire(pfx, rec.Outcome), true, nil
}

// Publish stores a finished prefix task under key. Failed prefixes
// (Err set), empty results, and worker-crash fallbacks are never
// published: a cache must only replay results any fault-free run would
// compute. Publication failures are deliberately silent — the store
// counts them in its metrics, and a result that could not be persisted
// is still a correct result.
func (c *ResultCache) Publish(net *config.Network, key string, pfx route.Prefix, pipes []*Pipeline, out PrefixOutcome, shard *obs.Wire) {
	if c == nil || c.S == nil || key == "" {
		return
	}
	if out.Err != nil || len(pipes) == 0 {
		return
	}
	for _, r := range out.Rungs {
		if r == RungWorkerCrash {
			return
		}
	}
	wps, err := EncodePipelines(pipes, net)
	if err != nil {
		return
	}
	rec := CacheRecord{
		Version:   cacheFormatVersion,
		Prefix:    pfx.String(),
		Outcome:   OutcomeToWire(out),
		Pipes:     wps,
		Telemetry: shard,
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_ = c.S.Put(key, payload)
}

// PublishRecord stores an already-encoded record (a worker that framed
// its result for the pipe reuses the same bytes for the store).
func (c *ResultCache) PublishRecord(key string, rec CacheRecord) {
	if c == nil || c.S == nil || key == "" || rec.Outcome.Err != nil || len(rec.Pipes) == 0 {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_ = c.S.Put(key, payload)
}

package analysis

import (
	"math"
	"testing"

	"sre/internal/bdd"
	"sre/internal/prob"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
)

// Two disjoint 2-hop paths A→M1→D and A→M2→D. With independent link
// failures the paths fail independently; a shared-risk group covering
// one link of each path correlates them.
const riskNet = `
topology
  router A
  router M1
  router M2
  router D
  link A M1
  link M1 D
  link A M2
  link M2 D
end
router A
  ospf
  exit
end
router M1
  ospf
  exit
end
router M2
  ospf
  exit
end
router D
  ospf
    network 10.0.0.0/24
  exit
end
`

func TestProbabilityWithRisks(t *testing.T) {
	pipe := runPipe(t, riskNet, src.Options{PruneK: -1})
	topo := pipe.Net.Topology
	a := topo.MustRouter("A")
	d := topo.MustRouter("D")
	hdr := pipe.Sp.Prefix(route.MustParsePrefix("10.0.0.0/24"))
	prop := pipe.ReachBDD(a, map[topology.RouterID]bool{d: true}, hdr)

	const pl = 0.1
	base := pipe.MinProbability(prop, prob.LinkModel{PDown: pl})
	// Independent: P = 1 - (1 - q²)² with q = 0.9 per link →
	// P = 1 - (1-0.81)² = 0.9639.
	if math.Abs(base-0.9639) > 1e-9 {
		t.Fatalf("independent probability = %v, want 0.9639", base)
	}

	// A risk group with zero probability changes nothing.
	am1, _ := topo.LinkBetween(a, topo.MustRouter("M1"))
	am2, _ := topo.LinkBetween(a, topo.MustRouter("M2"))
	same := pipe.ProbabilityWithRisks(prop, prob.LinkModel{PDown: pl},
		[]RiskGroup{{Links: []topology.LinkID{am1, am2}, PDown: 0}})
	if len(same) != 1 || math.Abs(same[0].P-base) > 1e-9 {
		t.Errorf("zero-probability group changed the result: %v", same)
	}

	// A group that takes down one link of EACH path with probability g:
	// reach requires the group NOT to fire, so P = (1-g)·P_independent.
	const g = 0.05
	got := pipe.ProbabilityWithRisks(prop, prob.LinkModel{PDown: pl},
		[]RiskGroup{{Links: []topology.LinkID{am1, am2}, PDown: g}})
	want := (1 - g) * base
	if len(got) != 1 || math.Abs(got[0].P-want) > 1e-9 {
		t.Errorf("correlated probability = %v, want %v", got, want)
	}

	// A group covering only one path's link hurts less than covering
	// both paths.
	oneSide := pipe.ProbabilityWithRisks(prop, prob.LinkModel{PDown: pl},
		[]RiskGroup{{Links: []topology.LinkID{am1}, PDown: g}})
	if oneSide[0].P <= got[0].P {
		t.Errorf("single-path risk (%v) should hurt less than both-path risk (%v)",
			oneSide[0].P, got[0].P)
	}
}

func TestProbabilityWithRisksLimit(t *testing.T) {
	pipe := runPipe(t, riskNet, src.Options{PruneK: -1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too many risk groups")
		}
	}()
	groups := make([]RiskGroup, MaxRiskGroups+1)
	pipe.ProbabilityWithRisks(bdd.False, prob.LinkModel{PDown: 0.1}, groups)
}

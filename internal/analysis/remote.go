package analysis

// Hooks for multi-process verification (internal/coord): a worker
// subprocess runs one prefix through exactly the chain an in-process
// parallel run would — RunPrefixTask over a single-worker pool — and
// ships the resulting pipelines over a pipe; the coordinator rebuilds
// them as decoded pipelines (query-only: no engine, no forwarder) and
// assembles a Partitioned indistinguishable from runPartitionedParallel's.

import (
	"sync"
	"time"

	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/route"
	"sre/internal/spf"
	"sre/internal/src"
	"sre/internal/symbol"
)

// RunPrefixTask executes one prefix's full task chain — the scoped
// initial attempt plus, when ladder is set, the same precomputed
// escalation rungs a parallel in-process run climbs — on a one-worker
// pool, so the result is byte-identical to what any Options.Parallelism
// run produces for that prefix. It returns the prefix's pipelines (nil
// when the ladder was exhausted) and outcome; a non-nil error means the
// attempt aborted (cancellation, deadline, non-recoverable failure) and
// any partial pipelines were released.
//
// This is the unit of work a coordinator dispatches: `sre worker`
// subprocesses call it once per task frame, and the coordinator's
// quarantine fallback calls it in-process for prefixes whose workers
// kept crashing.
func RunPrefixTask(net *config.Network, opts src.Options, pfx route.Prefix, ladder bool, lad LadderOptions) ([]*Pipeline, PrefixOutcome, error) {
	var (
		mu    sync.Mutex
		pipes []*Pipeline
		out   = PrefixOutcome{Prefix: pfx, EffectivePruneK: opts.PruneK}
	)
	pr := &prefixRunner{net: net, base: opts, ladder: ladder, lad: lad,
		collect: func(_ route.Prefix, p []*Pipeline, o PrefixOutcome) {
			mu.Lock()
			defer mu.Unlock()
			pipes, out = p, o
		},
	}
	if err := pr.run([]route.Prefix{pfx}, 1); err != nil {
		for _, p := range pipes {
			p.Release()
		}
		return nil, out, err
	}
	return pipes, out, nil
}

// NewRunSpace allocates the symbolic space Run and RunScoped build
// pipelines over — exported so a coordinator can decode a worker's
// serialized BDDs into a space with the identical variable layout.
func NewRunSpace(net *config.Network, opts src.Options) *symbol.Space {
	return newRunSpace(net, opts)
}

// NewDecodedPipeline assembles a query-only Pipeline from parts decoded
// off the wire: the PFEC predicates must already be referenced in sp's
// manager (decoded roots are Ref'd by the codec). The pipeline has no
// engine or forwarder — every property query (ReachBDD, Tolerance,
// Probability, LoadBalancePaths, ...) needs only Net, Sp, the PFECs,
// and Scope — and Release frees exactly the PFEC references.
func NewDecodedPipeline(net *config.Network, sp *symbol.Space, scope *route.Prefix, pfecs [][]*spf.PFEC, srcTime, spfTime time.Duration, tel *obs.Telemetry) *Pipeline {
	return &Pipeline{Net: net, Sp: sp, Tel: tel, Scope: scope,
		pfecs: pfecs, SRCTime: srcTime, SPFTime: spfTime}
}

// NewPartitioned assembles a Partitioned from per-prefix outcomes and
// pipelines collected out of order (a coordinator merging worker
// results). Groups are laid out in canonical prefix order, matching
// runPartitionedParallel, so downstream iteration is deterministic
// regardless of worker completion order.
func NewPartitioned(outs []PrefixOutcome, byPrefix map[route.Prefix][]*Pipeline) *Partitioned {
	pt := &Partitioned{
		outcomes: make(map[route.Prefix]*PrefixOutcome, len(outs)),
		byPrefix: make(map[route.Prefix][]*Pipeline, len(byPrefix)),
	}
	prefixes := make([]route.Prefix, 0, len(outs))
	for i := range outs {
		o := outs[i]
		pt.outcomes[o.Prefix] = &o
		prefixes = append(prefixes, o.Prefix)
	}
	for pfx, pipes := range byPrefix {
		pt.byPrefix[pfx] = pipes
	}
	for _, pfx := range sortedPrefixList(prefixes) {
		pt.Groups = append(pt.Groups, pt.byPrefix[pfx]...)
	}
	return pt
}

package analysis

// Wire forms for pipelines, outcomes, and errors — shared by the
// multi-process coordinator (internal/coord frames them onto worker
// pipes) and the persistent result store (internal/analysis/cache.go
// uses them as the record payload). A producer flattens its pipelines —
// PFEC path metadata plus one bdd.Write blob per pipeline with every
// predicate as a root, in (source router, PFEC index) order — and the
// consumer rebuilds them as query-only decoded pipelines in a fresh
// symbolic space with the identical variable layout (NewRunSpace).
// Decoded roots are Ref'd immediately: bdd.Manager.Read hash-conses
// without referencing, and the references must survive later GC safe
// points, mirroring how spf.Forward references every PFEC predicate.

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/spf"
	"sre/internal/src"
	"sre/internal/topology"
)

// WirePipeline is one serialized pipeline: per-source PFEC metadata
// plus a single bdd.Write blob holding every predicate, roots in
// (source router, PFEC index) order.
type WirePipeline struct {
	Scope    string       `json:"scope,omitempty"`
	SRCNanos int64        `json:"src_ns"`
	SPFNanos int64        `json:"spf_ns"`
	Sources  []WireSource `json:"sources"`
	BDD      []byte       `json:"bdd"`
}

// WireSource is the PFEC list of one source router.
type WireSource struct {
	PFECs []WirePFEC `json:"pfecs,omitempty"`
}

// WirePFEC is one PFEC's transportable metadata; its predicate travels
// in the enclosing pipeline's BDD blob.
type WirePFEC struct {
	Path      []int32 `json:"path"`
	Delivered bool    `json:"delivered,omitempty"`
	Looped    bool    `json:"looped,omitempty"`
}

// WireOutcome is PrefixOutcome in transportable form. WorkerCrashes
// never crosses the wire: the coordinator owns attempt accounting.
type WireOutcome struct {
	Err             *WireError `json:"err,omitempty"`
	Quarantined     bool       `json:"quarantined,omitempty"`
	Degraded        bool       `json:"degraded,omitempty"`
	Rungs           []string   `json:"rungs,omitempty"`
	EffectivePruneK int        `json:"effective_prune_k"`
}

// EncodePipelines serializes a prefix task's pipelines for transport or
// storage.
func EncodePipelines(pipes []*Pipeline, net *config.Network) ([]WirePipeline, error) {
	out := make([]WirePipeline, 0, len(pipes))
	n := net.Topology.NumRouters()
	for _, p := range pipes {
		wp := WirePipeline{
			SRCNanos: p.SRCTime.Nanoseconds(),
			SPFNanos: p.SPFTime.Nanoseconds(),
			Sources:  make([]WireSource, n),
		}
		if p.Scope != nil {
			wp.Scope = p.Scope.String()
		}
		var roots []bdd.Node
		for r := 0; r < n; r++ {
			pfecs := p.PFECs(topology.RouterID(r))
			ws := WireSource{PFECs: make([]WirePFEC, 0, len(pfecs))}
			for _, pf := range pfecs {
				path := make([]int32, len(pf.Path))
				for i, h := range pf.Path {
					path[i] = int32(h)
				}
				ws.PFECs = append(ws.PFECs, WirePFEC{
					Path: path, Delivered: pf.Delivered, Looped: pf.Looped})
				roots = append(roots, pf.Pred)
			}
			wp.Sources[r] = ws
		}
		var buf bytes.Buffer
		if err := p.Sp.M.Write(&buf, roots...); err != nil {
			return nil, fmt.Errorf("analysis: encode pipeline: %w", err)
		}
		wp.BDD = buf.Bytes()
		out = append(out, wp)
	}
	return out, nil
}

// DecodePipelines rebuilds a task's pipelines from the wire form. Each
// pipeline gets its own symbolic space shaped exactly like the
// producer's (same variable layout, node limit, interrupt hook, and
// telemetry from opts), so downstream property queries behave
// identically to pipelines built in-process. Any fault — a malformed
// blob, mismatched counts, a node-limit overflow while re-consing —
// surfaces as an error, never a panic: a corrupt result is a retryable
// worker failure (coord) or a quarantinable record (store).
func DecodePipelines(net *config.Network, opts src.Options, wps []WirePipeline, tel *obs.Telemetry) (pipes []*Pipeline, err error) {
	defer func() {
		if err != nil {
			for _, p := range pipes {
				p.Release()
			}
			pipes = nil
		}
	}()
	defer guardDecode(&err)
	n := net.Topology.NumRouters()
	for _, wp := range wps {
		var scope *route.Prefix
		if wp.Scope != "" {
			s, perr := route.ParsePrefix(wp.Scope)
			if perr != nil {
				return pipes, fmt.Errorf("analysis: decode pipeline scope: %w", perr)
			}
			scope = &s
		}
		if len(wp.Sources) != n {
			return pipes, fmt.Errorf("analysis: decode pipeline: %d sources, network has %d routers", len(wp.Sources), n)
		}
		sp := newRunSpace(net, opts)
		roots, rerr := sp.M.Read(bytes.NewReader(wp.BDD))
		if rerr != nil {
			return pipes, fmt.Errorf("analysis: decode pipeline BDDs: %w", rerr)
		}
		pfecs := make([][]*spf.PFEC, n)
		next := 0
		for r := 0; r < n; r++ {
			list := make([]*spf.PFEC, 0, len(wp.Sources[r].PFECs))
			for _, wpf := range wp.Sources[r].PFECs {
				if next >= len(roots) {
					return pipes, fmt.Errorf("analysis: decode pipeline: %d predicates for more PFECs", len(roots))
				}
				if len(wpf.Path) == 0 {
					return pipes, fmt.Errorf("analysis: decode pipeline: empty PFEC path")
				}
				path := make([]topology.RouterID, len(wpf.Path))
				for i, h := range wpf.Path {
					if h < 0 || int(h) >= n {
						return pipes, fmt.Errorf("analysis: decode pipeline: router %d out of range", h)
					}
					path[i] = topology.RouterID(h)
				}
				list = append(list, &spf.PFEC{
					Path: path, Pred: sp.M.Ref(roots[next]),
					Delivered: wpf.Delivered, Looped: wpf.Looped})
				next++
			}
			pfecs[r] = list
		}
		if next != len(roots) {
			return pipes, fmt.Errorf("analysis: decode pipeline: %d predicates for %d PFECs", len(roots), next)
		}
		pipes = append(pipes, NewDecodedPipeline(net, sp, scope, pfecs,
			time.Duration(wp.SRCNanos), time.Duration(wp.SPFNanos), tel))
	}
	return pipes, nil
}

// guardDecode converts expected decode-time panics (BDD node-limit
// overflow while re-consing, cooperative interruption from the space's
// interrupt hook) into errors; anything else is a defect and re-panics.
func guardDecode(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok && (errors.Is(e, bdd.ErrNodeLimit) || resil.Interruption(e)) {
		*errp = resil.Stage("decode", e)
		return
	}
	panic(r)
}

// OutcomeToWire / OutcomeFromWire translate PrefixOutcome.
func OutcomeToWire(out PrefixOutcome) WireOutcome {
	return WireOutcome{
		Err:             ErrorToWire(out.Err),
		Quarantined:     out.Quarantined,
		Degraded:        out.Degraded,
		Rungs:           out.Rungs,
		EffectivePruneK: out.EffectivePruneK,
	}
}

// OutcomeFromWire rebuilds a PrefixOutcome for pfx.
func OutcomeFromWire(pfx route.Prefix, wo WireOutcome) PrefixOutcome {
	return PrefixOutcome{
		Prefix:          pfx,
		Err:             wo.Err.ToError(),
		Quarantined:     wo.Quarantined,
		Degraded:        wo.Degraded,
		Rungs:           wo.Rungs,
		EffectivePruneK: wo.EffectivePruneK,
	}
}

// Error kinds crossing the wire. Reconstructed errors satisfy errors.Is
// against the matching sentinel, so exit-code mapping and ladder logic
// behave identically on both sides of a pipe or a store record.
const (
	ErrKindCanceled   = "canceled"
	ErrKindDeadline   = "deadline"
	ErrKindNoConverge = "noconverge"
	ErrKindInternal   = "internal"
	ErrKindNodeLimit  = "nodelimit"
	ErrKindOther      = "other"
)

// WireError is an error flattened for transport: its sentinel kind, the
// pipeline stage it interrupted, and the rendered message.
type WireError struct {
	Kind  string `json:"kind"`
	Stage string `json:"stage,omitempty"`
	Msg   string `json:"msg"`
}

// ErrorToWire flattens err (nil stays nil).
func ErrorToWire(err error) *WireError {
	if err == nil {
		return nil
	}
	kind := ErrKindOther
	switch {
	case errors.Is(err, resil.ErrCanceled):
		kind = ErrKindCanceled
	case errors.Is(err, resil.ErrDeadline):
		kind = ErrKindDeadline
	case errors.Is(err, resil.ErrNoConvergence):
		kind = ErrKindNoConverge
	case errors.Is(err, resil.ErrInternal):
		kind = ErrKindInternal
	case errors.Is(err, bdd.ErrNodeLimit):
		kind = ErrKindNodeLimit
	}
	return &WireError{Kind: kind, Stage: resil.StageOf(err), Msg: err.Error()}
}

// remoteError is a reconstructed error: the original message with the
// sentinel restored underneath so errors.Is keeps working.
type remoteError struct {
	msg  string
	base error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.base }

// ToError reconstructs the error (nil stays nil).
func (we *WireError) ToError() error {
	if we == nil {
		return nil
	}
	var base error
	switch we.Kind {
	case ErrKindCanceled:
		base = resil.ErrCanceled
	case ErrKindDeadline:
		base = resil.ErrDeadline
	case ErrKindNoConverge:
		base = resil.ErrNoConvergence
	case ErrKindInternal:
		base = resil.ErrInternal
	case ErrKindNodeLimit:
		base = bdd.ErrNodeLimit
	}
	err := error(&remoteError{msg: we.Msg, base: base})
	if we.Stage != "" {
		err = &resil.StageError{Stage: we.Stage, Err: err}
	}
	return err
}

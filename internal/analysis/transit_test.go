package analysis

import (
	"testing"

	"sre/internal/src"
	"sre/internal/topology"
	"sre/internal/workload"
)

// Valley-free routing: in a Gao–Rexford network, an AS never provides
// transit between two of its peers/providers, so some AS pairs are
// policy-isolated even though the physical topology connects them. The
// miner must discover those isolation specs — a case where topological
// reasoning (Tiramisu/min-cut) over-approximates reachability and
// SRE's policy-aware analysis does not.
func TestTransitWANValleyFreeIsolation(t *testing.T) {
	net := workload.TransitWAN(2, 4, 5)
	mn := &Miner{Net: net, KMax: 1}
	specs, err := mn.Mine()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs.Isolated) == 0 {
		t.Fatal("valley-free policies should isolate some AS pairs")
	}
	// Every isolated pair must nevertheless be physically connected —
	// the isolation is pure policy.
	for _, key := range specs.Isolated {
		origins := net.OriginsOf(key.Prefix)
		connected := false
		for _, o := range origins {
			if net.Topology.Connected(key.Src, o, nil) {
				connected = true
			}
		}
		if !connected {
			t.Errorf("pair %v is topologically disconnected; expected policy-only isolation", key)
		}
	}
	// And a policy-aware check: every reachable pair's traffic must
	// follow a valley-free path (no peer->provider climb after a
	// descent). We verify a necessary condition: no path visits more
	// routers than 2·tiers+1.
	pipe, err := Run(net, src.Options{PruneK: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	maxLen := 2*2 + 1
	for s := 0; s < net.Topology.NumRouters(); s++ {
		for _, pf := range pipe.PFECs(topology.RouterID(s)) {
			if pf.Delivered && len(pf.Path) > maxLen {
				t.Errorf("path %v longer than any valley-free route", pf.Path)
			}
		}
	}
}

package analysis

import (
	"fmt"
	"sync"

	"sre/internal/bdd"
	"sre/internal/obs"
	"sre/internal/route"
)

// pairEval is one undecided pair of a stratum with the per-key state
// snapshotted before the pool starts, so worker-side evaluation never
// reads the shared spec maps.
type pairEval struct {
	key PairKey
	// waypointDone records whether the pair's waypoint tolerance was
	// already decided in an earlier stratum.
	waypointDone bool
}

// mineStratumParallel runs one mining stratum on a worker pool: each
// prefix with undecided pairs becomes a task chain (scoped singleton
// pipeline, plus ladder rungs when resilient), and the prefix's pairs
// are evaluated in-task against its own pipelines — then the pipelines
// are released immediately, so stratum peak memory is bounded by the
// in-flight tasks instead of the whole domain. Decisions are committed
// to the spec maps under one mutex; since every pair belongs to
// exactly one prefix, results are independent of completion order.
//
// The miner's Waypoint selector, when set, is called from worker
// goroutines and must be safe for concurrent use.
func (mn *Miner) mineStratumParallel(specs *Specs, undecided map[PairKey]bool,
	isolationCandidates *[]PairKey, k, workers int) error {

	tel := mn.SrcOpts.Telemetry
	telDecided := tel.Counter("mine.pairs_decided")
	byPfx := make(map[route.Prefix][]pairEval)
	for key := range undecided {
		_, wpDone := specs.WaypointTolerance[key]
		byPfx[key.Prefix] = append(byPfx[key.Prefix], pairEval{key: key, waypointDone: wpDone})
	}
	domain := make([]route.Prefix, 0, len(byPfx))
	for pfx := range byPfx {
		domain = append(domain, pfx)
	}

	opts := mn.SrcOpts
	opts.PruneK = k

	var mu sync.Mutex // guards specs, undecided, isolationCandidates, pairDone
	pairTotal := len(undecided)
	pairDone := 0
	emitProgress := func(done int) {
		if tel.Active() {
			tel.Emit(obs.Event{Stage: "mine",
				Done: int64(done), Total: int64(pairTotal), Unit: "pairs",
				Detail: fmt.Sprintf("stratum %d", k), Final: done == pairTotal})
		}
	}

	pr := &prefixRunner{net: mn.Net, base: opts,
		ladder: mn.Resilient, lad: LadderOptions{DisableBudgetHalving: true},
		collect: func(pfx route.Prefix, pipes []*Pipeline, out PrefixOutcome) {
			pairs := byPfx[pfx]
			if out.Err != nil {
				// The prefix exhausted the ladder at this stratum. Its
				// pairs survived stratum k-1, so k-1 is a sound lower
				// bound; record it and mark them degraded.
				mu.Lock()
				defer mu.Unlock()
				for _, pe := range pairs {
					specs.ReachTolerance[pe.key] = k - 1
					specs.DegradedPairs[pe.key] = true
					if mn.Waypoint != nil && !pe.waypointDone {
						specs.WaypointTolerance[pe.key] = k - 1
					}
					delete(undecided, pe.key)
					telDecided.Inc()
				}
				mergeOutcome(specs, out)
				pairDone += len(pairs)
				emitProgress(pairDone)
				return
			}

			// Evaluate off the lock: the pipelines are task-local.
			type decision struct {
				pe          pairEval
				violated    bool
				reachEmpty  bool
				waypointTol int // k-1 when decided here, else sentinel
				loadBalance int
			}
			const wpUndecided = InfiniteTolerance
			budgets := make(map[*Pipeline]bdd.Node, len(pipes))
			budgetOf := func(p *Pipeline) bdd.Node {
				b, ok := budgets[p]
				if !ok {
					b = p.Sp.AtMostKLinkFailures(k)
					budgets[p] = b
				}
				return b
			}
			decisions := make([]decision, 0, len(pairs))
			for _, pe := range pairs {
				d := decision{pe: pe, reachEmpty: true, waypointTol: wpUndecided}
				wpDone := pe.waypointDone
				for _, pipe := range pipes {
					m := pipe.Sp.M
					budget := budgetOf(pipe)
					hdr := pipe.OwnedHeaders(pe.key.Prefix)
					dst := pipe.OriginSet(pe.key.Prefix)
					prop := pipe.ReachBDD(pe.key.Src, dst, hdr)
					if prop != bdd.False {
						d.reachEmpty = false
					}
					if m.Diff(m.And(hdr, budget), prop) != bdd.False {
						d.violated = true
					}
					if mn.Waypoint != nil && !wpDone {
						if w, ok := mn.Waypoint(pe.key.Src, pe.key.Prefix); ok {
							wprop := pipe.WaypointBDD(pe.key.Src, dst, w, hdr)
							if m.Diff(m.And(hdr, budget), wprop) != bdd.False {
								d.waypointTol = k - 1
								wpDone = true
							}
						}
					}
				}
				if !d.violated && k == 0 {
					for _, pipe := range pipes {
						dst := pipe.OriginSet(pe.key.Prefix)
						if n := pipe.LoadBalancePaths(pe.key.Src, dst, pipe.OwnedHeaders(pe.key.Prefix)); n > d.loadBalance {
							d.loadBalance = n
						}
					}
				}
				decisions = append(decisions, d)
			}
			for _, p := range pipes {
				p.Release()
			}

			mu.Lock()
			defer mu.Unlock()
			for _, d := range decisions {
				if d.waypointTol != wpUndecided {
					specs.WaypointTolerance[d.pe.key] = d.waypointTol
				}
				if d.violated {
					specs.ReachTolerance[d.pe.key] = k - 1
					delete(undecided, d.pe.key)
					telDecided.Inc()
					if d.reachEmpty {
						*isolationCandidates = append(*isolationCandidates, d.pe.key)
					}
					continue
				}
				if k == 0 {
					if d.loadBalance > specs.LoadBalance[d.pe.key] {
						specs.LoadBalance[d.pe.key] = d.loadBalance
					}
				}
			}
			if out.Quarantined || out.Degraded {
				mergeOutcome(specs, out)
			}
			pairDone += len(pairs)
			emitProgress(pairDone)
		},
	}
	return pr.run(domain, workers)
}

// confirmIsolationParallel re-checks isolation candidates at the full
// budget, one scoped pipeline per candidate prefix on the pool. The
// final Isolated order is fixed by Mine's sort, not completion order.
func (mn *Miner) confirmIsolationParallel(specs *Specs, candidates []PairKey, workers int) error {
	byPfx := make(map[route.Prefix][]PairKey)
	for _, key := range candidates {
		byPfx[key.Prefix] = append(byPfx[key.Prefix], key)
	}
	domain := make([]route.Prefix, 0, len(byPfx))
	for pfx := range byPfx {
		domain = append(domain, pfx)
	}
	opts := mn.SrcOpts
	opts.PruneK = mn.KMax

	var mu sync.Mutex
	pr := &prefixRunner{net: mn.Net, base: opts,
		ladder: mn.Resilient, lad: LadderOptions{DisableBudgetHalving: true},
		collect: func(pfx route.Prefix, pipes []*Pipeline, out PrefixOutcome) {
			var isolatedKeys []PairKey
			for _, key := range byPfx[pfx] {
				if len(pipes) == 0 {
					continue // prefix failed: isolation cannot be confirmed
				}
				isolated := true
				for _, pipe := range pipes {
					if pipe.ReachBDD(key.Src, pipe.OriginSet(key.Prefix), pipe.OwnedHeaders(key.Prefix)) != bdd.False {
						isolated = false
						break
					}
				}
				if isolated {
					isolatedKeys = append(isolatedKeys, key)
				}
			}
			for _, p := range pipes {
				p.Release()
			}
			mu.Lock()
			defer mu.Unlock()
			specs.Isolated = append(specs.Isolated, isolatedKeys...)
			if out.Quarantined || out.Degraded || out.Err != nil {
				mergeOutcome(specs, out)
			}
		},
	}
	if err := pr.run(domain, workers); err != nil {
		return fmt.Errorf("isolation confirmation: %w", err)
	}
	return nil
}

// stratumWorkers resolves the pool size of the miner's per-stratum
// runs: SrcOpts.Parallelism, defaulting to the runtime's CPU count.
// One-shot mining (DisablePrefixPruning) stays sequential — it exists
// to benchmark the undecomposed pipeline.
func (mn *Miner) stratumWorkers() int {
	if mn.DisablePrefixPruning {
		return 1
	}
	return Workers(mn.SrcOpts)
}

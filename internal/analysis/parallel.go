package analysis

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/sched"
	"sre/internal/src"
)

// Workers resolves the effective worker count of opts.Parallelism:
// positive values verbatim, 0 the runtime default.
func Workers(opts src.Options) int {
	if opts.Parallelism > 0 {
		return opts.Parallelism
	}
	return sched.DefaultWorkers()
}

// PrefixCost estimates the relative analysis cost of one prefix: the
// sum of its origin routers' degrees (origin-set size × mean topology
// degree). More origins and denser attachment points mean more routes,
// more ECMP tiers, and bigger PFEC predicates; the estimate only needs
// to rank prefixes so the scheduler starts the long poles first.
func PrefixCost(net *config.Network, pfx route.Prefix) int64 {
	t := net.Topology
	cost := int64(0)
	for _, o := range net.OriginsOf(pfx) {
		cost += int64(len(t.Neighbors(o)))
	}
	if cost == 0 {
		cost = 1
	}
	return cost
}

// taskDomain is the prefix set one per-prefix task computes routes for:
// the prefix itself, closed over two dependency relations so the scoped
// pipeline forwards exactly like the combined one would inside the
// task's scope:
//
//   - overlapping originated prefixes: a covering prefix supplies the
//     longest-prefix-match fallback route when the task prefix's own
//     route is withdrawn under failures, and a covered prefix attracts
//     the more-specific slice of the scope away from the task prefix's
//     route;
//   - configured BGP aggregation: the originated contributors of any
//     aggregate in the set (so the aggregate can still be generated)
//     and any configured aggregate covering a member.
//
// Networks with disjoint prefixes and no aggregates — the common case —
// get the singleton {pfx}.
func taskDomain(net *config.Network, pfx route.Prefix) []route.Prefix {
	set := map[route.Prefix]bool{pfx: true}
	for changed := true; changed; {
		changed = false
		for p := range set {
			for _, other := range net.AllPrefixes() {
				if !set[other] && p.Overlaps(other) {
					set[other] = true
					changed = true
				}
			}
			if changed {
				break // set mutated: restart iteration
			}
		}
		for _, rc := range net.Routers {
			if rc.BGP == nil {
				continue
			}
			for _, agg := range rc.BGP.Aggregates {
				covers := set[agg]
				for p := range set {
					if agg.Covers(p) && p != agg {
						covers = true
					}
				}
				if !covers {
					continue
				}
				if !set[agg] {
					set[agg] = true
					changed = true
				}
				for _, contrib := range net.AllPrefixes() {
					if agg.Covers(contrib) && contrib != agg && !set[contrib] {
						set[contrib] = true
						changed = true
					}
				}
			}
		}
	}
	return sortedPrefixes(set)
}

// prefixRunner drives one task chain per prefix over a sched.Pool: a
// scoped singleton pipeline first, then (when the ladder is enabled)
// the same escalation rungs RunPartitioned climbs sequentially —
// abstract, halve-budget, split-headers — each rung submitted as a
// fresh pool task so a degraded prefix re-enters the queue behind
// other prefixes instead of serializing the tail.
type prefixRunner struct {
	net    *config.Network
	base   src.Options
	ladder bool // escalate recoverable overflows instead of aborting
	lad    LadderOptions
	// cache, when non-nil, is consulted once per prefix before any task
	// is scheduled (sequentially, so hits cost no pool slots and results
	// cannot depend on lookup interleaving) and published to on every
	// clean completion.
	cache *ResultCache

	// collect receives each finished prefix: its pipelines (nil when
	// the ladder was exhausted) and outcome. It is called from worker
	// goroutines and must synchronize its own shared state; per-task
	// work (evaluating properties on the delivered pipelines) should
	// happen inside it, off any global lock.
	collect func(pfx route.Prefix, pipes []*Pipeline, out PrefixOutcome)
}

// run schedules every prefix of domain on a fresh pool and waits. The
// first non-recoverable error aborts: queued prefixes are dropped,
// collected pipelines are released, and the error is returned.
func (pr *prefixRunner) run(domain []route.Prefix, workers int) error {
	pool := sched.New(sched.Config{
		Workers:   workers,
		Interrupt: pr.base.Interrupt,
		Telemetry: pr.base.Telemetry,
	})
	jobs := make([]*prefixJob, 0, len(domain))
	seen := make(map[route.Prefix]bool, len(domain))
	for _, pfx := range domain {
		if seen[pfx] {
			continue
		}
		seen[pfx] = true
		jobs = append(jobs, newPrefixJob(pr, pfx))
	}
	if pr.cache != nil {
		kept := jobs[:0]
		for _, j := range jobs {
			j.key = CacheKey(pr.net, pr.base, j.pfx, pr.ladder, pr.lad)
			pipes, out, hit, err := pr.cache.Lookup(pr.net, pr.base, j.key, j.pfx, pr.base.Telemetry)
			if err != nil {
				return err
			}
			if hit {
				pr.collect(j.pfx, pipes, out)
				continue
			}
			kept = append(kept, j)
		}
		jobs = kept
	}
	// Cost estimation runs only for the prefixes that actually need
	// computing: on a warm store most jobs resolve above, and ranking
	// them would be wasted work.
	for _, j := range jobs {
		j.cost = PrefixCost(pr.net, j.pfx)
	}
	// Largest first: round-robin seeding then puts the most expensive
	// prefixes at the head of every worker queue (LPT scheduling).
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].cost > jobs[j].cost })
	for _, j := range jobs {
		j := j
		pool.Go(j.cost, j.step)
	}
	// Errors raised inside a task already carry the pipeline stage that
	// was interrupted; Stage keeps those. Only the pool's own interrupt
	// poll — between tasks — surfaces untagged, and gets "schedule".
	return resil.Stage("schedule", pool.Wait())
}

// rungAttempt is one precomputed escalation attempt. The sequence —
// including the option mutations each rung inherits from the previous
// ones — is fixed up front, mirroring RunPartitioned's sequential
// ladder, so results cannot depend on scheduling order.
type rungAttempt struct {
	name  string
	opts  src.Options
	kDone int  // EffectivePruneK recorded when this rung succeeds
	split bool // split-headers: two scoped half pipelines
}

// prefixJob carries one prefix through its attempt chain. Each step is
// one pool task; follow-up rungs are resubmitted via Worker.Submit.
type prefixJob struct {
	r       *prefixRunner
	pfx     route.Prefix
	domain  []route.Prefix
	cost    int64
	key     string // cache key; "" when the run carries no cache
	out     PrefixOutcome
	rungs   []rungAttempt
	idx     int // 0 = initial attempt, i>0 = rungs[i-1]
	lastErr error
}

func newPrefixJob(pr *prefixRunner, pfx route.Prefix) *prefixJob {
	// cost stays zero here: the runner estimates it after the cache
	// filter, only for jobs that will actually be scheduled.
	j := &prefixJob{r: pr, pfx: pfx,
		domain: taskDomain(pr.net, pfx),
		out:    PrefixOutcome{Prefix: pfx, EffectivePruneK: pr.base.PruneK},
	}
	if !pr.ladder {
		return j
	}
	// Precompute the rung sequence with the same option threading as
	// the sequential ladder: Abstract sticks after rung 1, halved
	// budgets stick for later rungs, split-headers inherits both.
	o := pr.base
	if !o.Abstract {
		o.Abstract = true
		j.rungs = append(j.rungs, rungAttempt{name: RungAbstract, opts: o, kDone: o.PruneK})
	}
	if !pr.lad.DisableBudgetHalving {
		for k := o.PruneK / 2; o.PruneK > 0; k /= 2 {
			o.PruneK = k
			j.rungs = append(j.rungs, rungAttempt{name: RungHalveBudget, opts: o, kDone: k})
			if k == 0 {
				break
			}
		}
	}
	if _, _, ok := pfx.Halves(); ok {
		j.rungs = append(j.rungs, rungAttempt{name: RungSplitHeaders, opts: o, kDone: o.PruneK, split: true})
	}
	return j
}

// step executes the job's next attempt. A nil return means the job
// either finished (success or ladder exhausted) or resubmitted itself;
// a non-nil return aborts the pool.
func (j *prefixJob) step(w *sched.Worker) error {
	var t0 time.Time
	if w.Tel.Recording() {
		t0 = time.Now()
	}
	if j.idx == 0 {
		o := j.r.base
		o.Telemetry = w.Tel
		o.Prefixes = j.domain
		pipe, err := RunScoped(j.r.net, o, j.pfx)
		if err == nil {
			j.record(w, t0, "ok")
			j.deliver(w, []*Pipeline{pipe})
			return nil
		}
		if !recoverable(err) || !j.r.ladder {
			return err
		}
		j.out.Quarantined = true
		w.Tel.Counter("resilience.quarantined").Inc()
		j.record(w, t0, "quarantined")
		j.lastErr = err
		return j.next(w)
	}

	r := j.rungs[j.idx-1]
	o := r.opts
	o.Telemetry = w.Tel
	o.Prefixes = j.domain
	if !r.split {
		w.Tel.Counter("resilience.retries").Inc()
		j.out.Rungs = append(j.out.Rungs, r.name)
		j.emit(w, fmt.Sprintf("prefix %s: retrying on rung %q", j.pfx, r.name))
		pipe, err := RunScoped(j.r.net, o, j.pfx)
		if err == nil {
			j.degrade(w, r.kDone)
			j.record(w, t0, r.name)
			j.deliver(w, []*Pipeline{pipe})
			return nil
		}
		if !recoverable(err) {
			return err
		}
		j.record(w, t0, "overflow")
		j.lastErr = err
		return j.next(w)
	}

	// Split-headers: both scoped halves must succeed.
	lo, hi, _ := j.pfx.Halves()
	j.out.Rungs = append(j.out.Rungs, RungSplitHeaders)
	var halves []*Pipeline
	for _, half := range []route.Prefix{lo, hi} {
		w.Tel.Counter("resilience.retries").Inc()
		j.emit(w, fmt.Sprintf("prefix %s: retrying scoped to %s", j.pfx, half))
		pipe, err := RunScoped(j.r.net, o, half)
		if err != nil {
			for _, p := range halves {
				p.Release()
			}
			if !recoverable(err) {
				return err
			}
			j.record(w, t0, "overflow")
			j.lastErr = err
			return j.next(w)
		}
		halves = append(halves, pipe)
	}
	j.degrade(w, r.kDone)
	j.record(w, t0, RungSplitHeaders)
	j.deliver(w, halves)
	return nil
}

// record captures one per-prefix flight-recorder event for the attempt
// started at t0: outcome is "ok", "quarantined", "overflow", "failed",
// or the degradation rung that succeeded.
func (j *prefixJob) record(w *sched.Worker, t0 time.Time, outcome string) {
	if !w.Tel.Recording() {
		return
	}
	var wall int64
	if !t0.IsZero() {
		wall = time.Since(t0).Nanoseconds()
	}
	w.Tel.Record(t0, obs.TraceEvent{Stage: "prefix", Prefix: j.pfx.String(),
		Wall: wall, Count: int64(len(j.out.Rungs)), Outcome: outcome})
}

// next advances to the following rung, resubmitting the job, or fails
// the prefix when the ladder is exhausted.
func (j *prefixJob) next(w *sched.Worker) error {
	j.idx++
	if j.idx > len(j.rungs) {
		j.out.Err = j.lastErr
		w.Tel.Counter("resilience.failed").Inc()
		j.record(w, time.Time{}, "failed")
		j.emit(w, fmt.Sprintf("prefix %s: failed after %d rungs: %v", j.pfx, len(j.out.Rungs), j.lastErr))
		j.deliver(w, nil)
		return nil
	}
	w.Submit(j.cost, j.step)
	return nil
}

func (j *prefixJob) degrade(w *sched.Worker, k int) {
	j.out.Degraded = true
	j.out.EffectivePruneK = k
	w.Tel.Counter("resilience.degraded").Inc()
}

func (j *prefixJob) deliver(w *sched.Worker, pipes []*Pipeline) {
	// In-process producers publish without a telemetry shard: their
	// counters already live in the run's own registry.
	j.r.cache.Publish(j.r.net, j.key, j.pfx, pipes, j.out, nil)
	j.r.collect(j.pfx, pipes, j.out)
}

func (j *prefixJob) emit(w *sched.Worker, detail string) {
	if w.Tel.Active() {
		w.Tel.Emit(obs.Event{Stage: "resilience", Detail: detail})
	}
}

// runPartitionedParallel is the concurrent sibling of RunPartitioned:
// per-prefix scoped pipelines scheduled cost-first on a worker pool,
// ladder retries re-entering the queue as fresh tasks. Groups, like the
// sequential runner's outcome maps, are assembled in prefix order, so
// results do not depend on completion order.
func runPartitionedParallel(net *config.Network, opts src.Options, prefixes []route.Prefix, lad LadderOptions, workers int, cache *ResultCache) (*Partitioned, error) {
	pt := &Partitioned{
		outcomes: make(map[route.Prefix]*PrefixOutcome, len(prefixes)),
		byPrefix: make(map[route.Prefix][]*Pipeline, len(prefixes)),
	}
	for _, pfx := range prefixes {
		pt.outcomes[pfx] = &PrefixOutcome{Prefix: pfx, EffectivePruneK: opts.PruneK}
	}
	var mu sync.Mutex
	pr := &prefixRunner{net: net, base: opts, ladder: true, lad: lad, cache: cache,
		collect: func(pfx route.Prefix, pipes []*Pipeline, out PrefixOutcome) {
			mu.Lock()
			defer mu.Unlock()
			*pt.outcomes[pfx] = out
			pt.byPrefix[pfx] = pipes
		},
	}
	if err := pr.run(prefixes, workers); err != nil {
		pt.Release()
		return nil, err
	}
	for _, pfx := range sortedPrefixList(prefixes) {
		pt.Groups = append(pt.Groups, pt.byPrefix[pfx]...)
	}
	return pt, nil
}

// RunSharded executes a non-resilient multi-prefix analysis on a worker
// pool: one scoped pipeline per prefix, no escalation ladder — the
// first error (including node-table overflow) aborts the run, exactly
// like the combined Run it replaces. The returned Partitioned has a
// clean outcome and one pipeline per prefix, in prefix order.
func RunSharded(net *config.Network, opts src.Options, prefixes []route.Prefix, workers int) (*Partitioned, error) {
	return RunShardedCached(net, opts, prefixes, workers, nil)
}

// RunShardedCached is RunSharded with a persistent result cache: each
// prefix is looked up before scheduling (hits skip computation
// entirely) and published on clean completion.
func RunShardedCached(net *config.Network, opts src.Options, prefixes []route.Prefix, workers int, cache *ResultCache) (*Partitioned, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("analysis: sharded run needs at least one prefix")
	}
	pt := &Partitioned{
		outcomes: make(map[route.Prefix]*PrefixOutcome, len(prefixes)),
		byPrefix: make(map[route.Prefix][]*Pipeline, len(prefixes)),
	}
	for _, pfx := range prefixes {
		pt.outcomes[pfx] = &PrefixOutcome{Prefix: pfx, EffectivePruneK: opts.PruneK}
	}
	var mu sync.Mutex
	pr := &prefixRunner{net: net, base: opts, cache: cache,
		collect: func(pfx route.Prefix, pipes []*Pipeline, out PrefixOutcome) {
			mu.Lock()
			defer mu.Unlock()
			pt.byPrefix[pfx] = pipes
		},
	}
	if err := pr.run(prefixes, workers); err != nil {
		pt.Release()
		return nil, err
	}
	for _, pfx := range sortedPrefixList(prefixes) {
		pt.Groups = append(pt.Groups, pt.byPrefix[pfx]...)
	}
	return pt, nil
}

// sortedPrefixList returns a deduplicated copy of prefixes in canonical
// (Addr, Len) order.
func sortedPrefixList(prefixes []route.Prefix) []route.Prefix {
	set := make(map[route.Prefix]bool, len(prefixes))
	for _, p := range prefixes {
		set[p] = true
	}
	return sortedPrefixes(set)
}

// Package analysis implements the paper's forwarding property analyses
// (§6) on top of PFECs: computing property BDDs for reachability,
// waypointing, isolation, and load balancing; decoupling them into
// (packet BDD, topology BDD) tuples with Extract (Algorithm 2); and the
// three analysis types — failure tolerance (shortest path on the
// topology BDD, Theorem 1), probabilistic (weighted sums, Theorem 2,
// including node failures), and differential (XOR of topology BDDs).
package analysis

import (
	"fmt"
	"math"
	"time"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/prob"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/spf"
	"sre/internal/src"
	"sre/internal/symbol"
	"sre/internal/topology"
)

// InfiniteTolerance marks properties that hold under every failure
// combination explored.
const InfiniteTolerance = int(^uint(0) >> 1)

// Pipeline bundles the two SRE stages — symbolic route computation and
// symbolic packet forwarding — and caches the resulting PFECs for
// property analysis. Timings are recorded per stage (Figure 13 reports
// the SRC/SPF/FPA breakdown).
type Pipeline struct {
	Net *config.Network
	Sp  *symbol.Space
	Eng *src.Engine
	Fw  *spf.Forwarder

	// PFECs, grouped by source router.
	pfecs [][]*spf.PFEC

	SRCTime time.Duration
	SPFTime time.Duration

	// Tel is the telemetry the pipeline ran with (nil when disabled),
	// taken from the engine options.
	Tel *obs.Telemetry

	// Scope, when non-nil, restricts the pipeline to packets whose
	// destination lies inside this prefix: symbolic forwarding injects
	// only scope's headers and OwnedHeaders intersects with it. Scoped
	// pipelines are produced by the degradation ladder's split-headers
	// rung (RunScoped); property results are exact for the scoped
	// header space and must be combined across the sibling scopes.
	Scope *route.Prefix
}

// MaxRiskGroups is the number of shared-risk-group variables reserved
// in pipelines created by Run.
const MaxRiskGroups = 32

// Run executes SRC and SPF over the network and returns a pipeline ready
// for analysis. The symbolic space reserves node variables for every
// router (node-failure analyses) plus MaxRiskGroups shared-risk
// variables.
func Run(net *config.Network, opts src.Options) (*Pipeline, error) {
	return runPipeline(net, newRunSpace(net, opts), opts, nil)
}

// newRunSpace allocates the symbolic space Run (and RunScoped) builds
// pipelines over, honoring the node limit, interrupt hook, and link
// variable order of opts.
func newRunSpace(net *config.Network, opts src.Options) *symbol.Space {
	return symbol.NewSpace(net.Topology.NumLinks(),
		bdd.Config{NodeLimit: opts.BDDNodeLimit, Telemetry: opts.Telemetry,
			Interrupt: opts.Interrupt, LegacyKernel: opts.LegacyBDDKernel,
			Reorder: src.BDDReorder(opts)},
		net.Topology.NumRouters()+MaxRiskGroups,
		src.LinkOrder(net, opts).Perm)
}

// RunWithSpace is Run with a caller-provided symbolic space.
func RunWithSpace(net *config.Network, sp *symbol.Space, opts src.Options) (*Pipeline, error) {
	return runPipeline(net, sp, opts, nil)
}

// RunScoped is Run restricted to packets destined inside scope: SRC
// still computes routes for opts.Prefixes, but symbolic forwarding
// injects only scope's header space, bounding the size of the PFEC
// predicates. The degradation ladder uses it to push an overloaded
// prefix through in halves.
func RunScoped(net *config.Network, opts src.Options, scope route.Prefix) (*Pipeline, error) {
	return runPipeline(net, newRunSpace(net, opts), opts, &scope)
}

func runPipeline(net *config.Network, sp *symbol.Space, opts src.Options, scope *route.Prefix) (*Pipeline, error) {
	p := &Pipeline{Net: net, Sp: sp, Tel: opts.Telemetry, Scope: scope}
	root := p.Tel.Start("pipeline")
	defer root.End()

	// Flight recorder: one event per stage boundary, attributed to the
	// pipeline's prefix scope, carrying BDD node/cache deltas. All
	// snapshot work is guarded by Recording() so a disabled recorder
	// costs a nil check.
	recording := p.Tel.Recording()
	var recPfx string
	var st0 bdd.Stats
	if recording {
		recPfx = scopeLabel(opts, scope)
		st0 = sp.M.Statistics()
	}

	srcSpan := root.Start("src")
	start := time.Now()
	p.Eng = src.NewWithSpace(net, sp, opts)
	if err := p.Eng.Run(); err != nil {
		return nil, err
	}
	p.SRCTime = time.Since(start)
	if est := p.Eng.Statistics(); p.Tel != nil {
		srcSpan.SetAttr("activations", est.Activations)
		srcSpan.SetAttr("routes_imported", est.RoutesImported)
		srcSpan.SetAttr("routes_pruned", est.RoutesPruned)
		srcSpan.SetAttr("rib_routes", est.RIBRoutes)
	}
	srcSpan.End()
	if recording {
		st1 := sp.M.Statistics()
		p.Tel.Record(start, obs.TraceEvent{
			Stage: "src", Prefix: recPfx, Wall: p.SRCTime.Nanoseconds(),
			Count: int64(p.Eng.Statistics().Activations),
			Nodes: int64(st1.LiveNodes - st0.LiveNodes),
			Cache: cacheLookupDelta(st0, st1), Outcome: "ok",
		})
		st0 = st1
	}

	// Stage boundary: a run canceled while SRC was finishing must not
	// start forwarding. The same hook is polled inside BDD operations,
	// but the boundary check makes the abort deterministic.
	if opts.Interrupt != nil {
		if ierr := opts.Interrupt(); ierr != nil {
			return nil, resil.Stage("spf", ierr)
		}
	}

	spfSpan := root.Start("spf")
	start = time.Now()
	fw, err := spf.NewForwarder(p.Eng)
	if err != nil {
		return nil, err
	}
	p.Fw = fw
	var scopeHdr bdd.Node
	if scope != nil {
		scopeHdr = sp.Prefix(*scope) // cached and referenced by the space
	}
	n := net.Topology.NumRouters()
	p.pfecs = make([][]*spf.PFEC, n)
	total := 0
	for r := 0; r < n; r++ {
		if opts.Interrupt != nil {
			if ierr := opts.Interrupt(); ierr != nil {
				return nil, resil.Stage("spf", ierr)
			}
		}
		var pf []*spf.PFEC
		var err error
		if scope != nil {
			pf, err = fw.ForwardHeaders(topology.RouterID(r), scopeHdr)
		} else {
			pf, err = fw.Forward(topology.RouterID(r))
		}
		if err != nil {
			return nil, err
		}
		p.pfecs[r] = pf
		total += len(pf)
		sp.M.MaybeGC(0)
		if p.Tel.Active() {
			p.emitSPFProgress(r+1, n, total, r+1 == n)
		}
	}
	p.SPFTime = time.Since(start)
	if p.Tel != nil {
		spfSpan.SetAttr("routers", n)
		spfSpan.SetAttr("pfecs", total)
		sp.M.SampleTelemetry()
	}
	spfSpan.End()
	if recording {
		st1 := sp.M.Statistics()
		p.Tel.Record(start, obs.TraceEvent{
			Stage: "spf", Prefix: recPfx, Wall: p.SPFTime.Nanoseconds(),
			Count: int64(total),
			Nodes: int64(st1.LiveNodes - st0.LiveNodes),
			Cache: cacheLookupDelta(st0, st1), Outcome: "ok",
		})
	}
	return p, nil
}

// scopeLabel is the prefix attribution of a pipeline's flight-recorder
// events: the explicit scope, or the single requested prefix of a
// scoped per-prefix task ("" for multi-prefix pipelines).
func scopeLabel(opts src.Options, scope *route.Prefix) string {
	if scope != nil {
		return scope.String()
	}
	if len(opts.Prefixes) == 1 {
		return opts.Prefixes[0].String()
	}
	return ""
}

// cacheLookupDelta is the op-cache lookup count (hits+misses, both
// caches) accrued between two manager snapshots.
func cacheLookupDelta(a, b bdd.Stats) int64 {
	return int64((b.CacheHits + b.CacheMiss + b.AxCacheHits + b.AxCacheMiss) -
		(a.CacheHits + a.CacheMiss + a.AxCacheHits + a.AxCacheMiss))
}

// emitSPFProgress publishes one per-router SPF progress line, e.g.
// "spf: 412/1280 routers, 18.2k PFECs, bdd 1.4M nodes (peak 2.1M),
// cache hit 93%". Callers guard with Tel.Active().
func (p *Pipeline) emitSPFProgress(done, totalRouters, pfecs int, final bool) {
	st := p.Sp.M.Statistics()
	p.Sp.M.SampleTelemetry()
	p.Tel.Emit(obs.Event{
		Stage: "spf",
		Done:  int64(done),
		Total: int64(totalRouters),
		Unit:  "routers",
		Detail: fmt.Sprintf("%s PFECs, bdd %s nodes (peak %s), cache hit %s",
			obs.HumanCount(int64(pfecs)),
			obs.HumanCount(int64(st.LiveNodes)), obs.HumanCount(int64(st.PeakNodes)),
			obs.HumanPct(float64(st.CacheHits), float64(st.CacheHits+st.CacheMiss))),
		Final: final,
	})
}

// PFECs returns the equivalence classes discovered from source router s.
func (p *Pipeline) PFECs(s topology.RouterID) []*spf.PFEC { return p.pfecs[s] }

// NumPFECs returns the total number of PFECs across all sources.
func (p *Pipeline) NumPFECs() int {
	n := 0
	for _, l := range p.pfecs {
		n += len(l)
	}
	return n
}

// ReachBDD returns the property BDD of Reach(s, dst, hdr): the
// disjunction of all PFECs from s delivered at any router of dst,
// conjoined with the header set hdr (Algorithm 2, GetPropertyBDDReach).
func (p *Pipeline) ReachBDD(s topology.RouterID, dst map[topology.RouterID]bool, hdr bdd.Node) bdd.Node {
	m := p.Sp.M
	var preds []bdd.Node
	for _, pf := range p.pfecs[s] {
		if pf.Delivered && dst[pf.Dst()] {
			preds = append(preds, pf.Pred)
		}
	}
	// Balanced disjunction keeps intermediate BDDs small compared to a
	// left-to-right fold over hundreds of PFEC predicates.
	return m.And(m.OrN(preds...), hdr)
}

// WaypointBDD returns the property BDD of Waypoint(s, dst, w, hdr):
// packets that reach dst AND traverse w on the way.
func (p *Pipeline) WaypointBDD(s topology.RouterID, dst map[topology.RouterID]bool, w topology.RouterID, hdr bdd.Node) bdd.Node {
	m := p.Sp.M
	var preds []bdd.Node
	for _, pf := range p.pfecs[s] {
		if pf.Delivered && dst[pf.Dst()] && pf.Traverses(w) {
			preds = append(preds, pf.Pred)
		}
	}
	return m.And(m.OrN(preds...), hdr)
}

// ReachPrefixBDD is ReachBDD for a destination prefix: the destinations
// are the routers originating it, and the header set is the prefix
// itself minus any more-specific prefix originated elsewhere (those
// addresses forward along the longer prefix).
func (p *Pipeline) ReachPrefixBDD(s topology.RouterID, pfx route.Prefix) bdd.Node {
	return p.ReachBDD(s, p.OriginSet(pfx), p.OwnedHeaders(pfx))
}

// OriginSet returns the routers originating pfx as a set.
func (p *Pipeline) OriginSet(pfx route.Prefix) map[topology.RouterID]bool {
	dst := make(map[topology.RouterID]bool)
	for _, r := range p.Net.OriginsOf(pfx) {
		dst[r] = true
	}
	return dst
}

// OwnedHeaders returns the header BDD of the addresses for which pfx is
// the longest originated prefix, intersected with the pipeline's scope
// when it has one (scoped pipelines only know the forwarding behaviour
// of their slice of the header space).
func (p *Pipeline) OwnedHeaders(pfx route.Prefix) bdd.Node {
	m := p.Sp.M
	hdr := p.Sp.Prefix(pfx)
	for _, other := range p.Net.AllPrefixes() {
		if other != pfx && pfx.Covers(other) {
			hdr = m.Diff(hdr, p.Sp.Prefix(other))
		}
	}
	if p.Scope != nil {
		hdr = m.And(hdr, p.Sp.Prefix(*p.Scope))
	}
	return hdr
}

// Tuple is one (packet BDD, topology BDD) pair extracted from a property
// BDD (§6.2 step 2).
type Tuple struct {
	Pkt  bdd.Node // over header variables
	Topo bdd.Node // over link variables
}

// Extract decouples a property BDD into tuples such that the disjunction
// of Pkt∧Topo equals the property BDD (Algorithm 2's Extract). With the
// header-above-links variable order this is a single traversal.
func (p *Pipeline) Extract(property bdd.Node) []Tuple {
	m := p.Sp.M
	groups := m.GroupBySub(m.SplitAtLevel(property, symbol.HeaderBits))
	out := make([]Tuple, 0, len(groups))
	for topo, pkt := range groups {
		out = append(out, Tuple{Pkt: pkt, Topo: topo})
	}
	return out
}

// ToleranceResult reports the link failure tolerance of a property for
// one packet set.
type ToleranceResult struct {
	Pkt bdd.Node
	// K is the link failure tolerance (Definition 2): the property
	// holds whenever at most K links fail. -1 means it fails even with
	// all links up; InfiniteTolerance means no failure combination
	// explored violates it.
	K int
}

// Tolerance computes the link failure tolerance of the property BDD for
// every packet set, following Theorem 1: assign weight 1 to dashed
// edges; the tolerance is the shortest-path length to the False terminal
// minus one. The universe is the header set the property was asked
// about; packets in the universe that appear in no PFEC have tolerance
// -1.
func (p *Pipeline) Tolerance(property, universe bdd.Node) []ToleranceResult {
	m := p.Sp.M
	var out []ToleranceResult
	for _, tup := range p.Extract(property) {
		sp := m.ShortestPathToFalse(tup.Topo)
		k := InfiniteTolerance
		if sp != math.MaxInt32 {
			k = sp - 1
		}
		out = append(out, ToleranceResult{Pkt: tup.Pkt, K: k})
	}
	// The union of the extracted packet sets is exactly the header
	// projection of the property (each tuple's topology BDD is
	// satisfiable), so one quantification replaces an Or per tuple.
	covered := p.Sp.HeaderOnly(property)
	if missing := m.Diff(universe, covered); missing != bdd.False {
		out = append(out, ToleranceResult{Pkt: missing, K: -1})
	}
	return out
}

// MinTolerance computes the single failure-tolerance number of a
// property over a whole header universe: the minimum over its packet
// sets.
func (p *Pipeline) MinTolerance(property, universe bdd.Node) int {
	min := InfiniteTolerance
	for _, r := range p.Tolerance(property, universe) {
		if r.K < min {
			min = r.K
		}
	}
	return min
}

// IsolationTolerance computes the failure tolerance of
// Isolation(s, d, hdr): the maximum k such that no packet of hdr reaches
// d under any combination of at most k failures. The property BDD is
// the reach BDD; isolation is violated by the first failure combination
// that makes reachability true, so the tolerance is the shortest path to
// the True terminal minus one.
func (p *Pipeline) IsolationTolerance(reachProperty, universe bdd.Node) int {
	m := p.Sp.M
	min := InfiniteTolerance
	covered := bdd.False
	for _, tup := range p.Extract(reachProperty) {
		covered = m.Or(covered, tup.Pkt)
		sp := m.ShortestPathToTrue(tup.Topo)
		k := InfiniteTolerance
		if sp != math.MaxInt32 {
			k = sp - 1
		}
		if k < min {
			min = k
		}
	}
	// Packets never delivered are isolated under every failure count.
	_ = covered
	return min
}

// Probability computes the probability that the property holds for each
// packet set under independent link failures (Theorem 2). When the
// pipeline was run with route pruning at budget k, the result
// under-estimates the true probability by at most the binomial tail
// P(more than k failures).
func (p *Pipeline) Probability(property bdd.Node, model prob.LinkModel) []ProbabilityResult {
	m := p.Sp.M
	pv := p.Sp.LinkProbabilities(model.PDown)
	var out []ProbabilityResult
	for _, tup := range p.Extract(property) {
		out = append(out, ProbabilityResult{Pkt: tup.Pkt, P: m.Probability(tup.Topo, pv)})
	}
	return out
}

// ProbabilityResult reports the probability that a property holds for a
// packet set.
type ProbabilityResult struct {
	Pkt bdd.Node
	P   float64
}

// MinProbability returns the minimum property probability across packet
// sets (1 if the property BDD is empty of packets — vacuous).
func (p *Pipeline) MinProbability(property bdd.Node, model prob.LinkModel) float64 {
	min := 1.0
	for _, r := range p.Probability(property, model) {
		if r.P < min {
			min = r.P
		}
	}
	return min
}

// ProbabilityWithNodes computes property probabilities under combined
// node and link failures. Following §6.4, a node failure takes down all
// incident links: each link variable l is substituted with
// l ∧ nA ∧ nB, where nA/nB are the endpoint node variables (reserved in
// the symbolic space); the resulting BDD is evaluated under the joint
// independent distribution. This is exact for independent node failures
// (the paper uses a Bayesian-network query for the same quantity).
func (p *Pipeline) ProbabilityWithNodes(property bdd.Node, model prob.NodeModel) []ProbabilityResult {
	m := p.Sp.M
	t := p.Net.Topology
	pv := make([]float64, m.NumVars())
	for i := range pv {
		pv[i] = 1
	}
	for _, v := range p.Sp.LinkVars() {
		pv[v] = 1 - model.PLinkDown
	}
	for r := 0; r < t.NumRouters(); r++ {
		pv[p.Sp.NodeVarIndex(topology.RouterID(r))] = 1 - model.PNodeDown
	}
	var out []ProbabilityResult
	for _, tup := range p.Extract(property) {
		topo := tup.Topo
		for _, l := range t.Links() {
			v := p.Sp.LinkVarIndex(l.ID)
			up := m.AndN(m.Var(v),
				m.Var(p.Sp.NodeVarIndex(l.A)),
				m.Var(p.Sp.NodeVarIndex(l.B)))
			topo = m.Compose(topo, v, up)
		}
		out = append(out, ProbabilityResult{Pkt: tup.Pkt, P: m.Probability(topo, pv)})
	}
	return out
}

// RiskGroup is a set of links that fail together (a shared conduit,
// line card, or other common-mode risk, §6.4) with probability PDown,
// independently of individual link failures.
type RiskGroup struct {
	Links []topology.LinkID
	PDown float64
}

// ProbabilityWithRisks computes property probabilities under
// independent link failures plus shared-risk groups: each link behaves
// as down when it fails itself OR any group containing it fires. The
// pipeline must have been created by Run (which reserves up to
// MaxRiskGroups group variables).
func (p *Pipeline) ProbabilityWithRisks(property bdd.Node, model prob.LinkModel, groups []RiskGroup) []ProbabilityResult {
	if len(groups) > MaxRiskGroups {
		panic(fmt.Sprintf("analysis: %d risk groups exceed the reserved %d", len(groups), MaxRiskGroups))
	}
	m := p.Sp.M
	t := p.Net.Topology
	riskVar := func(i int) int {
		return symbol.HeaderBits + t.NumLinks() + t.NumRouters() + i
	}
	pv := make([]float64, m.NumVars())
	for i := range pv {
		pv[i] = 1
	}
	for _, v := range p.Sp.LinkVars() {
		pv[v] = 1 - model.PDown
	}
	for i, g := range groups {
		pv[riskVar(i)] = 1 - g.PDown
	}
	// groupsOf[l] lists the group variables covering link l.
	groupsOf := make(map[topology.LinkID][]int)
	for i, g := range groups {
		for _, l := range g.Links {
			groupsOf[l] = append(groupsOf[l], riskVar(i))
		}
	}
	var out []ProbabilityResult
	for _, tup := range p.Extract(property) {
		topo := tup.Topo
		for l, gvars := range groupsOf {
			v := p.Sp.LinkVarIndex(l)
			up := m.Var(v)
			for _, gv := range gvars {
				up = m.And(up, m.Var(gv))
			}
			topo = m.Compose(topo, v, up)
		}
		out = append(out, ProbabilityResult{Pkt: tup.Pkt, P: m.Probability(topo, pv)})
	}
	return out
}

// LoadBalancePaths counts the forwarding paths that simultaneously carry
// packets of hdr from s to dst under the all-links-up scenario
// (Loadbalance(s, d, p, n) holds when the count is at least n).
func (p *Pipeline) LoadBalancePaths(s topology.RouterID, dst map[topology.RouterID]bool, hdr bdd.Node) int {
	m := p.Sp.M
	allUp := p.Sp.AllLinksUp()
	cond := m.And(hdr, allUp)
	n := 0
	for _, pf := range p.pfecs[s] {
		if pf.Delivered && dst[pf.Dst()] && m.AndSat(pf.Pred, cond) {
			n++
		}
	}
	return n
}

// AllPairsReachable reports, for every (source, prefix) pair, whether
// the prefix stays reachable under EVERY failure combination of at most
// k links — the all-pairs workload of Figure 5. The pipeline must have
// been run with a route-pruning budget of at least k (or none).
func (p *Pipeline) AllPairsReachable(k int) map[PairKey]bool {
	m := p.Sp.M
	budget := p.Sp.AtMostKLinkFailures(k)
	out := make(map[PairKey]bool)
	t := p.Net.Topology
	for _, pfx := range p.Net.AllPrefixes() {
		origins := p.OriginSet(pfx)
		hdr := p.OwnedHeaders(pfx)
		for s := 0; s < t.NumRouters(); s++ {
			srcID := topology.RouterID(s)
			if origins[srcID] {
				continue
			}
			prop := p.ReachBDD(srcID, origins, hdr)
			holds := !m.DiffSat(m.And(hdr, budget), prop)
			out[PairKey{Src: srcID, Prefix: pfx}] = holds
		}
	}
	return out
}

// PairReachable is the single-pair variant of AllPairsReachable.
func (p *Pipeline) PairReachable(src topology.RouterID, pfx route.Prefix, k int) bool {
	m := p.Sp.M
	budget := p.Sp.AtMostKLinkFailures(k)
	hdr := p.OwnedHeaders(pfx)
	prop := p.ReachBDD(src, p.OriginSet(pfx), hdr)
	return !m.DiffSat(m.And(hdr, budget), prop)
}

// Release frees the BDD references held by the pipeline's PFECs and
// forwarder. Decoded pipelines (NewDecodedPipeline) have no forwarder;
// their references live entirely in the PFEC predicates.
func (p *Pipeline) Release() {
	for _, l := range p.pfecs {
		spf.ReleasePFECs(p.Sp, l)
	}
	if p.Fw != nil {
		p.Fw.Release()
	}
}

package analysis

import (
	"testing"

	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/topology"
)

func TestGeneralizeFoldsSiblings(t *testing.T) {
	s := &Specs{ReachTolerance: map[PairKey]int{
		// Four /26 siblings with equal tolerance fold into one /24.
		{Src: 1, Prefix: route.MustParsePrefix("10.0.0.0/26")}:   1,
		{Src: 1, Prefix: route.MustParsePrefix("10.0.0.64/26")}:  1,
		{Src: 1, Prefix: route.MustParsePrefix("10.0.0.128/26")}: 1,
		{Src: 1, Prefix: route.MustParsePrefix("10.0.0.192/26")}: 1,
		// A pair with mismatched tolerance must not fold.
		{Src: 1, Prefix: route.MustParsePrefix("10.0.1.0/25")}:   0,
		{Src: 1, Prefix: route.MustParsePrefix("10.0.1.128/25")}: 2,
		// Different source: independent folding.
		{Src: 2, Prefix: route.MustParsePrefix("10.0.0.0/26")}:  1,
		{Src: 2, Prefix: route.MustParsePrefix("10.0.0.64/26")}: 1,
	}}
	groups := s.Generalize()
	find := func(src topology.RouterID, p string) *GroupSpec {
		pfx := route.MustParsePrefix(p)
		for i := range groups {
			if groups[i].Src == src && groups[i].Prefix == pfx {
				return &groups[i]
			}
		}
		return nil
	}
	if g := find(1, "10.0.0.0/24"); g == nil || g.K != 1 || g.Members != 4 {
		t.Errorf("expected /24 group of 4 members, got %+v", g)
	}
	if find(1, "10.0.1.0/24") != nil {
		t.Error("mismatched tolerances must not fold")
	}
	if g := find(1, "10.0.1.0/25"); g == nil || g.K != 0 {
		t.Error("unfolded /25 should survive")
	}
	if g := find(2, "10.0.0.0/25"); g == nil || g.Members != 2 {
		t.Errorf("source 2 should fold its two /26s into a /25, got %+v", g)
	}
	total := 0
	for _, g := range groups {
		total += g.Members
	}
	if total != len(s.ReachTolerance) {
		t.Errorf("members must partition the specs: %d vs %d", total, len(s.ReachTolerance))
	}
}

func TestGeneralizeEndToEnd(t *testing.T) {
	// A line A—B where B originates four sibling /26s: mining + folding
	// yields one /24-level spec for A.
	net, err := config.ParseString(`
topology
  router A
  router B
  link A B
end
router A
  ospf
  exit
end
router B
  ospf
    network 10.0.0.0/26
    network 10.0.0.64/26
    network 10.0.0.128/26
    network 10.0.0.192/26
  exit
end
`)
	if err != nil {
		t.Fatal(err)
	}
	mn := &Miner{Net: net, KMax: 2}
	specs, err := mn.Mine()
	if err != nil {
		t.Fatal(err)
	}
	groups := specs.Generalize()
	if len(groups) != 1 {
		t.Fatalf("want a single generalized spec, got %v", groups)
	}
	if groups[0].Prefix != route.MustParsePrefix("10.0.0.0/24") || groups[0].Members != 4 {
		t.Errorf("got %+v, want the /24 with 4 members", groups[0])
	}
	if groups[0].K != 0 {
		t.Errorf("line topology tolerance = %d, want 0", groups[0].K)
	}
}

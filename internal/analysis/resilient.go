package analysis

import (
	"errors"
	"fmt"
	"sort"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/src"
)

// Escalation-ladder rung names, recorded per prefix in
// PrefixOutcome.Rungs in the order they were climbed.
const (
	RungAbstract     = "abstract"      // enable AS-path abstraction (§7.3)
	RungHalveBudget  = "halve-budget"  // halve the failure budget (PruneK)
	RungSplitHeaders = "split-headers" // split the prefix's header space
	// RungWorkerCrash marks a prefix whose worker subprocess crashed,
	// stalled, or corrupted its result stream repeatedly in a
	// multi-process run, forcing a quarantined in-process fallback (see
	// internal/coord). It is a degradation reason, not a retry knob: the
	// fallback verifies with the originally requested options.
	RungWorkerCrash = "worker-crash"
)

// PrefixOutcome reports how one prefix of a partitioned run fared.
type PrefixOutcome struct {
	Prefix route.Prefix
	// Err is non-nil when the prefix exhausted the escalation ladder
	// and could not be verified; the rest of the run still completed.
	Err error
	// Quarantined marks prefixes that overflowed the node limit in a
	// shared group and were retried in isolation.
	Quarantined bool
	// Degraded marks prefixes verified with weaker settings than
	// requested (any ladder rung); Rungs lists the rungs applied.
	Degraded bool
	Rungs    []string
	// EffectivePruneK is the failure budget the prefix was actually
	// verified with; it differs from the requested budget only after
	// the halve-budget rung.
	EffectivePruneK int
	// WorkerCrashes counts failed worker attempts (crash, stall,
	// corrupt frame) this prefix survived in a multi-process run before
	// converging — 0 for in-process runs and clean worker runs.
	WorkerCrashes int
}

// Partitioned is the result of a resilient multi-prefix run: one or
// more pipelines, each covering a subset of the requested prefixes,
// plus a per-prefix outcome map. Prefixes that could not be verified
// have an outcome with Err set and no pipeline.
type Partitioned struct {
	// Groups holds every live pipeline, in creation order.
	Groups []*Pipeline
	// outcomes and byPrefix are keyed by the requested prefixes.
	outcomes map[route.Prefix]*PrefixOutcome
	byPrefix map[route.Prefix][]*Pipeline
}

// Outcome returns the outcome of a requested prefix, or nil when the
// prefix was not part of the run.
func (pt *Partitioned) Outcome(pfx route.Prefix) *PrefixOutcome {
	return pt.outcomes[pfx]
}

// Outcomes returns all per-prefix outcomes, sorted by prefix.
func (pt *Partitioned) Outcomes() []PrefixOutcome {
	out := make([]PrefixOutcome, 0, len(pt.outcomes))
	for _, o := range pt.outcomes {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Len < out[j].Prefix.Len
	})
	return out
}

// PipelinesFor returns the pipelines covering pfx: usually one, two
// after the split-headers rung (each scoped to half the header space),
// nil when the prefix failed or was not requested. Queries over pfx
// must combine results across all returned pipelines (min for
// tolerances, max for path counts).
func (pt *Partitioned) PipelinesFor(pfx route.Prefix) []*Pipeline {
	return pt.byPrefix[pfx]
}

// Failed reports whether any prefix exhausted the ladder.
func (pt *Partitioned) Failed() bool {
	for _, o := range pt.outcomes {
		if o.Err != nil {
			return true
		}
	}
	return false
}

// Release frees every pipeline of the partitioned run.
func (pt *Partitioned) Release() {
	for _, p := range pt.Groups {
		p.Release()
	}
	pt.Groups = nil
	pt.byPrefix = nil
}

// LadderOptions tunes the escalation ladder of RunPartitioned.
type LadderOptions struct {
	// DisableBudgetHalving skips the halve-budget rung. The miner sets
	// it: a stratum-k verdict is only sound at budget exactly k, so
	// trading budget for memory would corrupt the stratification.
	DisableBudgetHalving bool
}

// recoverable reports whether err should trigger degradation (node
// table overflow) as opposed to aborting the run (cancellation,
// deadline, non-convergence, config errors).
func recoverable(err error) bool {
	return errors.Is(err, bdd.ErrNodeLimit) && !resil.Interruption(err)
}

// RunPartitioned executes a multi-prefix analysis resiliently. With
// opts.Parallelism resolving to one worker, all prefixes are first
// attempted in one pipeline; when the BDD node table overflows, the
// prefix set is bisected and retried so the overflow is isolated to
// the offending prefix(es), and each offender is pushed through an
// escalation ladder — enable Abstract, halve the failure budget, split
// the prefix's header space — before being marked failed. With more
// workers, each prefix runs as its own scoped pipeline on a
// work-stealing pool (largest estimated cost first) and overflowing
// prefixes climb the same ladder as re-queued pool tasks; outcomes and
// groups are assembled in prefix order, so results do not depend on
// completion order. Either way the run always completes with
// per-prefix outcomes unless it is canceled, times out, or hits a
// non-resource error, which aborts the whole run.
//
// opts.Prefixes is ignored; the explicit prefixes argument is the
// partitioning domain. With several workers opts.Interrupt must be
// safe for concurrent use (resil.SharedChecker.Fn). Telemetry
// counters: resilience.retries (group bisections and ladder attempts),
// resilience.quarantined (prefixes isolated after a shared overflow),
// resilience.degraded (prefixes verified on a ladder rung),
// resilience.failed (prefixes that exhausted the ladder).
func RunPartitioned(net *config.Network, opts src.Options, prefixes []route.Prefix, lad LadderOptions) (*Partitioned, error) {
	return RunPartitionedCached(net, opts, prefixes, lad, nil)
}

// RunPartitionedCached is RunPartitioned with a persistent result
// cache. A cache-carrying sequential run routes through the per-prefix
// scheduler at one worker instead of the group-bisection path: the
// cache is per prefix task, and the determinism contract pins the two
// paths to identical results, so the single integration point serves
// every parallelism setting.
func RunPartitionedCached(net *config.Network, opts src.Options, prefixes []route.Prefix, lad LadderOptions, cache *ResultCache) (*Partitioned, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("analysis: partitioned run needs at least one prefix")
	}
	if w := Workers(opts); w > 1 || cache != nil {
		if w < 1 {
			w = 1
		}
		return runPartitionedParallel(net, opts, prefixes, lad, w, cache)
	}
	pt := &Partitioned{
		outcomes: make(map[route.Prefix]*PrefixOutcome, len(prefixes)),
		byPrefix: make(map[route.Prefix][]*Pipeline, len(prefixes)),
	}
	tel := opts.Telemetry
	telRetries := tel.Counter("resilience.retries")
	telQuarantined := tel.Counter("resilience.quarantined")
	telDegraded := tel.Counter("resilience.degraded")
	telFailed := tel.Counter("resilience.failed")
	for _, pfx := range prefixes {
		pt.outcomes[pfx] = &PrefixOutcome{Prefix: pfx, EffectivePruneK: opts.PruneK}
	}

	emit := func(detail string) {
		if tel.Active() {
			tel.Emit(obs.Event{Stage: "resilience", Detail: detail})
		}
	}

	addGroup := func(pipe *Pipeline, group []route.Prefix) {
		pt.Groups = append(pt.Groups, pipe)
		for _, pfx := range group {
			pt.byPrefix[pfx] = append(pt.byPrefix[pfx], pipe)
		}
	}

	// escalate pushes one overflowing prefix through the ladder.
	escalate := func(pfx route.Prefix, firstErr error) error {
		out := pt.outcomes[pfx]
		out.Quarantined = true
		telQuarantined.Inc()
		lastErr := firstErr

		attempt := func(rung string, o src.Options, scope *route.Prefix) (bool, error) {
			telRetries.Inc()
			out.Rungs = append(out.Rungs, rung)
			emit(fmt.Sprintf("prefix %s: retrying on rung %q", pfx, rung))
			o.Prefixes = []route.Prefix{pfx}
			var pipe *Pipeline
			var err error
			if scope != nil {
				pipe, err = RunScoped(net, o, *scope)
			} else {
				pipe, err = Run(net, o)
			}
			if err == nil {
				addGroup(pipe, []route.Prefix{pfx})
				return true, nil
			}
			if !recoverable(err) {
				return false, err // abort the whole run
			}
			lastErr = err
			return false, nil
		}

		done := func(k int) {
			out.Degraded = true
			out.EffectivePruneK = k
			telDegraded.Inc()
		}

		// Rung 1: AS-path abstraction merges parallel routes, often an
		// order-of-magnitude node saving on fabrics (§7.3).
		o := opts
		if !o.Abstract {
			o.Abstract = true
			if ok, err := attempt(RungAbstract, o, nil); err != nil {
				return err
			} else if ok {
				done(o.PruneK)
				return nil
			}
		} else {
			o.Abstract = true
		}

		// Rung 2: halve the failure budget (repeatedly, down to 0).
		// Results become sound only for the smaller budget, so the
		// miner disables this rung.
		if !lad.DisableBudgetHalving {
			for k := o.PruneK / 2; o.PruneK > 0; k /= 2 {
				o.PruneK = k
				if ok, err := attempt(RungHalveBudget, o, nil); err != nil {
					return err
				} else if ok {
					done(k)
					return nil
				}
				if k == 0 {
					break
				}
			}
		}

		// Rung 3: split the header space — two scoped pipelines, each
		// forwarding only half of the prefix's addresses. Both halves
		// must succeed for the prefix to count as verified.
		if lo, hi, ok := pfx.Halves(); ok {
			out.Rungs = append(out.Rungs, RungSplitHeaders)
			var halves []*Pipeline
			failed := false
			for _, half := range []route.Prefix{lo, hi} {
				telRetries.Inc()
				emit(fmt.Sprintf("prefix %s: retrying scoped to %s", pfx, half))
				ho := o
				ho.Prefixes = []route.Prefix{pfx}
				pipe, err := RunScoped(net, ho, half)
				if err != nil {
					if !recoverable(err) {
						for _, p := range halves {
							p.Release()
						}
						return err
					}
					lastErr = err
					failed = true
					break
				}
				halves = append(halves, pipe)
			}
			if !failed {
				pt.Groups = append(pt.Groups, halves...)
				pt.byPrefix[pfx] = append(pt.byPrefix[pfx], halves...)
				done(o.PruneK)
				return nil
			}
			for _, p := range halves {
				p.Release()
			}
		}

		out.Err = lastErr
		telFailed.Inc()
		emit(fmt.Sprintf("prefix %s: failed after %d rungs: %v", pfx, len(out.Rungs), lastErr))
		return nil
	}

	// runGroup attempts a prefix group in one pipeline, bisecting on
	// overflow until singletons reach the ladder.
	var runGroup func(group []route.Prefix) error
	runGroup = func(group []route.Prefix) error {
		o := opts
		o.Prefixes = group
		pipe, err := Run(net, o)
		if err == nil {
			addGroup(pipe, group)
			return nil
		}
		if !recoverable(err) {
			return err
		}
		if len(group) == 1 {
			return escalate(group[0], err)
		}
		telRetries.Inc()
		emit(fmt.Sprintf("node limit with %d prefixes: bisecting", len(group)))
		mid := len(group) / 2
		if err := runGroup(group[:mid]); err != nil {
			return err
		}
		return runGroup(group[mid:])
	}

	if err := runGroup(prefixes); err != nil {
		pt.Release()
		return nil, err
	}
	return pt, nil
}

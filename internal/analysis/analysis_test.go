package analysis

import (
	"math"
	"testing"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/prob"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
)

const figure1 = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end

router A
  bgp 65001
end

router B
  bgp 65002
end

router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func runPipe(t *testing.T, text string, opts src.Options) *Pipeline {
	t.Helper()
	net, err := config.ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pipe, err := Run(net, opts)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return pipe
}

// TestFigure4Tolerance reproduces the paper's §6.3 walkthrough: for
// packets 192/2 the failure tolerance of Reach(A, C, ·) is 0, for
// packets 128/2 it is 1.
func TestFigure4Tolerance(t *testing.T) {
	pipe := runPipe(t, figure1, src.Options{PruneK: -1})
	m := pipe.Sp.M
	a := pipe.Net.Topology.MustRouter("A")
	c := pipe.Net.Topology.MustRouter("C")
	dst := map[topology.RouterID]bool{c: true}

	p192 := pipe.Sp.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	p128 := pipe.Sp.Prefix(route.MustParsePrefix("128.0.0.0/1"))
	p128only := m.Diff(p128, p192)

	prop := pipe.ReachBDD(a, dst, bdd.True)
	results := pipe.Tolerance(prop, m.Or(p128, p192))
	var k192, k128 = -99, -99
	for _, r := range results {
		switch {
		case m.And(r.Pkt, p192) == r.Pkt && r.Pkt != bdd.False:
			k192 = r.K
		case m.And(r.Pkt, p128only) == r.Pkt && r.Pkt != bdd.False:
			k128 = r.K
		}
	}
	if k192 != 0 {
		t.Errorf("tolerance(192/2) = %d, want 0", k192)
	}
	if k128 != 1 {
		t.Errorf("tolerance(128/2) = %d, want 1", k128)
	}
	if got := pipe.MinTolerance(prop, m.Or(p128, p192)); got != 0 {
		t.Errorf("min tolerance = %d, want 0", got)
	}
}

// TestExample2Probability reproduces §3.3 example 2: with each link up
// with probability 0.9, Prob(Reach(A, C, 128/2)) = 0.981.
func TestExample2Probability(t *testing.T) {
	pipe := runPipe(t, figure1, src.Options{PruneK: -1})
	m := pipe.Sp.M
	a := pipe.Net.Topology.MustRouter("A")
	c := pipe.Net.Topology.MustRouter("C")
	dst := map[topology.RouterID]bool{c: true}
	p192 := pipe.Sp.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	p128only := m.Diff(pipe.Sp.Prefix(route.MustParsePrefix("128.0.0.0/1")), p192)

	prop := pipe.ReachBDD(a, dst, p128only)
	results := pipe.Probability(prop, prob.LinkModel{PDown: 0.1})
	if len(results) != 1 {
		t.Fatalf("want one packet set, got %d", len(results))
	}
	if math.Abs(results[0].P-0.981) > 1e-12 {
		t.Errorf("probability = %v, want 0.981", results[0].P)
	}
	// 192/2 reaches C only via A→B→C: probability 0.9² = 0.81.
	prop192 := pipe.ReachBDD(a, dst, p192)
	r192 := pipe.Probability(prop192, prob.LinkModel{PDown: 0.1})
	if len(r192) != 1 || math.Abs(r192[0].P-0.81) > 1e-12 {
		t.Errorf("probability(192/2) = %v, want 0.81", r192)
	}
}

func TestProbabilityWithNodes(t *testing.T) {
	pipe := runPipe(t, figure1, src.Options{PruneK: -1})
	m := pipe.Sp.M
	a := pipe.Net.Topology.MustRouter("A")
	c := pipe.Net.Topology.MustRouter("C")
	dst := map[topology.RouterID]bool{c: true}
	p192 := pipe.Sp.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	p128only := m.Diff(pipe.Sp.Prefix(route.MustParsePrefix("128.0.0.0/1")), p192)

	// 192/2: path A→B→C requires lAB, lBC up and node B up (A and C are
	// the endpoints; following the paper, endpoint node failures are
	// not part of the path property for its own source/destination —
	// but our model composes all endpoints, so:
	// P = P(lAB)·P(lBC)·P(nA)·P(nB)·P(nC).
	pl, pn := 0.1, 0.01
	prop := pipe.ReachBDD(a, dst, p192)
	got := pipe.ProbabilityWithNodes(prop, prob.NodeModel{PLinkDown: pl, PNodeDown: pn})
	want := math.Pow(1-pl, 2) * math.Pow(1-pn, 3)
	if len(got) != 1 || math.Abs(got[0].P-want) > 1e-12 {
		t.Errorf("node-failure probability = %v, want %v", got, want)
	}
	// 128/2 must be strictly more reachable than 192/2.
	prop128 := pipe.ReachBDD(a, dst, p128only)
	got128 := pipe.ProbabilityWithNodes(prop128, prob.NodeModel{PLinkDown: pl, PNodeDown: pn})
	if len(got128) != 1 || got128[0].P <= got[0].P {
		t.Errorf("128/2 should be more reachable: %v vs %v", got128, got)
	}
}

func TestIsolationTolerance(t *testing.T) {
	// B never reaches a prefix blocked by ACLs on every path: build a
	// net where D's prefix is ACL-blocked on the direct link but leaks
	// via a backup path — isolation tolerance 0.
	pipe := runPipe(t, `
topology
  router S
  router D
  router X
  link S D
  link S X
  link X D
end
router S
  ospf
  exit
end
router X
  ospf
  exit
end
router D
  ospf
    network 10.0.0.0/24
  exit
  interface S
    acl-in deny any
  exit
end
`, src.Options{PruneK: -1})
	m := pipe.Sp.M
	s := pipe.Net.Topology.MustRouter("S")
	d := pipe.Net.Topology.MustRouter("D")
	hdr := pipe.Sp.Prefix(route.MustParsePrefix("10.0.0.0/24"))
	prop := pipe.ReachBDD(s, map[topology.RouterID]bool{d: true}, hdr)
	// Under all-up, S forwards directly to D where the ACL drops: not
	// reachable. If link S-D fails, trafic deflects via X and reaches D:
	// isolation is violated by one failure → tolerance 0.
	if m.And(prop, pipe.Sp.AllLinksUp()) != bdd.False {
		t.Fatal("direct path should be ACL-blocked")
	}
	if got := pipe.IsolationTolerance(prop, hdr); got != 0 {
		t.Errorf("isolation tolerance = %d, want 0", got)
	}
}

func TestLoadBalancePaths(t *testing.T) {
	pipe := runPipe(t, `
topology
  router A
  router B
  router C
  router D
  link A B
  link A C
  link B D
  link C D
end
router A
  ospf
  exit
end
router B
  ospf
  exit
end
router C
  ospf
  exit
end
router D
  ospf
    network 10.0.0.0/24
  exit
end
`, src.Options{PruneK: -1})
	a := pipe.Net.Topology.MustRouter("A")
	d := pipe.Net.Topology.MustRouter("D")
	hdr := pipe.Sp.Prefix(route.MustParsePrefix("10.0.0.0/24"))
	if got := pipe.LoadBalancePaths(a, map[topology.RouterID]bool{d: true}, hdr); got != 2 {
		t.Errorf("load-balanced paths = %d, want 2", got)
	}
}

func TestToleranceUncoveredHeaders(t *testing.T) {
	pipe := runPipe(t, figure1, src.Options{PruneK: -1})
	a := pipe.Net.Topology.MustRouter("A")
	c := pipe.Net.Topology.MustRouter("C")
	// Ask about a header space nobody originates: tolerance -1.
	hdr := pipe.Sp.Prefix(route.MustParsePrefix("1.0.0.0/8"))
	prop := pipe.ReachBDD(a, map[topology.RouterID]bool{c: true}, hdr)
	results := pipe.Tolerance(prop, hdr)
	if len(results) != 1 || results[0].K != -1 {
		t.Errorf("uncovered headers should yield K=-1, got %+v", results)
	}
}

func TestExtractReconstructs(t *testing.T) {
	pipe := runPipe(t, figure1, src.Options{PruneK: -1})
	m := pipe.Sp.M
	a := pipe.Net.Topology.MustRouter("A")
	c := pipe.Net.Topology.MustRouter("C")
	prop := pipe.ReachBDD(a, map[topology.RouterID]bool{c: true}, bdd.True)
	rebuilt := bdd.False
	for _, tup := range pipe.Extract(prop) {
		rebuilt = m.Or(rebuilt, m.And(tup.Pkt, tup.Topo))
	}
	if rebuilt != prop {
		t.Fatal("Extract tuples do not reconstruct the property BDD")
	}
}

func TestDiffReachabilityFindsFailureOnlyDifference(t *testing.T) {
	// §6.5 scenario: deleting C's inbound ACL for 192/2 changes nothing
	// under all-up (the route-map still diverts 192/2 through B), but
	// under lAB or lBC failures packets for 192/2 start reaching C.
	netBefore, err := config.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	netAfter := netBefore.Clone()
	cID := netAfter.Topology.MustRouter("C")
	aID := netAfter.Topology.MustRouter("A")
	ac, _ := netAfter.Topology.LinkBetween(aID, cID)
	netAfter.Router(cID).Interfaces[ac].ACLIn = nil

	before, err := Run(netBefore, src.Options{PruneK: -1})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Run(netAfter, src.Options{PruneK: -1})
	if err != nil {
		t.Fatal(err)
	}
	model := prob.LinkModel{PDown: 0.001}
	diffs := DiffReachability(before, after, &model)
	var found *Difference
	for i := range diffs {
		d := &diffs[i]
		if d.Src == aID && d.Prefix == route.MustParsePrefix("192.0.0.0/2") {
			found = d
		}
	}
	if found == nil {
		t.Fatal("expected a difference for (A, 192/2)")
	}
	if found.ChangedUnderNoFailures(after) {
		t.Error("difference should NOT be visible under all links up (DNA-invisible)")
	}
	if len(found.WitnessDownLinks) == 0 {
		t.Error("expected a failure witness")
	}
	// Tolerance increases after the change (paper: 0 → 1).
	if !(found.ToleranceBefore == 0 && found.ToleranceAfter == 1) {
		t.Errorf("tolerance before/after = %d/%d, want 0/1",
			found.ToleranceBefore, found.ToleranceAfter)
	}
	if found.ProbAfter <= found.ProbBefore {
		t.Errorf("probability should increase: %v -> %v", found.ProbBefore, found.ProbAfter)
	}
}

func TestDiffReachabilityNoChange(t *testing.T) {
	net, err := config.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Run(net, src.Options{PruneK: -1})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Run(net.Clone(), src.Options{PruneK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffReachability(before, after, nil); len(diffs) != 0 {
		t.Errorf("identical configs should have no differences, got %d", len(diffs))
	}
}

func TestMinerFigure1(t *testing.T) {
	net, err := config.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	mn := &Miner{Net: net, KMax: 2}
	specs, err := mn.Mine()
	if err != nil {
		t.Fatal(err)
	}
	aID := net.Topology.MustRouter("A")
	bID := net.Topology.MustRouter("B")
	p128 := route.MustParsePrefix("128.0.0.0/1")
	p192 := route.MustParsePrefix("192.0.0.0/2")
	// A→128/1: two disjoint paths but min-cut(A,C)=2, so tolerance 1.
	if got := specs.ReachTolerance[PairKey{Src: aID, Prefix: p128}]; got != 1 {
		t.Errorf("tolerance(A,128/1) = %d, want 1", got)
	}
	// A→192/2: only via B, tolerance 0.
	if got := specs.ReachTolerance[PairKey{Src: aID, Prefix: p192}]; got != 0 {
		t.Errorf("tolerance(A,192/2) = %d, want 0", got)
	}
	// B→192/2: direct link to C, tolerance 0... but backup via A is
	// blocked by C's export map at A? No: A never receives 192/2 from
	// C; it receives it from B itself — AS-loop rejected. So B relies
	// on lBC only: tolerance 0.
	if got := specs.ReachTolerance[PairKey{Src: bID, Prefix: p192}]; got != 0 {
		t.Errorf("tolerance(B,192/2) = %d, want 0", got)
	}
	if len(specs.Isolated) != 0 {
		t.Errorf("no isolated pairs expected, got %v", specs.Isolated)
	}
}

func TestMinerOneShotAgreesWithStratified(t *testing.T) {
	net, err := config.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	a := (&Miner{Net: net, KMax: 2})
	sA, err := a.Mine()
	if err != nil {
		t.Fatal(err)
	}
	b := (&Miner{Net: net, KMax: 2, DisablePrefixPruning: true})
	sB, err := b.Mine()
	if err != nil {
		t.Fatal(err)
	}
	if len(sA.ReachTolerance) != len(sB.ReachTolerance) {
		t.Fatalf("result sizes differ: %d vs %d", len(sA.ReachTolerance), len(sB.ReachTolerance))
	}
	for k, v := range sA.ReachTolerance {
		if sB.ReachTolerance[k] != v {
			t.Errorf("pair %v: stratified %d vs one-shot %d", k, v, sB.ReachTolerance[k])
		}
	}
}

func TestMinerWaypoint(t *testing.T) {
	net, err := config.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	bID := net.Topology.MustRouter("B")
	mn := &Miner{Net: net, KMax: 2,
		Waypoint: func(s topology.RouterID, pfx route.Prefix) (topology.RouterID, bool) {
			return bID, s != bID
		}}
	specs, err := mn.Mine()
	if err != nil {
		t.Fatal(err)
	}
	aID := net.Topology.MustRouter("A")
	// Waypoint(A, C, B) for 192/2: all delivered traffic goes through
	// B, tolerance limited by the single path: 0.
	if got := specs.WaypointTolerance[PairKey{Src: aID, Prefix: route.MustParsePrefix("192.0.0.0/2")}]; got != 0 {
		t.Errorf("waypoint tolerance (A,192/2 via B) = %d, want 0", got)
	}
	// Waypoint(A, C, B) for 128/1: the direct path A→C skips B, so the
	// waypoint property fails even with no failures: -1.
	if got := specs.WaypointTolerance[PairKey{Src: aID, Prefix: route.MustParsePrefix("128.0.0.0/1")}]; got != -1 {
		t.Errorf("waypoint tolerance (A,128/1 via B) = %d, want -1", got)
	}
}

func TestPipelineTimings(t *testing.T) {
	pipe := runPipe(t, figure1, src.Options{PruneK: -1})
	if pipe.SRCTime <= 0 || pipe.SPFTime <= 0 {
		t.Error("stage timings should be positive")
	}
	if pipe.NumPFECs() == 0 {
		t.Error("pipeline should produce PFECs")
	}
}

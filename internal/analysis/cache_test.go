package analysis

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/store"
)

func mustNet(t *testing.T, text string) *config.Network {
	t.Helper()
	net, err := config.ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return net
}

// TestCacheKeySensitivity pins that every result-shaping input is part
// of the key: flipping any of them must move the key, while edits the
// task domain cannot observe must not.
func TestCacheKeySensitivity(t *testing.T) {
	net := mustNet(t, figure1)
	pfx := route.MustParsePrefix("128.0.0.0/1")
	base := CacheKey(net, src.Options{PruneK: 2}, pfx, true, LadderOptions{})

	if k := CacheKey(net, src.Options{PruneK: 2}, pfx, true, LadderOptions{}); k != base {
		t.Fatalf("key not deterministic: %s vs %s", base, k)
	}
	if len(base) != 64 || strings.ToLower(base) != base {
		t.Fatalf("key %q is not lowercase sha256 hex", base)
	}

	variants := map[string]string{
		"prune_k":   CacheKey(net, src.Options{PruneK: 3}, pfx, true, LadderOptions{}),
		"abstract":  CacheKey(net, src.Options{PruneK: 2, Abstract: true}, pfx, true, LadderOptions{}),
		"kernel":    CacheKey(net, src.Options{PruneK: 2, LegacyBDDKernel: true}, pfx, true, LadderOptions{}),
		"nodelimit": CacheKey(net, src.Options{PruneK: 2, BDDNodeLimit: 1 << 20}, pfx, true, LadderOptions{}),
		"ladder":    CacheKey(net, src.Options{PruneK: 2}, pfx, false, LadderOptions{}),
		"halving":   CacheKey(net, src.Options{PruneK: 2}, pfx, true, LadderOptions{DisableBudgetHalving: true}),
		"prefix":    CacheKey(net, src.Options{PruneK: 2}, route.MustParsePrefix("192.0.0.0/2"), true, LadderOptions{}),
		// Keys embed the RESOLVED order ID — on this triangle the
		// default "auto" resolves to declaration, so explicit bfs and
		// mindeg must both move the key (and differ from each other).
		"order_bfs":    CacheKey(net, src.Options{PruneK: 2, VarOrder: "bfs"}, pfx, true, LadderOptions{}),
		"order_mindeg": CacheKey(net, src.Options{PruneK: 2, VarOrder: "mindeg"}, pfx, true, LadderOptions{}),
	}
	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, k)
		}
		seen[k] = name
	}

	// An in-domain config edit (figure1's route-maps and ACLs are hashed
	// whole) must move the key.
	edited := mustNet(t, strings.Replace(figure1, "deny prefix 192.0.0.0/2", "permit prefix 192.0.0.0/2", 1))
	if k := CacheKey(edited, src.Options{PruneK: 2}, pfx, true, LadderOptions{}); k == base {
		t.Fatalf("route-map edit did not change the key")
	}

	// An out-of-domain edit — a new origination on B that overlaps
	// neither 128/1 nor 192/2 — must leave the key alone: warm caches
	// survive unrelated incremental edits.
	unrelatedText := strings.Replace(figure1,
		"router B\n  bgp 65002\nend",
		"router B\n  bgp 65002\n    network 0.0.0.0/2\nend", 1)
	if unrelatedText == figure1 {
		t.Fatalf("test fixture drifted: router B stanza not found")
	}
	unrelated := mustNet(t, unrelatedText)
	if k := CacheKey(unrelated, src.Options{PruneK: 2}, pfx, true, LadderOptions{}); k != base {
		t.Fatalf("out-of-domain origination changed the key:\n  base %s\n  got  %s", base, k)
	}
}

// TestResultCacheRoundTrip publishes a real prefix task result and
// replays it: the outcome must compare equal and the rebuilt pipelines
// must carry the same PFEC count.
func TestResultCacheRoundTrip(t *testing.T) {
	net := mustNet(t, figure1)
	opts := src.Options{PruneK: 2}
	pfx := route.MustParsePrefix("128.0.0.0/1")

	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer s.Close()
	cache := &ResultCache{S: s}
	key := CacheKey(net, opts, pfx, true, LadderOptions{})

	pipes, out, err := RunPrefixTask(net, opts, pfx, true, LadderOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := 0
	for _, p := range pipes {
		want += p.NumPFECs()
	}
	cache.Publish(net, key, pfx, pipes, out, nil)
	for _, p := range pipes {
		p.Release()
	}

	got, out2, hit, err := cache.Lookup(net, opts, key, pfx, nil)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if !hit {
		t.Fatalf("published record missed")
	}
	defer func() {
		for _, p := range got {
			p.Release()
		}
	}()
	if !reflect.DeepEqual(out, out2) {
		t.Errorf("outcome changed across the cache:\n  put %+v\n  got %+v", out, out2)
	}
	have := 0
	for _, p := range got {
		have += p.NumPFECs()
	}
	if have != want {
		t.Errorf("NumPFECs = %d after replay, want %d", have, want)
	}
	if m := s.Metrics(); m.Hits != 1 || m.Puts != 1 {
		t.Errorf("metrics = %+v, want 1 hit / 1 put", m)
	}

	// A different key is a plain miss.
	if _, _, hit, err := cache.Lookup(net, opts, strings.Repeat("ab", 32), pfx, nil); err != nil || hit {
		t.Fatalf("foreign key: hit=%v err=%v, want miss", hit, err)
	}
}

// TestResultCacheNeverPublishesFailures pins the publish filter: error
// outcomes, crash-decorated outcomes, and empty results must never
// reach disk — replaying them would make a transient failure sticky.
func TestResultCacheNeverPublishesFailures(t *testing.T) {
	net := mustNet(t, figure1)
	pfx := route.MustParsePrefix("128.0.0.0/1")
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer s.Close()
	cache := &ResultCache{S: s}

	pipes, out, err := RunPrefixTask(net, src.Options{PruneK: 2}, pfx, true, LadderOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	defer func() {
		for _, p := range pipes {
			p.Release()
		}
	}()

	errOut := out
	errOut.Err = errors.New("boom")
	cache.Publish(net, "11"+strings.Repeat("00", 31), pfx, pipes, errOut, nil)

	crashed := out
	crashed.Rungs = append([]string{RungWorkerCrash}, out.Rungs...)
	cache.Publish(net, "22"+strings.Repeat("00", 31), pfx, pipes, crashed, nil)

	cache.Publish(net, "33"+strings.Repeat("00", 31), pfx, nil, out, nil)

	if m := s.Metrics(); m.Puts != 0 {
		t.Fatalf("failure outcomes were published: %+v", m)
	}

	// A nil cache ignores both directions.
	var nilCache *ResultCache
	nilCache.Publish(net, "44"+strings.Repeat("00", 31), pfx, pipes, out, nil)
	if _, _, hit, err := nilCache.Lookup(net, src.Options{}, "44"+strings.Repeat("00", 31), pfx, nil); hit || err != nil {
		t.Fatalf("nil cache: hit=%v err=%v", hit, err)
	}
}

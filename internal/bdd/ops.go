package bdd

// Operation codes for the shared operation cache.
const (
	opAnd int32 = iota + 1
	opOr
	opXor
	opDiff // f ∧ ¬g
	opNot
	opIte
	opExists
	opRestrict
	opCompose
	opSupport
)

func (m *Manager) cacheLookup(op int32, f, g, h Node) (Node, bool) {
	e := &m.cache[m.cacheSlot(op, f, g, h)]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return e.res, true
	}
	m.stats.CacheMiss++
	return 0, false
}

func (m *Manager) cacheStore(op int32, f, g, h, res Node) {
	e := &m.cache[m.cacheSlot(op, f, g, h)]
	e.op, e.f, e.g, e.h, e.res = op, f, g, h, res
}

func (m *Manager) cacheSlot(op int32, f, g, h Node) uint32 {
	x := uint32(op)*0x27d4eb2f + uint32(f)*0x9e3779b9 + uint32(g)*0x85ebca6b + uint32(h)*0xc2b2ae35
	x ^= x >> 13
	return x & m.cacheMask
}

// clearCache invalidates the whole operation cache (after GC).
func (m *Manager) clearCache() {
	for i := range m.cache {
		m.cache[i] = cacheEntry{}
	}
}

// And returns f ∧ g.
func (m *Manager) And(f, g Node) Node { return m.apply(opAnd, f, g) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Node) Node { return m.apply(opOr, f, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Node) Node { return m.apply(opXor, f, g) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Node) Node { return m.apply(opDiff, f, g) }

// Imp returns f → g, i.e. ¬f ∨ g.
func (m *Manager) Imp(f, g Node) Node { return m.Or(m.Not(f), g) }

// Equiv returns f ↔ g.
func (m *Manager) Equiv(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// AndN returns the conjunction of all operands (True for none).
func (m *Manager) AndN(ns ...Node) Node {
	r := True
	for _, n := range ns {
		r = m.And(r, n)
	}
	return r
}

// OrN returns the disjunction of all operands (False for none).
func (m *Manager) OrN(ns ...Node) Node {
	r := False
	for _, n := range ns {
		r = m.Or(r, n)
	}
	return r
}

// apply computes a binary boolean operation with memoization.
func (m *Manager) apply(op int32, f, g Node) Node {
	m.pollInterrupt()
	// Terminal cases.
	switch op {
	case opAnd:
		if f == g {
			return f
		}
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f > g { // commutative: canonical order improves cache hits
			f, g = g, f
		}
	case opOr:
		if f == g {
			return f
		}
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f > g {
			f, g = g, f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return m.Not(g)
		}
		if g == True {
			return m.Not(f)
		}
		if f > g {
			f, g = g, f
		}
	case opDiff:
		if f == False || g == True || f == g {
			return False
		}
		if g == False {
			return f
		}
		if f == True {
			return m.Not(g)
		}
	}
	if r, ok := m.cacheLookup(op, f, g, 0); ok {
		return r
	}
	lf, lg := m.lvl[f], m.lvl[g]
	var lvl int32
	var f0, f1, g0, g1 Node
	switch {
	case lf == lg:
		lvl = lf
		f0, f1 = Node(m.lo[f]), Node(m.hi[f])
		g0, g1 = Node(m.lo[g]), Node(m.hi[g])
	case lf < lg:
		lvl = lf
		f0, f1 = Node(m.lo[f]), Node(m.hi[f])
		g0, g1 = g, g
	default:
		lvl = lg
		f0, f1 = f, f
		g0, g1 = Node(m.lo[g]), Node(m.hi[g])
	}
	lo := m.apply(op, f0, g0)
	hi := m.apply(op, f1, g1)
	r := m.mk(lvl, lo, hi)
	m.cacheStore(op, f, g, 0, r)
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Node) Node {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.cacheLookup(opNot, f, 0, 0); ok {
		return r
	}
	r := m.mk(m.lvl[f], m.Not(Node(m.lo[f])), m.Not(Node(m.hi[f])))
	m.cacheStore(opNot, f, 0, 0, r)
	return r
}

// Ite returns if-then-else(f, g, h) = (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	if r, ok := m.cacheLookup(opIte, f, g, h); ok {
		return r
	}
	lvl := m.lvl[f]
	if m.lvl[g] < lvl {
		lvl = m.lvl[g]
	}
	if m.lvl[h] < lvl {
		lvl = m.lvl[h]
	}
	f0, f1 := m.cofactor(f, lvl)
	g0, g1 := m.cofactor(g, lvl)
	h0, h1 := m.cofactor(h, lvl)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(lvl, lo, hi)
	m.cacheStore(opIte, f, g, h, r)
	return r
}

// cofactor returns the (lo, hi) cofactors of n with respect to level lvl.
func (m *Manager) cofactor(n Node, lvl int32) (Node, Node) {
	if m.lvl[n] == lvl {
		return Node(m.lo[n]), Node(m.hi[n])
	}
	return n, n
}

// Restrict returns f with variable v fixed to the given value.
func (m *Manager) Restrict(f Node, v int, value bool) Node {
	lvl := int32(v)
	var h Node
	if value {
		h = 1
	}
	return m.restrictRec(f, lvl, h)
}

func (m *Manager) restrictRec(f Node, lvl int32, val Node) Node {
	if m.lvl[f] > lvl {
		return f
	}
	if m.lvl[f] == lvl {
		if val == True {
			return Node(m.hi[f])
		}
		return Node(m.lo[f])
	}
	if r, ok := m.cacheLookup(opRestrict, f, Node(lvl), val); ok {
		return r
	}
	lo := m.restrictRec(Node(m.lo[f]), lvl, val)
	hi := m.restrictRec(Node(m.hi[f]), lvl, val)
	r := m.mk(m.lvl[f], lo, hi)
	m.cacheStore(opRestrict, f, Node(lvl), val, r)
	return r
}

// RestrictCube restricts f by every literal of the cube: cube must be a
// conjunction of literals. Variables appearing positively are fixed to
// true, negatively to false.
func (m *Manager) RestrictCube(f, cube Node) Node {
	for cube > True {
		lvl := m.lvl[cube]
		if Node(m.lo[cube]) == False {
			f = m.restrictRec(f, lvl, True)
			cube = Node(m.hi[cube])
		} else if Node(m.hi[cube]) == False {
			f = m.restrictRec(f, lvl, False)
			cube = Node(m.lo[cube])
		} else {
			panic("bdd: RestrictCube argument is not a cube")
		}
	}
	return f
}

// Exists existentially quantifies variable v out of f.
func (m *Manager) Exists(f Node, v int) Node {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsSet existentially quantifies every variable of vars out of f.
func (m *Manager) ExistsSet(f Node, vars []int) Node {
	set := make(map[int32]bool, len(vars))
	for _, v := range vars {
		set[int32(v)] = true
	}
	memo := make(map[Node]Node)
	var rec func(Node) Node
	rec = func(n Node) Node {
		if n <= True {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		lo := rec(Node(m.lo[n]))
		hi := rec(Node(m.hi[n]))
		var r Node
		if set[m.lvl[n]] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(m.lvl[n], lo, hi)
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Compose returns f with variable v replaced by the function g:
// f[v := g] = Ite(g, f|v=1, f|v=0). g may itself mention v.
func (m *Manager) Compose(f Node, v int, g Node) Node {
	hi := m.Restrict(f, v, true)
	lo := m.Restrict(f, v, false)
	return m.Ite(g, hi, lo)
}

// Support returns the sorted list of variables on which f depends.
func (m *Manager) Support(f Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int32]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n <= True || seen[n] {
			return
		}
		seen[n] = true
		vars[m.lvl[n]] = true
		rec(Node(m.lo[n]))
		rec(Node(m.hi[n]))
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	// insertion sort: supports are small
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Cube returns the conjunction of the given literals: vars[i] appears
// positively if values[i] is true, negatively otherwise.
func (m *Manager) Cube(vars []int, values []bool) Node {
	if len(vars) != len(values) {
		panic("bdd: Cube length mismatch")
	}
	r := True
	for i := range vars {
		if values[i] {
			r = m.And(r, m.Var(vars[i]))
		} else {
			r = m.And(r, m.NVar(vars[i]))
		}
	}
	return r
}

// NodeCount returns the number of distinct decision nodes reachable from
// f (excluding terminals) — the "BDD size" reported in experiments.
func (m *Manager) NodeCount(f Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n <= True || seen[n] {
			return
		}
		seen[n] = true
		rec(Node(m.lo[n]))
		rec(Node(m.hi[n]))
	}
	rec(f)
	return len(seen)
}

package bdd

import (
	"cmp"
	"slices"
)

// Operation codes for the shared operation cache. Every op packs its
// key into the (f, g, h) fields with a packing of its own: ops whose
// keys are pure node-handle triples (apply, Not, Ite, the quantification
// and satisfiability ops) are distinguished by op code from ops that
// pack scalars into a field — restrict stores a variable LEVEL in g,
// which may numerically collide with a node handle of another op but
// never shares an op code with one. The GC sweep relies on this
// discipline to know which fields are node handles when deciding
// whether an entry survives a collection (see sweepCaches).
const (
	opAnd int32 = iota + 1
	opOr
	opXor
	opDiff // f ∧ ¬g
	opNot
	opIte
	// opExists keys (f, cube, 0): cube is the hash-consed positive cube
	// of the quantified varset, so equal varsets share entries across
	// calls — no per-call map.
	opExists
	// opRestrictF/opRestrictT key (f, Node(level), 0). The level in g is
	// NOT a node handle; the value bit lives in the op code itself so
	// the packing of the remaining fields is disjoint from every
	// node-keyed op.
	opRestrictF
	opRestrictT
	// opAndSat/opDiffSat key (f, g, 0) and store a terminal result:
	// True iff f∧g (resp. f∧¬g) is satisfiable.
	opAndSat
	opDiffSat
)

// cacheLookup probes the 2-way set for (op, f, g, h). A hit in the LRU
// way is promoted to the MRU way, so the hotter of two colliding entries
// stays resident.
func (m *Manager) cacheLookup(op int32, f, g, h Node) (Node, bool) {
	s := m.cacheSlot(op, f, g, h) << 1
	e := &m.cache[s]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return e.res, true
	}
	e2 := &m.cache[s|1]
	if e2.op == op && e2.f == f && e2.g == g && e2.h == h {
		m.cache[s], m.cache[s|1] = m.cache[s|1], m.cache[s]
		m.stats.CacheHits++
		return m.cache[s].res, true
	}
	m.stats.CacheMiss++
	return 0, false
}

// cacheStore inserts at the MRU way, demoting the previous MRU entry to
// the LRU way (which evicts the previous LRU entry).
func (m *Manager) cacheStore(op int32, f, g, h, res Node) {
	s := m.cacheSlot(op, f, g, h) << 1
	m.cache[s|1] = m.cache[s]
	e := &m.cache[s]
	e.op, e.f, e.g, e.h, e.res = op, f, g, h, res
}

// cacheSlot maps a key to its set index.
func (m *Manager) cacheSlot(op int32, f, g, h Node) uint32 {
	x := uint32(op)*0x27d4eb2f + uint32(f)*0x9e3779b9 + uint32(g)*0x85ebca6b + uint32(h)*0xc2b2ae35
	x ^= x >> 13
	return x & m.setMask
}

// clearCache invalidates both operation caches unconditionally (legacy
// GC behaviour; the overhauled sweep uses sweepCaches instead).
func (m *Manager) clearCache() {
	for i := range m.cache {
		m.cache[i] = cacheEntry{}
	}
	for i := range m.axCache {
		m.axCache[i] = axEntry{}
	}
}

// sweepCaches drops exactly the cache entries whose operands or result
// died in the collection that produced mark, keeping the rest warm.
// Restrict entries pack a level (not a handle) into g, so only f and the
// result decide their fate — the level is skipped by construction.
func (m *Manager) sweepCaches(mark []bool) {
	retained, invalidated := uint64(0), uint64(0)
	for i := range m.cache {
		e := &m.cache[i]
		if e.op == 0 {
			continue
		}
		live := mark[e.f] && mark[e.res]
		switch e.op {
		case opRestrictF, opRestrictT:
			// g is a level, h unused.
		default:
			live = live && mark[e.g] && mark[e.h]
		}
		if live {
			retained++
		} else {
			invalidated++
			*e = cacheEntry{}
		}
	}
	for i := range m.axCache {
		e := &m.axCache[i]
		if e.f == False {
			continue
		}
		if mark[e.f] && mark[e.g] && mark[e.cube] && mark[e.res] {
			retained++
		} else {
			invalidated++
			*e = axEntry{}
		}
	}
	m.stats.CacheRetained += retained
	m.stats.CacheInvalidated += invalidated
}

// And returns f ∧ g.
func (m *Manager) And(f, g Node) Node { return m.apply(opAnd, f, g) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Node) Node { return m.apply(opOr, f, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Node) Node { return m.apply(opXor, f, g) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Node) Node { return m.apply(opDiff, f, g) }

// Imp returns f → g, i.e. ¬f ∨ g.
func (m *Manager) Imp(f, g Node) Node { return m.Or(m.Not(f), g) }

// Equiv returns f ↔ g.
func (m *Manager) Equiv(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// AndN returns the conjunction of all operands (True for none). The
// operands are folded as a balanced tree: a linear fold over k conjuncts
// drags a lopsided intermediate through k-1 apply calls, while the
// balanced tree keeps intermediates small and cache-friendly. The result
// is the same canonical node either way.
func (m *Manager) AndN(ns ...Node) Node {
	if m.legacy {
		return m.legacyFoldN(opAnd, ns, True)
	}
	return m.foldBalanced(opAnd, ns, True)
}

// OrN returns the disjunction of all operands (False for none), folded
// as a balanced tree like AndN.
func (m *Manager) OrN(ns ...Node) Node {
	if m.legacy {
		return m.legacyFoldN(opOr, ns, False)
	}
	return m.foldBalanced(opOr, ns, False)
}

func (m *Manager) foldBalanced(op int32, ns []Node, unit Node) Node {
	switch len(ns) {
	case 0:
		return unit
	case 1:
		return ns[0]
	}
	mid := len(ns) / 2
	return m.apply(op, m.foldBalanced(op, ns[:mid], unit), m.foldBalanced(op, ns[mid:], unit))
}

// apply computes a binary boolean operation with memoization.
func (m *Manager) apply(op int32, f, g Node) Node {
	m.pollInterrupt()
	// Terminal cases.
	switch op {
	case opAnd:
		if f == g {
			return f
		}
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f > g { // commutative: canonical order improves cache hits
			f, g = g, f
		}
	case opOr:
		if f == g {
			return f
		}
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f > g {
			f, g = g, f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return m.Not(g)
		}
		if g == True {
			return m.Not(f)
		}
		if f > g {
			f, g = g, f
		}
	case opDiff:
		if f == False || g == True || f == g {
			return False
		}
		if g == False {
			return f
		}
		if f == True {
			return m.Not(g)
		}
	}
	if r, ok := m.cacheLookup(op, f, g, 0); ok {
		return r
	}
	lf, lg := m.lvl[f], m.lvl[g]
	var lvl int32
	var f0, f1, g0, g1 Node
	switch {
	case lf == lg:
		lvl = lf
		f0, f1 = Node(m.lo[f]), Node(m.hi[f])
		g0, g1 = Node(m.lo[g]), Node(m.hi[g])
	case lf < lg:
		lvl = lf
		f0, f1 = Node(m.lo[f]), Node(m.hi[f])
		g0, g1 = g, g
	default:
		lvl = lg
		f0, f1 = f, f
		g0, g1 = Node(m.lo[g]), Node(m.hi[g])
	}
	lo := m.apply(op, f0, g0)
	hi := m.apply(op, f1, g1)
	r := m.mk(lvl, lo, hi)
	m.cacheStore(op, f, g, 0, r)
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Node) Node {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.cacheLookup(opNot, f, 0, 0); ok {
		return r
	}
	r := m.mk(m.lvl[f], m.Not(Node(m.lo[f])), m.Not(Node(m.hi[f])))
	m.cacheStore(opNot, f, 0, 0, r)
	return r
}

// Ite returns if-then-else(f, g, h) = (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	if r, ok := m.cacheLookup(opIte, f, g, h); ok {
		return r
	}
	lvl := m.lvl[f]
	if m.lvl[g] < lvl {
		lvl = m.lvl[g]
	}
	if m.lvl[h] < lvl {
		lvl = m.lvl[h]
	}
	f0, f1 := m.cofactor(f, lvl)
	g0, g1 := m.cofactor(g, lvl)
	h0, h1 := m.cofactor(h, lvl)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(lvl, lo, hi)
	m.cacheStore(opIte, f, g, h, r)
	return r
}

// cofactor returns the (lo, hi) cofactors of n with respect to level lvl.
func (m *Manager) cofactor(n Node, lvl int32) (Node, Node) {
	if m.lvl[n] == lvl {
		return Node(m.lo[n]), Node(m.hi[n])
	}
	return n, n
}

// Restrict returns f with variable v fixed to the given value.
func (m *Manager) Restrict(f Node, v int, value bool) Node {
	op := opRestrictF
	if value {
		op = opRestrictT
	}
	return m.restrictRec(f, m.var2level[v], op)
}

func (m *Manager) restrictRec(f Node, lvl int32, op int32) Node {
	if m.lvl[f] > lvl {
		return f
	}
	if m.lvl[f] == lvl {
		if op == opRestrictT {
			return Node(m.hi[f])
		}
		return Node(m.lo[f])
	}
	if r, ok := m.cacheLookup(op, f, Node(lvl), 0); ok {
		return r
	}
	lo := m.restrictRec(Node(m.lo[f]), lvl, op)
	hi := m.restrictRec(Node(m.hi[f]), lvl, op)
	r := m.mk(m.lvl[f], lo, hi)
	m.cacheStore(op, f, Node(lvl), 0, r)
	return r
}

// RestrictCube restricts f by every literal of the cube: cube must be a
// conjunction of literals. Variables appearing positively are fixed to
// true, negatively to false.
func (m *Manager) RestrictCube(f, cube Node) Node {
	for cube > True {
		lvl := m.lvl[cube]
		if Node(m.lo[cube]) == False {
			f = m.restrictRec(f, lvl, opRestrictT)
			cube = Node(m.hi[cube])
		} else if Node(m.hi[cube]) == False {
			f = m.restrictRec(f, lvl, opRestrictF)
			cube = Node(m.lo[cube])
		} else {
			panic("bdd: RestrictCube argument is not a cube")
		}
	}
	return f
}

// Exists existentially quantifies variable v out of f.
func (m *Manager) Exists(f Node, v int) Node {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsSet existentially quantifies every variable of vars out of f.
// The varset is hash-consed into a positive cube so the shared operation
// cache memoizes (f, varset) pairs across calls — repeated projections
// over the same variables (TopoOnly/HeaderOnly in the pipeline) hit the
// cache instead of rebuilding a per-call map.
func (m *Manager) ExistsSet(f Node, vars []int) Node {
	if m.legacy {
		return m.legacyExistsSet(f, vars)
	}
	return m.existsRec(f, m.CubeVars(vars))
}

// ExistsCube existentially quantifies every variable of the positive
// cube out of f. The cube is the canonical varset representation: build
// it once with CubeVars, keep it referenced, and every projection over
// it shares operation-cache entries.
func (m *Manager) ExistsCube(f, cube Node) Node {
	if m.legacy {
		return m.legacyExistsSet(f, m.cubeVarList(cube))
	}
	return m.existsRec(f, cube)
}

func (m *Manager) existsRec(f, cube Node) Node {
	if f <= True {
		return f
	}
	lf := m.lvl[f]
	// Quantified variables above f's root are not in f's support: drop
	// them so calls with supersets of the relevant varset share cache
	// entries.
	for cube > True && m.lvl[cube] < lf {
		cube = Node(m.hi[cube])
	}
	if cube == True {
		return f
	}
	if r, ok := m.cacheLookup(opExists, f, cube, 0); ok {
		return r
	}
	m.pollInterrupt()
	var r Node
	if m.lvl[cube] == lf {
		rest := Node(m.hi[cube])
		lo := m.existsRec(Node(m.lo[f]), rest)
		if lo == True { // ∃-abstraction saturated; skip the hi branch
			r = True
		} else {
			r = m.Or(lo, m.existsRec(Node(m.hi[f]), rest))
		}
	} else {
		lo := m.existsRec(Node(m.lo[f]), cube)
		hi := m.existsRec(Node(m.hi[f]), cube)
		r = m.mk(lf, lo, hi)
	}
	m.cacheStore(opExists, f, cube, 0, r)
	return r
}

// Compose returns f with variable v replaced by the function g:
// f[v := g] = Ite(g, f|v=1, f|v=0). g may itself mention v.
func (m *Manager) Compose(f Node, v int, g Node) Node {
	hi := m.Restrict(f, v, true)
	lo := m.Restrict(f, v, false)
	return m.Ite(g, hi, lo)
}

// AndSat reports whether f ∧ g is satisfiable without materializing the
// conjunction: the recursion terminates on the first path both operands
// keep alive. Any node other than False is satisfiable, so the terminal
// cases collapse fast and the cached result is a terminal.
func (m *Manager) AndSat(f, g Node) bool {
	if m.legacy {
		return m.And(f, g) != False
	}
	return m.andSatRec(f, g) == True
}

func (m *Manager) andSatRec(f, g Node) Node {
	if f == False || g == False {
		return False
	}
	if f == True || g == True || f == g {
		return True
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opAndSat, f, g, 0); ok {
		return r
	}
	m.pollInterrupt()
	lvl := m.lvl[f]
	if m.lvl[g] < lvl {
		lvl = m.lvl[g]
	}
	f0, f1 := m.cofactor(f, lvl)
	g0, g1 := m.cofactor(g, lvl)
	r := m.andSatRec(f0, g0)
	if r != True {
		r = m.andSatRec(f1, g1)
	}
	m.cacheStore(opAndSat, f, g, 0, r)
	return r
}

// DiffSat reports whether f ∧ ¬g is satisfiable — i.e. whether f covers
// anything outside g — without materializing the difference. It is the
// kernel primitive behind "does the property hold everywhere" checks.
func (m *Manager) DiffSat(f, g Node) bool {
	if m.legacy {
		return m.Diff(f, g) != False
	}
	return m.diffSatRec(f, g) == True
}

func (m *Manager) diffSatRec(f, g Node) Node {
	if f == False || g == True || f == g {
		return False
	}
	if g == False || f == True {
		// f ≠ False and ¬g ≠ False: both have satisfying paths, and one
		// side is unconstrained.
		return True
	}
	if r, ok := m.cacheLookup(opDiffSat, f, g, 0); ok {
		return r
	}
	m.pollInterrupt()
	lvl := m.lvl[f]
	if m.lvl[g] < lvl {
		lvl = m.lvl[g]
	}
	f0, f1 := m.cofactor(f, lvl)
	g0, g1 := m.cofactor(g, lvl)
	r := m.diffSatRec(f0, g0)
	if r != True {
		r = m.diffSatRec(f1, g1)
	}
	m.cacheStore(opDiffSat, f, g, 0, r)
	return r
}

// Support returns the sorted list of variables on which f depends.
func (m *Manager) Support(f Node) []int {
	if m.legacy {
		return m.legacySupport(f)
	}
	m.i32memo.begin(len(m.lvl))
	m.varSeen.begin(m.vars)
	out := make([]int, 0, 16)
	out = m.supportRec(f, out)
	sortInts(out)
	return out
}

func (m *Manager) supportRec(n Node, out []int) []int {
	if n <= True {
		return out
	}
	if _, seen := m.i32memo.get(n); seen {
		return out
	}
	m.i32memo.put(n, 0)
	if m.varSeen.mark(m.lvl[n]) {
		out = append(out, int(m.level2var[m.lvl[n]]))
	}
	out = m.supportRec(Node(m.lo[n]), out)
	return m.supportRec(Node(m.hi[n]), out)
}

func sortInts(a []int) {
	slices.Sort(a)
}

// Cube returns the conjunction of the given literals: vars[i] appears
// positively if values[i] is true, negatively otherwise. The cube is
// built bottom-up from the deepest level with mk — one canonical node
// per literal — instead of n And calls through the operation cache.
func (m *Manager) Cube(vars []int, values []bool) Node {
	if len(vars) != len(values) {
		panic("bdd: Cube length mismatch")
	}
	if m.legacy {
		return m.legacyCube(vars, values)
	}
	order := m.sortedVarOrder(vars)
	r := True
	prev := -1
	for i := len(order) - 1; i >= 0; i-- {
		k := order[i]
		v := vars[k]
		if v == prev {
			// Duplicate literal: identical polarity is redundant,
			// conflicting polarity empties the cube.
			if values[k] != values[order[i+1]] {
				return False
			}
			continue
		}
		prev = v
		if values[k] {
			r = m.mk(m.var2level[v], False, r)
		} else {
			r = m.mk(m.var2level[v], r, False)
		}
	}
	return r
}

// CubeVars returns the positive cube over vars — the canonical varset
// node used as ExistsCube/AndExists quantifier. Built bottom-up with mk.
func (m *Manager) CubeVars(vars []int) Node {
	order := m.sortedVarOrder(vars)
	r := True
	prev := -1
	for i := len(order) - 1; i >= 0; i-- {
		v := vars[order[i]]
		if v == prev {
			continue
		}
		prev = v
		r = m.mk(m.var2level[v], False, r)
	}
	return r
}

// sortedVarOrder returns the indices of vars sorted by ascending CURRENT
// level (cube construction is bottom-up, so the build order must follow
// the live variable order, not variable identity), leaving vars itself
// untouched (callers pass shared slices). Ties break on the original
// index so duplicate literals stay in declaration order for Cube's
// adjacent-duplicate polarity check — duplicates share a level, so they
// remain adjacent after the sort.
func (m *Manager) sortedVarOrder(vars []int) []int {
	order := make([]int, len(vars))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if c := cmp.Compare(m.var2level[vars[a]], m.var2level[vars[b]]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	return order
}

// cubeVarList expands a positive cube node back into its variable list
// (legacy-path helper).
func (m *Manager) cubeVarList(cube Node) []int {
	var vars []int
	for cube > True {
		vars = append(vars, int(m.level2var[m.lvl[cube]]))
		cube = Node(m.hi[cube])
	}
	return vars
}

// NodeCount returns the number of distinct decision nodes reachable from
// f (excluding terminals) — the "BDD size" reported in experiments.
func (m *Manager) NodeCount(f Node) int {
	if m.legacy {
		return m.legacyNodeCount(f)
	}
	m.i32memo.begin(len(m.lvl))
	return m.nodeCountRec(f)
}

func (m *Manager) nodeCountRec(n Node) int {
	if n <= True {
		return 0
	}
	if _, seen := m.i32memo.get(n); seen {
		return 0
	}
	m.i32memo.put(n, 0)
	return 1 + m.nodeCountRec(Node(m.lo[n])) + m.nodeCountRec(Node(m.hi[n]))
}

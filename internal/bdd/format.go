package bdd

import (
	"fmt"
	"strings"
)

// Format renders f as a boolean expression in disjunctive path form, using
// name to label variables (nil means "x<level>"). Intended for debugging
// and documentation; large BDDs render as a node summary instead.
func (m *Manager) Format(f Node, name func(v int) string) string {
	switch f {
	case False:
		return "false"
	case True:
		return "true"
	}
	if name == nil {
		name = func(v int) string { return fmt.Sprintf("x%d", v) }
	}
	if m.NodeCount(f) > 64 {
		return fmt.Sprintf("<bdd %d nodes>", m.NodeCount(f))
	}
	var terms []string
	m.AllSat(f, func(a map[int]bool) bool {
		vars := make([]int, 0, len(a))
		for v := range a {
			vars = append(vars, v)
		}
		sortInts(vars)
		lits := make([]string, 0, len(vars))
		for _, v := range vars {
			if a[v] {
				lits = append(lits, name(v))
			} else {
				lits = append(lits, "!"+name(v))
			}
		}
		if len(lits) == 0 {
			lits = append(lits, "true")
		}
		terms = append(terms, strings.Join(lits, "&"))
		return len(terms) <= 32
	})
	if len(terms) > 32 {
		return fmt.Sprintf("<bdd %d nodes>", m.NodeCount(f))
	}
	return strings.Join(terms, " | ")
}

// Dot renders f in Graphviz dot syntax: solid edges are then-branches,
// dashed edges are else-branches, mirroring Figure 1(c) of the paper.
func (m *Manager) Dot(f Node, name func(v int) string) string {
	if name == nil {
		name = func(v int) string { return fmt.Sprintf("x%d", v) }
	}
	var b strings.Builder
	b.WriteString("digraph bdd {\n")
	b.WriteString("  node0 [label=\"0\", shape=box];\n")
	b.WriteString("  node1 [label=\"1\", shape=box];\n")
	seen := map[Node]bool{False: true, True: true}
	var rec func(Node)
	rec = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		fmt.Fprintf(&b, "  node%d [label=%q];\n", n, name(int(m.level2var[m.lvl[n]])))
		fmt.Fprintf(&b, "  node%d -> node%d [style=dashed];\n", n, m.lo[n])
		fmt.Fprintf(&b, "  node%d -> node%d;\n", n, m.hi[n])
		rec(Node(m.lo[n]))
		rec(Node(m.hi[n]))
	}
	rec(f)
	b.WriteString("}\n")
	return b.String()
}

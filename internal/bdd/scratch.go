package bdd

// Manager-owned, generation-stamped scratch memo tables.
//
// The per-node analyses (SatCount, Probability, ShortestPathToFalse,
// MinFalseWitness, NodeCount, Support) are pure traversals: they create
// no nodes, so the node table cannot grow mid-call and a flat array
// indexed by Node is a valid memo. Instead of clearing the array between
// calls — O(nodes) per call — each slot carries the generation that
// wrote it: begin() bumps the generation, invalidating every slot in
// O(1). Slots are only zeroed on the (rare) 32-bit generation wrap.
//
// The tables belong to the Manager and grow monotonically with the node
// table, so steady-state analysis calls allocate nothing. Managers are
// single-goroutine (the parallel scheduler gives every task its own
// manager), so no locking is needed.

// memoF64 memoizes one float64 per node (SatCount, Probability).
type memoF64 struct {
	stamp []uint32
	val   []float64
	gen   uint32
}

// begin invalidates the table and ensures capacity for n nodes.
func (t *memoF64) begin(n int) {
	if len(t.stamp) < n {
		t.stamp = append(t.stamp, make([]uint32, n-len(t.stamp))...)
		t.val = append(t.val, make([]float64, n-len(t.val))...)
	}
	t.gen++
	if t.gen == 0 { // wrapped: stale stamps could alias; hard reset
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.gen = 1
	}
}

func (t *memoF64) get(n Node) (float64, bool) {
	if t.stamp[n] == t.gen {
		return t.val[n], true
	}
	return 0, false
}

func (t *memoF64) put(n Node, v float64) {
	t.stamp[n] = t.gen
	t.val[n] = v
}

// memoI32 memoizes one int32 per node (shortest-path distances,
// visited marks).
type memoI32 struct {
	stamp []uint32
	val   []int32
	gen   uint32
}

func (t *memoI32) begin(n int) {
	if len(t.stamp) < n {
		t.stamp = append(t.stamp, make([]uint32, n-len(t.stamp))...)
		t.val = append(t.val, make([]int32, n-len(t.val))...)
	}
	t.gen++
	if t.gen == 0 {
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.gen = 1
	}
}

func (t *memoI32) get(n Node) (int32, bool) {
	if t.stamp[n] == t.gen {
		return t.val[n], true
	}
	return 0, false
}

func (t *memoI32) put(n Node, v int32) {
	t.stamp[n] = t.gen
	t.val[n] = v
}

// memoWit memoizes the MinFalseWitness entry per node: the shortest
// dashed distance to False, the child on the optimal path, and whether
// the optimal step takes the dashed edge.
type memoWit struct {
	stamp []uint32
	dist  []int32
	via   []int32
	down  []bool
	gen   uint32
}

func (t *memoWit) begin(n int) {
	if len(t.stamp) < n {
		grow := n - len(t.stamp)
		t.stamp = append(t.stamp, make([]uint32, grow)...)
		t.dist = append(t.dist, make([]int32, grow)...)
		t.via = append(t.via, make([]int32, grow)...)
		t.down = append(t.down, make([]bool, grow)...)
	}
	t.gen++
	if t.gen == 0 {
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.gen = 1
	}
}

func (t *memoWit) has(n Node) bool { return t.stamp[n] == t.gen }

func (t *memoWit) put(n Node, dist, via int32, down bool) {
	t.stamp[n] = t.gen
	t.dist[n] = dist
	t.via[n] = via
	t.down[n] = down
}

// varMarks is a generation-stamped per-variable mark set (Support).
type varMarks struct {
	stamp []uint32
	gen   uint32
}

func (t *varMarks) begin(n int) {
	if len(t.stamp) < n {
		t.stamp = append(t.stamp, make([]uint32, n-len(t.stamp))...)
	}
	t.gen++
	if t.gen == 0 {
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.gen = 1
	}
}

func (t *varMarks) mark(v int32) bool { // reports first sighting
	if t.stamp[v] == t.gen {
		return false
	}
	t.stamp[v] = t.gen
	return true
}

package bdd

// Relational product: AndExists(f, g, cube) = ∃cube (f ∧ g) computed in
// one pass. This is the image step of symbolic execution — conjoin a
// transition/filter BDD with a state BDD and immediately quantify the
// intermediate variables — and doing it fused avoids materializing the
// conjunction, whose node count can dwarf both operands and the result.
// The operation has its own direct-mapped cache (axCache) keyed on the
// canonical operand pair plus the hash-consed varset cube, separate from
// the shared cache so the triple-keyed entries don't evict hot binary
// apply entries.

// AndExists returns ∃cube (f ∧ g), where cube is a positive cube over
// the quantified variables (see CubeVars). The quantification
// distributes over the disjunction introduced at each quantified level,
// with an early exit as soon as a branch saturates to True.
func (m *Manager) AndExists(f, g, cube Node) Node {
	if m.legacy {
		return m.legacyExistsSet(m.And(f, g), m.cubeVarList(cube))
	}
	return m.andExistsRec(f, g, cube)
}

// AndExistsVars is AndExists with the varset given as a variable list.
func (m *Manager) AndExistsVars(f, g Node, vars []int) Node {
	if m.legacy {
		return m.legacyExistsSet(m.And(f, g), vars)
	}
	return m.andExistsRec(f, g, m.CubeVars(vars))
}

func (m *Manager) andExistsRec(f, g, cube Node) Node {
	if f == False || g == False {
		return False
	}
	if f > g { // ∧ is commutative; canonicalize for the cache
		f, g = g, f
	}
	// Find the top decision level and drop quantified variables above it
	// (they are in neither support, so ∃ is the identity on them). This
	// also normalizes the cache key.
	top := m.lvl[f]
	if m.lvl[g] < top {
		top = m.lvl[g]
	}
	for cube > True && m.lvl[cube] < top {
		cube = Node(m.hi[cube])
	}
	if cube == True {
		return m.apply(opAnd, f, g)
	}
	if f == True { // g is the only operand left (f ≤ g, so f is the terminal)
		return m.existsRec(g, cube)
	}
	if f == g {
		return m.existsRec(f, cube)
	}
	if r, ok := m.axLookup(f, g, cube); ok {
		return r
	}
	m.pollInterrupt()
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	var r Node
	if m.lvl[cube] == top {
		rest := Node(m.hi[cube])
		lo := m.andExistsRec(f0, g0, rest)
		if lo == True { // the disjunction is already saturated
			r = True
		} else {
			r = m.Or(lo, m.andExistsRec(f1, g1, rest))
		}
	} else {
		lo := m.andExistsRec(f0, g0, cube)
		hi := m.andExistsRec(f1, g1, cube)
		r = m.mk(top, lo, hi)
	}
	m.axStore(f, g, cube, r)
	return r
}

func (m *Manager) axSlot(f, g, cube Node) uint32 {
	x := uint32(f)*0x9e3779b9 + uint32(g)*0x85ebca6b + uint32(cube)*0xc2b2ae35
	x ^= x >> 13
	return x & m.axMask
}

func (m *Manager) axLookup(f, g, cube Node) (Node, bool) {
	e := &m.axCache[m.axSlot(f, g, cube)]
	if e.f == f && e.g == g && e.cube == cube {
		m.stats.AxCacheHits++
		return e.res, true
	}
	m.stats.AxCacheMiss++
	return 0, false
}

func (m *Manager) axStore(f, g, cube, res Node) {
	e := &m.axCache[m.axSlot(f, g, cube)]
	e.f, e.g, e.cube, e.res = f, g, cube, res
}

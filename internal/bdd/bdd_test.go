package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTest(vars int) *Manager {
	return New(Config{Vars: vars})
}

func TestTerminals(t *testing.T) {
	m := newTest(4)
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("negation of terminals")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("and/or of terminals")
	}
	if !m.IsTerminal(True) || !m.IsTerminal(False) {
		t.Fatal("IsTerminal")
	}
	if m.IsTerminal(m.Var(0)) {
		t.Fatal("variable is not a terminal")
	}
}

func TestVarBasics(t *testing.T) {
	m := newTest(4)
	x := m.Var(0)
	if m.Var(0) != x {
		t.Fatal("hash consing: Var not canonical")
	}
	if m.Not(m.Not(x)) != x {
		t.Fatal("double negation")
	}
	if m.NVar(0) != m.Not(x) {
		t.Fatal("NVar vs Not(Var)")
	}
	if m.And(x, m.Not(x)) != False {
		t.Fatal("x & !x")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Fatal("x | !x")
	}
	if m.Xor(x, x) != False {
		t.Fatal("x ^ x")
	}
}

func TestOutOfRangeVarPanics(t *testing.T) {
	m := newTest(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range variable")
		}
	}()
	m.Var(2)
}

// buildRandom constructs a random boolean function over the manager's
// variables along with a reference evaluator.
func buildRandom(m *Manager, r *rand.Rand, depth int) (Node, func([]bool) bool) {
	if depth == 0 || r.Intn(4) == 0 {
		v := r.Intn(m.NumVars())
		if r.Intn(2) == 0 {
			return m.Var(v), func(a []bool) bool { return a[v] }
		}
		return m.NVar(v), func(a []bool) bool { return !a[v] }
	}
	l, lf := buildRandom(m, r, depth-1)
	rn, rf := buildRandom(m, r, depth-1)
	switch r.Intn(3) {
	case 0:
		return m.And(l, rn), func(a []bool) bool { return lf(a) && rf(a) }
	case 1:
		return m.Or(l, rn), func(a []bool) bool { return lf(a) || rf(a) }
	default:
		return m.Xor(l, rn), func(a []bool) bool { return lf(a) != rf(a) }
	}
}

func TestRandomFormulaAgainstTruthTable(t *testing.T) {
	const vars = 6
	m := newTest(vars)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n, eval := buildRandom(m, r, 4)
		for bits := 0; bits < 1<<vars; bits++ {
			a := make([]bool, vars)
			for i := range a {
				a[i] = bits>>i&1 == 1
			}
			want := eval(a)
			got := m.Eval(n, func(v int) bool { return a[v] })
			if got != want {
				t.Fatalf("trial %d bits %b: got %v want %v", trial, bits, got, want)
			}
		}
	}
}

func TestCanonicity(t *testing.T) {
	// Logically equal formulas must be the same node.
	m := newTest(5)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	l := m.And(a, m.Or(b, c))
	r2 := m.Or(m.And(a, b), m.And(a, c))
	if l != r2 {
		t.Fatal("distribution law broke canonicity")
	}
	dm1 := m.Not(m.And(a, b))
	dm2 := m.Or(m.Not(a), m.Not(b))
	if dm1 != dm2 {
		t.Fatal("De Morgan broke canonicity")
	}
}

func TestIte(t *testing.T) {
	m := newTest(6)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		f, _ := buildRandom(m, r, 3)
		g, _ := buildRandom(m, r, 3)
		h, _ := buildRandom(m, r, 3)
		want := m.Or(m.And(f, g), m.And(m.Not(f), h))
		if got := m.Ite(f, g, h); got != want {
			t.Fatalf("Ite mismatch on trial %d", trial)
		}
	}
}

func TestDiff(t *testing.T) {
	m := newTest(6)
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		f, _ := buildRandom(m, r, 3)
		g, _ := buildRandom(m, r, 3)
		if m.Diff(f, g) != m.And(f, m.Not(g)) {
			t.Fatalf("Diff mismatch on trial %d", trial)
		}
	}
}

func TestRestrict(t *testing.T) {
	m := newTest(4)
	a, b := m.Var(0), m.Var(1)
	f := m.Or(m.And(a, b), m.And(m.Not(a), m.Not(b)))
	if m.Restrict(f, 0, true) != b {
		t.Fatal("f|a=1 should be b")
	}
	if m.Restrict(f, 0, false) != m.Not(b) {
		t.Fatal("f|a=0 should be !b")
	}
	// Restricting a variable not in the support is the identity.
	if m.Restrict(f, 3, true) != f {
		t.Fatal("restrict of absent var changed function")
	}
}

func TestRestrictCube(t *testing.T) {
	m := newTest(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(m.Or(a, b), c)
	cube := m.And(a, m.Not(b))
	got := m.RestrictCube(f, cube)
	if got != c {
		t.Fatalf("RestrictCube: got %s", m.Format(got, nil))
	}
}

func TestExists(t *testing.T) {
	m := newTest(4)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	if m.Exists(f, 0) != b {
		t.Fatal("∃a.(a&b) = b")
	}
	if m.ExistsSet(f, []int{0, 1}) != True {
		t.Fatal("∃a,b.(a&b) = true")
	}
	g := m.Xor(a, b)
	if m.Exists(g, 1) != True {
		t.Fatal("∃b.(a^b) = true")
	}
}

func TestCompose(t *testing.T) {
	m := newTest(5)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(a, c)
	// a := a & b  (substitution whose expression contains the replaced var)
	got := m.Compose(f, 0, m.And(a, b))
	want := m.Or(m.And(a, b), c)
	if got != want {
		t.Fatalf("Compose: got %s want %s", m.Format(got, nil), m.Format(want, nil))
	}
}

func TestSupport(t *testing.T) {
	m := newTest(6)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(5)))
	got := m.Support(f)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("support %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support %v want %v", got, want)
		}
	}
}

func TestSatCount(t *testing.T) {
	m := newTest(4)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b), 4); got != 4 {
		t.Fatalf("SatCount(a&b, 4 vars) = %v, want 4", got)
	}
	if got := m.SatCount(True, 4); got != 16 {
		t.Fatalf("SatCount(true) = %v", got)
	}
	if got := m.SatCount(False, 4); got != 0 {
		t.Fatalf("SatCount(false) = %v", got)
	}
	if got := m.SatCount(m.Xor(a, b), 2); got != 2 {
		t.Fatalf("SatCount(a^b, 2 vars) = %v", got)
	}
}

func TestAnySat(t *testing.T) {
	m := newTest(5)
	if _, ok := m.AnySat(False); ok {
		t.Fatal("AnySat(False) should fail")
	}
	f := m.And(m.Var(0), m.NVar(3))
	a, ok := m.AnySat(f)
	if !ok {
		t.Fatal("AnySat failed on satisfiable function")
	}
	full := func(v int) bool {
		val, bound := a[v]
		return bound && val
	}
	if !m.Eval(f, full) {
		t.Fatal("AnySat returned non-satisfying assignment")
	}
}

func TestAllSatCoversFunction(t *testing.T) {
	const vars = 5
	m := newTest(vars)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		f, _ := buildRandom(m, r, 3)
		// Rebuild f from its AllSat cubes and compare.
		rebuilt := False
		m.AllSat(f, func(a map[int]bool) bool {
			cube := True
			for v, val := range a {
				if val {
					cube = m.And(cube, m.Var(v))
				} else {
					cube = m.And(cube, m.NVar(v))
				}
			}
			rebuilt = m.Or(rebuilt, cube)
			return true
		})
		if rebuilt != f {
			t.Fatalf("AllSat cubes do not reconstruct f on trial %d", trial)
		}
	}
}

func TestShortestPathToFalse(t *testing.T) {
	m := newTest(4)
	if got := m.ShortestPathToFalse(True); got != math.MaxInt32 {
		t.Fatalf("True has no path to False, got %d", got)
	}
	if got := m.ShortestPathToFalse(False); got != 0 {
		t.Fatalf("False distance should be 0, got %d", got)
	}
	// f = a ∨ b: falsified only by a=0 and b=0 → two dashed edges.
	f := m.Or(m.Var(0), m.Var(1))
	if got := m.ShortestPathToFalse(f); got != 2 {
		t.Fatalf("a|b: got %d want 2", got)
	}
	// f = a ∧ b: one failed link falsifies.
	g := m.And(m.Var(0), m.Var(1))
	if got := m.ShortestPathToFalse(g); got != 1 {
		t.Fatalf("a&b: got %d want 1", got)
	}
	// Paper's Figure 1(c): lAC ∨ (lAB ∧ lBC) needs 2 failures.
	h := m.Or(m.Var(1), m.And(m.Var(0), m.Var(2)))
	if got := m.ShortestPathToFalse(h); got != 2 {
		t.Fatalf("figure 1(c): got %d want 2", got)
	}
}

func TestShortestPathMatchesBruteForce(t *testing.T) {
	const vars = 6
	m := newTest(vars)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		f, eval := buildRandom(m, r, 4)
		want := math.MaxInt32
		for bits := 0; bits < 1<<vars; bits++ {
			a := make([]bool, vars)
			zeros := 0
			for i := range a {
				a[i] = bits>>i&1 == 1
				if !a[i] {
					zeros++
				}
			}
			if !eval(a) && zeros < want {
				want = zeros
			}
		}
		if got := m.ShortestPathToFalse(f); got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func TestMinFalseWitness(t *testing.T) {
	m := newTest(6)
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		f, _ := buildRandom(m, r, 4)
		downVars, ok := m.MinFalseWitness(f)
		if f == True {
			if ok {
				t.Fatal("True should have no witness")
			}
			continue
		}
		if !ok {
			t.Fatal("expected witness")
		}
		want := m.ShortestPathToFalse(f)
		if len(downVars) != want {
			t.Fatalf("witness has %d false vars, shortest path is %d", len(downVars), want)
		}
		down := make(map[int]bool)
		for _, v := range downVars {
			down[v] = true
		}
		if m.Eval(f, func(v int) bool { return !down[v] }) {
			t.Fatal("witness does not falsify f")
		}
	}
}

func TestProbability(t *testing.T) {
	m := newTest(3)
	p := []float64{0.9, 0.9, 0.9}
	// Paper §3.3 example 2: lAC ∨ (lAB ∧ lBC) with p(up)=0.9 → 0.981.
	lAB, lAC, lBC := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(lAC, m.And(lAB, lBC))
	got := m.Probability(f, p)
	if math.Abs(got-0.981) > 1e-12 {
		t.Fatalf("probability: got %v want 0.981", got)
	}
	if m.Probability(True, p) != 1 || m.Probability(False, p) != 0 {
		t.Fatal("terminal probabilities")
	}
}

func TestProbabilityMatchesBruteForce(t *testing.T) {
	const vars = 6
	m := newTest(vars)
	r := rand.New(rand.NewSource(17))
	p := make([]float64, vars)
	for i := range p {
		p[i] = r.Float64()
	}
	for trial := 0; trial < 50; trial++ {
		f, eval := buildRandom(m, r, 4)
		want := 0.0
		for bits := 0; bits < 1<<vars; bits++ {
			a := make([]bool, vars)
			w := 1.0
			for i := range a {
				a[i] = bits>>i&1 == 1
				if a[i] {
					w *= p[i]
				} else {
					w *= 1 - p[i]
				}
			}
			if eval(a) {
				want += w
			}
		}
		if got := m.Probability(f, p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestAtMostKFalse(t *testing.T) {
	const vars = 5
	m := newTest(vars)
	all := []int{0, 1, 2, 3, 4}
	for k := -1; k <= vars+1; k++ {
		f := m.AtMostKFalse(all, k)
		for bits := 0; bits < 1<<vars; bits++ {
			zeros := 0
			for i := 0; i < vars; i++ {
				if bits>>i&1 == 0 {
					zeros++
				}
			}
			got := m.Eval(f, func(v int) bool { return bits>>v&1 == 1 })
			want := zeros <= k
			if got != want {
				t.Fatalf("k=%d bits=%05b: got %v want %v", k, bits, got, want)
			}
		}
	}
}

func TestAtMostKFalseSubset(t *testing.T) {
	m := newTest(6)
	subset := []int{1, 3, 5}
	f := m.AtMostKFalse(subset, 1)
	// Variables outside the subset must not appear.
	sup := m.Support(f)
	for _, v := range sup {
		if v != 1 && v != 3 && v != 5 {
			t.Fatalf("unexpected var %d in support", v)
		}
	}
	// 2 of the subset false → false.
	if m.Eval(f, func(v int) bool { return v == 5 }) {
		t.Fatal("two subset vars down should violate k=1")
	}
}

func TestExactlyKFalse(t *testing.T) {
	const vars = 4
	m := newTest(vars)
	all := []int{0, 1, 2, 3}
	for k := 0; k <= vars; k++ {
		f := m.ExactlyKFalse(all, k)
		if got, want := m.SatCount(f, vars), float64(binomial(vars, k)); got != want {
			t.Fatalf("k=%d: %v assignments, want %v", k, got, want)
		}
	}
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestSplitAtLevel(t *testing.T) {
	// Vars 0,1 are "header", vars 2,3 are "links".
	m := newTest(4)
	p1, p2 := m.Var(0), m.Var(1)
	l1, l2 := m.Var(2), m.Var(3)
	f := m.Or(m.And(p1, l1), m.And(m.And(m.Not(p1), p2), m.And(l1, l2)))
	decs := m.SplitAtLevel(f, 2)
	rebuilt := False
	for _, d := range decs {
		cube := True
		for v, val := range d.Assignment {
			if v >= 2 {
				t.Fatalf("assignment leaked link variable %d", v)
			}
			if val {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		for _, v := range m.Support(d.Sub) {
			if v < 2 {
				t.Fatalf("sub-BDD contains header variable %d", v)
			}
		}
		rebuilt = m.Or(rebuilt, m.And(cube, d.Sub))
	}
	if rebuilt != f {
		t.Fatal("decomposition does not reconstruct f")
	}
	groups := m.GroupBySub(decs)
	if len(groups) != 2 {
		t.Fatalf("expected 2 distinct topology BDDs, got %d", len(groups))
	}
	if pkts, ok := groups[l1]; !ok || pkts != p1 {
		t.Fatalf("expected packet BDD p1 for topo l1")
	}
}

func TestSplitAtLevelRandom(t *testing.T) {
	const vars = 6
	m := newTest(vars)
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		f, _ := buildRandom(m, r, 4)
		split := r.Intn(vars + 1)
		rebuilt := False
		for sub, upper := range m.GroupBySub(m.SplitAtLevel(f, split)) {
			rebuilt = m.Or(rebuilt, m.And(upper, sub))
		}
		if rebuilt != f {
			t.Fatalf("trial %d split %d: reconstruction failed", trial, split)
		}
	}
}

func TestGC(t *testing.T) {
	m := New(Config{Vars: 16, InitialNodes: 64})
	kept := m.Ref(m.And(m.Var(0), m.Var(1)))
	// Create garbage.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		buildRandom(m, r, 5)
	}
	before := m.Size()
	freed := m.GC()
	if freed == 0 {
		t.Fatal("expected some garbage to be collected")
	}
	if m.Size() >= before {
		t.Fatal("size did not shrink")
	}
	// The kept node must survive and still be correct.
	if !m.Eval(kept, func(v int) bool { return true }) {
		t.Fatal("kept node corrupted")
	}
	if m.Eval(kept, func(v int) bool { return v != 0 }) {
		t.Fatal("kept node semantics changed")
	}
	// Manager must still work after GC: canonical nodes are rebuilt equal.
	again := m.And(m.Var(0), m.Var(1))
	if again != kept {
		t.Fatal("hash consing broken after GC")
	}
}

func TestGCKeepsDescendants(t *testing.T) {
	m := New(Config{Vars: 8, InitialNodes: 64})
	f := m.Ref(m.AndN(m.Var(0), m.Var(1), m.Var(2), m.Var(3)))
	m.GC()
	// Descendants of f were not externally referenced but must survive.
	if m.ShortestPathToFalse(f) != 1 {
		t.Fatal("descendant structure corrupted by GC")
	}
	m.Deref(f)
	freed := m.GC()
	if freed == 0 {
		t.Fatal("deref'd chain should be collected")
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(Config{Vars: 32, NodeLimit: 64, DisableGC: true})
	err := m.protect(func() {
		f := True
		for i := 0; i < 32; i++ {
			f = m.Xor(f, m.Var(i))
		}
		// Force distinct structures until the limit trips.
		g := False
		for i := 0; i < 31; i++ {
			g = m.Or(g, m.And(m.Var(i), m.Var(i+1)))
		}
		_ = g
	})
	if err != ErrNodeLimit {
		t.Fatalf("expected ErrNodeLimit, got %v", err)
	}
}

func TestNodeCount(t *testing.T) {
	m := newTest(4)
	if m.NodeCount(True) != 0 || m.NodeCount(False) != 0 {
		t.Fatal("terminals have zero decision nodes")
	}
	if m.NodeCount(m.Var(0)) != 1 {
		t.Fatal("single variable has one node")
	}
}

// Property-based tests with testing/quick.

type formula struct {
	ops   []byte // 0=and 1=or 2=xor, applied left to right over literals
	lits  []int8 // variable index, negative means negated (1-based)
	seed  int64
	depth uint8
}

func TestQuickDeMorgan(t *testing.T) {
	m := newTest(8)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := buildRandom(m, r, 4)
		b, _ := buildRandom(m, r, 4)
		return m.Not(m.And(a, b)) == m.Or(m.Not(a), m.Not(b)) &&
			m.Not(m.Or(a, b)) == m.And(m.Not(a), m.Not(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAbsorption(t *testing.T) {
	m := newTest(8)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := buildRandom(m, r, 4)
		b, _ := buildRandom(m, r, 4)
		return m.And(a, m.Or(a, b)) == a && m.Or(a, m.And(a, b)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXorSelfInverse(t *testing.T) {
	m := newTest(8)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := buildRandom(m, r, 4)
		b, _ := buildRandom(m, r, 4)
		return m.Xor(m.Xor(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShannonExpansion(t *testing.T) {
	m := newTest(8)
	f := func(seed int64, vRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := buildRandom(m, r, 4)
		v := int(vRaw) % m.NumVars()
		return m.Ite(m.Var(v), m.Restrict(a, v, true), m.Restrict(a, v, false)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSatCountComplement(t *testing.T) {
	m := newTest(8)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := buildRandom(m, r, 4)
		n := m.NumVars()
		return m.SatCount(a, n)+m.SatCount(m.Not(a), n) == math.Pow(2, float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProbabilityComplement(t *testing.T) {
	m := newTest(8)
	p := make([]float64, 8)
	for i := range p {
		p[i] = 0.1 * float64(i+1)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := buildRandom(m, r, 4)
		return math.Abs(m.Probability(a, p)+m.Probability(m.Not(a), p)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatSmall(t *testing.T) {
	m := newTest(3)
	if m.Format(True, nil) != "true" || m.Format(False, nil) != "false" {
		t.Fatal("terminal formatting")
	}
	got := m.Format(m.Var(1), nil)
	if got != "x1" {
		t.Fatalf("Format(x1) = %q", got)
	}
}

func TestDot(t *testing.T) {
	m := newTest(3)
	s := m.Dot(m.Or(m.Var(0), m.Var(1)), nil)
	if len(s) == 0 || s[:7] != "digraph" {
		t.Fatalf("dot output malformed: %q", s)
	}
}

func BenchmarkAnd(b *testing.B) {
	m := New(Config{Vars: 64})
	r := rand.New(rand.NewSource(1))
	fs := make([]Node, 64)
	for i := range fs {
		fs[i], _ = buildRandom(m, r, 6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.And(fs[i%64], fs[(i+7)%64])
	}
}

func BenchmarkAtMostKFalse(b *testing.B) {
	m := New(Config{Vars: 256})
	vars := make([]int, 256)
	for i := range vars {
		vars[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AtMostKFalse(vars, 3)
	}
}

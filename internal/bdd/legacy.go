package bdd

import "math"

// Legacy kernel paths, selected by Config.LegacyKernel: the pre-overhaul
// per-call map memos, linear N-ary folds, and map-based quantification.
// They compute exactly the same functions as the overhauled paths (BDDs
// are canonical, and the analyses recurse in the same child order), so a
// run may flip the flag and compare wall-clock with identical results —
// which is what `srebench -exp bddkernel` does. The legacy GC also wipes
// the operation caches wholesale (see GC).

func (m *Manager) legacyFoldN(op int32, ns []Node, unit Node) Node {
	r := unit
	for _, n := range ns {
		r = m.apply(op, r, n)
	}
	return r
}

func (m *Manager) legacyCube(vars []int, values []bool) Node {
	r := True
	for i := range vars {
		if values[i] {
			r = m.And(r, m.Var(vars[i]))
		} else {
			r = m.And(r, m.NVar(vars[i]))
		}
	}
	return r
}

func (m *Manager) legacyExistsSet(f Node, vars []int) Node {
	set := make(map[int32]bool, len(vars))
	for _, v := range vars {
		set[m.var2level[v]] = true
	}
	memo := make(map[Node]Node)
	var rec func(Node) Node
	rec = func(n Node) Node {
		if n <= True {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		lo := rec(Node(m.lo[n]))
		hi := rec(Node(m.hi[n]))
		var r Node
		if set[m.lvl[n]] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(m.lvl[n], lo, hi)
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

func (m *Manager) legacySupport(f Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int32]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n <= True || seen[n] {
			return
		}
		seen[n] = true
		vars[m.lvl[n]] = true
		rec(Node(m.lo[n]))
		rec(Node(m.hi[n]))
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(m.level2var[v]))
	}
	sortInts(out)
	return out
}

func (m *Manager) legacyNodeCount(f Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n <= True || seen[n] {
			return
		}
		seen[n] = true
		rec(Node(m.lo[n]))
		rec(Node(m.hi[n]))
	}
	rec(f)
	return len(seen)
}

// legacyShortestPath serves both ShortestPathToFalse (target False, the
// seed implementation) and ShortestPathToTrue (via the complement, as
// pre-overhaul call sites did with Not(f)).
func (m *Manager) legacyShortestPath(f, target Node) int {
	if target == True {
		f = m.Not(f)
	}
	memo := make(map[Node]int)
	var rec func(Node) int
	rec = func(n Node) int {
		switch n {
		case False:
			return 0
		case True:
			return math.MaxInt32
		}
		if d, ok := memo[n]; ok {
			return d
		}
		d := rec(Node(m.hi[n])) // solid edge: cost 0
		if dl := rec(Node(m.lo[n])); dl != math.MaxInt32 && dl+1 < d {
			d = dl + 1
		}
		memo[n] = d
		return d
	}
	return rec(f)
}

func (m *Manager) legacyMinFalseWitness(f Node) ([]int, bool) {
	if f == True {
		return nil, false
	}
	type entry struct {
		dist int
		via  Node
		down bool
	}
	memo := make(map[Node]entry)
	var rec func(Node) int
	rec = func(n Node) int {
		switch n {
		case False:
			return 0
		case True:
			return math.MaxInt32
		}
		if e, ok := memo[n]; ok {
			return e.dist
		}
		hiN, loN := Node(m.hi[n]), Node(m.lo[n])
		dh, dl := rec(hiN), rec(loN)
		e := entry{dist: dh, via: hiN}
		if dl != math.MaxInt32 && dl+1 < dh {
			e = entry{dist: dl + 1, via: loN, down: true}
		}
		memo[n] = e
		return e.dist
	}
	rec(f)
	var downVars []int
	for n := f; n > True; {
		e := memo[n]
		if e.down {
			downVars = append(downVars, int(m.level2var[m.lvl[n]]))
		}
		n = e.via
	}
	return downVars, true
}

func (m *Manager) legacyProbability(f Node, pTrue []float64) float64 {
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(n Node) float64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if w, ok := memo[n]; ok {
			return w
		}
		p := pTrue[m.level2var[m.lvl[n]]]
		w := p*rec(Node(m.hi[n])) + (1-p)*rec(Node(m.lo[n]))
		memo[n] = w
		return w
	}
	return rec(f)
}

func (m *Manager) legacySatCount(f Node, nvars int) float64 {
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(n Node) float64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if w, ok := memo[n]; ok {
			return w
		}
		w := 0.5*rec(Node(m.hi[n])) + 0.5*rec(Node(m.lo[n]))
		memo[n] = w
		return w
	}
	return rec(f) * math.Pow(2, float64(nvars))
}

package bdd

import (
	"fmt"
	"time"

	"sre/internal/obs"
)

// Garbage collection. The manager reference-counts external roots
// (Ref/Deref); GC marks everything reachable from a referenced node and
// returns all other slots to the free list. Node handles of collected
// nodes become invalid; handles of surviving nodes are stable (no
// compaction), matching the behaviour of classic BDD packages.
//
// GC must only run at safe points: no BDD operation may be in flight,
// because operation intermediates live on the Go stack and are invisible
// to the mark phase. The engines therefore call MaybeGC between top-level
// steps, with every persistent BDD (topology conditions, predicates,
// PFECs) protected by Ref.

// GC runs a mark-and-sweep collection and reports how many nodes were
// freed. Operation-cache entries whose operands and result all survive
// are retained (warm restarts after GC); entries referencing a dead node
// are invalidated. The legacy kernel wipes the caches wholesale.
func (m *Manager) GC() int {
	var gcT0 time.Time
	recording := m.tel.Recording()
	if recording {
		gcT0 = time.Now()
	}
	mark := make([]bool, len(m.lvl))
	mark[0], mark[1] = true, true
	// Iterative DFS to avoid deep recursion on big diagrams.
	stack := make([]int32, 0, 1024)
	for i := int32(2); i < int32(len(m.lvl)); i++ {
		if m.ref[i] > 0 {
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mark[n] {
			continue
		}
		mark[n] = true
		if lo := m.lo[n]; !mark[lo] {
			stack = append(stack, lo)
		}
		if hi := m.hi[n]; !mark[hi] {
			stack = append(stack, hi)
		}
	}
	// Sweep: rebuild the unique table and the free list.
	for i := range m.hash {
		m.hash[i] = -1
	}
	m.freeList = -1
	m.freeCnt = 0
	freed := 0
	for i := int32(len(m.lvl)) - 1; i >= 2; i-- {
		if mark[i] {
			if m.ref[i] < 0 {
				m.ref[i] = 0 // resurrect bookkeeping consistency
				m.nodes++    // the slot leaves the free list and counts as allocated again
			}
			b := m.hashNode(m.lvl[i], m.lo[i], m.hi[i])
			m.next[i] = m.hash[b]
			m.hash[b] = i
			continue
		}
		if m.ref[i] < 0 {
			// Already free.
			m.next[i] = m.freeList
			m.freeList = i
			m.freeCnt++
			continue
		}
		m.ref[i] = -1
		m.next[i] = m.freeList
		m.freeList = i
		m.freeCnt++
		m.nodes--
		freed++
	}
	if m.legacy {
		m.clearCache()
	} else {
		m.sweepCaches(mark)
	}
	m.stats.HitsAtLastGC = m.stats.CacheHits
	m.stats.MissAtLastGC = m.stats.CacheMiss
	m.stats.GCRuns++
	m.telGCRuns.Inc()
	m.telGCFreed.Add(int64(freed))
	m.SampleTelemetry()
	if m.tel.Active() {
		m.tel.Emit(obs.Event{Stage: "bdd",
			Detail: fmt.Sprintf("gc #%d freed %s nodes, live %s (peak %s)",
				m.stats.GCRuns, obs.HumanCount(int64(freed)),
				obs.HumanCount(int64(m.nodes)), obs.HumanCount(int64(m.stats.PeakNodes)))})
	}
	if recording {
		m.tel.Record(gcT0, obs.TraceEvent{Stage: "bdd.gc",
			Wall: time.Since(gcT0).Nanoseconds(),
			Count: int64(freed), Nodes: -int64(freed), Outcome: "ok"})
	}
	return freed
}

// MaybeGC runs a collection if the allocated node count exceeds the given
// threshold (or three quarters of the node limit if threshold is zero).
// It returns the number of freed nodes, zero if no collection ran.
//
// When dynamic reordering is armed (Config.Reorder.Threshold > 0) and
// the node count stands at or above the reorder trigger, MaybeGC
// collects regardless of the GC threshold and follows with a sifting
// pass if live nodes alone still cross the trigger — MaybeGC call sites
// are exactly the safe points where reordering is legal.
func (m *Manager) MaybeGC(threshold int) int {
	if !m.autoGC {
		return 0
	}
	if m.reorderAt > 0 && m.nodes >= m.reorderAt {
		freed := m.GC()
		m.maybeReorder()
		return freed
	}
	if threshold == 0 {
		threshold = m.limit / 4 * 3
	}
	if m.nodes < threshold {
		return 0
	}
	return m.GC()
}

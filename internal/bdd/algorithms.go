package bdd

import (
	"cmp"
	"math"
	"slices"
)

// Graph algorithms over BDDs. These implement the paper's §3.3 and §6
// reductions: failure tolerance is a shortest dashed-edge path to the
// False terminal (Theorem 1), and the probability of a property is a
// weighted sum over all paths to the True terminal (Theorem 2).

// ShortestPathToFalse returns the minimum number of dashed (low) edges on
// any root-to-False path of f. Variables skipped between levels cost
// nothing (they may keep their "up"/true assignment). If f has no path to
// False (f == True), it returns math.MaxInt32.
//
// With link variables meaning "link up", this is the minimum number of
// simultaneously failed links that falsifies f; per Theorem 1 the link
// failure tolerance of a property with topology BDD f is this value
// minus one.
func (m *Manager) ShortestPathToFalse(f Node) int {
	if m.legacy {
		return m.legacyShortestPath(f, False)
	}
	m.i32memo.begin(len(m.lvl))
	return int(m.shortestPathRec(f, False))
}

// ShortestPathToTrue returns the minimum number of dashed (low) edges on
// any root-to-True path of f, or math.MaxInt32 when f == False. It
// equals ShortestPathToFalse(Not(f)) without materializing the
// complement BDD: with link variables meaning "link up", it is the
// fewest failed links in any satisfying scenario of f.
func (m *Manager) ShortestPathToTrue(f Node) int {
	if m.legacy {
		return m.legacyShortestPath(f, True)
	}
	m.i32memo.begin(len(m.lvl))
	return int(m.shortestPathRec(f, True))
}

// shortestPathRec computes the min dashed-edge distance from n to the
// target terminal; the caller owns the current i32memo generation.
func (m *Manager) shortestPathRec(n, target Node) int32 {
	if n <= True {
		if n == target {
			return 0
		}
		return math.MaxInt32
	}
	if d, ok := m.i32memo.get(n); ok {
		return d
	}
	d := m.shortestPathRec(Node(m.hi[n]), target) // solid edge: cost 0
	if dl := m.shortestPathRec(Node(m.lo[n]), target); dl != math.MaxInt32 && dl+1 < d {
		d = dl + 1
	}
	m.i32memo.put(n, d)
	return d
}

// MinFalseWitness returns an assignment falsifying f with the minimum
// number of false variables, as the list of variables assigned false
// (all other variables are true). The second result is false when f is
// the True terminal (no falsifying assignment exists).
func (m *Manager) MinFalseWitness(f Node) ([]int, bool) {
	if m.legacy {
		return m.legacyMinFalseWitness(f)
	}
	if f == True {
		return nil, false
	}
	m.witMemo.begin(len(m.lvl))
	m.minWitnessRec(f)
	var downVars []int
	for n := f; n > True; {
		if m.witMemo.down[n] {
			downVars = append(downVars, int(m.level2var[m.lvl[n]]))
		}
		n = Node(m.witMemo.via[n])
	}
	return downVars, true
}

func (m *Manager) minWitnessRec(n Node) int32 {
	switch n {
	case False:
		return 0
	case True:
		return math.MaxInt32
	}
	if m.witMemo.has(n) {
		return m.witMemo.dist[n]
	}
	hiN, loN := Node(m.hi[n]), Node(m.lo[n])
	dh, dl := m.minWitnessRec(hiN), m.minWitnessRec(loN)
	dist, via, down := dh, hiN, false
	if dl != math.MaxInt32 && dl+1 < dh {
		dist, via, down = dl+1, loN, true
	}
	m.witMemo.put(n, dist, int32(via), down)
	return dist
}

// Probability returns the probability that f evaluates to true when each
// variable v is independently true with probability pTrue[v]. Terminals
// contribute 1 (True) and 0 (False); a decision node's weight is the
// probability-weighted sum of its children; skipped variables need no
// correction because their two branch probabilities sum to one.
func (m *Manager) Probability(f Node, pTrue []float64) float64 {
	if len(pTrue) < m.vars {
		panic("bdd: Probability needs a probability per variable")
	}
	if m.legacy {
		return m.legacyProbability(f, pTrue)
	}
	m.f64memo.begin(len(m.lvl))
	m.probP = pTrue
	w := m.probabilityRec(f)
	m.probP = nil
	return w
}

func (m *Manager) probabilityRec(n Node) float64 {
	switch n {
	case False:
		return 0
	case True:
		return 1
	}
	if w, ok := m.f64memo.get(n); ok {
		return w
	}
	p := m.probP[m.level2var[m.lvl[n]]]
	w := p*m.probabilityRec(Node(m.hi[n])) + (1-p)*m.probabilityRec(Node(m.lo[n]))
	m.f64memo.put(n, w)
	return w
}

// SatCount returns the number of satisfying assignments of f over the
// variables [0, nvars). It is exact up to float64 precision.
func (m *Manager) SatCount(f Node, nvars int) float64 {
	if m.legacy {
		return m.legacySatCount(f, nvars)
	}
	m.f64memo.begin(len(m.lvl))
	return m.satCountRec(f) * math.Pow(2, float64(nvars))
}

// satCountRec returns the satisfying fraction of n; the caller owns the
// current f64memo generation.
func (m *Manager) satCountRec(n Node) float64 {
	switch n {
	case False:
		return 0
	case True:
		return 1
	}
	if w, ok := m.f64memo.get(n); ok {
		return w
	}
	w := 0.5*m.satCountRec(Node(m.hi[n])) + 0.5*m.satCountRec(Node(m.lo[n]))
	m.f64memo.put(n, w)
	return w
}

// AnySat returns one satisfying assignment of f as a map from variable to
// value; variables absent from the map are unconstrained. The second
// result is false when f is unsatisfiable.
func (m *Manager) AnySat(f Node) (map[int]bool, bool) {
	if f == False {
		return nil, false
	}
	out := make(map[int]bool)
	for f > True {
		v := int(m.level2var[m.lvl[f]])
		if Node(m.hi[f]) != False {
			out[v] = true
			f = Node(m.hi[f])
		} else {
			out[v] = false
			f = Node(m.lo[f])
		}
	}
	return out, true
}

// AllSat invokes visit for every path from f's root to the True terminal.
// The assignment maps variables on the path to their values; variables
// not present are unconstrained ("don't care"). Iteration stops early if
// visit returns false.
func (m *Manager) AllSat(f Node, visit func(assignment map[int]bool) bool) {
	assign := make(map[int]bool)
	var rec func(Node) bool
	rec = func(n Node) bool {
		switch n {
		case False:
			return true
		case True:
			return visit(assign)
		}
		v := int(m.level2var[m.lvl[n]])
		assign[v] = false
		if !rec(Node(m.lo[n])) {
			delete(assign, v)
			return false
		}
		assign[v] = true
		if !rec(Node(m.hi[n])) {
			delete(assign, v)
			return false
		}
		delete(assign, v)
		return true
	}
	rec(f)
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f Node, assignment func(v int) bool) bool {
	for f > True {
		if assignment(int(m.level2var[m.lvl[f]])) {
			f = Node(m.hi[f])
		} else {
			f = Node(m.lo[f])
		}
	}
	return f == True
}

// AtMostKFalse returns the BDD that is true iff at most k of the given
// variables are false (the paper's filtering BDD lf^k of §7.1, encoding
// "at most k link failures"). Variables must be distinct; order does not
// matter. The diagram has O(len(vars)·k) nodes.
func (m *Manager) AtMostKFalse(vars []int, k int) Node {
	if k < 0 {
		return False
	}
	if k >= len(vars) {
		return True
	}
	// Sort by CURRENT level: the rows build bottom-up, so construction
	// must follow the live variable order.
	sorted := append([]int(nil), vars...)
	slices.SortFunc(sorted, func(a, b int) int {
		return cmp.Compare(m.var2level[a], m.var2level[b])
	})
	// Build bottom-up over levels, for each budget 0..k.
	// f(i, j) = true iff among vars[i:], at most j are false.
	rows := make([]Node, k+1) // rows[j] = f(i, j), starts at i = len(vars)
	for j := range rows {
		rows[j] = True
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		next := make([]Node, k+1)
		for j := 0; j <= k; j++ {
			lo := False
			if j > 0 {
				lo = rows[j-1]
			}
			next[j] = m.mk(m.var2level[sorted[i]], lo, rows[j])
		}
		rows = next
	}
	return rows[k]
}

// ExactlyKFalse returns the BDD that is true iff exactly k of the given
// variables are false.
func (m *Manager) ExactlyKFalse(vars []int, k int) Node {
	if k < 0 || k > len(vars) {
		return False
	}
	if k == 0 {
		return m.AtMostKFalse(vars, 0)
	}
	return m.Diff(m.AtMostKFalse(vars, k), m.AtMostKFalse(vars, k-1))
}

// Decomposition is one (packet cube, topology sub-BDD) pair produced by
// SplitAtLevel: Assignment fixes the variables above the split level on
// one root-to-subgraph path, and Sub is the BDD hanging below.
type Decomposition struct {
	// Assignment of the upper variables along this path (variables not
	// present are unconstrained).
	Assignment map[int]bool
	// Sub is the sub-BDD over variables at or below the split level.
	Sub Node
}

// SplitAtLevel decomposes f into assignments of the variables with level
// < split and the distinct sub-BDDs they lead to. It implements the
// Extract function of Algorithm 2: with header variables ordered above
// link variables, splitting a property BDD at the first link level yields
// (packet, topology-BDD) pairs whose disjunction of (cube ∧ sub) equals f.
// Paths reaching the False terminal above the split are omitted; a path
// reaching True is reported with Sub == True.
//
// Cubes leading to the same sub-BDD are merged by the caller if desired
// (see GroupBySub).
func (m *Manager) SplitAtLevel(f Node, split int) []Decomposition {
	var out []Decomposition
	assign := make(map[int]bool)
	var rec func(Node)
	rec = func(n Node) {
		if n == False {
			return
		}
		if n == True || int(m.lvl[n]) >= split {
			cp := make(map[int]bool, len(assign))
			for k, v := range assign {
				cp[k] = v
			}
			out = append(out, Decomposition{Assignment: cp, Sub: n})
			return
		}
		v := int(m.level2var[m.lvl[n]])
		assign[v] = false
		rec(Node(m.lo[n]))
		assign[v] = true
		rec(Node(m.hi[n]))
		delete(assign, v)
	}
	rec(f)
	return out
}

// GroupBySub merges decompositions that share the same sub-BDD, OR-ing
// their upper cubes into a single BDD per sub. The result maps each
// distinct sub-BDD to the set of upper assignments (as a BDD) leading to
// it. This turns SplitAtLevel output into the paper's (pkt_i, topo_i)
// tuples where pkt_i is a full packet-set BDD.
func (m *Manager) GroupBySub(decs []Decomposition) map[Node]Node {
	groups := make(map[Node]Node)
	for _, d := range decs {
		cube := True
		for v, val := range d.Assignment {
			if val {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		if cur, ok := groups[d.Sub]; ok {
			groups[d.Sub] = m.Or(cur, cube)
		} else {
			groups[d.Sub] = cube
		}
	}
	return groups
}

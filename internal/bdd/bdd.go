// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// in the style of Bryant's classic algorithm, with a hash-consed unique
// table, a direct-mapped operation cache, reference-counted garbage
// collection, and the graph algorithms that Symbolic Router Execution
// performs directly on BDDs: shortest dashed-edge paths (failure
// tolerance), weighted path sums (failure probabilities), cardinality
// constraints ("at most k links down"), and packet/topology decomposition.
//
// The package replaces the JDD library used by the paper's Java
// implementation. Like JDD, the manager enforces a configurable node-table
// limit; exceeding it is reported as ErrNodeLimit, which the evaluation
// harness surfaces as the "BDD limit" entries of Table 2 and Figure 11.
package bdd

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sre/internal/obs"
)

// Node is a handle to a BDD node owned by a Manager. The terminals are
// False (0) and True (1). Node handles remain valid until the node becomes
// unreferenced and a garbage collection runs.
type Node int32

// Terminal nodes. Every Manager uses the same two handles.
const (
	False Node = 0
	True  Node = 1
)

// terminalLevel is the level assigned to the two terminal nodes; it is
// larger than any variable level.
const terminalLevel = math.MaxInt32

// ErrNodeLimit is returned (via panic/recover inside Manager calls that
// allocate) when the node table would exceed the configured limit. It
// emulates the node-table cap of the JDD library discussed in §8.5 of the
// paper.
var ErrNodeLimit = errors.New("bdd: node table limit exceeded")

// Config controls Manager construction.
type Config struct {
	// Vars is the number of boolean variables. Variable i has level i:
	// lower levels are nearer the root.
	Vars int
	// NodeLimit caps the number of allocated nodes (live + garbage).
	// Zero means DefaultNodeLimit.
	NodeLimit int
	// CacheSize is the number of entries of the operation cache
	// (rounded up to a power of two). Zero means DefaultCacheSize.
	CacheSize int
	// InitialNodes sizes the initial node table. Zero means a small
	// default; the table grows on demand up to NodeLimit.
	InitialNodes int
	// DisableGC turns off automatic garbage collection. Explicit calls
	// to GC still work.
	DisableGC bool
	// LegacyKernel selects the pre-overhaul kernel paths: map-memoized
	// analyses, linear AndN/OrN folds, map-based ExistsSet, and a full
	// operation-cache wipe at every GC. It exists as a kill switch and
	// as the baseline of the `srebench -exp bddkernel` experiment;
	// results are identical either way, only throughput differs.
	LegacyKernel bool
	// Telemetry, when non-nil, receives manager counters (GC runs and
	// freed nodes, node-limit hits, cache hit/miss deltas) and
	// occupancy gauges, sampled at every collection and at explicit
	// SampleTelemetry calls. Counters accumulate across managers
	// sharing one registry (the miner creates one manager per stratum).
	Telemetry *obs.Telemetry
	// Interrupt, when non-nil, is polled every few thousand node
	// allocations and apply steps; a non-nil return aborts the
	// in-flight operation by unwinding to the nearest public entry
	// point, which reports the error (wrapping it like ErrNodeLimit).
	// This is how cancellation and deadlines reach the innermost loops
	// of symbolic execution without a per-operation time syscall.
	Interrupt func() error
	// Reorder configures dynamic variable reordering (Rudell sifting),
	// triggered from the GC path when live nodes cross
	// Reorder.Threshold. The zero value disables reordering; explicit
	// Manager.Reorder calls work either way. See reorder.go.
	Reorder ReorderConfig
}

// Default sizing constants.
const (
	DefaultNodeLimit = 64 << 20 // 64M nodes ≈ 1.3 GB of tables
	DefaultCacheSize = 1 << 18
	defaultInitial   = 1 << 12
)

// Manager owns a collection of shared BDD nodes over a fixed set of
// ordered boolean variables.
type Manager struct {
	// Node storage, indexed by Node. Entry i is a decision node with
	// variable level lvl[i], else-child lo[i] ("dashed" edge, variable
	// false) and then-child hi[i] ("solid" edge, variable true).
	lvl  []int32
	lo   []int32
	hi   []int32
	next []int32 // unique-table hash chain
	ref  []int32 // external reference count; -1 marks a free slot

	hash     []int32 // unique-table bucket heads (power-of-two length)
	freeList int32   // head of the free-slot chain, -1 if empty
	freeCnt  int     // number of free slots
	nodes    int     // allocated slots (live + garbage, excluding free)

	vars      int
	limit     int
	autoGC    bool
	gcPending bool // set when allocation pressure suggests a GC
	legacy    bool // Config.LegacyKernel

	// Dynamic variable order: lvl[] stores LEVELS (position in the
	// order, lower = nearer the root) while the public API speaks in
	// VARIABLES (stable identities). var2level/level2var translate at
	// the boundary; both start as the identity and only sifting mutates
	// them, so the hot mk/apply loops never pay for the indirection.
	var2level []int32
	level2var []int32
	// reorderAt is the live-node trigger for the next dynamic reorder
	// (0 = reordering disabled); it rises after each pass so a growing
	// diagram is not re-sifted on every collection.
	reorderAt  int
	reorderCfg ReorderConfig
	// bands are level boundaries sifting never crosses, so structural
	// contracts like the header/link split survive reordering (see
	// SetReorderBands).
	bands []int32

	// Shared operation cache: 2-way set-associative, 2*(setMask+1)
	// entries. Set s occupies entries 2s (MRU way) and 2s+1 (LRU way).
	// Entries survive GC; the sweep invalidates only entries whose
	// operands or result died (see sweepCaches).
	cache   []cacheEntry
	setMask uint32
	// Dedicated relational-product cache for AndExists (direct-mapped;
	// the triple key would crowd the shared cache's hot binary entries).
	axCache []axEntry
	axMask  uint32
	stats   Stats

	// Generation-stamped scratch memo tables for the per-node analyses
	// (allocation-free after warmup; see scratch.go).
	f64memo memoF64
	i32memo memoI32
	witMemo memoWit
	varSeen varMarks
	probP   []float64 // Probability's per-call vector, borrowed during recursion

	// Cooperative interruption: interrupt is Config.Interrupt, intrN
	// counts operations since the last poll (see pollInterrupt).
	interrupt func() error
	intrN     uint32

	// Telemetry handles, all nil when telemetry is disabled (every
	// obs method is a no-op on a nil handle, so call sites stay
	// unconditional on cold paths).
	tel          *obs.Telemetry
	telGCRuns    *obs.Counter
	telGCFreed   *obs.Counter
	telLimitHits *obs.Counter
	telCacheHit  *obs.Counter
	telCacheMiss *obs.Counter
	telAxHit     *obs.Counter
	telAxMiss    *obs.Counter
	telRetained  *obs.Counter
	telInvalid   *obs.Counter
	telReorders  *obs.Counter
	telSifts     *obs.Counter
	telSwaps     *obs.Counter
	telReorderNs *obs.Counter
	telLive      *obs.Gauge
	telPeak      *obs.Gauge
	telFree      *obs.Gauge
	telHitPreGC  *obs.Gauge
	telHitPostGC *obs.Gauge
	telOccupancy *obs.Gauge
	// Last sampled cumulative values, so counter deltas stay monotone.
	sampledHits, sampledMiss     uint64
	sampledAxHits, sampledAxMiss uint64
	sampledRet, sampledInv       uint64
}

type cacheEntry struct {
	op      int32
	f, g, h Node
	res     Node
}

// axEntry is one AndExists cache entry: the canonical (f ≤ g) operand
// pair, the quantified varset as a hash-consed cube node, and the
// result. Stored operands are always decision nodes (terminal cases
// never reach the cache), so the zero entry (f == False) matches no
// lookup and needs no validity bit.
type axEntry struct {
	f, g, cube Node
	res        Node
}

// Stats reports manager counters, used by the scalability experiments
// (Figure 11 reports peak node counts as a memory proxy).
type Stats struct {
	// LiveNodes is the number of allocated node slots minus the free
	// list: live nodes plus garbage not yet collected. GC reduces it;
	// it never exceeds PeakNodes.
	LiveNodes int
	// FreeNodes is the current length of the free list (collected
	// slots awaiting reuse).
	FreeNodes  int
	PeakNodes  int // maximum allocated slots ever
	GCRuns     int
	CacheHits  uint64
	CacheMiss  uint64
	UniqueHits uint64
	// AxCacheHits/AxCacheMiss count lookups of the dedicated AndExists
	// relational-product cache.
	AxCacheHits uint64
	AxCacheMiss uint64
	// CacheRetained/CacheInvalidated count operation-cache entries kept
	// and dropped across all GC sweeps (the pre-overhaul kernel wiped
	// everything; retained is how much warmth now survives).
	CacheRetained    uint64
	CacheInvalidated uint64
	// HitsAtLastGC/MissAtLastGC snapshot the cache counters at the most
	// recent collection, so hit rates before and after GC are separable.
	HitsAtLastGC uint64
	MissAtLastGC uint64
	// Reorders counts dynamic reordering passes; SiftedVars and
	// SiftSwaps count the variables sifted and adjacent-level swaps
	// performed across them, and ReorderNanos the total time spent
	// sifting. LastReorderBefore/After are the live decision-node
	// counts around the most recent pass.
	Reorders          int
	SiftedVars        int
	SiftSwaps         int
	ReorderNanos      int64
	LastReorderBefore int
	LastReorderAfter  int
}

// CacheHitRatio returns hits/(hits+misses) of the operation cache, or 0
// before any operation ran.
func (s Stats) CacheHitRatio() float64 {
	return ratio(s.CacheHits, s.CacheMiss)
}

// PreGCCacheHitRatio returns the operation-cache hit ratio accumulated
// up to the most recent collection (0 before any GC ran).
func (s Stats) PreGCCacheHitRatio() float64 {
	return ratio(s.HitsAtLastGC, s.MissAtLastGC)
}

// PostGCCacheHitRatio returns the operation-cache hit ratio since the
// most recent collection — the figure that shows whether cache warmth
// survives GC.
func (s Stats) PostGCCacheHitRatio() float64 {
	return ratio(s.CacheHits-s.HitsAtLastGC, s.CacheMiss-s.MissAtLastGC)
}

func ratio(hits, miss uint64) float64 {
	if hits+miss == 0 {
		return 0
	}
	return float64(hits) / float64(hits+miss)
}

// New creates a Manager with the given configuration.
func New(cfg Config) *Manager {
	if cfg.Vars < 0 {
		panic("bdd: negative variable count")
	}
	if cfg.NodeLimit == 0 {
		cfg.NodeLimit = DefaultNodeLimit
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.InitialNodes == 0 {
		cfg.InitialNodes = defaultInitial
	}
	if cfg.InitialNodes < 2 {
		cfg.InitialNodes = 2
	}
	cs := 1
	for cs < cfg.CacheSize {
		cs <<= 1
	}
	// The AndExists cache is a quarter of the shared cache (min 1K
	// sets): quantification call sites are fewer but each entry is hot.
	axs := cs / 4
	if axs < 1<<10 {
		axs = 1 << 10
	}
	m := &Manager{
		vars:      cfg.Vars,
		limit:     cfg.NodeLimit,
		autoGC:    !cfg.DisableGC,
		legacy:    cfg.LegacyKernel,
		cache:     make([]cacheEntry, 2*cs), // cs sets × 2 ways
		axCache:   make([]axEntry, axs),
		freeList:  -1,
		interrupt: cfg.Interrupt,
	}
	m.setMask = uint32(cs - 1)
	m.axMask = uint32(axs - 1)
	m.var2level = make([]int32, cfg.Vars)
	m.level2var = make([]int32, cfg.Vars)
	for v := range m.var2level {
		m.var2level[v] = int32(v)
		m.level2var[v] = int32(v)
	}
	m.reorderCfg = cfg.Reorder
	if cfg.Reorder.Threshold > 0 {
		m.reorderAt = cfg.Reorder.Threshold
	}
	if cfg.Telemetry != nil {
		m.tel = cfg.Telemetry
		m.telGCRuns = m.tel.Counter("bdd.gc_runs")
		m.telGCFreed = m.tel.Counter("bdd.gc_freed_nodes")
		m.telLimitHits = m.tel.Counter("bdd.node_limit_hits")
		m.telCacheHit = m.tel.Counter("bdd.cache_hits")
		m.telCacheMiss = m.tel.Counter("bdd.cache_misses")
		m.telAxHit = m.tel.Counter("bdd.axcache_hits")
		m.telAxMiss = m.tel.Counter("bdd.axcache_misses")
		m.telRetained = m.tel.Counter("bdd.opcache_retained")
		m.telInvalid = m.tel.Counter("bdd.opcache_invalidated")
		m.telReorders = m.tel.Counter("bdd.reorder.runs")
		m.telSifts = m.tel.Counter("bdd.reorder.sifted_vars")
		m.telSwaps = m.tel.Counter("bdd.reorder.swaps")
		m.telReorderNs = m.tel.Counter("bdd.reorder.nanos")
		m.telLive = m.tel.Gauge("bdd.live_nodes")
		m.telPeak = m.tel.Gauge("bdd.peak_nodes")
		m.telFree = m.tel.Gauge("bdd.free_nodes")
		m.telHitPreGC = m.tel.Gauge("bdd.cache_hit_ratio_pre_gc")
		m.telHitPostGC = m.tel.Gauge("bdd.cache_hit_ratio_post_gc")
		m.telOccupancy = m.tel.Gauge("bdd.opcache_occupancy")
	}
	n := cfg.InitialNodes
	m.lvl = make([]int32, 2, n)
	m.lo = make([]int32, 2, n)
	m.hi = make([]int32, 2, n)
	m.next = make([]int32, 2, n)
	m.ref = make([]int32, 2, n)
	// Terminals occupy slots 0 and 1 and are permanently referenced.
	m.lvl[0], m.lvl[1] = terminalLevel, terminalLevel
	m.lo[0], m.lo[1] = 0, 1
	m.hi[0], m.hi[1] = 0, 1
	m.ref[0], m.ref[1] = 1, 1
	m.nodes = 2
	m.hash = make([]int32, hashSizeFor(n))
	for i := range m.hash {
		m.hash[i] = -1
	}
	m.next[0], m.next[1] = -1, -1
	// Invalidate cache entries (op 0 is unused).
	return m
}

func hashSizeFor(nodes int) int {
	s := 256
	for s < nodes {
		s <<= 1
	}
	return s
}

// NumVars returns the number of variables of the manager.
func (m *Manager) NumVars() int { return m.vars }

// Size returns the number of allocated (live plus not-yet-collected)
// nodes, including the two terminals.
func (m *Manager) Size() int { return m.nodes }

// Statistics returns a snapshot of manager counters.
func (m *Manager) Statistics() Stats {
	s := m.stats
	// Allocated slots minus the free list — NOT m.nodes, whose
	// incremental bookkeeping can drift from the table (e.g. when GC
	// resurrects a free-listed slot reachable from a re-referenced
	// root).
	s.LiveNodes = len(m.lvl) - m.freeCnt
	s.FreeNodes = m.freeCnt
	return s
}

// SampleTelemetry publishes current occupancy and cache counters to the
// configured telemetry registry; a no-op without telemetry. Engines
// call it at safe points (between top-level steps) so a live progress
// sink sees BDD pressure as it builds.
func (m *Manager) SampleTelemetry() {
	if m.tel == nil {
		return
	}
	m.telLive.Set(float64(len(m.lvl) - m.freeCnt))
	m.telPeak.Max(float64(m.stats.PeakNodes))
	m.telFree.Set(float64(m.freeCnt))
	m.telHitPreGC.Set(m.stats.PreGCCacheHitRatio())
	m.telHitPostGC.Set(m.stats.PostGCCacheHitRatio())
	m.telOccupancy.Set(m.cacheOccupancy())
	// Counters must stay monotone across managers sharing the
	// registry, so publish deltas since the last sample.
	m.telCacheHit.Add(int64(m.stats.CacheHits - m.sampledHits))
	m.telCacheMiss.Add(int64(m.stats.CacheMiss - m.sampledMiss))
	m.telAxHit.Add(int64(m.stats.AxCacheHits - m.sampledAxHits))
	m.telAxMiss.Add(int64(m.stats.AxCacheMiss - m.sampledAxMiss))
	m.telRetained.Add(int64(m.stats.CacheRetained - m.sampledRet))
	m.telInvalid.Add(int64(m.stats.CacheInvalidated - m.sampledInv))
	m.sampledHits, m.sampledMiss = m.stats.CacheHits, m.stats.CacheMiss
	m.sampledAxHits, m.sampledAxMiss = m.stats.AxCacheHits, m.stats.AxCacheMiss
	m.sampledRet, m.sampledInv = m.stats.CacheRetained, m.stats.CacheInvalidated
}

// cacheOccupancy returns the fraction of shared operation-cache entries
// currently holding a result.
func (m *Manager) cacheOccupancy() float64 {
	used := 0
	for i := range m.cache {
		if m.cache[i].op != 0 {
			used++
		}
	}
	return float64(used) / float64(len(m.cache))
}

// Var returns the BDD for variable v (a single decision node testing v).
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.vars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.vars))
	}
	return m.mk(m.var2level[v], False, True)
}

// NVar returns the BDD for the negation of variable v.
func (m *Manager) NVar(v int) Node {
	if v < 0 || v >= m.vars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.vars))
	}
	return m.mk(m.var2level[v], True, False)
}

// Level returns the current level of node n in the variable order, or a
// value larger than any level if n is a terminal. Levels move under
// dynamic reordering; use VarOf for the stable variable identity.
func (m *Manager) Level(n Node) int { return int(m.lvl[n]) }

// VarOf returns the variable tested by decision node n, or -1 for the
// terminals. Unlike Level, the answer is stable across reordering.
func (m *Manager) VarOf(n Node) int {
	if n <= True {
		return -1
	}
	return int(m.level2var[m.lvl[n]])
}

// LevelOfVar returns the current level of variable v.
func (m *Manager) LevelOfVar(v int) int { return int(m.var2level[v]) }

// VarAtLevel returns the variable currently at level l.
func (m *Manager) VarAtLevel(l int) int { return int(m.level2var[l]) }

// IsTerminal reports whether n is True or False.
func (m *Manager) IsTerminal(n Node) bool { return n <= True }

// Low returns the else-child (dashed edge) of decision node n.
func (m *Manager) Low(n Node) Node { return Node(m.lo[n]) }

// High returns the then-child (solid edge) of decision node n.
func (m *Manager) High(n Node) Node { return Node(m.hi[n]) }

// Ref increments the external reference count of n, protecting it (and
// its descendants) from garbage collection. It returns n for chaining.
func (m *Manager) Ref(n Node) Node {
	if n > True {
		m.ref[n]++
	}
	return n
}

// Deref decrements the external reference count of n.
func (m *Manager) Deref(n Node) {
	if n > True {
		if m.ref[n] <= 0 {
			panic("bdd: Deref of unreferenced node")
		}
		m.ref[n]--
	}
}

// hashNode mixes a (level, lo, hi) triple into a bucket index.
func (m *Manager) hashNode(lvl, lo, hi int32) int32 {
	h := uint32(lvl)*0x9e3779b9 + uint32(lo)*0x85ebca6b + uint32(hi)*0xc2b2ae35
	h ^= h >> 15
	return int32(h & uint32(len(m.hash)-1))
}

// interruptEvery is how many polled operations elapse between calls to
// the Interrupt hook. The hook itself amortizes further (resil.Checker
// touches the clock every DefaultPollInterval calls), so the common
// path through pollInterrupt is one nil check, one increment, and one
// compare — negligible against a unique-table probe.
const interruptEvery = 4096

// pollInterrupt aborts the in-flight operation when the run has been
// canceled or has exceeded its deadline. The error unwinds as a
// bddPanic, exactly like a node-table overflow, so every existing
// protect/recover boundary handles it.
func (m *Manager) pollInterrupt() {
	if m.interrupt == nil {
		return
	}
	m.intrN++
	if m.intrN < interruptEvery {
		return
	}
	m.intrN = 0
	if err := m.interrupt(); err != nil {
		panic(bddPanic{err})
	}
}

// mk returns the canonical node (lvl, lo, hi), applying the ROBDD
// reduction rules.
func (m *Manager) mk(lvl int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	m.pollInterrupt()
	b := m.hashNode(lvl, int32(lo), int32(hi))
	for i := m.hash[b]; i >= 0; i = m.next[i] {
		if m.lvl[i] == lvl && m.lo[i] == int32(lo) && m.hi[i] == int32(hi) {
			m.stats.UniqueHits++
			return Node(i)
		}
	}
	// Allocate: reuse a freed slot if available, else extend the table.
	// The new slot's index is the table extent — NOT m.nodes, which
	// counts live slots and lags behind after collections.
	var id int32
	if m.freeList >= 0 {
		id = m.freeList
		m.freeList = m.next[id]
		m.freeCnt--
		m.lvl[id], m.lo[id], m.hi[id], m.ref[id] = lvl, int32(lo), int32(hi), 0
		m.nodes++
	} else {
		if len(m.lvl) >= m.limit {
			// Garbage collection cannot run here: intermediate nodes of
			// in-flight operations live only on the Go stack and would be
			// swept. Clients collect at safe points via MaybeGC.
			m.telLimitHits.Inc()
			if m.tel.Active() {
				m.tel.Emit(obs.Event{Stage: "bdd", Final: true,
					Detail: fmt.Sprintf("node table limit exceeded (%s nodes)", obs.HumanCount(int64(m.limit)))})
			}
			if m.tel.Recording() {
				m.tel.Record(time.Time{}, obs.TraceEvent{Stage: "bdd.overflow",
					Nodes: int64(m.limit), Outcome: "overflow"})
			}
			panic(bddPanic{ErrNodeLimit})
		}
		id = int32(len(m.lvl))
		m.lvl = append(m.lvl, lvl)
		m.lo = append(m.lo, int32(lo))
		m.hi = append(m.hi, int32(hi))
		m.next = append(m.next, -1)
		m.ref = append(m.ref, 0)
		m.nodes++
	}
	if m.nodes > m.stats.PeakNodes {
		m.stats.PeakNodes = m.nodes
	}
	m.next[id] = m.hash[b]
	m.hash[b] = id
	if m.nodes > len(m.hash)*2 {
		m.rehash() // re-links every live node, including id
	}
	return Node(id)
}

func (m *Manager) rehash() {
	m.hash = make([]int32, hashSizeFor(m.nodes*2))
	for i := range m.hash {
		m.hash[i] = -1
	}
	for i := int32(2); i < int32(len(m.lvl)); i++ {
		if m.ref[i] < 0 { // free slot
			continue
		}
		b := m.hashNode(m.lvl[i], m.lo[i], m.hi[i])
		m.next[i] = m.hash[b]
		m.hash[b] = i
	}
	// Free slots lost their chain; rebuild it.
	m.freeList = -1
	m.freeCnt = 0
	for i := int32(len(m.lvl)) - 1; i >= 2; i-- {
		if m.ref[i] < 0 {
			m.next[i] = m.freeList
			m.freeList = i
			m.freeCnt++
		}
	}
}

// bddPanic wraps an error thrown across the recursive operation stack;
// exported entry points recover it and return the error. It implements
// error (with Unwrap) so callers that recover() it can match
// errors.Is(err, ErrNodeLimit).
type bddPanic struct{ err error }

// Error implements error.
func (p bddPanic) Error() string { return p.err.Error() }

// Unwrap exposes the wrapped sentinel error.
func (p bddPanic) Unwrap() error { return p.err }

// protect runs f, converting a bddPanic into its error.
func (m *Manager) protect(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if bp, ok := r.(bddPanic); ok {
				err = bp.err
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

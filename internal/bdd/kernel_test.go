package bdd

import (
	"math"
	"math/rand"
	"testing"
)

// newKernelPair returns two managers over the same variable count, one
// per kernel, for result-parity checks.
func newKernelPair(vars int) (*Manager, *Manager) {
	return New(Config{Vars: vars}), New(Config{Vars: vars, LegacyKernel: true})
}

// buildDense returns a structurally interesting BDD over [0, vars):
// pairs of adjacent variables joined alternately by OR/XOR, conjoined.
// Built identically on any manager, it yields the same function.
func buildDense(m *Manager, vars int) Node {
	f := True
	for v := 0; v+1 < vars; v += 2 {
		var pair Node
		if v%4 == 0 {
			pair = m.Or(m.Var(v), m.Var(v+1))
		} else {
			pair = m.Xor(m.Var(v), m.Var(v+1))
		}
		f = m.And(f, pair)
	}
	return f
}

func TestRestrictCacheKeyDisjoint(t *testing.T) {
	// Regression: Restrict once keyed the shared cache as (op, f, v,
	// value) packings that could collide with apply entries and with the
	// opposite polarity. The two polarities must produce distinct cached
	// results for the same (f, v), interleaved with apply traffic.
	m := newTest(8)
	f := buildDense(m, 8)
	for round := 0; round < 3; round++ {
		for v := 0; v < 8; v++ {
			rT := m.Restrict(f, v, true)
			rF := m.Restrict(f, v, false)
			// Recompute through a fresh manager as ground truth.
			chk := newTest(8)
			g := buildDense(chk, 8)
			if got, want := chk.NodeCount(chk.Restrict(g, v, true)), m.NodeCount(rT); got != want {
				t.Fatalf("Restrict(v=%d,true) diverged after caching: %d vs %d", v, want, got)
			}
			if got, want := chk.NodeCount(chk.Restrict(g, v, false)), m.NodeCount(rF); got != want {
				t.Fatalf("Restrict(v=%d,false) diverged after caching: %d vs %d", v, want, got)
			}
			// Generate colliding apply traffic with small node handles.
			m.And(m.Var(v), m.Var((v+1)%8))
		}
	}
	// Same level restricted with both polarities back-to-back must obey
	// Shannon: f = (¬v ∧ f|v=0) ∨ (v ∧ f|v=1).
	for v := 0; v < 8; v++ {
		lo, hi := m.Restrict(f, v, false), m.Restrict(f, v, true)
		if m.Ite(m.Var(v), hi, lo) != f {
			t.Fatalf("Shannon expansion broken at var %d", v)
		}
	}
}

func TestAndExistsMatchesComposed(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := newTest(12)
	for i := 0; i < 200; i++ {
		f, _ := buildRandom(m, r, 4)
		g, _ := buildRandom(m, r, 4)
		nv := 1 + r.Intn(5)
		vars := r.Perm(12)[:nv]
		want := m.ExistsSet(m.And(f, g), vars)
		if got := m.AndExistsVars(f, g, vars); got != want {
			t.Fatalf("AndExistsVars != ExistsSet∘And (iter %d)", i)
		}
		if got := m.AndExists(f, g, m.CubeVars(vars)); got != want {
			t.Fatalf("AndExists != ExistsSet∘And (iter %d)", i)
		}
	}
}

func TestExistsCubeMatchesExistsSet(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m := newTest(12)
	for i := 0; i < 200; i++ {
		f, _ := buildRandom(m, r, 5)
		nv := 1 + r.Intn(6)
		vars := r.Perm(12)[:nv]
		if m.ExistsCube(f, m.CubeVars(vars)) != m.ExistsSet(f, vars) {
			t.Fatalf("ExistsCube != ExistsSet (iter %d)", i)
		}
	}
}

func TestSatProbesMatchMaterialized(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	m := newTest(12)
	for i := 0; i < 300; i++ {
		f, _ := buildRandom(m, r, 4)
		g, _ := buildRandom(m, r, 4)
		if m.AndSat(f, g) != (m.And(f, g) != False) {
			t.Fatalf("AndSat mismatch (iter %d)", i)
		}
		if m.DiffSat(f, g) != (m.Diff(f, g) != False) {
			t.Fatalf("DiffSat mismatch (iter %d)", i)
		}
	}
}

func TestCubeMatchesLiteralConjunction(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	m := newTest(16)
	for i := 0; i < 200; i++ {
		nv := 1 + r.Intn(6)
		vars := make([]int, nv)
		values := make([]bool, nv)
		for j := range vars {
			vars[j] = r.Intn(16) // duplicates allowed on purpose
			values[j] = r.Intn(2) == 0
		}
		want := True
		for j := range vars {
			if values[j] {
				want = m.And(want, m.Var(vars[j]))
			} else {
				want = m.And(want, m.NVar(vars[j]))
			}
		}
		if got := m.Cube(vars, values); got != want {
			t.Fatalf("Cube mismatch (iter %d, vars %v values %v)", i, vars, values)
		}
	}
	if m.Cube([]int{3, 3}, []bool{true, false}) != False {
		t.Fatal("conflicting duplicate literals must give False")
	}
	if m.Cube(nil, nil) != True {
		t.Fatal("empty cube must be True")
	}
}

func TestShortestPathToTrueMatchesComplement(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	m := newTest(10)
	if m.ShortestPathToTrue(False) != math.MaxInt32 {
		t.Fatal("SPTT(False)")
	}
	if m.ShortestPathToTrue(True) != 0 {
		t.Fatal("SPTT(True)")
	}
	for i := 0; i < 200; i++ {
		f, _ := buildRandom(m, r, 4)
		if m.ShortestPathToTrue(f) != m.ShortestPathToFalse(m.Not(f)) {
			t.Fatalf("SPTT != SPTF∘Not (iter %d)", i)
		}
	}
}

func TestLegacyKernelParity(t *testing.T) {
	// The same construction sequence on both kernels must represent the
	// same functions and give every analysis the same values. Node
	// handles may differ (the kernels build intermediates in different
	// orders), so all comparisons are semantic.
	mNew, mOld := newKernelPair(14)
	rNew, rOld := rand.New(rand.NewSource(47)), rand.New(rand.NewSource(47))
	rEval := rand.New(rand.NewSource(48))
	pv := make([]float64, 14)
	for i := range pv {
		pv[i] = 0.25 + 0.05*float64(i%10)
	}
	for i := 0; i < 120; i++ {
		fN, _ := buildRandom(mNew, rNew, 5)
		fO, _ := buildRandom(mOld, rOld, 5)
		for j := 0; j < 16; j++ {
			var a [14]bool
			for k := range a {
				a[k] = rEval.Intn(2) == 0
			}
			at := func(v int) bool { return a[v] }
			if mNew.Eval(fN, at) != mOld.Eval(fO, at) {
				t.Fatalf("kernels built different functions (iter %d)", i)
			}
		}
		vars := rNew.Perm(14)[:3]
		if len(vars) != len(rOld.Perm(14)[:3]) { // keep the streams aligned
			t.Fatal("rng misaligned")
		}
		if mNew.SatCount(mNew.ExistsSet(fN, vars), 14) != mOld.SatCount(mOld.ExistsSet(fO, vars), 14) {
			t.Fatalf("ExistsSet parity (iter %d)", i)
		}
		if mNew.SatCount(fN, 14) != mOld.SatCount(fO, 14) {
			t.Fatalf("SatCount parity (iter %d)", i)
		}
		if mNew.Probability(fN, pv) != mOld.Probability(fO, pv) {
			t.Fatalf("Probability parity (iter %d)", i)
		}
		if mNew.ShortestPathToFalse(fN) != mOld.ShortestPathToFalse(fO) {
			t.Fatalf("ShortestPathToFalse parity (iter %d)", i)
		}
		if mNew.NodeCount(fN) != mOld.NodeCount(fO) {
			t.Fatalf("NodeCount parity (iter %d)", i)
		}
		sN, sO := mNew.Support(fN), mOld.Support(fO)
		if len(sN) != len(sO) {
			t.Fatalf("Support parity (iter %d)", i)
		}
		for j := range sN {
			if sN[j] != sO[j] {
				t.Fatalf("Support parity (iter %d)", i)
			}
		}
		wN, okN := mNew.MinFalseWitness(fN)
		wO, okO := mOld.MinFalseWitness(fO)
		if okN != okO || len(wN) != len(wO) {
			t.Fatalf("MinFalseWitness parity (iter %d)", i)
		}
		for j := range wN {
			if wN[j] != wO[j] {
				t.Fatalf("MinFalseWitness parity (iter %d)", i)
			}
		}
	}
}

func TestGCRetainsLiveCacheEntries(t *testing.T) {
	m := New(Config{Vars: 16})
	f := m.Ref(buildDense(m, 16))
	g := m.Ref(m.Or(m.Var(1), m.And(m.Var(3), m.NVar(5))))
	h := m.And(f, g) // cached with live operands
	m.Ref(h)
	// Garbage: a pile of BDDs no one references.
	for v := 0; v < 14; v++ {
		m.Xor(m.And(m.Var(v), f), m.Or(m.Var(v+1), g))
	}
	statsBefore := m.Statistics()
	m.GC()
	st := m.Statistics()
	if st.CacheRetained == 0 {
		t.Fatal("sweep retained nothing despite live operands")
	}
	if st.CacheInvalidated == 0 {
		t.Fatal("sweep invalidated nothing despite dead garbage")
	}
	if st.HitsAtLastGC != statsBefore.CacheHits || st.MissAtLastGC != statsBefore.CacheMiss {
		t.Fatal("GC hit/miss snapshot not taken")
	}
	// A retained entry must hit: And(f, g) again without any rebuild.
	miss := st.CacheMiss
	if m.And(f, g) != h {
		t.Fatal("retained result changed")
	}
	if m.Statistics().CacheMiss != miss {
		t.Fatal("And(f, g) missed the cache after GC — entry was not retained")
	}
	if m.Statistics().PostGCCacheHitRatio() == 0 {
		t.Fatal("post-GC hit ratio not observable")
	}
	// The swept cache must never resurrect dead handles: run a fresh
	// workload touching recycled slots and cross-check on a cold manager.
	res := m.AndN(m.Var(0), m.Var(7), m.Var(13))
	chk := New(Config{Vars: 16})
	if chk.NodeCount(chk.AndN(chk.Var(0), chk.Var(7), chk.Var(13))) != m.NodeCount(res) {
		t.Fatal("post-GC operations diverged")
	}
}

func TestLegacyGCStillWipes(t *testing.T) {
	m := New(Config{Vars: 8, LegacyKernel: true})
	f := m.Ref(buildDense(m, 8))
	m.And(f, m.Var(1))
	m.GC()
	if st := m.Statistics(); st.CacheRetained != 0 {
		t.Fatalf("legacy GC retained %d entries; want full wipe", st.CacheRetained)
	}
}

// --- allocation discipline ---

func TestAnalysesAllocationFree(t *testing.T) {
	m := newTest(24)
	f := buildDense(m, 24)
	pv := make([]float64, 24)
	for i := range pv {
		pv[i] = 0.9
	}
	m.SatCount(f, 24) // warm up: scratch arrays grow once
	m.Probability(f, pv)
	m.ShortestPathToFalse(f)
	cases := []struct {
		name string
		fn   func()
	}{
		{"SatCount", func() { m.SatCount(f, 24) }},
		{"Probability", func() { m.Probability(f, pv) }},
		{"ShortestPathToFalse", func() { m.ShortestPathToFalse(f) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per run in steady state; want 0", c.name, allocs)
		}
	}
}

// --- micro-benchmarks (new kernel unless named Legacy) ---

func benchManager(b *testing.B, legacy bool, vars int) (*Manager, Node) {
	m := New(Config{Vars: vars, LegacyKernel: legacy})
	f := m.Ref(buildDense(m, vars))
	b.ReportAllocs()
	b.ResetTimer()
	return m, f
}

func BenchmarkApply(b *testing.B) {
	m, f := benchManager(b, false, 64)
	g := m.Ref(m.Or(m.Var(3), m.Xor(m.Var(17), m.Var(40))))
	for i := 0; i < b.N; i++ {
		m.And(f, g)
	}
}

func BenchmarkExistsSet(b *testing.B) {
	m, f := benchManager(b, false, 64)
	vars := []int{0, 7, 14, 21, 28, 35, 42, 49}
	for i := 0; i < b.N; i++ {
		m.ExistsSet(f, vars)
	}
}

func BenchmarkExistsSetLegacy(b *testing.B) {
	m, f := benchManager(b, true, 64)
	vars := []int{0, 7, 14, 21, 28, 35, 42, 49}
	for i := 0; i < b.N; i++ {
		m.ExistsSet(f, vars)
	}
}

func BenchmarkAndExists(b *testing.B) {
	m, f := benchManager(b, false, 64)
	g := m.Ref(m.Or(m.And(m.Var(5), m.Var(33)), m.Var(50)))
	cube := m.Ref(m.CubeVars([]int{0, 7, 14, 21, 28, 35, 42, 49}))
	for i := 0; i < b.N; i++ {
		m.AndExists(f, g, cube)
	}
}

func BenchmarkSatCount(b *testing.B) {
	m, f := benchManager(b, false, 64)
	for i := 0; i < b.N; i++ {
		m.SatCount(f, 64)
	}
}

func BenchmarkSatCountLegacy(b *testing.B) {
	m, f := benchManager(b, true, 64)
	for i := 0; i < b.N; i++ {
		m.SatCount(f, 64)
	}
}

func BenchmarkProbability(b *testing.B) {
	m, f := benchManager(b, false, 64)
	pv := make([]float64, 64)
	for i := range pv {
		pv[i] = 0.99
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Probability(f, pv)
	}
}

func BenchmarkProbabilityLegacy(b *testing.B) {
	m, f := benchManager(b, true, 64)
	pv := make([]float64, 64)
	for i := range pv {
		pv[i] = 0.99
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Probability(f, pv)
	}
}

package bdd

import (
	"errors"
	"testing"
)

// TestInterruptAbortsApply installs an Interrupt hook that trips after a
// fixed number of polls and checks that a large conjunction unwinds with
// the hook's error instead of completing or crashing.
func TestInterruptAbortsApply(t *testing.T) {
	sentinel := errors.New("stop now")
	polls := 0
	m := New(Config{Vars: 64, Interrupt: func() error {
		polls++
		if polls > 2 {
			return sentinel
		}
		return nil
	}})

	err := m.protect(func() {
		// Enough structure to force many mk/apply steps: the parity
		// function over 64 variables has an exponential-free but deep
		// BDD, and repeated XOR keeps the loops busy.
		f := False
		for round := 0; round < 1000; round++ {
			for v := 0; v < 64; v++ {
				f = m.Xor(f, m.Var(v))
			}
		}
		_ = f
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the interrupt sentinel", err)
	}
}

// TestInterruptNilHookIsFree checks the no-hook path still works.
func TestInterruptNilHookIsFree(t *testing.T) {
	m := New(Config{Vars: 8})
	f := m.And(m.Var(0), m.Var(1))
	if f == False {
		t.Fatal("unexpected False")
	}
}

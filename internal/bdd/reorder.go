package bdd

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"sre/internal/obs"
)

// Dynamic variable reordering by Rudell sifting. The manager keeps a
// var↔level indirection (var2level/level2var in Manager); sifting moves
// one variable at a time through the order by swapping adjacent levels
// in place, records the level at which the whole diagram was smallest,
// and settles the variable there. Node handles are stable throughout: a
// swap restructures nodes in place, so every external Ref, memo entry
// keyed by handle generation, and serialized root survives — only the
// LEVELS stored in lvl[] change meaning, which is why serialize.go
// stamps the level map into its format and why both operation caches
// are cleared after a pass (Restrict entries key on levels, and freed
// slots may be recycled).
//
// The in-place swap of levels l (variable x) and l+1 (variable y)
// follows the standard node-rotation rule:
//
//   - x-nodes with no child at l+1 do not depend on y: relabel to l+1.
//   - x-nodes with a child at l+1 restructure in place into y-nodes at
//     level l: f = x?(f1)(f0) becomes y?(x?f11:f01)(x?f10:f00), with
//     the two x-cofactor children hash-consed at level l+1.
//   - y-nodes relabel to level l; those orphaned by the restructuring
//     are freed by reference-count cascade.
//
// Canonicity keeps the rule collision-free: distinct live nodes encode
// distinct functions, so no relabel or restructure can produce a
// duplicate unique-table key at its final level.
//
// Sifting runs only at safe points (no operation in flight), entered
// from the GC path, because the temporary per-node reference counts are
// derived from external Refs plus parent edges — exactly the GC
// reachability contract.

// ReorderConfig configures dynamic reordering.
type ReorderConfig struct {
	// Threshold arms automatic reordering: when a MaybeGC call finds at
	// least this many live nodes after collecting, the manager runs a
	// sifting pass. Zero disables automatic reordering.
	Threshold int
	// MaxGrowth bounds how far one variable may be sifted past its
	// optimum: a direction is abandoned when the diagram grows beyond
	// MaxGrowth × its size at the start of that variable's sift.
	// Values ≤ 1 mean DefaultReorderGrowth.
	MaxGrowth float64
	// TimeBudget bounds one sifting pass; the pass stops starting new
	// variables once exceeded. Zero means DefaultReorderBudget.
	TimeBudget time.Duration
}

// Default reordering parameters.
const (
	// DefaultReorderThreshold is the live-node trigger used by callers
	// that enable reordering without an explicit threshold.
	DefaultReorderThreshold = 1 << 16
	// DefaultReorderGrowth is the per-variable growth bound.
	DefaultReorderGrowth = 1.2
	// DefaultReorderBudget is the per-pass time budget.
	DefaultReorderBudget = time.Second
)

// SetReorderBands declares level boundaries that sifting never crosses.
// Each boundary b splits the order between levels b-1 and b; variables
// keep to the band they start in, so layout contracts above the bands
// (the header/link split that SplitAtLevel depends on) hold under any
// amount of reordering. Boundaries outside (0, NumVars) are ignored.
// Call before any reordering happens.
func (m *Manager) SetReorderBands(bounds []int) {
	m.bands = m.bands[:0]
	for _, b := range bounds {
		if b > 0 && b < m.vars {
			m.bands = append(m.bands, int32(b))
		}
	}
	slices.Sort(m.bands)
	m.bands = slices.Compact(m.bands)
}

// ReorderEnabled reports whether automatic reordering is armed.
func (m *Manager) ReorderEnabled() bool { return m.reorderAt > 0 }

// CurrentOrder returns a copy of the current var→level map.
func (m *Manager) CurrentOrder() []int {
	out := make([]int, m.vars)
	for v, l := range m.var2level {
		out[v] = int(l)
	}
	return out
}

// OrderIsIdentity reports whether the current order equals the static
// construction order (no sift has moved a variable).
func (m *Manager) OrderIsIdentity() bool {
	for v, l := range m.var2level {
		if int32(v) != l {
			return false
		}
	}
	return true
}

// Reorder collects garbage and runs one full sifting pass immediately,
// using the configured (or default) growth and time bounds. Like GC it
// must only be called at a safe point: no operation in flight, every
// persistent node protected by Ref.
func (m *Manager) Reorder() {
	m.GC()
	m.reorderNow()
}

// maybeReorder runs a sifting pass from the GC path when the live-node
// count stands above the trigger even after collecting. When the GC
// alone brought the count back under the trigger, the trigger rises to
// twice the live size instead (floored at the configured threshold) —
// without that, every subsequent MaybeGC call above the threshold
// would run a full collection, thrashing exactly the workloads whose
// dead-node churn the GC threshold exists to amortize.
func (m *Manager) maybeReorder() {
	if m.reorderAt <= 0 {
		return
	}
	if m.nodes >= m.reorderAt {
		m.reorderNow()
		return
	}
	if next := 2 * m.nodes; next > m.reorderAt {
		m.reorderAt = next
	}
}

// reorderNow sifts each variable (most populous levels first) to its
// locally optimal level, then rebuilds the hash/free-list and drops both
// operation caches. The trigger for the next automatic pass rises to
// twice the post-sift size so steady growth is not re-sifted constantly.
func (m *Manager) reorderNow() {
	start := time.Now()
	budget := m.reorderCfg.TimeBudget
	if budget <= 0 {
		budget = DefaultReorderBudget
	}
	growth := m.reorderCfg.MaxGrowth
	if growth <= 1 {
		growth = DefaultReorderGrowth
	}
	st := m.buildReorderState()
	before := st.total
	vars := make([]int32, 0, m.vars)
	for v := 0; v < m.vars; v++ {
		if st.count[m.var2level[v]] > 0 {
			vars = append(vars, int32(v))
		}
	}
	slices.SortFunc(vars, func(a, b int32) int {
		if c := cmp.Compare(st.count[m.var2level[b]], st.count[m.var2level[a]]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	sifted, swaps0 := 0, m.stats.SiftSwaps
	for _, v := range vars {
		if time.Since(start) > budget {
			break
		}
		if m.interrupt != nil && m.interrupt() != nil {
			// Stop sifting but finish cleanup below; the interruption
			// surfaces at the next polled operation.
			break
		}
		st.siftVar(v, growth)
		sifted++
	}
	m.rehash() // rebuild chains and free list over the post-sift table
	m.clearCache()
	after := st.total
	m.stats.Reorders++
	m.stats.SiftedVars += sifted
	m.stats.ReorderNanos += time.Since(start).Nanoseconds()
	m.stats.LastReorderBefore, m.stats.LastReorderAfter = before, after
	if m.reorderAt > 0 {
		m.reorderAt = 2 * m.nodes
		if m.reorderAt < m.reorderCfg.Threshold {
			m.reorderAt = m.reorderCfg.Threshold
		}
	}
	m.telReorders.Inc()
	m.telSifts.Add(int64(sifted))
	m.telSwaps.Add(int64(m.stats.SiftSwaps - swaps0))
	m.telReorderNs.Add(time.Since(start).Nanoseconds())
	if m.tel.Active() {
		m.tel.Emit(obs.Event{Stage: "bdd",
			Detail: fmt.Sprintf("reorder #%d sifted %d vars (%d swaps): %s → %s nodes in %s",
				m.stats.Reorders, sifted, m.stats.SiftSwaps-swaps0,
				obs.HumanCount(int64(before)), obs.HumanCount(int64(after)),
				time.Since(start).Round(time.Millisecond))})
	}
	if m.tel.Recording() {
		m.tel.Record(start, obs.TraceEvent{Stage: "bdd.reorder",
			Wall:  time.Since(start).Nanoseconds(),
			Count: int64(m.stats.SiftSwaps - swaps0),
			Nodes: int64(after) - int64(before), Outcome: "ok"})
	}
}

// reorderState is the per-pass bookkeeping: temporary reference counts
// (external Refs plus parent edges), per-level node lists, and live
// decision-node totals. Slots freed during a pass are NOT pushed onto
// the manager free list — the final rehash rebuilds it — so a slot id
// never recycles mid-pass and stale level-list entries are detectable
// by (ref >= 0 && lvl matches).
type reorderState struct {
	m      *Manager
	rc     []int32
	levels [][]int32
	count  []int
	total  int
}

func (m *Manager) buildReorderState() *reorderState {
	st := &reorderState{
		m:      m,
		rc:     make([]int32, len(m.lvl)),
		levels: make([][]int32, m.vars),
		count:  make([]int, m.vars),
	}
	for i := int32(2); i < int32(len(m.lvl)); i++ {
		if m.ref[i] < 0 {
			continue
		}
		l := m.lvl[i]
		st.rc[i] += m.ref[i]
		st.rc[m.lo[i]]++
		st.rc[m.hi[i]]++
		st.levels[l] = append(st.levels[l], i)
		st.count[l]++
		st.total++
	}
	return st
}

// bandRange returns the [lo, hi) level range of the band containing l.
func (st *reorderState) bandRange(l int32) (int32, int32) {
	lo, hi := int32(0), int32(st.m.vars)
	for _, b := range st.m.bands {
		if b <= l {
			lo = b
		} else {
			hi = b
			break
		}
	}
	return lo, hi
}

// gather returns the live nodes currently at level l, dropping entries
// that died or moved since they were listed.
func (st *reorderState) gather(l int32) []int32 {
	m := st.m
	live := st.levels[l][:0]
	for _, id := range st.levels[l] {
		if m.ref[id] >= 0 && m.lvl[id] == l {
			live = append(live, id)
		}
	}
	st.levels[l] = live
	return live
}

// canSwap reports whether swapping levels l and l+1 cannot overflow the
// node table: a swap allocates at most two fresh children per level-l
// node.
func (st *reorderState) canSwap(l int32) bool {
	return len(st.m.lvl)+2*st.count[l] <= st.m.limit
}

// siftVar sifts variable v to the level minimizing total live nodes
// within its band, bounded by the growth factor.
func (st *reorderState) siftVar(v int32, maxGrowth float64) {
	m := st.m
	cur := m.var2level[v]
	lo, hi := st.bandRange(cur)
	if hi-lo < 2 {
		return
	}
	best := cur
	bestTotal := st.total
	limit := int(maxGrowth * float64(st.total))
	step := func(l int32) {
		st.swap(l)
		m.stats.SiftSwaps++
		if st.total < bestTotal {
			bestTotal, best = st.total, m.var2level[v]
		}
	}
	down := func() {
		for m.var2level[v] < hi-1 && st.total <= limit && st.canSwap(m.var2level[v]) {
			step(m.var2level[v])
		}
	}
	up := func() {
		for m.var2level[v] > lo && st.total <= limit && st.canSwap(m.var2level[v]-1) {
			step(m.var2level[v] - 1)
		}
	}
	// Try the closer end first so the worst case walks the band ~twice.
	if cur-lo <= hi-1-cur {
		up()
		down()
	} else {
		down()
		up()
	}
	// Settle at the best recorded level. Retracing shrinks the diagram
	// back to bestTotal, but individual swaps may still allocate; if the
	// table is about to overflow, stop where we are — any level is
	// semantically valid.
	for m.var2level[v] > best && st.canSwap(m.var2level[v]-1) {
		st.swap(m.var2level[v] - 1)
		m.stats.SiftSwaps++
	}
	for m.var2level[v] < best && st.canSwap(m.var2level[v]) {
		st.swap(m.var2level[v])
		m.stats.SiftSwaps++
	}
}

// swap exchanges levels l and l+1 in place (see the package comment at
// the top of this file for the node-rotation rule).
func (st *reorderState) swap(l int32) {
	m := st.m
	xs := st.gather(l)
	ys := st.gather(l + 1)
	var keep, restruct []int32
	for _, n := range xs {
		if m.lvl[m.lo[n]] == l+1 || m.lvl[m.hi[n]] == l+1 {
			restruct = append(restruct, n)
		} else {
			keep = append(keep, n)
		}
	}
	// Unhook restructured nodes while their unique-table key is intact.
	for _, n := range restruct {
		m.hashRemove(n)
	}
	// Independent x-nodes: relabel to l+1.
	for _, n := range keep {
		m.hashRemove(n)
		m.lvl[n] = l + 1
		m.hashInsert(n)
	}
	// y-nodes: relabel to l.
	for _, n := range ys {
		m.hashRemove(n)
		m.lvl[n] = l
		m.hashInsert(n)
	}
	// Fix counts for the relabelings before any cascade frees run, so
	// unref's per-level decrements stay consistent.
	st.levels[l+1] = keep
	st.count[l+1] = len(keep)
	newLower := append(ys[:len(ys):len(ys)], restruct...)
	st.count[l] = len(newLower)
	// Restructure dependent x-nodes into y-nodes at level l. The y-
	// children were just relabeled to l, so the cofactor test is lvl==l.
	for _, f := range restruct {
		f0, f1 := Node(m.lo[f]), Node(m.hi[f])
		f00, f01 := f0, f0
		if m.lvl[f0] == l {
			f00, f01 = Node(m.lo[f0]), Node(m.hi[f0])
		}
		f10, f11 := f1, f1
		if m.lvl[f1] == l {
			f10, f11 = Node(m.lo[f1]), Node(m.hi[f1])
		}
		newLo := st.siftMk(l+1, f00, f10) // f with y=0
		newHi := st.siftMk(l+1, f01, f11) // f with y=1
		st.unref(f0)
		st.unref(f1)
		m.lvl[f] = l
		m.lo[f], m.hi[f] = int32(newLo), int32(newHi)
		m.hashInsert(f)
	}
	st.levels[l] = newLower
	x, y := m.level2var[l], m.level2var[l+1]
	m.level2var[l], m.level2var[l+1] = y, x
	m.var2level[x], m.var2level[y] = l+1, l
}

// siftMk hash-conses (lvl, lo, hi) during a swap and charges one
// reference for the caller's new parent edge. Unlike mk it never reuses
// free slots (slot ids must stay unique within a pass) and never
// rehashes (chains are rebuilt once after the pass).
func (st *reorderState) siftMk(lvl int32, lo, hi Node) Node {
	m := st.m
	if lo == hi {
		st.rc[lo]++
		return lo
	}
	b := m.hashNode(lvl, int32(lo), int32(hi))
	for i := m.hash[b]; i >= 0; i = m.next[i] {
		if m.lvl[i] == lvl && m.lo[i] == int32(lo) && m.hi[i] == int32(hi) {
			st.rc[i]++
			return Node(i)
		}
	}
	id := int32(len(m.lvl))
	m.lvl = append(m.lvl, lvl)
	m.lo = append(m.lo, int32(lo))
	m.hi = append(m.hi, int32(hi))
	m.next = append(m.next, -1)
	m.ref = append(m.ref, 0)
	m.nodes++
	if m.nodes > m.stats.PeakNodes {
		m.stats.PeakNodes = m.nodes
	}
	st.rc = append(st.rc, 1)
	st.rc[lo]++
	st.rc[hi]++
	m.hashInsert(id)
	st.levels[lvl] = append(st.levels[lvl], id)
	st.count[lvl]++
	st.total++
	return Node(id)
}

// unref drops one reference from n, freeing it (and cascading into its
// children) when the count reaches zero. Freed slots stay off the
// manager free list until the post-pass rehash.
func (st *reorderState) unref(n Node) {
	m := st.m
	for n > True {
		st.rc[n]--
		if st.rc[n] > 0 {
			return
		}
		m.hashRemove(int32(n))
		m.ref[n] = -1
		m.nodes--
		st.total--
		st.count[m.lvl[n]]--
		lo, hi := Node(m.lo[n]), Node(m.hi[n])
		st.unref(lo)
		n = hi
	}
	st.rc[n]--
}

// hashRemove unlinks node id from its unique-table bucket; the key must
// still match lvl/lo/hi.
func (m *Manager) hashRemove(id int32) {
	b := m.hashNode(m.lvl[id], m.lo[id], m.hi[id])
	if m.hash[b] == id {
		m.hash[b] = m.next[id]
		return
	}
	for p := m.hash[b]; p >= 0; p = m.next[p] {
		if m.next[p] == id {
			m.next[p] = m.next[id]
			return
		}
	}
	panic("bdd: reorder unlinked a node missing from its bucket")
}

// hashInsert links node id into the bucket of its current key.
func (m *Manager) hashInsert(id int32) {
	b := m.hashNode(m.lvl[id], m.lo[id], m.hi[id])
	m.next[id] = m.hash[b]
	m.hash[b] = id
}

package bdd

import (
	"math/rand"
	"testing"
)

// TestGCStress interleaves BDD construction, referencing, collection,
// and slot reuse while continuously validating the semantics of a set
// of protected functions against reference evaluators. It exercises the
// free-list and unique-table interplay that a long symbolic route
// computation produces.
func TestGCStress(t *testing.T) {
	const vars = 24
	m := New(Config{Vars: vars, InitialNodes: 64})
	r := rand.New(rand.NewSource(99))

	type protected struct {
		n    Node
		eval func([]bool) bool
	}
	var kept []protected
	checkAll := func(tag string) {
		for bits := 0; bits < 64; bits++ {
			a := make([]bool, vars)
			for i := range a {
				a[i] = r.Intn(2) == 0
			}
			for pi, p := range kept {
				got := m.Eval(p.n, func(v int) bool { return a[v] })
				if got != p.eval(a) {
					t.Fatalf("%s: protected function %d corrupted", tag, pi)
				}
			}
		}
	}

	for round := 0; round < 60; round++ {
		// Grow: build random functions, keep some.
		for i := 0; i < 20; i++ {
			n, eval := buildRandom(m, r, 5)
			if r.Intn(3) == 0 && len(kept) < 40 {
				m.Ref(n)
				kept = append(kept, protected{n, eval})
			}
		}
		// Shrink: drop a few protected functions.
		for len(kept) > 25 {
			idx := r.Intn(len(kept))
			m.Deref(kept[idx].n)
			kept = append(kept[:idx], kept[idx+1:]...)
		}
		if round%5 == 0 {
			m.GC()
			checkAll("after GC")
		}
		// Combine protected functions pairwise (creates nodes that may
		// reuse freed slots).
		if len(kept) >= 2 {
			a, b := kept[r.Intn(len(kept))], kept[r.Intn(len(kept))]
			n := m.Ref(m.And(a.n, b.n))
			ae, be := a.eval, b.eval
			kept = append(kept, protected{n, func(x []bool) bool { return ae(x) && be(x) }})
		}
	}
	checkAll("final")
	// Everything still canonical: x & !x == False after heavy churn.
	for v := 0; v < vars; v++ {
		if m.And(m.Var(v), m.NVar(v)) != False {
			t.Fatalf("canonicity broken for var %d", v)
		}
	}
}

// TestGCReusePreservesUniqueness forces collection and slot reuse, then
// verifies the unique table still hash-conses equal structures.
func TestGCReusePreservesUniqueness(t *testing.T) {
	m := New(Config{Vars: 16, InitialNodes: 32})
	r := rand.New(rand.NewSource(5))
	keep := m.Ref(m.AndN(m.Var(0), m.Var(1), m.Var(2)))
	for i := 0; i < 2000; i++ {
		buildRandom(m, r, 6)
		if i%100 == 99 {
			m.GC()
			again := m.AndN(m.Var(0), m.Var(1), m.Var(2))
			if again != keep {
				t.Fatalf("iteration %d: canonical node changed after GC", i)
			}
		}
	}
}

// TestGCStatisticsLiveNodes pins the Stats accounting: LiveNodes counts
// allocated slots minus the free list, so a collection reduces
// LiveNodes (freed slots move to the free list) while PeakNodes — the
// high-water mark Figure 11 reports — is unaffected.
func TestGCStatisticsLiveNodes(t *testing.T) {
	m := New(Config{Vars: 16, InitialNodes: 32})
	var roots []Node
	for v := 0; v < 15; v++ {
		roots = append(roots, m.Ref(m.And(m.Var(v), m.Var(v+1))))
	}
	before := m.Statistics()
	if before.FreeNodes != 0 {
		t.Fatalf("free list before GC = %d, want 0", before.FreeNodes)
	}
	if before.LiveNodes != m.Size() {
		t.Fatalf("LiveNodes %d != Size %d with an empty free list", before.LiveNodes, m.Size())
	}
	for _, n := range roots {
		m.Deref(n)
	}
	freed := m.GC()
	if freed == 0 {
		t.Fatal("expected the dereferenced conjunctions to be collected")
	}
	after := m.Statistics()
	if after.LiveNodes >= before.LiveNodes {
		t.Errorf("GC must reduce LiveNodes: %d -> %d", before.LiveNodes, after.LiveNodes)
	}
	if after.LiveNodes != before.LiveNodes-freed {
		t.Errorf("LiveNodes %d, want %d (before %d - freed %d): free-listed slots still counted",
			after.LiveNodes, before.LiveNodes-freed, before.LiveNodes, freed)
	}
	if after.FreeNodes != freed {
		t.Errorf("FreeNodes = %d, want %d", after.FreeNodes, freed)
	}
	if after.PeakNodes != before.PeakNodes {
		t.Errorf("GC must not change PeakNodes: %d -> %d", before.PeakNodes, after.PeakNodes)
	}
	if after.LiveNodes > after.PeakNodes {
		t.Errorf("LiveNodes %d exceeds PeakNodes %d", after.LiveNodes, after.PeakNodes)
	}
	// The invariant survives slot reuse and rehashing.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		buildRandom(m, r, 5)
	}
	s := m.Statistics()
	if s.LiveNodes != m.Size() && s.LiveNodes != len(m.lvl)-m.freeCnt {
		t.Errorf("LiveNodes %d inconsistent with table extent %d - free %d",
			s.LiveNodes, len(m.lvl), m.freeCnt)
	}
}

// TestMaybeGCThreshold verifies MaybeGC runs only above the threshold.
func TestMaybeGCThreshold(t *testing.T) {
	m := New(Config{Vars: 8})
	if m.MaybeGC(1<<30) != 0 {
		t.Error("below threshold: no collection expected")
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		buildRandom(m, r, 5)
	}
	if m.MaybeGC(4) == 0 {
		t.Error("above threshold: collection expected")
	}
	off := New(Config{Vars: 8, DisableGC: true})
	for i := 0; i < 200; i++ {
		buildRandom(off, r, 5)
	}
	if off.MaybeGC(4) != 0 {
		t.Error("DisableGC must suppress MaybeGC")
	}
}

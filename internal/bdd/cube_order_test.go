package bdd

import (
	"math/rand"
	"testing"
)

// TestSortedVarOrderWideShuffled pins the slices.SortFunc-based
// sortedVarOrder on inputs the old insertion sort never saw in tests:
// wide cubes (thousands of literals) in shuffled order, with duplicate
// variables of both agreeing and conflicting polarity.
func TestSortedVarOrderWideShuffled(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const width = 2000
	m := New(Config{Vars: width})

	vars := make([]int, width)
	values := make([]bool, width)
	for i := range vars {
		vars[i] = i
		values[i] = i%3 == 0
	}
	r.Shuffle(width, func(i, j int) {
		vars[i], vars[j] = vars[j], vars[i]
		values[i], values[j] = values[j], values[i]
	})
	got := m.Cube(vars, values)
	// Reference: build the same cube from pre-sorted literals.
	sortedVals := make([]bool, width)
	for i := range vars {
		sortedVals[vars[i]] = values[i]
	}
	sortedVars := make([]int, width)
	for i := range sortedVars {
		sortedVars[i] = i
	}
	if want := m.Cube(sortedVars, sortedVals); got != want {
		t.Fatal("shuffled wide cube differs from sorted construction")
	}

	// Agreeing duplicates are redundant; conflicting duplicates empty
	// the cube — regardless of where the copies land after shuffling.
	dupVars := append(append([]int{}, vars...), vars[width/2], vars[width/4])
	dupVals := append(append([]bool{}, values...), values[width/2], values[width/4])
	if m.Cube(dupVars, dupVals) != got {
		t.Fatal("agreeing duplicate literals changed the cube")
	}
	dupVals[len(dupVals)-1] = !dupVals[len(dupVals)-1]
	if m.Cube(dupVars, dupVals) != False {
		t.Fatal("conflicting duplicate literals must give False")
	}

	// CubeVars over the shuffled list must equal the sorted varset.
	if m.CubeVars(vars) != m.CubeVars(sortedVars) {
		t.Fatal("CubeVars order-dependent")
	}
}

// BenchmarkCubeWide measures Cube over wide reverse-ordered literal
// lists — the worst case for the former O(n²) insertion sort in
// sortedVarOrder. With sort-based ordering the per-literal cost must
// stay near-constant as width grows (no quadratic penalty).
func BenchmarkCubeWide(b *testing.B) {
	for _, width := range []int{64, 512, 4096} {
		b.Run(sizeName(width), func(b *testing.B) {
			m := New(Config{Vars: width})
			vars := make([]int, width)
			values := make([]bool, width)
			for i := range vars {
				vars[i] = width - 1 - i // reverse order: max inversions
				values[i] = i%2 == 0
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Cube(vars, values)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "w64"
	case 512:
		return "w512"
	default:
		return "w4096"
	}
}

package bdd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// BDD serialization: save and reload function graphs independent of the
// manager they were built in. Useful for caching symbolic execution
// results (PFEC predicates, port predicates) across verifier runs on
// unchanged configurations.
//
// Format (little endian):
//
//	magic "BDD1" | uint32 varCount | uint32 nodeCount | uint32 rootCount
//	nodeCount × (uint32 level, uint32 lo, uint32 hi)   — topological order
//	rootCount × uint32                                  — root indices
//
// Node indices 0 and 1 are the False/True terminals; serialized nodes
// start at index 2.

var magic = [4]byte{'B', 'D', 'D', '1'}

// Write serializes the given roots (and their shared subgraphs) to w.
func (m *Manager) Write(w io.Writer, roots ...Node) error {
	bw := bufio.NewWriter(w)
	// Collect reachable nodes in topological (children-first) order.
	index := map[Node]uint32{False: 0, True: 1}
	var order []Node
	var visit func(Node)
	visit = func(n Node) {
		if _, ok := index[n]; ok {
			return
		}
		visit(Node(m.lo[n]))
		visit(Node(m.hi[n]))
		index[n] = uint32(len(order) + 2)
		order = append(order, n)
	}
	for _, r := range roots {
		visit(r)
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(m.vars), uint32(len(order)), uint32(len(roots))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, n := range order {
		rec := []uint32{uint32(m.lvl[n]), index[Node(m.lo[n])], index[Node(m.hi[n])]}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, r := range roots {
		if err := binary.Write(bw, binary.LittleEndian, index[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes roots previously written with Write into this
// manager (hash-consing against existing nodes). The manager must have
// at least as many variables as the writer had.
func (m *Manager) Read(r io.Reader) ([]Node, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, err
	}
	if got != magic {
		return nil, fmt.Errorf("bdd: bad magic %q", got)
	}
	var varCount, nodeCount, rootCount uint32
	for _, p := range []*uint32{&varCount, &nodeCount, &rootCount} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if int(varCount) > m.vars {
		return nil, fmt.Errorf("bdd: stream has %d variables, manager only %d", varCount, m.vars)
	}
	nodes := make([]Node, nodeCount+2)
	nodes[0], nodes[1] = False, True
	for i := uint32(0); i < nodeCount; i++ {
		var lvl, lo, hi uint32
		for _, p := range []*uint32{&lvl, &lo, &hi} {
			if err := binary.Read(br, binary.LittleEndian, p); err != nil {
				return nil, err
			}
		}
		if lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("bdd: node %d references forward child", i)
		}
		if lvl >= varCount {
			return nil, fmt.Errorf("bdd: node %d has level %d out of range", i, lvl)
		}
		// Children are at strictly greater levels (reduced ordered BDD).
		loN, hiN := nodes[lo], nodes[hi]
		if m.Level(loN) <= int(lvl) || m.Level(hiN) <= int(lvl) {
			return nil, fmt.Errorf("bdd: node %d violates variable ordering", i)
		}
		nodes[i+2] = m.mk(int32(lvl), loN, hiN)
	}
	roots := make([]Node, rootCount)
	for i := range roots {
		var idx uint32
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return nil, err
		}
		if int(idx) >= len(nodes) {
			return nil, fmt.Errorf("bdd: root index %d out of range", idx)
		}
		roots[i] = nodes[idx]
	}
	return roots, nil
}

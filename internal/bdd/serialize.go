package bdd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// BDD serialization: save and reload function graphs independent of the
// manager they were built in. Useful for caching symbolic execution
// results (PFEC predicates, port predicates) across verifier runs on
// unchanged configurations.
//
// Because managers reorder dynamically, records store the stable
// VARIABLE tested by each node — not its level — and the header stamps
// the writer's full var→level map, protected by a CRC so a torn or
// permuted stamp fails closed instead of silently relabeling every node.
// A reader whose current order matches the stamp rebuilds with straight
// hash-consing; any other reader rebuilds each node as
// Ite(Var(v), hi, lo), which is order-correct under every permutation.
//
// Format (little endian):
//
//	magic "BDD2" | uint32 varCount | uint32 orderCRC
//	varCount × uint32                                — writer's var2level
//	uint32 nodeCount | uint32 rootCount
//	nodeCount × (uint32 var, uint32 lo, uint32 hi)   — children first
//	rootCount × uint32                               — root indices
//
// Node indices 0 and 1 are the False/True terminals; serialized nodes
// start at index 2.

var magic = [4]byte{'B', 'D', 'D', '2'}

// orderCRC checksums a var→level stamp (little-endian word stream).
func orderCRC(levels []uint32) uint32 {
	buf := make([]byte, 4*len(levels))
	for i, l := range levels {
		binary.LittleEndian.PutUint32(buf[4*i:], l)
	}
	return crc32.ChecksumIEEE(buf)
}

// Write serializes the given roots (and their shared subgraphs) to w,
// stamped with the manager's current variable order.
func (m *Manager) Write(w io.Writer, roots ...Node) error {
	bw := bufio.NewWriter(w)
	// Collect reachable nodes in topological (children-first) order.
	index := map[Node]uint32{False: 0, True: 1}
	var order []Node
	var visit func(Node)
	visit = func(n Node) {
		if _, ok := index[n]; ok {
			return
		}
		visit(Node(m.lo[n]))
		visit(Node(m.hi[n]))
		index[n] = uint32(len(order) + 2)
		order = append(order, n)
	}
	for _, r := range roots {
		visit(r)
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	stamp := make([]uint32, m.vars)
	for v, l := range m.var2level {
		stamp[v] = uint32(l)
	}
	hdr := []uint32{uint32(m.vars), orderCRC(stamp)}
	hdr = append(hdr, stamp...)
	hdr = append(hdr, uint32(len(order)), uint32(len(roots)))
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, n := range order {
		rec := []uint32{uint32(m.level2var[m.lvl[n]]), index[Node(m.lo[n])], index[Node(m.hi[n])]}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, r := range roots {
		if err := binary.Write(bw, binary.LittleEndian, index[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes roots previously written with Write into this
// manager (hash-consing against existing nodes). The manager must have
// at least as many variables as the writer had; the writer's variable
// order may differ from the reader's, in which case each node is
// rebuilt by Ite at the cost of a possible blowup under the new order.
// Every structural invariant — stamp bijection and checksum, child
// back-references, child monotonicity in the writer's order — is
// validated, so corrupt streams fail instead of decoding garbage.
func (m *Manager) Read(r io.Reader) ([]Node, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, err
	}
	if got != magic {
		return nil, fmt.Errorf("bdd: bad magic %q", got)
	}
	var varCount, wantCRC uint32
	for _, p := range []*uint32{&varCount, &wantCRC} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if int(varCount) > m.vars {
		return nil, fmt.Errorf("bdd: stream has %d variables, manager only %d", varCount, m.vars)
	}
	stamp := make([]uint32, varCount)
	for i := range stamp {
		if err := binary.Read(br, binary.LittleEndian, &stamp[i]); err != nil {
			return nil, err
		}
	}
	if crc := orderCRC(stamp); crc != wantCRC {
		return nil, fmt.Errorf("bdd: level-map checksum mismatch (stamp %08x, header %08x)", crc, wantCRC)
	}
	// The stamp must be a bijection var→level; anything else scrambles
	// the child-order validation below and the Ite rebuild.
	seen := make([]bool, varCount)
	for v, l := range stamp {
		if l >= varCount || seen[l] {
			return nil, fmt.Errorf("bdd: level map is not a permutation (var %d → level %d)", v, l)
		}
		seen[l] = true
	}
	// Fast path: the reader's current order matches the writer's stamp
	// exactly, so each record hash-conses straight at its level.
	sameOrder := int(varCount) == m.vars
	if sameOrder {
		for v, l := range stamp {
			if m.var2level[v] != int32(l) {
				sameOrder = false
				break
			}
		}
	}
	var nodeCount, rootCount uint32
	for _, p := range []*uint32{&nodeCount, &rootCount} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	nodes := make([]Node, nodeCount+2)
	recLevel := make([]uint32, nodeCount+2) // writer level per record
	nodes[0], nodes[1] = False, True
	recLevel[0], recLevel[1] = uint32(terminalLevel), uint32(terminalLevel)
	for i := uint32(0); i < nodeCount; i++ {
		var vr, lo, hi uint32
		for _, p := range []*uint32{&vr, &lo, &hi} {
			if err := binary.Read(br, binary.LittleEndian, p); err != nil {
				return nil, err
			}
		}
		if lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("bdd: node %d references forward child", i)
		}
		if vr >= varCount {
			return nil, fmt.Errorf("bdd: node %d has variable %d out of range", i, vr)
		}
		if lo == hi {
			return nil, fmt.Errorf("bdd: node %d is unreduced (lo == hi)", i)
		}
		// Children sit at strictly greater levels in the WRITER's order
		// (reduced ordered BDD); a permuted stamp that survives the CRC
		// by construction cannot also satisfy this for every record.
		wl := stamp[vr]
		if recLevel[lo] <= wl || recLevel[hi] <= wl {
			return nil, fmt.Errorf("bdd: node %d violates the stamped variable ordering", i)
		}
		recLevel[i+2] = wl
		if sameOrder {
			nodes[i+2] = m.mk(m.var2level[vr], nodes[lo], nodes[hi])
		} else {
			nodes[i+2] = m.Ite(m.Var(int(vr)), nodes[hi], nodes[lo])
		}
	}
	roots := make([]Node, rootCount)
	for i := range roots {
		var idx uint32
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return nil, err
		}
		if int(idx) >= len(nodes) {
			return nil, fmt.Errorf("bdd: root index %d out of range", idx)
		}
		roots[i] = nodes[idx]
	}
	return roots, nil
}

package bdd

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
)

// interleavedPairs builds f = OR over i of (a_i AND b_i) with the a
// variables declared first (vars 0..n-1) and the b variables after
// (vars n..2n-1) — the textbook order for which the BDD is exponential,
// while the interleaved order a_0 b_0 a_1 b_1 … is linear (2n decision
// nodes).
func interleavedPairs(m *Manager, n int) Node {
	f := False
	for i := 0; i < n; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(n+i)))
	}
	return f
}

func TestSiftChainReachesOptimal(t *testing.T) {
	const pairs = 7
	m := New(Config{Vars: 2 * pairs})
	f := m.Ref(interleavedPairs(m, pairs))
	badSize := m.NodeCount(f)
	if badSize < 1<<pairs {
		t.Fatalf("pre-sift size %d, expected exponential (≥ %d)", badSize, 1<<pairs)
	}
	m.Reorder()
	if got := m.NodeCount(f); got != 2*pairs {
		t.Fatalf("post-sift size %d, want known optimum %d", got, 2*pairs)
	}
	// The optimal order interleaves each pair adjacently.
	for i := 0; i < pairs; i++ {
		la, lb := m.LevelOfVar(i), m.LevelOfVar(pairs+i)
		if la+1 != lb {
			t.Fatalf("pair %d not adjacent after sift: a at level %d, b at level %d", i, la, lb)
		}
	}
	if m.Statistics().Reorders != 1 {
		t.Fatalf("Reorders = %d, want 1", m.Statistics().Reorders)
	}
	// var2level must stay a bijection.
	seen := make([]bool, m.NumVars())
	for v := 0; v < m.NumVars(); v++ {
		l := m.LevelOfVar(v)
		if l < 0 || l >= m.NumVars() || seen[l] {
			t.Fatalf("var2level is not a permutation at var %d → level %d", v, l)
		}
		seen[l] = true
		if m.VarAtLevel(l) != v {
			t.Fatalf("level2var inverse broken at var %d", v)
		}
	}
}

func TestReorderPreservesSemantics(t *testing.T) {
	const vars = 10
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := New(Config{Vars: vars})
		var roots []Node
		var evals []func([]bool) bool
		for i := 0; i < 6; i++ {
			n, eval := buildRandom(m, r, 5)
			roots = append(roots, m.Ref(n))
			evals = append(evals, eval)
		}
		counts := make([]float64, len(roots))
		for i, n := range roots {
			counts[i] = m.SatCount(n, vars)
		}
		m.Reorder()
		for bits := 0; bits < 1<<vars; bits++ {
			a := make([]bool, vars)
			for i := range a {
				a[i] = bits>>i&1 == 1
			}
			for i, n := range roots {
				if m.Eval(n, func(v int) bool { return a[v] }) != evals[i](a) {
					t.Fatalf("trial %d root %d changed semantics after reorder", trial, i)
				}
			}
		}
		for i, n := range roots {
			if got := m.SatCount(n, vars); got != counts[i] {
				t.Fatalf("trial %d root %d SatCount %g after reorder, want %g", trial, i, got, counts[i])
			}
		}
	}
}

func TestReorderedOpsStayConsistent(t *testing.T) {
	// Var-facing operations built AFTER a reorder must agree with the
	// pre-reorder function: Var/Cube/Restrict/Support/AtMostKFalse all
	// translate through the moved level map.
	const pairs = 5
	const vars = 2 * pairs
	m := New(Config{Vars: vars})
	f := m.Ref(interleavedPairs(m, pairs))
	m.Reorder()
	if m.OrderIsIdentity() {
		t.Fatal("reorder should have moved variables")
	}
	g := m.Ref(interleavedPairs(m, pairs))
	if f != g {
		t.Fatal("rebuilding the same function after reorder must hash-cons to the same node")
	}
	sup := m.Support(f)
	if len(sup) != vars {
		t.Fatalf("Support covers %d vars, want %d", len(sup), vars)
	}
	for i, v := range sup {
		if v != i {
			t.Fatalf("Support[%d] = %d, want %d (variable identity, not level)", i, v, i)
		}
	}
	// Restricting a_0=1, b_0=1 makes f true.
	if got := m.Restrict(m.Restrict(f, 0, true), pairs, true); got != True {
		t.Fatalf("Restrict(a0=1,b0=1) = %v, want True", got)
	}
	// A cube over shuffled variables evaluates correctly.
	cubeVars := []int{3, 0, pairs + 2, pairs}
	cubeVals := []bool{true, false, true, true}
	c := m.Cube(cubeVars, cubeVals)
	ok := m.Eval(c, func(v int) bool {
		for i, cv := range cubeVars {
			if cv == v {
				return cubeVals[i]
			}
		}
		return true
	})
	if !ok {
		t.Fatal("cube built after reorder rejects its own assignment")
	}
	all := make([]int, vars)
	for i := range all {
		all[i] = i
	}
	// at-most-1-false over every var: count of satisfying assignments is
	// 1 + vars (all-true plus one per single flip).
	amk := m.AtMostKFalse(all, 1)
	if got, want := m.SatCount(amk, vars), float64(1+vars); got != want {
		t.Fatalf("AtMostKFalse(1) SatCount = %g, want %g", got, want)
	}
}

func TestReorderBandsRespected(t *testing.T) {
	const header = 4
	const links = 8
	m := New(Config{Vars: header + links})
	m.SetReorderBands([]int{header})
	// Pair header var i with link var i so unconstrained sifting would
	// interleave the bands.
	f := False
	for i := 0; i < header; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(header+i)))
	}
	m.Ref(f)
	m.Reorder()
	for v := 0; v < header; v++ {
		if m.LevelOfVar(v) >= header {
			t.Fatalf("header var %d crossed the band to level %d", v, m.LevelOfVar(v))
		}
	}
	for v := header; v < header+links; v++ {
		if m.LevelOfVar(v) < header {
			t.Fatalf("link var %d crossed the band to level %d", v, m.LevelOfVar(v))
		}
	}
}

func TestReorderTriggersFromGCPath(t *testing.T) {
	const pairs = 8
	m := New(Config{Vars: 2 * pairs, Reorder: ReorderConfig{Threshold: 64}})
	if !m.ReorderEnabled() {
		t.Fatal("reorder should be armed")
	}
	f := m.Ref(interleavedPairs(m, pairs))
	if m.MaybeGC(0) < 0 {
		t.Fatal("unreachable")
	}
	st := m.Statistics()
	if st.Reorders == 0 {
		t.Fatal("MaybeGC above the threshold should have reordered")
	}
	if st.LastReorderAfter >= st.LastReorderBefore {
		t.Fatalf("reorder did not shrink: %d → %d", st.LastReorderBefore, st.LastReorderAfter)
	}
	// Sifting is a greedy local search; near-optimal is enough here (the
	// exact optimum is pinned by TestSiftChainReachesOptimal).
	if got := m.NodeCount(f); got > 3*pairs {
		t.Fatalf("post-trigger size %d, want near-optimal (≤ %d)", got, 3*pairs)
	}
	// The trigger rises after a pass so steady growth is not re-sifted
	// on every collection.
	want := 2 * m.nodes
	if want < 64 {
		want = 64
	}
	if m.reorderAt != want {
		t.Fatalf("reorderAt = %d after pass, want %d (nodes %d)", m.reorderAt, want, m.nodes)
	}
}

func TestSerializeAcrossOrders(t *testing.T) {
	const pairs = 6
	const vars = 2 * pairs
	m := New(Config{Vars: vars})
	f := m.Ref(interleavedPairs(m, pairs))
	m.Reorder()
	var buf bytes.Buffer
	if err := m.Write(&buf, f); err != nil {
		t.Fatal(err)
	}

	// Slow path: a fresh manager still in declaration order.
	m2 := New(Config{Vars: vars})
	got, err := m2.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Fast path: a manager sifted into the same order.
	m3 := New(Config{Vars: vars})
	g3 := m3.Ref(interleavedPairs(m3, pairs))
	m3.Reorder()
	got3, err := m3.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got3[0] != g3 {
		t.Fatal("same-order reload must hash-cons to the existing node")
	}
	for bits := 0; bits < 1<<vars; bits++ {
		a := make([]bool, vars)
		for i := range a {
			a[i] = bits>>i&1 == 1
		}
		assign := func(v int) bool { return a[v] }
		want := m.Eval(f, assign)
		if m2.Eval(got[0], assign) != want {
			t.Fatal("cross-order decode changed semantics")
		}
		if m3.Eval(got3[0], assign) != want {
			t.Fatal("same-order decode changed semantics")
		}
	}
}

// validStream serializes a chain function over every variable, giving
// corruption tests a stream where any stamp permutation that touches a
// used variable must trip the ordering check.
func validStream(t *testing.T, vars int) []byte {
	t.Helper()
	m := New(Config{Vars: vars})
	f := True
	for v := 0; v < vars; v++ {
		f = m.And(f, m.Var(v))
	}
	var buf bytes.Buffer
	if err := m.Write(&buf, m.Ref(f)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadFailsClosedOnTornStream(t *testing.T) {
	data := validStream(t, 8)
	m := New(Config{Vars: 8})
	for cut := 0; cut < len(data); cut++ {
		if _, err := m.Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("torn stream of %d/%d bytes decoded without error", cut, len(data))
		}
	}
}

func TestReadFailsClosedOnCorruptStamp(t *testing.T) {
	data := validStream(t, 8)
	// The stamp words start after magic(4) + varCount(4) + crc(4).
	for i := 0; i < 8; i++ {
		mut := append([]byte(nil), data...)
		mut[12+4*i] ^= 0x5a
		m := New(Config{Vars: 8})
		if _, err := m.Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("stamp word %d corruption decoded without error", i)
		}
	}
}

func TestReadFailsClosedOnPermutedStamp(t *testing.T) {
	// Swap two stamp levels AND fix the checksum: the forged stamp
	// passes the CRC but the per-record writer-order monotonicity check
	// must reject it.
	data := append([]byte(nil), validStream(t, 8)...)
	l2 := binary.LittleEndian.Uint32(data[12+4*2:])
	l5 := binary.LittleEndian.Uint32(data[12+4*5:])
	binary.LittleEndian.PutUint32(data[12+4*2:], l5)
	binary.LittleEndian.PutUint32(data[12+4*5:], l2)
	binary.LittleEndian.PutUint32(data[8:], crc32.ChecksumIEEE(data[12:12+4*8]))
	m := New(Config{Vars: 8})
	if _, err := m.Read(bytes.NewReader(data)); err == nil {
		t.Fatal("permuted level map decoded without error")
	}
}

func TestReadRejectsNonPermutationStamp(t *testing.T) {
	data := append([]byte(nil), validStream(t, 8)...)
	// Duplicate a level (var 0 and var 1 both at level 1) and fix the CRC.
	l1 := binary.LittleEndian.Uint32(data[12+4*1:])
	binary.LittleEndian.PutUint32(data[12:], l1)
	binary.LittleEndian.PutUint32(data[8:], crc32.ChecksumIEEE(data[12:12+4*8]))
	m := New(Config{Vars: 8})
	if _, err := m.Read(bytes.NewReader(data)); err == nil {
		t.Fatal("non-bijective level map decoded without error")
	}
}

func FuzzReadBDD2(f *testing.F) {
	seedVars := []int{4, 8}
	for _, vars := range seedVars {
		m := New(Config{Vars: vars})
		r := rand.New(rand.NewSource(int64(vars)))
		var roots []Node
		for i := 0; i < 3; i++ {
			n, _ := buildRandom(m, r, 4)
			roots = append(roots, m.Ref(n))
		}
		var buf bytes.Buffer
		if err := m.Write(&buf, roots...); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A reordered writer too.
		m.Reorder()
		buf.Reset()
		if err := m.Write(&buf, roots...); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("BDD2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := New(Config{Vars: 8, NodeLimit: 1 << 16})
		roots, err := m.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be structurally valid nodes.
		for _, n := range roots {
			if n < 0 || int(n) >= len(m.lvl) {
				t.Fatalf("decoded root %d out of range", n)
			}
			m.NodeCount(n)
		}
	})
}

func BenchmarkReorderFatPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := New(Config{Vars: 32})
		f := m.Ref(interleavedPairs(m, 16))
		_ = f
		b.StartTimer()
		m.Reorder()
	}
}

package bdd

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	m := New(Config{Vars: 16})
	r := rand.New(rand.NewSource(21))
	var roots []Node
	var evals []func([]bool) bool
	for i := 0; i < 10; i++ {
		n, eval := buildRandom(m, r, 5)
		roots = append(roots, n)
		evals = append(evals, eval)
	}
	roots = append(roots, True, False)

	var buf bytes.Buffer
	if err := m.Write(&buf, roots...); err != nil {
		t.Fatal(err)
	}

	// Read into a FRESH manager and compare semantics exhaustively on
	// random assignments.
	m2 := New(Config{Vars: 16})
	got, err := m2.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(roots) {
		t.Fatalf("root count %d, want %d", len(got), len(roots))
	}
	if got[len(got)-2] != True || got[len(got)-1] != False {
		t.Fatal("terminals must round-trip")
	}
	for trial := 0; trial < 200; trial++ {
		a := make([]bool, 16)
		for i := range a {
			a[i] = r.Intn(2) == 0
		}
		for i, eval := range evals {
			if m2.Eval(got[i], func(v int) bool { return a[v] }) != eval(a) {
				t.Fatalf("root %d semantics changed", i)
			}
		}
	}
}

func TestSerializeIntoSameManager(t *testing.T) {
	// Reading back into the same manager must return the IDENTICAL
	// nodes (hash consing).
	m := New(Config{Vars: 8})
	f := m.AndN(m.Var(0), m.Or(m.Var(3), m.NVar(5)))
	var buf bytes.Buffer
	if err := m.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != f {
		t.Fatal("reload into the same manager should hash-cons to the same node")
	}
}

func TestSerializeSharing(t *testing.T) {
	// Shared subgraphs are written once: two roots sharing structure
	// must not double the stream size.
	m := New(Config{Vars: 32})
	// BDD sharing is suffix sharing: base spans variables 1..19, and
	// r2 = x0 ∧ base hangs base directly below a single x0 node.
	base := True
	for v := 1; v < 20; v++ {
		base = m.And(base, m.Var(v))
	}
	r2 := m.And(m.Var(0), base)
	var one, two bytes.Buffer
	if err := m.Write(&one, r2); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(&two, base, r2); err != nil {
		t.Fatal(err)
	}
	if two.Len() > one.Len()+64 {
		t.Fatalf("sharing lost: %d vs %d bytes", two.Len(), one.Len())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	m := New(Config{Vars: 4})
	cases := [][]byte{
		{},
		[]byte("NOPE"),
		append([]byte("BDD1"), make([]byte, 4)...), // truncated header
	}
	for i, c := range cases {
		if _, err := m.Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Stream with more variables than the manager.
	big := New(Config{Vars: 64})
	var buf bytes.Buffer
	if err := big.Write(&buf, big.Var(60)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("stream with too many variables accepted")
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/topology"
)

// TransitWAN generates a policy-rich inter-domain network following the
// Gao–Rexford rules: ASes form a provider/customer hierarchy with some
// peer links, and every BGP session carries the standard valley-free
// policies — customer routes preferred over peer routes over provider
// routes (local-pref), and peer/provider-learned routes never exported
// to other peers or providers (community tagging + export filters).
// Gao–Rexford networks are guaranteed convergent, which the engine's
// tests rely on; they exercise communities, local-pref, and export
// filtering at scale, unlike the policy-free WAN generators.
//
// tiers controls the depth of the hierarchy; width the ASes per tier.
func TransitWAN(tiers, width int, seed int64) *config.Network {
	const (
		commCustomer = 100
		commPeer     = 200
		commProvider = 300
	)
	r := rand.New(rand.NewSource(seed))
	topo := topology.NewTopology()
	ids := make([][]topology.RouterID, tiers)
	for tier := 0; tier < tiers; tier++ {
		ids[tier] = make([]topology.RouterID, width)
		for i := 0; i < width; i++ {
			ids[tier][i] = topo.AddRouter(fmt.Sprintf("t%d-as%d", tier, i))
		}
	}
	// relationship[link] from the perspective of link.A: "provider"
	// means A is the provider of B.
	type rel int
	const (
		providerOf rel = iota // A provides transit to B
		peerWith
	)
	linkRel := make(map[topology.LinkID]rel)
	// Provider links: each AS below tier 0 has 1-2 providers in the
	// tier above.
	for tier := 1; tier < tiers; tier++ {
		for i := 0; i < width; i++ {
			nProv := 1 + r.Intn(2)
			perm := r.Perm(width)
			for p := 0; p < nProv && p < width; p++ {
				lid := topo.AddLink(ids[tier-1][perm[p]], ids[tier][i])
				linkRel[lid] = providerOf
			}
		}
	}
	// Peer links within each tier.
	for tier := 0; tier < tiers; tier++ {
		for i := 0; i+1 < width; i += 2 {
			lid := topo.AddLink(ids[tier][i], ids[tier][i+1])
			linkRel[lid] = peerWith
		}
	}

	net := config.NewNetwork(topo)
	asn := func(id topology.RouterID) uint32 { return uint32(65000 + int(id)) }
	for i := 0; i < topo.NumRouters(); i++ {
		id := topology.RouterID(i)
		rc := net.Router(id)
		rc.BGP = &config.BGP{ASN: asn(id),
			ImportPolicy: map[string]string{}, ExportPolicy: map[string]string{}}
		rc.BGP.Networks = []route.Prefix{routerPrefix(i)}
	}
	// Gao–Rexford route maps per session direction.
	addMaps := func(id topology.RouterID) {
		rc := net.Router(id)
		rc.RouteMaps["FROM-CUST"] = &config.RouteMap{Clauses: []*config.Clause{
			{Seq: 10, Action: config.Permit, SetLocalPref: 200, AddCommunity: commCustomer},
		}}
		rc.RouteMaps["FROM-PEER"] = &config.RouteMap{Clauses: []*config.Clause{
			{Seq: 10, Action: config.Permit, SetLocalPref: 150, AddCommunity: commPeer},
		}}
		rc.RouteMaps["FROM-PROV"] = &config.RouteMap{Clauses: []*config.Clause{
			{Seq: 10, Action: config.Permit, SetLocalPref: 100, AddCommunity: commProvider},
		}}
		// To customers: everything. To peers and providers: only
		// customer routes and own originations (no valley transit).
		rc.RouteMaps["TO-PEER-OR-PROV"] = &config.RouteMap{Clauses: []*config.Clause{
			{Seq: 10, Action: config.Deny, MatchCommunity: commPeer},
			{Seq: 20, Action: config.Deny, MatchCommunity: commProvider},
			{Seq: 30, Action: config.Permit},
		}}
	}
	for i := 0; i < topo.NumRouters(); i++ {
		addMaps(topology.RouterID(i))
	}
	for lid, relation := range linkRel {
		l := topo.Link(lid)
		a, b := l.A, l.B
		an, bn := topo.Name(a), topo.Name(b)
		ac, bc := net.Router(a), net.Router(b)
		switch relation {
		case providerOf: // a provides transit to b: b is a's customer
			ac.BGP.ImportPolicy[bn] = "FROM-CUST"
			bc.BGP.ImportPolicy[an] = "FROM-PROV"
			bc.BGP.ExportPolicy[an] = "TO-PEER-OR-PROV"
		case peerWith:
			ac.BGP.ImportPolicy[bn] = "FROM-PEER"
			bc.BGP.ImportPolicy[an] = "FROM-PEER"
			ac.BGP.ExportPolicy[bn] = "TO-PEER-OR-PROV"
			bc.BGP.ExportPolicy[an] = "TO-PEER-OR-PROV"
		}
	}
	return net
}

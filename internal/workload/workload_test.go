package workload

import (
	"testing"

	"sre/internal/config"
	"sre/internal/topology"
)

func TestFigure1Shape(t *testing.T) {
	net := Figure1()
	if net.Topology.NumRouters() != 3 || net.Topology.NumLinks() != 3 {
		t.Fatal("figure 1 shape")
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticWANDeterministic(t *testing.T) {
	a := SyntheticWAN("x", 20, 30, BGP, 7)
	b := SyntheticWAN("x", 20, 30, BGP, 7)
	if config.Format(a) != config.Format(b) {
		t.Error("same seed must generate identical networks")
	}
	c := SyntheticWAN("x", 20, 30, BGP, 8)
	if config.Format(a) == config.Format(c) {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticWANConnected(t *testing.T) {
	net := SyntheticWAN("x", 25, 40, OSPF, 3)
	topo := net.Topology
	for i := 1; i < topo.NumRouters(); i++ {
		if !topo.Connected(0, topology.RouterID(i), nil) {
			t.Fatalf("router %d disconnected", i)
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	net := FatTree(4, OSPF)
	topo := net.Topology
	if topo.NumLinks() != 32 { // k³/2 = 32 for k=4
		t.Errorf("links = %d, want 32", topo.NumLinks())
	}
	// Every core router has degree k (one link per pod).
	for i := 0; i < topo.NumRouters(); i++ {
		id := topology.RouterID(i)
		deg := len(topo.Router(id).Links)
		switch topo.Name(id)[0] {
		case 'c':
			if deg != 4 {
				t.Errorf("core %s degree %d, want 4", topo.Name(id), deg)
			}
		case 'a':
			if deg != 4 { // k/2 down + k/2 up
				t.Errorf("agg %s degree %d, want 4", topo.Name(id), deg)
			}
		case 'e':
			if deg != 2 { // k/2 up
				t.Errorf("edge %s degree %d, want 2", topo.Name(id), deg)
			}
		}
	}
	if FatTreeArity(20) != 4 || FatTreeArity(80) != 8 || FatTreeArity(125) != 10 {
		t.Error("FatTreeArity")
	}
}

func TestBGPOSPFVariant(t *testing.T) {
	net := SyntheticWAN("dual", 10, 15, BGPOSPF, 1)
	for i := 0; i < net.Topology.NumRouters(); i++ {
		rc := net.Router(topology.RouterID(i))
		if rc.BGP == nil || rc.OSPF == nil {
			t.Fatal("BGPOSPF routers must run both protocols")
		}
		if rc.BGP.ASN != 65000 {
			t.Fatal("BGPOSPF is a single AS")
		}
	}
}

func TestCampusDeterministicPerSnapshot(t *testing.T) {
	a := Campus(CampusOptions{VLANs: 10, Snapshot: 3})
	b := Campus(CampusOptions{VLANs: 10, Snapshot: 3})
	if config.Format(a) != config.Format(b) {
		t.Error("same snapshot must be identical")
	}
	c := Campus(CampusOptions{VLANs: 10, Snapshot: 4})
	if config.Format(a) == config.Format(c) {
		t.Error("snapshots should differ")
	}
}

func TestTransitWANValidAndPolicied(t *testing.T) {
	net := TransitWAN(3, 4, 1)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	policies := 0
	for i := 0; i < net.Topology.NumRouters(); i++ {
		rc := net.Router(topology.RouterID(i))
		policies += len(rc.BGP.ImportPolicy) + len(rc.BGP.ExportPolicy)
	}
	if policies == 0 {
		t.Fatal("transit WAN should carry Gao-Rexford policies")
	}
	// Connected: every AS reaches tier 0 through providers.
	topo := net.Topology
	for i := 1; i < topo.NumRouters(); i++ {
		if !topo.Connected(0, topology.RouterID(i), nil) {
			// Tier-0 peers chain them; at worst check against any
			// tier-0 member.
			ok := false
			for j := 0; j < 4; j++ {
				if topo.Connected(topology.RouterID(j), topology.RouterID(i), nil) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("router %d unreachable from tier 0", i)
			}
		}
	}
}

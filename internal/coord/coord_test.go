package coord

// The coordinator tests re-exec the test binary as the worker: spawn
// sets SRE_COORD_WORKER=1 in the child environment, and TestMain
// diverts such processes straight into WorkerMain before the testing
// framework parses anything. Fault plans then drive every supervision
// path deterministically.

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"sre/internal/analysis"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/store"
)

func TestMain(m *testing.M) {
	if os.Getenv("SRE_COORD_WORKER") == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// testNet is a 4-router BGP ring with a chord; every router originates
// one prefix, giving four small independent tasks.
const testNetText = `
topology
  router A
  router B
  router C
  router D
  link A B
  link B C
  link C D
  link D A
  link A C
end
router A
  bgp 65001
    network 10.0.0.0/8
end
router B
  bgp 65002
    network 20.0.0.0/8
end
router C
  bgp 65003
    network 30.0.0.0/8
end
router D
  bgp 65004
    network 40.0.0.0/8
end
`

func testNet(t *testing.T) (*config.Network, []route.Prefix) {
	t.Helper()
	net, err := config.ParseString(testNetText)
	if err != nil {
		t.Fatal(err)
	}
	return net, net.AllPrefixes()
}

func testOpts() src.Options {
	return src.Options{PruneK: 2, Parallelism: 1}
}

// sweep condenses a Partitioned into per-prefix reachability tolerances
// from router 0 — the query-level fingerprint determinism tests compare.
func sweep(t *testing.T, part *analysis.Partitioned) map[string]int {
	t.Helper()
	res := map[string]int{}
	for _, o := range part.Outcomes() {
		if o.Err != nil {
			res[o.Prefix.String()] = -1000
			continue
		}
		k := analysis.InfiniteTolerance
		for _, pipe := range part.PipelinesFor(o.Prefix) {
			hdr := pipe.OwnedHeaders(o.Prefix)
			prop := pipe.ReachBDD(0, pipe.OriginSet(o.Prefix), hdr)
			if tol := pipe.MinTolerance(prop, hdr); tol < k {
				k = tol
			}
		}
		res[o.Prefix.String()] = k
	}
	return res
}

// normalize strips the crash bookkeeping a faulty multi-process run is
// allowed to differ in: WorkerCrashes, and — for prefixes that fell
// back in-process — the quarantine markers and the worker-crash rung.
// Everything else (errors, real degradation rungs, budgets) must match
// the in-process baseline exactly.
func normalize(outs []analysis.PrefixOutcome) []analysis.PrefixOutcome {
	norm := make([]analysis.PrefixOutcome, len(outs))
	for i, o := range outs {
		o.WorkerCrashes = 0
		if len(o.Rungs) > 0 && o.Rungs[0] == analysis.RungWorkerCrash {
			o.Rungs = o.Rungs[1:]
			o.Quarantined = false
			o.Degraded = len(o.Rungs) > 0
		}
		if len(o.Rungs) == 0 {
			o.Rungs = nil
		}
		norm[i] = o
	}
	return norm
}

func coordRun(t *testing.T, net *config.Network, prefixes []route.Prefix, opts Options) *analysis.Partitioned {
	t.Helper()
	part, err := Run(net, prefixes, opts)
	if err != nil {
		t.Fatalf("coord.Run: %v", err)
	}
	return part
}

// TestCoordMatchesInProcess pins the tentpole contract: a fault-free
// multi-process run at 1, 2, and 4 workers returns outcomes and query
// results identical to the in-process sequential baseline.
func TestCoordMatchesInProcess(t *testing.T) {
	net, prefixes := testNet(t)
	base, err := analysis.RunPartitioned(net, testOpts(), prefixes, analysis.LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()
	baseOuts, baseSweep := base.Outcomes(), sweep(t, base)
	if len(baseOuts) != 4 {
		t.Fatalf("baseline has %d outcomes, want 4", len(baseOuts))
	}

	for _, w := range []int{1, 2, 4} {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			part := coordRun(t, net, prefixes, Options{Workers: w, Verify: testOpts(), Resilient: true})
			defer part.Release()
			if got := part.Outcomes(); !reflect.DeepEqual(got, baseOuts) {
				t.Errorf("outcomes diverge\n got %+v\nwant %+v", got, baseOuts)
			}
			if got := sweep(t, part); !reflect.DeepEqual(got, baseSweep) {
				t.Errorf("tolerance sweep diverges\n got %v\nwant %v", got, baseSweep)
			}
		})
	}
}

// TestCoordRetryConverges injects one fault of each recoverable flavor
// across distinct tasks; every retried attempt is fault-free, so the
// run must converge to the baseline results with only WorkerCrashes
// attesting to the turbulence.
func TestCoordRetryConverges(t *testing.T) {
	net, prefixes := testNet(t)
	base, err := analysis.RunPartitioned(net, testOpts(), prefixes, analysis.LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()

	part := coordRun(t, net, prefixes, Options{
		Workers:   2,
		Verify:    testOpts(),
		Resilient: true,
		FaultPlan: "crash@0;corrupt@1;exit@2",
	})
	defer part.Release()

	if got, want := normalize(part.Outcomes()), normalize(base.Outcomes()); !reflect.DeepEqual(got, want) {
		t.Errorf("normalized outcomes diverge\n got %+v\nwant %+v", got, want)
	}
	if got, want := sweep(t, part), sweep(t, base); !reflect.DeepEqual(got, want) {
		t.Errorf("tolerance sweep diverges\n got %v\nwant %v", got, want)
	}
	crashed := 0
	for _, o := range part.Outcomes() {
		crashed += o.WorkerCrashes
	}
	if crashed < 3 {
		t.Errorf("total WorkerCrashes = %d, want >= 3 (one per injected fault)", crashed)
	}
}

// TestCoordStallDetected wedges a worker (muted heartbeats, hung task):
// the coordinator must notice via heartbeat grace, kill it, retry, and
// converge.
func TestCoordStallDetected(t *testing.T) {
	net, prefixes := testNet(t)
	part := coordRun(t, net, prefixes, Options{
		Workers:           2,
		Verify:            testOpts(),
		Resilient:         true,
		HeartbeatInterval: 10 * time.Millisecond, // grace defaults to 8x = 80ms
		FaultPlan:         "stall@0",
	})
	defer part.Release()
	stalled := 0
	for _, o := range part.Outcomes() {
		if o.Err != nil {
			t.Errorf("prefix %s failed: %v", o.Prefix, o.Err)
		}
		stalled += o.WorkerCrashes
	}
	if stalled == 0 {
		t.Error("no outcome records the stalled attempt")
	}
}

// TestCoordTaskDeadline isolates the per-task deadline: the heartbeat
// grace is parked far away, so only TaskTimeout can catch the hung
// task.
func TestCoordTaskDeadline(t *testing.T) {
	net, prefixes := testNet(t)
	part := coordRun(t, net, prefixes, Options{
		Workers:           2,
		Verify:            testOpts(),
		Resilient:         true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatGrace:    10 * time.Minute,
		TaskTimeout:       300 * time.Millisecond,
		FaultPlan:         "stall@1",
	})
	defer part.Release()
	for _, o := range part.Outcomes() {
		if o.Err != nil {
			t.Errorf("prefix %s failed: %v", o.Prefix, o.Err)
		}
	}
}

// TestCoordQuarantineFallback crashes one task on every allowed attempt:
// after MaxAttempts the prefix must fall back to exact in-process
// verification, marked with the worker-crash rung, while its query
// results still match the baseline.
func TestCoordQuarantineFallback(t *testing.T) {
	net, prefixes := testNet(t)
	base, err := analysis.RunPartitioned(net, testOpts(), prefixes, analysis.LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()

	part := coordRun(t, net, prefixes, Options{
		Workers:     2,
		Verify:      testOpts(),
		Resilient:   true,
		MaxAttempts: 3,
		FaultPlan:   "crash@0;crash@0#1;crash@0#2",
	})
	defer part.Release()

	quarantined := 0
	for _, o := range part.Outcomes() {
		if o.Err != nil {
			t.Errorf("prefix %s failed: %v", o.Prefix, o.Err)
		}
		if len(o.Rungs) > 0 && o.Rungs[0] == analysis.RungWorkerCrash {
			quarantined++
			if !o.Quarantined || !o.Degraded {
				t.Errorf("crash-quarantined prefix %s: Quarantined=%v Degraded=%v, want both true", o.Prefix, o.Quarantined, o.Degraded)
			}
			if o.WorkerCrashes != 3 {
				t.Errorf("crash-quarantined prefix %s: WorkerCrashes=%d, want 3", o.Prefix, o.WorkerCrashes)
			}
		}
	}
	if quarantined != 1 {
		t.Errorf("%d prefixes carry the worker-crash rung, want exactly 1", quarantined)
	}
	// The fallback verified with the original options: results are exact.
	if got, want := sweep(t, part), sweep(t, base); !reflect.DeepEqual(got, want) {
		t.Errorf("tolerance sweep diverges after quarantine fallback\n got %v\nwant %v", got, want)
	}
}

// TestCoordKillNeverFailsResilient is the issue's acceptance bullet: a
// worker SIGKILLed mid-task (no exit handlers, no flushed buffers) must
// never fail a resilient run.
func TestCoordKillNeverFailsResilient(t *testing.T) {
	net, prefixes := testNet(t)
	part := coordRun(t, net, prefixes, Options{
		Workers:   2,
		Verify:    testOpts(),
		Resilient: true,
		FaultPlan: "kill@0",
	})
	defer part.Release()
	outs := part.Outcomes()
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(outs))
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("prefix %s failed after SIGKILL retry: %v", o.Prefix, o.Err)
		}
	}
}

// TestCoordFleetLoss exhausts one slot's respawn budget on a
// single-worker fleet: with no workers left, every unfinished prefix
// must quarantine to the in-process fallback and the run still
// completes.
func TestCoordFleetLoss(t *testing.T) {
	net, prefixes := testNet(t)
	part := coordRun(t, net, prefixes, Options{
		Workers:     1,
		Verify:      testOpts(),
		Resilient:   true,
		MaxAttempts: 10, // never quarantine via attempts — only via fleet loss
		MaxRespawns: 2,
		FaultPlan:   "crash@0;crash@0#1;crash@0#2;crash@0#3",
	})
	defer part.Release()
	outs := part.Outcomes()
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(outs))
	}
	sawCrashRung := false
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("prefix %s failed: %v", o.Prefix, o.Err)
		}
		if len(o.Rungs) > 0 && o.Rungs[0] == analysis.RungWorkerCrash {
			sawCrashRung = true
		}
	}
	if !sawCrashRung {
		t.Error("fleet loss left no worker-crash rung on any outcome")
	}
}

// TestCoordTelemetryMerges checks the worker telemetry shards land in
// the coordinator registry: a multi-process run must report the same
// class of BDD work a sequential run does.
func TestCoordTelemetryMerges(t *testing.T) {
	net, prefixes := testNet(t)
	tel := obs.New()
	opts := testOpts()
	opts.Telemetry = tel
	part := coordRun(t, net, prefixes, Options{Workers: 2, Verify: opts, Resilient: true})
	defer part.Release()
	rep := tel.Snapshot()
	if rep.Counters["bdd.cache_misses"] == 0 {
		t.Error("no bdd.cache_misses merged back from workers")
	}
}

func TestParseFaultPlan(t *testing.T) {
	good := []string{"", "crash@0", "kill@3#2", "crash@0;stall@2;corrupt@3#1", " exit@1 ; crash@2 "}
	for _, s := range good {
		if _, err := ParseFaultPlan(s); err != nil {
			t.Errorf("ParseFaultPlan(%q): %v", s, err)
		}
	}
	bad := []string{"crash", "boom@1", "crash@-1", "crash@x", "crash@1#x", "crash@1#-2"}
	for _, s := range bad {
		if _, err := ParseFaultPlan(s); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted invalid plan", s)
		}
	}
	p, err := ParseFaultPlan("crash@0;stall@2#1")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.at(0, 0); got != faultCrash {
		t.Errorf("at(0,0) = %q, want crash", got)
	}
	if got := p.at(2, 1); got != faultStall {
		t.Errorf("at(2,1) = %q, want stall", got)
	}
	if got := p.at(2, 0); got != "" {
		t.Errorf("at(2,0) = %q, want none", got)
	}
	if p.String() != "crash@0;stall@2#1" {
		t.Errorf("String() = %q", p.String())
	}
}

// TestParseFaultPlanDiskKinds pins the disk-fault half of the plan
// syntax: the store kinds parse, are matched by DiskFault on the Put
// index, and never leak into the per-task lookup.
func TestParseFaultPlanDiskKinds(t *testing.T) {
	for _, s := range []string{"torn@0", "flip@1", "enospc@2", "rename@0", "killwrite@3", "crash@0;torn@0"} {
		if _, err := ParseFaultPlan(s); err != nil {
			t.Errorf("ParseFaultPlan(%q): %v", s, err)
		}
	}
	p, err := ParseFaultPlan("crash@0;torn@0;flip@2;killwrite@1")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.at(0, 0); got != faultCrash {
		t.Errorf("at(0,0) = %q, want crash", got)
	}
	for _, seq := range []int{1, 2} {
		if got := p.at(seq, 0); got != "" {
			t.Errorf("at(%d,0) = %q; disk kinds must not match the per-task lookup", seq, got)
		}
	}
	want := map[int]string{0: store.FaultTorn, 1: store.FaultKillWrite, 2: store.FaultFlip, 3: "", 99: ""}
	for idx, kind := range want {
		if got := p.DiskFault(idx); got != kind {
			t.Errorf("DiskFault(%d) = %q, want %q", idx, got, kind)
		}
	}
	var nilPlan *FaultPlan
	if got := nilPlan.DiskFault(0); got != "" {
		t.Errorf("nil plan DiskFault = %q", got)
	}
}

// TestCoordDiskFaultsSelfHeal drives the worker-side store through the
// injected disk faults: a first run publishes under torn/flipped/failed
// writes (results unaffected — a failed publish is never a failed
// task), and a second run over the damaged store quarantines the
// corrupt records, recomputes, and still matches the baseline.
func TestCoordDiskFaultsSelfHeal(t *testing.T) {
	net, prefixes := testNet(t)
	base, err := analysis.RunPartitioned(net, testOpts(), prefixes, analysis.LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()
	baseOuts, baseSweep := base.Outcomes(), sweep(t, base)

	dir := t.TempDir()
	cacheOn := func(t *testing.T) *store.Store {
		t.Helper()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}

	// One worker so the Put sequence is deterministic: four tasks, the
	// first record torn on disk, the second bit-flipped, the third's
	// rename failed (orphan temp), the fourth clean.
	s1 := cacheOn(t)
	part := coordRun(t, net, prefixes, Options{
		Workers: 1, Verify: testOpts(), Resilient: true,
		Cache: &analysis.ResultCache{S: s1}, CacheDir: dir,
		FaultPlan: "torn@0;flip@1;rename@2",
	})
	if got := part.Outcomes(); !reflect.DeepEqual(got, baseOuts) {
		t.Errorf("faulty-publish run diverges\n got %+v\nwant %+v", got, baseOuts)
	}
	if got := sweep(t, part); !reflect.DeepEqual(got, baseSweep) {
		t.Errorf("faulty-publish sweep diverges")
	}
	part.Release()

	// The damaged store must self-heal: the coordinator's pre-dispatch
	// lookups quarantine the torn and flipped records, the missing third
	// misses, the clean fourth hits, and the recomputed results match.
	s2 := cacheOn(t)
	part2 := coordRun(t, net, prefixes, Options{
		Workers: 1, Verify: testOpts(), Resilient: true,
		Cache: &analysis.ResultCache{S: s2}, CacheDir: dir,
	})
	defer part2.Release()
	if got := part2.Outcomes(); !reflect.DeepEqual(got, baseOuts) {
		t.Errorf("self-heal run diverges\n got %+v\nwant %+v", got, baseOuts)
	}
	if got := sweep(t, part2); !reflect.DeepEqual(got, baseSweep) {
		t.Errorf("self-heal sweep diverges")
	}
	m := s2.Metrics()
	if m.Quarantined != 2 {
		t.Errorf("Quarantined = %d, want 2 (torn + flipped)", m.Quarantined)
	}
	if m.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (the clean record)", m.Hits)
	}
}

// TestCoordCrashMidWrite is the crash-mid-write scenario: a worker is
// SIGKILLed between writing a record's temp file and renaming it into
// place. The run must converge via retry, the orphan temp must never
// surface as a record, and a follow-up run must be fully warm.
func TestCoordCrashMidWrite(t *testing.T) {
	net, prefixes := testNet(t)
	base, err := analysis.RunPartitioned(net, testOpts(), prefixes, analysis.LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()

	dir := t.TempDir()
	s1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	// killwrite@3: the single worker publishes three records cleanly,
	// then dies mid-publication of the fourth. The respawned worker's
	// Put sequence restarts at 0, so the retry publishes unfaulted.
	part := coordRun(t, net, prefixes, Options{
		Workers: 1, Verify: testOpts(), Resilient: true,
		Cache: &analysis.ResultCache{S: s1}, CacheDir: dir,
		FaultPlan: "killwrite@3",
	})
	if got, want := normalize(part.Outcomes()), normalize(base.Outcomes()); !reflect.DeepEqual(got, want) {
		t.Errorf("crash-mid-write outcomes diverge\n got %+v\nwant %+v", got, want)
	}
	crashes := 0
	for _, o := range part.Outcomes() {
		crashes += o.WorkerCrashes
	}
	if crashes == 0 {
		t.Error("killwrite fault did not register as a worker crash")
	}
	part.Release()

	// The interrupted publication left an orphan temp; a short-TTL
	// Verify reaps it and finds every landed record intact.
	s2, err := store.Open(dir, store.Options{LockTTL: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	stats, err := s2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TempFiles == 0 {
		t.Error("crash-mid-write left no orphan temp file")
	}
	rep, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 {
		t.Errorf("Verify quarantined %d records; atomic rename must keep landed records intact", rep.Quarantined)
	}
	if rep.TempsReaped == 0 {
		t.Error("Verify did not reap the orphan temp")
	}

	// Second run: fully warm — every task resolves from the store
	// before any worker is spawned.
	part2 := coordRun(t, net, prefixes, Options{
		Workers: 1, Verify: testOpts(), Resilient: true,
		Cache: &analysis.ResultCache{S: s2}, CacheDir: dir,
	})
	defer part2.Release()
	if got := part2.Outcomes(); !reflect.DeepEqual(got, base.Outcomes()) {
		t.Errorf("warm run after crash diverges\n got %+v\nwant %+v", got, base.Outcomes())
	}
	if m := s2.Metrics(); m.Hits != int64(len(prefixes)) {
		t.Errorf("warm run Hits = %d, want %d", m.Hits, len(prefixes))
	}
}

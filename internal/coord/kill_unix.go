//go:build unix

package coord

import (
	"os"
	"syscall"
)

// killSelf delivers SIGKILL to the current process: no deferred
// functions, no buffered writes, no exit status negotiation — the
// closest reproducible stand-in for an OOM kill. Used only by the
// fault-injection "kill" plan entry.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// Unreachable on delivery; belt and braces if the signal is lost.
	os.Exit(137)
}

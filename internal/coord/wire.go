// Package coord implements fault-tolerant multi-process verification: a
// coordinator that partitions the prefix space across N `sre worker`
// subprocesses and supervises them — per-task deadlines, heartbeats,
// crash detection (process exit, decode failure, heartbeat loss),
// bounded retries with exponential backoff and worker respawn, and a
// poisoned-prefix quarantine that falls back to in-process resilient
// execution after repeated failures.
//
// The process boundary is the robustness boundary: a worker can OOM,
// panic past a firewall, wedge, or corrupt its output stream, and the
// run degrades gracefully instead of dying — the same contract the
// in-process resilient runtime gives for BDD overflows, extended across
// fork/exec.
//
// Workers run exactly the per-prefix task chain an in-process parallel
// run schedules (analysis.RunPrefixTask over a one-worker pool), so
// coordinator results are byte-identical to Options.Parallelism runs at
// any worker count; a golden test pins this at W=1/2/4, including runs
// where injected faults force retries.
package coord

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"sre/internal/obs"
)

// Wire protocol: length-prefixed NDJSON frames over the worker's
// stdin/stdout pipes. Each frame is a 4-byte little-endian payload
// length followed by one JSON object terminated by '\n' (the newline is
// part of the payload, so a pipe captured raw is still line-readable).
//
//	coordinator → worker: init, task, shutdown
//	worker → coordinator: hello, heartbeat, result, error
//
// The decoder is total: any byte stream yields a frame or an error,
// never a panic and never an allocation proportional to a declared
// length that was not actually received (FuzzDecodeFrame pins this).

// maxFramePayload bounds a frame's declared payload length when
// Options.MaxFrameBytes is zero. Serialized BDDs for one prefix task
// are megabytes at the extreme; a declared length beyond this is a
// corrupt stream, not a big result.
const maxFramePayload = 1 << 30

// FrameSizeError reports a frame whose declared payload length exceeds
// the configured maximum — a corrupt length prefix from the reader's
// point of view, typed so callers tuning MaxFrameBytes can tell it from
// other stream corruption.
type FrameSizeError struct {
	Declared int64
	Max      int64
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("coord: frame declares %d payload bytes, max %d", e.Declared, e.Max)
}

// Frame type discriminators.
const (
	frameInit      = "init"
	frameTask      = "task"
	frameShutdown  = "shutdown"
	frameHello     = "hello"
	frameHeartbeat = "heartbeat"
	frameResult    = "result"
	frameError     = "error"
)

// frame is the single envelope every message travels in; Type selects
// which payload pointer is set.
type frame struct {
	Type   string      `json:"type"`
	Init   *initMsg    `json:"init,omitempty"`
	Task   *taskMsg    `json:"task,omitempty"`
	Hello  *helloMsg   `json:"hello,omitempty"`
	Result *taskResult `json:"result,omitempty"`
	Err    *wireError  `json:"err,omitempty"`
}

// initMsg configures a worker for the run: the network (the textual
// config format, a tested fixed point of Parse∘Format), the
// verification options that shape results, and — when the run carries a
// persistent result cache — the store directory the worker should
// consult and publish to.
type initMsg struct {
	Network  string      `json:"network"`
	Opts     wireOptions `json:"opts"`
	CacheDir string      `json:"cache_dir,omitempty"`
}

// wireOptions is the transportable subset of src.Options plus the
// ladder switches: everything that affects results, nothing that holds
// process-local state (telemetry, interrupt hooks).
type wireOptions struct {
	PruneK               int  `json:"prune_k"`
	Abstract             bool `json:"abstract,omitempty"`
	NoECMP               bool `json:"no_ecmp,omitempty"`
	IBGPFullMesh         bool `json:"ibgp_full_mesh,omitempty"`
	MaxHops              int  `json:"max_hops,omitempty"`
	MaxIterations        int  `json:"max_iterations,omitempty"`
	BDDNodeLimit         int    `json:"bdd_node_limit,omitempty"`
	LegacyKernel         bool   `json:"legacy_kernel,omitempty"`
	VarOrder             string `json:"var_order,omitempty"`
	DynamicReorder       bool   `json:"dynamic_reorder,omitempty"`
	Ladder               bool  `json:"ladder,omitempty"`
	DisableBudgetHalving bool  `json:"disable_budget_halving,omitempty"`
	HeartbeatMS          int   `json:"heartbeat_ms,omitempty"`
	MaxFrameBytes        int64 `json:"max_frame_bytes,omitempty"`
}

// taskMsg assigns one prefix task. Seq is the task's index in the
// coordinator's cost-ordered dispatch sequence — stable across runs, so
// fault plans keyed by Seq are deterministic regardless of which worker
// draws the task. Attempt counts prior failed attempts.
type taskMsg struct {
	Seq     int    `json:"seq"`
	Attempt int    `json:"attempt"`
	Prefix  string `json:"prefix"`
	// CacheKey is the prefix's persistent-store content address; the
	// worker consults the shared store under it on a first attempt and
	// publishes the computed result back. Empty disables caching.
	CacheKey string `json:"cache_key,omitempty"`
}

type helloMsg struct {
	PID int `json:"pid"`
}

// taskResult carries one finished prefix back: the outcome, the
// serialized pipelines, and the worker's per-task telemetry shard.
type taskResult struct {
	Seq       int            `json:"seq"`
	Prefix    string         `json:"prefix"`
	Outcome   wireOutcome    `json:"outcome"`
	Pipes     []wirePipeline `json:"pipes,omitempty"`
	Telemetry *obs.Wire      `json:"telemetry,omitempty"`
}

// The wire forms of outcomes, pipelines, and errors are defined in
// internal/analysis (wire.go) and aliased in codec.go: the persistent
// result store shares them as its record payload, so one codec serves
// both the pipe and the disk.

// frameWriter serializes frames onto one pipe. The mutex lets the
// worker's heartbeat goroutine interleave with result writes without
// tearing frames.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) write(f *frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = fw.w.Write(payload)
	return err
}

// readFrame decodes one frame from r under the default size cap.
func readFrame(r io.Reader) (*frame, error) {
	return readFrameLimit(r, 0)
}

// readFrameLimit decodes one frame from r, bounding the declared
// payload length by max (0 = maxFramePayload). It is total over
// arbitrary byte streams: torn length prefixes, truncated payloads,
// oversized declared lengths, and invalid JSON all return errors. The
// payload is read incrementally (never pre-allocated at the declared
// length), so a hostile length field cannot balloon memory.
func readFrameLimit(r io.Reader, max int64) (*frame, error) {
	if max <= 0 {
		max = maxFramePayload
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("coord: frame length 0 out of range")
	}
	if int64(n) > max {
		return nil, &FrameSizeError{Declared: int64(n), Max: max}
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	f := &frame{}
	if err := json.Unmarshal(buf.Bytes(), f); err != nil {
		return nil, fmt.Errorf("coord: bad frame: %w", err)
	}
	if f.Type == "" {
		return nil, fmt.Errorf("coord: frame missing type")
	}
	return f, nil
}

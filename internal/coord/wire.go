// Package coord implements fault-tolerant multi-process verification: a
// coordinator that partitions the prefix space across N `sre worker`
// subprocesses and supervises them — per-task deadlines, heartbeats,
// crash detection (process exit, decode failure, heartbeat loss),
// bounded retries with exponential backoff and worker respawn, and a
// poisoned-prefix quarantine that falls back to in-process resilient
// execution after repeated failures.
//
// The process boundary is the robustness boundary: a worker can OOM,
// panic past a firewall, wedge, or corrupt its output stream, and the
// run degrades gracefully instead of dying — the same contract the
// in-process resilient runtime gives for BDD overflows, extended across
// fork/exec.
//
// Workers run exactly the per-prefix task chain an in-process parallel
// run schedules (analysis.RunPrefixTask over a one-worker pool), so
// coordinator results are byte-identical to Options.Parallelism runs at
// any worker count; a golden test pins this at W=1/2/4, including runs
// where injected faults force retries.
package coord

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"sre/internal/bdd"
	"sre/internal/obs"
	"sre/internal/resil"
)

// Wire protocol: length-prefixed NDJSON frames over the worker's
// stdin/stdout pipes. Each frame is a 4-byte little-endian payload
// length followed by one JSON object terminated by '\n' (the newline is
// part of the payload, so a pipe captured raw is still line-readable).
//
//	coordinator → worker: init, task, shutdown
//	worker → coordinator: hello, heartbeat, result, error
//
// The decoder is total: any byte stream yields a frame or an error,
// never a panic and never an allocation proportional to a declared
// length that was not actually received (FuzzDecodeFrame pins this).

// maxFramePayload bounds a frame's declared payload length. Serialized
// BDDs for one prefix task are megabytes at the extreme; a declared
// length beyond this is a corrupt stream, not a big result.
const maxFramePayload = 1 << 30

// Frame type discriminators.
const (
	frameInit      = "init"
	frameTask      = "task"
	frameShutdown  = "shutdown"
	frameHello     = "hello"
	frameHeartbeat = "heartbeat"
	frameResult    = "result"
	frameError     = "error"
)

// frame is the single envelope every message travels in; Type selects
// which payload pointer is set.
type frame struct {
	Type   string      `json:"type"`
	Init   *initMsg    `json:"init,omitempty"`
	Task   *taskMsg    `json:"task,omitempty"`
	Hello  *helloMsg   `json:"hello,omitempty"`
	Result *taskResult `json:"result,omitempty"`
	Err    *wireError  `json:"err,omitempty"`
}

// initMsg configures a worker for the run: the network (the textual
// config format, a tested fixed point of Parse∘Format) and the
// verification options that shape results.
type initMsg struct {
	Network string      `json:"network"`
	Opts    wireOptions `json:"opts"`
}

// wireOptions is the transportable subset of src.Options plus the
// ladder switches: everything that affects results, nothing that holds
// process-local state (telemetry, interrupt hooks).
type wireOptions struct {
	PruneK               int  `json:"prune_k"`
	Abstract             bool `json:"abstract,omitempty"`
	NoECMP               bool `json:"no_ecmp,omitempty"`
	IBGPFullMesh         bool `json:"ibgp_full_mesh,omitempty"`
	MaxHops              int  `json:"max_hops,omitempty"`
	MaxIterations        int  `json:"max_iterations,omitempty"`
	BDDNodeLimit         int  `json:"bdd_node_limit,omitempty"`
	LegacyKernel         bool `json:"legacy_kernel,omitempty"`
	Ladder               bool `json:"ladder,omitempty"`
	DisableBudgetHalving bool `json:"disable_budget_halving,omitempty"`
	HeartbeatMS          int  `json:"heartbeat_ms,omitempty"`
}

// taskMsg assigns one prefix task. Seq is the task's index in the
// coordinator's cost-ordered dispatch sequence — stable across runs, so
// fault plans keyed by Seq are deterministic regardless of which worker
// draws the task. Attempt counts prior failed attempts.
type taskMsg struct {
	Seq     int    `json:"seq"`
	Attempt int    `json:"attempt"`
	Prefix  string `json:"prefix"`
}

type helloMsg struct {
	PID int `json:"pid"`
}

// taskResult carries one finished prefix back: the outcome, the
// serialized pipelines, and the worker's per-task telemetry shard.
type taskResult struct {
	Seq       int            `json:"seq"`
	Prefix    string         `json:"prefix"`
	Outcome   wireOutcome    `json:"outcome"`
	Pipes     []wirePipeline `json:"pipes,omitempty"`
	Telemetry *obs.Wire      `json:"telemetry,omitempty"`
}

// wireOutcome is analysis.PrefixOutcome in transportable form.
type wireOutcome struct {
	Err             *wireError `json:"err,omitempty"`
	Quarantined     bool       `json:"quarantined,omitempty"`
	Degraded        bool       `json:"degraded,omitempty"`
	Rungs           []string   `json:"rungs,omitempty"`
	EffectivePruneK int        `json:"effective_prune_k"`
}

// wirePipeline is one serialized pipeline: per-source PFEC metadata
// plus a single bdd.Write blob holding every predicate, roots in
// (source router, PFEC index) order.
type wirePipeline struct {
	Scope    string       `json:"scope,omitempty"`
	SRCNanos int64        `json:"src_ns"`
	SPFNanos int64        `json:"spf_ns"`
	Sources  []wireSource `json:"sources"`
	BDD      []byte       `json:"bdd"`
}

type wireSource struct {
	PFECs []wirePFEC `json:"pfecs,omitempty"`
}

type wirePFEC struct {
	Path      []int32 `json:"path"`
	Delivered bool    `json:"delivered,omitempty"`
	Looped    bool    `json:"looped,omitempty"`
}

// Error kinds crossing the wire. Reconstructed errors satisfy errors.Is
// against the matching sentinel, so exit-code mapping and ladder logic
// behave identically on both sides of the pipe.
const (
	errKindCanceled   = "canceled"
	errKindDeadline   = "deadline"
	errKindNoConverge = "noconverge"
	errKindInternal   = "internal"
	errKindNodeLimit  = "nodelimit"
	errKindOther      = "other"
)

// wireError is an error flattened for transport: its sentinel kind, the
// pipeline stage it interrupted, and the rendered message.
type wireError struct {
	Kind  string `json:"kind"`
	Stage string `json:"stage,omitempty"`
	Msg   string `json:"msg"`
}

func errorToWire(err error) *wireError {
	if err == nil {
		return nil
	}
	kind := errKindOther
	switch {
	case errors.Is(err, resil.ErrCanceled):
		kind = errKindCanceled
	case errors.Is(err, resil.ErrDeadline):
		kind = errKindDeadline
	case errors.Is(err, resil.ErrNoConvergence):
		kind = errKindNoConverge
	case errors.Is(err, resil.ErrInternal):
		kind = errKindInternal
	case errors.Is(err, bdd.ErrNodeLimit):
		kind = errKindNodeLimit
	}
	return &wireError{Kind: kind, Stage: resil.StageOf(err), Msg: err.Error()}
}

// remoteError is a reconstructed worker error: the original message
// with the sentinel restored underneath so errors.Is keeps working.
type remoteError struct {
	msg  string
	base error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.base }

func (we *wireError) toError() error {
	if we == nil {
		return nil
	}
	var base error
	switch we.Kind {
	case errKindCanceled:
		base = resil.ErrCanceled
	case errKindDeadline:
		base = resil.ErrDeadline
	case errKindNoConverge:
		base = resil.ErrNoConvergence
	case errKindInternal:
		base = resil.ErrInternal
	case errKindNodeLimit:
		base = bdd.ErrNodeLimit
	}
	err := error(&remoteError{msg: we.Msg, base: base})
	if we.Stage != "" {
		err = &resil.StageError{Stage: we.Stage, Err: err}
	}
	return err
}

// frameWriter serializes frames onto one pipe. The mutex lets the
// worker's heartbeat goroutine interleave with result writes without
// tearing frames.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) write(f *frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = fw.w.Write(payload)
	return err
}

// readFrame decodes one frame from r. It is total over arbitrary byte
// streams: torn length prefixes, truncated payloads, oversized declared
// lengths, and invalid JSON all return errors. The payload is read
// incrementally (never pre-allocated at the declared length), so a
// hostile length field cannot balloon memory.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("coord: frame length %d out of range", n)
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	f := &frame{}
	if err := json.Unmarshal(buf.Bytes(), f); err != nil {
		return nil, fmt.Errorf("coord: bad frame: %w", err)
	}
	if f.Type == "" {
		return nil, fmt.Errorf("coord: frame missing type")
	}
	return f, nil
}

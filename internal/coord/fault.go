package coord

// Deterministic fault injection: a plan names which task attempts fail
// and how, so the test suite (and a CI smoke run) can drive every
// supervision path — crash detection, heartbeat loss, corrupt frames,
// nonzero exits, retries, quarantine — with reproducible runs.
//
// Plan syntax: ';'-separated entries of the form
//
//	kind@taskSeq[#attempt]
//
// where kind is one of crash, kill, stall, corrupt, exit; taskSeq is
// the task's index in the coordinator's cost-ordered dispatch sequence
// (stable across runs); attempt selects which attempt faults (default
// 0, so a retried task converges). Example:
//
//	SRE_FAULT='crash@0;stall@2;corrupt@3#1'
//
// Kinds:
//
//	crash   — exit immediately with status 137, before any result byte
//	kill    — SIGKILL self: no exit handlers, no flushes (unix only;
//	          falls back to crash elsewhere)
//	stall   — stop heartbeating and hang; the coordinator detects
//	          heartbeat loss and kills the worker
//	corrupt — emit a well-framed garbage payload, then exit 1; the
//	          coordinator sees a decode failure
//	exit    — exit with status 3 without a result (a worker that died
//	          politely)
//
// Disk-fault kinds (torn, flip, enospc, rename, killwrite — see
// internal/store) ride the same syntax but are indexed by the process's
// persistent-store Put sequence, not the task sequence: `torn@1` tears
// the second record this process publishes. They apply only to runs
// carrying a cache directory and are matched by FaultPlan.DiskFault,
// never by the per-task lookup.
//
// The plan travels coordinator → worker via the SRE_FAULT environment
// variable; Options.FaultPlan takes precedence over an inherited one.

import (
	"fmt"
	"strconv"
	"strings"

	"sre/internal/store"
)

// FaultEnv is the environment variable carrying the fault plan.
const FaultEnv = "SRE_FAULT"

const (
	faultCrash   = "crash"
	faultKill    = "kill"
	faultStall   = "stall"
	faultCorrupt = "corrupt"
	faultExit    = "exit"
)

type faultEntry struct {
	kind    string
	seq     int
	attempt int
}

// FaultPlan is a parsed fault-injection plan. The zero value (and nil)
// injects nothing.
type FaultPlan struct {
	entries []faultEntry
	text    string
}

// ParseFaultPlan parses the plan syntax above. An empty string is the
// empty plan (nil).
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &FaultPlan{text: s}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("coord: fault entry %q missing @taskSeq", part)
		}
		switch {
		case kind == faultCrash, kind == faultKill, kind == faultStall,
			kind == faultCorrupt, kind == faultExit:
		case store.IsDiskFault(kind):
		default:
			return nil, fmt.Errorf("coord: unknown fault kind %q (want crash, kill, stall, corrupt, exit, or a disk fault: torn, flip, enospc, rename, killwrite)", kind)
		}
		seqStr, attemptStr, hasAttempt := strings.Cut(rest, "#")
		seq, err := strconv.Atoi(seqStr)
		if err != nil || seq < 0 {
			return nil, fmt.Errorf("coord: fault entry %q has bad task index", part)
		}
		attempt := 0
		if hasAttempt {
			attempt, err = strconv.Atoi(attemptStr)
			if err != nil || attempt < 0 {
				return nil, fmt.Errorf("coord: fault entry %q has bad attempt", part)
			}
		}
		p.entries = append(p.entries, faultEntry{kind: kind, seq: seq, attempt: attempt})
	}
	if len(p.entries) == 0 {
		return nil, nil
	}
	return p, nil
}

// String renders the plan back into its source syntax.
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	return p.text
}

// at returns the fault kind to inject for (task seq, attempt), or "".
// Disk faults never match here: they are keyed by store Put index.
func (p *FaultPlan) at(seq, attempt int) string {
	if p == nil {
		return ""
	}
	for _, e := range p.entries {
		if e.seq == seq && e.attempt == attempt && !store.IsDiskFault(e.kind) {
			return e.kind
		}
	}
	return ""
}

// DiskFault returns the disk-fault kind planned for the process's
// index-th store Put (0-based), or "". It has the store.FaultFunc
// shape, so a plan plugs straight into store.Options.Fault.
func (p *FaultPlan) DiskFault(index int) string {
	if p == nil {
		return ""
	}
	for _, e := range p.entries {
		if e.seq == index && e.attempt == 0 && store.IsDiskFault(e.kind) {
			return e.kind
		}
	}
	return ""
}

package coord

// Worker side of the protocol: read init, then loop task → result.
// Each task runs analysis.RunPrefixTask — the identical per-prefix
// chain an in-process parallel run schedules — with a fresh telemetry
// registry whose wire export rides back on the result frame. A
// heartbeat goroutine proves liveness between results so the
// coordinator can tell "slow" from "wedged".

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"sre/internal/analysis"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/store"
)

// defaultHeartbeat is the heartbeat interval when the coordinator does
// not specify one.
const defaultHeartbeat = 250 * time.Millisecond

// WorkerMain runs the worker protocol over the given pipes and returns
// the process exit status. `sre worker` (and the test harness's
// re-exec hook) call it with os.Stdin/os.Stdout/os.Stderr.
//
// Exit statuses: 0 after a clean shutdown frame or EOF, 1 on a
// protocol or I/O failure. Verification errors are not exit statuses —
// they travel back as error frames so the coordinator can attribute
// them; the coordinator treats any nonzero exit as a crash.
func WorkerMain(stdin io.Reader, stdout io.Writer, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "sre worker: "+format+"\n", args...)
		return 1
	}
	init, err := readFrame(stdin)
	if err != nil {
		return fail("reading init frame: %v", err)
	}
	if init.Type == frameShutdown {
		// A worker spawned just as the run completed: its shutdown frame
		// can overtake the asynchronously written init. Nothing to do.
		return 0
	}
	if init.Type != frameInit || init.Init == nil {
		return fail("first frame is %q, want init", init.Type)
	}
	net, err := config.ParseString(init.Init.Network)
	if err != nil {
		return fail("parsing network: %v", err)
	}
	plan, err := ParseFaultPlan(os.Getenv(FaultEnv))
	if err != nil {
		return fail("parsing %s: %v", FaultEnv, err)
	}
	wopts := init.Init.Opts
	opts := optionsFromWire(wopts)

	// Open the shared result store when the coordinator ships one. The
	// cache is an optimization: a store that cannot open (permissions, a
	// dead disk) downgrades to cache-less operation, never a dead worker.
	var cache *analysis.ResultCache
	if dir := init.Init.CacheDir; dir != "" {
		st, serr := store.Open(dir, store.Options{
			MaxRecordBytes: wopts.MaxFrameBytes,
			Fault:          plan.DiskFault,
		})
		if serr != nil {
			fmt.Fprintf(stderr, "sre worker: opening result store: %v (continuing uncached)\n", serr)
		} else {
			cache = &analysis.ResultCache{S: st}
		}
	}

	out := &frameWriter{w: stdout}
	if err := out.write(&frame{Type: frameHello, Hello: &helloMsg{PID: os.Getpid()}}); err != nil {
		return fail("writing hello: %v", err)
	}

	// Heartbeats run for the whole worker life. The stall fault silences
	// them without stopping the process — exactly the signature of a
	// wedged worker the coordinator must detect.
	interval := time.Duration(wopts.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = defaultHeartbeat
	}
	var stalled atomic.Bool
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if stalled.Load() {
					continue
				}
				// A broken pipe means the coordinator is gone; the next
				// result write will fail and exit the loop.
				_ = out.write(&frame{Type: frameHeartbeat})
			}
		}
	}()

	for {
		f, err := readFrameLimit(stdin, wopts.MaxFrameBytes)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return 0 // coordinator closed our stdin: clean shutdown
			}
			return fail("reading frame: %v", err)
		}
		switch f.Type {
		case frameShutdown:
			return 0
		case frameTask:
			if f.Task == nil {
				return fail("task frame missing payload")
			}
			if kind := plan.at(f.Task.Seq, f.Task.Attempt); kind != "" {
				applyFault(kind, out, &stalled)
			}
			res, werr := runTask(net, opts, wopts, f.Task, cache)
			if werr != nil {
				// A non-recoverable verification error: report it and keep
				// serving; the coordinator aborts the run on its side.
				if err := out.write(&frame{Type: frameError, Err: errorToWire(werr)}); err != nil {
					return fail("writing error frame: %v", err)
				}
				continue
			}
			if err := out.write(&frame{Type: frameResult, Result: res}); err != nil {
				return fail("writing result: %v", err)
			}
		default:
			return fail("unexpected frame type %q", f.Type)
		}
	}
}

// runTask executes one prefix task and serializes the result. On a
// first attempt with a cache key, the shared store is consulted before
// computing: a decodable record replays as the result (its telemetry
// shard and a store.hits counter riding back to the coordinator), while
// a corrupt one is quarantined by the lookup and recomputed here as if
// it never existed. Retries always recompute — a cached record that
// already failed to cross the pipe once is not worth a second attempt —
// and every computed result is published back for the fleet.
func runTask(net *config.Network, opts src.Options, wopts wireOptions, task *taskMsg, cache *analysis.ResultCache) (*taskResult, error) {
	pfx, err := route.ParsePrefix(task.Prefix)
	if err != nil {
		return nil, fmt.Errorf("coord: task %d has bad prefix %q: %w", task.Seq, task.Prefix, err)
	}
	tel := obs.New()
	o := opts
	o.Telemetry = tel
	if cache != nil && task.CacheKey != "" && task.Attempt == 0 {
		pipes, out, hit, lerr := cache.Lookup(net, o, task.CacheKey, pfx, tel)
		if lerr == nil && hit {
			defer func() {
				for _, p := range pipes {
					p.Release()
				}
			}()
			wps, werr := encodePipelines(pipes, net)
			if werr == nil {
				tel.Counter("store.hits").Inc()
				return &taskResult{
					Seq:       task.Seq,
					Prefix:    task.Prefix,
					Outcome:   outcomeToWire(out),
					Pipes:     wps,
					Telemetry: tel.ExportWire(),
				}, nil
			}
		}
	}
	pipes, out, err := analysis.RunPrefixTask(net, o, pfx, wopts.Ladder,
		analysis.LadderOptions{DisableBudgetHalving: wopts.DisableBudgetHalving})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range pipes {
			p.Release()
		}
	}()
	wps, err := encodePipelines(pipes, net)
	if err != nil {
		return nil, err
	}
	res := &taskResult{
		Seq:       task.Seq,
		Prefix:    task.Prefix,
		Outcome:   outcomeToWire(out),
		Pipes:     wps,
		Telemetry: tel.ExportWire(),
	}
	cache.Publish(net, task.CacheKey, pfx, pipes, out, res.Telemetry)
	return res, nil
}

// applyFault injects one planned fault. crash/kill/exit never return;
// corrupt writes a well-framed garbage payload then exits; stall mutes
// heartbeats and hangs until the coordinator kills the process.
func applyFault(kind string, out *frameWriter, stalled *atomic.Bool) {
	switch kind {
	case faultCrash:
		os.Exit(137)
	case faultKill:
		killSelf()
	case faultExit:
		os.Exit(3)
	case faultCorrupt:
		out.mu.Lock()
		payload := []byte("{\"type\":\"result\",\"result\":}garbage\n")
		var hdr [4]byte
		hdr[0] = byte(len(payload))
		_, _ = out.w.Write(hdr[:])
		_, _ = out.w.Write(payload)
		out.mu.Unlock()
		os.Exit(1)
	case faultStall:
		stalled.Store(true)
		time.Sleep(10 * time.Minute) // killed long before this elapses
		os.Exit(1)
	}
}

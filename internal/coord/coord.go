package coord

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"sre/internal/analysis"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/src"
)

// Options configures a multi-process run.
type Options struct {
	// Workers is the number of worker subprocesses. Values < 1 mean 1.
	Workers int
	// Exe is the worker binary; empty means the current executable
	// (os.Executable), re-exec'ed with Args.
	Exe string
	// Args is the worker argv (after the binary); empty means
	// ["worker"], the `sre worker` subcommand.
	Args []string
	// Verify carries the verification options. Telemetry and Interrupt
	// stay coordinator-side: workers get the transportable subset, run
	// fresh per-task registries whose wire shards merge back here, and
	// are killed (not signaled) on cancellation.
	Verify src.Options
	// Resilient enables the escalation ladder inside workers and the
	// in-process resilient fallback for quarantined prefixes. Without
	// it, a prefix whose verification fails aborts the run — but worker
	// crashes are still retried: crash tolerance is not degradation.
	Resilient bool
	// Ladder tunes the workers' escalation ladder.
	Ladder analysis.LadderOptions
	// TaskTimeout bounds one task attempt's wall clock; on expiry the
	// worker is killed and the attempt counts as a crash. Zero disables
	// the per-task deadline (heartbeats still catch wedged workers).
	TaskTimeout time.Duration
	// HeartbeatInterval is how often workers prove liveness (default
	// 250ms); HeartbeatGrace is how long the coordinator waits past the
	// last sign of life before declaring a worker wedged (default 8×
	// the interval).
	HeartbeatInterval time.Duration
	HeartbeatGrace    time.Duration
	// MaxAttempts is how many worker attempts a prefix gets before it
	// is quarantined to the in-process fallback (default 3).
	MaxAttempts int
	// RetryBackoff is the base delay before a failed task is
	// redispatched, doubling per attempt (default 50ms).
	RetryBackoff time.Duration
	// MaxRespawns bounds how many replacement processes one worker slot
	// gets (default MaxAttempts). When every slot is dead and
	// unrespawnable, remaining prefixes quarantine.
	MaxRespawns int
	// FaultPlan injects deterministic worker faults for testing (see
	// ParseFaultPlan); empty falls back to the SRE_FAULT environment
	// variable. The plan is forwarded to workers via their environment.
	FaultPlan string
	// MaxFrameBytes bounds a frame's declared payload length on both
	// sides of the pipe (0 = the 1 GiB default); an oversized declared
	// length is a corrupt stream (FrameSizeError) and counts as a
	// worker crash.
	MaxFrameBytes int64
	// Cache, when non-nil, is the persistent result cache: the
	// coordinator consults it before dispatching a task (a hit skips
	// the worker round-trip entirely) and CacheDir is shipped to
	// workers so they consult and publish the shared store themselves.
	Cache    *analysis.ResultCache
	CacheDir string
}

func (o *Options) defaults() {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = defaultHeartbeat
	}
	if o.HeartbeatGrace <= 0 {
		o.HeartbeatGrace = 8 * o.HeartbeatInterval
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxRespawns <= 0 {
		o.MaxRespawns = o.MaxAttempts
	}
	if len(o.Args) == 0 {
		o.Args = []string{"worker"}
	}
}

// taskState tracks one prefix task through dispatch, retries, and
// quarantine.
type taskState struct {
	seq         int
	pfx         route.Prefix
	cost        int64  // LPT cost estimate; 0 for cache-settled tasks
	key         string // cache key; "" when the run carries no cache
	attempt     int    // next attempt number (= failed attempts so far)
	notBefore   time.Time
	done        bool
	quarantined bool
	outcome     analysis.PrefixOutcome
	pipes       []*analysis.Pipeline
	started     time.Time
}

// workerProc is one live worker subprocess.
type workerProc struct {
	slot     int
	cmd      *exec.Cmd
	stdin    *frameWriter
	closer   func() error // closes the stdin pipe
	ready    bool
	task     *taskState
	lastSeen time.Time
	dead     bool
}

func (w *workerProc) kill() {
	if w.cmd != nil && w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
}

// event is one reader-goroutine message: a frame, or a terminal read
// error (EOF/decode failure = the worker is gone or babbling).
type event struct {
	w   *workerProc
	f   *frame
	err error
}

// Run verifies prefixes across opts.Workers subprocesses and returns a
// Partitioned indistinguishable from an in-process Options.Parallelism
// run: workers execute the identical per-prefix task chains, results
// are assembled in canonical prefix order, and telemetry shards merge
// exactly as Telemetry.Merge does in-process. Worker failures (crash,
// stall, corrupt frames, nonzero exit) are retried with backoff up to
// opts.MaxAttempts; prefixes that keep failing fall back to in-process
// execution, surfacing as quarantined outcomes carrying
// analysis.RungWorkerCrash. Only a verification error — cancellation,
// deadline, non-convergence, an exhausted non-resilient overflow —
// aborts the run.
func Run(net *config.Network, prefixes []route.Prefix, opts Options) (*analysis.Partitioned, error) {
	opts.defaults()
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("coord: multi-process run needs at least one prefix")
	}
	planText := opts.FaultPlan
	if planText == "" {
		planText = os.Getenv(FaultEnv)
	}
	if _, err := ParseFaultPlan(planText); err != nil {
		return nil, err
	}
	exe := opts.Exe
	if exe == "" {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("coord: resolving worker binary: %w", err)
		}
		exe = self
	}

	c := &coordinator{
		net:      net,
		opts:     opts,
		exe:      exe,
		plan:     planText,
		tel:      opts.Verify.Telemetry,
		events:   make(chan event, 16),
		done:     make(chan struct{}),
		respawns: make([]int, opts.Workers),
		netText:  config.Format(net),
	}
	defer c.teardown()
	return c.run(prefixes)
}

type coordinator struct {
	net     *config.Network
	opts    Options
	exe     string
	plan    string
	netText string
	tel     *obs.Telemetry

	tasks    []*taskState
	workers  []*workerProc
	events   chan event
	done     chan struct{} // closed at teardown: readers stop posting
	wg       sync.WaitGroup
	respawns []int
	closed   bool
}

// teardown kills every worker, releases the readers, and reaps the
// children. Safe to call after both normal completion and aborts.
func (c *coordinator) teardown() {
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	for _, w := range c.workers {
		if w != nil {
			w.kill()
		}
	}
	c.wg.Wait()
}

func (c *coordinator) run(prefixes []route.Prefix) (*analysis.Partitioned, error) {
	seen := make(map[route.Prefix]bool, len(prefixes))
	for _, pfx := range prefixes {
		if seen[pfx] {
			continue
		}
		seen[pfx] = true
		c.tasks = append(c.tasks, &taskState{pfx: pfx})
	}

	// Pre-dispatch cache pass: a hit settles the task without a worker
	// round-trip; misses carry their key so workers consult and publish
	// the shared store themselves. Lookups run before any spawn, so a
	// fully warm cache never forks a single child. Running the pass
	// before the LPT sort lets cost estimation skip resolved tasks.
	if c.opts.Cache != nil {
		for _, t := range c.tasks {
			t.key = analysis.CacheKey(c.net, c.opts.Verify, t.pfx, c.opts.Resilient, c.opts.Ladder)
			pipes, out, hit, err := c.opts.Cache.Lookup(c.net, c.opts.Verify, t.key, t.pfx, c.tel)
			if err != nil {
				c.releaseAll()
				return nil, err
			}
			if hit {
				t.outcome, t.pipes, t.done = out, pipes, true
			}
		}
	}

	// Task order: cost-aware LPT, exactly the order prefixRunner seeds
	// its pool queues with — the most expensive prefixes dispatch first,
	// and fault plans keyed by Seq hit the same prefixes every run (for
	// a given store state). Costs are estimated once per task that still
	// needs computing; settled tasks sink to the tail and never dispatch.
	for _, t := range c.tasks {
		if !t.done {
			t.cost = analysis.PrefixCost(c.net, t.pfx)
		}
	}
	sort.SliceStable(c.tasks, func(i, j int) bool {
		return c.tasks[i].cost > c.tasks[j].cost
	})
	for i, t := range c.tasks {
		t.seq = i
	}

	c.workers = make([]*workerProc, c.opts.Workers)
	if !c.allDone() {
		for slot := 0; slot < c.opts.Workers; slot++ {
			c.spawn(slot, false)
		}
	}

	// Supervision cadence: fast enough to catch heartbeat loss promptly,
	// slow enough to stay invisible in profiles.
	tickEvery := c.opts.HeartbeatInterval / 2
	if tickEvery < 5*time.Millisecond {
		tickEvery = 5 * time.Millisecond
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()

	for !c.allDone() {
		c.assign()
		if c.noWorkersLeft() {
			c.quarantineRemaining("no workers left")
			break
		}
		select {
		case ev := <-c.events:
			if ev.w.dead {
				continue // already handled (we killed it)
			}
			if ev.err != nil {
				c.workerDied(ev.w, "crash")
				continue
			}
			if err := c.handleFrame(ev.w, ev.f); err != nil {
				c.releaseAll()
				return nil, err
			}
		case <-tick.C:
			if hook := c.opts.Verify.Interrupt; hook != nil {
				if ierr := hook(); ierr != nil {
					c.releaseAll()
					return nil, resil.Stage("coord", ierr)
				}
			}
			c.supervise()
		}
	}
	c.shutdownWorkers()

	// Quarantine fallback: prefixes whose workers kept dying run
	// in-process through the same task chain (with the ladder when
	// resilient), under the coordinator's own telemetry and interrupt.
	for _, t := range c.tasks {
		if !t.quarantined {
			continue
		}
		crashes := t.attempt
		// The fallback consults the cache too — another process may have
		// published the prefix since the pre-dispatch pass — and publishes
		// the clean result before decorating it with the crash markers
		// (decorated outcomes are never cached: they describe this run's
		// worker fleet, not the verification result).
		pipes, out, hit, err := c.opts.Cache.Lookup(c.net, c.opts.Verify, t.key, t.pfx, c.tel)
		if err != nil {
			c.releaseAll()
			return nil, err
		}
		if !hit {
			pipes, out, err = analysis.RunPrefixTask(c.net, c.opts.Verify, t.pfx, c.opts.Resilient, c.opts.Ladder)
			if err != nil {
				c.releaseAll()
				return nil, err
			}
			c.opts.Cache.Publish(c.net, t.key, t.pfx, pipes, out, nil)
		}
		out.WorkerCrashes = crashes
		out.Quarantined = true
		out.Degraded = true
		out.Rungs = append([]string{analysis.RungWorkerCrash}, out.Rungs...)
		t.outcome, t.pipes, t.done = out, pipes, true
	}

	outs := make([]analysis.PrefixOutcome, 0, len(c.tasks))
	byPrefix := make(map[route.Prefix][]*analysis.Pipeline, len(c.tasks))
	for _, t := range c.tasks {
		outs = append(outs, t.outcome)
		byPrefix[t.pfx] = t.pipes
	}
	return analysis.NewPartitioned(outs, byPrefix), nil
}

// spawn launches a worker into slot. Failures to even start count
// against the slot's respawn budget; a slot that cannot start stays
// dead and its work flows to the other slots or to quarantine.
func (c *coordinator) spawn(slot int, respawn bool) {
	cmd := exec.Command(c.exe, c.opts.Args...)
	cmd.Env = append(os.Environ(), FaultEnv+"="+c.plan, "SRE_COORD_WORKER=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		c.workers[slot] = nil
		return
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		c.workers[slot] = nil
		return
	}
	if err := cmd.Start(); err != nil {
		c.workers[slot] = nil
		return
	}
	w := &workerProc{slot: slot, cmd: cmd,
		stdin: &frameWriter{w: stdin}, closer: stdin.Close, lastSeen: time.Now()}
	c.workers[slot] = w
	c.record(time.Time{}, obs.TraceEvent{Stage: "coord.spawn", Count: int64(slot),
		Outcome: map[bool]string{false: "ok", true: "respawn"}[respawn]})

	// The init frame can be large (the whole network text); write it off
	// the event loop so a worker that dies at startup cannot block us.
	init := &frame{Type: frameInit, Init: &initMsg{Network: c.netText, CacheDir: c.opts.CacheDir,
		Opts: optionsToWire(c.opts.Verify, c.opts.Resilient, c.opts.Ladder, c.opts.HeartbeatInterval, c.opts.MaxFrameBytes)}}
	go func() { _ = w.stdin.write(init) }()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			f, rerr := readFrameLimit(stdout, c.opts.MaxFrameBytes)
			ev := event{w: w, f: f, err: rerr}
			select {
			case c.events <- ev:
			case <-c.done:
				_ = cmd.Wait()
				return
			}
			if rerr != nil {
				_ = cmd.Wait() // reap; exit status is immaterial — EOF said enough
				return
			}
		}
	}()
}

// handleFrame processes one worker frame. A returned error aborts the
// whole run (worker-reported verification errors, matching the
// in-process first-error-abort contract).
func (c *coordinator) handleFrame(w *workerProc, f *frame) error {
	w.lastSeen = time.Now()
	switch f.Type {
	case frameHello:
		w.ready = true
	case frameHeartbeat:
	case frameError:
		return f.Err.ToError()
	case frameResult:
		if f.Result == nil {
			c.workerDied(w, "bad result frame")
			return nil
		}
		t := w.task
		if t == nil || t.done || f.Result.Seq != t.seq {
			return nil // stale result from an attempt we already wrote off
		}
		pipes, derr := decodePipelines(c.net, c.opts.Verify, f.Result.Pipes, c.tel)
		if derr != nil {
			if !recoverableDecode(derr) {
				return derr
			}
			// A corrupt or overflowing result is a failed attempt: the
			// worker is suspect, kill and retry elsewhere.
			c.workerDied(w, "undecodable result")
			return nil
		}
		out := outcomeFromWire(t.pfx, f.Result.Outcome)
		out.WorkerCrashes = t.attempt
		t.outcome, t.pipes, t.done = out, pipes, true
		w.task = nil
		c.tel.Merge(f.Result.Telemetry.Import())
		c.record(t.started, obs.TraceEvent{Stage: "coord.task", Prefix: t.pfx.String(),
			Wall: time.Since(t.started).Nanoseconds(), Count: int64(t.attempt), Outcome: "ok"})
	}
	return nil
}

// recoverableDecode reports whether a decode failure should count as a
// retryable worker fault. Interruptions propagate as aborts.
func recoverableDecode(err error) bool {
	return !resil.Interruption(err)
}

// workerDied handles any worker loss — process exit, read error,
// heartbeat loss, task deadline. The inflight task (if any) is retried
// or quarantined, and the slot respawns within its budget.
func (c *coordinator) workerDied(w *workerProc, reason string) {
	if w.dead {
		return
	}
	w.dead = true
	w.kill()
	pfx := ""
	if w.task != nil {
		pfx = w.task.pfx.String()
	}
	c.record(time.Time{}, obs.TraceEvent{Stage: "coord.crash", Prefix: pfx,
		Count: int64(w.slot), Outcome: reason})
	if t := w.task; t != nil {
		w.task = nil
		t.attempt++
		if t.attempt >= c.opts.MaxAttempts {
			t.quarantined = true
			c.record(time.Time{}, obs.TraceEvent{Stage: "coord.quarantine",
				Prefix: t.pfx.String(), Count: int64(t.attempt), Outcome: reason})
		} else {
			backoff := c.opts.RetryBackoff << uint(t.attempt-1)
			t.notBefore = time.Now().Add(backoff)
			c.record(time.Time{}, obs.TraceEvent{Stage: "coord.retry",
				Prefix: t.pfx.String(), Count: int64(t.attempt), Outcome: reason})
		}
	}
	if c.respawns[w.slot] < c.opts.MaxRespawns {
		c.respawns[w.slot]++
		c.spawn(w.slot, true)
	} else {
		c.workers[w.slot] = nil
	}
}

// assign hands pending tasks to idle ready workers, in task order,
// honoring retry backoff.
func (c *coordinator) assign() {
	now := time.Now()
	for _, w := range c.workers {
		if w == nil || w.dead || !w.ready || w.task != nil {
			continue
		}
		t := c.nextTask(now)
		if t == nil {
			return
		}
		t.started = now
		w.task = t
		msg := &frame{Type: frameTask, Task: &taskMsg{Seq: t.seq, Attempt: t.attempt, Prefix: t.pfx.String(), CacheKey: t.key}}
		if err := w.stdin.write(msg); err != nil {
			c.workerDied(w, "write failed")
		}
	}
}

// nextTask returns the first dispatchable task: not finished, not
// quarantined, not inflight, past its retry backoff.
func (c *coordinator) nextTask(now time.Time) *taskState {
	for _, t := range c.tasks {
		if t.done || t.quarantined || t.notBefore.After(now) {
			continue
		}
		if c.inflight(t) {
			continue
		}
		return t
	}
	return nil
}

func (c *coordinator) inflight(t *taskState) bool {
	for _, w := range c.workers {
		if w != nil && !w.dead && w.task == t {
			return true
		}
	}
	return false
}

// supervise enforces heartbeat grace and per-task deadlines.
func (c *coordinator) supervise() {
	now := time.Now()
	for _, w := range c.workers {
		if w == nil || w.dead {
			continue
		}
		if now.Sub(w.lastSeen) > c.opts.HeartbeatGrace {
			c.workerDied(w, "heartbeat loss")
			continue
		}
		if c.opts.TaskTimeout > 0 && w.task != nil && now.Sub(w.task.started) > c.opts.TaskTimeout {
			c.workerDied(w, "task deadline")
		}
	}
}

func (c *coordinator) allDone() bool {
	for _, t := range c.tasks {
		if !t.done && !t.quarantined {
			return false
		}
	}
	return true
}

func (c *coordinator) noWorkersLeft() bool {
	for _, w := range c.workers {
		if w != nil && !w.dead {
			return false
		}
	}
	return true
}

// quarantineRemaining marks every unfinished task quarantined (used
// when the worker fleet is unrecoverable).
func (c *coordinator) quarantineRemaining(reason string) {
	for _, t := range c.tasks {
		if t.done || t.quarantined {
			continue
		}
		t.quarantined = true
		if t.attempt == 0 {
			t.attempt = 1 // at least the fleet loss counts as one failure
		}
		c.record(time.Time{}, obs.TraceEvent{Stage: "coord.quarantine",
			Prefix: t.pfx.String(), Count: int64(t.attempt), Outcome: reason})
	}
}

// shutdownWorkers asks live workers to exit and closes their pipes;
// teardown reaps whatever ignores the request.
func (c *coordinator) shutdownWorkers() {
	for _, w := range c.workers {
		if w == nil || w.dead {
			continue
		}
		_ = w.stdin.write(&frame{Type: frameShutdown})
		_ = w.closer()
	}
}

// releaseAll frees every decoded pipeline on the abort path.
func (c *coordinator) releaseAll() {
	for _, t := range c.tasks {
		for _, p := range t.pipes {
			p.Release()
		}
		t.pipes = nil
	}
}

// record captures one coordinator flight-recorder event; Count carries
// the worker slot or attempt (see each call site's stage).
func (c *coordinator) record(start time.Time, e obs.TraceEvent) {
	if !c.tel.Recording() {
		return
	}
	c.tel.Record(start, e)
}

package coord

// The pipeline/outcome/error codec lives in internal/analysis
// (wire.go), shared with the persistent result store; coord keeps
// unexported aliases so the frame structs and the worker/coordinator
// code read unchanged.

import (
	"time"

	"sre/internal/analysis"
	"sre/internal/src"
)

type (
	wirePipeline = analysis.WirePipeline
	wireSource   = analysis.WireSource
	wirePFEC     = analysis.WirePFEC
	wireOutcome  = analysis.WireOutcome
	wireError    = analysis.WireError
)

const errKindInternal = analysis.ErrKindInternal

var (
	encodePipelines = analysis.EncodePipelines
	decodePipelines = analysis.DecodePipelines
	outcomeToWire   = analysis.OutcomeToWire
	outcomeFromWire = analysis.OutcomeFromWire
	errorToWire     = analysis.ErrorToWire
)

// optionsToWire extracts the transportable verification options.
func optionsToWire(opts src.Options, ladder bool, lad analysis.LadderOptions, heartbeat time.Duration, maxFrame int64) wireOptions {
	return wireOptions{
		PruneK:               opts.PruneK,
		Abstract:             opts.Abstract,
		NoECMP:               opts.NoECMP,
		IBGPFullMesh:         opts.IBGPFullMesh,
		MaxHops:              opts.MaxHops,
		MaxIterations:        opts.MaxIterations,
		BDDNodeLimit:         opts.BDDNodeLimit,
		LegacyKernel:         opts.LegacyBDDKernel,
		VarOrder:             opts.VarOrder,
		DynamicReorder:       opts.DynamicReorder,
		Ladder:               ladder,
		DisableBudgetHalving: lad.DisableBudgetHalving,
		HeartbeatMS:          int(heartbeat.Milliseconds()),
		MaxFrameBytes:        maxFrame,
	}
}

// optionsFromWire rebuilds engine options worker-side. Telemetry and
// interrupt hooks are process-local and installed per task.
func optionsFromWire(wo wireOptions) src.Options {
	return src.Options{
		PruneK:          wo.PruneK,
		Abstract:        wo.Abstract,
		NoECMP:          wo.NoECMP,
		IBGPFullMesh:    wo.IBGPFullMesh,
		MaxHops:         wo.MaxHops,
		MaxIterations:   wo.MaxIterations,
		BDDNodeLimit:    wo.BDDNodeLimit,
		LegacyBDDKernel: wo.LegacyKernel,
		VarOrder:        wo.VarOrder,
		DynamicReorder:  wo.DynamicReorder,
		Parallelism:     1,
	}
}

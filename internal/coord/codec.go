package coord

// Pipeline codec: a worker flattens its pipelines — PFEC path metadata
// plus one bdd.Write blob per pipeline with every predicate as a root,
// in (source router, PFEC index) order — and the coordinator rebuilds
// them as query-only decoded pipelines in a fresh symbolic space with
// the identical variable layout (analysis.NewRunSpace). Decoded roots
// are Ref'd immediately: bdd.Manager.Read hash-conses without
// referencing, and the references must survive later GC safe points,
// mirroring how spf.Forward references every PFEC predicate.

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"sre/internal/analysis"
	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/spf"
	"sre/internal/src"
	"sre/internal/topology"
)

// encodePipelines serializes a prefix task's pipelines for transport.
func encodePipelines(pipes []*analysis.Pipeline, net *config.Network) ([]wirePipeline, error) {
	out := make([]wirePipeline, 0, len(pipes))
	n := net.Topology.NumRouters()
	for _, p := range pipes {
		wp := wirePipeline{
			SRCNanos: p.SRCTime.Nanoseconds(),
			SPFNanos: p.SPFTime.Nanoseconds(),
			Sources:  make([]wireSource, n),
		}
		if p.Scope != nil {
			wp.Scope = p.Scope.String()
		}
		var roots []bdd.Node
		for r := 0; r < n; r++ {
			pfecs := p.PFECs(topology.RouterID(r))
			ws := wireSource{PFECs: make([]wirePFEC, 0, len(pfecs))}
			for _, pf := range pfecs {
				path := make([]int32, len(pf.Path))
				for i, h := range pf.Path {
					path[i] = int32(h)
				}
				ws.PFECs = append(ws.PFECs, wirePFEC{
					Path: path, Delivered: pf.Delivered, Looped: pf.Looped})
				roots = append(roots, pf.Pred)
			}
			wp.Sources[r] = ws
		}
		var buf bytes.Buffer
		if err := p.Sp.M.Write(&buf, roots...); err != nil {
			return nil, fmt.Errorf("coord: encode pipeline: %w", err)
		}
		wp.BDD = buf.Bytes()
		out = append(out, wp)
	}
	return out, nil
}

// decodePipelines rebuilds a task's pipelines from the wire form. Each
// pipeline gets its own symbolic space shaped exactly like the worker's
// (same variable layout, node limit, interrupt hook, and telemetry from
// opts), so downstream property queries behave identically to pipelines
// built in-process. Any fault — a malformed blob, mismatched counts, a
// node-limit overflow while re-consing — surfaces as an error, never a
// panic: a corrupt result is a retryable worker failure.
func decodePipelines(net *config.Network, opts src.Options, wps []wirePipeline, tel *obs.Telemetry) (pipes []*analysis.Pipeline, err error) {
	defer func() {
		if err != nil {
			for _, p := range pipes {
				p.Release()
			}
			pipes = nil
		}
	}()
	defer guardDecode(&err)
	n := net.Topology.NumRouters()
	for _, wp := range wps {
		var scope *route.Prefix
		if wp.Scope != "" {
			s, perr := route.ParsePrefix(wp.Scope)
			if perr != nil {
				return pipes, fmt.Errorf("coord: decode pipeline scope: %w", perr)
			}
			scope = &s
		}
		if len(wp.Sources) != n {
			return pipes, fmt.Errorf("coord: decode pipeline: %d sources, network has %d routers", len(wp.Sources), n)
		}
		sp := analysis.NewRunSpace(net, opts)
		roots, rerr := sp.M.Read(bytes.NewReader(wp.BDD))
		if rerr != nil {
			return pipes, fmt.Errorf("coord: decode pipeline BDDs: %w", rerr)
		}
		pfecs := make([][]*spf.PFEC, n)
		next := 0
		for r := 0; r < n; r++ {
			list := make([]*spf.PFEC, 0, len(wp.Sources[r].PFECs))
			for _, wpf := range wp.Sources[r].PFECs {
				if next >= len(roots) {
					return pipes, fmt.Errorf("coord: decode pipeline: %d predicates for more PFECs", len(roots))
				}
				if len(wpf.Path) == 0 {
					return pipes, fmt.Errorf("coord: decode pipeline: empty PFEC path")
				}
				path := make([]topology.RouterID, len(wpf.Path))
				for i, h := range wpf.Path {
					if h < 0 || int(h) >= n {
						return pipes, fmt.Errorf("coord: decode pipeline: router %d out of range", h)
					}
					path[i] = topology.RouterID(h)
				}
				list = append(list, &spf.PFEC{
					Path: path, Pred: sp.M.Ref(roots[next]),
					Delivered: wpf.Delivered, Looped: wpf.Looped})
				next++
			}
			pfecs[r] = list
		}
		if next != len(roots) {
			return pipes, fmt.Errorf("coord: decode pipeline: %d predicates for %d PFECs", len(roots), next)
		}
		pipes = append(pipes, analysis.NewDecodedPipeline(net, sp, scope, pfecs,
			time.Duration(wp.SRCNanos), time.Duration(wp.SPFNanos), tel))
	}
	return pipes, nil
}

// guardDecode converts expected decode-time panics (BDD node-limit
// overflow while re-consing, cooperative interruption from the space's
// interrupt hook) into errors; anything else is a defect and re-panics.
func guardDecode(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok && (errors.Is(e, bdd.ErrNodeLimit) || resil.Interruption(e)) {
		*errp = resil.Stage("coord", e)
		return
	}
	panic(r)
}

// outcomeToWire / outcomeFromWire translate analysis.PrefixOutcome.
// WorkerCrashes never crosses the wire: the coordinator owns attempt
// accounting.
func outcomeToWire(out analysis.PrefixOutcome) wireOutcome {
	return wireOutcome{
		Err:             errorToWire(out.Err),
		Quarantined:     out.Quarantined,
		Degraded:        out.Degraded,
		Rungs:           out.Rungs,
		EffectivePruneK: out.EffectivePruneK,
	}
}

func outcomeFromWire(pfx route.Prefix, wo wireOutcome) analysis.PrefixOutcome {
	return analysis.PrefixOutcome{
		Prefix:          pfx,
		Err:             wo.Err.toError(),
		Quarantined:     wo.Quarantined,
		Degraded:        wo.Degraded,
		Rungs:           wo.Rungs,
		EffectivePruneK: wo.EffectivePruneK,
	}
}

// optionsToWire extracts the transportable verification options.
func optionsToWire(opts src.Options, ladder bool, lad analysis.LadderOptions, heartbeat time.Duration) wireOptions {
	return wireOptions{
		PruneK:               opts.PruneK,
		Abstract:             opts.Abstract,
		NoECMP:               opts.NoECMP,
		IBGPFullMesh:         opts.IBGPFullMesh,
		MaxHops:              opts.MaxHops,
		MaxIterations:        opts.MaxIterations,
		BDDNodeLimit:         opts.BDDNodeLimit,
		LegacyKernel:         opts.LegacyBDDKernel,
		Ladder:               ladder,
		DisableBudgetHalving: lad.DisableBudgetHalving,
		HeartbeatMS:          int(heartbeat.Milliseconds()),
	}
}

// optionsFromWire rebuilds engine options worker-side. Telemetry and
// interrupt hooks are process-local and installed per task.
func optionsFromWire(wo wireOptions) src.Options {
	return src.Options{
		PruneK:          wo.PruneK,
		Abstract:        wo.Abstract,
		NoECMP:          wo.NoECMP,
		IBGPFullMesh:    wo.IBGPFullMesh,
		MaxHops:         wo.MaxHops,
		MaxIterations:   wo.MaxIterations,
		BDDNodeLimit:    wo.BDDNodeLimit,
		LegacyBDDKernel: wo.LegacyKernel,
		Parallelism:     1,
	}
}

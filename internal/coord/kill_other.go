//go:build !unix

package coord

import "os"

// killSelf approximates SIGKILL on platforms without it: an immediate
// exit with the conventional killed status.
func killSelf() { os.Exit(137) }

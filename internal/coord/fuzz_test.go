package coord

// The wire decoder shares the config parser's totality contract: any
// byte stream either decodes into frames or returns an error — never a
// panic, never an unbounded allocation. The coordinator feeds it
// subprocess stdout, which a crashing worker can truncate at any byte
// and a corrupting one can fill with garbage.

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// frameBytes encodes a frame into its wire form for seeding.
func frameBytes(t testFatalf, f *frame) []byte {
	var buf bytes.Buffer
	if err := (&frameWriter{w: &buf}).write(f); err != nil {
		t.Fatalf("encoding seed frame: %v", err)
	}
	return buf.Bytes()
}

type testFatalf interface{ Fatalf(string, ...any) }

// FuzzDecodeFrame fuzzes readFrame with torn frames, oversized length
// headers, and invalid JSON. The decoder must be total (error, never
// panic), and any frame it does accept must re-encode.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed frames of every type.
	f.Add(frameBytes(f, &frame{Type: frameHello, Hello: &helloMsg{PID: 42}}))
	f.Add(frameBytes(f, &frame{Type: frameHeartbeat}))
	f.Add(frameBytes(f, &frame{Type: frameShutdown}))
	f.Add(frameBytes(f, &frame{Type: frameTask, Task: &taskMsg{Seq: 1, Attempt: 2, Prefix: "10.0.0.0/8"}}))
	f.Add(frameBytes(f, &frame{Type: frameError, Err: &wireError{Kind: errKindInternal, Stage: "spf", Msg: "boom"}}))
	f.Add(frameBytes(f, &frame{Type: frameResult, Result: &taskResult{Seq: 3, Prefix: "10.0.0.0/8"}}))
	// Two frames back to back: stream decoding.
	f.Add(append(frameBytes(f, &frame{Type: frameHeartbeat}), frameBytes(f, &frame{Type: frameShutdown})...))
	// A torn frame: header promises more than the stream holds.
	f.Add(frameBytes(f, &frame{Type: frameHeartbeat})[:5])
	// The corrupt fault's signature garbage.
	f.Add([]byte{37, 0, 0, 0, '{', '"', 't', 'y', 'p', 'e', '"', ':', '}'})
	// Oversized length header with no payload behind it.
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, 1<<30)
	f.Add(huge)
	// Length over the cap.
	over := make([]byte, 4)
	binary.LittleEndian.PutUint32(over, 1<<31)
	f.Add(over)
	// Zero length, empty input, bare junk.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := readFrame(r)
			if err != nil {
				if fr != nil {
					t.Fatalf("readFrame returned both a frame and error %v", err)
				}
				return
			}
			if fr.Type == "" {
				t.Fatal("readFrame accepted a frame without a type")
			}
			// An accepted frame must survive re-encoding and re-decoding.
			var buf bytes.Buffer
			if err := (&frameWriter{w: &buf}).write(fr); err != nil {
				t.Fatalf("re-encoding accepted frame: %v", err)
			}
			if _, err := readFrame(&buf); err != nil {
				t.Fatalf("re-decoding re-encoded frame: %v", err)
			}
		}
	})
}

// TestReadFrameTornStream pins the torn-frame error class: a frame cut
// anywhere must yield io.ErrUnexpectedEOF (or io.EOF at a frame
// boundary), so the coordinator attributes it as a crash, not a
// protocol bug.
func TestReadFrameTornStream(t *testing.T) {
	whole := frameBytes(t, &frame{Type: frameTask, Task: &taskMsg{Seq: 7, Prefix: "10.0.0.0/8"}})
	for cut := 0; cut < len(whole); cut++ {
		_, err := readFrame(bytes.NewReader(whole[:cut]))
		switch {
		case cut == 0:
			if err != io.EOF {
				t.Fatalf("cut at 0: err = %v, want io.EOF", err)
			}
		default:
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	}
	if f, err := readFrame(bytes.NewReader(whole)); err != nil || f.Task == nil || f.Task.Seq != 7 {
		t.Fatalf("whole frame: f=%+v err=%v", f, err)
	}
}

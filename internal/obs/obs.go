// Package obs is the telemetry substrate of the SRE pipeline: counters,
// gauges, and histograms with atomic updates and a JSON snapshot,
// hierarchical tracing spans, and a pluggable progress sink.
//
// The package is stdlib-only and imports nothing from the rest of the
// repository, so every layer (including internal/bdd at the bottom of
// the dependency tree) can publish into it.
//
// Everything is nil-safe: a nil *Telemetry hands out nil instrument
// handles, and every method on a nil handle is a no-op. Hot paths
// therefore resolve their handles once at construction time and call
// them unconditionally; with telemetry disabled the calls reduce to a
// nil check (no allocation, no atomics — see TestNilTelemetryAllocs).
//
// Metric naming convention: dotted "layer.metric" names, e.g.
// "bdd.gc_runs", "src.activations", "spf.pfecs". Counters are
// cumulative and monotone for the lifetime of the registry, even when
// several BDD managers (miner strata) report into it in sequence.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. A nil *Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative to preserve
// monotonicity; negative deltas are dropped).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can move both ways. A nil *Gauge is a
// valid no-op instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Max stores x only if it exceeds the current value (high-water marks
// such as peak BDD nodes across several managers).
func (g *Gauge) Max(x float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= x {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations whose bit length is i, i.e. values in
// [2^(i-1), 2^i). Bucket 0 counts observations ≤ 0.
const histBuckets = 64

// Histogram records a distribution of int64 observations (typically
// nanosecond durations) in power-of-two buckets. A nil *Histogram is a
// valid no-op instrument.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if old >= v || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	// P50/P90/P99 are upper bounds of the power-of-two bucket holding
	// the respective quantile (order-of-magnitude precision).
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
}

// snapshot captures the histogram. Concurrent Observe calls may tear
// between fields; counts remain monotone.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	quantile := func(q float64) int64 {
		target := int64(math.Ceil(q * float64(s.Count)))
		if target <= 0 {
			return 0
		}
		cum := int64(0)
		for i := 0; i < histBuckets; i++ {
			cum += h.buckets[i].Load()
			if cum >= target {
				if i == 0 {
					return 0
				}
				if i >= 63 {
					return math.MaxInt64
				}
				return 1 << i // bucket upper bound
			}
		}
		return s.Max
	}
	s.P50, s.P90, s.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	return s
}

// Telemetry is a registry of named instruments, tracing spans, and an
// optional progress sink. A nil *Telemetry disables everything.
type Telemetry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	roots    []*Span

	sink atomic.Pointer[sinkBox]
	rec  atomic.Pointer[Recorder]
	// worker tags the registry with the scheduler worker recording
	// through it (see SetWorker); written before the worker goroutine
	// starts, read by Record.
	worker int32
}

type sinkBox struct{ s Sink }

// New creates an empty telemetry registry.
func New() *Telemetry {
	return &Telemetry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetSink installs the progress sink (nil removes it). Safe to call
// concurrently with Emit.
func (t *Telemetry) SetSink(s Sink) {
	if t == nil {
		return
	}
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: s})
}

// Active reports whether a progress sink is installed. Producers use it
// to skip building event detail strings when nobody listens.
func (t *Telemetry) Active() bool {
	return t != nil && t.sink.Load() != nil
}

// Emit forwards a progress event to the sink, if any.
func (t *Telemetry) Emit(e Event) {
	if t == nil {
		return
	}
	if box := t.sink.Load(); box != nil {
		box.s.Emit(e)
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		h = &Histogram{}
		t.hists[name] = h
	}
	return h
}

// Shard creates a child registry for one worker of a parallel run. The
// shard has its own instrument maps — updates touch no shared state, so
// workers never contend on the parent's lock or cachelines — but
// forwards progress events to the parent's sink (sinks must be safe for
// concurrent use, which the package's sinks are) and records flight-
// recorder events into the parent's recorder (whose ring is lock-
// striped by worker, so shards lock disjoint stripes). Fold a finished
// shard back with Merge. Returns nil on a nil registry.
func (t *Telemetry) Shard() *Telemetry {
	if t == nil {
		return nil
	}
	s := New()
	s.SetSink(SinkFunc(t.Emit))
	s.SetRecorder(t.rec.Load())
	return s
}

// Merge folds the instruments of a shard into t: counters add, gauges
// merge by maximum (they track high-water marks across managers),
// histograms merge bucket-wise, and root spans are appended. Call it
// after the shard's worker has stopped updating; Merge itself is safe
// to call concurrently with reads of t.
func (t *Telemetry) Merge(s *Telemetry) {
	if t == nil || s == nil {
		return
	}
	s.mu.Lock()
	counters := make(map[string]*Counter, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(s.gauges))
	for k, v := range s.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(s.hists))
	for k, v := range s.hists {
		hists[k] = v
	}
	roots := append([]*Span(nil), s.roots...)
	s.mu.Unlock()

	for k, c := range counters {
		t.Counter(k).Add(c.Value())
	}
	for k, g := range gauges {
		t.Gauge(k).Max(g.Value())
	}
	for k, h := range hists {
		t.Histogram(k).merge(h)
	}
	if len(roots) > 0 {
		t.mu.Lock()
		t.roots = append(t.roots, roots...)
		t.mu.Unlock()
	}
	// Shards created by Shard share the parent's recorder (absorb is a
	// no-op then); a foreign shard's private recorder is drained in.
	t.rec.Load().absorb(s.rec.Load())
}

// merge folds src into h bucket-wise.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	for {
		v := src.max.Load()
		old := h.max.Load()
		if old >= v || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for i := 0; i < histBuckets; i++ {
		h.buckets[i].Add(src.buckets[i].Load())
	}
}

// Report is the JSON snapshot of a telemetry registry.
type Report struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot captures every instrument and span. Spans still running are
// reported with their duration so far. Safe to call concurrently with
// updates; counters never decrease between snapshots.
func (t *Telemetry) Snapshot() Report {
	r := Report{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
	}
	if t == nil {
		return r
	}
	t.mu.Lock()
	counters := make(map[string]*Counter, len(t.counters))
	for k, v := range t.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(t.gauges))
	for k, v := range t.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(t.hists))
	for k, v := range t.hists {
		hists[k] = v
	}
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()

	for k, c := range counters {
		r.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		r.Gauges[k] = g.Value()
	}
	if len(hists) > 0 {
		r.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			r.Histograms[k] = h.snapshot()
		}
	}
	for _, s := range roots {
		r.Spans = append(r.Spans, s.snapshot())
	}
	return r
}

// WriteJSON writes the snapshot as indented JSON.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// CounterNames returns the registered counter names, sorted.
func (t *Telemetry) CounterNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.counters))
	for k := range t.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

//go:build !linux

package obs

// ThreadCPUNanos returns 0 on platforms without per-thread rusage;
// TraceEvent.CPU stays unset there.
func ThreadCPUNanos() int64 { return 0 }

package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestWireRoundTrip pins the coordinator/worker telemetry contract:
// exporting a registry to wire form, shipping it as JSON, importing it,
// and merging into a parent must be indistinguishable from merging the
// original shard in-process (the Merge semantics of TestShardMerge).
func TestWireRoundTrip(t *testing.T) {
	shard := New()
	shard.Counter("bdd.gc_runs").Add(3)
	shard.Counter("src.activations").Add(41)
	shard.Gauge("bdd.peak_nodes").Max(12345)
	for i := 0; i < 7; i++ {
		shard.Histogram("spf.router_ns").Observe(int64(1) << uint(i*3))
	}
	shard.Histogram("spf.router_ns").Observe(0) // bucket 0

	w := shard.ExportWire()
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Wire
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	direct, viaWire := New(), New()
	direct.Counter("seed").Inc()
	viaWire.Counter("seed").Inc()
	direct.Merge(shard)
	viaWire.Merge(back.Import())

	ds, ws := direct.Snapshot(), viaWire.Snapshot()
	if !reflect.DeepEqual(ds.Counters, ws.Counters) {
		t.Errorf("counters diverge: direct %+v wire %+v", ds.Counters, ws.Counters)
	}
	if !reflect.DeepEqual(ds.Gauges, ws.Gauges) {
		t.Errorf("gauges diverge: direct %+v wire %+v", ds.Gauges, ws.Gauges)
	}
	if !reflect.DeepEqual(ds.Histograms, ws.Histograms) {
		t.Errorf("histograms diverge: direct %+v wire %+v", ds.Histograms, ws.Histograms)
	}
}

// TestWireHistogramBucketAlignment verifies the wire form preserves the
// power-of-two bucket layout exactly: every observation lands in the
// same bucket after a round trip, so quantile estimates (bucket upper
// bounds) survive transport and a merged import never shifts mass
// between buckets.
func TestWireHistogramBucketAlignment(t *testing.T) {
	shard := New()
	h := shard.Histogram("h")
	// One observation per bucket boundary: 0 → bucket 0, 2^i → bucket
	// i+1 (bit length of 2^i is i+1).
	h.Observe(0)
	for i := 0; i < 62; i++ {
		h.Observe(int64(1) << uint(i))
	}
	h.Observe(math.MaxInt64) // clamps into the last bucket

	imported := shard.ExportWire().Import()
	orig := shard.hists["h"]
	got := imported.hists["h"]
	for i := 0; i < histBuckets; i++ {
		if o, g := orig.buckets[i].Load(), got.buckets[i].Load(); o != g {
			t.Errorf("bucket %d: original %d, imported %d", i, o, g)
		}
	}
	if orig.count.Load() != got.count.Load() || orig.sum.Load() != got.sum.Load() || orig.max.Load() != got.max.Load() {
		t.Errorf("summary fields diverge: orig count=%d sum=%d max=%d, got count=%d sum=%d max=%d",
			orig.count.Load(), orig.sum.Load(), orig.max.Load(),
			got.count.Load(), got.sum.Load(), got.max.Load())
	}
	// Quantiles derive only from buckets, so they must match too.
	if o, g := orig.snapshot(), got.snapshot(); o != g {
		t.Errorf("snapshot diverges: orig %+v got %+v", o, g)
	}
	// Buckets past the local layout fold into the last bucket rather
	// than being dropped: Count stays equal to the bucket total.
	over := &Wire{Hists: map[string]WireHistogram{
		"h": {Count: 2, Sum: 10, Max: 8, Buckets: append(make([]int64, histBuckets+3), 0)[:histBuckets+3]},
	}}
	over.Hists["h"].Buckets[histBuckets+1] = 2
	folded := over.Import().hists["h"]
	if folded.buckets[histBuckets-1].Load() != 2 {
		t.Errorf("overflow buckets not folded: last bucket = %d, want 2", folded.buckets[histBuckets-1].Load())
	}
}

// TestWireNil pins the degraded path: a lost shard imports to nil and
// merges as a no-op, and a nil registry exports to nil.
func TestWireNil(t *testing.T) {
	var tel *Telemetry
	if w := tel.ExportWire(); w != nil {
		t.Fatal("nil telemetry must export nil")
	}
	var w *Wire
	if got := w.Import(); got != nil {
		t.Fatal("nil wire must import nil")
	}
	parent := New()
	parent.Merge(w.Import()) // must not panic
	// An empty registry exports an empty (but non-nil) wire value that
	// imports cleanly.
	empty := New().ExportWire()
	if empty == nil {
		t.Fatal("empty telemetry must export a non-nil wire value")
	}
	if snap := empty.Import().Snapshot(); len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("empty wire import not empty: %+v", snap)
	}
}

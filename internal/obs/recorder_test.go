package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderWraparound pins the ring semantics: a full stripe
// overwrites its oldest events, Dropped counts the overwritten ones,
// and Events returns the surviving window in Start order.
func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(recStripes * 2) // 2 slots per stripe
	tel := New()
	tel.SetRecorder(r)
	tel.SetWorker(0) // everything lands on stripe 0
	for i := 0; i < 5; i++ {
		tel.Record(r.Epoch().Add(time.Duration(i)*time.Millisecond),
			TraceEvent{Stage: "s", Count: int64(i)})
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (stripe capacity)", got)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Count != 3 || evs[1].Count != 4 {
		t.Fatalf("Events = %+v, want the two newest (counts 3, 4)", evs)
	}
	if evs[0].Start >= evs[1].Start {
		t.Fatalf("Events not sorted by Start: %d then %d", evs[0].Start, evs[1].Start)
	}
}

// TestRecorderConcurrentShards drives one recorder from many worker
// shards under the race detector: shards share the parent's recorder
// (stripes are selected by worker ID), Merge leaves the event set
// intact, and Worker attribution survives.
func TestRecorderConcurrentShards(t *testing.T) {
	const workers, perWorker = 8, 200
	r := NewRecorder(workers * perWorker)
	parent := New()
	parent.SetRecorder(r)
	shards := make([]*Telemetry, workers)
	for i := range shards {
		shards[i] = parent.Shard()
		shards[i].SetWorker(i)
	}
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *Telemetry) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				s.Record(time.Time{}, TraceEvent{Stage: "task", Count: int64(j)})
			}
		}(i, s)
	}
	wg.Wait()
	for _, s := range shards {
		parent.Merge(s)
	}
	if got := r.Len(); got != workers*perWorker {
		t.Fatalf("Len = %d, want %d (capacity was never exceeded)", got, workers*perWorker)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	perID := map[int32]int{}
	for _, e := range r.Events() {
		perID[e.Worker]++
	}
	for i := 0; i < workers; i++ {
		if perID[int32(i)] != perWorker {
			t.Fatalf("worker %d recorded %d events, want %d", i, perID[int32(i)], perWorker)
		}
	}
}

// TestRecordingDisabledAllocs pins the zero-allocation guarantee of the
// disabled flight recorder: Recording and Record on a nil registry or a
// registry without a recorder must not allocate — stage boundaries pay
// one nil check and an atomic load when nobody records.
func TestRecordingDisabledAllocs(t *testing.T) {
	var nilTel *Telemetry
	bare := New() // telemetry on, recorder off
	allocs := testing.AllocsPerRun(100, func() {
		if nilTel.Recording() || bare.Recording() {
			t.Fatal("must not be recording")
		}
		nilTel.Record(time.Time{}, TraceEvent{Stage: "src"})
		bare.Record(time.Time{}, TraceEvent{Stage: "src"})
		nilTel.SetWorker(3)
	})
	if allocs != 0 {
		t.Errorf("disabled recorder allocated %v times per op, want 0", allocs)
	}
}

// TestRecorderEnabledNoAllocs: recording an event built from static
// strings into a pre-grown stripe allocates nothing either — the event
// is a fixed-size value copied into the ring slot.
func TestRecorderEnabledNoAllocs(t *testing.T) {
	r := NewRecorder(recStripes * 4)
	tel := New()
	tel.SetRecorder(r)
	start := time.Now()
	// Fill stripe 0 so the steady state is overwrite, not append.
	for i := 0; i < 8; i++ {
		tel.Record(start, TraceEvent{Stage: "warm"})
	}
	allocs := testing.AllocsPerRun(100, func() {
		tel.Record(start, TraceEvent{Stage: "src", Wall: 5, Count: 7, Outcome: "ok"})
	})
	if allocs != 0 {
		t.Errorf("enabled recorder allocated %v times per event, want 0", allocs)
	}
}

// TestShardHistogramBucketAlignment checks that histogram merging is
// bucket-wise (quantiles over the union match quantiles over a single
// registry observing everything) and that gauges merge by maximum.
func TestShardHistogramBucketAlignment(t *testing.T) {
	parent := New()
	a, b := parent.Shard(), parent.Shard()
	// Observations straddling three power-of-two buckets: 100 → bucket
	// [64,128), 1000 → [512,1024), 5000 → [4096,8192).
	a.Histogram("h").Observe(100)
	a.Histogram("h").Observe(1000)
	b.Histogram("h").Observe(1000)
	b.Histogram("h").Observe(5000)
	a.Gauge("g").Max(10)
	b.Gauge("g").Max(4)
	parent.Merge(a)
	parent.Merge(b)

	want := New()
	for _, v := range []int64{100, 1000, 1000, 5000} {
		want.Histogram("h").Observe(v)
	}
	got := parent.Snapshot().Histograms["h"]
	ref := want.Snapshot().Histograms["h"]
	if got != ref {
		t.Errorf("merged histogram %+v differs from single-registry reference %+v", got, ref)
	}
	if got.Count != 4 || got.Sum != 7100 || got.Max != 5000 {
		t.Errorf("merged histogram = %+v, want count 4 sum 7100 max 5000", got)
	}
	if got.P50 != 1024 {
		t.Errorf("merged P50 = %d, want 1024 (upper bound of [512,1024))", got.P50)
	}
	if g := parent.Snapshot().Gauges["g"]; g != 10 {
		t.Errorf("merged gauge = %v, want max 10", g)
	}
}

// TestMergeAbsorbsForeignRecorder: merging a shard that carries its own
// recorder (e.g. telemetry from another process) drains its events into
// the parent's recorder.
func TestMergeAbsorbsForeignRecorder(t *testing.T) {
	parent := New()
	parent.SetRecorder(NewRecorder(64))
	foreign := New()
	foreign.SetRecorder(NewRecorder(64))
	foreign.Record(time.Time{}, TraceEvent{Stage: "remote"})
	parent.Merge(foreign)
	evs := parent.FlightRecorder().Events()
	if len(evs) != 1 || evs[0].Stage != "remote" {
		t.Fatalf("parent recorder = %+v, want the foreign event", evs)
	}
}

// TestEventLogRoundTrip: WriteEventLog → ReadEventLog is lossless for
// events, header counts, and environment metadata.
func TestEventLogRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	tel := New()
	tel.SetRecorder(r)
	tel.SetWorker(2)
	in := []TraceEvent{
		{Stage: "src", Prefix: "10.0.0.0/24", Wall: 1000, CPU: 900, Nodes: 42, Cache: 7, Count: 3, Outcome: "ok"},
		{Stage: "bdd.overflow", Outcome: "overflow"},
	}
	for i, e := range in {
		tel.Record(r.Epoch().Add(time.Duration(i)*time.Microsecond), e)
	}
	env := Environment()
	env.BDDKernel = "flat"
	var buf bytes.Buffer
	if err := r.WriteEventLog(&buf, env); err != nil {
		t.Fatal(err)
	}
	hdr, out, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Format != EventLogFormat || hdr.Events != 2 || hdr.Dropped != 0 {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Env != env {
		t.Fatalf("header env = %+v, want %+v", hdr.Env, env)
	}
	if len(out) != 2 {
		t.Fatalf("read %d events, want 2", len(out))
	}
	for i := range out {
		wantE := in[i]
		wantE.Worker = 2
		wantE.Start = out[i].Start // stamped at record time
		if out[i] != wantE {
			t.Errorf("event %d = %+v, want %+v", i, out[i], wantE)
		}
	}
}

// TestChromeTraceShape sanity-checks the Chrome trace export: valid
// JSON, one thread_name metadata record per worker, spans as "X" with
// microsecond timestamps, point events as instants.
func TestChromeTraceShape(t *testing.T) {
	r := NewRecorder(64)
	tel := New()
	tel.SetRecorder(r)
	tel.Record(r.Epoch(), TraceEvent{Stage: "src", Wall: 2_000_000, Outcome: "ok"})
	tel.SetWorker(1)
	tel.Record(r.Epoch(), TraceEvent{Stage: "bdd.overflow", Outcome: "overflow"})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, Environment()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			TID  int32   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var threads, spans, instants int
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			threads++
		case "X":
			spans++
			if e.Name == "src" && e.Dur != 2000 {
				t.Errorf("src dur = %v µs, want 2000", e.Dur)
			}
		case "i":
			instants++
		}
	}
	if threads != 2 || spans != 1 || instants != 1 {
		t.Fatalf("trace has %d thread records, %d spans, %d instants; want 2/1/1", threads, spans, instants)
	}
}

// TestAutoTickerPlainWhenNotTTY: progress on a pipe/file must not use
// ANSI escapes — NewAutoTicker falls back to the line-per-event Ticker.
func TestAutoTickerPlainWhenNotTTY(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sink := NewAutoTicker(f, time.Hour)
	if _, ok := sink.(*Ticker); !ok {
		t.Fatalf("NewAutoTicker on a regular file returned %T, want *Ticker", sink)
	}
	if IsTerminal(f) {
		t.Error("IsTerminal(regular file) = true")
	}
}

// TestStatusLineRedraw pins the interactive sink's ANSI behaviour:
// non-final events redraw in place, final events print a permanent
// line, Close erases a live line.
func TestStatusLineRedraw(t *testing.T) {
	var buf bytes.Buffer
	s := NewStatusLine(&buf, time.Nanosecond)
	s.Emit(Event{Stage: "src", Done: 1})
	time.Sleep(2 * time.Nanosecond)
	s.Emit(Event{Stage: "src", Done: 2, Final: true})
	out := buf.String()
	if !strings.Contains(out, "\r\x1b[K") {
		t.Errorf("status line output %q lacks the redraw sequence", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final event must end with a newline, got %q", out)
	}
	buf.Reset()
	s.Emit(Event{Stage: "spf", Done: 1})
	s.Close()
	if got := buf.String(); !strings.HasSuffix(got, "\r\x1b[K") {
		t.Errorf("Close must erase the live line, got %q", got)
	}
}

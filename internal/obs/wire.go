package obs

// Telemetry wire form: a full-fidelity, JSON-transportable encoding of a
// registry's instruments, used to ship per-task telemetry shards from
// `sre worker` subprocesses back to the coordinator, which folds them in
// with Merge exactly as an in-process parallel run folds worker shards.
//
// Unlike Report (the human-facing snapshot, which collapses histograms
// to quantile summaries), Wire carries the raw power-of-two buckets, so
// a decoded histogram merges bucket-for-bucket identically to the
// original — the property TestWireHistogramBucketAlignment pins.
//
// Tracing spans are process-local (they hold live pointers and
// monotonic clocks) and are not transported; a worker's span trees stay
// in the worker. Counters, gauges, and histograms round-trip exactly.

// Wire is the transportable form of a Telemetry registry.
type Wire struct {
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]float64       `json:"gauges,omitempty"`
	Hists    map[string]WireHistogram `json:"histograms,omitempty"`
}

// WireHistogram is the transportable form of a Histogram: the raw
// bucket occupancy, not the quantile summary.
type WireHistogram struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	// Buckets[i] counts observations of bit length i (values in
	// [2^(i-1), 2^i); bucket 0 counts observations ≤ 0), matching the
	// in-memory layout. Trailing zero buckets are trimmed.
	Buckets []int64 `json:"buckets,omitempty"`
}

// ExportWire captures the registry's instruments in wire form. Returns
// nil on a nil registry. Safe to call concurrently with updates (fields
// of one histogram may tear between each other, like Snapshot).
func (t *Telemetry) ExportWire() *Wire {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	counters := make(map[string]*Counter, len(t.counters))
	for k, v := range t.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(t.gauges))
	for k, v := range t.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(t.hists))
	for k, v := range t.hists {
		hists[k] = v
	}
	t.mu.Unlock()

	w := &Wire{}
	if len(counters) > 0 {
		w.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			w.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		w.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			w.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		w.Hists = make(map[string]WireHistogram, len(hists))
		for k, h := range hists {
			wh := WireHistogram{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
			last := -1
			for i := 0; i < histBuckets; i++ {
				if h.buckets[i].Load() != 0 {
					last = i
				}
			}
			if last >= 0 {
				wh.Buckets = make([]int64, last+1)
				for i := 0; i <= last; i++ {
					wh.Buckets[i] = h.buckets[i].Load()
				}
			}
			w.Hists[k] = wh
		}
	}
	return w
}

// Import reconstructs a registry from wire form. Bucket indices beyond
// the receiver's bucket count (a stream from a build with a different
// histBuckets) fold into the last bucket, so Count always equals the
// bucket total. Returns nil on a nil wire value — and Merge(nil) is a
// no-op, so a lost shard degrades to "no telemetry", never a crash.
func (w *Wire) Import() *Telemetry {
	if w == nil {
		return nil
	}
	t := New()
	for k, v := range w.Counters {
		t.Counter(k).Add(v)
	}
	for k, v := range w.Gauges {
		t.Gauge(k).Set(v)
	}
	for k, wh := range w.Hists {
		h := t.Histogram(k)
		h.count.Store(wh.Count)
		h.sum.Store(wh.Sum)
		h.max.Store(wh.Max)
		for i, n := range wh.Buckets {
			idx := i
			if idx >= histBuckets {
				idx = histBuckets - 1
			}
			h.buckets[idx].Add(n)
		}
	}
	return t
}

package obs

import (
	"sync"
	"time"
)

// Span is one node of a tracing tree: a named region of execution with
// a duration, attached attributes (routers processed, PFECs found,
// prune decisions, ...), and child spans. Spans are created with
// Telemetry.Start (roots) or Span.Start (children) and closed with End.
// A nil *Span is a valid no-op handle.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []attr
	children []*Span
}

type attr struct {
	key   string
	value interface{}
}

// Start opens a root span on the registry. Returns nil (a no-op span)
// on a nil registry.
func (t *Telemetry) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches an attribute; the last write of a key wins. Values
// should be JSON-marshalable (string, int, float, bool).
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].value = value
			return
		}
	}
	s.attrs = append(s.attrs, attr{key: key, value: value})
}

// End closes the span, fixing its duration. Further End calls are
// ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
}

// Duration returns the span duration: final if ended, elapsed so far
// otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanSnapshot is the JSON form of a span tree node.
type SpanSnapshot struct {
	Name            string                 `json:"name"`
	DurationSeconds float64                `json:"duration_seconds"`
	Running         bool                   `json:"running,omitempty"`
	Attrs           map[string]interface{} `json:"attrs,omitempty"`
	Children        []SpanSnapshot         `json:"children,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{Name: s.name, Running: !s.ended}
	if s.ended {
		snap.DurationSeconds = s.dur.Seconds()
	} else {
		snap.DurationSeconds = time.Since(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]interface{}, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.key] = a.value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceEvent is one flight-recorder record: a pipeline stage boundary
// with its attribution (which prefix, which worker), cost (wall and
// best-effort thread CPU time), resource deltas (BDD nodes, op-cache
// lookups), and outcome. Events are fixed-size values: recording one
// allocates nothing beyond the ring slot it lands in, and building one
// from static strings allocates nothing at all.
//
// Stages currently emitted:
//
//	src        one SRC+setup phase of a pipeline (analysis layer)
//	src.run    the activation loop inside src (engine layer)
//	spf        one symbolic-forwarding phase of a pipeline
//	task       one scheduler task on a worker (sched layer)
//	prefix     one per-prefix attempt/outcome (parallel resilient runs)
//	bdd.gc     one garbage collection
//	bdd.overflow  a node-table overflow (point event)
type TraceEvent struct {
	// Stage names the emitting stage boundary (see the list above).
	Stage string `json:"stage"`
	// Prefix attributes the event to a destination prefix, when the
	// emitting scope is per-prefix ("" otherwise).
	Prefix string `json:"prefix,omitempty"`
	// Worker is the scheduler worker the event was recorded on (0 for
	// sequential runs and the main goroutine).
	Worker int32 `json:"worker"`
	// Start is nanoseconds since the recorder's epoch.
	Start int64 `json:"start_ns"`
	// Wall is the stage's wall-clock duration in nanoseconds (0 for
	// point events such as overflows).
	Wall int64 `json:"wall_ns"`
	// CPU is the stage's thread CPU time in nanoseconds, best-effort:
	// it reads RUSAGE_THREAD around the stage, so a goroutine migrating
	// OS threads mid-stage under-reports. 0 where unsupported.
	CPU int64 `json:"cpu_ns,omitempty"`
	// Nodes is the live BDD node delta across the stage (negative for
	// collections).
	Nodes int64 `json:"nodes,omitempty"`
	// Cache is the op-cache lookup delta (hits+misses) across the stage.
	Cache int64 `json:"cache,omitempty"`
	// Count is a stage-specific magnitude: activations for src, PFECs
	// for spf, freed nodes for bdd.gc, cost estimate for task.
	Count int64 `json:"count,omitempty"`
	// Outcome classifies how the stage ended: "", "ok", "error",
	// "overflow", "failed", or a degradation rung name.
	Outcome string `json:"outcome,omitempty"`
}

// End returns the event's end time in nanoseconds since the epoch.
func (e TraceEvent) End() int64 { return e.Start + e.Wall }

// recStripes is the number of ring stripes. Events select their stripe
// by worker ID, so concurrent workers lock disjoint stripes; within one
// stripe events stay in emission order.
const recStripes = 8

// DefaultRecorderCapacity is the total event capacity used when
// NewRecorder is given 0.
const DefaultRecorderCapacity = 1 << 16

// Recorder is a bounded, lock-striped ring buffer of TraceEvents — the
// pipeline's flight recorder. Producers append through
// Telemetry.Record; when a stripe is full the oldest events of that
// stripe are overwritten (and counted as dropped), so a recorder holds
// the most recent window of a run at a fixed memory ceiling.
//
// A nil *Recorder is valid and records nothing; the enabled check on
// the hot path is Telemetry.Recording.
type Recorder struct {
	epoch   time.Time
	stripes [recStripes]recStripe
}

type recStripe struct {
	mu      sync.Mutex
	buf     []TraceEvent // fixed-length ring once full
	cap     int
	next    int   // next write position once len(buf) == cap
	written int64 // total events ever written to this stripe
}

// NewRecorder creates a recorder holding up to capacity events in
// total (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	per := capacity / recStripes
	if per < 1 {
		per = 1
	}
	r := &Recorder{epoch: time.Now()}
	for i := range r.stripes {
		r.stripes[i].cap = per
	}
	return r
}

// Epoch returns the recorder's time origin: event Start/End offsets are
// nanoseconds since this instant.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// add appends one event, overwriting the stripe's oldest when full.
func (r *Recorder) add(e TraceEvent) {
	s := &r.stripes[int(uint32(e.Worker))%recStripes]
	s.mu.Lock()
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, e)
	} else {
		s.buf[s.next] = e
		s.next = (s.next + 1) % s.cap
	}
	s.written++
	s.mu.Unlock()
}

// Events returns a copy of the recorded events, oldest first (sorted by
// Start). Safe to call concurrently with recording.
func (r *Recorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	var out []TraceEvent
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		if len(s.buf) < s.cap {
			out = append(out, s.buf...)
		} else {
			out = append(out, s.buf[s.next:]...)
			out = append(out, s.buf[:s.next]...)
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += len(s.buf)
		s.mu.Unlock()
	}
	return n
}

// Dropped returns how many events have been overwritten by ring
// wraparound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var d int64
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		if over := s.written - int64(len(s.buf)); over > 0 {
			d += over
		}
		s.mu.Unlock()
	}
	return d
}

// absorb appends every event of src (used by Telemetry.Merge when a
// shard carries a recorder of its own — shards normally share the
// parent's, making the merge a no-op).
func (r *Recorder) absorb(src *Recorder) {
	if r == nil || src == nil || r == src {
		return
	}
	for _, e := range src.Events() {
		r.add(e)
	}
}

// SetRecorder installs the flight recorder (nil removes it). Safe to
// call concurrently with Record.
func (t *Telemetry) SetRecorder(r *Recorder) {
	if t == nil {
		return
	}
	if r == nil {
		t.rec.Store(nil)
		return
	}
	t.rec.Store(r)
}

// FlightRecorder returns the installed recorder, if any.
func (t *Telemetry) FlightRecorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec.Load()
}

// Recording reports whether a flight recorder is installed. Producers
// use it to skip building event attribution (prefix strings, BDD stat
// snapshots) when nobody records — the same idiom as Active for
// progress detail strings. On a nil or recorder-less registry this is a
// nil check plus an atomic load: no allocation.
func (t *Telemetry) Recording() bool {
	return t != nil && t.rec.Load() != nil
}

// SetWorker tags the registry with a scheduler worker ID; events
// recorded through it are attributed to that worker. Call it on a
// freshly created Shard before its worker goroutine starts.
func (t *Telemetry) SetWorker(id int) {
	if t == nil {
		return
	}
	t.worker = int32(id)
}

// Worker returns the registry's worker tag (0 by default).
func (t *Telemetry) Worker() int {
	if t == nil {
		return 0
	}
	return int(t.worker)
}

// Record appends one flight-recorder event. The event's Start is
// derived from start (time.Time{} means "now" — point events), and its
// Worker is stamped from the registry's worker tag. A nil registry or
// absent recorder records nothing and allocates nothing.
func (t *Telemetry) Record(start time.Time, e TraceEvent) {
	if t == nil {
		return
	}
	r := t.rec.Load()
	if r == nil {
		return
	}
	if start.IsZero() {
		start = time.Now()
	}
	e.Start = start.Sub(r.epoch).Nanoseconds()
	e.Worker = t.worker
	r.add(e)
}

//go:build linux

package obs

import "syscall"

// rusageThread is RUSAGE_THREAD, absent from the syscall package.
const rusageThread = 1

// ThreadCPUNanos returns the CPU time consumed by the calling OS
// thread (user + system), in nanoseconds. Callers diff two readings
// around a region; because goroutines may migrate threads, the delta is
// best-effort — clamp negative differences to zero.
func ThreadCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(rusageThread, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}

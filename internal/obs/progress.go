package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Event is one progress update from a pipeline stage, e.g.
//
//	Event{Stage: "spf", Done: 412, Total: 1280, Unit: "routers",
//	      Detail: "18.2k PFECs, bdd 1.4M nodes (peak 2.1M), cache hit 93%"}
//
// Producers emit events freely (rate limiting is the sink's job), but
// should guard the construction of Detail strings with
// Telemetry.Active() so disabled telemetry formats nothing.
type Event struct {
	// Stage names the emitting stage ("src", "spf", "mine", "bdd").
	Stage string
	// Done/Total describe progress through a known amount of work.
	// Total 0 means the total is unknown; Done 0 with Total 0 means the
	// event is purely informational (Detail only).
	Done, Total int64
	// Unit is the unit of Done/Total ("routers", "pairs", ...).
	Unit string
	// Detail is extra human-readable context, already formatted.
	Detail string
	// Final marks the last event of a stage; tickers always pass final
	// events through regardless of rate limiting.
	Final bool
}

// String formats the event as a single log line (without the stage
// prefix).
func (e Event) String() string {
	var b strings.Builder
	switch {
	case e.Total > 0:
		fmt.Fprintf(&b, "%d/%d", e.Done, e.Total)
	case e.Done > 0:
		b.WriteString(HumanCount(e.Done))
	}
	if e.Unit != "" && b.Len() > 0 {
		b.WriteByte(' ')
		b.WriteString(e.Unit)
	}
	if e.Detail != "" {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Sink consumes progress events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Ticker is the default progress sink: it prints events as single lines
// ("spf: 412/1280 routers, 18.2k PFECs, ...") to a writer, dropping
// events of the same stage that arrive within Interval of the last
// printed one. Final events always print.
type Ticker struct {
	w        io.Writer
	interval time.Duration

	mu   sync.Mutex
	last map[string]time.Time
}

// NewTicker creates a ticker sink. A nil writer means os.Stderr; a zero
// interval means 500ms.
func NewTicker(w io.Writer, interval time.Duration) *Ticker {
	if w == nil {
		w = os.Stderr
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Ticker{w: w, interval: interval, last: make(map[string]time.Time)}
}

// Emit implements Sink.
func (t *Ticker) Emit(e Event) {
	now := time.Now()
	t.mu.Lock()
	if !e.Final && now.Sub(t.last[e.Stage]) < t.interval {
		t.mu.Unlock()
		return
	}
	t.last[e.Stage] = now
	t.mu.Unlock()
	fmt.Fprintf(t.w, "%s: %s\n", e.Stage, e)
}

// HumanCount renders a count compactly: 912, 18.2k, 1.4M, 2.1G.
func HumanCount(n int64) string {
	f := float64(n)
	switch {
	case n < 0:
		return fmt.Sprintf("%d", n)
	case f >= 1e9:
		return fmt.Sprintf("%.1fG", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.1fM", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.1fk", f/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// HumanPct renders a ratio as a percentage ("93.2%"); NaN-safe.
func HumanPct(num, den float64) string {
	if den <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}

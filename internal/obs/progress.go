package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Event is one progress update from a pipeline stage, e.g.
//
//	Event{Stage: "spf", Done: 412, Total: 1280, Unit: "routers",
//	      Detail: "18.2k PFECs, bdd 1.4M nodes (peak 2.1M), cache hit 93%"}
//
// Producers emit events freely (rate limiting is the sink's job), but
// should guard the construction of Detail strings with
// Telemetry.Active() so disabled telemetry formats nothing.
type Event struct {
	// Stage names the emitting stage ("src", "spf", "mine", "bdd").
	Stage string
	// Done/Total describe progress through a known amount of work.
	// Total 0 means the total is unknown; Done 0 with Total 0 means the
	// event is purely informational (Detail only).
	Done, Total int64
	// Unit is the unit of Done/Total ("routers", "pairs", ...).
	Unit string
	// Detail is extra human-readable context, already formatted.
	Detail string
	// Final marks the last event of a stage; tickers always pass final
	// events through regardless of rate limiting.
	Final bool
}

// String formats the event as a single log line (without the stage
// prefix).
func (e Event) String() string {
	var b strings.Builder
	switch {
	case e.Total > 0:
		fmt.Fprintf(&b, "%d/%d", e.Done, e.Total)
	case e.Done > 0:
		b.WriteString(HumanCount(e.Done))
	}
	if e.Unit != "" && b.Len() > 0 {
		b.WriteByte(' ')
		b.WriteString(e.Unit)
	}
	if e.Detail != "" {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Sink consumes progress events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Ticker is the default progress sink: it prints events as single lines
// ("spf: 412/1280 routers, 18.2k PFECs, ...") to a writer, dropping
// events of the same stage that arrive within Interval of the last
// printed one. Final events always print.
type Ticker struct {
	w        io.Writer
	interval time.Duration

	mu   sync.Mutex
	last map[string]time.Time
}

// NewTicker creates a ticker sink. A nil writer means os.Stderr; a zero
// interval means 500ms.
func NewTicker(w io.Writer, interval time.Duration) *Ticker {
	if w == nil {
		w = os.Stderr
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Ticker{w: w, interval: interval, last: make(map[string]time.Time)}
}

// Emit implements Sink.
func (t *Ticker) Emit(e Event) {
	now := time.Now()
	t.mu.Lock()
	if !e.Final && now.Sub(t.last[e.Stage]) < t.interval {
		t.mu.Unlock()
		return
	}
	t.last[e.Stage] = now
	t.mu.Unlock()
	fmt.Fprintf(t.w, "%s: %s\n", e.Stage, e)
}

// IsTerminal reports whether f is an interactive terminal (a character
// device). Progress sinks use it to decide between in-place ANSI
// redraws and plain line-per-event output.
func IsTerminal(f *os.File) bool {
	if f == nil {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// StatusLine is the interactive progress sink: it redraws a single
// status line in place (carriage return + erase-to-end-of-line), so a
// terminal shows one live line instead of a scrolling log. Final events
// are printed permanently (with a newline). Only suitable for
// terminals — NewAutoTicker picks it automatically.
type StatusLine struct {
	w        io.Writer
	interval time.Duration

	mu   sync.Mutex
	last time.Time
	live bool // an unfinished status line is on screen
}

// NewStatusLine creates a status-line sink. A nil writer means
// os.Stderr; a zero interval means 100ms.
func NewStatusLine(w io.Writer, interval time.Duration) *StatusLine {
	if w == nil {
		w = os.Stderr
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &StatusLine{w: w, interval: interval}
}

// Emit implements Sink.
func (s *StatusLine) Emit(e Event) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !e.Final && now.Sub(s.last) < s.interval {
		return
	}
	s.last = now
	if e.Final {
		fmt.Fprintf(s.w, "\r\x1b[K%s: %s\n", e.Stage, e)
		s.live = false
		return
	}
	fmt.Fprintf(s.w, "\r\x1b[K%s: %s", e.Stage, e)
	s.live = true
}

// Close erases any live status line, leaving the cursor at column 0.
// Call it before printing unrelated output.
func (s *StatusLine) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live {
		fmt.Fprint(s.w, "\r\x1b[K")
		s.live = false
	}
}

// NewAutoTicker returns the progress sink appropriate for f: an ANSI
// in-place StatusLine when f is an interactive terminal, a plain
// line-per-event Ticker otherwise (pipes, files, CI logs). A nil f
// means os.Stderr.
func NewAutoTicker(f *os.File, interval time.Duration) Sink {
	if f == nil {
		f = os.Stderr
	}
	if IsTerminal(f) {
		return NewStatusLine(f, interval)
	}
	return NewTicker(f, interval)
}

// HumanCount renders a count compactly: 912, 18.2k, 1.4M, 2.1G.
func HumanCount(n int64) string {
	f := float64(n)
	switch {
	case n < 0:
		return fmt.Sprintf("%d", n)
	case f >= 1e9:
		return fmt.Sprintf("%.1fG", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.1fM", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.1fk", f/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// HumanPct renders a ratio as a percentage ("93.2%"); NaN-safe.
func HumanPct(num, den float64) string {
	if den <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}

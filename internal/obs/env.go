package obs

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// EnvInfo records the execution environment of a measured run. It is
// embedded in benchmark rows and event-log headers so the regression
// comparator can refuse apples-to-oranges diffs (different machine, Go
// version, or BDD kernel).
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the "model name" of /proc/cpuinfo ("" where
	// unavailable).
	CPUModel string `json:"cpu_model,omitempty"`
	// BDDKernel names the kernel the run used: "flat" (the overhauled
	// default) or "legacy". Filled by the caller, which knows the run
	// options.
	BDDKernel string `json:"bdd_kernel,omitempty"`
	// Parallelism is the effective worker count of the run (0 when the
	// caller did not attribute one).
	Parallelism int `json:"parallelism,omitempty"`
}

// Environment captures the current process environment. BDDKernel and
// Parallelism are left for the caller to fill from its run options.
func Environment() EnvInfo {
	return EnvInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

// Mismatch compares two environments and describes every difference
// that makes their timings incomparable. Optional fields (CPUModel,
// BDDKernel, Parallelism) are only compared when both sides carry them,
// so logs from before a field existed still diff. An empty result means
// the environments are comparable.
func (e EnvInfo) Mismatch(o EnvInfo) []string {
	var out []string
	diff := func(field, a, b string) {
		if a != "" && b != "" && a != b {
			out = append(out, fmt.Sprintf("%s: %q vs %q", field, a, b))
		}
	}
	diff("go_version", e.GoVersion, o.GoVersion)
	diff("os", e.OS, o.OS)
	diff("arch", e.Arch, o.Arch)
	diff("cpu_model", e.CPUModel, o.CPUModel)
	diff("bdd_kernel", e.BDDKernel, o.BDDKernel)
	if e.NumCPU != 0 && o.NumCPU != 0 && e.NumCPU != o.NumCPU {
		out = append(out, fmt.Sprintf("num_cpu: %d vs %d", e.NumCPU, o.NumCPU))
	}
	if e.GOMAXPROCS != 0 && o.GOMAXPROCS != 0 && e.GOMAXPROCS != o.GOMAXPROCS {
		out = append(out, fmt.Sprintf("gomaxprocs: %d vs %d", e.GOMAXPROCS, o.GOMAXPROCS))
	}
	if e.Parallelism != 0 && o.Parallelism != 0 && e.Parallelism != o.Parallelism {
		out = append(out, fmt.Sprintf("parallelism: %d vs %d", e.Parallelism, o.Parallelism))
	}
	return out
}

// IsZero reports whether no environment was recorded.
func (e EnvInfo) IsZero() bool { return e == (EnvInfo{}) }

// cpuModel extracts the CPU model name from /proc/cpuinfo (Linux; ""
// elsewhere or on failure).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrent hammers one counter from many goroutines; run
// with -race this also vets the atomic implementation.
func TestCountersConcurrent(t *testing.T) {
	tel := New()
	c := tel.Counter("x")
	g := tel.Gauge("g")
	h := tel.Histogram("h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Max(float64(i*1000 + j))
				h.Observe(int64(j))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Errorf("gauge max = %v, want 7999", g.Value())
	}
	if got := tel.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestSnapshotValidJSON checks the metrics JSON schema: the snapshot
// marshals to valid JSON that round-trips into a Report.
func TestSnapshotValidJSON(t *testing.T) {
	tel := New()
	tel.Counter("bdd.gc_runs").Add(3)
	tel.Gauge("bdd.peak_nodes").Set(1234)
	tel.Histogram("src.activation_ns").Observe(1500)
	sp := tel.Start("pipeline")
	child := sp.Start("src")
	child.SetAttr("routers", 12)
	child.End()
	sp.End()

	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["bdd.gc_runs"] != 3 {
		t.Errorf("counter lost in round trip: %+v", back.Counters)
	}
	if back.Gauges["bdd.peak_nodes"] != 1234 {
		t.Errorf("gauge lost in round trip: %+v", back.Gauges)
	}
	if len(back.Spans) != 1 || len(back.Spans[0].Children) != 1 {
		t.Fatalf("span tree lost: %+v", back.Spans)
	}
	if back.Spans[0].Children[0].Attrs["routers"] != float64(12) {
		t.Errorf("attr lost: %+v", back.Spans[0].Children[0].Attrs)
	}
	if back.Histograms["src.activation_ns"].Count != 1 {
		t.Errorf("histogram lost: %+v", back.Histograms)
	}
}

// TestCountersMonotone verifies counters never decrease across
// snapshots while updates are in flight.
func TestCountersMonotone(t *testing.T) {
	tel := New()
	c := tel.Counter("work")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			c.Add(2)
		}
	}()
	prev := int64(-1)
	for i := 0; i < 100; i++ {
		cur := tel.Snapshot().Counters["work"]
		if cur < prev {
			t.Fatalf("counter decreased: %d -> %d", prev, cur)
		}
		prev = cur
	}
	<-done
	if got := tel.Snapshot().Counters["work"]; got != 10000 {
		t.Errorf("final counter = %d, want 10000", got)
	}
	// Negative deltas are dropped, not applied.
	c.Add(-5)
	if got := c.Value(); got != 10000 {
		t.Errorf("counter after negative add = %d, want 10000", got)
	}
}

// TestNilTelemetryAllocs pins the disabled-telemetry fast path: nil
// handles must not allocate (the <5% overhead budget of the fat-tree
// benchmark depends on this).
func TestNilTelemetryAllocs(t *testing.T) {
	var tel *Telemetry
	c := tel.Counter("x")
	g := tel.Gauge("x")
	h := tel.Histogram("x")
	sp := tel.Start("x")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(5)
		g.Set(1)
		g.Max(2)
		h.Observe(3)
		sp.SetAttr("k", 1)
		sp.Start("child").End()
		sp.End()
		tel.Emit(Event{Stage: "x"})
		if tel.Active() {
			t.Fatal("nil telemetry must not be active")
		}
	})
	if allocs != 0 {
		t.Errorf("nil telemetry allocated %v times per op, want 0", allocs)
	}
	if snap := tel.Snapshot(); len(snap.Spans) != 0 || len(snap.Counters) != 0 {
		t.Error("nil telemetry snapshot must be empty")
	}
}

// TestTickerRateLimit checks the stderr-style ticker drops events inside
// the interval and always passes final events.
func TestTickerRateLimit(t *testing.T) {
	var buf bytes.Buffer
	tk := NewTicker(&buf, time.Hour)
	tk.Emit(Event{Stage: "spf", Done: 1, Total: 10, Unit: "routers"})
	tk.Emit(Event{Stage: "spf", Done: 2, Total: 10, Unit: "routers"}) // dropped
	tk.Emit(Event{Stage: "src", Done: 3, Unit: "activations"})        // different stage
	tk.Emit(Event{Stage: "spf", Done: 10, Total: 10, Unit: "routers", Final: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), buf.String())
	}
	if lines[0] != "spf: 1/10 routers" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[1] != "src: 3 activations" {
		t.Errorf("line 1 = %q", lines[1])
	}
	if lines[2] != "spf: 10/10 routers" {
		t.Errorf("line 2 = %q", lines[2])
	}
}

// TestEventString covers the formatting contract of the example line in
// the package documentation.
func TestEventString(t *testing.T) {
	e := Event{Stage: "spf", Done: 412, Total: 1280, Unit: "routers",
		Detail: "18.2k PFECs, bdd 1.4M nodes (peak 2.1M), cache hit 93%"}
	want := "412/1280 routers, 18.2k PFECs, bdd 1.4M nodes (peak 2.1M), cache hit 93%"
	if e.String() != want {
		t.Errorf("got %q, want %q", e.String(), want)
	}
	if got := HumanCount(18200); got != "18.2k" {
		t.Errorf("HumanCount = %q", got)
	}
	if got := HumanCount(1400000); got != "1.4M" {
		t.Errorf("HumanCount = %q", got)
	}
	if got := HumanPct(93, 100); got != "93.0%" {
		t.Errorf("HumanPct = %q", got)
	}
}

// TestSpanDuration checks running vs ended spans and attribute
// overwrites.
func TestSpanDuration(t *testing.T) {
	tel := New()
	sp := tel.Start("s")
	sp.SetAttr("k", 1)
	sp.SetAttr("k", 2)
	if d := sp.Duration(); d < 0 {
		t.Error("running span duration negative")
	}
	snap := tel.Snapshot()
	if !snap.Spans[0].Running {
		t.Error("span should report running before End")
	}
	sp.End()
	d1 := sp.Duration()
	sp.End() // second End is a no-op
	if sp.Duration() != d1 {
		t.Error("second End changed the duration")
	}
	snap = tel.Snapshot()
	if snap.Spans[0].Running {
		t.Error("span should not report running after End")
	}
	if snap.Spans[0].Attrs["k"] != 2 {
		t.Errorf("attr overwrite failed: %+v", snap.Spans[0].Attrs)
	}
}

// TestShardMerge covers the worker-shard lifecycle used by the
// scheduler: per-worker registries collect independently, then fold
// into the parent — counters add, gauges keep the high-water mark,
// histograms merge bucket-wise, and root spans are appended.
func TestShardMerge(t *testing.T) {
	parent := New()
	parent.Counter("c").Add(1)
	a, b := parent.Shard(), parent.Shard()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	a.Gauge("g").Max(10)
	b.Gauge("g").Max(7)
	for i := 0; i < 5; i++ {
		a.Histogram("h").Observe(8)
		b.Histogram("h").Observe(64)
	}
	a.Start("pipeline").End()
	parent.Merge(a)
	parent.Merge(b)
	snap := parent.Snapshot()
	if got := snap.Counters["c"]; got != 8 {
		t.Errorf("merged counter = %d, want 1+3+4", got)
	}
	if got := snap.Gauges["g"]; got != 10 {
		t.Errorf("merged gauge = %v, want max 10", got)
	}
	h := snap.Histograms["h"]
	if h.Count != 10 || h.Sum != 5*8+5*64 || h.Max != 64 {
		t.Errorf("merged histogram = %+v, want count 10 sum 360 max 64", h)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "pipeline" {
		t.Errorf("merged spans = %+v, want the shard's root span", snap.Spans)
	}
}

// TestShardEmitForwards checks that events emitted on a shard reach the
// parent's sink: live progress keeps flowing while workers run, before
// any merge happens.
func TestShardEmitForwards(t *testing.T) {
	parent := New()
	var mu sync.Mutex
	var got []Event
	parent.SetSink(SinkFunc(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}))
	shard := parent.Shard()
	shard.Emit(Event{Stage: "src", Done: 1, Total: 2})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Stage != "src" {
		t.Fatalf("parent sink saw %+v, want the shard's event", got)
	}
}

// TestNilShardMerge: a nil registry shards to nil and merging nil is a
// no-op, so disabled telemetry costs nothing in the pool.
func TestNilShardMerge(t *testing.T) {
	var tel *Telemetry
	if s := tel.Shard(); s != nil {
		t.Fatal("nil telemetry must shard to nil")
	}
	tel.Merge(nil) // must not panic
	parent := New()
	parent.Merge(nil) // must not panic
}

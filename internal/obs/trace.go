package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Chrome trace_event and NDJSON exporters for the flight recorder.
//
// WriteChromeTrace emits the Trace Event Format consumed by
// chrome://tracing and https://ui.perfetto.dev: one track (tid) per
// scheduler worker, stage spans nested by time containment ("task"
// encloses the "src"/"spf" spans its pipeline ran), point events
// (overflows) as instants. WriteEventLog emits one JSON object per
// line — a header with environment metadata, then every event — the
// machine format `srebench -compare` consumes, and the one multi-
// process shards will ship to a coordinator.

// chromeEvent is one entry of the trace_event JSON array.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int32                  `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format (the variant that
// carries metadata next to the event array).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       interface{}   `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the recorded events as Chrome trace_event
// JSON, viewable in chrome://tracing or Perfetto. env is embedded as
// trace metadata (pass Environment(), or a zero EnvInfo to omit).
func (r *Recorder) WriteChromeTrace(w io.Writer, env EnvInfo) error {
	events := r.Events()
	trace := chromeTrace{DisplayTimeUnit: "ms"}
	if !env.IsZero() {
		trace.OtherData = env
	}
	workers := map[int32]bool{}
	for _, e := range events {
		workers[e.Worker] = true
	}
	// Name the per-worker tracks and order them by ID.
	ids := make([]int32, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: id,
			Args: map[string]interface{}{"name": fmt.Sprintf("worker %d", id)},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Stage,
			Cat:  strings.SplitN(e.Stage, ".", 2)[0],
			Ph:   "X",
			TS:   float64(e.Start) / 1e3,
			Dur:  float64(e.Wall) / 1e3,
			PID:  0,
			TID:  e.Worker,
		}
		if e.Wall == 0 {
			ce.Ph = "i" // instant event
		}
		args := map[string]interface{}{}
		if e.Prefix != "" {
			args["prefix"] = e.Prefix
		}
		if e.Outcome != "" {
			args["outcome"] = e.Outcome
		}
		if e.Nodes != 0 {
			args["bdd_node_delta"] = e.Nodes
		}
		if e.Cache != 0 {
			args["opcache_lookups"] = e.Cache
		}
		if e.Count != 0 {
			args["count"] = e.Count
		}
		if e.CPU != 0 {
			args["cpu_ms"] = float64(e.CPU) / 1e6
		}
		if len(args) > 0 {
			ce.Args = args
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// EventLogFormat identifies the event-log header line.
const EventLogFormat = "sre.events/v1"

// EventLogHeader is the first line of an NDJSON event log.
type EventLogHeader struct {
	Format string `json:"format"`
	// EpochUnixNs anchors the events' relative Start offsets in
	// absolute time, so logs from different processes can be aligned.
	EpochUnixNs int64   `json:"epoch_unix_ns"`
	Env         EnvInfo `json:"env"`
	// Events/Dropped describe the recorder at export time: events in
	// the log and events lost to ring wraparound before it.
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped"`
}

// WriteEventLog writes the recorded events as newline-delimited JSON: a
// header line, then one TraceEvent per line, oldest first.
func (r *Recorder) WriteEventLog(w io.Writer, env EnvInfo) error {
	events := r.Events()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := EventLogHeader{
		Format:      EventLogFormat,
		EpochUnixNs: r.epoch.UnixNano(),
		Env:         env,
		Events:      len(events),
		Dropped:     r.Dropped(),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEventLog parses an NDJSON event log written by WriteEventLog.
func ReadEventLog(rd io.Reader) (EventLogHeader, []TraceEvent, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr EventLogHeader
	var events []TraceEvent
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if err := json.Unmarshal([]byte(line), &hdr); err != nil {
				return hdr, nil, fmt.Errorf("obs: event log header: %w", err)
			}
			if hdr.Format != EventLogFormat {
				return hdr, nil, fmt.Errorf("obs: not an event log (format %q, want %q)", hdr.Format, EventLogFormat)
			}
			continue
		}
		var e TraceEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return hdr, nil, fmt.Errorf("obs: event log line %d: %w", len(events)+2, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	if first {
		return hdr, nil, fmt.Errorf("obs: empty event log")
	}
	return hdr, events, nil
}

// Package topology models the physical network: routers, ports, and
// links, with one boolean "link variable" per link as in §4.1 of the
// paper (link up = true, link down = false). It also provides the graph
// utilities the verification engine and baselines need: connectivity,
// (k+1)-edge-connected components (prefix pruning, §7.2), and min-cut
// (the Tiramisu baseline).
package topology

import (
	"fmt"
	"sort"
)

// RouterID identifies a router, dense from 0.
type RouterID int

// LinkID identifies a link, dense from 0. The link variable of link i is
// variable (headerBits + i) of the engine's BDD manager.
type LinkID int

// Link is an undirected physical link between two routers.
type Link struct {
	ID   LinkID
	A, B RouterID
}

// Other returns the endpoint of l opposite to r.
func (l Link) Other(r RouterID) RouterID {
	if l.A == r {
		return l.B
	}
	return l.A
}

// Router is a node of the topology.
type Router struct {
	ID   RouterID
	Name string
	// Links lists the IDs of the links incident to this router, in
	// insertion order; the port number of a link at this router is its
	// index in this slice.
	Links []LinkID
}

// Topology is an immutable-after-build undirected multigraph of routers
// and links.
type Topology struct {
	routers []Router
	links   []Link
	byName  map[string]RouterID
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{byName: make(map[string]RouterID)}
}

// AddRouter adds a router with the given unique name and returns its ID.
func (t *Topology) AddRouter(name string) RouterID {
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("topology: duplicate router %q", name))
	}
	id := RouterID(len(t.routers))
	t.routers = append(t.routers, Router{ID: id, Name: name})
	t.byName[name] = id
	return id
}

// AddLink connects routers a and b and returns the new link's ID.
func (t *Topology) AddLink(a, b RouterID) LinkID {
	if a == b {
		panic("topology: self loop")
	}
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, A: a, B: b})
	t.routers[a].Links = append(t.routers[a].Links, id)
	t.routers[b].Links = append(t.routers[b].Links, id)
	return id
}

// AddLinkByName connects two routers identified by name.
func (t *Topology) AddLinkByName(a, b string) LinkID {
	return t.AddLink(t.MustRouter(a), t.MustRouter(b))
}

// NumRouters returns the number of routers.
func (t *Topology) NumRouters() int { return len(t.routers) }

// NumLinks returns the number of links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Router returns the router with the given ID.
func (t *Topology) Router(id RouterID) *Router { return &t.routers[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Links returns all links.
func (t *Topology) Links() []Link { return t.links }

// RouterByName returns the ID of the named router.
func (t *Topology) RouterByName(name string) (RouterID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// MustRouter returns the ID of the named router, panicking if absent.
func (t *Topology) MustRouter(name string) RouterID {
	id, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topology: unknown router %q", name))
	}
	return id
}

// Name returns the name of router id.
func (t *Topology) Name(id RouterID) string { return t.routers[id].Name }

// LinkBetween returns the first link connecting a and b.
func (t *Topology) LinkBetween(a, b RouterID) (LinkID, bool) {
	for _, lid := range t.routers[a].Links {
		if t.links[lid].Other(a) == b {
			return lid, true
		}
	}
	return 0, false
}

// Neighbors returns the routers adjacent to r (with multiplicity for
// parallel links).
func (t *Topology) Neighbors(r RouterID) []RouterID {
	out := make([]RouterID, 0, len(t.routers[r].Links))
	for _, lid := range t.routers[r].Links {
		out = append(out, t.links[lid].Other(r))
	}
	return out
}

// Connected reports whether the subgraph restricted to links for which
// alive returns true connects routers a and b. A nil alive means all
// links are up.
func (t *Topology) Connected(a, b RouterID, alive func(LinkID) bool) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(t.routers))
	stack := []RouterID{a}
	seen[a] = true
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range t.routers[r].Links {
			if alive != nil && !alive(lid) {
				continue
			}
			n := t.links[lid].Other(r)
			if n == b {
				return true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return false
}

// MinCut returns the minimum number of links whose removal disconnects s
// from d, computed with Ford–Fulkerson on the unit-capacity undirected
// graph. This is the core computation of the ARC/Tiramisu baselines: the
// failure tolerance of plain shortest-path reachability is MinCut-1.
func (t *Topology) MinCut(s, d RouterID) int {
	if s == d {
		return 0
	}
	// Residual capacities per directed edge: undirected unit edge =
	// capacity 1 each direction.
	type edge struct {
		to      RouterID
		cap     int
		reverse int // index of reverse edge in adj[to]
	}
	adj := make([][]edge, len(t.routers))
	addEdge := func(a, b RouterID) {
		adj[a] = append(adj[a], edge{to: b, cap: 1, reverse: len(adj[b])})
		adj[b] = append(adj[b], edge{to: a, cap: 1, reverse: len(adj[a]) - 1})
	}
	for _, l := range t.links {
		addEdge(l.A, l.B)
	}
	flow := 0
	for {
		// BFS for an augmenting path.
		parent := make([]int, len(t.routers)) // edge index used to reach router
		parentR := make([]RouterID, len(t.routers))
		seen := make([]bool, len(t.routers))
		seen[s] = true
		queue := []RouterID{s}
		found := false
		for len(queue) > 0 && !found {
			r := queue[0]
			queue = queue[1:]
			for i, e := range adj[r] {
				if e.cap <= 0 || seen[e.to] {
					continue
				}
				seen[e.to] = true
				parent[e.to] = i
				parentR[e.to] = r
				if e.to == d {
					found = true
					break
				}
				queue = append(queue, e.to)
			}
		}
		if !found {
			return flow
		}
		// Augment by one unit along the path.
		for v := d; v != s; {
			r := parentR[v]
			e := &adj[r][parent[v]]
			e.cap--
			adj[v][e.reverse].cap++
			v = r
		}
		flow++
	}
}

// EdgeConnectedComponents partitions the routers into (k+1)-edge-connected
// components: two routers share a component iff they remain connected
// under the removal of any k links (equivalently, their min-cut exceeds
// k). The result maps each router to a component label. This drives the
// paper's prefix pruning (§7.2).
//
// The implementation uses the min-cut characterization directly with a
// union-find accelerated by transitivity: "min-cut > k" is an equivalence
// relation for k-edge-connectivity classes.
func (t *Topology) EdgeConnectedComponents(k int) []int {
	n := len(t.routers)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	label := 0
	for i := 0; i < n; i++ {
		if comp[i] != -1 {
			continue
		}
		comp[i] = label
		for j := i + 1; j < n; j++ {
			if comp[j] != -1 {
				continue
			}
			if t.MinCut(RouterID(i), RouterID(j)) > k {
				comp[j] = label
			}
		}
		label++
	}
	return comp
}

// SingletonComponents returns the routers that sit alone in their
// (k+1)-edge-connected component, sorted by ID. Prefixes originated by
// these routers have failure tolerance exactly k-1 or lower with respect
// to everyone outside the component, which is what lets prefix pruning
// skip their symbolic route computation in higher strata.
func (t *Topology) SingletonComponents(k int) []RouterID {
	comp := t.EdgeConnectedComponents(k)
	count := make(map[int]int)
	for _, c := range comp {
		count[c]++
	}
	var out []RouterID
	for i, c := range comp {
		if count[c] == 1 {
			out = append(out, RouterID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("topology(%d routers, %d links)", len(t.routers), len(t.links))
}

package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ring builds a cycle of n routers.
func ring(n int) *Topology {
	t := NewTopology()
	for i := 0; i < n; i++ {
		t.AddRouter(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		t.AddLink(RouterID(i), RouterID((i+1)%n))
	}
	return t
}

func TestBasics(t *testing.T) {
	topo := NewTopology()
	a := topo.AddRouter("a")
	b := topo.AddRouter("b")
	l := topo.AddLink(a, b)
	if topo.NumRouters() != 2 || topo.NumLinks() != 1 {
		t.Fatal("counts")
	}
	if topo.Link(l).Other(a) != b || topo.Link(l).Other(b) != a {
		t.Fatal("Other")
	}
	if got, ok := topo.LinkBetween(a, b); !ok || got != l {
		t.Fatal("LinkBetween")
	}
	if _, ok := topo.RouterByName("c"); ok {
		t.Fatal("phantom router")
	}
	if topo.Name(a) != "a" {
		t.Fatal("Name")
	}
	if len(topo.Neighbors(a)) != 1 || topo.Neighbors(a)[0] != b {
		t.Fatal("Neighbors")
	}
}

func TestDuplicateRouterPanics(t *testing.T) {
	topo := NewTopology()
	topo.AddRouter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	topo.AddRouter("x")
}

func TestSelfLoopPanics(t *testing.T) {
	topo := NewTopology()
	a := topo.AddRouter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	topo.AddLink(a, a)
}

func TestConnected(t *testing.T) {
	topo := ring(4)
	if !topo.Connected(0, 2, nil) {
		t.Fatal("ring should be connected")
	}
	// Cutting links 0 and 3 (the two incident to router 0) isolates it.
	alive := func(l LinkID) bool { return l != 0 && l != 3 }
	if topo.Connected(0, 2, alive) {
		t.Fatal("router 0 should be isolated")
	}
	if !topo.Connected(1, 2, alive) {
		t.Fatal("1-2 should remain connected")
	}
	if !topo.Connected(2, 2, func(LinkID) bool { return false }) {
		t.Fatal("self connectivity")
	}
}

func TestMinCutRing(t *testing.T) {
	topo := ring(5)
	for i := 1; i < 5; i++ {
		if got := topo.MinCut(0, RouterID(i)); got != 2 {
			t.Errorf("ring min-cut(0,%d) = %d, want 2", i, got)
		}
	}
}

func TestMinCutLine(t *testing.T) {
	topo := NewTopology()
	a := topo.AddRouter("a")
	b := topo.AddRouter("b")
	c := topo.AddRouter("c")
	topo.AddLink(a, b)
	topo.AddLink(b, c)
	if got := topo.MinCut(a, c); got != 1 {
		t.Errorf("line min-cut = %d, want 1", got)
	}
	if got := topo.MinCut(a, a); got != 0 {
		t.Errorf("self min-cut = %d, want 0", got)
	}
}

func TestMinCutParallelPaths(t *testing.T) {
	// a connects to b via 3 disjoint 2-hop paths.
	topo := NewTopology()
	a := topo.AddRouter("a")
	b := topo.AddRouter("b")
	for i := 0; i < 3; i++ {
		m := topo.AddRouter(string(rune('m' + i)))
		topo.AddLink(a, m)
		topo.AddLink(m, b)
	}
	if got := topo.MinCut(a, b); got != 3 {
		t.Errorf("min-cut = %d, want 3", got)
	}
}

func TestMinCutMatchesEnumeration(t *testing.T) {
	// Random small graphs: min-cut equals the smallest link set whose
	// removal disconnects the pair.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(3)
		topo := NewTopology()
		for i := 0; i < n; i++ {
			topo.AddRouter(string(rune('a' + i)))
		}
		// Random connected graph: a spanning tree plus extra links.
		for i := 1; i < n; i++ {
			topo.AddLink(RouterID(i), RouterID(r.Intn(i)))
		}
		for e := 0; e < n; e++ {
			x, y := r.Intn(n), r.Intn(n)
			if x != y {
				if _, dup := topo.LinkBetween(RouterID(x), RouterID(y)); !dup {
					topo.AddLink(RouterID(x), RouterID(y))
				}
			}
		}
		s, d := RouterID(0), RouterID(n-1)
		got := topo.MinCut(s, d)
		want := bruteMinCut(topo, s, d)
		if got != want {
			t.Fatalf("trial %d: min-cut %d, brute force %d", trial, got, want)
		}
	}
}

func bruteMinCut(t *Topology, s, d RouterID) int {
	m := t.NumLinks()
	for k := 0; k <= m; k++ {
		if existsCut(t, s, d, k) {
			return k
		}
	}
	return m
}

func existsCut(t *Topology, s, d RouterID, k int) bool {
	m := t.NumLinks()
	var rec func(start int, down []LinkID) bool
	rec = func(start int, down []LinkID) bool {
		if len(down) == k {
			dead := make(map[LinkID]bool)
			for _, l := range down {
				dead[l] = true
			}
			return !t.Connected(s, d, func(l LinkID) bool { return !dead[l] })
		}
		for i := start; i < m; i++ {
			if rec(i+1, append(down, LinkID(i))) {
				return true
			}
		}
		return false
	}
	return rec(0, nil)
}

func TestEdgeConnectedComponents(t *testing.T) {
	// Two triangles joined by a single bridge: each triangle is
	// 2-edge-connected; the bridge splits them for k >= 1.
	topo := NewTopology()
	for i := 0; i < 6; i++ {
		topo.AddRouter(string(rune('a' + i)))
	}
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddLink(2, 0)
	topo.AddLink(3, 4)
	topo.AddLink(4, 5)
	topo.AddLink(5, 3)
	topo.AddLink(2, 3) // bridge
	comp0 := topo.EdgeConnectedComponents(0)
	if !sameComponent(comp0, 0, 5) {
		t.Error("k=0: connected graph should be one component")
	}
	comp1 := topo.EdgeConnectedComponents(1)
	if !sameComponent(comp1, 0, 2) || !sameComponent(comp1, 3, 5) {
		t.Error("k=1: triangles should stay together")
	}
	if sameComponent(comp1, 0, 3) {
		t.Error("k=1: bridge should split the triangles")
	}
	comp2 := topo.EdgeConnectedComponents(2)
	for i := 1; i < 6; i++ {
		if sameComponent(comp2, 0, i) {
			t.Errorf("k=2: everything should be singleton, got 0~%d", i)
		}
	}
}

func sameComponent(comp []int, a, b int) bool { return comp[a] == comp[b] }

func TestSingletonComponents(t *testing.T) {
	// A triangle with a pendant router: the pendant is a singleton for
	// k >= 1.
	topo := NewTopology()
	for i := 0; i < 4; i++ {
		topo.AddRouter(string(rune('a' + i)))
	}
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddLink(2, 0)
	topo.AddLink(2, 3)
	if got := topo.SingletonComponents(0); len(got) != 0 {
		t.Errorf("k=0: no singletons expected, got %v", got)
	}
	got := topo.SingletonComponents(1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("k=1: want [3], got %v", got)
	}
}

func TestQuickMinCutSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		topo := NewTopology()
		for i := 0; i < n; i++ {
			topo.AddRouter(string(rune('a' + i)))
		}
		for i := 1; i < n; i++ {
			topo.AddLink(RouterID(i), RouterID(r.Intn(i)))
		}
		for e := 0; e < n/2; e++ {
			x, y := r.Intn(n), r.Intn(n)
			if x != y {
				if _, dup := topo.LinkBetween(RouterID(x), RouterID(y)); !dup {
					topo.AddLink(RouterID(x), RouterID(y))
				}
			}
		}
		s, d := RouterID(r.Intn(n)), RouterID(r.Intn(n))
		return topo.MinCut(s, d) == topo.MinCut(d, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package baselines

import (
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/sim"
	"sre/internal/topology"
)

// DNA is the differential-analysis baseline of §8.3: DNA compares two
// configurations WITHOUT considering failures, so it sees only the
// "shallow" differences visible with all links up. The substitute
// simulates both configurations under the all-up scenario and diffs the
// reachability matrix and forwarding paths.
type DNA struct {
	Before, After *config.Network
	// Err records a simulation failure (a non-convergent control
	// plane); when set, Diff's result is empty and meaningless.
	Err error
}

// DNADiff is a difference detected under no failures.
type DNADiff struct {
	Pair Pair
	// ReachBefore/After are the all-up reachability verdicts.
	ReachBefore, ReachAfter bool
	// PathChanged is set when both deliver but along different links.
	PathChanged bool
}

// Diff returns the no-failure differences between the two
// configurations.
func (d *DNA) Diff() []DNADiff {
	resB, errB := sim.Simulate(d.Before, sim.NewScenario())
	resA, errA := sim.Simulate(d.After, sim.NewScenario())
	if errB != nil || errA != nil {
		if errB != nil {
			d.Err = errB
		} else {
			d.Err = errA
		}
		return nil
	}
	var out []DNADiff
	t := d.Before.Topology
	prefixes := unionPrefixList(d.Before, d.After)
	for _, pfx := range prefixes {
		originsB := originSet(d.Before, pfx)
		originsA := originSet(d.After, pfx)
		for s := 0; s < t.NumRouters(); s++ {
			src := topology.RouterID(s)
			if originsB[src] || originsA[src] {
				continue
			}
			rb := resB.Reachable(src, pfx.Addr, originsB)
			ra := resA.Reachable(src, pfx.Addr, originsA)
			diff := DNADiff{Pair: Pair{src, pfx}, ReachBefore: rb, ReachAfter: ra}
			if rb != ra {
				out = append(out, diff)
				continue
			}
			if rb && ra {
				pb := resB.DeliveringPath(src, pfx.Addr, originsB)
				pa := resA.DeliveringPath(src, pfx.Addr, originsA)
				if !sameLinks(pb, pa) {
					diff.PathChanged = true
					out = append(out, diff)
				}
			}
		}
	}
	return out
}

func originSet(n *config.Network, pfx route.Prefix) map[topology.RouterID]bool {
	m := make(map[topology.RouterID]bool)
	for _, o := range n.OriginsOf(pfx) {
		m[o] = true
	}
	return m
}

func unionPrefixList(a, b *config.Network) []route.Prefix {
	seen := make(map[route.Prefix]bool)
	var out []route.Prefix
	for _, p := range append(a.AllPrefixes(), b.AllPrefixes()...) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func sameLinks(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package baselines

import (
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/sim"
	"sre/internal/topology"
)

// NetDice is the probabilistic-exploration baseline: it computes the
// probability that a (source, prefix) pair is reachable under
// independent link failures by exploring failure scenarios in order of
// likelihood, exploiting the "cold link" observation — links off the
// current forwarding paths cannot change the outcome — and stopping when
// the unexplored probability mass falls below the imprecision bound.
// This mirrors the published NetDice algorithm's structure; like
// NetDice, it answers ONE pair per run, which is why SRE overtakes it on
// all-pairs workloads (Figure 8) while NetDice wins on single
// properties.
type NetDice struct {
	Net *config.Network
	// PLinkDown is the independent link failure probability.
	PLinkDown float64
	// Imprecision bounds the unexplored probability mass (default 1e-4).
	Imprecision float64
	// Explorations counts concrete simulations performed.
	Explorations int
	// Err records the first simulation failure (a non-convergent
	// control plane); when set, the exploration stopped early and the
	// reported lower bound covers only the scenario classes explored.
	Err error
}

// Reachability returns (lower bound, imprecision actually left) for the
// probability that src reaches pfx's origins.
func (nd *NetDice) Reachability(src topology.RouterID, pfx route.Prefix) (float64, float64) {
	if nd.Imprecision == 0 {
		nd.Imprecision = 1e-4
	}
	origins := make(map[topology.RouterID]bool)
	for _, o := range nd.Net.OriginsOf(pfx) {
		origins[o] = true
	}
	addr := pfx.Addr
	p := nd.PLinkDown
	total := 0.0
	leftover := 0.0

	// explore(down, upCond, weight): scenario class where links in
	// `down` failed, links in `upCond` are conditioned up, and all other
	// links are free; weight = probability of the conditioning.
	var explore func(down []topology.LinkID, up map[topology.LinkID]bool, weight float64)
	explore = func(down []topology.LinkID, up map[topology.LinkID]bool, weight float64) {
		if nd.Err != nil {
			return
		}
		if weight < nd.Imprecision {
			leftover += weight
			return
		}
		nd.Explorations++
		res, err := sim.Simulate(nd.Net, sim.NewScenario(down...))
		if err != nil {
			nd.Err = err
			return
		}
		hot, delivered := res.HotLinks(src, addr, origins)
		if !delivered {
			// Disconnection (or policy drop) under the optimistic
			// all-free-links-up scenario: failures only remove links,
			// so no extension of this class restores delivery for
			// shortest-path routing. Contributes zero.
			return
		}
		// The packet is delivered whenever all currently-free hot
		// links are up; cold links are irrelevant (NetDice's theorem).
		free := make([]topology.LinkID, 0, len(hot))
		for l := range hot {
			if !up[l] {
				free = append(free, l)
			}
		}
		// Deterministic order for reproducibility.
		for i := 1; i < len(free); i++ {
			for j := i; j > 0 && free[j] < free[j-1]; j-- {
				free[j], free[j-1] = free[j-1], free[j]
			}
		}
		wAllUp := weight
		for range free {
			wAllUp *= 1 - p
		}
		total += wAllUp
		// Branch: first free hot link down; first up and second down; …
		wPrefix := weight
		for i, l := range free {
			wBranch := wPrefix * p
			newDown := append(append([]topology.LinkID(nil), down...), l)
			newUp := make(map[topology.LinkID]bool, len(up)+i)
			for k := range up {
				newUp[k] = true
			}
			for _, prev := range free[:i] {
				newUp[prev] = true
			}
			explore(newDown, newUp, wBranch)
			wPrefix *= 1 - p
		}
	}
	explore(nil, map[topology.LinkID]bool{}, 1.0)
	return total, leftover
}

// AllReachability computes the probability for every (source, prefix)
// pair by running the single-pair algorithm per pair (the Figure 8
// "all" workload).
func (nd *NetDice) AllReachability() map[Pair]float64 {
	t := nd.Net.Topology
	out := make(map[Pair]float64)
	for _, pfx := range nd.Net.AllPrefixes() {
		origins := make(map[topology.RouterID]bool)
		for _, o := range nd.Net.OriginsOf(pfx) {
			origins[o] = true
		}
		for s := 0; s < t.NumRouters(); s++ {
			if origins[topology.RouterID(s)] {
				continue
			}
			pr, _ := nd.Reachability(topology.RouterID(s), pfx)
			out[Pair{topology.RouterID(s), pfx}] = pr
		}
	}
	return out
}

// ReachabilityWithNodes extends the exploration to independent node
// failures (probability PNodeDown each): node-failure combinations are
// enumerated outer-most in order of increasing size until their
// probability tail falls below the imprecision bound; each combination
// fails all incident links and the link-level exploration runs
// underneath. This mirrors how NetDice layers node failures over its
// link exploration.
func (nd *NetDice) ReachabilityWithNodes(src topology.RouterID, pfx route.Prefix, pNodeDown float64) (float64, float64) {
	if nd.Imprecision == 0 {
		nd.Imprecision = 1e-4
	}
	t := nd.Net.Topology
	n := t.NumRouters()
	total := 0.0
	leftover := 0.0
	// Enumerate node subsets by increasing size; stop when the binomial
	// tail is below the imprecision.
	maxNodes := 0
	for tail := 1.0; maxNodes <= n; maxNodes++ {
		tail = binomTail(n, maxNodes, pNodeDown)
		if tail < nd.Imprecision/2 {
			break
		}
	}
	var rec func(start int, downNodes []topology.RouterID, weight float64)
	rec = func(start int, downNodes []topology.RouterID, weight float64) {
		// Contribution of this exact node scenario: remaining nodes up.
		wHere := weight
		for i := start; i < n; i++ {
			wHere *= 1 - pNodeDown
		}
		if wHere >= nd.Imprecision/16 {
			srcDown := false
			for _, d := range downNodes {
				if d == src {
					srcDown = true
				}
			}
			if !srcDown {
				pLink, lo := nd.reachabilityWithDownNodes(src, pfx, downNodes)
				total += wHere * pLink
				leftover += wHere * lo
			}
		} else {
			leftover += wHere
		}
		if len(downNodes) >= maxNodes {
			return
		}
		for i := start; i < n; i++ {
			w := weight * pNodeDown
			for j := start; j < i; j++ {
				w *= 1 - pNodeDown
			}
			rec(i+1, append(downNodes, topology.RouterID(i)), w)
		}
	}
	rec(0, nil, 1.0)
	return total, leftover
}

// reachabilityWithDownNodes runs the link-level exploration with the
// links of the failed nodes forced down.
func (nd *NetDice) reachabilityWithDownNodes(src topology.RouterID, pfx route.Prefix, downNodes []topology.RouterID) (float64, float64) {
	t := nd.Net.Topology
	forced := make(map[topology.LinkID]bool)
	for _, node := range downNodes {
		for _, lid := range t.Router(node).Links {
			forced[lid] = true
		}
	}
	origins := make(map[topology.RouterID]bool)
	for _, o := range nd.Net.OriginsOf(pfx) {
		origins[o] = true
	}
	addr := pfx.Addr
	p := nd.PLinkDown
	total := 0.0
	leftover := 0.0
	baseDown := make([]topology.LinkID, 0, len(forced))
	for l := range forced {
		baseDown = append(baseDown, l)
	}
	var explore func(down []topology.LinkID, up map[topology.LinkID]bool, weight float64)
	explore = func(down []topology.LinkID, up map[topology.LinkID]bool, weight float64) {
		if nd.Err != nil {
			return
		}
		if weight < nd.Imprecision {
			leftover += weight
			return
		}
		nd.Explorations++
		res, err := sim.Simulate(nd.Net, sim.NewScenario(down...))
		if err != nil {
			nd.Err = err
			return
		}
		hot, delivered := res.HotLinks(src, addr, origins)
		if !delivered {
			return
		}
		free := make([]topology.LinkID, 0, len(hot))
		for l := range hot {
			if !up[l] {
				free = append(free, l)
			}
		}
		for i := 1; i < len(free); i++ {
			for j := i; j > 0 && free[j] < free[j-1]; j-- {
				free[j], free[j-1] = free[j-1], free[j]
			}
		}
		wAllUp := weight
		for range free {
			wAllUp *= 1 - p
		}
		total += wAllUp
		wPrefix := weight
		for i, l := range free {
			wBranch := wPrefix * p
			newDown := append(append([]topology.LinkID(nil), down...), l)
			newUp := make(map[topology.LinkID]bool, len(up)+i)
			for k := range up {
				newUp[k] = true
			}
			for _, prev := range free[:i] {
				newUp[prev] = true
			}
			explore(newDown, newUp, wBranch)
			wPrefix *= 1 - p
		}
	}
	explore(baseDown, map[topology.LinkID]bool{}, 1.0)
	return total, leftover
}

// binomTail returns P(X > k) for X ~ Binomial(n, p), small-n exact.
func binomTail(n, k int, p float64) float64 {
	if k >= n {
		return 0
	}
	cum := 0.0
	c := 1.0
	for m := 0; m <= k; m++ {
		if m > 0 {
			c = c * float64(n-m+1) / float64(m)
		}
		term := c
		for i := 0; i < m; i++ {
			term *= p
		}
		for i := 0; i < n-m; i++ {
			term *= 1 - p
		}
		cum += term
	}
	if cum > 1 {
		cum = 1
	}
	return 1 - cum
}

// WaypointProbability computes the probability that traffic from src to
// pfx traverses waypoint w, by restricting hot-path delivery to paths
// through w (Figure 14's workload).
func (nd *NetDice) WaypointProbability(src topology.RouterID, pfx route.Prefix, w topology.RouterID) (float64, float64) {
	if nd.Imprecision == 0 {
		nd.Imprecision = 1e-4
	}
	origins := make(map[topology.RouterID]bool)
	for _, o := range nd.Net.OriginsOf(pfx) {
		origins[o] = true
	}
	addr := pfx.Addr
	p := nd.PLinkDown
	total := 0.0
	leftover := 0.0
	var explore func(down []topology.LinkID, up map[topology.LinkID]bool, weight float64)
	explore = func(down []topology.LinkID, up map[topology.LinkID]bool, weight float64) {
		if nd.Err != nil {
			return
		}
		if weight < nd.Imprecision {
			leftover += weight
			return
		}
		nd.Explorations++
		res, err := sim.Simulate(nd.Net, sim.NewScenario(down...))
		if err != nil {
			nd.Err = err
			return
		}
		hot, delivered := res.HotLinks(src, addr, origins)
		if !delivered {
			return
		}
		// Waypoint satisfied when every delivering branch passes w:
		// conservative evaluation via the hot DAG — check that w is on
		// the single delivering path (this baseline, like NetDice,
		// evaluates path properties per scenario).
		free := make([]topology.LinkID, 0, len(hot))
		for l := range hot {
			if !up[l] {
				free = append(free, l)
			}
		}
		for i := 1; i < len(free); i++ {
			for j := i; j > 0 && free[j] < free[j-1]; j-- {
				free[j], free[j-1] = free[j-1], free[j]
			}
		}
		if pathTraverses(res, src, addr, origins, w) {
			wAllUp := weight
			for range free {
				wAllUp *= 1 - p
			}
			total += wAllUp
		}
		wPrefix := weight
		for i, l := range free {
			wBranch := wPrefix * p
			newDown := append(append([]topology.LinkID(nil), down...), l)
			newUp := make(map[topology.LinkID]bool, len(up)+i)
			for k := range up {
				newUp[k] = true
			}
			for _, prev := range free[:i] {
				newUp[prev] = true
			}
			explore(newDown, newUp, wBranch)
			wPrefix *= 1 - p
		}
	}
	explore(nil, map[topology.LinkID]bool{}, 1.0)
	return total, leftover
}

// pathTraverses reports whether the delivering path visits w.
func pathTraverses(res *sim.Result, src topology.RouterID, addr uint32, dst map[topology.RouterID]bool, w topology.RouterID) bool {
	if src == w {
		return true
	}
	links := res.DeliveringPath(src, addr, dst)
	t := res.Net.Topology
	for _, lid := range links {
		l := t.Link(lid)
		if l.A == w || l.B == w {
			return true
		}
	}
	return false
}

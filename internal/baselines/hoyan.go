package baselines

import (
	"errors"
	"sort"
	"time"

	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/topology"
)

// Hoyan is the SAT/DNF topology-condition baseline of §8.6 (Table 3):
// Hoyan encodes each route's topology condition as a SAT formula kept in
// disjunctive normal form so that partially impossible routes can be
// pruned term by term. Negating and conjoining conditions during route
// ranking makes the formulas explode with the failure budget k —
// "topology condition explosion" — which this substitute measures by
// running a DNF-condition symbolic route computation for one prefix and
// reporting the peak formula length, running time, and timeouts.
type Hoyan struct {
	Net *config.Network
	// PruneK is the failure budget: terms requiring more than PruneK
	// failed links are pruned (Hoyan's route pruning).
	PruneK int
	// TermLimit aborts the computation when any condition exceeds this
	// many terms (default 200000).
	TermLimit int
	// Timeout aborts on wall-clock time (default 60s).
	Timeout time.Duration
}

// ErrTimeout is reported when the DNF computation exceeds its term
// limit or deadline — Table 3's "timeout" entries.
var ErrTimeout = errors.New("baselines: topology-condition explosion (timeout)")

// term is a conjunction of link literals: links in up must be up, links
// in down must be down. Both slices are sorted and disjoint.
type term struct {
	up, down []topology.LinkID
}

func (t term) clone() term {
	return term{up: append([]topology.LinkID(nil), t.up...), down: append([]topology.LinkID(nil), t.down...)}
}

// size is the literal count of the term.
func (t term) size() int { return len(t.up) + len(t.down) }

// dnf is a disjunction of terms. An empty dnf is False; a dnf holding
// one empty term is True.
type dnf []term

func insertSortedLink(s []topology.LinkID, l topology.LinkID) ([]topology.LinkID, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= l })
	if i < len(s) && s[i] == l {
		return s, true
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = l
	return s, false
}

func containsLink(s []topology.LinkID, l topology.LinkID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= l })
	return i < len(s) && s[i] == l
}

// andLit conjoins a single literal onto every term, dropping
// contradictions and terms exceeding the failure budget.
func (d dnf) andLit(l topology.LinkID, up bool, pruneK int) dnf {
	out := make(dnf, 0, len(d))
	for _, t := range d {
		if up {
			if containsLink(t.down, l) {
				continue
			}
			nt := t.clone()
			nt.up, _ = insertSortedLink(nt.up, l)
			out = append(out, nt)
		} else {
			if containsLink(t.up, l) {
				continue
			}
			nt := t.clone()
			nt.down, _ = insertSortedLink(nt.down, l)
			if pruneK >= 0 && len(nt.down) > pruneK {
				continue
			}
			out = append(out, nt)
		}
	}
	return out
}

// or concatenates (with naive subsumption on exact duplicates).
func (d dnf) or(e dnf) dnf {
	out := append(append(dnf{}, d...), e...)
	return out.dedupe()
}

func (t term) key() string {
	b := make([]byte, 0, 4*(len(t.up)+len(t.down)))
	for _, l := range t.up {
		b = append(b, byte('u'), byte(l>>8), byte(l))
	}
	for _, l := range t.down {
		b = append(b, byte('d'), byte(l>>8), byte(l))
	}
	return string(b)
}

func (d dnf) dedupe() dnf {
	seen := make(map[string]bool, len(d))
	out := d[:0:0]
	for _, t := range d {
		k := t.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// and computes the conjunction by cross product — the expensive
// operation that drives the explosion.
func (d dnf) and(e dnf, pruneK int, limit int) (dnf, error) {
	var out dnf
	for _, t1 := range d {
		for _, t2 := range e {
			nt := t1.clone()
			ok := true
			for _, l := range t2.up {
				if containsLink(nt.down, l) {
					ok = false
					break
				}
				nt.up, _ = insertSortedLink(nt.up, l)
			}
			if !ok {
				continue
			}
			for _, l := range t2.down {
				if containsLink(nt.up, l) {
					ok = false
					break
				}
				nt.down, _ = insertSortedLink(nt.down, l)
			}
			if !ok {
				continue
			}
			if pruneK >= 0 && len(nt.down) > pruneK {
				continue
			}
			out = append(out, nt)
			if len(out) > limit {
				return nil, ErrTimeout
			}
		}
	}
	return out.dedupe(), nil
}

// not negates the DNF (De Morgan plus distribution), the other driver
// of the explosion.
func (d dnf) not(pruneK int, limit int) (dnf, error) {
	// ¬(t1 ∨ t2 ∨ …) = ¬t1 ∧ ¬t2 ∧ …, where ¬term is a small DNF of
	// its negated literals.
	result := dnf{term{}} // True
	for _, t := range d {
		var neg dnf
		for _, l := range t.up {
			neg = append(neg, term{down: []topology.LinkID{l}})
		}
		for _, l := range t.down {
			neg = append(neg, term{up: []topology.LinkID{l}})
		}
		var err error
		result, err = result.and(neg, pruneK, limit)
		if err != nil {
			return nil, err
		}
	}
	return result, nil
}

// length is the total literal count — the "TC Length" column of Table 3.
func (d dnf) length() int {
	n := 0
	for _, t := range d {
		n += t.size()
	}
	return n
}

// Result of a DNF route computation for one prefix.
type HoyanResult struct {
	// PeakTCLength is the largest topology-condition length observed.
	PeakTCLength int
	// Elapsed is the computation time.
	Elapsed time.Duration
	// TimedOut reports whether the computation aborted.
	TimedOut bool
}

// ComputePrefix runs symbolic route computation for one destination
// prefix with DNF-encoded topology conditions, mirroring what the BDD
// engine does for the same prefix: routes propagate hop by hop, ranked
// by path length, and each route's installed condition negates the
// imported conditions of all better routes (equation 1 of the paper).
func (h *Hoyan) ComputePrefix(pfx route.Prefix) HoyanResult {
	if h.TermLimit == 0 {
		h.TermLimit = 200000
	}
	if h.Timeout == 0 {
		h.Timeout = 60 * time.Second
	}
	start := time.Now()
	deadline := start.Add(h.Timeout)
	t := h.Net.Topology
	n := t.NumRouters()

	// Per router: routes keyed by (next hop, path length); condition is
	// the imported DNF.
	type dnfRoute struct {
		nextHop topology.RouterID
		via     topology.LinkID
		pathLen int
		tcIn    dnf
		tcRib   dnf
	}
	ribs := make([][]*dnfRoute, n)
	res := HoyanResult{}
	observe := func(d dnf) {
		if l := d.length(); l > res.PeakTCLength {
			res.PeakTCLength = l
		}
	}
	origins := h.Net.OriginsOf(pfx)
	if len(origins) == 0 {
		res.Elapsed = time.Since(start)
		return res
	}
	queue := []topology.RouterID{}
	queued := make([]bool, n)
	push := func(r topology.RouterID) {
		if !queued[r] {
			queued[r] = true
			queue = append(queue, r)
		}
	}
	isOrigin := make([]bool, n)
	for _, o := range origins {
		isOrigin[o] = true
		push(o)
	}
	fail := func() HoyanResult {
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res
	}
	for iter := 0; len(queue) > 0; iter++ {
		if iter > 2000*n {
			return fail()
		}
		if time.Now().After(deadline) {
			return fail()
		}
		r := queue[0]
		queue = queue[1:]
		queued[r] = false
		// Recompute installed conditions, ranked by path length, with
		// negation of better routes (the explosion driver).
		rib := ribs[r]
		sort.SliceStable(rib, func(i, j int) bool {
			if rib[i].pathLen != rib[j].pathLen {
				return rib[i].pathLen < rib[j].pathLen
			}
			return rib[i].nextHop < rib[j].nextHop
		})
		matchedNeg := dnf{term{}} // ¬(nothing) = True
		changed := false
		if isOrigin[r] {
			matchedNeg = dnf{} // origin's own route always wins: ¬True
		}
		for _, rt := range rib {
			var err error
			tcRib, err := rt.tcIn.and(matchedNeg, h.PruneK, h.TermLimit)
			if err != nil {
				return fail()
			}
			observe(tcRib)
			if !sameDNF(rt.tcRib, tcRib) {
				rt.tcRib = tcRib
				changed = true
			}
			neg, err := rt.tcIn.not(h.PruneK, h.TermLimit)
			if err != nil {
				return fail()
			}
			matchedNeg, err = matchedNeg.and(neg, h.PruneK, h.TermLimit)
			if err != nil {
				return fail()
			}
			observe(matchedNeg)
		}
		if !changed && !isOrigin[r] {
			continue
		}
		// Export to neighbors.
		for _, lid := range t.Router(r).Links {
			nbr := t.Link(lid).Other(r)
			// Advertised condition: union of installed routes (or True
			// at the origin), conjoined with the link.
			var advTC dnf
			advLen := 0
			if isOrigin[r] {
				advTC = dnf{term{}}
			} else {
				for _, rt := range ribs[r] {
					if len(rt.tcRib) == 0 || rt.nextHop == nbr {
						continue // split horizon towards the next hop
					}
					advTC = advTC.or(rt.tcRib)
					if rt.pathLen+1 > advLen {
						advLen = rt.pathLen
					}
				}
			}
			if len(advTC) == 0 {
				continue
			}
			advTC = advTC.andLit(lid, true, h.PruneK)
			if len(advTC) == 0 {
				continue
			}
			if advTC.length() > h.TermLimit {
				return fail()
			}
			// Merge into neighbor's rib.
			minLen := advLen + 1
			found := false
			for _, rt := range ribs[nbr] {
				if rt.nextHop == r && rt.via == lid {
					found = true
					if !sameDNF(rt.tcIn, advTC) || rt.pathLen != minLen {
						rt.tcIn = advTC
						rt.pathLen = minLen
						push(nbr)
					}
				}
			}
			if !found && !isOrigin[nbr] {
				ribs[nbr] = append(ribs[nbr], &dnfRoute{nextHop: r, via: lid, pathLen: minLen, tcIn: advTC})
				push(nbr)
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

func sameDNF(a, b dnf) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[string]int, len(a))
	for _, t := range a {
		keys[t.key()]++
	}
	for _, t := range b {
		keys[t.key()]--
	}
	for _, v := range keys {
		if v != 0 {
			return false
		}
	}
	return true
}

package baselines

import (
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/sat"
	"sre/internal/sim"
	"sre/internal/topology"
)

// Minesweeper is the solver-based baseline: like Minesweeper it answers
// one (source, destination) query by a monolithic solver search over the
// failure space, rather than enumerating scenarios. The substitute runs
// counterexample-guided search with the in-tree CDCL solver: the solver
// proposes a candidate failure scenario within the budget; concrete
// simulation evaluates it; a delivering path refutes the candidate class
// (some link of the path must fail for the property to break), shrinking
// the search space until either a real violation is found or the solver
// proves none exists.
//
// The substitution preserves what the evaluation measures: per-query
// solver-based exploration whose cost grows with the failure budget and
// network size, and which must be repeated for every (src, dst) pair —
// precisely why Minesweeper scales poorly to all-pairs queries (Fig 5)
// while staying competitive on single pairs (Fig 6).
type Minesweeper struct {
	Net *config.Network
	// SolverCalls and Simulations count work performed.
	SolverCalls int
	Simulations int
	// Err records the first simulation failure (a non-convergent
	// control plane); when set, the query aborted and its verdict is
	// not meaningful.
	Err error
}

// ReachableUnderK reports whether src can reach pfx's origins under
// every failure scenario with at most k failed links, and a
// counterexample scenario when not.
func (ms *Minesweeper) ReachableUnderK(src topology.RouterID, pfx route.Prefix, k int) (bool, []topology.LinkID) {
	t := ms.Net.Topology
	nLinks := t.NumLinks()
	origins := make(map[topology.RouterID]bool)
	for _, o := range ms.Net.OriginsOf(pfx) {
		origins[o] = true
	}
	// Variable i = "link i is up".
	s := sat.NewSolver(nLinks)
	vars := make([]int, nLinks)
	for i := range vars {
		vars[i] = i
	}
	s.AddAtMostKFalse(vars, k)
	for {
		ms.SolverCalls++
		if !s.Solve() {
			return true, nil // no candidate scenario breaks the property
		}
		model := s.Model()
		var down []topology.LinkID
		for l := 0; l < nLinks; l++ {
			if !model[l] {
				down = append(down, topology.LinkID(l))
			}
		}
		ms.Simulations++
		res, err := sim.Simulate(ms.Net, sim.NewScenario(down...))
		if err != nil {
			ms.Err = err
			return false, nil
		}
		path := res.DeliveringPath(src, pfx.Addr, origins)
		if path == nil {
			return false, down // concrete counterexample
		}
		// Block the whole class of scenarios in which this delivering
		// path stays up: the property can only fail if some path link
		// fails.
		lits := make([]sat.Lit, len(path))
		for i, lid := range path {
			lits[i] = sat.MkLit(int(lid), true) // "link down"
		}
		s.AddClause(lits...)
	}
}

// AllPairsReachableUnderK runs the per-pair query for every (source,
// prefix) pair — the Figure 5 workload, showing the per-pair cost
// multiplied out.
func (ms *Minesweeper) AllPairsReachableUnderK(k int) map[Pair]bool {
	t := ms.Net.Topology
	out := make(map[Pair]bool)
	for _, pfx := range ms.Net.AllPrefixes() {
		origins := make(map[topology.RouterID]bool)
		for _, o := range ms.Net.OriginsOf(pfx) {
			origins[o] = true
		}
		for s := 0; s < t.NumRouters(); s++ {
			if origins[topology.RouterID(s)] {
				continue
			}
			ok, _ := ms.ReachableUnderK(topology.RouterID(s), pfx, k)
			out[Pair{topology.RouterID(s), pfx}] = ok
		}
	}
	return out
}

// FailureTolerance computes the failure tolerance of one pair by
// querying increasing budgets until a violation appears (how
// Minesweeper-style tools bound tolerance).
func (ms *Minesweeper) FailureTolerance(src topology.RouterID, pfx route.Prefix, kMax int) int {
	for k := 0; k <= kMax; k++ {
		if ok, _ := ms.ReachableUnderK(src, pfx, k); !ok {
			return k - 1
		}
	}
	return kMax
}

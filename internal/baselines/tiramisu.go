package baselines

import (
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/topology"
)

// Tiramisu is the graph-abstraction baseline: ARC/Tiramisu model the
// control plane as a graph and answer failure-tolerance queries with
// polynomial graph algorithms (min-cut), never enumerating scenarios or
// running a solver. The substitute computes reachability tolerance as
// min-cut minus one on the physical graph (our configuration model has
// no ACL-induced asymmetries in the datasets where Tiramisu is
// benchmarked, so the abstraction is exact there; on policy-heavy
// networks Tiramisu-style tools over-approximate, which §8.7 notes as
// "cannot run to completion" for the campus network).
type Tiramisu struct {
	Net *config.Network
	// Cuts counts min-cut computations.
	Cuts int
}

// FailureTolerance returns min-cut(src → any origin of pfx) - 1.
func (ti *Tiramisu) FailureTolerance(src topology.RouterID, pfx route.Prefix) int {
	best := 0
	for _, o := range ti.Net.OriginsOf(pfx) {
		ti.Cuts++
		if c := ti.Net.Topology.MinCut(src, o); c > best {
			best = c
		}
	}
	return best - 1
}

// ReachableUnderK reports whether the pair tolerates k failures.
func (ti *Tiramisu) ReachableUnderK(src topology.RouterID, pfx route.Prefix, k int) bool {
	return ti.FailureTolerance(src, pfx) >= k
}

// AllPairsReachableUnderK answers the Figure 5 workload with one min-cut
// per pair.
func (ti *Tiramisu) AllPairsReachableUnderK(k int) map[Pair]bool {
	t := ti.Net.Topology
	out := make(map[Pair]bool)
	for _, pfx := range ti.Net.AllPrefixes() {
		origins := make(map[topology.RouterID]bool)
		for _, o := range ti.Net.OriginsOf(pfx) {
			origins[o] = true
		}
		for s := 0; s < t.NumRouters(); s++ {
			if origins[topology.RouterID(s)] {
				continue
			}
			out[Pair{topology.RouterID(s), pfx}] = ti.ReachableUnderK(topology.RouterID(s), pfx, k)
		}
	}
	return out
}

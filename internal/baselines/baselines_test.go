package baselines

import (
	"math"
	"testing"

	"sre/internal/analysis"
	"sre/internal/config"
	"sre/internal/prob"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
	"sre/internal/workload"
)

// The baseline substitutes must agree with the symbolic engine on small
// networks — they are independent implementations of the same
// questions, so agreement cross-validates both sides.

func smallWAN(t *testing.T) *config.Network {
	t.Helper()
	return workload.SyntheticWAN("test", 8, 12, workload.BGP, 7)
}

func smallOSPF(t *testing.T) *config.Network {
	t.Helper()
	return workload.SyntheticWAN("test", 8, 12, workload.OSPF, 7)
}

func sreAllPairs(t *testing.T, net *config.Network, k int) map[Pair]bool {
	t.Helper()
	pipe, err := analysis.Run(net, src.Options{PruneK: k})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	budget := pipe.Sp.AtMostKLinkFailures(k)
	m := pipe.Sp.M
	out := make(map[Pair]bool)
	for _, pfx := range net.AllPrefixes() {
		origins := pipe.OriginSet(pfx)
		for s := 0; s < net.Topology.NumRouters(); s++ {
			srcID := topology.RouterID(s)
			if origins[srcID] {
				continue
			}
			hdr := pipe.OwnedHeaders(pfx)
			prop := pipe.ReachBDD(srcID, origins, hdr)
			holds := m.Diff(m.And(hdr, budget), prop) == 0 // no violation in budget
			out[Pair{srcID, pfx}] = holds
		}
	}
	return out
}

func TestBatfishMatchesSRE(t *testing.T) {
	for _, k := range []int{0, 1, 2} {
		net := smallWAN(t)
		want := sreAllPairs(t, net, k)
		bf := &Batfish{Net: net}
		got := bf.AllPairsReachableUnderK(k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: pair counts differ: %d vs %d", k, len(got), len(want))
		}
		for pair, w := range want {
			if got[pair] != w {
				t.Errorf("k=%d pair %v: batfish %v, sre %v", k, pair, got[pair], w)
			}
		}
		if bf.Scenarios == 0 {
			t.Error("batfish did no work")
		}
	}
}

func TestMinesweeperMatchesSRE(t *testing.T) {
	net := smallWAN(t)
	for _, k := range []int{0, 1, 2} {
		want := sreAllPairs(t, net, k)
		ms := &Minesweeper{Net: net}
		got := ms.AllPairsReachableUnderK(k)
		for pair, w := range want {
			if got[pair] != w {
				t.Errorf("k=%d pair %v: minesweeper %v, sre %v", k, pair, got[pair], w)
			}
		}
		if ms.SolverCalls == 0 {
			t.Error("minesweeper did no work")
		}
	}
}

func TestMinesweeperCounterexample(t *testing.T) {
	// Line topology: one failure disconnects.
	net := workload.SyntheticWAN("line", 3, 3, workload.BGP, 1)
	ms := &Minesweeper{Net: net}
	pfx := workload.RouterPrefix(2)
	ok, cex := ms.ReachableUnderK(0, pfx, 2)
	if ok {
		t.Fatal("ring of 3: 2 failures must disconnect")
	}
	if len(cex) == 0 || len(cex) > 2 {
		t.Fatalf("counterexample %v should have 1-2 links", cex)
	}
}

func TestTiramisuMatchesSREOnPolicyFreeNets(t *testing.T) {
	// Without ACLs or policies, reach tolerance equals min-cut-1.
	net := smallOSPF(t)
	pipe, err := analysis.Run(net, src.Options{PruneK: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	ti := &Tiramisu{Net: net}
	for _, pfx := range net.AllPrefixes() {
		origins := pipe.OriginSet(pfx)
		for s := 0; s < net.Topology.NumRouters(); s++ {
			srcID := topology.RouterID(s)
			if origins[srcID] {
				continue
			}
			want := pipe.MinTolerance(pipe.ReachBDD(srcID, origins, pipe.OwnedHeaders(pfx)), pipe.OwnedHeaders(pfx))
			got := ti.FailureTolerance(srcID, pfx)
			// SRE explored only k<=3; clamp.
			if want > 3 {
				if got < 3 {
					t.Errorf("pair (%d,%s): tiramisu %d < explored bound", srcID, pfx, got)
				}
				continue
			}
			if got != want {
				t.Errorf("pair (%d,%s): tiramisu %d, sre %d", srcID, pfx, got, want)
			}
		}
	}
}

func TestNetDiceMatchesSREProbability(t *testing.T) {
	net := smallOSPF(t)
	const pDown = 0.01
	// SRE probabilities with generous budget (k=4 covers enough mass).
	pipe, err := analysis.Run(net, src.Options{PruneK: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	nd := &NetDice{Net: net, PLinkDown: pDown, Imprecision: 1e-7}
	checked := 0
	for _, pfx := range net.AllPrefixes() {
		origins := pipe.OriginSet(pfx)
		for s := 0; s < net.Topology.NumRouters() && checked < 12; s++ {
			srcID := topology.RouterID(s)
			if origins[srcID] {
				continue
			}
			hdr := pipe.OwnedHeaders(pfx)
			prop := pipe.ReachBDD(srcID, origins, hdr)
			want := pipe.MinProbability(prop, prob.LinkModel{PDown: pDown})
			got, leftover := nd.Reachability(srcID, pfx)
			if math.Abs(got-want) > 1e-4+leftover {
				t.Errorf("pair (%d,%s): netdice %v, sre %v (leftover %v)", srcID, pfx, got, want, leftover)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	if nd.Explorations == 0 {
		t.Error("netdice did no work")
	}
}

func TestConfig2SpecMiningMatchesSREMiner(t *testing.T) {
	net := smallWAN(t)
	const kMax = 2
	bf := &Batfish{Net: net}
	got := bf.MineSpecs(kMax)
	mn := &analysis.Miner{Net: net, KMax: kMax}
	specs, err := mn.Mine()
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range specs.ReachTolerance {
		w := want
		if w > kMax {
			w = kMax // enumeration reports >=kMax as kMax
		}
		pair := Pair{Src: key.Src, Prefix: key.Prefix}
		if got[pair] != w {
			t.Errorf("pair %v: enumeration %d, miner %d", pair, got[pair], w)
		}
	}
}

func TestHoyanExplosionGrowsWithK(t *testing.T) {
	net := workload.SyntheticWAN("hoyan", 12, 18, workload.BGP, 3)
	pfx := workload.RouterPrefix(0)
	var prev int
	for _, k := range []int{0, 1, 2} {
		h := &Hoyan{Net: net, PruneK: k, TermLimit: 500000}
		res := h.ComputePrefix(pfx)
		if res.TimedOut {
			t.Logf("k=%d timed out (allowed)", k)
			break
		}
		if res.PeakTCLength < prev {
			t.Errorf("k=%d: TC length %d decreased from %d", k, res.PeakTCLength, prev)
		}
		prev = res.PeakTCLength
	}
	if prev == 0 {
		t.Error("no TC length observed")
	}
}

func TestHoyanTimeout(t *testing.T) {
	net := workload.SyntheticWAN("hoyanbig", 24, 40, workload.BGP, 5)
	h := &Hoyan{Net: net, PruneK: 3, TermLimit: 200}
	res := h.ComputePrefix(workload.RouterPrefix(0))
	if !res.TimedOut {
		t.Skip("explosion did not trip the tiny limit; topology too easy")
	}
}

func TestDNAFindsShallowMissesDeep(t *testing.T) {
	before := workload.Figure1()
	// Deep change: delete C's inbound ACL (only visible under failures).
	afterDeep := before.Clone()
	cID := afterDeep.Topology.MustRouter("C")
	aID := afterDeep.Topology.MustRouter("A")
	ac, _ := afterDeep.Topology.LinkBetween(aID, cID)
	afterDeep.Router(cID).Interfaces[ac].ACLIn = nil
	dna := &DNA{Before: before, After: afterDeep}
	if diffs := dna.Diff(); len(diffs) != 0 {
		t.Errorf("DNA should MISS the failure-only difference, got %v", diffs)
	}
	// Shallow change: withdraw a network (visible immediately).
	afterShallow := before.Clone()
	afterShallow.Router(cID).BGP.Networks = afterShallow.Router(cID).BGP.Networks[:1]
	dna = &DNA{Before: before, After: afterShallow}
	if diffs := dna.Diff(); len(diffs) == 0 {
		t.Error("DNA should find the withdrawn network")
	}
}

func TestAtomicChangesApply(t *testing.T) {
	net := workload.SyntheticWAN("chg", 8, 12, workload.BGP, 11)
	changes := workload.AtomicChanges(net)
	if len(changes) != 10 {
		t.Fatalf("want 10 atomic changes, got %d", len(changes))
	}
	for _, ch := range changes {
		cp := net.Clone()
		ch.Apply(cp)
		if err := cp.Validate(); err != nil {
			t.Errorf("change %q produces invalid config: %v", ch.Name, err)
		}
		// Changed network must still converge.
		if _, err := analysis.Run(cp, src.Options{PruneK: 1}); err != nil {
			t.Errorf("change %q: pipeline failed: %v", ch.Name, err)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	for _, tc := range []struct {
		name           workload.WANName
		routers, links int
	}{
		{workload.Bics, 33, 48},
		{workload.Columbus, 70, 85},
		{workload.USCarrier, 158, 189},
	} {
		net := workload.WAN(tc.name, workload.BGP)
		if net.Topology.NumRouters() != tc.routers || net.Topology.NumLinks() != tc.links {
			t.Errorf("%s: got (%d, %d), want (%d, %d)", tc.name,
				net.Topology.NumRouters(), net.Topology.NumLinks(), tc.routers, tc.links)
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", tc.name, err)
		}
	}
	for _, k := range []int{4, 8, 10} {
		net := workload.FatTree(k, workload.BGP)
		if got, want := net.Topology.NumRouters(), workload.FatTreeNodes(k); got != want {
			t.Errorf("fat tree k=%d: %d routers, want %d", k, got, want)
		}
	}
	if workload.FatTreeNodes(4) != 20 || workload.FatTreeNodes(8) != 80 || workload.FatTreeNodes(10) != 125 ||
		workload.FatTreeNodes(16) != 320 || workload.FatTreeNodes(20) != 500 {
		t.Error("fat-tree node counts do not match the paper's sizes")
	}
	campus := workload.Campus(workload.CampusOptions{VLANs: 20})
	if campus.Topology.NumRouters() != 28 {
		t.Errorf("campus: %d routers, want 28", campus.Topology.NumRouters())
	}
	if err := campus.Validate(); err != nil {
		t.Errorf("campus invalid: %v", err)
	}
	nd := workload.NetDiceWANs(5, workload.OSPF)
	for i, n := range nd {
		if n.Topology.NumLinks() <= 50 {
			t.Errorf("netdice WAN %d has only %d links, want >50", i, n.Topology.NumLinks())
		}
	}
}

func TestFatTreeConverges(t *testing.T) {
	net := workload.FatTree(4, workload.BGP)
	pipe, err := analysis.Run(net, src.Options{PruneK: 1, Abstract: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	// Edge-to-edge reachability should tolerate at least 1 failure in a
	// fat tree (k=4 has 2 uplinks per edge router).
	pfx := route.Prefix{}
	for _, p := range net.AllPrefixes() {
		pfx = p
		break
	}
	origins := pipe.OriginSet(pfx)
	var other topology.RouterID = -1
	for s := 0; s < net.Topology.NumRouters(); s++ {
		name := net.Topology.Name(topology.RouterID(s))
		if !origins[topology.RouterID(s)] && name[0] == 'e' {
			other = topology.RouterID(s)
			break
		}
	}
	if other < 0 {
		t.Fatal("no non-origin edge router found")
	}
	hdr := pipe.OwnedHeaders(pfx)
	prop := pipe.ReachBDD(other, origins, hdr)
	budget := pipe.Sp.AtMostKLinkFailures(1)
	if pipe.Sp.M.Diff(pipe.Sp.M.And(hdr, budget), prop) != 0 {
		t.Error("fat-tree edge-to-edge should tolerate one failure")
	}
}

// Package baselines implements substitutes for the verifiers the paper
// compares against (§8): Batfish (per-scenario concrete simulation),
// Minesweeper (solver-based search over failure scenarios), Tiramisu
// (graph min-cut), NetDice (probabilistic scenario exploration with hot
// links), Hoyan's SAT/DNF topology-condition encoding (Table 3), DNA
// (no-failure differential analysis), and Config2Spec (enumeration-based
// specification mining). Each substitute reproduces the *algorithmic
// cost profile* of the original system — the quantity the evaluation
// figures compare — using the same configuration model and concrete
// simulator as the rest of the reproduction (see DESIGN.md for the
// substitution rationale).
package baselines

import (
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/sim"
	"sre/internal/topology"
)

// Pair is a (source router, destination prefix) reachability instance.
type Pair struct {
	Src    topology.RouterID
	Prefix route.Prefix
}

// enumerateScenarios invokes visit for every failure scenario with at
// most k failed links. Returns the number of scenarios visited, or stops
// early when visit returns false.
func enumerateScenarios(nLinks, k int, visit func(down []topology.LinkID) bool) int {
	count := 0
	var rec func(start int, down []topology.LinkID) bool
	rec = func(start int, down []topology.LinkID) bool {
		count++
		if !visit(down) {
			return false
		}
		if len(down) == k {
			return true
		}
		for l := start; l < nLinks; l++ {
			if !rec(l+1, append(down, topology.LinkID(l))) {
				return false
			}
		}
		return true
	}
	rec(0, nil)
	return count
}

// Batfish is the concrete-simulation baseline: to answer a question
// across failure scenarios it simulates every scenario independently,
// like Batfish-based pipelines (e.g. the Config2Spec dataplane engine).
type Batfish struct {
	Net *config.Network
	// Scenarios counts simulations performed (work metric).
	Scenarios int
	// Err records the first simulation failure (a non-convergent
	// control plane); when set, the enumeration stopped early and the
	// returned verdicts cover only the scenarios simulated so far.
	Err error
}

// AllPairsReachableUnderK reports, for every (source, prefix) pair,
// whether the destination is reachable under EVERY failure scenario of
// at most k link failures. This is the workload of Figure 5.
func (b *Batfish) AllPairsReachableUnderK(k int) map[Pair]bool {
	t := b.Net.Topology
	prefixes := b.Net.AllPrefixes()
	holds := make(map[Pair]bool)
	type target struct {
		addr    uint32
		origins map[topology.RouterID]bool
	}
	targets := make(map[route.Prefix]target)
	for _, pfx := range prefixes {
		origins := make(map[topology.RouterID]bool)
		for _, o := range b.Net.OriginsOf(pfx) {
			origins[o] = true
		}
		targets[pfx] = target{addr: pfx.Addr, origins: origins}
	}
	for s := 0; s < t.NumRouters(); s++ {
		for _, pfx := range prefixes {
			if targets[pfx].origins[topology.RouterID(s)] {
				continue
			}
			holds[Pair{topology.RouterID(s), pfx}] = true
		}
	}
	b.Scenarios += enumerateScenarios(t.NumLinks(), k, func(down []topology.LinkID) bool {
		res, err := sim.Simulate(b.Net, sim.NewScenario(down...))
		if err != nil {
			b.Err = err
			return false
		}
		for pair, ok := range holds {
			if !ok {
				continue
			}
			tg := targets[pair.Prefix]
			if !res.Reachable(pair.Src, tg.addr, tg.origins) {
				holds[pair] = false
			}
		}
		return true
	})
	return holds
}

// SinglePairReachableUnderK checks one pair across all scenarios with at
// most k failures (Figure 6's workload), stopping at the first
// counterexample.
func (b *Batfish) SinglePairReachableUnderK(src topology.RouterID, pfx route.Prefix, k int) bool {
	origins := make(map[topology.RouterID]bool)
	for _, o := range b.Net.OriginsOf(pfx) {
		origins[o] = true
	}
	ok := true
	b.Scenarios += enumerateScenarios(b.Net.Topology.NumLinks(), k, func(down []topology.LinkID) bool {
		res, err := sim.Simulate(b.Net, sim.NewScenario(down...))
		if err != nil {
			b.Err = err
			ok = false
			return false
		}
		if !res.Reachable(src, pfx.Addr, origins) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// MineSpecs is the Config2Spec-substitute: determine every pair's
// failure tolerance up to kMax by intersecting per-scenario reachability
// matrices, one stratum at a time (Figure 7's baseline).
func (b *Batfish) MineSpecs(kMax int) map[Pair]int {
	t := b.Net.Topology
	prefixes := b.Net.AllPrefixes()
	tolerance := make(map[Pair]int)
	alive := make(map[Pair]bool)
	origins := make(map[route.Prefix]map[topology.RouterID]bool)
	for _, pfx := range prefixes {
		om := make(map[topology.RouterID]bool)
		for _, o := range b.Net.OriginsOf(pfx) {
			om[o] = true
		}
		origins[pfx] = om
		for s := 0; s < t.NumRouters(); s++ {
			if !om[topology.RouterID(s)] {
				alive[Pair{topology.RouterID(s), pfx}] = true
			}
		}
	}
	for k := 0; k <= kMax && len(alive) > 0; k++ {
		b.Scenarios += enumerateScenarios(t.NumLinks(), k, func(down []topology.LinkID) bool {
			if len(down) != k { // strata: only scenarios with exactly k failures
				return true
			}
			res, err := sim.Simulate(b.Net, sim.NewScenario(down...))
			if err != nil {
				b.Err = err
				return false
			}
			for pair := range alive {
				if !res.Reachable(pair.Src, pair.Prefix.Addr, origins[pair.Prefix]) {
					tolerance[pair] = k - 1
					delete(alive, pair)
				}
			}
			return true
		})
	}
	for pair := range alive {
		tolerance[pair] = kMax // survives every stratum: ≥ kMax
	}
	return tolerance
}

package spf

import (
	"testing"

	"sre/internal/bdd"
	"sre/internal/route"
	"sre/internal/src"
)

// The data plane must resolve iBGP-learned routes recursively through
// the IGP: R1's packets for the external prefix follow the OSPF path to
// the border router R3 hop by hop, with every transit router forwarding
// correctly.
func TestIBGPForwarding(t *testing.T) {
	eng, fw := build(t, `
topology
  router R1
  router R2
  router R3
  router E
  link R1 R2
  link R2 R3
  link R3 E
end
router R1
  bgp 100
  ospf
  exit
end
router R2
  bgp 100
  ospf
  exit
end
router R3
  bgp 100
  ospf
  exit
end
router E
  bgp 200
    network 100.0.0.0/8
end
`, src.Options{PruneK: -1, IBGPFullMesh: true})
	m := eng.Sp.M
	topo := eng.Net.Topology
	r1 := topo.MustRouter("R1")
	e := topo.MustRouter("E")

	pfecs, err := fw.ForwardHeaders(r1, eng.Sp.Prefix(route.MustParsePrefix("100.0.0.0/8")))
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)

	found := false
	for _, p := range pfecs {
		if !p.Delivered || p.Dst() != e {
			continue
		}
		found = true
		if len(p.Path) != 4 {
			t.Errorf("path %v should be R1→R2→R3→E", p.Path)
		}
		// Every link on the line must be up.
		allUp := eng.Sp.AllLinksUp()
		if m.And(p.Pred, allUp) == bdd.False {
			t.Error("PFEC should cover the all-up scenario")
		}
	}
	if !found {
		t.Fatal("no delivering PFEC from R1 to E; iBGP resolution failed")
	}
}

package spf

import (
	"testing"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
)

const figure1 = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end

router A
  bgp 65001
end

router B
  bgp 65002
end

router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func build(t *testing.T, text string, opts src.Options) (*src.Engine, *Forwarder) {
	t.Helper()
	net, err := config.ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	eng := src.New(net, opts)
	if err := eng.Run(); err != nil {
		t.Fatalf("src: %v", err)
	}
	fw, err := NewForwarder(eng)
	if err != nil {
		t.Fatalf("spf: %v", err)
	}
	return eng, fw
}

func TestFigure1PFECs(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	m := eng.Sp.M
	topo := eng.Net.Topology
	a := topo.MustRouter("A")
	b := topo.MustRouter("B")
	c := topo.MustRouter("C")
	ab, _ := topo.LinkBetween(a, b)
	bc, _ := topo.LinkBetween(b, c)
	ac, _ := topo.LinkBetween(a, c)
	lAB, lBC, lAC := eng.Sp.LinkVar(ab), eng.Sp.LinkVar(bc), eng.Sp.LinkVar(ac)

	pfecs, err := fw.Forward(a)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)

	p128 := eng.Sp.Prefix(route.MustParsePrefix("128.0.0.0/1"))
	p192 := eng.Sp.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	p128only := m.Diff(p128, p192) // 128/2, the paper's p1·¬p2

	// Expected (Figure 1(b) / Figure 3(c)):
	//   (128/2 ∧ lAC,            A→C)
	//   (128/2 ∧ ¬lAC·lAB·lBC,   A→B→C)
	//   (192/2 ∧ lAB·lBC,        A→B→C)
	// The direct path for 192/2 is blocked by C's inbound ACL.
	wantDirect := m.And(p128only, lAC)
	wantViaB128 := m.AndN(p128only, m.Not(lAC), lAB, lBC)
	wantViaB192 := m.AndN(p192, lAB, lBC)

	var gotDirect, gotViaB bdd.Node = bdd.False, bdd.False
	for _, p := range pfecs {
		if !p.Delivered {
			continue
		}
		if p.Dst() != c {
			t.Errorf("delivery at unexpected router %d", p.Dst())
		}
		switch len(p.Path) {
		case 2:
			gotDirect = m.Or(gotDirect, p.Pred)
		case 3:
			if p.Path[1] != b {
				t.Errorf("3-hop path should go via B")
			}
			gotViaB = m.Or(gotViaB, p.Pred)
		default:
			t.Errorf("unexpected path length %d", len(p.Path))
		}
	}
	if gotDirect != wantDirect {
		t.Errorf("direct PFEC = %s\nwant %s", m.Format(gotDirect, nil), m.Format(wantDirect, nil))
	}
	if want := m.Or(wantViaB128, wantViaB192); gotViaB != want {
		t.Errorf("via-B PFEC = %s\nwant %s", m.Format(gotViaB, nil), m.Format(want, nil))
	}
}

func TestFigure1NoLoops(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	for r := 0; r < eng.Net.Topology.NumRouters(); r++ {
		pfecs, err := fw.Forward(topology.RouterID(r))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pfecs {
			if p.Looped {
				t.Errorf("loop detected from router %d: %v", r, p)
			}
		}
		ReleasePFECs(eng.Sp, pfecs)
	}
}

func TestPFECsAreDisjointPerSource(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	m := eng.Sp.M
	a := eng.Net.Topology.MustRouter("A")
	pfecs, err := fw.Forward(a)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)
	// Definition 1: PFECs partition the (packet, failure) tuples that
	// are delivered — distinct paths must not share tuples.
	for i := 0; i < len(pfecs); i++ {
		for j := i + 1; j < len(pfecs); j++ {
			if m.And(pfecs[i].Pred, pfecs[j].Pred) != bdd.False {
				t.Errorf("PFECs %v and %v overlap", pfecs[i], pfecs[j])
			}
		}
	}
}

func TestSymbolicFIBOrdering(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	a := eng.Net.Topology.MustRouter("A")
	fib := fw.FIBOf(a)
	if len(fib.Rules) == 0 {
		t.Fatal("empty FIB at A")
	}
	for i := 1; i < len(fib.Rules); i++ {
		if fib.Rules[i].Prefix.Len > fib.Rules[i-1].Prefix.Len {
			t.Fatal("FIB not ordered by descending prefix length")
		}
	}
}

func TestACLPredicate(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	m := eng.Sp.M
	topo := eng.Net.Topology
	c := topo.MustRouter("C")
	a := topo.MustRouter("A")
	ac, _ := topo.LinkBetween(a, c)
	// C's inbound ACL on the port to A must deny exactly 192/2.
	idx := -1
	for i, lid := range topo.Router(c).Links {
		if lid == ac {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("port not found")
	}
	pred := fw.aclIn[c][idx]
	p192 := eng.Sp.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	if m.And(pred, p192) != bdd.False {
		t.Error("ACL permits 192/2")
	}
	if got := m.Or(pred, p192); got != bdd.True {
		t.Errorf("ACL should permit everything else, got %s", m.Format(got, nil))
	}
}

func TestForwardHeadersRestricts(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	m := eng.Sp.M
	a := eng.Net.Topology.MustRouter("A")
	p192 := eng.Sp.Prefix(route.MustParsePrefix("192.0.0.0/2"))
	pfecs, err := fw.ForwardHeaders(a, p192)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)
	for _, p := range pfecs {
		if m.Diff(eng.Sp.HeaderOnly(p.Pred), p192) != bdd.False {
			t.Errorf("PFEC leaked outside requested headers: %v", p)
		}
	}
	if len(pfecs) == 0 {
		t.Fatal("192/2 should be deliverable via B")
	}
}

func TestLinkFailureBlocksForwarding(t *testing.T) {
	// Two routers, one link: delivery requires the link up.
	eng, fw := build(t, `
topology
  router A
  router B
  link A B
end
router A
  ospf
  exit
end
router B
  ospf
    network 10.0.0.0/24
  exit
end
`, src.Options{PruneK: -1})
	m := eng.Sp.M
	topo := eng.Net.Topology
	a, b := topo.MustRouter("A"), topo.MustRouter("B")
	ab, _ := topo.LinkBetween(a, b)
	pfecs, err := fw.Forward(a)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)
	if len(pfecs) != 1 || !pfecs[0].Delivered {
		t.Fatalf("want exactly one delivered PFEC, got %v", pfecs)
	}
	want := m.And(eng.Sp.Prefix(route.MustParsePrefix("10.0.0.0/24")), eng.Sp.LinkVar(ab))
	if pfecs[0].Pred != want {
		t.Errorf("PFEC pred = %s, want prefix∧lAB", m.Format(pfecs[0].Pred, nil))
	}
}

func TestAllPFECs(t *testing.T) {
	eng, fw := build(t, figure1, src.Options{PruneK: -1})
	pfecs, err := fw.AllPFECs()
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)
	srcs := make(map[topology.RouterID]bool)
	for _, p := range pfecs {
		srcs[p.Src()] = true
	}
	if len(srcs) != eng.Net.Topology.NumRouters() {
		t.Errorf("PFECs should cover every source, got %d", len(srcs))
	}
}

func TestECMPProducesMultiplePaths(t *testing.T) {
	eng, fw := build(t, `
topology
  router A
  router B
  router C
  router D
  link A B
  link A C
  link B D
  link C D
end
router A
  ospf
  exit
end
router B
  ospf
  exit
end
router C
  ospf
  exit
end
router D
  ospf
    network 10.0.0.0/24
  exit
end
`, src.Options{PruneK: -1})
	m := eng.Sp.M
	a := eng.Net.Topology.MustRouter("A")
	pfecs, err := fw.Forward(a)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePFECs(eng.Sp, pfecs)
	// Under all links up, both 2-hop ECMP paths must carry the packets.
	allUp := eng.Sp.AllLinksUp()
	paths := 0
	for _, p := range pfecs {
		if p.Delivered && len(p.Path) == 3 && m.And(p.Pred, allUp) != bdd.False {
			paths++
		}
	}
	if paths != 2 {
		t.Errorf("want 2 ECMP paths under all-up, got %d", paths)
	}
}

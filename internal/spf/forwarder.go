// Package spf implements Symbolic Packet Forwarding (§5 of the paper):
// converting symbolic RIBs into symbolic FIBs whose rules match on both
// the destination prefix and the topology condition, pre-computing port
// predicates (forwarding predicates and ACL predicates, following the
// atomic-predicates idea of §5.3), and forwarding fully symbolic packets
// — BDDs over header bits and link variables — through the network to
// discover Packet Failure Equivalence Classes (PFECs).
package spf

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/symbol"
	"sre/internal/topology"
)

// Discard is the pseudo egress of FIB rules that drop traffic (BGP
// aggregates install a discard route at the aggregating router).
const Discard topology.LinkID = -2

// Local is the pseudo egress of FIB rules that deliver traffic locally
// (connected networks).
const Local topology.LinkID = -1

// FIBRule is one symbolic forwarding rule: packets matching Prefix under
// failure scenarios satisfying TC are sent out Egress (§5.2).
type FIBRule struct {
	Prefix route.Prefix
	TC     bdd.Node
	Egress topology.LinkID
}

// FIB is the ordered symbolic FIB of one router (longest prefix first).
type FIB struct {
	Rules []FIBRule
}

// PFEC is a packet failure equivalence class (Definition 1): the set of
// (packet, failure) tuples — encoded by Pred, a BDD over header and link
// variables — that traverse exactly the forwarding path Path starting at
// Path[0].
type PFEC struct {
	Path      []topology.RouterID
	Pred      bdd.Node
	Delivered bool // packet reached a local-delivery rule at the last hop
	Looped    bool // defensive: forwarding revisited a router
}

// Src returns the injection router of the PFEC.
func (p *PFEC) Src() topology.RouterID { return p.Path[0] }

// Dst returns the final router of the PFEC.
func (p *PFEC) Dst() topology.RouterID { return p.Path[len(p.Path)-1] }

// Traverses reports whether the forwarding path visits router w.
func (p *PFEC) Traverses(w topology.RouterID) bool {
	for _, r := range p.Path {
		if r == w {
			return true
		}
	}
	return false
}

// String formats the PFEC for debugging.
func (p *PFEC) String() string {
	names := make([]string, len(p.Path))
	for i, r := range p.Path {
		names[i] = fmt.Sprintf("%d", r)
	}
	return fmt.Sprintf("PFEC(%s, delivered=%v)", strings.Join(names, "->"), p.Delivered)
}

// Forwarder executes symbolic packets over the symbolic FIBs of a
// network.
type Forwarder struct {
	Net *config.Network
	Sp  *symbol.Space

	fibs []*FIB
	// fwd[r][i] is the forwarding predicate of router r's i-th port
	// (port i = i-th incident link), §5.3.
	fwd [][]bdd.Node
	// local[r] is the local-delivery predicate of router r.
	local []bdd.Node
	// dropAgg[r] is the predicate of aggregate discard rules.
	dropAgg []bdd.Node
	// aclIn[r][i] / aclOut[r][i] are the ACL predicates of port i.
	aclIn  [][]bdd.Node
	aclOut [][]bdd.Node

	// MaxPFECs bounds the number of PFECs produced per source as a
	// safety valve (0 = unlimited).
	MaxPFECs int

	// Telemetry handles, inherited from the engine's options (nil-safe
	// no-ops when telemetry is disabled).
	tel          *obs.Telemetry
	telPFECs     *obs.Counter
	telDelivered *obs.Counter
	telForward   *obs.Histogram
}

// NewForwarder builds symbolic FIBs and port predicates from the
// symbolic RIBs computed by eng. The engine must have Run successfully.
func NewForwarder(eng *src.Engine) (*Forwarder, error) {
	f := &Forwarder{Net: eng.Net, Sp: eng.Sp}
	f.tel = eng.Opts.Telemetry
	f.telPFECs = f.tel.Counter("spf.pfecs")
	f.telDelivered = f.tel.Counter("spf.pfecs_delivered")
	f.telForward = f.tel.Histogram("spf.forward_ns")
	err := protect(func() {
		f.build(eng)
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

func protect(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Only BDD resource errors and cooperative interruptions
			// (cancellation, deadline — surfaced by the BDD manager's
			// Interrupt hook) are recoverable; runtime panics indicate
			// bugs and must crash loudly.
			if e, ok := r.(error); ok &&
				(errors.Is(e, bdd.ErrNodeLimit) || resil.Interruption(e)) {
				err = resil.Stage("spf", e)
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// build generates FIBs and predicates (§5.2, §5.3).
func (f *Forwarder) build(eng *src.Engine) {
	t := f.Net.Topology
	m := f.Sp.M
	n := t.NumRouters()
	f.fibs = make([]*FIB, n)
	f.fwd = make([][]bdd.Node, n)
	f.local = make([]bdd.Node, n)
	f.dropAgg = make([]bdd.Node, n)
	f.aclIn = make([][]bdd.Node, n)
	f.aclOut = make([][]bdd.Node, n)

	for ri := 0; ri < n; ri++ {
		id := topology.RouterID(ri)
		fib := f.buildFIB(eng, id)
		f.fibs[ri] = fib
		links := t.Router(id).Links
		f.fwd[ri] = make([]bdd.Node, len(links))
		for i := range f.fwd[ri] {
			f.fwd[ri][i] = bdd.False
		}
		f.local[ri] = bdd.False
		f.dropAgg[ri] = bdd.False

		// Effective matches with longest-prefix-match masking: rules
		// are grouped by prefix length (groups of equal length have
		// disjoint header spaces, and rules of the same prefix are
		// already condition-disjoint across priority tiers or
		// intentionally overlapping for ECMP), so masking applies
		// between length groups only.
		matched := bdd.False
		i := 0
		for i < len(fib.Rules) {
			j := i
			for j < len(fib.Rules) && fib.Rules[j].Prefix.Len == fib.Rules[i].Prefix.Len {
				j++
			}
			notMatched := m.Not(matched)
			groupMatch := bdd.False
			for k := i; k < j; k++ {
				rule := fib.Rules[k]
				match := m.And(f.Sp.Prefix(rule.Prefix), rule.TC)
				eff := m.And(match, notMatched)
				groupMatch = m.Or(groupMatch, match)
				if eff == bdd.False {
					continue
				}
				switch rule.Egress {
				case Local:
					f.local[ri] = m.Or(f.local[ri], eff)
				case Discard:
					f.dropAgg[ri] = m.Or(f.dropAgg[ri], eff)
				default:
					port := portIndex(t, id, rule.Egress)
					f.fwd[ri][port] = m.Or(f.fwd[ri][port], eff)
				}
			}
			matched = m.Or(matched, groupMatch)
			i = j
		}
		m.Ref(f.local[ri])
		m.Ref(f.dropAgg[ri])
		for i := range f.fwd[ri] {
			m.Ref(f.fwd[ri][i])
		}

		// ACL predicates.
		rc := f.Net.Router(id)
		f.aclIn[ri] = make([]bdd.Node, len(links))
		f.aclOut[ri] = make([]bdd.Node, len(links))
		for i, lid := range links {
			itf := rc.Interfaces[lid]
			var in, out *config.ACL
			if itf != nil {
				in, out = itf.ACLIn, itf.ACLOut
			}
			f.aclIn[ri][i] = m.Ref(f.aclPredicate(in))
			f.aclOut[ri][i] = m.Ref(f.aclPredicate(out))
		}
		m.MaybeGC(0)
	}
}

// buildFIB converts router r's symbolic RIB into a symbolic FIB ordered
// by descending prefix length. Routes learned over iBGP carry no egress
// link; they resolve recursively through the IGP routes towards the BGP
// next hop's loopback (§4, multi-protocol support).
func (f *Forwarder) buildFIB(eng *src.Engine, r topology.RouterID) *FIB {
	m := f.Sp.M
	rib := eng.RIB(r)
	fib := &FIB{}
	for _, p := range rib.Prefixes() {
		for _, sr := range rib.Routes(p) {
			if sr.TcRib == bdd.False {
				continue
			}
			rt := sr.Route
			if rt.Protocol == route.IBGP && rt.EgressLink < 0 && rt.NextHop >= 0 {
				lb := src.LoopbackPrefix(topology.RouterID(rt.NextHop))
				for _, igp := range rib.Routes(lb) {
					if igp.TcRib == bdd.False || igp.Route.EgressLink < 0 {
						continue
					}
					tc := m.And(sr.TcRib, igp.TcRib)
					if tc != bdd.False {
						fib.Rules = append(fib.Rules, FIBRule{Prefix: p, TC: tc,
							Egress: topology.LinkID(igp.Route.EgressLink)})
					}
				}
				continue
			}
			egress := topology.LinkID(rt.EgressLink)
			if rt.EgressLink < 0 {
				if rt.Aggregate {
					egress = Discard
				} else {
					egress = Local
				}
			}
			fib.Rules = append(fib.Rules, FIBRule{Prefix: p, TC: sr.TcRib, Egress: egress})
		}
	}
	sort.SliceStable(fib.Rules, func(i, j int) bool {
		if fib.Rules[i].Prefix.Len != fib.Rules[j].Prefix.Len {
			return fib.Rules[i].Prefix.Len > fib.Rules[j].Prefix.Len
		}
		if fib.Rules[i].Prefix.Addr != fib.Rules[j].Prefix.Addr {
			return fib.Rules[i].Prefix.Addr < fib.Rules[j].Prefix.Addr
		}
		return false
	})
	return fib
}

// aclPredicate compiles an ACL into a BDD over header variables using
// first-match semantics with implicit deny (§5.3 "ACL predicates").
func (f *Forwarder) aclPredicate(acl *config.ACL) bdd.Node {
	if acl == nil {
		return bdd.True
	}
	m := f.Sp.M
	permit := bdd.False
	matched := bdd.False
	for _, e := range acl.Entries {
		var match bdd.Node
		if e.Any {
			match = bdd.True
		} else {
			match = f.Sp.Prefix(e.Prefix)
		}
		eff := m.Diff(match, matched)
		if e.Action == config.Permit {
			permit = m.Or(permit, eff)
		}
		matched = m.Or(matched, match)
	}
	return permit
}

// FIBOf returns the symbolic FIB of router r.
func (f *Forwarder) FIBOf(r topology.RouterID) *FIB { return f.fibs[r] }

// LocalPredicate returns the local-delivery predicate of router r.
func (f *Forwarder) LocalPredicate(r topology.RouterID) bdd.Node { return f.local[r] }

// ForwardPredicate returns the forwarding predicate of router r's port
// towards link lid.
func (f *Forwarder) ForwardPredicate(r topology.RouterID, lid topology.LinkID) bdd.Node {
	return f.fwd[r][portIndex(f.Net.Topology, r, lid)]
}

// portIndex returns the index of link lid among r's incident links.
func portIndex(t *topology.Topology, r topology.RouterID, lid topology.LinkID) int {
	for i, l := range t.Router(r).Links {
		if l == lid {
			return i
		}
	}
	panic(fmt.Sprintf("spf: link %d not incident to router %d", lid, r))
}

// Forward injects a fully symbolic packet (all headers × all failure
// scenarios) at src and returns the PFECs discovered (§5.4). Every
// returned predicate is Ref'd; call ReleasePFECs when done.
func (f *Forwarder) Forward(srcRouter topology.RouterID) ([]*PFEC, error) {
	var out []*PFEC
	err := protect(func() {
		out = f.forward(srcRouter, bdd.True)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardHeaders is Forward restricted to an initial packet set (a BDD
// over header variables), used by single-prefix analyses.
func (f *Forwarder) ForwardHeaders(srcRouter topology.RouterID, headers bdd.Node) ([]*PFEC, error) {
	var out []*PFEC
	err := protect(func() {
		out = f.forward(srcRouter, headers)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (f *Forwarder) forward(srcRouter topology.RouterID, initial bdd.Node) []*PFEC {
	if f.tel != nil {
		defer func(t0 time.Time) {
			f.telForward.Observe(time.Since(t0).Nanoseconds())
		}(time.Now())
	}
	t := f.Net.Topology
	m := f.Sp.M
	var out []*PFEC
	onPath := make(map[topology.RouterID]bool)
	var path []topology.RouterID

	emit := func(pred bdd.Node, delivered, looped bool) {
		if f.MaxPFECs > 0 && len(out) >= f.MaxPFECs {
			return
		}
		cp := make([]topology.RouterID, len(path))
		copy(cp, path)
		out = append(out, &PFEC{Path: cp, Pred: m.Ref(pred), Delivered: delivered, Looped: looped})
		f.telPFECs.Inc()
		if delivered {
			f.telDelivered.Inc()
		}
	}

	var visit func(r topology.RouterID, pkt bdd.Node)
	visit = func(r topology.RouterID, pkt bdd.Node) {
		if onPath[r] {
			emit(pkt, false, true)
			return
		}
		onPath[r] = true
		path = append(path, r)
		defer func() {
			delete(onPath, r)
			path = path[:len(path)-1]
		}()
		if delivered := m.And(pkt, f.local[r]); delivered != bdd.False {
			emit(delivered, true, false)
		}
		for i, lid := range t.Router(r).Links {
			outPkt := m.And(pkt, f.fwd[r][i])
			if outPkt == bdd.False {
				continue
			}
			outPkt = m.And(outPkt, f.aclOut[r][i])
			outPkt = m.And(outPkt, f.Sp.LinkVar(lid))
			if outPkt == bdd.False {
				continue
			}
			nbr := t.Link(lid).Other(r)
			inPort := portIndex(t, nbr, lid)
			outPkt = m.And(outPkt, f.aclIn[nbr][inPort])
			if outPkt == bdd.False {
				continue
			}
			visit(nbr, outPkt)
		}
	}
	visit(srcRouter, initial)
	return out
}

// AllPFECs runs Forward from every router and returns the concatenated
// PFEC sets.
func (f *Forwarder) AllPFECs() ([]*PFEC, error) {
	var out []*PFEC
	t := f.Net.Topology
	for r := 0; r < t.NumRouters(); r++ {
		pfecs, err := f.Forward(topology.RouterID(r))
		if err != nil {
			ReleasePFECs(f.Sp, out)
			return nil, err
		}
		out = append(out, pfecs...)
		f.Sp.M.MaybeGC(0)
	}
	return out, nil
}

// ReleasePFECs drops the references held by a PFEC set.
func ReleasePFECs(sp *symbol.Space, pfecs []*PFEC) {
	for _, p := range pfecs {
		sp.M.Deref(p.Pred)
	}
}

// Release drops the references held by the forwarder's predicates.
// The forwarder must not be used afterwards.
func (f *Forwarder) Release() {
	m := f.Sp.M
	for r := range f.fwd {
		for i := range f.fwd[r] {
			m.Deref(f.fwd[r][i])
			m.Deref(f.aclIn[r][i])
			m.Deref(f.aclOut[r][i])
		}
		m.Deref(f.local[r])
		m.Deref(f.dropAgg[r])
	}
}

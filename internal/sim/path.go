package sim

import (
	"sre/internal/topology"
)

// HotLinks returns the set of links traversed by ANY delivering
// forwarding branch of a packet for addr injected at src (the union over
// ECMP branches), together with whether any branch delivers. The
// NetDice-substitute baseline uses this as its "hot link" set: links
// whose state can influence the packet's fate under the current
// scenario.
func (res *Result) HotLinks(src topology.RouterID, addr uint32, dst map[topology.RouterID]bool) (map[topology.LinkID]bool, bool) {
	hot := make(map[topology.LinkID]bool)
	delivered := res.collect(src, addr, dst, make(map[topology.RouterID]bool), hot)
	if !delivered {
		return nil, false
	}
	return hot, true
}

// collect explores every ECMP branch, recording traversed links of
// delivering branches; returns whether any branch delivers.
func (res *Result) collect(r topology.RouterID, addr uint32, dst map[topology.RouterID]bool, onPath map[topology.RouterID]bool, hot map[topology.LinkID]bool) bool {
	if onPath[r] {
		return false
	}
	onPath[r] = true
	defer delete(onPath, r)
	tier, local := res.lookup(r, addr)
	delivered := false
	if local && dst[r] {
		delivered = true
	}
	t := res.Net.Topology
	rc := res.Net.Router(r)
	for _, rt := range tier {
		if rt.EgressLink < 0 {
			continue
		}
		lid := topology.LinkID(rt.EgressLink)
		if !res.Sc.Up(lid) {
			continue
		}
		if itf, ok := rc.Interfaces[lid]; ok && itf.ACLOut != nil && !itf.ACLOut.PermitsAddr(addr) {
			continue
		}
		nbr := t.Link(lid).Other(r)
		if itf, ok := res.Net.Router(nbr).Interfaces[lid]; ok && itf.ACLIn != nil && !itf.ACLIn.PermitsAddr(addr) {
			continue
		}
		if res.collect(nbr, addr, dst, onPath, hot) {
			hot[lid] = true
			delivered = true
		}
	}
	return delivered
}

// DeliveringPath returns the links of one delivering forwarding path for
// addr from src, or nil when the packet is not delivered.
func (res *Result) DeliveringPath(src topology.RouterID, addr uint32, dst map[topology.RouterID]bool) []topology.LinkID {
	var path []topology.LinkID
	var rec func(r topology.RouterID, onPath map[topology.RouterID]bool) bool
	rec = func(r topology.RouterID, onPath map[topology.RouterID]bool) bool {
		if onPath[r] {
			return false
		}
		onPath[r] = true
		defer delete(onPath, r)
		tier, local := res.lookup(r, addr)
		if local && dst[r] {
			return true
		}
		t := res.Net.Topology
		rc := res.Net.Router(r)
		for _, rt := range tier {
			if rt.EgressLink < 0 {
				continue
			}
			lid := topology.LinkID(rt.EgressLink)
			if !res.Sc.Up(lid) {
				continue
			}
			if itf, ok := rc.Interfaces[lid]; ok && itf.ACLOut != nil && !itf.ACLOut.PermitsAddr(addr) {
				continue
			}
			nbr := t.Link(lid).Other(r)
			if itf, ok := res.Net.Router(nbr).Interfaces[lid]; ok && itf.ACLIn != nil && !itf.ACLIn.PermitsAddr(addr) {
				continue
			}
			path = append(path, lid)
			if rec(nbr, onPath) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if rec(src, make(map[topology.RouterID]bool)) {
		return path
	}
	return nil
}

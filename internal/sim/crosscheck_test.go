package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/spf"
	"sre/internal/src"
	"sre/internal/symbol"
	"sre/internal/topology"
)

// Cross-validation: the symbolic engine's PFECs, evaluated on a concrete
// failure scenario, must agree with concrete simulation of that
// scenario, for every (source, destination address) pair and every
// scenario. This is the soundness test of the whole reproduction.

const figure1 = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  bgp 65001
end
router B
  bgp 65002
end
router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

// crossCheck enumerates every failure scenario of the network (up to
// maxDown failed links) and compares symbolic and concrete reachability
// for every source router and every originated prefix.
func crossCheck(t *testing.T, net *config.Network, maxDown int) {
	t.Helper()
	eng := src.New(net, src.Options{PruneK: -1})
	if err := eng.Run(); err != nil {
		t.Fatalf("src: %v", err)
	}
	fw, err := spf.NewForwarder(eng)
	if err != nil {
		t.Fatalf("spf: %v", err)
	}
	topoN := net.Topology
	nLinks := topoN.NumLinks()
	prefixes := net.AllPrefixes()
	m := eng.Sp.M

	// Symbolic reach BDDs per (src, prefix): delivered at any origin.
	type pairBDD struct {
		src topology.RouterID
		pfx route.Prefix
		bdd bdd.Node
	}
	var pairs []pairBDD
	for s := 0; s < topoN.NumRouters(); s++ {
		pfecs, err := fw.Forward(topology.RouterID(s))
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		for _, pfx := range prefixes {
			origins := make(map[topology.RouterID]bool)
			for _, o := range net.OriginsOf(pfx) {
				origins[o] = true
			}
			hdr := eng.Sp.Prefix(pfx)
			// Exclude addresses owned by a longer originated prefix.
			for _, other := range prefixes {
				if other != pfx && pfx.Covers(other) {
					hdr = m.Diff(hdr, eng.Sp.Prefix(other))
				}
			}
			reach := bdd.False
			for _, pf := range pfecs {
				if pf.Delivered && origins[pf.Dst()] {
					reach = m.Or(reach, pf.Pred)
				}
			}
			pairs = append(pairs, pairBDD{topology.RouterID(s), pfx, m.Ref(m.And(reach, hdr))})
		}
	}

	// Enumerate scenarios.
	var enumerate func(start int, down []topology.LinkID)
	checked := 0
	enumerate = func(start int, down []topology.LinkID) {
		sc := NewScenario(down...)
		res, err := Simulate(net, sc)
		if err != nil {
			t.Fatalf("Simulate(%v): %v", down, err)
		}
		for _, pair := range pairs {
			origins := make(map[topology.RouterID]bool)
			for _, o := range net.OriginsOf(pair.pfx) {
				origins[o] = true
			}
			addr := pair.pfx.Addr // representative address owned by pfx
			if ownedByLonger(prefixes, pair.pfx, addr) {
				continue
			}
			concrete := res.Reachable(pair.src, addr, origins)
			symbolic := m.Eval(pair.bdd, func(v int) bool {
				if v < symbol.HeaderBits {
					return addr&(1<<(31-v)) != 0
				}
				// Decode through the space's variable-order permutation.
				l, isLink := eng.Sp.LinkOfVar(v)
				if !isLink {
					t.Fatalf("non-link variable %d in reach BDD", v)
				}
				return sc.Up(l)
			})
			if concrete != symbolic {
				t.Errorf("disagreement: src=%s prefix=%s down=%v concrete=%v symbolic=%v",
					topoN.Name(pair.src), pair.pfx, down, concrete, symbolic)
			}
		}
		checked++
		if len(down) == maxDown {
			return
		}
		for l := start; l < nLinks; l++ {
			enumerate(l+1, append(down, topology.LinkID(l)))
		}
	}
	enumerate(0, nil)
	if t.Failed() {
		t.Logf("checked %d scenarios", checked)
	}
}

func ownedByLonger(prefixes []route.Prefix, pfx route.Prefix, addr uint32) bool {
	for _, other := range prefixes {
		if other != pfx && other.Len > pfx.Len && other.Contains(addr) {
			return true
		}
	}
	return false
}

func parse(t *testing.T, text string) *config.Network {
	t.Helper()
	net, err := config.ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return net
}

func TestCrossCheckFigure1(t *testing.T) {
	crossCheck(t, parse(t, figure1), 3)
}

func TestCrossCheckOSPFSquare(t *testing.T) {
	crossCheck(t, parse(t, `
topology
  router A
  router B
  router C
  router D
  link A B
  link A C
  link B D
  link C D
end
router A
  ospf
    network 10.0.1.0/24
  exit
end
router B
  ospf
  exit
end
router C
  ospf
  exit
  interface D
    cost 3
  exit
end
router D
  ospf
    network 10.0.2.0/24
  exit
end
`), 4)
}

func TestCrossCheckStaticAndACL(t *testing.T) {
	crossCheck(t, parse(t, `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  ospf
  exit
  static 10.9.0.0/16 via C
end
router B
  ospf
    network 10.9.0.0/16
  exit
  interface A
    acl-out deny 10.1.0.0/16
    acl-out permit any
  exit
end
router C
  ospf
    network 10.1.0.0/16
  exit
end
`), 3)
}

func TestCrossCheckAggregation(t *testing.T) {
	crossCheck(t, parse(t, `
topology
  router A
  router B
  router C
  link A B
  link B C
end
router A
  bgp 65001
end
router B
  bgp 65002
    aggregate 10.0.0.0/8
end
router C
  bgp 65003
    network 10.0.0.0/9
    network 10.128.0.0/9
end
`), 3)
}

// randomNetwork generates a small random network running one protocol
// with random policies, for fuzz-style cross-checking.
func randomNetwork(r *rand.Rand, routers int, useBGP bool) *config.Network {
	topo := topology.NewTopology()
	for i := 0; i < routers; i++ {
		topo.AddRouter(fmt.Sprintf("r%d", i))
	}
	// Spanning tree plus ~routers/2 extra links.
	for i := 1; i < routers; i++ {
		topo.AddLink(topology.RouterID(i), topology.RouterID(r.Intn(i)))
	}
	extra := routers / 2
	for e := 0; e < extra; e++ {
		a, b := r.Intn(routers), r.Intn(routers)
		if a == b {
			continue
		}
		if _, dup := topo.LinkBetween(topology.RouterID(a), topology.RouterID(b)); !dup {
			topo.AddLink(topology.RouterID(a), topology.RouterID(b))
		}
	}
	net := config.NewNetwork(topo)
	for i := 0; i < routers; i++ {
		rc := net.Router(topology.RouterID(i))
		if useBGP {
			rc.BGP = &config.BGP{ASN: uint32(65000 + i),
				ImportPolicy: map[string]string{}, ExportPolicy: map[string]string{}}
		} else {
			rc.OSPF = &config.OSPF{}
			for _, lid := range topo.Router(topology.RouterID(i)).Links {
				if r.Intn(3) == 0 {
					rc.Interface(lid).OSPFCost = 1 + r.Intn(5)
				}
			}
		}
	}
	// 2-3 originated prefixes at random routers.
	nPfx := 2 + r.Intn(2)
	for p := 0; p < nPfx; p++ {
		owner := net.Router(topology.RouterID(r.Intn(routers)))
		pfx := route.Prefix{Addr: uint32(10+p) << 24, Len: 8}
		if useBGP {
			owner.BGP.Networks = append(owner.BGP.Networks, pfx)
		} else {
			owner.OSPF.Networks = append(owner.OSPF.Networks, pfx)
		}
	}
	// Random ACL on one interface.
	if r.Intn(2) == 0 {
		victim := net.Router(topology.RouterID(r.Intn(routers)))
		links := topo.Router(topo.MustRouter(victim.Name)).Links
		if len(links) > 0 {
			itf := victim.Interface(links[r.Intn(len(links))])
			itf.ACLIn = &config.ACL{Entries: []config.ACLEntry{
				{Action: config.Deny, Prefix: route.Prefix{Addr: 10 << 24, Len: 8}},
				{Action: config.Permit, Any: true},
			}}
		}
	}
	return net
}

func TestCrossCheckRandomOSPF(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		net := randomNetwork(r, 4+r.Intn(2), false)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			crossCheck(t, net, 2)
		})
	}
}

func TestCrossCheckRandomBGP(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		net := randomNetwork(r, 4+r.Intn(2), true)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			crossCheck(t, net, 2)
		})
	}
}

func TestSimulateFigure1AllUp(t *testing.T) {
	net := parse(t, figure1)
	res, err := Simulate(net, NewScenario())
	if err != nil {
		t.Fatal(err)
	}
	a := net.Topology.MustRouter("A")
	c := net.Topology.MustRouter("C")
	dst := map[topology.RouterID]bool{c: true}
	// 128/2 reachable directly.
	if !res.Reachable(a, 0x80000000, dst) {
		t.Error("128/2 should reach C")
	}
	// 192/2: diverted via B (reachable), since the route-map prevents
	// the direct route and the ACL only blocks the direct path.
	if !res.Reachable(a, 0xC0000000, dst) {
		t.Error("192/2 should reach C via B")
	}
}

func TestSimulateFigure1LinkABDown(t *testing.T) {
	net := parse(t, figure1)
	topo := net.Topology
	a, b := topo.MustRouter("A"), topo.MustRouter("B")
	ab, _ := topo.LinkBetween(a, b)
	res, err := Simulate(net, NewScenario(ab))
	if err != nil {
		t.Fatal(err)
	}
	c := topo.MustRouter("C")
	dst := map[topology.RouterID]bool{c: true}
	// With A-B down, 192/2 from A must fall back to the direct path,
	// where C's inbound ACL drops it.
	if res.Reachable(a, 0xC0000000, dst) {
		t.Error("192/2 should be dropped when A-B is down")
	}
	if !res.Reachable(a, 0x80000000, dst) {
		t.Error("128/2 should still reach C directly")
	}
}

package sim

import (
	"testing"

	"sre/internal/workload"
)

// The Gao–Rexford transit network exercises communities, local-pref and
// export filters together; symbolic and concrete engines must agree on
// every failure scenario.
func TestCrossCheckTransitWAN(t *testing.T) {
	net := workload.TransitWAN(2, 4, 5)
	crossCheck(t, net, 1)
}

func TestCrossCheckBGPOSPFNoMesh(t *testing.T) {
	// Single-AS network running both protocols without the iBGP mesh:
	// OSPF carries everything; adjacent-only iBGP must not invent
	// routes the simulator would not.
	net := workload.SyntheticWAN("dual", 6, 9, workload.BGPOSPF, 2)
	crossCheck(t, net, 2)
}

package sim

import (
	"errors"
	"testing"

	"sre/internal/resil"
)

// TestNonConvergenceReturnsError drives the simulator into its
// iteration bound (via the white-box simulate with a tiny bound) and
// checks that the failure comes back as a typed error naming routers
// instead of a panic.
func TestNonConvergenceReturnsError(t *testing.T) {
	net := parse(t, figure1)
	res, err := simulate(net, NewScenario(), 1)
	if res != nil || err == nil {
		t.Fatalf("expected a non-convergence error, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, resil.ErrNoConvergence) {
		t.Fatalf("error %v is not ErrNoConvergence", err)
	}
	var se *resil.StageError
	if !errors.As(err, &se) || se.Stage != "sim" || len(se.Routers) == 0 {
		t.Fatalf("error %v should carry stage sim and router names", err)
	}
}

// Package sim is a concrete control-plane and data-plane simulator: it
// computes, for ONE failure scenario, the routes every router installs
// and the forwarding behaviour of concrete packets.
//
// It serves two roles in the reproduction:
//
//  1. It is the Batfish substitute: Batfish-style verification answers
//     questions about a failure scenario by simulating it concretely, so
//     checking a property across failure scenarios means enumerating
//     them — exactly the cost profile Figure 5 and 6 compare against.
//
//  2. It is the ground-truth oracle for SRE itself: the test suite
//     enumerates failure scenarios on small networks and checks that
//     the PFECs computed symbolically agree with concrete simulation in
//     every scenario.
//
// The simulator shares the configuration model and route-ranking logic
// with the symbolic engine but none of its mechanism; agreement between
// the two is therefore meaningful evidence of correctness.
package sim

import (
	"fmt"
	"sort"

	"sre/internal/config"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/topology"
)

// Scenario says which links are down.
type Scenario struct {
	down map[topology.LinkID]bool
}

// NewScenario builds a scenario with the given failed links.
func NewScenario(down ...topology.LinkID) Scenario {
	s := Scenario{down: make(map[topology.LinkID]bool, len(down))}
	for _, l := range down {
		s.down[l] = true
	}
	return s
}

// Up reports whether link l is up.
func (s Scenario) Up(l topology.LinkID) bool { return !s.down[l] }

// NumDown returns the number of failed links.
func (s Scenario) NumDown() int { return len(s.down) }

// Result holds the converged state of one simulation.
type Result struct {
	Net *config.Network
	Sc  Scenario
	// ribs[r][prefix] is the best tier (ECMP set) installed at r.
	ribs []map[route.Prefix][]*route.Route
}

// Simulate runs the control plane to a fixed point under the scenario.
// A control plane that oscillates past its iteration bound returns a
// resil.ErrNoConvergence-wrapping error naming the oscillating routers
// instead of panicking, so baseline sweeps over many scenarios cannot
// crash the process.
func Simulate(net *config.Network, sc Scenario) (*Result, error) {
	n := net.Topology.NumRouters()
	return simulate(net, sc, 100000*(n+1))
}

// simulate is Simulate with an explicit iteration bound (tests use a
// tiny bound to exercise the non-convergence path cheaply).
func simulate(net *config.Network, sc Scenario, maxIters int) (*Result, error) {
	res := &Result{Net: net, Sc: sc}
	t := net.Topology
	n := t.NumRouters()
	res.ribs = make([]map[route.Prefix][]*route.Route, n)
	// candidate routes per router per prefix (all imported, not just best)
	cands := make([]map[route.Prefix][]*route.Route, n)
	for i := 0; i < n; i++ {
		res.ribs[i] = make(map[route.Prefix][]*route.Route)
		cands[i] = make(map[route.Prefix][]*route.Route)
	}
	// Originate.
	queue := []topology.RouterID{}
	queued := make([]bool, n)
	push := func(r topology.RouterID) {
		if !queued[r] {
			queued[r] = true
			queue = append(queue, r)
		}
	}
	for i := 0; i < n; i++ {
		id := topology.RouterID(i)
		rc := net.Router(id)
		for _, p := range rc.Originated() {
			cands[i][p] = append(cands[i][p], route.NewLocal(p, route.Connected, i))
		}
		for _, s := range rc.Static {
			nbr := t.MustRouter(s.NextHop)
			lid, ok := t.LinkBetween(id, nbr)
			if !ok || !sc.Up(lid) {
				continue
			}
			r := route.NewLocal(s.Prefix, route.Static, i)
			r.NextHop = int(nbr)
			r.EgressLink = int(lid)
			cands[i][s.Prefix] = append(cands[i][s.Prefix], r)
		}
		push(id)
	}
	maxHops := n
	for iter := 0; len(queue) > 0; iter++ {
		if iter > maxIters {
			const max = 8
			var names []string
			for _, q := range queue {
				if len(names) >= max {
					names = append(names, fmt.Sprintf("... %d more", len(queue)-max))
					break
				}
				names = append(names, t.Name(q))
			}
			return nil, &resil.StageError{Stage: "sim", Routers: names,
				Err: fmt.Errorf("%w after %d iterations", resil.ErrNoConvergence, maxIters)}
		}
		r := queue[0]
		queue = queue[1:]
		queued[r] = false
		// Select best tiers for every prefix with candidates.
		changedPrefixes := selectBest(net, r, cands[r], res.ribs[r])
		if len(changedPrefixes) == 0 {
			continue
		}
		// Export changed prefixes to neighbors over up links.
		rc := net.Router(r)
		for _, lid := range t.Router(r).Links {
			if !sc.Up(lid) {
				continue
			}
			if itf, ok := rc.Interfaces[lid]; ok && itf.Passive {
				continue
			}
			nbr := t.Link(lid).Other(r)
			nc := net.Router(nbr)
			if itf, ok := nc.Interfaces[lid]; ok && itf.Passive {
				continue
			}
			changed := false
			for _, p := range changedPrefixes {
				for _, adv := range exportRoutes(net, r, nbr, lid, p, res.ribs[r][p]) {
					if imp := importRoute(net, nbr, r, lid, adv, maxHops); imp != nil {
						if mergeCandidate(cands[nbr], imp) {
							changed = true
						}
					}
				}
				// Withdrawals: remove candidates from r over lid for
				// prefixes r no longer advertises.
				if removeStale(net, cands[nbr], nbr, r, lid, p, res.ribs[r][p]) {
					changed = true
				}
			}
			if changed {
				push(nbr)
			}
		}
	}
	return res, nil
}

// selectBest installs the best (ECMP) tier per prefix from the
// candidates and returns the prefixes whose installed set changed. It
// also derives BGP aggregates at router r.
func selectBest(net *config.Network, r topology.RouterID, cand map[route.Prefix][]*route.Route, rib map[route.Prefix][]*route.Route) []route.Prefix {
	var changed []route.Prefix
	install := func(p route.Prefix, list []*route.Route) {
		sort.SliceStable(list, func(i, j int) bool {
			if c := route.Compare(list[i], list[j]); c != 0 {
				return c < 0
			}
			return route.Tiebreak(list[i], list[j]) < 0
		})
		var best []*route.Route
		for _, rt := range list {
			if len(best) == 0 || route.Compare(best[0], rt) == 0 {
				best = append(best, rt)
			} else {
				break
			}
		}
		if !sameTier(rib[p], best) {
			rib[p] = best
			changed = append(changed, p)
		}
	}
	for p, list := range cand {
		install(p, list)
	}
	// Aggregates: a configured aggregate is generated while at least one
	// more-specific contributor is installed.
	rc := net.Router(r)
	if rc.BGP != nil {
		for _, agg := range rc.BGP.Aggregates {
			have := false
			for p, tier := range rib {
				if agg.Covers(p) && p != agg && len(tier) > 0 {
					for _, rt := range tier {
						switch rt.Protocol {
						case route.EBGP, route.IBGP, route.Connected:
							if !rt.Aggregate {
								have = true
							}
						}
					}
				}
			}
			cur := cand[agg]
			hasAgg := false
			for _, rt := range cur {
				if rt.Aggregate {
					hasAgg = true
				}
			}
			switch {
			case have && !hasAgg:
				rt := route.NewLocal(agg, route.EBGP, int(r))
				rt.Aggregate = true
				cand[agg] = append(cur, rt)
				install(agg, cand[agg])
			case !have && hasAgg:
				kept := cur[:0]
				for _, rt := range cur {
					if !rt.Aggregate {
						kept = append(kept, rt)
					}
				}
				cand[agg] = kept
				install(agg, kept)
			}
		}
	}
	return changed
}

func sameTier(a, b []*route.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !route.SameRoute(a[i], b[i]) {
			return false
		}
	}
	return true
}

// exportRoutes transforms r's best tier of prefix p for advertisement to
// nbr, mirroring the symbolic engine's export processing.
func exportRoutes(net *config.Network, r, nbr topology.RouterID, lid topology.LinkID, p route.Prefix, tier []*route.Route) []*route.Route {
	rc, nc := net.Router(r), net.Router(nbr)
	nbrName := net.Topology.Name(nbr)
	var out []*route.Route
	bgpSession := rc.BGP != nil && nc.BGP != nil
	ospfSession := rc.OSPF != nil && nc.OSPF != nil
	suppressed := false
	if rc.BGP != nil {
		for _, agg := range rc.BGP.Aggregates {
			if agg.Covers(p) && agg != p {
				suppressed = true
			}
		}
	}
	seen := make(map[string]bool)
	for _, rt := range tier {
		if bgpSession && !suppressed {
			eligible := false
			switch rt.Protocol {
			case route.EBGP:
				eligible = true
			case route.IBGP:
				eligible = nc.BGP.ASN != rc.BGP.ASN
			case route.Connected:
				for _, netp := range rc.BGP.Networks {
					if netp == p {
						eligible = true
					}
				}
			}
			if rt.Aggregate {
				eligible = true
			}
			if eligible {
				adv := rt.Clone()
				adv.Aggregate = false
				permit := true
				if name, ok := rc.BGP.ExportPolicy[nbrName]; ok {
					adv, permit = rc.RouteMaps[name].Apply(adv, rc.BGP.ASN)
				}
				if permit {
					if nc.BGP.ASN != rc.BGP.ASN {
						adv.LocalPref = 100
					}
					adv.ASPath = append([]uint32{rc.BGP.ASN}, adv.ASPath...)
					adv.Protocol = route.EBGP
					adv.NextHop = int(r)
					adv.EgressLink = int(lid)
					if !seen[adv.Key()] {
						seen[adv.Key()] = true
						out = append(out, adv)
					}
				}
			}
		}
		if ospfSession {
			eligible := rt.Protocol == route.OSPF
			if rt.Protocol == route.Connected && rc.OSPF != nil {
				for _, netp := range rc.OSPF.Networks {
					if netp == p {
						eligible = true
					}
				}
			}
			if eligible {
				adv := rt.Clone()
				adv.Protocol = route.OSPF
				adv.NextHop = int(r)
				adv.EgressLink = int(lid)
				if !seen[adv.Key()] {
					seen[adv.Key()] = true
					out = append(out, adv)
				}
			}
		}
	}
	return out
}

// importRoute applies receiver-side processing, mirroring the symbolic
// engine.
func importRoute(net *config.Network, r, from topology.RouterID, lid topology.LinkID, adv *route.Route, maxHops int) *route.Route {
	rc := net.Router(r)
	rt := adv.Clone()
	rt.NextHop = int(from)
	rt.EgressLink = int(lid)
	rt.Hops++
	if rt.Hops > maxHops {
		return nil
	}
	switch rt.Protocol {
	case route.EBGP, route.IBGP:
		if rc.BGP == nil {
			return nil
		}
		peerASN := net.Router(from).BGP.ASN
		if peerASN == rc.BGP.ASN {
			rt.Protocol = route.IBGP
		} else {
			rt.Protocol = route.EBGP
			if rt.ContainsAS(rc.BGP.ASN) {
				return nil
			}
		}
		if name, ok := rc.BGP.ImportPolicy[net.Topology.Name(from)]; ok {
			out, permit := rc.RouteMaps[name].Apply(rt, rc.BGP.ASN)
			if !permit {
				return nil
			}
			rt = out
		}
	case route.OSPF:
		if rc.OSPF == nil {
			return nil
		}
		rt.Cost += rc.Interface(lid).OSPFCost
	default:
		return nil
	}
	return rt
}

// mergeCandidate inserts or replaces the candidate matching rt's
// identity (same next hop, egress, protocol); returns true on change.
func mergeCandidate(cands map[route.Prefix][]*route.Route, rt *route.Route) bool {
	list := cands[rt.Prefix]
	for i, cur := range list {
		if cur.NextHop == rt.NextHop && cur.EgressLink == rt.EgressLink && cur.Protocol == rt.Protocol {
			if route.SameRoute(cur, rt) {
				return false
			}
			list[i] = rt
			return true
		}
	}
	cands[rt.Prefix] = append(list, rt)
	return true
}

// removeStale drops candidates at nbr learned from r over lid for prefix
// p that r no longer advertises; returns true if anything was removed.
func removeStale(net *config.Network, cands map[route.Prefix][]*route.Route, nbr, r topology.RouterID, lid topology.LinkID, p route.Prefix, tier []*route.Route) bool {
	maxHops := net.Topology.NumRouters()
	current := make(map[string]bool)
	for _, adv := range exportRoutes(net, r, nbr, lid, p, tier) {
		if imp := importRoute(net, nbr, r, lid, adv, maxHops); imp != nil {
			current[identKey(imp)] = true
		}
	}
	list := cands[p]
	kept := list[:0]
	removed := false
	for _, cur := range list {
		if cur.NextHop == int(r) && cur.EgressLink == int(lid) && !current[identKey(cur)] {
			removed = true
			continue
		}
		kept = append(kept, cur)
	}
	cands[p] = kept
	return removed
}

func identKey(rt *route.Route) string {
	return rt.Protocol.String()
}

// RIB returns the installed best tier for prefix p at router r.
func (res *Result) RIB(r topology.RouterID, p route.Prefix) []*route.Route {
	return res.ribs[r][p]
}

// Forwarding.

// ForwardResult describes what happened to a concrete packet.
type ForwardResult struct {
	Delivered bool
	Dst       topology.RouterID
	Hops      int
}

// Reachable reports whether a packet with destination addr injected at
// src is delivered at any router in dst, following every ECMP branch
// (delivered if ANY branch delivers, matching the symbolic engine's
// multipath PFEC semantics).
func (res *Result) Reachable(src topology.RouterID, addr uint32, dst map[topology.RouterID]bool) bool {
	return res.reach(src, addr, dst, nil, make(map[topology.RouterID]bool))
}

func (res *Result) reach(r topology.RouterID, addr uint32, dst map[topology.RouterID]bool, path []topology.RouterID, onPath map[topology.RouterID]bool) bool {
	if onPath[r] {
		return false // loop
	}
	onPath[r] = true
	defer delete(onPath, r)
	tier, local := res.lookup(r, addr)
	if local && dst[r] {
		return true
	}
	t := res.Net.Topology
	rc := res.Net.Router(r)
	for _, rt := range tier {
		if rt.EgressLink < 0 {
			continue
		}
		lid := topology.LinkID(rt.EgressLink)
		if !res.Sc.Up(lid) {
			continue
		}
		// Outbound ACL at r, inbound ACL at the neighbor.
		if itf, ok := rc.Interfaces[lid]; ok && itf.ACLOut != nil && !itf.ACLOut.PermitsAddr(addr) {
			continue
		}
		nbr := t.Link(lid).Other(r)
		if itf, ok := res.Net.Router(nbr).Interfaces[lid]; ok && itf.ACLIn != nil && !itf.ACLIn.PermitsAddr(addr) {
			continue
		}
		if res.reach(nbr, addr, dst, append(path, r), onPath) {
			return true
		}
	}
	return false
}

// lookup performs longest-prefix-match for addr at router r, returning
// the matching tier and whether the match is a local (connected)
// delivery.
func (res *Result) lookup(r topology.RouterID, addr uint32) ([]*route.Route, bool) {
	bestLen := -1
	var best []*route.Route
	for p, tier := range res.ribs[r] {
		if p.Contains(addr) && p.Len > bestLen && len(tier) > 0 {
			bestLen = p.Len
			best = tier
		}
	}
	if best == nil {
		return nil, false
	}
	local := false
	for _, rt := range best {
		if rt.EgressLink < 0 && !rt.Aggregate {
			local = true
		}
	}
	return best, local
}

// Package src implements Symbolic Route Computation (§4 of the paper):
// executing the network control plane with symbolic link states to
// produce, for every router, a symbolic RIB — the set of all routes that
// can materialize under some combination of link failures, each guarded
// by a topology condition (a BDD over link variables).
//
// The engine follows Algorithm 1 of the paper: each imported route
// carries a tcIn (condition under which the route is received); ranking
// a prefix's route list derives tcRib (condition under which the route is
// installed) by negating the conditions of all higher-priority routes;
// only routes whose tcRib changed are re-advertised, avoiding the
// withdraw/re-advertise cascades of Hoyan.
//
// The three optimizations of §7 are all implemented here: route pruning
// (conjoining every imported condition with the filtering BDD lf^k),
// prefix pruning (restricting the computation to a subset of prefixes,
// driven by the stratified analysis in the analysis package), and
// abstract interpretation (abstracting BGP AS paths to their length so
// that parallel routes merge).
package src

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/obs"
	"sre/internal/order"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/symbol"
	"sre/internal/topology"
)

// Options configures a symbolic route computation.
type Options struct {
	// PruneK enables route pruning (§7.1) when ≥ 0: imported topology
	// conditions are conjoined with the filtering BDD lf^PruneK and
	// routes whose condition becomes False are dropped. Negative
	// disables pruning (the full failure space is explored).
	PruneK int
	// Abstract enables abstract interpretation (§7.3): BGP AS paths are
	// abstracted to their length, letting routes that differ only in
	// their concrete path merge into one symbolic route.
	Abstract bool
	// NoECMP disables multi-path route selection; by default routes of
	// equal preference form one priority tier and are all installed.
	NoECMP bool
	// Prefixes restricts the computation to the given destination
	// prefixes (prefix pruning, §7.2). Nil means every prefix
	// originated in the network.
	Prefixes []route.Prefix
	// MaxHops bounds route propagation; zero means the number of
	// routers (no best route follows a non-simple path).
	MaxHops int
	// MaxIterations bounds the total number of router activations as a
	// divergence guard. Zero means 10000 × routers.
	MaxIterations int
	// IBGPFullMesh enables iBGP full-mesh sessions among routers that
	// share an AS and run OSPF: sessions become virtual links whose
	// conditions are the OSPF reachability conditions between the
	// peers (§4, "Supporting multiple protocols").
	IBGPFullMesh bool
	// Telemetry, when non-nil, receives src.* counters, per-activation
	// timing histograms, and progress events during Run. Nil disables
	// all instrumentation at near-zero cost.
	Telemetry *obs.Telemetry
	// Interrupt, when non-nil, is polled once per router activation
	// (and threaded into the BDD manager of spaces built on the
	// engine's behalf); a non-nil return aborts the run with that
	// error, tagged with the interrupted stage. Wire resil.Checker.Fn
	// here for cancellation and deadlines.
	Interrupt func() error
	// BDDNodeLimit caps the node table of BDD spaces created on the
	// engine's behalf (analysis.Run and the miner; engines given an
	// explicit space ignore it). Zero means the bdd package default.
	BDDNodeLimit int
	// LegacyBDDKernel selects the pre-overhaul BDD kernel paths in
	// spaces created on the engine's behalf (see bdd.Config.
	// LegacyKernel). Results are identical; only throughput differs.
	LegacyBDDKernel bool
	// DynamicReorder arms Rudell sifting in BDD spaces created on the
	// engine's behalf (see bdd.Config.Reorder): when live nodes after a
	// GC exceed bdd.DefaultReorderThreshold, the manager sifts variables
	// to smaller levels within the header/link/extra bands. Results are
	// identical — node handles survive sifting and serialized BDDs stamp
	// the writer's level map — only diagram sizes and throughput differ.
	// Unlike VarOrder it does NOT enter cache keys: reordered and static
	// runs share store entries, which decode correctly under any order.
	DynamicReorder bool
	// VarOrder selects the link-variable order of spaces created on the
	// engine's behalf: "auto" (default; the order package picks the
	// lowest-cost candidate per topology), "declaration" (the seed
	// layout, link l at level 32+l), "bfs", or "mindeg" (see
	// internal/order). Results are identical under every order — BDDs
	// are canonical per order, and all orders answer the same queries —
	// only BDD sizes and throughput differ. The order is part of the
	// meaning of serialized BDDs and cache keys, so every process of a
	// run must agree on it.
	VarOrder string
	// Parallelism is the worker count of the multi-prefix drivers built
	// on top of the engine (the partitioned runner and the spec miner),
	// which run per-prefix pipelines concurrently — each worker with
	// its own engine and BDD manager. 0 means runtime.GOMAXPROCS(0);
	// 1 selects the sequential code paths. A single engine is always
	// single-threaded and ignores the field.
	Parallelism int
}

// SymRoute is a symbolic route: a concrete route plus its topology
// conditions (§4.1). TcIn is the condition under which the route is
// imported; TcRib the condition under which it is the (an) installed
// best route.
type SymRoute struct {
	Route *route.Route
	TcIn  bdd.Node
	TcRib bdd.Node
}

// RIB is the symbolic RIB of one router: for each prefix, the list of
// symbolic routes sorted by decreasing preference.
type RIB struct {
	prefixes map[route.Prefix][]*SymRoute
}

// Routes returns the symbolic routes for prefix p, best first. The list
// may contain entries whose TcRib is False: routes that are imported
// under some failure scenarios but dominated in all of them.
func (r *RIB) Routes(p route.Prefix) []*SymRoute { return r.prefixes[p] }

// LiveRoutes returns the symbolic routes for prefix p that are installed
// under at least one failure scenario (TcRib ≠ False), best first.
func (r *RIB) LiveRoutes(p route.Prefix) []*SymRoute {
	var out []*SymRoute
	for _, sr := range r.prefixes[p] {
		if sr.TcRib != bdd.False {
			out = append(out, sr)
		}
	}
	return out
}

// Prefixes returns every prefix with at least one route.
func (r *RIB) Prefixes() []route.Prefix {
	out := make([]route.Prefix, 0, len(r.prefixes))
	for p := range r.prefixes {
		out = append(out, p)
	}
	return out
}

// NumRoutes returns the number of symbolic routes in the RIB.
func (r *RIB) NumRoutes() int {
	n := 0
	for _, l := range r.prefixes {
		n += len(l)
	}
	return n
}

// Stats counts work done by the engine; Table 2 of the paper reports
// route counts under different optimizations.
type Stats struct {
	RoutesImported int // advertisements processed (the paper's "No. Routes")
	RoutesPruned   int // imports dropped by route pruning
	RIBRoutes      int // symbolic routes resident in all RIBs at fixpoint
	Activations    int // router activations until fixpoint
	PeakBDDNodes   int
}

// Engine performs symbolic route computation over a configured network.
type Engine struct {
	Net  *config.Network
	Sp   *symbol.Space
	Opts Options

	ribs   []*RIB
	inbox  [][]message
	queued []bool
	queue  []topology.RouterID

	filter    bdd.Node // lf^k, or True when pruning is off
	adv       map[advKey]map[string]advEntry
	prefixSet map[route.Prefix]bool // nil when unrestricted
	stats     Stats

	// iBGP full-mesh state (see ibgp.go).
	meshMembers  map[topology.RouterID]bool
	loopbackOSPF map[topology.RouterID]route.Prefix
	vsessions    map[topology.RouterID][]virtualSession

	// Telemetry handles (nil-safe no-ops when Opts.Telemetry is nil).
	tel           *obs.Telemetry
	telActs       *obs.Counter
	telImported   *obs.Counter
	telPruned     *obs.Counter
	telActivation *obs.Histogram
}

type message struct {
	from topology.RouterID
	link topology.LinkID
	rt   *route.Route // as transformed by the sender's export processing
	tc   bdd.Node     // already conjoined with the link variable
}

type advKey struct {
	link   topology.LinkID // -1 for virtual iBGP sessions
	from   topology.RouterID
	to     topology.RouterID
	prefix route.Prefix
}

type advEntry struct {
	rt *route.Route
	tc bdd.Node
}

// New creates an engine over net, allocating a fresh symbolic space.
func New(net *config.Network, opts Options) *Engine {
	sp := symbol.NewSpace(net.Topology.NumLinks(),
		bdd.Config{Reorder: BDDReorder(opts)}, 0, LinkOrder(net, opts).Perm)
	return NewWithSpace(net, sp, opts)
}

// BDDReorder resolves the bdd.Config.Reorder field for spaces created
// on the engine's behalf: the default sifting parameters when
// opts.DynamicReorder is set, disabled otherwise.
func BDDReorder(opts Options) bdd.ReorderConfig {
	if !opts.DynamicReorder {
		return bdd.ReorderConfig{}
	}
	return bdd.ReorderConfig{Threshold: bdd.DefaultReorderThreshold}
}

// LinkOrder resolves the link-variable order opts requests for net's
// topology (see Options.VarOrder). An unknown order name panics — the
// facade validates user input before it gets here, so a bad name is a
// caller bug the public entry points' panic firewall will surface.
func LinkOrder(net *config.Network, opts Options) order.Order {
	m, err := order.Normalize(opts.VarOrder)
	if err != nil {
		panic(err)
	}
	return order.Compute(net.Topology, m)
}

// NewWithSpace creates an engine sharing an existing symbolic space
// (analysis pipelines reuse one space across SRC, SPF, and analysis so
// all BDDs are compatible).
func NewWithSpace(net *config.Network, sp *symbol.Space, opts Options) *Engine {
	if opts.MaxHops == 0 {
		opts.MaxHops = net.Topology.NumRouters()
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 10000 * (net.Topology.NumRouters() + 1)
	}
	e := &Engine{
		Net:  net,
		Sp:   sp,
		Opts: opts,
		adv:  make(map[advKey]map[string]advEntry),
	}
	n := net.Topology.NumRouters()
	e.ribs = make([]*RIB, n)
	for i := range e.ribs {
		e.ribs[i] = &RIB{prefixes: make(map[route.Prefix][]*SymRoute)}
	}
	e.inbox = make([][]message, n)
	e.queued = make([]bool, n)
	if opts.Prefixes != nil {
		e.prefixSet = make(map[route.Prefix]bool, len(opts.Prefixes))
		for _, p := range opts.Prefixes {
			e.prefixSet[p] = true
		}
	}
	e.tel = opts.Telemetry
	e.telActs = e.tel.Counter("src.activations")
	e.telImported = e.tel.Counter("src.routes_imported")
	e.telPruned = e.tel.Counter("src.routes_pruned")
	e.telActivation = e.tel.Histogram("src.activation_ns")
	return e
}

// RIB returns the symbolic RIB computed for router r (valid after Run).
func (e *Engine) RIB(r topology.RouterID) *RIB { return e.ribs[r] }

// TotalLiveRoutes returns the number of symbolic routes across all RIBs
// that are installed under at least one failure scenario.
func (e *Engine) TotalLiveRoutes() int {
	n := 0
	for _, rib := range e.ribs {
		for p := range rib.prefixes {
			n += len(rib.LiveRoutes(p))
		}
	}
	return n
}

// Statistics returns work counters (valid after Run).
func (e *Engine) Statistics() Stats {
	s := e.stats
	s.RIBRoutes = 0
	for _, rib := range e.ribs {
		s.RIBRoutes += rib.NumRoutes()
	}
	s.PeakBDDNodes = e.Sp.M.Statistics().PeakNodes
	return s
}

// wantPrefix reports whether prefix p participates in this computation.
func (e *Engine) wantPrefix(p route.Prefix) bool {
	return e.prefixSet == nil || e.prefixSet[p]
}

// Run executes the control plane to its fixed point, filling the
// symbolic RIBs. It returns bdd.ErrNodeLimit if the BDD table overflows
// (the paper's "BDD limit" outcome) or an error if the computation does
// not converge within the iteration bound.
func (e *Engine) Run() error {
	m := e.Sp.M
	var runT0 time.Time
	var runSt0 bdd.Stats
	recording := e.tel.Recording()
	if recording {
		runT0 = time.Now()
		runSt0 = e.Sp.M.Statistics()
	}
	if e.Opts.PruneK >= 0 {
		e.filter = m.Ref(e.Sp.AtMostKLinkFailures(e.Opts.PruneK))
	} else {
		e.filter = bdd.True
	}
	err := e.protect(func() {
		if e.Opts.IBGPFullMesh {
			if serr := e.setupVirtualSessions(); serr != nil {
				panic(bddPanicWrap{serr})
			}
		}
		e.originate()
		for len(e.queue) > 0 {
			r := e.queue[0]
			e.queue = e.queue[1:]
			e.queued[r] = false
			e.stats.Activations++
			e.telActs.Inc()
			if e.stats.Activations > e.Opts.MaxIterations {
				panic(convergencePanic{routers: e.oscillatingRouters(r)})
			}
			if e.Opts.Interrupt != nil {
				if ierr := e.Opts.Interrupt(); ierr != nil {
					panic(bddPanicWrap{ierr})
				}
			}
			var t0 time.Time
			if e.tel != nil {
				t0 = time.Now()
			}
			e.updateRIB(r)
			if e.tel != nil {
				e.telActivation.Observe(time.Since(t0).Nanoseconds())
				if e.stats.Activations%128 == 0 && e.tel.Active() {
					e.emitProgress(false)
				}
			}
			m.MaybeGC(0)
		}
	})
	if e.tel.Active() {
		e.emitProgress(true)
	}
	if recording {
		st1 := e.Sp.M.Statistics()
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		e.tel.Record(runT0, obs.TraceEvent{Stage: "src.run",
			Wall:  time.Since(runT0).Nanoseconds(),
			Count: int64(e.stats.Activations),
			Nodes: int64(st1.LiveNodes) - int64(runSt0.LiveNodes),
			Cache: int64(st1.CacheHits+st1.CacheMiss) - int64(runSt0.CacheHits+runSt0.CacheMiss),
			Outcome: outcome})
	}
	return err
}

// emitProgress publishes a src progress event. Callers guard with
// tel.Active() so the detail string is only built when someone listens.
func (e *Engine) emitProgress(final bool) {
	st := e.Sp.M.Statistics()
	e.Sp.M.SampleTelemetry()
	e.tel.Emit(obs.Event{
		Stage: "src",
		Done:  int64(e.stats.Activations),
		Unit:  "activations",
		Detail: fmt.Sprintf("%s routes, bdd %s nodes (peak %s), cache hit %s",
			obs.HumanCount(int64(e.stats.RoutesImported)),
			obs.HumanCount(int64(st.LiveNodes)), obs.HumanCount(int64(st.PeakNodes)),
			obs.HumanPct(float64(st.CacheHits), float64(st.CacheHits+st.CacheMiss))),
		Final: final,
	})
}

// convergencePanic unwinds a run whose activation count exceeded the
// iteration bound; routers names the oscillating routers for the error.
type convergencePanic struct{ routers []string }

// oscillatingRouters names the routers still being activated when the
// iteration bound fired: the router just popped plus the queued ones,
// capped to keep the error message readable.
func (e *Engine) oscillatingRouters(r topology.RouterID) []string {
	const max = 8
	names := []string{e.Net.Topology.Name(r)}
	for _, q := range e.queue {
		if len(names) >= max {
			names = append(names, fmt.Sprintf("... %d more", len(e.queue)-max+1))
			break
		}
		names = append(names, e.Net.Topology.Name(q))
	}
	return names
}

// bddPanicWrap carries a setup error across the protected region.
type bddPanicWrap struct{ err error }

// Error implements error.
func (p bddPanicWrap) Error() string { return p.err.Error() }

// Unwrap exposes the wrapped error for errors.Is.
func (p bddPanicWrap) Unwrap() error { return p.err }

// protect runs f, converting BDD node-limit panics and convergence
// panics into errors.
func (e *Engine) protect(f func()) (err error) {
	defer func() {
		r := recover()
		switch r := r.(type) {
		case nil:
		case convergencePanic:
			err = &resil.StageError{Stage: "src", Routers: r.routers,
				Err: fmt.Errorf("%w after %d activations", resil.ErrNoConvergence, e.Opts.MaxIterations)}
		default:
			if be, ok := bddErr(r); ok {
				err = resil.Stage("src", be)
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// bddErr extracts an engine-level error from a recovered panic value:
// BDD node-limit overflows, cancellation/deadline interruptions, and
// wrapped setup errors. Runtime panics are NOT converted — they
// indicate bugs and must crash loudly (the public API's panic firewall
// is the only layer that converts those).
func bddErr(r interface{}) (error, bool) {
	if e, ok := r.(error); ok {
		if errors.Is(e, bdd.ErrNodeLimit) || resil.Interruption(e) {
			return e, true
		}
		if w, ok := r.(bddPanicWrap); ok {
			return w.err, true
		}
	}
	return nil, false
}

// originate seeds the RIBs with locally declared routes (§4.2
// "Importing Routes": initially each router imports all routes declared
// in the configurations, with tc = True).
func (e *Engine) originate() {
	t := e.Net.Topology
	for i := 0; i < t.NumRouters(); i++ {
		id := topology.RouterID(i)
		rc := e.Net.Router(id)
		for _, p := range rc.Originated() {
			if !e.wantPrefix(p) {
				continue
			}
			r := route.NewLocal(p, route.Connected, int(id))
			e.insertLocal(id, r, bdd.True)
		}
		if pfx, ok := e.loopbackOSPF[id]; ok {
			// Loopbacks back the iBGP mesh; they bypass any prefix
			// restriction (sessions must exist regardless).
			e.insertLocal(id, route.NewLocal(pfx, route.Connected, int(id)), bdd.True)
		}
		for _, s := range rc.Static {
			if !e.wantPrefix(s.Prefix) {
				continue
			}
			nbr := t.MustRouter(s.NextHop)
			lid, ok := t.LinkBetween(id, nbr)
			if !ok {
				continue // validated earlier; defensive
			}
			r := route.NewLocal(s.Prefix, route.Static, int(id))
			r.NextHop = int(nbr)
			r.EgressLink = int(lid)
			tc := e.Sp.M.And(e.Sp.LinkVar(lid), e.filter)
			if tc != bdd.False {
				e.insertLocal(id, r, tc)
			}
		}
		e.markChanged(id)
	}
}

// insertLocal installs an originated route with the given condition.
func (e *Engine) insertLocal(r topology.RouterID, rt *route.Route, tc bdd.Node) {
	m := e.Sp.M
	sr := &SymRoute{Route: rt, TcIn: m.Ref(tc), TcRib: bdd.False}
	list := e.ribs[r].prefixes[rt.Prefix]
	list = insertSorted(list, sr)
	e.ribs[r].prefixes[rt.Prefix] = list
	e.recomputeTcRib(r, rt.Prefix)
}

// markChanged schedules router r for export of all its prefixes by
// queueing a self-activation with no messages: updateRIB exports every
// prefix whose advertisement state is out of date.
func (e *Engine) markChanged(r topology.RouterID) {
	for p := range e.ribs[r].prefixes {
		e.exportPrefix(r, p)
	}
}

// enqueue schedules router r for processing.
func (e *Engine) enqueue(r topology.RouterID) {
	if !e.queued[r] {
		e.queued[r] = true
		e.queue = append(e.queue, r)
	}
}

// updateRIB implements Algorithm 1: merge pending imported routes into
// the per-prefix lists, re-derive tcRib values, and re-advertise routes
// whose tcRib changed.
func (e *Engine) updateRIB(r topology.RouterID) {
	msgs := e.inbox[r]
	e.inbox[r] = nil
	if len(msgs) == 0 {
		return
	}
	m := e.Sp.M
	changed := make(map[route.Prefix]bool)
	for _, msg := range msgs {
		e.stats.RoutesImported++
		e.telImported.Inc()
		rt, tc := e.importTransform(r, msg)
		if rt == nil {
			m.Deref(msg.tc)
			continue
		}
		list := e.ribs[r].prefixes[rt.Prefix]
		idx := -1
		for i, sr := range list {
			if route.SameRoute(sr.Route, rt) {
				idx = i
				break
			}
		}
		if idx >= 0 {
			list[idx].Route = rt // refresh non-identity fields (path bloom)
			old := list[idx].TcIn
			if old != tc {
				list[idx].TcIn = m.Ref(tc)
				m.Deref(old)
				changed[rt.Prefix] = true
			}
		} else if tc != bdd.False {
			sr := &SymRoute{Route: rt, TcIn: m.Ref(tc), TcRib: bdd.False}
			e.ribs[r].prefixes[rt.Prefix] = insertSorted(list, sr)
			changed[rt.Prefix] = true
		}
		m.Deref(msg.tc)
	}
	// Re-rank changed prefixes first; aggregates are derived from the
	// freshly installed conditions of their contributors.
	ribChanged := make(map[route.Prefix]bool)
	for p := range changed {
		if e.recomputeTcRib(r, p) {
			ribChanged[p] = true
		}
	}
	rc := e.Net.Router(r)
	if rc.BGP != nil && len(rc.BGP.Aggregates) > 0 {
		for _, agg := range rc.BGP.Aggregates {
			if !e.wantPrefix(agg) {
				continue
			}
			trigger := false
			for p := range ribChanged {
				if agg.Covers(p) && agg != p {
					trigger = true
					break
				}
			}
			if trigger && e.updateAggregate(r, agg) && e.recomputeTcRib(r, agg) {
				ribChanged[agg] = true
			}
		}
	}
	for p := range ribChanged {
		e.exportPrefix(r, p)
	}
}

// importTransform applies receiver-side processing to an advertisement:
// protocol classification, loop checks, import policy, cost
// accumulation, hop bounding, and route pruning. It returns nil when
// the route is rejected.
func (e *Engine) importTransform(r topology.RouterID, msg message) (*route.Route, bdd.Node) {
	rc := e.Net.Router(r)
	rt := msg.rt.Clone()
	rt.NextHop = int(msg.from)
	rt.EgressLink = int(msg.link)
	rt.Hops++
	if rt.Hops > e.Opts.MaxHops {
		return nil, bdd.False
	}
	fromName := e.Net.Topology.Name(msg.from)
	switch rt.Protocol {
	case route.EBGP, route.IBGP:
		if rc.BGP == nil {
			return nil, bdd.False
		}
		peerASN := e.Net.Router(msg.from).BGP.ASN
		if peerASN == rc.BGP.ASN {
			rt.Protocol = route.IBGP
		} else {
			rt.Protocol = route.EBGP
			if rt.ContainsAS(rc.BGP.ASN) {
				return nil, bdd.False // AS-path loop
			}
			if rt.BloomMayContainAS(rc.BGP.ASN) {
				// Abstracted routes carry a bloom over the merged
				// paths' ASes; rejecting on a (possible) hit keeps the
				// loop check — and hence convergence — sound under
				// abstraction.
				return nil, bdd.False
			}
		}
		if e.Opts.Abstract {
			// Abstract interpretation: keep only the path length so
			// routes differing in concrete AS path merge (§7.3).
			rt.PathLen = rt.ASPathLen()
			rt.ASPath = nil
		}
		if name, ok := rc.BGP.ImportPolicy[fromName]; ok {
			out, permit := rc.RouteMaps[name].Apply(rt, rc.BGP.ASN)
			if !permit {
				return nil, bdd.False
			}
			rt = out
		}
	case route.OSPF:
		if rc.OSPF == nil {
			return nil, bdd.False
		}
		rt.Cost += rc.Interface(msg.link).OSPFCost
	default:
		return nil, bdd.False
	}
	tc := e.Sp.M.And(msg.tc, e.filter)
	if tc == bdd.False && msg.tc != bdd.False {
		e.stats.RoutesPruned++
		e.telPruned.Inc()
	}
	return rt, tc
}

// recomputeTcRib re-derives the tcRib of every route of prefix p at
// router r following equation (1): a route is installed when it is
// imported and no strictly higher-priority route is installed. Routes in
// the same priority tier (ECMP candidates) do not mask each other unless
// NoECMP is set. It reports whether any tcRib changed, and drops list
// entries that can never be imported (tcIn = False).
func (e *Engine) recomputeTcRib(r topology.RouterID, p route.Prefix) bool {
	m := e.Sp.M
	list := e.ribs[r].prefixes[p]
	if len(list) == 0 {
		return false
	}
	anyChanged := false
	matched := bdd.False
	i := 0
	for i < len(list) {
		j := i + 1
		if !e.Opts.NoECMP {
			for j < len(list) && route.Compare(list[i].Route, list[j].Route) == 0 {
				j++
			}
		}
		notMatched := m.Not(matched)
		tierIn := bdd.False
		for k := i; k < j; k++ {
			sr := list[k]
			tcRib := m.And(sr.TcIn, notMatched)
			if tcRib != sr.TcRib {
				m.Ref(tcRib)
				if sr.TcRib != bdd.False {
					m.Deref(sr.TcRib)
				}
				sr.TcRib = tcRib
				anyChanged = true
			}
			tierIn = m.Or(tierIn, sr.TcIn)
		}
		matched = m.Or(matched, tierIn)
		i = j
	}
	// Drop entries that are withdrawn and uninstallable.
	kept := list[:0]
	for _, sr := range list {
		if sr.TcIn == bdd.False && sr.TcRib == bdd.False {
			continue
		}
		kept = append(kept, sr)
	}
	e.ribs[r].prefixes[p] = kept
	return anyChanged
}

// updateAggregate recomputes the BGP aggregate route for prefix agg at
// router r: its condition is the disjunction of the installed conditions
// of all more-specific contributing routes (§4 "Supporting route
// aggregation"). It reports whether the aggregate's condition changed.
func (e *Engine) updateAggregate(r topology.RouterID, agg route.Prefix) bool {
	m := e.Sp.M
	tc := bdd.False
	for p, list := range e.ribs[r].prefixes {
		if !agg.Covers(p) || p == agg {
			continue
		}
		for _, sr := range list {
			if sr.Route.Aggregate {
				continue
			}
			switch sr.Route.Protocol {
			case route.EBGP, route.IBGP, route.Connected:
				tc = m.Or(tc, sr.TcRib)
			}
		}
	}
	list := e.ribs[r].prefixes[agg]
	for _, sr := range list {
		if sr.Route.Aggregate {
			if sr.TcIn == tc {
				return false
			}
			m.Deref(sr.TcIn)
			sr.TcIn = m.Ref(tc)
			return true
		}
	}
	if tc == bdd.False {
		return false
	}
	rt := route.NewLocal(agg, route.EBGP, int(r))
	rt.Aggregate = true
	sr := &SymRoute{Route: rt, TcIn: m.Ref(tc), TcRib: bdd.False}
	e.ribs[r].prefixes[agg] = insertSorted(list, sr)
	return true
}

// insertSorted inserts sr into list keeping (Compare, Tiebreak) order.
// The insertion point is found by binary search — routers accumulate
// hundreds of symbolic routes per prefix on dense fabrics, and the
// linear scan made RIB maintenance quadratic in that count. Equal
// routes keep their insertion order (the predicate is strict), matching
// the previous linear scan exactly.
func insertSorted(list []*SymRoute, sr *SymRoute) []*SymRoute {
	pos := sort.Search(len(list), func(i int) bool {
		c := route.Compare(sr.Route, list[i].Route)
		return c < 0 || (c == 0 && route.Tiebreak(sr.Route, list[i].Route) < 0)
	})
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = sr
	return list
}

// exportPrefix recomputes the advertisements of prefix p from router r
// to every eligible neighbor and enqueues the differences (updates and
// withdrawals) into the neighbors' inboxes.
func (e *Engine) exportPrefix(r topology.RouterID, p route.Prefix) {
	t := e.Net.Topology
	rc := e.Net.Router(r)
	for _, lid := range t.Router(r).Links {
		if itf, ok := rc.Interfaces[lid]; ok && itf.Passive {
			continue
		}
		nbr := t.Link(lid).Other(r)
		nc := e.Net.Router(nbr)
		if itf, ok := nc.Interfaces[lid]; ok && itf.Passive {
			continue
		}
		e.exportTo(r, nbr, lid, p)
	}
	if rc.BGP != nil && len(e.vsessions[r]) > 0 {
		e.exportVirtual(r, p)
	}
}

// exportTo diffs the advertisement set of prefix p over link lid against
// the previously sent state and enqueues changed routes.
func (e *Engine) exportTo(r, nbr topology.RouterID, lid topology.LinkID, p route.Prefix) {
	m := e.Sp.M
	key := advKey{link: lid, from: r, to: nbr, prefix: p}
	fresh := e.computeExports(r, nbr, lid, p)
	prev := e.adv[key]
	if prev == nil && len(fresh) == 0 {
		return
	}
	changed := false
	for k, entry := range fresh {
		if old, ok := prev[k]; ok && old.tc == entry.tc {
			continue
		}
		e.send(nbr, r, lid, entry.rt, entry.tc)
		changed = true
	}
	for k, old := range prev {
		if _, ok := fresh[k]; !ok {
			// Withdrawal: re-advertise with condition False.
			e.send(nbr, r, lid, old.rt, bdd.False)
			changed = true
		}
	}
	if changed || prev == nil {
		for _, old := range prev {
			m.Deref(old.tc)
		}
		for _, entry := range fresh {
			m.Ref(entry.tc)
		}
		e.adv[key] = fresh
		if changed {
			e.enqueue(nbr)
		}
	}
}

// computeExports builds the advertisement set for prefix p from r to
// nbr: every installed route eligible for the session, transformed by
// export processing, grouped by logical identity with conditions OR-ed,
// and conjoined with the link variable.
func (e *Engine) computeExports(r, nbr topology.RouterID, lid topology.LinkID, p route.Prefix) map[string]advEntry {
	m := e.Sp.M
	rc, nc := e.Net.Router(r), e.Net.Router(nbr)
	out := make(map[string]advEntry)
	linkUp := e.Sp.LinkVar(lid)

	bgpSession := rc.BGP != nil && nc.BGP != nil
	ospfSession := rc.OSPF != nil && nc.OSPF != nil
	nbrName := e.Net.Topology.Name(nbr)

	// BGP aggregates suppress their contributing more-specifics.
	suppressed := false
	if rc.BGP != nil {
		for _, agg := range rc.BGP.Aggregates {
			if agg.Covers(p) && agg != p {
				suppressed = true
				break
			}
		}
	}

	add := func(rt *route.Route, tc bdd.Node) {
		tc = m.And(tc, linkUp)
		if tc == bdd.False {
			return
		}
		k := rt.Key()
		if cur, ok := out[k]; ok {
			cur.rt.BloomUnion(rt) // merged abstracted routes union their path blooms
			out[k] = advEntry{rt: cur.rt, tc: m.Or(cur.tc, tc)}
		} else {
			out[k] = advEntry{rt: rt, tc: tc}
		}
	}

	for _, sr := range e.ribs[r].prefixes[p] {
		if sr.TcRib == bdd.False {
			continue
		}
		rt := sr.Route
		// BGP eligibility and transformation. With an iBGP full mesh,
		// same-AS advertisement happens over virtual sessions only.
		if bgpSession && e.meshMembers != nil && e.meshMembers[r] && e.meshMembers[nbr] &&
			rc.BGP.ASN == nc.BGP.ASN {
			bgpSession = false
		}
		if bgpSession && !suppressed {
			eligible := false
			switch rt.Protocol {
			case route.EBGP:
				eligible = true
			case route.IBGP:
				// Standard iBGP: routes learned over iBGP are not
				// re-advertised to iBGP peers (no route reflection).
				eligible = nc.BGP.ASN != rc.BGP.ASN
			case route.Connected:
				for _, net := range bgpNetworks(rc) {
					if net == p {
						eligible = true
						break
					}
				}
			}
			if rt.Aggregate {
				eligible = true
			}
			if eligible {
				adv := rt.Clone()
				adv.Aggregate = false
				adv.Hops = rt.Hops
				if name, ok := rc.BGP.ExportPolicy[nbrName]; ok {
					if transformed, permit := rc.RouteMaps[name].Apply(adv, rc.BGP.ASN); permit {
						adv = transformed
					} else {
						adv = nil
					}
				}
				if adv != nil {
					if nc.BGP.ASN != rc.BGP.ASN {
						adv.LocalPref = 100 // local-pref is not transitive over eBGP
					}
					adv.ASPath = append([]uint32{rc.BGP.ASN}, adv.ASPath...)
					if adv.PathLen >= 0 {
						adv.PathLen++
						adv.ASPath = nil
						adv.BloomAddAS(rc.BGP.ASN)
					}
					adv.Protocol = route.EBGP // classified precisely at import
					adv.NextHop = int(r)
					adv.EgressLink = int(lid)
					add(adv, sr.TcRib)
				}
			}
		}
		// OSPF eligibility and transformation.
		if ospfSession {
			eligible := rt.Protocol == route.OSPF
			if rt.Protocol == route.Connected {
				for _, net := range ospfNetworks(rc) {
					if net == p {
						eligible = true
						break
					}
				}
				if pfx, ok := e.loopbackOSPF[r]; ok && pfx == p {
					eligible = true // loopbacks back the iBGP mesh
				}
			}
			if eligible {
				adv := rt.Clone()
				adv.Protocol = route.OSPF
				adv.NextHop = int(r)
				adv.EgressLink = int(lid)
				add(adv, sr.TcRib)
			}
		}
	}
	return out
}

func bgpNetworks(rc *config.Router) []route.Prefix {
	if rc.BGP == nil {
		return nil
	}
	return rc.BGP.Networks
}

func ospfNetworks(rc *config.Router) []route.Prefix {
	if rc.OSPF == nil {
		return nil
	}
	return rc.OSPF.Networks
}

// send enqueues an advertisement into nbr's inbox.
func (e *Engine) send(nbr, from topology.RouterID, lid topology.LinkID, rt *route.Route, tc bdd.Node) {
	e.Sp.M.Ref(tc)
	e.inbox[nbr] = append(e.inbox[nbr], message{from: from, link: lid, rt: rt, tc: tc})
	e.enqueue(nbr)
}

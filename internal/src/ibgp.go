package src

import (
	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/topology"
)

// iBGP support (§4, "Supporting multiple protocols"): when several
// routers share an AS, they peer over iBGP sessions that ride on the
// IGP. SRE models each session as a VIRTUAL LINK whose topology
// condition is the OSPF reachability condition between the two peers:
// the session is up exactly when the underlay delivers between them.
//
// The engine implements this in two phases, as the paper describes:
// first it computes symbolic OSPF routes for per-router loopbacks on an
// underlay-only copy of the network (sharing the same BDD space), and
// derives each session's condition as the disjunction of the installed
// loopback routes' conditions; then the main computation runs with the
// virtual sessions in place. Forwarding of iBGP-learned routes resolves
// recursively through the loopback routes (see the spf package).

// loopbackPrefix returns the /32 loopback assigned to router r
// (172.16.0.0/12 space, disjoint from the workload prefixes).
func loopbackPrefix(r topology.RouterID) route.Prefix {
	return route.Prefix{Addr: 172<<24 | 16<<20 | uint32(r), Len: 32}
}

// LoopbackPrefix exposes the engine's loopback numbering (the spf
// package resolves iBGP next hops through these prefixes).
func LoopbackPrefix(r topology.RouterID) route.Prefix { return loopbackPrefix(r) }

// virtualSession is an iBGP session between non-adjacent (or adjacent)
// same-AS routers, guarded by the underlay reachability condition.
type virtualSession struct {
	peer topology.RouterID
	cond bdd.Node
}

// setupVirtualSessions computes the underlay conditions and registers
// the iBGP full-mesh sessions. Must run before originate.
func (e *Engine) setupVirtualSessions() error {
	t := e.Net.Topology
	// Group BGP+OSPF routers by AS.
	byAS := make(map[uint32][]topology.RouterID)
	for i := 0; i < t.NumRouters(); i++ {
		rc := e.Net.Router(topology.RouterID(i))
		if rc.BGP != nil && rc.OSPF != nil {
			byAS[rc.BGP.ASN] = append(byAS[rc.BGP.ASN], topology.RouterID(i))
		}
	}
	meshed := make(map[topology.RouterID]bool)
	needUnderlay := false
	for _, members := range byAS {
		if len(members) > 1 {
			needUnderlay = true
			for _, r := range members {
				meshed[r] = true
			}
		}
	}
	if !needUnderlay {
		return nil
	}
	e.meshMembers = meshed
	// Loopbacks originate into OSPF on the main engine too (needed for
	// next-hop resolution in the data plane).
	e.loopbackOSPF = make(map[topology.RouterID]route.Prefix, len(meshed))
	for r := range meshed {
		e.loopbackOSPF[r] = loopbackPrefix(r)
	}
	// Phase 1: underlay-only network (OSPF configs plus loopbacks).
	underlay := config.NewNetwork(t)
	for i := 0; i < t.NumRouters(); i++ {
		id := topology.RouterID(i)
		rc := e.Net.Router(id)
		if rc.OSPF == nil {
			continue
		}
		uc := underlay.Router(id)
		uc.OSPF = rc.OSPF.Clone()
		for lid, itf := range rc.Interfaces {
			cp := itf.Clone()
			cp.ACLIn, cp.ACLOut = nil, nil // session reachability ignores data ACLs
			uc.Interfaces[lid] = cp
		}
		if pfx, ok := e.loopbackOSPF[id]; ok {
			uc.OSPF.Networks = append(uc.OSPF.Networks, pfx)
		}
	}
	sub := NewWithSpace(underlay, e.Sp, Options{
		PruneK:  e.Opts.PruneK,
		NoECMP:  e.Opts.NoECMP,
		MaxHops: e.Opts.MaxHops,
	})
	if err := sub.Run(); err != nil {
		return err
	}
	// Conditions: virt(R→N) = ∨ tcRib of R's routes for N's loopback.
	// For a converged ACL-free OSPF underlay, having an installed route
	// is equivalent to end-to-end delivery along it.
	m := e.Sp.M
	e.vsessions = make(map[topology.RouterID][]virtualSession)
	for _, members := range byAS {
		if len(members) < 2 {
			continue
		}
		for _, r := range members {
			for _, n := range members {
				if r == n {
					continue
				}
				cond := bdd.False
				for _, sr := range sub.RIB(r).Routes(loopbackPrefix(n)) {
					cond = m.Or(cond, sr.TcRib)
				}
				if cond == bdd.False {
					continue
				}
				e.vsessions[r] = append(e.vsessions[r], virtualSession{peer: n, cond: m.Ref(cond)})
			}
		}
	}
	return nil
}

// exportVirtual diffs and sends prefix p's advertisement over every
// virtual session of r.
func (e *Engine) exportVirtual(r topology.RouterID, p route.Prefix) {
	for _, vs := range e.vsessions[r] {
		e.exportToVirtual(r, vs, p)
	}
}

// exportToVirtual mirrors exportTo for a virtual session: the session
// condition replaces the link variable, and advertised routes carry no
// egress link (the receiver resolves the next hop through the IGP).
func (e *Engine) exportToVirtual(r topology.RouterID, vs virtualSession, p route.Prefix) {
	m := e.Sp.M
	key := advKey{link: -1, from: r, to: vs.peer, prefix: p}
	fresh := e.computeVirtualExports(r, vs, p)
	prev := e.adv[key]
	if prev == nil && len(fresh) == 0 {
		return
	}
	changed := false
	for k, entry := range fresh {
		if old, ok := prev[k]; ok && old.tc == entry.tc {
			continue
		}
		e.send(vs.peer, r, -1, entry.rt, entry.tc)
		changed = true
	}
	for k, old := range prev {
		if _, ok := fresh[k]; !ok {
			e.send(vs.peer, r, -1, old.rt, bdd.False)
			changed = true
		}
	}
	if changed || prev == nil {
		for _, old := range prev {
			m.Deref(old.tc)
		}
		for _, entry := range fresh {
			m.Ref(entry.tc)
		}
		e.adv[key] = fresh
	}
}

// computeVirtualExports builds the iBGP advertisement set of prefix p
// from r over a virtual session: eBGP-learned and locally originated
// BGP routes only (iBGP routes are not reflected), conditions conjoined
// with the session condition.
func (e *Engine) computeVirtualExports(r topology.RouterID, vs virtualSession, p route.Prefix) map[string]advEntry {
	m := e.Sp.M
	rc := e.Net.Router(r)
	out := make(map[string]advEntry)
	suppressed := false
	for _, agg := range rc.BGP.Aggregates {
		if agg.Covers(p) && agg != p {
			suppressed = true
		}
	}
	if suppressed {
		return out
	}
	for _, sr := range e.ribs[r].prefixes[p] {
		if sr.TcRib == bdd.False {
			continue
		}
		rt := sr.Route
		eligible := false
		switch rt.Protocol {
		case route.EBGP:
			eligible = true
		case route.Connected:
			for _, net := range bgpNetworks(rc) {
				if net == p {
					eligible = true
				}
			}
		}
		if rt.Aggregate {
			eligible = true
		}
		if !eligible {
			continue
		}
		adv := rt.Clone()
		adv.Aggregate = false
		// iBGP preserves local-pref and does not prepend the AS.
		adv.Protocol = route.IBGP
		adv.NextHop = int(r)
		adv.EgressLink = -1
		tc := m.And(sr.TcRib, vs.cond)
		if tc == bdd.False {
			continue
		}
		k := adv.Key()
		if cur, ok := out[k]; ok {
			cur.rt.BloomUnion(adv)
			out[k] = advEntry{rt: cur.rt, tc: m.Or(cur.tc, tc)}
		} else {
			out[k] = advEntry{rt: adv, tc: tc}
		}
	}
	return out
}

package src

import (
	"errors"
	"testing"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/symbol"
	"sre/internal/topology"
)

// figure1 builds the paper's walkthrough network (Figure 1(a)): routers
// A, B, C running BGP; C originates 128.0.0.0/1 and 192.0.0.0/2 and is
// configured with an outbound route-map denying 192/2 towards A and an
// inbound ACL dropping 192/2 packets arriving from A.
const figure1 = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end

router A
  bgp 65001
end

router B
  bgp 65002
end

router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func mustNet(t *testing.T, text string) *config.Network {
	t.Helper()
	n, err := config.ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func runEngine(t *testing.T, net *config.Network, opts Options) *Engine {
	t.Helper()
	e := New(net, opts)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

// linkVars returns the BDDs of links AB, BC, AC of the figure1 network.
func linkVars(e *Engine) (lAB, lBC, lAC bdd.Node) {
	topo := e.Net.Topology
	a, b, c := topo.MustRouter("A"), topo.MustRouter("B"), topo.MustRouter("C")
	ab, _ := topo.LinkBetween(a, b)
	bc, _ := topo.LinkBetween(b, c)
	ac, _ := topo.LinkBetween(a, c)
	return e.Sp.LinkVar(ab), e.Sp.LinkVar(bc), e.Sp.LinkVar(ac)
}

func TestFigure1SymbolicRIB(t *testing.T) {
	net := mustNet(t, figure1)
	e := runEngine(t, net, Options{PruneK: -1})
	m := e.Sp.M
	lAB, lBC, lAC := linkVars(e)
	a := net.Topology.MustRouter("A")
	p128 := route.MustParsePrefix("128.0.0.0/1")
	p192 := route.MustParsePrefix("192.0.0.0/2")

	// Paper Figure 1(b): A's symbolic RIB.
	// 128/1 via C has tc = lAC; 128/1 via B has tc = ¬lAC·lBC·lAB.
	routes := e.RIB(a).Routes(p128)
	if len(routes) != 2 {
		t.Fatalf("A should have 2 routes for 128/1, got %d", len(routes))
	}
	c := net.Topology.MustRouter("C")
	b := net.Topology.MustRouter("B")
	var viaC, viaB *SymRoute
	for _, sr := range routes {
		switch sr.Route.NextHop {
		case int(c):
			viaC = sr
		case int(b):
			viaB = sr
		}
	}
	if viaC == nil || viaB == nil {
		t.Fatalf("missing route: viaC=%v viaB=%v", viaC, viaB)
	}
	if viaC.TcRib != lAC {
		t.Errorf("tc(128/1 via C) = %s, want lAC", m.Format(viaC.TcRib, nil))
	}
	wantViaB := m.AndN(m.Not(lAC), lBC, lAB)
	if viaB.TcRib != wantViaB {
		t.Errorf("tc(128/1 via B) = %s, want !lAC&lBC&lAB", m.Format(viaB.TcRib, nil))
	}

	// 192/2 at A: only via B (C denies it towards A), tc = lBC·lAB.
	routes = e.RIB(a).Routes(p192)
	if len(routes) != 1 {
		t.Fatalf("A should have 1 route for 192/2, got %d", len(routes))
	}
	if routes[0].Route.NextHop != int(b) {
		t.Errorf("192/2 next hop = %d, want B", routes[0].Route.NextHop)
	}
	if want := m.And(lBC, lAB); routes[0].TcRib != want {
		t.Errorf("tc(192/2 via B) = %s, want lBC&lAB", m.Format(routes[0].TcRib, nil))
	}
}

func TestFigure1OriginRIB(t *testing.T) {
	net := mustNet(t, figure1)
	e := runEngine(t, net, Options{PruneK: -1})
	cID := net.Topology.MustRouter("C")
	p128 := route.MustParsePrefix("128.0.0.0/1")
	routes := e.RIB(cID).Routes(p128)
	// C's own origination always wins: every learned route has tcRib
	// False and is either absent or dominated.
	foundLocal := false
	for _, sr := range routes {
		if sr.Route.Protocol == route.Connected {
			foundLocal = true
			if sr.TcRib != bdd.True {
				t.Errorf("origin tcRib should be True, got %s", e.Sp.M.Format(sr.TcRib, nil))
			}
		} else if sr.TcRib != bdd.False {
			t.Errorf("learned route at origin has tcRib %s, want False",
				e.Sp.M.Format(sr.TcRib, nil))
		}
	}
	if !foundLocal {
		t.Fatal("origin lacks its connected route")
	}
}

func TestFigure1RoutePruningK0(t *testing.T) {
	net := mustNet(t, figure1)
	e := runEngine(t, net, Options{PruneK: 0})
	m := e.Sp.M
	a := net.Topology.MustRouter("A")
	b := net.Topology.MustRouter("B")
	p128 := route.MustParsePrefix("128.0.0.0/1")
	// With k=0 (no failures), the backup route via B requires lAC down
	// and must be pruned to False or dropped.
	for _, sr := range e.RIB(a).Routes(p128) {
		if sr.Route.NextHop == int(b) && sr.TcRib != bdd.False {
			allUp := e.Sp.AllLinksUp()
			if m.And(sr.TcRib, allUp) != bdd.False {
				t.Errorf("backup route live under no-failure scenario with k=0")
			}
		}
	}
	st := e.Statistics()
	if st.RoutesImported == 0 {
		t.Error("stats: no imports counted")
	}
}

func TestFigure1PruneReducesRoutes(t *testing.T) {
	net := mustNet(t, figure1)
	full := runEngine(t, net, Options{PruneK: -1}).Statistics()
	pruned := runEngine(t, net, Options{PruneK: 0}).Statistics()
	if pruned.RIBRoutes > full.RIBRoutes {
		t.Errorf("pruned RIB has more routes (%d) than full (%d)", pruned.RIBRoutes, full.RIBRoutes)
	}
}

func TestStaticRoute(t *testing.T) {
	net := mustNet(t, `
topology
  router A
  router B
  link A B
end
router A
  static 10.0.0.0/8 via B
end
router B
  ospf
    network 10.0.0.0/8
  exit
end
`)
	e := runEngine(t, net, Options{PruneK: -1})
	a := net.Topology.MustRouter("A")
	p := route.MustParsePrefix("10.0.0.0/8")
	routes := e.RIB(a).LiveRoutes(p)
	if len(routes) != 1 {
		t.Fatalf("want 1 static route, got %d", len(routes))
	}
	if routes[0].Route.Protocol != route.Static {
		t.Fatalf("protocol = %v, want static", routes[0].Route.Protocol)
	}
	ab, _ := net.Topology.LinkBetween(a, net.Topology.MustRouter("B"))
	if routes[0].TcRib != e.Sp.LinkVar(ab) {
		t.Errorf("static tc = %s, want lAB", e.Sp.M.Format(routes[0].TcRib, nil))
	}
}

// ospfSquare is a 4-router OSPF ring: A-B-D-C-A, with D originating a
// network. Costs are uniform (1).
const ospfSquare = `
topology
  router A
  router B
  router C
  router D
  link A B
  link A C
  link B D
  link C D
end
router A
  ospf
  exit
end
router B
  ospf
  exit
end
router C
  ospf
  exit
end
router D
  ospf
    network 10.0.0.0/24
  exit
end
`

func TestOSPFECMP(t *testing.T) {
	net := mustNet(t, ospfSquare)
	e := runEngine(t, net, Options{PruneK: -1})
	m := e.Sp.M
	topo := net.Topology
	a := topo.MustRouter("A")
	p := route.MustParsePrefix("10.0.0.0/24")
	routes := e.RIB(a).LiveRoutes(p)
	// A reaches D at cost 2 via both B and C: an ECMP tier of two
	// routes, both installed when their respective paths are up.
	if len(routes) != 2 {
		t.Fatalf("want 2 ECMP routes at A, got %d: %v", len(routes), routes)
	}
	ab, _ := topo.LinkBetween(a, topo.MustRouter("B"))
	bd, _ := topo.LinkBetween(topo.MustRouter("B"), topo.MustRouter("D"))
	lAB, lBD := e.Sp.LinkVar(ab), e.Sp.LinkVar(bd)
	for _, sr := range routes {
		if sr.Route.Cost != 2 {
			t.Errorf("route cost = %d, want 2", sr.Route.Cost)
		}
		if sr.Route.NextHop == int(topo.MustRouter("B")) {
			// ECMP member is installed whenever its own path is up:
			// no negation by the equal-priority sibling.
			if want := m.And(lAB, lBD); sr.TcRib != want {
				t.Errorf("tc(via B) = %s, want lAB&lBD", m.Format(sr.TcRib, nil))
			}
		}
	}
}

func TestOSPFNoECMP(t *testing.T) {
	net := mustNet(t, ospfSquare)
	e := runEngine(t, net, Options{PruneK: -1, NoECMP: true})
	m := e.Sp.M
	topo := net.Topology
	a := topo.MustRouter("A")
	p := route.MustParsePrefix("10.0.0.0/24")
	routes := e.RIB(a).LiveRoutes(p)
	if len(routes) < 2 {
		t.Fatalf("want >=2 routes, got %d", len(routes))
	}
	// Without ECMP, equal-cost routes are strictly ordered and their
	// installed conditions must be disjoint.
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if m.And(routes[i].TcRib, routes[j].TcRib) != bdd.False {
				t.Errorf("routes %d and %d have overlapping tcRib without ECMP", i, j)
			}
		}
	}
}

func TestOSPFCosts(t *testing.T) {
	// Ring where one path is cheap and the other expensive.
	net := mustNet(t, `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  ospf
  exit
  interface C
    cost 10
  exit
end
router B
  ospf
  exit
end
router C
  ospf
    network 10.0.0.0/24
  exit
end
`)
	e := runEngine(t, net, Options{PruneK: -1})
	m := e.Sp.M
	topo := net.Topology
	a := topo.MustRouter("A")
	routes := e.RIB(a).LiveRoutes(route.MustParsePrefix("10.0.0.0/24"))
	if len(routes) != 2 {
		t.Fatalf("want 2 routes, got %d", len(routes))
	}
	// Preferred: via B at cost 2; backup: direct via C at cost 10.
	best := routes[0]
	if best.Route.NextHop != int(topo.MustRouter("B")) || best.Route.Cost != 2 {
		t.Fatalf("best route should be via B cost 2, got %+v", best.Route)
	}
	backup := routes[1]
	if backup.Route.Cost != 10 {
		t.Fatalf("backup cost = %d, want 10", backup.Route.Cost)
	}
	ab, _ := topo.LinkBetween(a, topo.MustRouter("B"))
	bc, _ := topo.LinkBetween(topo.MustRouter("B"), topo.MustRouter("C"))
	ac, _ := topo.LinkBetween(a, topo.MustRouter("C"))
	wantBackup := m.AndN(m.Not(m.And(e.Sp.LinkVar(ab), e.Sp.LinkVar(bc))), e.Sp.LinkVar(ac))
	if backup.TcRib != wantBackup {
		t.Errorf("backup tc = %s, want !(lAB&lBC)&lAC", m.Format(backup.TcRib, nil))
	}
}

func TestBGPLocalPref(t *testing.T) {
	// A prefers the longer path through B due to local-pref.
	net := mustNet(t, `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  bgp 65001
    neighbor B import-map PREFER
  route-map PREFER
    10 permit any set local-pref 200
end
router B
  bgp 65002
end
router C
  bgp 65003
    network 128.0.0.0/1
end
`)
	e := runEngine(t, net, Options{PruneK: -1})
	m := e.Sp.M
	topo := net.Topology
	a, b := topo.MustRouter("A"), topo.MustRouter("B")
	routes := e.RIB(a).Routes(route.MustParsePrefix("128.0.0.0/1"))
	if len(routes) != 2 {
		t.Fatalf("want 2 routes, got %d", len(routes))
	}
	if routes[0].Route.NextHop != int(b) {
		t.Fatalf("best route should be via B (local-pref 200), got next hop %d", routes[0].Route.NextHop)
	}
	if routes[0].Route.LocalPref != 200 {
		t.Fatalf("local-pref = %d, want 200", routes[0].Route.LocalPref)
	}
	ab, _ := topo.LinkBetween(a, b)
	bc, _ := topo.LinkBetween(b, topo.MustRouter("C"))
	if want := m.And(e.Sp.LinkVar(ab), e.Sp.LinkVar(bc)); routes[0].TcRib != want {
		t.Errorf("tc best = %s, want lAB&lBC", m.Format(routes[0].TcRib, nil))
	}
}

func TestBGPCommunityFiltering(t *testing.T) {
	// C tags 192/2 with community 666; A drops routes with that tag.
	net := mustNet(t, `
topology
  router A
  router C
  link A C
end
router A
  bgp 65001
    neighbor C import-map NOTAG
  route-map NOTAG
    10 deny community 666
    20 permit any
end
router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map TAG
  route-map TAG
    10 permit prefix 192.0.0.0/2 set community 666
    20 permit any
end
`)
	e := runEngine(t, net, Options{PruneK: -1})
	a := net.Topology.MustRouter("A")
	if got := len(e.RIB(a).Routes(route.MustParsePrefix("192.0.0.0/2"))); got != 0 {
		t.Errorf("192/2 should be filtered by community, got %d routes", got)
	}
	if got := len(e.RIB(a).Routes(route.MustParsePrefix("128.0.0.0/1"))); got != 1 {
		t.Errorf("128/1 should be present, got %d routes", got)
	}
}

func TestBGPAggregation(t *testing.T) {
	// B aggregates two /9s from C into 10.0.0.0/8 towards A.
	net := mustNet(t, `
topology
  router A
  router B
  router C
  link A B
  link B C
end
router A
  bgp 65001
end
router B
  bgp 65002
    aggregate 10.0.0.0/8
end
router C
  bgp 65003
    network 10.0.0.0/9
    network 10.128.0.0/9
end
`)
	e := runEngine(t, net, Options{PruneK: -1})
	m := e.Sp.M
	topo := net.Topology
	a, b := topo.MustRouter("A"), topo.MustRouter("B")
	agg := route.MustParsePrefix("10.0.0.0/8")
	// A sees only the aggregate.
	if got := len(e.RIB(a).Routes(route.MustParsePrefix("10.0.0.0/9"))); got != 0 {
		t.Errorf("more-specific should be suppressed at A, got %d routes", got)
	}
	routes := e.RIB(a).Routes(agg)
	if len(routes) != 1 {
		t.Fatalf("A should have the aggregate, got %d routes", len(routes))
	}
	ab, _ := topo.LinkBetween(a, b)
	bc, _ := topo.LinkBetween(b, topo.MustRouter("C"))
	// Aggregate live iff at least one contributor is received at B and
	// the link to A is up: tc = lAB & lBC (both contributors share lBC).
	if want := m.And(e.Sp.LinkVar(ab), e.Sp.LinkVar(bc)); routes[0].TcRib != want {
		t.Errorf("aggregate tc = %s, want lAB&lBC", m.Format(routes[0].TcRib, nil))
	}
}

func TestASPathPrepending(t *testing.T) {
	// C prepends towards A, making the direct path look longer, so A
	// prefers the path through B.
	net := mustNet(t, `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  bgp 65001
end
router B
  bgp 65002
end
router C
  bgp 65003
    network 128.0.0.0/1
    neighbor A export-map PREPEND
  route-map PREPEND
    10 permit any set prepend 3
end
`)
	e := runEngine(t, net, Options{PruneK: -1})
	topo := net.Topology
	a, b := topo.MustRouter("A"), topo.MustRouter("B")
	routes := e.RIB(a).Routes(route.MustParsePrefix("128.0.0.0/1"))
	if len(routes) != 2 {
		t.Fatalf("want 2 routes, got %d", len(routes))
	}
	if routes[0].Route.NextHop != int(b) {
		t.Errorf("prepending should make the path via B preferred")
	}
}

func TestAbstractionMergesRoutes(t *testing.T) {
	// Diamond: S at the top, D at the bottom, two middle routers. D's
	// prefix reaches S over two 2-hop AS paths of equal length; with
	// abstraction they stay separate routes per next hop, but the
	// next-hop routers merge identical-length paths from parallel
	// upstreams.
	text := `
topology
  router S
  router M1
  router M2
  router D
  link S M1
  link S M2
  link M1 D
  link M2 D
  link M1 M2
end
router S
  bgp 65000
end
router M1
  bgp 65001
end
router M2
  bgp 65002
end
router D
  bgp 65003
    network 128.0.0.0/1
end
`
	net := mustNet(t, text)
	plain := runEngine(t, net, Options{PruneK: -1})
	abst := runEngine(t, net, Options{PruneK: -1, Abstract: true})
	if al, pl := abst.TotalLiveRoutes(), plain.TotalLiveRoutes(); al > pl {
		t.Errorf("abstraction should not increase live routes: %d > %d", al, pl)
	}
	// The installed forwarding behaviour (per next hop, under all-up)
	// must agree for the best tier.
	s := net.Topology.MustRouter("S")
	p := route.MustParsePrefix("128.0.0.0/1")
	upPlain := bestNextHopsAllUp(plain, s, p)
	upAbst := bestNextHopsAllUp(abst, s, p)
	if len(upPlain) == 0 || len(upPlain) != len(upAbst) {
		t.Errorf("abstraction changed all-up next hops: %v vs %v", upPlain, upAbst)
	}
}

// bestNextHopsAllUp returns the set of next hops whose installed
// condition covers the all-links-up scenario.
func bestNextHopsAllUp(e *Engine, r topology.RouterID, p route.Prefix) map[int]bool {
	m := e.Sp.M
	allUp := e.Sp.AllLinksUp()
	out := make(map[int]bool)
	for _, sr := range e.RIB(r).Routes(p) {
		if m.And(sr.TcRib, allUp) != bdd.False {
			out[sr.Route.NextHop] = true
		}
	}
	return out
}

func TestConvergenceGuard(t *testing.T) {
	net := mustNet(t, figure1)
	e := New(net, Options{PruneK: -1, MaxIterations: 1})
	err := e.Run()
	if err == nil {
		t.Fatal("expected convergence error with 1 iteration")
	}
}

func TestNodeLimitSurfaces(t *testing.T) {
	net := mustNet(t, figure1)
	sp := symbol.NewSpace(net.Topology.NumLinks(), bdd.Config{NodeLimit: 8, DisableGC: true}, 0, nil)
	e := NewWithSpace(net, sp, Options{PruneK: -1})
	err := e.Run()
	if !errors.Is(err, bdd.ErrNodeLimit) {
		t.Fatalf("expected ErrNodeLimit, got %v", err)
	}
}

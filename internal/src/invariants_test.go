package src

import (
	"fmt"
	"math/rand"
	"testing"

	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/route"
	"sre/internal/topology"
)

// Structural invariants of symbolic RIBs, checked over randomized
// networks. These encode the semantics of equation (1):
//
//  1. tcRib ⊆ tcIn — a route can only be installed where it is imported;
//  2. within one prefix, the installed conditions of routes in
//     DIFFERENT priority tiers are pairwise disjoint (at most one tier
//     materializes per scenario);
//  3. with NoECMP, ALL installed conditions of a prefix are pairwise
//     disjoint (exactly one best route per scenario);
//  4. the union of installed conditions equals the union of imported
//     conditions (whenever any route is available, one is installed).
func checkRIBInvariants(t *testing.T, e *Engine) {
	t.Helper()
	m := e.Sp.M
	topo := e.Net.Topology
	for r := 0; r < topo.NumRouters(); r++ {
		rib := e.RIB(topology.RouterID(r))
		for _, p := range rib.Prefixes() {
			routes := rib.Routes(p)
			unionIn, unionRib := bdd.False, bdd.False
			for _, sr := range routes {
				if m.Diff(sr.TcRib, sr.TcIn) != bdd.False {
					t.Errorf("router %d prefix %s: tcRib ⊄ tcIn for %v", r, p, sr.Route)
				}
				unionIn = m.Or(unionIn, sr.TcIn)
				unionRib = m.Or(unionRib, sr.TcRib)
			}
			if unionIn != unionRib {
				t.Errorf("router %d prefix %s: some scenario imports a route but installs none", r, p)
			}
			for i := 0; i < len(routes); i++ {
				for j := i + 1; j < len(routes); j++ {
					differentTier := route.Compare(routes[i].Route, routes[j].Route) != 0 || e.Opts.NoECMP
					if differentTier && m.And(routes[i].TcRib, routes[j].TcRib) != bdd.False {
						t.Errorf("router %d prefix %s: overlapping installed conditions across tiers (%v, %v)",
							r, p, routes[i].Route, routes[j].Route)
					}
				}
			}
		}
	}
}

// randomInvariantNet builds a random connected network with mixed
// features for invariant fuzzing.
func randomInvariantNet(r *rand.Rand, useBGP bool) *config.Network {
	n := 4 + r.Intn(4)
	topo := topology.NewTopology()
	for i := 0; i < n; i++ {
		topo.AddRouter(fmt.Sprintf("r%d", i))
	}
	for i := 1; i < n; i++ {
		topo.AddLink(topology.RouterID(i), topology.RouterID(r.Intn(i)))
	}
	for e := 0; e < n; e++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			if _, dup := topo.LinkBetween(topology.RouterID(a), topology.RouterID(b)); !dup {
				topo.AddLink(topology.RouterID(a), topology.RouterID(b))
			}
		}
	}
	net := config.NewNetwork(topo)
	for i := 0; i < n; i++ {
		rc := net.Router(topology.RouterID(i))
		if useBGP {
			rc.BGP = &config.BGP{ASN: uint32(65000 + i),
				ImportPolicy: map[string]string{}, ExportPolicy: map[string]string{}}
			if r.Intn(3) == 0 {
				rc.BGP.Networks = []route.Prefix{{Addr: uint32(10+i) << 24, Len: 8}}
			}
			// A local-pref boost at a single router cannot form a
			// dispute wheel; random boosts at several routers can
			// (BGP's "bad gadget"), on which BGP genuinely diverges —
			// see TestBadGadgetDiverges.
			if i == 0 {
				rc.RouteMaps["LP"] = &config.RouteMap{Clauses: []*config.Clause{
					{Seq: 10, Action: config.Permit, SetLocalPref: 150 + r.Intn(100)},
				}}
				nbrs := topo.Neighbors(topology.RouterID(i))
				rc.BGP.ImportPolicy[topo.Name(nbrs[r.Intn(len(nbrs))])] = "LP"
			}
		} else {
			rc.OSPF = &config.OSPF{}
			if r.Intn(3) == 0 {
				rc.OSPF.Networks = []route.Prefix{{Addr: uint32(10+i) << 24, Len: 8}}
			}
			for _, lid := range topo.Router(topology.RouterID(i)).Links {
				rc.Interface(lid).OSPFCost = 1 + r.Intn(4)
			}
		}
	}
	// Guarantee at least one prefix exists.
	rc := net.Router(0)
	if useBGP && len(rc.BGP.Networks) == 0 {
		rc.BGP.Networks = []route.Prefix{{Addr: 10 << 24, Len: 8}}
	}
	if !useBGP && len(rc.OSPF.Networks) == 0 {
		rc.OSPF.Networks = []route.Prefix{{Addr: 10 << 24, Len: 8}}
	}
	return net
}

func TestRIBInvariantsRandomBGP(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		net := randomInvariantNet(r, true)
		for _, opts := range []Options{{PruneK: -1}, {PruneK: 2}, {PruneK: -1, NoECMP: true}, {PruneK: -1, Abstract: true}} {
			e := New(net, opts)
			if err := e.Run(); err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			checkRIBInvariants(t, e)
		}
	}
}

func TestRIBInvariantsRandomOSPF(t *testing.T) {
	for seed := int64(50); seed < 65; seed++ {
		r := rand.New(rand.NewSource(seed))
		net := randomInvariantNet(r, false)
		for _, opts := range []Options{{PruneK: -1}, {PruneK: 1}, {PruneK: -1, NoECMP: true}} {
			e := New(net, opts)
			if err := e.Run(); err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			checkRIBInvariants(t, e)
		}
	}
}

// TestBadGadgetDiverges: Griffin's "bad gadget" — three ASes around an
// origin, each preferring the route through its clockwise neighbor —
// has no stable BGP solution. The engine must detect the oscillation
// and return a convergence error instead of hanging. (With concrete AS
// paths the loop check happens to break this particular wheel; with
// abstraction the divergence manifests, which is part of the precision
// loss the paper accepts for §7.3.)
func TestBadGadgetDiverges(t *testing.T) {
	text := `
topology
  router O
  router A
  router B
  router C
  link O A
  link O B
  link O C
  link A B
  link B C
  link C A
end
router O
  bgp 65000
    network 10.0.0.0/8
end
router A
  bgp 65001
    neighbor B import-map PREF
  route-map PREF
    10 permit any set local-pref 200
end
router B
  bgp 65002
    neighbor C import-map PREF
  route-map PREF
    10 permit any set local-pref 200
end
router C
  bgp 65003
    neighbor A import-map PREF
  route-map PREF
    10 permit any set local-pref 200
end
`
	net := mustNet(t, text)
	e := New(net, Options{PruneK: -1, Abstract: true, MaxIterations: 5000})
	if err := e.Run(); err == nil {
		// Convergence is acceptable if a stable solution was found
		// (the loop check can break the wheel); what matters is that
		// the engine never hangs. With abstraction, divergence is the
		// expected outcome.
		t.Log("bad gadget converged under abstraction (loop broken)")
	}
}

// TestPruneSoundness: pruned computation must agree with the unpruned
// one on every scenario within the budget: tcRib_pruned = tcRib_full ∧ lf^k
// as a union per prefix (individual routes may split differently).
func TestPruneSoundness(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		net := randomInvariantNet(r, true)
		full := New(net, Options{PruneK: -1})
		if err := full.Run(); err != nil {
			t.Fatal(err)
		}
		const k = 1
		pruned := New(net, Options{PruneK: k})
		if err := pruned.Run(); err != nil {
			t.Fatal(err)
		}
		mf, mp := full.Sp.M, pruned.Sp.M
		topo := net.Topology
		for rr := 0; rr < topo.NumRouters(); rr++ {
			id := topology.RouterID(rr)
			for _, p := range full.RIB(id).Prefixes() {
				unionFull := bdd.False
				for _, sr := range full.RIB(id).Routes(p) {
					unionFull = mf.Or(unionFull, sr.TcRib)
				}
				unionFull = mf.And(unionFull, full.Sp.AtMostKLinkFailures(k))
				unionPruned := bdd.False
				for _, sr := range pruned.RIB(id).Routes(p) {
					unionPruned = mp.Or(unionPruned, sr.TcRib)
				}
				unionPruned = mp.And(unionPruned, pruned.Sp.AtMostKLinkFailures(k))
				// Spaces have identical layouts: compare by evaluating
				// both on every ≤k-failure scenario.
				links := topo.NumLinks()
				agree := true
				for down := -1; down < links && agree; down++ {
					ev := func(v int) bool {
						return down < 0 || v != full.Sp.LinkVarIndex(topology.LinkID(down))
					}
					if mf.Eval(unionFull, ev) != mp.Eval(unionPruned, ev) {
						agree = false
					}
				}
				if !agree {
					t.Errorf("seed %d router %d prefix %s: pruned disagrees within budget", seed, rr, p)
				}
			}
		}
	}
}

package src

import (
	"testing"

	"sre/internal/bdd"
	"sre/internal/route"
	"sre/internal/topology"
)

// ibgpLine: external AS 200 router E attaches to border router R3 of
// AS 100; AS 100 runs OSPF internally on the line R1–R2–R3 and a full
// iBGP mesh. R1 learns E's prefix over the virtual session to R3, whose
// condition is the OSPF reachability R1→R3.
const ibgpLine = `
topology
  router R1
  router R2
  router R3
  router E
  link R1 R2
  link R2 R3
  link R3 E
end
router R1
  bgp 100
  ospf
  exit
end
router R2
  bgp 100
  ospf
  exit
end
router R3
  bgp 100
  ospf
  exit
end
router E
  bgp 200
    network 100.0.0.0/8
end
`

// ibgpDiamond adds a second internal path R1–R4–R3.
const ibgpDiamond = `
topology
  router R1
  router R2
  router R3
  router R4
  router E
  link R1 R2
  link R2 R3
  link R1 R4
  link R4 R3
  link R3 E
end
router R1
  bgp 100
  ospf
  exit
end
router R2
  bgp 100
  ospf
  exit
end
router R3
  bgp 100
  ospf
  exit
end
router R4
  bgp 100
  ospf
  exit
end
router E
  bgp 200
    network 100.0.0.0/8
end
`

func TestIBGPMeshLine(t *testing.T) {
	net := mustNet(t, ibgpLine)
	e := runEngine(t, net, Options{PruneK: -1, IBGPFullMesh: true})
	m := e.Sp.M
	topo := net.Topology
	r1 := topo.MustRouter("R1")
	r3 := topo.MustRouter("R3")
	pfx := route.MustParsePrefix("100.0.0.0/8")

	routes := e.RIB(r1).LiveRoutes(pfx)
	if len(routes) != 1 {
		t.Fatalf("R1 should have one iBGP route, got %d", len(routes))
	}
	sr := routes[0]
	if sr.Route.Protocol != route.IBGP {
		t.Fatalf("protocol = %v, want ibgp", sr.Route.Protocol)
	}
	if sr.Route.NextHop != int(r3) {
		t.Fatalf("next hop = %d, want R3 (the border router)", sr.Route.NextHop)
	}
	// Condition: session up (lR1R2 ∧ lR2R3) and R3 has the route (lR3E).
	l12, _ := topo.LinkBetween(r1, topo.MustRouter("R2"))
	l23, _ := topo.LinkBetween(topo.MustRouter("R2"), r3)
	l3e, _ := topo.LinkBetween(r3, topo.MustRouter("E"))
	want := m.AndN(e.Sp.LinkVar(l12), e.Sp.LinkVar(l23), e.Sp.LinkVar(l3e))
	if sr.TcRib != want {
		t.Errorf("tc = %s, want l12&l23&l3e", m.Format(sr.TcRib, nil))
	}
	// Local-pref is preserved over iBGP (default 100 here) and the AS
	// path is NOT prepended with the local AS.
	if sr.Route.ContainsAS(100) {
		t.Error("iBGP must not prepend the local AS")
	}
}

func TestIBGPMeshDiamondTolerance(t *testing.T) {
	net := mustNet(t, ibgpDiamond)
	e := runEngine(t, net, Options{PruneK: -1, IBGPFullMesh: true})
	m := e.Sp.M
	topo := net.Topology
	r1 := topo.MustRouter("R1")
	pfx := route.MustParsePrefix("100.0.0.0/8")
	routes := e.RIB(r1).LiveRoutes(pfx)
	if len(routes) == 0 {
		t.Fatal("R1 lacks the external route")
	}
	// The union of installed conditions must survive any single
	// internal link failure as long as R3–E is up: the session rides
	// on both internal paths.
	cond := bdd.False
	for _, sr := range routes {
		cond = m.Or(cond, sr.TcRib)
	}
	l3e, _ := topo.LinkBetween(topo.MustRouter("R3"), topo.MustRouter("E"))
	for l := 0; l < topo.NumLinks(); l++ {
		lid := topology.LinkID(l)
		if lid == l3e {
			continue
		}
		holds := m.Eval(cond, func(v int) bool {
			return v != e.Sp.LinkVarIndex(lid)
		})
		if !holds {
			t.Errorf("route should survive failure of internal link %d", l)
		}
	}
	// But it cannot survive the external link.
	if m.Eval(cond, func(v int) bool { return v != e.Sp.LinkVarIndex(l3e) }) {
		t.Error("route must die with the external link")
	}
}

func TestIBGPWithoutMeshHasNoRemoteRoute(t *testing.T) {
	net := mustNet(t, ibgpLine)
	e := runEngine(t, net, Options{PruneK: -1}) // mesh disabled
	r1 := net.Topology.MustRouter("R1")
	pfx := route.MustParsePrefix("100.0.0.0/8")
	// Without the mesh, R3's iBGP advertisement reaches only its
	// physical neighbor R2 and is not reflected to R1.
	if got := len(e.RIB(r1).LiveRoutes(pfx)); got != 0 {
		t.Errorf("R1 has %d routes without a mesh; expected none (no route reflection)", got)
	}
}

func TestIBGPLoopbacksStayInternal(t *testing.T) {
	net := mustNet(t, ibgpLine)
	e := runEngine(t, net, Options{PruneK: -1, IBGPFullMesh: true})
	// Loopbacks are engine-internal: they must not appear in the
	// network's originated prefixes (analyses never iterate them).
	for _, p := range net.AllPrefixes() {
		if p.Addr>>20 == (172<<4 | 1) {
			t.Errorf("loopback %s leaked into AllPrefixes", p)
		}
	}
	// But they exist in RIBs for resolution.
	r1 := net.Topology.MustRouter("R1")
	r3 := net.Topology.MustRouter("R3")
	if len(e.RIB(r1).LiveRoutes(LoopbackPrefix(r3))) == 0 {
		t.Error("R1 lacks an OSPF route to R3's loopback")
	}
}

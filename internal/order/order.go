// Package order computes topology-aware static variable orders for the
// BDD link variables. The symbolic space fixes the 32 header bits at
// levels 0..31 (Algorithm 2's Extract depends on that split), but the
// relative order of the link variables underneath is free — and it is
// the single biggest lever on ROBDD size: orders that keep the links
// constrained together at adjacent levels let the per-router forwarding
// conditions share structure instead of repeating it at every level in
// between.
//
// The package produces a permutation LinkID → level offset that
// symbol.NewSpace installs under the header bits. Every order is a pure,
// deterministic function of the topology, so two processes (a
// coordinator and its workers, or a run and a warm result cache) derive
// the same layout from the same network — the permutation is part of
// the meaning of every serialized BDD and every cache key.
//
// Both topology-aware orders share one primary key, the minimum degree
// of a link's endpoints: peripheral links (edge racks, stub sites) sink
// to the low levels in tight tiers while highly-shared core links float
// to the top. Measured on FatTree(6) k=1 this tiering cuts peak BDD
// nodes ~12% against declaration order; pure traversal orders (plain
// BFS from any root, greedy min-degree elimination) were measured WORSE
// than declaration there, because they interleave pods by core
// adjacency and destroy the declaration order's pod blocking.
package order

import (
	"fmt"
	"sort"

	"sre/internal/topology"
)

// Method names a variable-ordering strategy.
type Method string

const (
	// Auto computes the candidate orders and keeps the one with the
	// lowest locality cost (see SpanCost); resolution is deterministic
	// per topology. This is the default.
	Auto Method = "auto"
	// Declaration keeps the seed layout: link l at level HeaderBits+l,
	// in raw declaration order. This is the kill switch and the
	// baseline of `srebench -exp bddkernel`'s order sweep.
	Declaration Method = "declaration"
	// BFS tiers links by minimum endpoint degree and orders each tier
	// by breadth-first discovery rank from a deterministic peripheral
	// root, so links of nearby routers sit at nearby levels even when
	// the declaration order is arbitrary (hand-written or synthetic
	// WAN configs).
	BFS Method = "bfs"
	// MinDeg tiers links by minimum endpoint degree and keeps each
	// tier in declaration order — the conservative refinement: it only
	// moves links between tiers, preserving whatever locality the
	// declaration order already has within one.
	MinDeg Method = "mindeg"
)

// Normalize parses a user-facing method string. The empty string means
// Auto. Unknown names return an error listing the valid set.
func Normalize(s string) (Method, error) {
	switch Method(s) {
	case "", Auto:
		return Auto, nil
	case Declaration, BFS, MinDeg:
		return Method(s), nil
	}
	return "", fmt.Errorf("order: unknown variable order %q (want auto, declaration, bfs, or mindeg)", s)
}

// Order is a computed variable order: the resolved method (never Auto)
// and the permutation. A nil Perm is the identity (declaration order);
// otherwise Perm[l] is the level offset of link l among the link
// variables, a permutation of [0, NumLinks).
type Order struct {
	Method Method
	Perm   []int
}

// ID returns the resolved method name — the order identifier folded
// into analysis cache keys and benchmark rows. Two runs with equal IDs
// on equal topologies lay their BDD variables out identically.
func (o Order) ID() string { return string(o.Method) }

// Compute derives the link-variable order for t under method m,
// resolving Auto to the concrete winner. The result is deterministic:
// it depends only on the topology's router/link structure, never on map
// iteration or timing.
func Compute(t *topology.Topology, m Method) Order {
	switch m {
	case Declaration:
		return Order{Method: Declaration}
	case BFS:
		return Order{Method: BFS, Perm: tierPerm(t, bfsRanks(t))}
	case MinDeg:
		return Order{Method: MinDeg, Perm: tierPerm(t, nil)}
	case Auto, "":
		// Two regimes, split by the topology's degree structure:
		//
		// Banded hierarchies (fat trees, leaf-spine: 2-3 degree tiers,
		// each holding a large share of the links) take MinDeg — the
		// regime where tiering was MEASURED to cut peak BDD nodes
		// (~12% on FatTree(6) k=1) even though no static locality
		// metric predicts it; SpanCost actively prefers the worse
		// declaration order there, so Auto must not score its way out.
		//
		// Everything else (WANs, hand-written configs, near-uniform
		// meshes) keeps the SpanCost winner between Declaration and
		// BFS: tier bands carry no signal without a hierarchy, but
		// breadth-first locality measurably tightens scattered
		// declaration orders, and Declaration competing keeps Auto
		// from ever losing locality to the seed layout.
		if banded(t) {
			return Order{Method: MinDeg, Perm: tierPerm(t, nil)}
		}
		best := Order{Method: Declaration}
		bestCost := SpanCost(t, nil)
		if bfs := (Order{Method: BFS, Perm: tierPerm(t, bfsRanks(t))}); SpanCost(t, bfs.Perm) < bestCost {
			best = bfs
		}
		return best
	}
	panic(fmt.Sprintf("order: Compute called with invalid method %q", m))
}

// SpanCost is the locality metric Auto minimizes: the sum over routers
// of the level span (max - min) of their incident links. A router whose
// links sit at adjacent levels contributes its degree; one whose links
// are scattered contributes the full scatter width. Lower is better —
// BDD paths constrain a router's links together (a route survives iff
// some incident link is up), and the nodes between a constraint's first
// and last level are where conjunctions blow up.
func SpanCost(t *topology.Topology, perm []int) int {
	level := func(l topology.LinkID) int {
		if perm == nil {
			return int(l)
		}
		return perm[l]
	}
	cost := 0
	for r := 0; r < t.NumRouters(); r++ {
		links := t.Router(topology.RouterID(r)).Links
		if len(links) == 0 {
			continue
		}
		lo, hi := level(links[0]), level(links[0])
		for _, l := range links[1:] {
			v := level(l)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		cost += hi - lo
	}
	return cost
}

// banded reports whether the topology's links fall into a crisp degree
// hierarchy: 2 or 3 distinct tiers (minimum endpoint degree), the
// smallest of which still holds at least 20% of all links. Fat trees
// and leaf-spine fabrics are banded (FatTree(k) splits exactly in half:
// pod fabric vs core uplinks); random WANs scatter across many small
// tiers and are not.
func banded(t *topology.Topology) bool {
	counts := map[int]int{}
	for i := 0; i < t.NumLinks(); i++ {
		l := t.Link(topology.LinkID(i))
		d := len(t.Router(l.A).Links)
		if db := len(t.Router(l.B).Links); db < d {
			d = db
		}
		counts[d]++
	}
	if len(counts) < 2 || len(counts) > 3 {
		return false
	}
	for _, c := range counts {
		if c*5 < t.NumLinks() {
			return false
		}
	}
	return true
}

// tierPerm builds the shared tiered order: links sort by ascending
// minimum endpoint degree, ties broken by within (or by LinkID when
// within is nil — declaration order inside each tier). The secondary
// key fully determines the layout, so equal-tier links never depend on
// sort internals.
func tierPerm(t *topology.Topology, within []int) []int {
	n := t.NumLinks()
	idx := make([]int, n)
	tier := make([]int, n)
	for i := 0; i < n; i++ {
		idx[i] = i
		l := t.Link(topology.LinkID(i))
		d := len(t.Router(l.A).Links)
		if db := len(t.Router(l.B).Links); db < d {
			d = db
		}
		tier[i] = d
	}
	key := func(i int) int {
		if within == nil {
			return i
		}
		return within[i]
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if tier[ia] != tier[ib] {
			return tier[ia] < tier[ib]
		}
		return key(ia) < key(ib)
	})
	perm := make([]int, n)
	for lvl, l := range idx {
		perm[l] = lvl
	}
	return perm
}

// bfsRanks assigns every link its discovery rank in a breadth-first
// traversal: routers are visited in BFS order from a deterministic root
// (the lowest-ID router of minimum degree, so traversal starts at the
// periphery and grows inward), and each dequeued router's unranked
// incident links take the next ranks in LinkID order. Disconnected
// components are re-seeded the same way until every link is ranked.
func bfsRanks(t *topology.Topology) []int {
	n := t.NumRouters()
	rank := make([]int, t.NumLinks())
	for i := range rank {
		rank[i] = -1
	}
	next := 0
	visited := make([]bool, n)
	for next < len(rank) {
		root := bfsRoot(t, visited)
		queue := []topology.RouterID{root}
		visited[root] = true
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, l := range t.Router(r).Links {
				if rank[l] == -1 {
					rank[l] = next
					next++
				}
				nb := t.Link(l).Other(r)
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if n == 0 {
			break // defensive: links without routers cannot exist
		}
	}
	return rank
}

// bfsRoot picks the lowest-ID unvisited router of minimum degree.
func bfsRoot(t *topology.Topology, visited []bool) topology.RouterID {
	root, rootDeg := topology.RouterID(-1), -1
	for r := 0; r < t.NumRouters(); r++ {
		if visited[r] {
			continue
		}
		d := len(t.Router(topology.RouterID(r)).Links)
		if root == -1 || d < rootDeg {
			root, rootDeg = topology.RouterID(r), d
		}
	}
	return root
}

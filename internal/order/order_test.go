package order

import (
	"reflect"
	"testing"

	"sre/internal/topology"
	"sre/internal/workload"
)

func validPerm(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for l, v := range perm {
		if v < 0 || v >= n {
			t.Fatalf("perm[%d] = %d out of range [0,%d)", l, v, n)
		}
		if seen[v] {
			t.Fatalf("perm[%d] = %d assigned twice", l, v)
		}
		seen[v] = true
	}
}

func TestPermValidity(t *testing.T) {
	topos := map[string]*topology.Topology{
		"fattree4": workload.FatTree(4, workload.OSPF).Topology,
		"fattree6": workload.FatTree(6, workload.OSPF).Topology,
		"wan":      workload.SyntheticWAN("wan", 24, 40, workload.OSPF, 7).Topology,
	}
	for name, topo := range topos {
		for _, m := range []Method{BFS, MinDeg} {
			o := Compute(topo, m)
			if o.Method != m {
				t.Errorf("%s/%s: resolved method %q", name, m, o.Method)
			}
			validPerm(t, o.Perm, topo.NumLinks())
		}
	}
}

func TestDeterminism(t *testing.T) {
	topo := workload.FatTree(4, workload.OSPF).Topology
	for _, m := range []Method{Auto, Declaration, BFS, MinDeg} {
		a, b := Compute(topo, m), Compute(topo, m)
		if a.Method != b.Method || !reflect.DeepEqual(a.Perm, b.Perm) {
			t.Errorf("%s: two computes differ", m)
		}
	}
}

func TestNormalize(t *testing.T) {
	for in, want := range map[string]Method{
		"": Auto, "auto": Auto, "declaration": Declaration,
		"bfs": BFS, "mindeg": MinDeg,
	} {
		got, err := Normalize(in)
		if err != nil || got != want {
			t.Errorf("Normalize(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := Normalize("sift"); err == nil {
		t.Error("Normalize accepted unknown method")
	}
}

// TestAutoResolution pins Auto's two regimes: banded hierarchies (fat
// trees) take the tiered mindeg order, everything else takes the
// SpanCost winner between declaration and bfs — so on non-banded
// topologies Auto never has worse locality than the seed layout.
func TestAutoResolution(t *testing.T) {
	for _, k := range []int{4, 6} {
		topo := workload.FatTree(k, workload.OSPF).Topology
		auto := Compute(topo, Auto)
		if auto.Method != MinDeg {
			t.Errorf("fattree%d: auto resolved to %q, want mindeg (banded hierarchy)", k, auto.Method)
		}
	}
	nonBanded := map[string]*topology.Topology{
		"wan24": workload.SyntheticWAN("wan", 24, 40, workload.OSPF, 7).Topology,
		"wan30": workload.SyntheticWAN("wan", 30, 55, workload.OSPF, 11).Topology,
	}
	for name, topo := range nonBanded {
		auto := Compute(topo, Auto)
		if auto.Method != Declaration && auto.Method != BFS {
			t.Errorf("%s: auto resolved to %q, want declaration or bfs", name, auto.Method)
		}
		if got, base := SpanCost(topo, auto.Perm), SpanCost(topo, nil); got > base {
			t.Errorf("%s: auto (%s) SpanCost %d > declaration %d", name, auto.Method, got, base)
		}
	}
}

// TestTieredOrderStructure pins the shape that measurably cuts peak
// BDD nodes on fat trees: every pod-fabric link (min endpoint degree
// k/2) sorts strictly below every core uplink (min degree k), and
// mindeg keeps declaration order within each band.
func TestTieredOrderStructure(t *testing.T) {
	for _, k := range []int{4, 6} {
		topo := workload.FatTree(k, workload.OSPF).Topology
		n := topo.NumLinks()
		for _, m := range []Method{MinDeg, BFS} {
			perm := Compute(topo, m).Perm
			for i := 0; i < n; i++ {
				l := topo.Link(topology.LinkID(i))
				da, db := len(topo.Router(l.A).Links), len(topo.Router(l.B).Links)
				isFabric := da == k/2 || db == k/2 // one endpoint is an edge router
				if isFabric != (perm[i] < n/2) {
					t.Fatalf("fattree%d/%s: link %d (fabric=%v) at level %d of %d",
						k, m, i, isFabric, perm[i], n)
				}
			}
		}
		// Within a band, mindeg preserves declaration order.
		perm := Compute(topo, MinDeg).Perm
		prev := -1
		for i := 0; i < n; i++ {
			if perm[i] < n/2 { // fabric band, in LinkID order
				if perm[i] < prev {
					t.Fatalf("fattree%d: mindeg reordered links within the fabric band", k)
				}
				prev = perm[i]
			}
		}
	}
}

// TestWANBFSImprovesLocality asserts the non-banded regime's win: on
// synthetic WANs (scattered declaration order) the bfs order tightens
// SpanCost against declaration.
func TestWANBFSImprovesLocality(t *testing.T) {
	for seed := int64(7); seed < 10; seed++ {
		topo := workload.SyntheticWAN("wan", 24, 40, workload.OSPF, seed).Topology
		base := SpanCost(topo, nil)
		bfs := SpanCost(topo, Compute(topo, BFS).Perm)
		t.Logf("wan seed %d: declaration=%d bfs=%d", seed, base, bfs)
		if bfs >= base {
			t.Errorf("wan seed %d: bfs SpanCost %d did not improve on declaration %d", seed, bfs, base)
		}
	}
}

func TestIDResolved(t *testing.T) {
	topo := workload.FatTree(4, workload.OSPF).Topology
	if id := Compute(topo, Auto).ID(); id == "auto" || id == "" {
		t.Errorf("Auto ID not resolved: %q", id)
	}
	if id := Compute(topo, Declaration).ID(); id != "declaration" {
		t.Errorf("Declaration ID = %q", id)
	}
}

package resil

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCheckerIsNoop(t *testing.T) {
	var c *Checker
	if c.Poll() != nil || c.Check() != nil || c.Fn() != nil {
		t.Fatal("nil checker must be a no-op")
	}
	if NewChecker(nil, 0, 0) != nil {
		t.Fatal("NewChecker with no context and no timeout should return nil")
	}
}

func TestCheckerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, 0, 4)
	if err := c.Check(); err != nil {
		t.Fatalf("premature trip: %v", err)
	}
	cancel()
	// Amortized: the first polls may pass, but within one interval the
	// cancellation must surface.
	var err error
	for i := 0; i < 4; i++ {
		err = c.Poll()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	// Sticky.
	if !errors.Is(c.Poll(), ErrCanceled) || !errors.Is(c.Check(), ErrCanceled) {
		t.Fatal("checker must latch its error")
	}
}

func TestCheckerDeadline(t *testing.T) {
	c := NewChecker(nil, time.Nanosecond, 1)
	time.Sleep(time.Millisecond)
	if err := c.Poll(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestCheckerContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := NewChecker(ctx, 0, 1)
	if err := c.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("context deadline should map to ErrDeadline, got %v", err)
	}
}

func TestStageWrapping(t *testing.T) {
	err := Stage("src", fmt.Errorf("wrapped: %w", ErrNoConvergence))
	if StageOf(err) != "src" {
		t.Fatalf("stage = %q, want src", StageOf(err))
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatal("stage wrapping must preserve the sentinel")
	}
	// Innermost stage wins; re-wrapping is a no-op.
	outer := Stage("mine", err)
	if StageOf(outer) != "src" {
		t.Fatalf("re-wrap changed stage to %q", StageOf(outer))
	}
	if Stage("x", nil) != nil {
		t.Fatal("Stage(nil) must be nil")
	}
}

func TestStageErrorRouters(t *testing.T) {
	e := &StageError{Stage: "src", Routers: []string{"A", "B"}, Err: ErrNoConvergence}
	msg := e.Error()
	for _, want := range []string{"src:", "A", "B", "did not converge"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if !Interruption(ErrCanceled) || !Interruption(ErrDeadline) || Interruption(ErrNoConvergence) {
		t.Fatal("Interruption classification wrong")
	}
}

func TestNilSharedCheckerIsNoop(t *testing.T) {
	var c *SharedChecker
	if c.Check() != nil || c.Fn() != nil {
		t.Fatal("nil shared checker must be a no-op")
	}
	if NewSharedChecker(nil, 0) != nil {
		t.Fatal("NewSharedChecker with no context and no timeout should return nil")
	}
}

func TestSharedCheckerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewSharedChecker(ctx, 0)
	if err := c.Check(); err != nil {
		t.Fatalf("premature trip: %v", err)
	}
	cancel()
	if err := c.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestSharedCheckerDeadline(t *testing.T) {
	c := NewSharedChecker(nil, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := c.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

// TestSharedCheckerConcurrent trips the checker while many goroutines
// poll it: every caller after the trip must observe the SAME error
// value (first writer wins), and -race vets the implementation.
func TestSharedCheckerConcurrent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := NewSharedChecker(ctx, 0)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				if err := c.Check(); err != nil {
					errs[i] = err
					return
				}
				if j == 0 {
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	first := errs[0]
	for i, err := range errs {
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("goroutine %d got %v, want ErrCanceled", i, err)
		}
		if err != first {
			t.Fatalf("goroutine %d observed a different error instance: %v vs %v", i, err, first)
		}
	}
}

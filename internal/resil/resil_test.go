package resil

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilCheckerIsNoop(t *testing.T) {
	var c *Checker
	if c.Poll() != nil || c.Check() != nil || c.Fn() != nil {
		t.Fatal("nil checker must be a no-op")
	}
	if NewChecker(nil, 0, 0) != nil {
		t.Fatal("NewChecker with no context and no timeout should return nil")
	}
}

func TestCheckerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, 0, 4)
	if err := c.Check(); err != nil {
		t.Fatalf("premature trip: %v", err)
	}
	cancel()
	// Amortized: the first polls may pass, but within one interval the
	// cancellation must surface.
	var err error
	for i := 0; i < 4; i++ {
		err = c.Poll()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	// Sticky.
	if !errors.Is(c.Poll(), ErrCanceled) || !errors.Is(c.Check(), ErrCanceled) {
		t.Fatal("checker must latch its error")
	}
}

func TestCheckerDeadline(t *testing.T) {
	c := NewChecker(nil, time.Nanosecond, 1)
	time.Sleep(time.Millisecond)
	if err := c.Poll(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestCheckerContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := NewChecker(ctx, 0, 1)
	if err := c.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("context deadline should map to ErrDeadline, got %v", err)
	}
}

func TestStageWrapping(t *testing.T) {
	err := Stage("src", fmt.Errorf("wrapped: %w", ErrNoConvergence))
	if StageOf(err) != "src" {
		t.Fatalf("stage = %q, want src", StageOf(err))
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatal("stage wrapping must preserve the sentinel")
	}
	// Innermost stage wins; re-wrapping is a no-op.
	outer := Stage("mine", err)
	if StageOf(outer) != "src" {
		t.Fatalf("re-wrap changed stage to %q", StageOf(outer))
	}
	if Stage("x", nil) != nil {
		t.Fatal("Stage(nil) must be nil")
	}
}

func TestStageErrorRouters(t *testing.T) {
	e := &StageError{Stage: "src", Routers: []string{"A", "B"}, Err: ErrNoConvergence}
	msg := e.Error()
	for _, want := range []string{"src:", "A", "B", "did not converge"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if !Interruption(ErrCanceled) || !Interruption(ErrDeadline) || Interruption(ErrNoConvergence) {
		t.Fatal("Interruption classification wrong")
	}
}

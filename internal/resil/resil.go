// Package resil holds the resilience primitives shared across the
// verification pipeline: typed interruption errors (cancellation,
// deadline expiry, non-convergence, internal faults), stage-tagged
// error wrapping, and an amortized context/deadline checker cheap
// enough to poll from BDD apply loops and per-router iterations.
//
// The package deliberately has no dependencies beyond the standard
// library so every layer — BDD manager, control plane, data plane,
// analysis, facade — can import it without cycles.
package resil

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Sentinel errors of the resilient runtime. Callers match them with
// errors.Is; the concrete error in a result chain usually wraps one of
// these with stage and router context (see StageError).
var (
	// ErrCanceled reports that the run's context was canceled.
	ErrCanceled = errors.New("run canceled")
	// ErrDeadline reports that the run exceeded its wall-clock budget
	// (Options.Timeout or a context deadline).
	ErrDeadline = errors.New("run deadline exceeded")
	// ErrNoConvergence reports that a control-plane computation (the
	// symbolic route computation or a concrete simulation) did not
	// reach a fixed point within its iteration bound.
	ErrNoConvergence = errors.New("control plane did not converge")
	// ErrInternal reports a defect: an internal panic converted at the
	// public API boundary instead of crashing the caller's process.
	ErrInternal = errors.New("internal error")
)

// StageError tags an underlying error with the pipeline stage it
// interrupted and, when known, the routers involved (the oscillating
// routers of a non-convergent run, or the router being processed when
// a panic fired).
type StageError struct {
	Stage   string   // "src", "spf", "analysis", "mine", "sim", ...
	Routers []string // involved routers, when known
	Err     error
}

func (e *StageError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v", e.Stage, e.Err)
	if len(e.Routers) > 0 {
		fmt.Fprintf(&b, " (routers: %s)", strings.Join(e.Routers, ", "))
	}
	return b.String()
}

func (e *StageError) Unwrap() error { return e.Err }

// Stage wraps err with a stage tag unless it already carries one, so
// the innermost (most precise) stage wins as errors propagate outward.
func Stage(stage string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Err: err}
}

// StageOf returns the stage recorded on err, or "" when err carries no
// stage tag.
func StageOf(err error) string {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage
	}
	return ""
}

// Interruption reports whether err is a cooperative interruption
// (cancellation or deadline) rather than a fault. Interruptions abort
// a run cleanly; they are never retried by the degradation ladder.
func Interruption(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}

// DefaultPollInterval is how many Poll calls elapse between real
// context/clock checks. At ~10⁶–10⁷ polled operations per second this
// bounds cancellation latency to well under a millisecond of polled
// work while keeping the common path to one branch and one increment.
const DefaultPollInterval = 64

// Checker polls a context and a wall-clock deadline at amortized cost.
// The zero-cost path is a nil *Checker: every method is a no-op, so
// pipeline code can hold and poll a checker unconditionally.
//
// A Checker is sticky: once tripped it keeps returning the same error,
// so late pollers observe the interruption even after the context is
// garbage. It is not safe for concurrent use; the pipeline is
// single-threaded by design.
type Checker struct {
	ctx      context.Context
	deadline time.Time
	timeout  time.Duration
	every    uint32
	n        uint32
	err      error
}

// NewChecker builds a checker for the given context and timeout.
// Either may be absent (nil context, zero timeout); when both are
// absent NewChecker returns nil — the no-op checker. every is the poll
// interval (0 = DefaultPollInterval).
func NewChecker(ctx context.Context, timeout time.Duration, every uint32) *Checker {
	if ctx == nil && timeout <= 0 {
		return nil
	}
	if every == 0 {
		every = DefaultPollInterval
	}
	c := &Checker{ctx: ctx, timeout: timeout, every: every}
	if timeout > 0 {
		c.deadline = time.Now().Add(timeout)
	}
	return c
}

// Poll is the amortized check: it consults the context and clock every
// c.every calls and returns nil otherwise. Call it from per-iteration
// loops (router activations, BDD operations).
func (c *Checker) Poll() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.n++
	if c.n < c.every {
		return nil
	}
	c.n = 0
	return c.Check()
}

// Check consults the context and clock immediately. Call it at stage
// boundaries where latency matters more than per-call cost.
func (c *Checker) Check() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				c.err = fmt.Errorf("%w (context deadline)", ErrDeadline)
			} else {
				c.err = fmt.Errorf("%w: %v", ErrCanceled, err)
			}
			return c.err
		}
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.err = fmt.Errorf("%w (budget %s)", ErrDeadline, c.timeout)
		return c.err
	}
	return nil
}

// Fn returns Check as a plain func for option structs that accept an
// interrupt hook, or nil when the checker itself is nil so downstream
// layers skip polling entirely. Check (not Poll) is the right hook:
// the layers that call it — the BDD manager, the engine's activation
// loop, the analysis stage boundaries — already amortize with their
// own step counters, and stage boundaries need the immediate verdict.
func (c *Checker) Fn() func() error {
	if c == nil {
		return nil
	}
	return c.Check
}

// SharedChecker is the concurrent counterpart of Checker: one
// context/deadline poll shared by every worker of a parallel run. Like
// Checker it is sticky — once tripped, all workers observe the same
// error — but trip detection and the sticky slot use atomics, so Check
// may be called from any number of goroutines. A nil *SharedChecker is
// the no-op checker.
//
// There is no amortized Poll: the layers that poll the hook (BDD
// manager, engine activation loop, stage boundaries) amortize with
// their own step counters, exactly as with Checker.Fn.
type SharedChecker struct {
	ctx      context.Context
	deadline time.Time
	timeout  time.Duration
	err      atomic.Pointer[error]
}

// NewSharedChecker builds a shared checker for the given context and
// timeout. Either may be absent; when both are absent it returns nil —
// the no-op checker.
func NewSharedChecker(ctx context.Context, timeout time.Duration) *SharedChecker {
	if ctx == nil && timeout <= 0 {
		return nil
	}
	c := &SharedChecker{ctx: ctx, timeout: timeout}
	if timeout > 0 {
		c.deadline = time.Now().Add(timeout)
	}
	return c
}

// Check consults the context and clock immediately. Safe for concurrent
// use; every caller after the first trip observes the same error.
func (c *SharedChecker) Check() error {
	if c == nil {
		return nil
	}
	if p := c.err.Load(); p != nil {
		return *p
	}
	var tripped error
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				tripped = fmt.Errorf("%w (context deadline)", ErrDeadline)
			} else {
				tripped = fmt.Errorf("%w: %v", ErrCanceled, err)
			}
		}
	}
	if tripped == nil && !c.deadline.IsZero() && time.Now().After(c.deadline) {
		tripped = fmt.Errorf("%w (budget %s)", ErrDeadline, c.timeout)
	}
	if tripped == nil {
		return nil
	}
	// First writer wins so every caller sees one identical error value.
	c.err.CompareAndSwap(nil, &tripped)
	return *c.err.Load()
}

// Fn returns Check as a plain func, or nil on a nil checker.
func (c *SharedChecker) Fn() func() error {
	if c == nil {
		return nil
	}
	return c.Check
}

package config

import (
	"strings"
	"testing"

	"sre/internal/route"
	"sre/internal/topology"
)

const sample = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end

router A
  bgp 65001
    network 10.0.0.0/24
    neighbor B import-map IN
  route-map IN
    10 permit prefix 10.0.0.0/8 ge 9 le 24 set local-pref 200
    20 deny any
  interface B
    cost 5
    acl-in deny 192.0.0.0/2
    acl-in permit any
end

router B
  bgp 65002
    aggregate 10.0.0.0/8
end

router C
  ospf
    network 10.1.0.0/24
  static 10.2.0.0/16 via B
end
`

func TestParseSample(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n.Topology.NumRouters() != 3 || n.Topology.NumLinks() != 3 {
		t.Fatal("topology counts")
	}
	a := n.RouterByName("A")
	if a.BGP == nil || a.BGP.ASN != 65001 {
		t.Fatal("A BGP")
	}
	if len(a.BGP.Networks) != 1 || a.BGP.Networks[0] != route.MustParsePrefix("10.0.0.0/24") {
		t.Fatal("A networks")
	}
	if a.BGP.ImportPolicy["B"] != "IN" {
		t.Fatal("A import policy")
	}
	rm := a.RouteMaps["IN"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatal("route map IN")
	}
	cl := rm.Clauses[0]
	if cl.Action != Permit || cl.MatchPrefix == nil || cl.MatchPrefix.GE != 9 || cl.MatchPrefix.LE != 24 || cl.SetLocalPref != 200 {
		t.Fatalf("clause 10 parsed wrong: %+v", cl)
	}
	b := n.RouterByName("B")
	if len(b.BGP.Aggregates) != 1 {
		t.Fatal("B aggregate")
	}
	c := n.RouterByName("C")
	if c.OSPF == nil || len(c.OSPF.Networks) != 1 {
		t.Fatal("C OSPF")
	}
	if len(c.Static) != 1 || c.Static[0].NextHop != "B" {
		t.Fatal("C static")
	}
	// Interface of A towards B.
	ab, _ := n.Topology.LinkBetween(n.Topology.MustRouter("A"), n.Topology.MustRouter("B"))
	itf := a.Interfaces[ab]
	if itf == nil || itf.OSPFCost != 5 {
		t.Fatal("interface cost")
	}
	if itf.ACLIn == nil || len(itf.ACLIn.Entries) != 2 {
		t.Fatal("interface ACL")
	}
}

func TestRoundTrip(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := Format(n)
	n2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse formatted config: %v\n%s", err, text)
	}
	if Format(n2) != text {
		t.Fatal("Format is not a fixed point of Parse∘Format")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text, wantSub string }{
		{"no topology", "router A\nend\n", "expected 'topology'"},
		{"bad link", "topology\n router A\n link A B\nend\n", "unknown router"},
		{"unknown section router", "topology\n router A\nend\nrouter B\nend\n", "unknown router"},
		{"bad prefix", "topology\n router A\nend\nrouter A\n bgp 1\n  network 10.0.0.0\nend\n", "missing /len"},
		{"bad acl", "topology\n router A\n router B\n link A B\nend\nrouter A\n interface B\n  acl-in block any\nend\n", "permit or deny"},
		{"dangling route map", "topology\n router A\n router B\n link A B\nend\nrouter A\n bgp 1\n  neighbor B import-map NOPE\nend\n", "undefined route-map"},
		{"static to non-adjacent", "topology\n router A\n router B\n router C\n link A B\nend\nrouter A\n static 10.0.0.0/8 via C\nend\n", "not adjacent"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %v should contain %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestPrefixMatch(t *testing.T) {
	pm := &PrefixMatch{Prefix: route.MustParsePrefix("10.0.0.0/8"), GE: 9, LE: 24}
	if pm.Matches(route.MustParsePrefix("10.0.0.0/8")) {
		t.Error("len 8 < ge 9 should not match")
	}
	if !pm.Matches(route.MustParsePrefix("10.1.0.0/16")) {
		t.Error("10.1/16 should match")
	}
	if pm.Matches(route.MustParsePrefix("10.1.2.0/25")) {
		t.Error("len 25 > le 24 should not match")
	}
	if pm.Matches(route.MustParsePrefix("11.0.0.0/16")) {
		t.Error("outside 10/8 should not match")
	}
	exact := &PrefixMatch{Prefix: route.MustParsePrefix("10.0.0.0/8")}
	if !exact.Matches(route.MustParsePrefix("10.0.0.0/8")) {
		t.Error("exact match")
	}
	if exact.Matches(route.MustParsePrefix("10.1.0.0/16")) {
		t.Error("exact match must not cover longer prefixes")
	}
}

func TestRouteMapApply(t *testing.T) {
	rm := &RouteMap{Clauses: []*Clause{
		{Seq: 10, Action: Deny, MatchCommunity: 666},
		{Seq: 20, Action: Permit, MatchPrefix: &PrefixMatch{Prefix: route.MustParsePrefix("10.0.0.0/8"), GE: 8, LE: 32},
			SetLocalPref: 150, AddCommunity: 100, PrependAS: 2},
		{Seq: 30, Action: Permit},
	}}
	// Community-tagged route is denied.
	tagged := route.NewLocal(route.MustParsePrefix("10.0.0.0/8"), route.EBGP, 0)
	tagged.Communities = []uint64{666}
	if _, ok := rm.Apply(tagged, 65000); ok {
		t.Error("tagged route should be denied")
	}
	// 10/8 route gets transformed.
	r := route.NewLocal(route.MustParsePrefix("10.1.0.0/16"), route.EBGP, 0)
	r.ASPath = []uint32{65010}
	out, ok := rm.Apply(r, 65000)
	if !ok {
		t.Fatal("10.1/16 should be permitted")
	}
	if out.LocalPref != 150 || !out.HasCommunity(100) {
		t.Errorf("set actions not applied: %+v", out)
	}
	if len(out.ASPath) != 3 || out.ASPath[0] != 65000 || out.ASPath[1] != 65000 {
		t.Errorf("prepend not applied: %v", out.ASPath)
	}
	// Original not mutated.
	if r.LocalPref != 100 || len(r.ASPath) != 1 {
		t.Error("Apply mutated its input")
	}
	// Other routes fall through to permit-any unchanged.
	other := route.NewLocal(route.MustParsePrefix("192.168.0.0/16"), route.EBGP, 0)
	out, ok = rm.Apply(other, 65000)
	if !ok || out.LocalPref != 100 {
		t.Error("fallthrough clause should permit unchanged")
	}
	// Empty map denies (no clause matches).
	empty := &RouteMap{}
	if _, ok := empty.Apply(other, 65000); ok {
		t.Error("empty route map should deny")
	}
	// Nil map permits.
	var nilMap *RouteMap
	if _, ok := nilMap.Apply(other, 65000); !ok {
		t.Error("nil route map should permit")
	}
}

func TestACLPermitsAddr(t *testing.T) {
	acl := &ACL{Entries: []ACLEntry{
		{Action: Deny, Prefix: route.MustParsePrefix("192.0.0.0/2")},
		{Action: Permit, Any: true},
	}}
	if acl.PermitsAddr(0xC0000001) { // 192.0.0.1
		t.Error("192/2 should be denied")
	}
	if !acl.PermitsAddr(0x0A000001) { // 10.0.0.1
		t.Error("10.0.0.1 should be permitted")
	}
	var nilACL *ACL
	if !nilACL.PermitsAddr(0) {
		t.Error("nil ACL permits everything")
	}
	implicitDeny := &ACL{Entries: []ACLEntry{{Action: Permit, Prefix: route.MustParsePrefix("10.0.0.0/8")}}}
	if implicitDeny.PermitsAddr(0xC0000001) {
		t.Error("implicit deny at end of ACL")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	cp := n.Clone()
	// Mutate the copy; original must be unaffected.
	cp.RouterByName("A").BGP.Networks[0] = route.MustParsePrefix("99.0.0.0/8")
	cp.RouterByName("A").RouteMaps["IN"].Clauses[0].SetLocalPref = 999
	ab, _ := n.Topology.LinkBetween(n.Topology.MustRouter("A"), n.Topology.MustRouter("B"))
	cp.RouterByName("A").Interfaces[ab].ACLIn.Entries[0].Action = Permit
	if n.RouterByName("A").BGP.Networks[0] == route.MustParsePrefix("99.0.0.0/8") {
		t.Error("Clone shares BGP networks")
	}
	if n.RouterByName("A").RouteMaps["IN"].Clauses[0].SetLocalPref == 999 {
		t.Error("Clone shares route maps")
	}
	if n.RouterByName("A").Interfaces[ab].ACLIn.Entries[0].Action == Permit {
		t.Error("Clone shares ACLs")
	}
}

func TestAllPrefixesAndOrigins(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := n.AllPrefixes()
	if len(prefixes) != 2 {
		t.Fatalf("want 2 originated prefixes, got %v", prefixes)
	}
	origins := n.OriginsOf(route.MustParsePrefix("10.1.0.0/24"))
	if len(origins) != 1 || origins[0] != n.Topology.MustRouter("C") {
		t.Errorf("origins = %v", origins)
	}
}

func TestInterfaceDefault(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	b := n.RouterByName("B")
	itf := b.Interface(topology.LinkID(0))
	if itf.OSPFCost != 1 {
		t.Errorf("default OSPF cost = %d, want 1", itf.OSPFCost)
	}
}

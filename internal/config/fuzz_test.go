package config

import (
	"errors"
	"strings"
	"testing"
)

// Seed corpus: the quick-start network from the package documentation,
// plus variants that exercise every section kind and the diagnostic
// paths. The fuzzer mutates these; the property under test is simply
// that ParseString never panics — every malformed input must surface as
// a *ParseError (or a Validate error), not a crash.
var fuzzSeeds = []string{
	`topology
  router A
  router B
  router C
  link A B
  link A C
  link B C
end

router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end

router A
  bgp 65001
end

router B
  bgp 65002
end
`,
	`topology
  router A
  router B
  link A B
end
router A
  ospf
    network 10.0.0.0/8
  interface B
    cost 5
    passive
  static 10.1.0.0/16 via B
end
`,
	`topology
  router A
  router A
  link A A
end
`,
	`topology
  router A
end
router A
  bgp 1
    network
    aggregate
  route-map M
    10
    20 permit prefix
    30 permit community
    40 permit set
end
`,
	"topology\nend\nrouter B\nend\n",
	"router A\nend\n",
	"topology\n  router A\n  link A\nend\n",
	"",
}

// FuzzParseNetwork asserts the config parser is total: any byte string
// either parses or returns an error, and a returned network survives a
// Format/Parse round trip without panicking.
func FuzzParseNetwork(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		net, err := ParseString(text)
		if err != nil {
			if net != nil {
				t.Fatalf("ParseString returned both a network and error %v", err)
			}
			return
		}
		// A successfully parsed network must format and re-parse.
		if _, err := ParseString(Format(net)); err != nil {
			t.Fatalf("re-parse of formatted network failed: %v\ninput: %q", err, text)
		}
	})
}

// TestParseAccumulatesDiagnostics locks in multi-diagnostic behaviour:
// several independent mistakes are all reported in one pass, each with
// its line number.
func TestParseAccumulatesDiagnostics(t *testing.T) {
	text := `topology
  router A
  router B
  bogus line
  link A C
end
router A
  bgp not-a-number
end
router Z
end
router B
  ospf
    network 10.0.0.0/8
end
`
	_, err := ParseString(text)
	if err == nil {
		t.Fatal("want error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	wants := []struct {
		line int
		sub  string
	}{
		{4, "unexpected \"bogus\""},
		{5, "unknown router \"C\""},
		{8, "bad AS number"},
		{10, "unknown router \"Z\""},
	}
	if len(pe.Diags) != len(wants) {
		t.Fatalf("got %d diagnostics %v, want %d", len(pe.Diags), pe.Diags, len(wants))
	}
	for i, w := range wants {
		d := pe.Diags[i]
		if d.Line != w.line || !strings.Contains(d.Msg, w.sub) {
			t.Errorf("diag %d = line %d %q, want line %d containing %q", i, d.Line, d.Msg, w.line, w.sub)
		}
	}
	for _, w := range wants {
		if !strings.Contains(err.Error(), w.sub) {
			t.Errorf("error text %q misses %q", err.Error(), w.sub)
		}
	}
}

// TestParseSingleDiagnosticFormat pins the one-error message format to
// the historical "config: line N: ..." shape.
func TestParseSingleDiagnosticFormat(t *testing.T) {
	_, err := ParseString("nope\n")
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); !strings.HasPrefix(got, "config: line 1: ") {
		t.Fatalf("error %q should start with \"config: line 1: \"", got)
	}
}

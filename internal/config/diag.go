package config

import (
	"fmt"
	"strings"
)

// Diagnostic is one parse problem, located by its 1-based line number.
type Diagnostic struct {
	Line int
	Msg  string
}

func (d Diagnostic) String() string { return fmt.Sprintf("line %d: %s", d.Line, d.Msg) }

// ParseError collects every diagnostic found in one parse. The parser
// recovers at section boundaries, so a config with several broken
// sections reports all of them in a single pass instead of one error
// per edit-compile cycle.
type ParseError struct {
	Diags []Diagnostic
}

func (e *ParseError) Error() string {
	switch len(e.Diags) {
	case 0:
		return "config: parse error"
	case 1:
		return "config: " + e.Diags[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "config: %d errors:", len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// maxDiags bounds accumulation so a pathological input cannot produce
// an unbounded error value; parsing stops once the cap is reached.
const maxDiags = 50

// Package config defines the vendor-neutral router configuration model
// that symbolic route computation executes. It plays the role Batfish
// plays for the paper's implementation: the paper uses Batfish only to
// parse vendor configs into a neutral representation; this package *is*
// that representation, together with a textual format (see parse.go) so
// the pipeline can start from configuration files on disk.
//
// The model covers the features the paper exercises: BGP (networks,
// neighbors, per-neighbor import/export route-maps, communities,
// local-pref, AS-path prepending, route aggregation), OSPF (per-interface
// costs), static routes, and interface ACLs filtering on destination
// prefix.
package config

import (
	"fmt"
	"sort"

	"sre/internal/route"
	"sre/internal/topology"
)

// Network bundles a topology with one configuration per router. It is the
// input to both symbolic route computation and concrete simulation.
type Network struct {
	Topology *topology.Topology
	Routers  []*Router // indexed by RouterID
}

// NewNetwork creates a Network over the topology with empty router
// configurations.
func NewNetwork(t *topology.Topology) *Network {
	n := &Network{Topology: t, Routers: make([]*Router, t.NumRouters())}
	for i := range n.Routers {
		n.Routers[i] = NewRouter(t.Name(topology.RouterID(i)))
	}
	return n
}

// Router returns the configuration of router id.
func (n *Network) Router(id topology.RouterID) *Router { return n.Routers[id] }

// RouterByName returns the configuration of the named router.
func (n *Network) RouterByName(name string) *Router {
	return n.Routers[n.Topology.MustRouter(name)]
}

// Clone deep-copies the network (sharing the immutable topology); used by
// differential analysis to apply a change to a copy.
func (n *Network) Clone() *Network {
	cp := &Network{Topology: n.Topology, Routers: make([]*Router, len(n.Routers))}
	for i, r := range n.Routers {
		cp.Routers[i] = r.Clone()
	}
	return cp
}

// AllPrefixes returns the deduplicated, sorted list of destination
// prefixes originated anywhere in the network — the verification
// universe for all-pairs analyses.
func (n *Network) AllPrefixes() []route.Prefix {
	seen := make(map[route.Prefix]bool)
	var out []route.Prefix
	for _, r := range n.Routers {
		for _, p := range r.Originated() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// OriginsOf returns the routers that originate prefix p.
func (n *Network) OriginsOf(p route.Prefix) []topology.RouterID {
	var out []topology.RouterID
	for i, r := range n.Routers {
		for _, q := range r.Originated() {
			if q == p {
				out = append(out, topology.RouterID(i))
				break
			}
		}
	}
	return out
}

// Router is the configuration of a single router.
type Router struct {
	Name string

	BGP    *BGP
	OSPF   *OSPF
	Static []StaticRoute

	// Interfaces holds per-link interface settings (costs, ACLs),
	// keyed by link ID. Links without an entry use defaults.
	Interfaces map[topology.LinkID]*Interface

	// RouteMaps are named policies referenced by BGP neighbors.
	RouteMaps map[string]*RouteMap
}

// NewRouter returns an empty configuration for the named router.
func NewRouter(name string) *Router {
	return &Router{
		Name:       name,
		Interfaces: make(map[topology.LinkID]*Interface),
		RouteMaps:  make(map[string]*RouteMap),
	}
}

// Clone deep-copies the router configuration.
func (r *Router) Clone() *Router {
	cp := NewRouter(r.Name)
	if r.BGP != nil {
		cp.BGP = r.BGP.Clone()
	}
	if r.OSPF != nil {
		cp.OSPF = r.OSPF.Clone()
	}
	cp.Static = append([]StaticRoute(nil), r.Static...)
	for k, v := range r.Interfaces {
		cp.Interfaces[k] = v.Clone()
	}
	for k, v := range r.RouteMaps {
		cp.RouteMaps[k] = v.Clone()
	}
	return cp
}

// Interface returns the interface settings for link id, creating the
// entry on first use.
func (r *Router) Interface(id topology.LinkID) *Interface {
	itf, ok := r.Interfaces[id]
	if !ok {
		itf = &Interface{OSPFCost: 1}
		r.Interfaces[id] = itf
	}
	return itf
}

// Originated returns every prefix this router originates into any
// protocol (BGP networks, OSPF networks, connected subnets).
func (r *Router) Originated() []route.Prefix {
	var out []route.Prefix
	if r.BGP != nil {
		out = append(out, r.BGP.Networks...)
	}
	if r.OSPF != nil {
		out = append(out, r.OSPF.Networks...)
	}
	return out
}

// Interface carries the per-link settings of a router.
type Interface struct {
	OSPFCost int  // cost of this interface in OSPF (default 1)
	Passive  bool // if true, no routing adjacency over this link
	ACLIn    *ACL // filters packets arriving on this interface
	ACLOut   *ACL // filters packets leaving via this interface
}

// Clone deep-copies the interface settings.
func (i *Interface) Clone() *Interface {
	cp := *i
	if i.ACLIn != nil {
		cp.ACLIn = i.ACLIn.Clone()
	}
	if i.ACLOut != nil {
		cp.ACLOut = i.ACLOut.Clone()
	}
	return &cp
}

// BGP configures a router's BGP process. Peerings are implied by the
// topology: a router peers with every adjacent router that also runs BGP
// (eBGP when AS numbers differ, iBGP otherwise), matching how the
// paper's synthetic datasets are configured.
type BGP struct {
	ASN uint32
	// Networks are locally originated prefixes ("network" statements).
	Networks []route.Prefix
	// Aggregates are "aggregate-address" summary prefixes: when at
	// least one more-specific route is present, the aggregate is
	// advertised instead (§4, route aggregation).
	Aggregates []route.Prefix
	// ImportPolicy and ExportPolicy name the route-map applied to
	// routes received from / advertised to a neighbor, keyed by
	// neighbor router name. Missing entry means permit-all.
	ImportPolicy map[string]string
	ExportPolicy map[string]string
}

// Clone deep-copies the BGP configuration.
func (b *BGP) Clone() *BGP {
	cp := &BGP{ASN: b.ASN}
	cp.Networks = append([]route.Prefix(nil), b.Networks...)
	cp.Aggregates = append([]route.Prefix(nil), b.Aggregates...)
	cp.ImportPolicy = cloneStringMap(b.ImportPolicy)
	cp.ExportPolicy = cloneStringMap(b.ExportPolicy)
	return cp
}

func cloneStringMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	cp := make(map[string]string, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// OSPF configures a router's OSPF process (single area).
type OSPF struct {
	// Networks are prefixes originated into OSPF at this router.
	Networks []route.Prefix
}

// Clone deep-copies the OSPF configuration.
func (o *OSPF) Clone() *OSPF {
	return &OSPF{Networks: append([]route.Prefix(nil), o.Networks...)}
}

// StaticRoute sends traffic for Prefix towards the given neighbor.
type StaticRoute struct {
	Prefix  route.Prefix
	NextHop string // neighbor router name
}

// Action is the verdict of a route-map clause or ACL entry.
type Action uint8

// Permit and Deny actions.
const (
	Permit Action = iota
	Deny
)

// String returns "permit" or "deny".
func (a Action) String() string {
	if a == Deny {
		return "deny"
	}
	return "permit"
}

// RouteMap is an ordered list of clauses evaluated first-match. A route
// matching no clause is denied (standard route-map semantics).
type RouteMap struct {
	Clauses []*Clause
}

// Clone deep-copies the route map.
func (rm *RouteMap) Clone() *RouteMap {
	cp := &RouteMap{Clauses: make([]*Clause, len(rm.Clauses))}
	for i, c := range rm.Clauses {
		cp.Clauses[i] = c.Clone()
	}
	return cp
}

// Clause is one term of a route map.
type Clause struct {
	Seq    int
	Action Action
	// Match conditions: a route matches the clause if it matches ALL
	// configured conditions. Zero-valued conditions are ignored.
	MatchPrefix    *PrefixMatch
	MatchCommunity uint64 // non-zero: route must carry this community
	// Set actions, applied when the clause permits.
	SetLocalPref int // >0: overwrite local preference
	SetMED       int // >=0 and set flag below
	SetMEDValid  bool
	AddCommunity uint64 // non-zero: append this community
	PrependAS    int    // >0: prepend own ASN this many times
}

// Clone deep-copies the clause.
func (c *Clause) Clone() *Clause {
	cp := *c
	if c.MatchPrefix != nil {
		pm := *c.MatchPrefix
		cp.MatchPrefix = &pm
	}
	return &cp
}

// PrefixMatch matches prefixes covered by Prefix whose length lies in
// [GE, LE]; zero GE/LE default to the prefix's own length (exact match).
type PrefixMatch struct {
	Prefix route.Prefix
	GE, LE int
}

// Matches reports whether p satisfies the prefix match.
func (pm *PrefixMatch) Matches(p route.Prefix) bool {
	ge, le := pm.GE, pm.LE
	if ge == 0 {
		ge = pm.Prefix.Len
	}
	if le == 0 {
		le = pm.Prefix.Len
	}
	return pm.Prefix.Covers(p) && p.Len >= ge && p.Len <= le
}

// Apply evaluates the route map on r. It returns the transformed route
// and true if permitted, or nil and false if denied. The input route is
// not mutated. ownASN is used by the prepend action.
func (rm *RouteMap) Apply(r *route.Route, ownASN uint32) (*route.Route, bool) {
	if rm == nil {
		return r, true
	}
	for _, c := range rm.Clauses {
		if c.MatchPrefix != nil && !c.MatchPrefix.Matches(r.Prefix) {
			continue
		}
		if c.MatchCommunity != 0 && !r.HasCommunity(c.MatchCommunity) {
			continue
		}
		if c.Action == Deny {
			return nil, false
		}
		out := r.Clone()
		if c.SetLocalPref > 0 {
			out.LocalPref = c.SetLocalPref
		}
		if c.SetMEDValid {
			out.MED = c.SetMED
		}
		if c.AddCommunity != 0 {
			out.Communities = append(out.Communities, c.AddCommunity)
		}
		for i := 0; i < c.PrependAS; i++ {
			out.ASPath = append([]uint32{ownASN}, out.ASPath...)
		}
		return out, true
	}
	return nil, false
}

// ACL is an ordered access list over destination addresses, evaluated
// first-match with an implicit trailing deny only when the list is
// non-empty and ends without a permit-any (standard behaviour is implicit
// deny; generators append explicit permit-any terms where needed).
type ACL struct {
	Entries []ACLEntry
}

// ACLEntry matches packets whose destination lies in Prefix.
type ACLEntry struct {
	Action Action
	// Prefix of destinations this entry matches; Any matches all.
	Prefix route.Prefix
	Any    bool
}

// Clone deep-copies the ACL.
func (a *ACL) Clone() *ACL {
	return &ACL{Entries: append([]ACLEntry(nil), a.Entries...)}
}

// PermitsAddr evaluates the ACL for a single concrete destination
// address. A nil ACL permits everything; a non-nil ACL has an implicit
// trailing deny.
func (a *ACL) PermitsAddr(addr uint32) bool {
	if a == nil {
		return true
	}
	for _, e := range a.Entries {
		if e.Any || e.Prefix.Contains(addr) {
			return e.Action == Permit
		}
	}
	return false
}

// Validate checks the network configuration for dangling references
// (route maps, static next hops) and returns a descriptive error.
func (n *Network) Validate() error {
	t := n.Topology
	for i, r := range n.Routers {
		id := topology.RouterID(i)
		if r.BGP != nil {
			for nbr, rmName := range r.BGP.ImportPolicy {
				if err := n.checkPolicyRef(id, nbr, rmName); err != nil {
					return err
				}
			}
			for nbr, rmName := range r.BGP.ExportPolicy {
				if err := n.checkPolicyRef(id, nbr, rmName); err != nil {
					return err
				}
			}
		}
		for _, s := range r.Static {
			nid, ok := t.RouterByName(s.NextHop)
			if !ok {
				return fmt.Errorf("config: router %s static %s: unknown next hop %q", r.Name, s.Prefix, s.NextHop)
			}
			if _, ok := t.LinkBetween(id, nid); !ok {
				return fmt.Errorf("config: router %s static %s: next hop %q is not adjacent", r.Name, s.Prefix, s.NextHop)
			}
		}
	}
	return nil
}

func (n *Network) checkPolicyRef(id topology.RouterID, nbr, rmName string) error {
	r := n.Routers[id]
	if _, ok := r.RouteMaps[rmName]; !ok {
		return fmt.Errorf("config: router %s references undefined route-map %q", r.Name, rmName)
	}
	nid, ok := n.Topology.RouterByName(nbr)
	if !ok {
		return fmt.Errorf("config: router %s references unknown neighbor %q", r.Name, nbr)
	}
	if _, ok := n.Topology.LinkBetween(id, nid); !ok {
		return fmt.Errorf("config: router %s has policy for non-adjacent neighbor %q", r.Name, nbr)
	}
	return nil
}

package config

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sre/internal/route"
	"sre/internal/topology"
)

// Textual configuration format. A network file lists the topology first,
// then one section per router:
//
//	topology
//	  router A
//	  router B
//	  router C
//	  link A B
//	  link A C
//	  link B C
//	end
//
//	router C
//	  bgp 65003
//	    network 128.0.0.0/1
//	    network 192.0.0.0/2
//	    neighbor A export-map NO192
//	  route-map NO192
//	    10 deny prefix 192.0.0.0/2
//	    20 permit any
//	  interface A
//	    acl-in deny 192.0.0.0/2
//	    acl-in permit any
//	end
//
// Indentation is cosmetic; nesting is inferred from keywords. '#' starts
// a comment.

// Parse reads a network (topology + router configurations) from r.
func Parse(r io.Reader) (*Network, error) {
	p := &parser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return p.parse()
}

// ParseString parses a network from a string.
func ParseString(s string) (*Network, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	sc     *bufio.Scanner
	line   int
	net    *Network
	pushed []string // one-line pushback for implicit block termination
	diags  []Diagnostic
}

// pushBack returns fields to the stream so the outer block can consume
// them; blocks may end either with an explicit "exit" or implicitly at
// the next outer keyword.
func (p *parser) pushBack(fields []string) { p.pushed = fields }

// blockEnders terminate bgp/ospf/interface/route-map blocks implicitly.
var blockEnders = map[string]bool{
	"end": true, "router": true, "bgp": true, "ospf": true,
	"static": true, "interface": true, "route-map": true,
}

// errStop signals that a diagnostic has already been recorded and the
// enclosing section should be abandoned; parse() turns it into recovery
// at the next section boundary rather than aborting the whole parse.
var errStop = fmt.Errorf("config: section abandoned")

func (p *parser) errf(format string, args ...interface{}) error {
	return p.errAt(p.line, format, args...)
}

func (p *parser) errAt(line int, format string, args ...interface{}) error {
	if len(p.diags) < maxDiags {
		p.diags = append(p.diags, Diagnostic{Line: line, Msg: fmt.Sprintf(format, args...)})
	}
	return errStop
}

// fail returns the accumulated diagnostics as the parse result.
func (p *parser) fail() (*Network, error) {
	return nil, &ParseError{Diags: p.diags}
}

// skipSection consumes lines until the current (broken) section ends —
// its "end", or the start of the next "router" section, which is pushed
// back — so one malformed section yields one diagnostic, not a cascade.
func (p *parser) skipSection() {
	for {
		fields, ok := p.next()
		if !ok {
			return
		}
		switch fields[0] {
		case "end":
			return
		case "router":
			p.pushBack(fields)
			return
		}
	}
}

func (p *parser) next() ([]string, bool) {
	if p.pushed != nil {
		f := p.pushed
		p.pushed = nil
		return f, true
	}
	for p.sc.Scan() {
		p.line++
		text := p.sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) > 0 {
			return fields, true
		}
	}
	return nil, false
}

func (p *parser) parse() (*Network, error) {
	topo := topology.NewTopology()
	type pendingLink struct {
		a, b string
		line int
	}
	var pendingLinks []pendingLink
	// Phase 1: topology section. Bad lines are recorded and skipped so
	// one typo does not hide every later problem.
	fields, ok := p.next()
	if !ok || fields[0] != "topology" {
		p.errf("expected 'topology' section first")
		return p.fail()
	}
topoLoop:
	for len(p.diags) < maxDiags {
		fields, ok = p.next()
		if !ok {
			p.errf("unterminated topology section")
			return p.fail()
		}
		switch fields[0] {
		case "router":
			if len(fields) != 2 {
				p.errf("router needs a name")
				continue
			}
			if _, dup := topo.RouterByName(fields[1]); dup {
				p.errf("duplicate router %q", fields[1])
				continue
			}
			topo.AddRouter(fields[1])
		case "link":
			if len(fields) != 3 {
				p.errf("link needs two router names")
				continue
			}
			pendingLinks = append(pendingLinks, pendingLink{fields[1], fields[2], p.line})
		case "end":
			break topoLoop
		default:
			p.errf("unexpected %q in topology section", fields[0])
		}
	}
	for _, l := range pendingLinks {
		if l.a == l.b {
			p.errAt(l.line, "link endpoints must differ, got %q twice", l.a)
			continue
		}
		a, aok := topo.RouterByName(l.a)
		if !aok {
			p.errAt(l.line, "link references unknown router %q", l.a)
			continue
		}
		b, bok := topo.RouterByName(l.b)
		if !bok {
			p.errAt(l.line, "link references unknown router %q", l.b)
			continue
		}
		topo.AddLink(a, b)
	}
	p.net = NewNetwork(topo)
	// Phase 2: router sections. A broken section is skipped up to its
	// "end" (or the next "router" header) and parsing resumes, so every
	// broken section contributes a diagnostic in a single pass.
	for len(p.diags) < maxDiags {
		fields, ok = p.next()
		if !ok {
			break
		}
		if fields[0] != "router" || len(fields) != 2 {
			p.errf("expected 'router <name>' section, got %q", strings.Join(fields, " "))
			p.skipSection()
			continue
		}
		id, found := topo.RouterByName(fields[1])
		if !found {
			p.errf("configuration for unknown router %q", fields[1])
			p.skipSection()
			continue
		}
		if err := p.parseRouter(p.net.Routers[id], id); err != nil {
			p.skipSection()
		}
	}
	if len(p.diags) > 0 {
		return p.fail()
	}
	if err := p.net.Validate(); err != nil {
		return nil, err
	}
	return p.net, nil
}

func (p *parser) parseRouter(rc *Router, id topology.RouterID) error {
	topo := p.net.Topology
	for {
		fields, ok := p.next()
		if !ok {
			return p.errf("unterminated router section for %s", rc.Name)
		}
		switch fields[0] {
		case "end":
			return nil
		case "bgp":
			if len(fields) != 2 {
				return p.errf("bgp needs an AS number")
			}
			asn, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return p.errf("bad AS number %q", fields[1])
			}
			rc.BGP = &BGP{ASN: uint32(asn), ImportPolicy: map[string]string{}, ExportPolicy: map[string]string{}}
			if err := p.parseBGP(rc.BGP); err != nil {
				return err
			}
		case "ospf":
			rc.OSPF = &OSPF{}
			if err := p.parseOSPF(rc.OSPF); err != nil {
				return err
			}
		case "static":
			// static <prefix> via <neighbor>
			if len(fields) != 4 || fields[2] != "via" {
				return p.errf("static wants '<prefix> via <neighbor>'")
			}
			pfx, err := route.ParsePrefix(fields[1])
			if err != nil {
				return p.errf("%v", err)
			}
			rc.Static = append(rc.Static, StaticRoute{Prefix: pfx, NextHop: fields[3]})
		case "interface":
			if len(fields) != 2 {
				return p.errf("interface wants a neighbor name")
			}
			nbr, found := topo.RouterByName(fields[1])
			if !found {
				return p.errf("interface to unknown router %q", fields[1])
			}
			lid, found := topo.LinkBetween(id, nbr)
			if !found {
				return p.errf("no link between %s and %s", rc.Name, fields[1])
			}
			if err := p.parseInterface(rc.Interface(lid)); err != nil {
				return err
			}
		case "route-map":
			if len(fields) != 2 {
				return p.errf("route-map wants a name")
			}
			rm := &RouteMap{}
			if err := p.parseRouteMap(rm); err != nil {
				return err
			}
			rc.RouteMaps[fields[1]] = rm
		default:
			return p.errf("unexpected %q in router section", fields[0])
		}
	}
}

func (p *parser) parseBGP(b *BGP) error {
	for {
		fields, ok := p.next()
		if !ok {
			return p.errf("unterminated bgp block")
		}
		switch fields[0] {
		case "exit":
			return nil
		case "network":
			if len(fields) != 2 {
				return p.errf("network wants a prefix")
			}
			pfx, err := route.ParsePrefix(fields[1])
			if err != nil {
				return p.errf("%v", err)
			}
			b.Networks = append(b.Networks, pfx)
		case "aggregate":
			if len(fields) != 2 {
				return p.errf("aggregate wants a prefix")
			}
			pfx, err := route.ParsePrefix(fields[1])
			if err != nil {
				return p.errf("%v", err)
			}
			b.Aggregates = append(b.Aggregates, pfx)
		case "neighbor":
			// neighbor <name> import-map|export-map <route-map>
			if len(fields) != 4 {
				return p.errf("neighbor wants '<name> import-map|export-map <map>'")
			}
			switch fields[2] {
			case "import-map":
				b.ImportPolicy[fields[1]] = fields[3]
			case "export-map":
				b.ExportPolicy[fields[1]] = fields[3]
			default:
				return p.errf("unknown neighbor directive %q", fields[2])
			}
		default:
			if blockEnders[fields[0]] {
				p.pushBack(fields)
				return nil
			}
			return p.errf("unexpected %q in bgp block", fields[0])
		}
	}
}

func (p *parser) parseOSPF(o *OSPF) error {
	for {
		fields, ok := p.next()
		if !ok {
			return p.errf("unterminated ospf block")
		}
		switch fields[0] {
		case "exit":
			return nil
		case "network":
			if len(fields) != 2 {
				return p.errf("network wants a prefix")
			}
			pfx, err := route.ParsePrefix(fields[1])
			if err != nil {
				return p.errf("%v", err)
			}
			o.Networks = append(o.Networks, pfx)
		default:
			if blockEnders[fields[0]] {
				p.pushBack(fields)
				return nil
			}
			return p.errf("unexpected %q in ospf block", fields[0])
		}
	}
}

func (p *parser) parseInterface(itf *Interface) error {
	for {
		fields, ok := p.next()
		if !ok {
			return p.errf("unterminated interface block")
		}
		switch fields[0] {
		case "exit":
			return nil
		case "cost":
			if len(fields) != 2 {
				return p.errf("cost wants a value")
			}
			c, err := strconv.Atoi(fields[1])
			if err != nil || c < 0 {
				return p.errf("bad cost %q", fields[1])
			}
			itf.OSPFCost = c
		case "passive":
			itf.Passive = true
		case "acl-in", "acl-out":
			entry, err := p.parseACLEntry(fields[1:])
			if err != nil {
				return err
			}
			if fields[0] == "acl-in" {
				if itf.ACLIn == nil {
					itf.ACLIn = &ACL{}
				}
				itf.ACLIn.Entries = append(itf.ACLIn.Entries, entry)
			} else {
				if itf.ACLOut == nil {
					itf.ACLOut = &ACL{}
				}
				itf.ACLOut.Entries = append(itf.ACLOut.Entries, entry)
			}
		default:
			if blockEnders[fields[0]] {
				p.pushBack(fields)
				return nil
			}
			return p.errf("unexpected %q in interface block", fields[0])
		}
	}
}

func (p *parser) parseACLEntry(fields []string) (ACLEntry, error) {
	if len(fields) != 2 {
		return ACLEntry{}, p.errf("acl entry wants 'permit|deny <prefix>|any'")
	}
	var e ACLEntry
	switch fields[0] {
	case "permit":
		e.Action = Permit
	case "deny":
		e.Action = Deny
	default:
		return ACLEntry{}, p.errf("acl action must be permit or deny")
	}
	if fields[1] == "any" {
		e.Any = true
		return e, nil
	}
	pfx, err := route.ParsePrefix(fields[1])
	if err != nil {
		return ACLEntry{}, p.errf("%v", err)
	}
	e.Prefix = pfx
	return e, nil
}

func (p *parser) parseRouteMap(rm *RouteMap) error {
	for {
		fields, ok := p.next()
		if !ok {
			return p.errf("unterminated route-map block")
		}
		if fields[0] == "exit" {
			return nil
		}
		// <seq> permit|deny [prefix <pfx> [ge N] [le N]] [community <c>]
		//       [set local-pref N] [set med N] [set community <c>] [set prepend N]
		seq, err := strconv.Atoi(fields[0])
		if err != nil {
			if blockEnders[fields[0]] {
				p.pushBack(fields)
				return nil
			}
			return p.errf("route-map clause must start with a sequence number")
		}
		c := &Clause{Seq: seq}
		if len(fields) < 2 {
			return p.errf("clause action must be permit or deny")
		}
		switch fields[1] {
		case "permit":
			c.Action = Permit
		case "deny":
			c.Action = Deny
		default:
			return p.errf("clause action must be permit or deny")
		}
		i := 2
		for i < len(fields) {
			switch fields[i] {
			case "any":
				i++
			case "prefix":
				if i+1 >= len(fields) {
					return p.errf("prefix wants a value")
				}
				pfx, err := route.ParsePrefix(fields[i+1])
				if err != nil {
					return p.errf("%v", err)
				}
				c.MatchPrefix = &PrefixMatch{Prefix: pfx}
				i += 2
				for i+1 < len(fields) && (fields[i] == "ge" || fields[i] == "le") {
					v, err := strconv.Atoi(fields[i+1])
					if err != nil {
						return p.errf("bad %s value", fields[i])
					}
					if fields[i] == "ge" {
						c.MatchPrefix.GE = v
					} else {
						c.MatchPrefix.LE = v
					}
					i += 2
				}
			case "community":
				if i+1 >= len(fields) {
					return p.errf("community wants a value")
				}
				v, err := strconv.ParseUint(fields[i+1], 10, 64)
				if err != nil {
					return p.errf("bad community %q", fields[i+1])
				}
				c.MatchCommunity = v
				i += 2
			case "set":
				if i+2 >= len(fields) {
					return p.errf("set wants an attribute and value")
				}
				v := fields[i+2]
				switch fields[i+1] {
				case "local-pref":
					n, err := strconv.Atoi(v)
					if err != nil {
						return p.errf("bad local-pref %q", v)
					}
					c.SetLocalPref = n
				case "med":
					n, err := strconv.Atoi(v)
					if err != nil {
						return p.errf("bad med %q", v)
					}
					c.SetMED, c.SetMEDValid = n, true
				case "community":
					n, err := strconv.ParseUint(v, 10, 64)
					if err != nil {
						return p.errf("bad community %q", v)
					}
					c.AddCommunity = n
				case "prepend":
					n, err := strconv.Atoi(v)
					if err != nil {
						return p.errf("bad prepend %q", v)
					}
					c.PrependAS = n
				default:
					return p.errf("unknown set attribute %q", fields[i+1])
				}
				i += 3
			default:
				return p.errf("unexpected token %q in route-map clause", fields[i])
			}
		}
		rm.Clauses = append(rm.Clauses, c)
	}
}

// Format renders the network in the textual format accepted by Parse.
// Parse(Format(n)) reproduces an equivalent network, which the tests
// verify (round-trip property).
func Format(n *Network) string {
	var b strings.Builder
	t := n.Topology
	b.WriteString("topology\n")
	for i := 0; i < t.NumRouters(); i++ {
		fmt.Fprintf(&b, "  router %s\n", t.Name(topology.RouterID(i)))
	}
	for _, l := range t.Links() {
		fmt.Fprintf(&b, "  link %s %s\n", t.Name(l.A), t.Name(l.B))
	}
	b.WriteString("end\n")
	for i, rc := range n.Routers {
		id := topology.RouterID(i)
		fmt.Fprintf(&b, "\nrouter %s\n", rc.Name)
		if rc.BGP != nil {
			fmt.Fprintf(&b, "  bgp %d\n", rc.BGP.ASN)
			for _, p := range rc.BGP.Networks {
				fmt.Fprintf(&b, "    network %s\n", p)
			}
			for _, p := range rc.BGP.Aggregates {
				fmt.Fprintf(&b, "    aggregate %s\n", p)
			}
			for _, nbr := range sortedKeys(rc.BGP.ImportPolicy) {
				fmt.Fprintf(&b, "    neighbor %s import-map %s\n", nbr, rc.BGP.ImportPolicy[nbr])
			}
			for _, nbr := range sortedKeys(rc.BGP.ExportPolicy) {
				fmt.Fprintf(&b, "    neighbor %s export-map %s\n", nbr, rc.BGP.ExportPolicy[nbr])
			}
			b.WriteString("  exit\n")
		}
		if rc.OSPF != nil {
			b.WriteString("  ospf\n")
			for _, p := range rc.OSPF.Networks {
				fmt.Fprintf(&b, "    network %s\n", p)
			}
			b.WriteString("  exit\n")
		}
		for _, s := range rc.Static {
			fmt.Fprintf(&b, "  static %s via %s\n", s.Prefix, s.NextHop)
		}
		lids := make([]int, 0, len(rc.Interfaces))
		for lid := range rc.Interfaces {
			lids = append(lids, int(lid))
		}
		sort.Ints(lids)
		for _, lidInt := range lids {
			lid := topology.LinkID(lidInt)
			itf := rc.Interfaces[lid]
			nbr := t.Link(lid).Other(id)
			fmt.Fprintf(&b, "  interface %s\n", t.Name(nbr))
			if itf.OSPFCost != 1 {
				fmt.Fprintf(&b, "    cost %d\n", itf.OSPFCost)
			}
			if itf.Passive {
				b.WriteString("    passive\n")
			}
			writeACL(&b, "acl-in", itf.ACLIn)
			writeACL(&b, "acl-out", itf.ACLOut)
			b.WriteString("  exit\n")
		}
		for _, name := range sortedKeys(rc.RouteMaps) {
			fmt.Fprintf(&b, "  route-map %s\n", name)
			for _, c := range rc.RouteMaps[name].Clauses {
				fmt.Fprintf(&b, "    %s\n", formatClause(c))
			}
			b.WriteString("  exit\n")
		}
		b.WriteString("end\n")
	}
	return b.String()
}

func writeACL(b *strings.Builder, kind string, acl *ACL) {
	if acl == nil {
		return
	}
	for _, e := range acl.Entries {
		target := "any"
		if !e.Any {
			target = e.Prefix.String()
		}
		fmt.Fprintf(b, "    %s %s %s\n", kind, e.Action, target)
	}
}

func formatClause(c *Clause) string {
	var parts []string
	parts = append(parts, strconv.Itoa(c.Seq), c.Action.String())
	if c.MatchPrefix != nil {
		parts = append(parts, "prefix", c.MatchPrefix.Prefix.String())
		if c.MatchPrefix.GE != 0 {
			parts = append(parts, "ge", strconv.Itoa(c.MatchPrefix.GE))
		}
		if c.MatchPrefix.LE != 0 {
			parts = append(parts, "le", strconv.Itoa(c.MatchPrefix.LE))
		}
	}
	if c.MatchCommunity != 0 {
		parts = append(parts, "community", strconv.FormatUint(c.MatchCommunity, 10))
	}
	if c.MatchPrefix == nil && c.MatchCommunity == 0 {
		parts = append(parts, "any")
	}
	if c.SetLocalPref > 0 {
		parts = append(parts, "set", "local-pref", strconv.Itoa(c.SetLocalPref))
	}
	if c.SetMEDValid {
		parts = append(parts, "set", "med", strconv.Itoa(c.SetMED))
	}
	if c.AddCommunity != 0 {
		parts = append(parts, "set", "community", strconv.FormatUint(c.AddCommunity, 10))
	}
	if c.PrependAS > 0 {
		parts = append(parts, "set", "prepend", strconv.Itoa(c.PrependAS))
	}
	return strings.Join(parts, " ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package sched is a work-stealing worker pool for prefix-scoped
// symbolic execution. The unit of work is one pipeline run (SRC + SPF
// for a handful of prefixes), so tasks are coarse — milliseconds to
// minutes — and the scheduler optimizes for makespan, not dispatch
// overhead:
//
//   - Each worker owns a cost-ordered queue (a max-heap on the caller's
//     cost estimate, submission order breaking ties). Sorted
//     largest-first seeding round-robined across queues starts the long
//     poles immediately (LPT scheduling); an idle worker steals the
//     most expensive task of a sibling's queue.
//   - Tasks may submit follow-up tasks (the degradation ladder's retry
//     rungs), which land on the submitting worker's own queue: a
//     degraded prefix re-enters the schedule instead of serializing an
//     exclusive retry phase.
//   - Workers never share mutable pipeline state: every task builds its
//     own bdd.Manager/symbol.Space. Telemetry is sharded per worker
//     (obs.Telemetry.Shard) and merged once in Wait, so the hot path
//     updates no cross-worker cachelines.
//   - The first task error aborts the pool: queued tasks are dropped,
//     running tasks finish (they observe cancellation through their own
//     interrupt hooks), and Wait returns that error. An Interrupt hook
//     (resil.SharedChecker.Fn) is polled before every dequeue so a
//     canceled run stops starting work within one task.
//
// A pool with one worker executes tasks strictly in cost order on the
// calling goroutine's schedule and is byte-for-byte deterministic.
package sched

import (
	"container/heap"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"sre/internal/obs"
	"sre/internal/resil"
)

// DefaultWorkers is the worker count used when the caller does not
// choose one: the number of CPUs the Go runtime may use.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Task is one unit of work. It receives the worker executing it, whose
// Tel shard it should report telemetry into and through which it may
// submit follow-up tasks. A non-nil error aborts the whole pool.
type Task func(w *Worker) error

// Config configures a Pool.
type Config struct {
	// Workers is the number of worker goroutines (min 1).
	Workers int
	// Interrupt, when non-nil, is polled by every worker before each
	// dequeue; a non-nil return aborts the pool with that error. It
	// must be safe for concurrent use (resil.SharedChecker.Fn — NOT
	// resil.Checker.Fn, which is single-threaded).
	Interrupt func() error
	// Telemetry, when non-nil, is the parent registry: each worker gets
	// a Shard of it and Wait merges the shards back. With one worker
	// the parent is used directly (no shard, no merge).
	Telemetry *obs.Telemetry
}

// Worker is the execution context handed to tasks.
type Worker struct {
	// ID is the worker index in [0, Workers).
	ID int
	// Tel is the worker's telemetry shard (the parent registry itself
	// in single-worker pools, nil when the pool has no telemetry).
	Tel *obs.Telemetry
	pool *Pool
}

// Submit enqueues a follow-up task on this worker's own queue. Used by
// tasks that decompose or retry (ladder rungs); the task is eligible
// for stealing like any other. Submitting to an aborted pool is a no-op.
func (w *Worker) Submit(cost int64, fn Task) { w.pool.push(w.ID, cost, fn) }

type item struct {
	cost int64
	seq  int64 // submission order, tie-break and FIFO among equals
	fn   Task
}

// workerQ is one worker's queue: a max-heap on (cost desc, seq asc).
type workerQ struct {
	mu    sync.Mutex
	items []item
}

func (q *workerQ) Len() int { return len(q.items) }
func (q *workerQ) Less(i, j int) bool {
	if q.items[i].cost != q.items[j].cost {
		return q.items[i].cost > q.items[j].cost
	}
	return q.items[i].seq < q.items[j].seq
}
func (q *workerQ) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *workerQ) Push(x interface{}) { q.items = append(q.items, x.(item)) }
func (q *workerQ) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// Pool runs tasks on a fixed set of workers. Create with New, submit
// with Go (or Worker.Submit from inside tasks), finish with Wait.
type Pool struct {
	cfg     Config
	queues  []*workerQ
	workers []*Worker
	shards  []*obs.Telemetry
	wg      sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	pending int   // submitted minus finished-or-dropped tasks
	nextSeq int64 // submission counter
	nextRR  int   // round-robin cursor for external submits
	sealed  bool  // Wait called: workers exit when drained
	stopped bool  // aborted: queued tasks are dropped
	err     error // first task/interrupt error
}

// New creates a pool and starts its workers. Workers below 1 is
// treated as 1.
func New(cfg Config) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	p := &Pool{cfg: cfg}
	p.cond = sync.NewCond(&p.mu)
	p.queues = make([]*workerQ, cfg.Workers)
	p.workers = make([]*Worker, cfg.Workers)
	if cfg.Telemetry != nil && cfg.Workers > 1 {
		p.shards = make([]*obs.Telemetry, cfg.Workers)
	}
	for i := 0; i < cfg.Workers; i++ {
		p.queues[i] = &workerQ{}
		w := &Worker{ID: i, Tel: cfg.Telemetry, pool: p}
		if p.shards != nil {
			p.shards[i] = cfg.Telemetry.Shard()
			p.shards[i].SetWorker(i)
			w.Tel = p.shards[i]
		}
		p.workers[i] = w
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.run(p.workers[i])
	}
	return p
}

// Go submits a task with a cost estimate. External submissions are
// round-robined across the worker queues; submit tasks sorted by
// decreasing cost so the seeding puts the largest tasks first on every
// queue. Submitting to an aborted pool drops the task silently (the
// pool already has an error to report).
func (p *Pool) Go(cost int64, fn Task) {
	p.mu.Lock()
	qi := p.nextRR
	p.nextRR = (p.nextRR + 1) % len(p.queues)
	p.mu.Unlock()
	p.push(qi, cost, fn)
}

func (p *Pool) push(qi int, cost int64, fn Task) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.pending++
	seq := p.nextSeq
	p.nextSeq++
	p.mu.Unlock()

	q := p.queues[qi]
	q.mu.Lock()
	heap.Push(q, item{cost: cost, seq: seq, fn: fn})
	q.mu.Unlock()

	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Wait seals the pool, waits for every submitted task to finish (or be
// dropped by an abort), merges the telemetry shards into the parent
// registry, and returns the first error, if any. The pool must not be
// used afterwards.
func (p *Pool) Wait() error {
	p.mu.Lock()
	p.sealed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	if p.cfg.Telemetry != nil {
		for _, s := range p.shards {
			p.cfg.Telemetry.Merge(s)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// abort records the first error, drops all queued tasks, and wakes
// every worker. Running tasks are not preempted; they observe
// cancellation through their own interrupt hooks.
func (p *Pool) abort(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.stopped = true
	p.mu.Unlock()

	dropped := 0
	for _, q := range p.queues {
		q.mu.Lock()
		dropped += len(q.items)
		q.items = nil
		q.mu.Unlock()
	}

	p.mu.Lock()
	p.pending -= dropped
	p.cond.Broadcast()
	p.mu.Unlock()
}

// take pops the best task for worker w: its own queue first, then a
// steal sweep over the siblings in deterministic ring order.
func (p *Pool) take(w *Worker) (item, bool) {
	n := len(p.queues)
	for off := 0; off < n; off++ {
		q := p.queues[(w.ID+off)%n]
		q.mu.Lock()
		if len(q.items) > 0 {
			it := heap.Pop(q).(item)
			q.mu.Unlock()
			return it, true
		}
		q.mu.Unlock()
	}
	return item{}, false
}

func (p *Pool) run(w *Worker) {
	defer p.wg.Done()
	for {
		if p.cfg.Interrupt != nil {
			if err := p.cfg.Interrupt(); err != nil {
				p.abort(err)
			}
		}
		it, ok := p.take(w)
		if !ok {
			p.mu.Lock()
			for !p.stopped && !(p.sealed && p.pending == 0) && !p.someWork() {
				p.cond.Wait()
			}
			done := p.stopped || (p.sealed && p.pending == 0)
			p.mu.Unlock()
			if done {
				return
			}
			continue
		}
		err := p.runTask(w, it)
		if err != nil {
			p.abort(err)
		}
		p.mu.Lock()
		p.pending--
		if p.pending == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// someWork reports whether any queue holds a task. Called with p.mu
// held; the p.mu→q.mu lock order is consistent everywhere.
func (p *Pool) someWork() bool {
	for _, q := range p.queues {
		q.mu.Lock()
		n := len(q.items)
		q.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// runTask is the per-task panic firewall. Expected panics (BDD
// node-table overflow, interruptions) are converted to typed errors by
// the pipeline layers before they reach the pool, so anything arriving
// here is a defect; it is converted to resil.ErrInternal instead of
// killing the process from a worker goroutine (where no caller-side
// recover could catch it).
func (p *Pool) runTask(w *Worker, it item) (err error) {
	var t0 time.Time
	var cpu0 int64
	recording := w.Tel.Recording()
	if recording {
		t0 = time.Now()
		cpu0 = obs.ThreadCPUNanos()
	}
	defer func() {
		if r := recover(); r != nil {
			w.Tel.Counter("resilience.panics").Inc()
			err = fmt.Errorf("%w: panic in worker %d: %v\n%s",
				resil.ErrInternal, w.ID, r, debug.Stack())
		}
		if recording {
			cpu := obs.ThreadCPUNanos() - cpu0
			if cpu < 0 { // thread migration: rusage is best-effort
				cpu = 0
			}
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			w.Tel.Record(t0, obs.TraceEvent{Stage: "task",
				Wall: time.Since(t0).Nanoseconds(), CPU: cpu,
				Count: it.cost, Outcome: outcome})
		}
	}()
	return it.fn(w)
}

package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"sre/internal/obs"
	"sre/internal/resil"
)

// gate blocks the single worker of a pool so a test can stage queue
// contents before any of them run.
func gate() (Task, chan struct{}) {
	ch := make(chan struct{})
	return func(w *Worker) error { <-ch; return nil }, ch
}

func TestSingleWorkerRunsInCostOrder(t *testing.T) {
	p := New(Config{Workers: 1})
	g, release := gate()
	p.Go(1000, g)
	var mu sync.Mutex
	var order []int64
	costs := []int64{3, 7, 7, 1, 9}
	for _, c := range costs {
		c := c
		p.Go(c, func(w *Worker) error {
			mu.Lock()
			order = append(order, c)
			mu.Unlock()
			return nil
		})
	}
	close(release)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	// Max-heap on cost, submission order breaking ties: the two 7s keep
	// their relative order.
	want := []int64{9, 7, 7, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestSubmitFromTask(t *testing.T) {
	p := New(Config{Workers: 3})
	var ran atomic.Int64
	var submit func(depth int) Task
	submit = func(depth int) Task {
		return func(w *Worker) error {
			ran.Add(1)
			if depth > 0 {
				w.Submit(int64(depth), submit(depth-1))
				w.Submit(int64(depth), submit(depth-1))
			}
			return nil
		}
	}
	p.Go(10, submit(3))
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	// A full binary recursion of depth 3: 1+2+4+8 tasks.
	if got := ran.Load(); got != 15 {
		t.Fatalf("ran %d tasks, want 15", got)
	}
}

func TestAbortDropsQueuedTasks(t *testing.T) {
	p := New(Config{Workers: 1})
	g, release := gate()
	p.Go(1000, g)
	boom := errors.New("boom")
	p.Go(100, func(w *Worker) error { return boom })
	var ran atomic.Int64
	for i := 0; i < 5; i++ {
		p.Go(1, func(w *Worker) error { ran.Add(1); return nil })
	}
	close(release)
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want the task error", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d queued tasks ran after the abort, want 0", got)
	}
}

func TestSubmitAfterAbortIsDropped(t *testing.T) {
	p := New(Config{Workers: 1})
	boom := errors.New("boom")
	p.Go(1, func(w *Worker) error { return boom })
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	p.Go(1, func(w *Worker) error { t.Error("task ran on an aborted pool"); return nil })
}

func TestPanicFirewall(t *testing.T) {
	tel := obs.New()
	p := New(Config{Workers: 2, Telemetry: tel})
	p.Go(1, func(w *Worker) error { panic("kaboom") })
	err := p.Wait()
	if !errors.Is(err, resil.ErrInternal) {
		t.Fatalf("Wait = %v, want resil.ErrInternal", err)
	}
	if got := tel.Snapshot().Counters["resilience.panics"]; got != 1 {
		t.Fatalf("resilience.panics = %d, want 1", got)
	}
}

func TestInterruptAbortsPool(t *testing.T) {
	stop := errors.New("interrupted")
	var tripped atomic.Bool
	p := New(Config{Workers: 2, Interrupt: func() error {
		if tripped.Load() {
			return stop
		}
		return nil
	}})
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		p.Go(1, func(w *Worker) error {
			if ran.Add(1) == 3 {
				tripped.Store(true)
			}
			return nil
		})
	}
	if err := p.Wait(); !errors.Is(err, stop) {
		t.Fatalf("Wait = %v, want the interrupt error", err)
	}
	if got := ran.Load(); got == 100 {
		t.Fatal("interrupt did not drop any queued task")
	}
}

func TestTelemetryShardsMerge(t *testing.T) {
	tel := obs.New()
	p := New(Config{Workers: 4, Telemetry: tel})
	for i := 0; i < 40; i++ {
		p.Go(1, func(w *Worker) error {
			w.Tel.Counter("test.tasks").Inc()
			w.Tel.Gauge("test.high").Max(float64(w.ID))
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if got := snap.Counters["test.tasks"]; got != 40 {
		t.Fatalf("merged counter = %d, want 40", got)
	}
	if got := snap.Gauges["test.high"]; got > 3 {
		t.Fatalf("merged gauge = %v, want max worker ID <= 3", got)
	}
}

// TestStress is the scheduler's -race workout: several rounds of many
// tiny tasks on few workers, with follow-up submissions and one
// injected mid-run cancellation per round, so stealing, sharded
// telemetry, abort draining, and the pending accounting all interleave.
func TestStress(t *testing.T) {
	stop := errors.New("canceled")
	for round := 0; round < 8; round++ {
		tel := obs.New()
		var tripped atomic.Bool
		p := New(Config{
			Workers:   3,
			Telemetry: tel,
			Interrupt: func() error {
				if tripped.Load() {
					return stop
				}
				return nil
			},
		})
		var ran atomic.Int64
		cancelAt := int64(100 + round*50)
		for i := 0; i < 400; i++ {
			i := i
			p.Go(int64(i%7), func(w *Worker) error {
				w.Tel.Counter("stress.tasks").Inc()
				if ran.Add(1) == cancelAt && round%2 == 0 {
					tripped.Store(true)
				}
				if i%5 == 0 {
					w.Submit(1, func(w *Worker) error {
						w.Tel.Counter("stress.follow_ups").Inc()
						ran.Add(1)
						return nil
					})
				}
				return nil
			})
		}
		err := p.Wait()
		canceled := tripped.Load()
		if canceled && !errors.Is(err, stop) {
			t.Fatalf("round %d: Wait = %v, want the injected cancellation", round, err)
		}
		if !canceled && err != nil {
			t.Fatalf("round %d: Wait = %v", round, err)
		}
		if !canceled {
			snap := tel.Snapshot()
			if got := snap.Counters["stress.tasks"]; got != 400 {
				t.Fatalf("round %d: merged task counter = %d, want 400", round, got)
			}
			if got := snap.Counters["stress.follow_ups"]; got != 80 {
				t.Fatalf("round %d: merged follow-up counter = %d, want 80", round, got)
			}
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
	// Workers below 1 are clamped rather than rejected.
	p := New(Config{Workers: 0})
	var ran atomic.Int64
	p.Go(1, func(w *Worker) error { ran.Add(1); return nil })
	if err := p.Wait(); err != nil || ran.Load() != 1 {
		t.Fatalf("clamped pool: err=%v ran=%d", err, ran.Load())
	}
}

func TestStealRunsEverything(t *testing.T) {
	// One long task pins worker 0; the rest of its round-robined queue
	// must be stolen by the idle workers.
	p := New(Config{Workers: 4})
	block := make(chan struct{})
	p.Go(1000, func(w *Worker) error { <-block; return nil })
	var ran atomic.Int64
	done := make(chan struct{})
	for i := 0; i < 99; i++ {
		p.Go(1, func(w *Worker) error {
			if ran.Add(1) == 99 {
				close(done)
			}
			return nil
		})
	}
	<-done // all 99 finish while worker 0 is still blocked
	close(block)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 99 {
		t.Fatalf("ran %d, want 99", got)
	}
}


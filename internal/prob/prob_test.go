package prob

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteTail computes P(X > k) by enumerating outcomes for small n.
func bruteTail(n, k int, p float64) float64 {
	total := 0.0
	for bits := 0; bits < 1<<n; bits++ {
		fails := 0
		w := 1.0
		for i := 0; i < n; i++ {
			if bits>>i&1 == 1 {
				fails++
				w *= p
			} else {
				w *= 1 - p
			}
		}
		if fails > k {
			total += w
		}
	}
	return total
}

func TestBinomialTailSmall(t *testing.T) {
	for _, n := range []int{1, 4, 8, 12} {
		for k := 0; k <= n; k++ {
			for _, p := range []float64{0.001, 0.1, 0.5} {
				got := BinomialTail(n, k, p)
				want := bruteTail(n, k, p)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("n=%d k=%d p=%v: got %v want %v", n, k, p, got, want)
				}
			}
		}
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if BinomialTail(10, 10, 0.5) != 0 || BinomialTail(10, 15, 0.5) != 0 {
		t.Error("tail beyond n must be 0")
	}
	if got := BinomialTail(10, 0, 0.0); got != 0 {
		t.Errorf("p=0: tail %v", got)
	}
	// p=1: all fail; P(X>k) = 1 for k < n.
	if got := BinomialTail(3, 1, 1.0); math.Abs(got-1) > 1e-12 {
		t.Errorf("p=1: tail %v", got)
	}
}

func TestKForImprecision(t *testing.T) {
	// 48 links at 0.001: P(>0 failures) ≈ 4.7%, P(>1) ≈ 0.11%,
	// P(>2) ≈ 1.7e-5 < 1e-4 → k = 2.
	if k := KForImprecision(48, 0.001, 1e-4); k != 2 {
		t.Errorf("k = %d, want 2", k)
	}
	// Tiny imprecision needs a deeper budget.
	k1 := KForImprecision(200, 0.001, 1e-2)
	k2 := KForImprecision(200, 0.001, 1e-8)
	if k2 <= k1 {
		t.Errorf("stricter imprecision should need larger k: %d vs %d", k1, k2)
	}
	// Budget never exceeds n.
	if k := KForImprecision(5, 0.99, 1e-12); k > 5 {
		t.Errorf("k = %d out of range", k)
	}
}

func TestQuickTailMonotonicInK(t *testing.T) {
	f := func(nRaw, kRaw uint8, pRaw float64) bool {
		n := 1 + int(nRaw)%14
		k := int(kRaw) % (n + 1)
		p := math.Mod(math.Abs(pRaw), 1)
		if k == 0 || math.IsNaN(p) {
			return true
		}
		return BinomialTail(n, k, p) <= BinomialTail(n, k-1, p)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBudgetSoundness(t *testing.T) {
	// The returned k must actually achieve the imprecision.
	f := func(nRaw uint8, impExp uint8) bool {
		n := 4 + int(nRaw)%12
		imp := math.Pow(10, -float64(2+impExp%5))
		k := KForImprecision(n, 0.01, imp)
		if k >= n {
			return true
		}
		return bruteTail(n, k, 0.01) < imp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package prob provides the failure-model probability utilities of the
// paper: independent Bernoulli link/node failures and the binomial tail
// bound of §7.1 that picks the minimum failure budget k guaranteeing
// that ignoring scenarios with more than k failures loses at most the
// requested imprecision.
package prob

import (
	"math"
	"sync/atomic"

	"sre/internal/obs"
)

// tel holds the package-level telemetry hook; prob functions are free
// functions, so the hook is installed globally (atomically, since
// analyses may run concurrently with installation).
var tel atomic.Pointer[obs.Telemetry]

// SetTelemetry installs (or, with nil, removes) the telemetry sink for
// the package's counters: prob.tail_evals counts BinomialTail
// evaluations, prob.budget_scans counts KForImprecision searches.
func SetTelemetry(t *obs.Telemetry) { tel.Store(t) }

// LinkModel describes independent link failures.
type LinkModel struct {
	// PDown is the probability that any given link is down.
	PDown float64
}

// NodeModel describes independent node failures layered on top of link
// failures: a link behaves as down when it is down itself or either
// endpoint node is down (§6.4, "node failures (dependent link
// failures)").
type NodeModel struct {
	PLinkDown float64
	PNodeDown float64
}

// BinomialTail returns P(X > k) for X ~ Binomial(n, p).
func BinomialTail(n, k int, p float64) float64 {
	tel.Load().Counter("prob.tail_evals").Inc()
	if k >= n {
		return 0
	}
	switch {
	case math.IsNaN(p) || p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	// Sum P(X = m) for m in [0, k], in log space for stability, then
	// complement.
	cum := 0.0
	logC := 0.0 // log C(n, 0)
	for m := 0; m <= k; m++ {
		if m > 0 {
			logC += math.Log(float64(n-m+1)) - math.Log(float64(m))
		}
		cum += math.Exp(logC + float64(m)*math.Log(p) + float64(n-m)*math.Log1p(-p))
	}
	if cum > 1 {
		cum = 1
	}
	return 1 - cum
}

// KForImprecision returns the minimum k such that the probability of
// more than k simultaneous failures among n independent elements, each
// failing with probability pDown, is below imprecision (§7.1). Analyses
// that prune scenarios with more than k failures then under-estimate
// probabilities by less than imprecision.
func KForImprecision(n int, pDown, imprecision float64) int {
	tel.Load().Counter("prob.budget_scans").Inc()
	for k := 0; k < n; k++ {
		if BinomialTail(n, k, pDown) < imprecision {
			return k
		}
	}
	return n
}

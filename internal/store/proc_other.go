//go:build !unix

package store

import (
	"errors"
	"os"
)

// errNoSpace is the injected FaultENOSPC error.
var errNoSpace = errors.New("no space left on device")

// pidAlive cannot probe liveness without unix signals; stale-lock
// takeover falls back to the LockTTL age check.
func pidAlive(pid int) (alive, known bool) { return false, false }

// killSelf approximates SIGKILL with an immediate exit.
func killSelf() { os.Exit(137) }

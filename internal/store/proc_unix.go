//go:build unix

package store

import (
	"os"
	"syscall"
)

// errNoSpace is the injected FaultENOSPC error.
var errNoSpace error = syscall.ENOSPC

// pidAlive probes whether pid is running via signal 0. known=false
// means the platform could not tell (never the case on unix: EPERM
// still proves existence).
func pidAlive(pid int) (alive, known bool) {
	err := syscall.Kill(pid, 0)
	if err == nil || err == syscall.EPERM {
		return true, true
	}
	return false, true
}

// killSelf delivers SIGKILL to the current process — the injected
// crash-mid-write fault. No deferred functions, no flushes.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}

// Package store is a crash-safe, content-addressed on-disk cache of
// per-prefix verification results. Keys are hex digests computed by the
// caller (internal/analysis hashes the prefix's config slice, topology,
// options, and kernel choice); payloads are opaque bytes (the caller
// stores the coord wire forms). The robustness contract is the design
// center:
//
//   - records are written to a temp file and atomically renamed, so a
//     reader never observes a partial record under a valid key;
//   - every record is framed with a length prefix and a crc64 checksum
//     trailer and verified on read — a corrupt, truncated, or
//     version-mismatched record is quarantined (moved aside, counted,
//     surfaced as a `store.quarantine` flight-recorder event) and
//     reported as a miss, so the caller transparently recomputes;
//   - mutating operations take an owner lock file with stale-lock
//     takeover (dead-pid or age based), making concurrent writers safe;
//     readers never take the lock and are always safe against writers
//     thanks to the atomic rename.
//
// A damaged cache can therefore degrade performance but never
// correctness or availability.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sre/internal/obs"
)

// Layout inside the store directory.
const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	lockFile      = "LOCK"
	tmpPrefix     = ".tmp-"
	recordExt     = ".rec"
)

// DefaultLockTTL is how old an unexplained lock file must be before a
// writer steals it when the owning PID cannot be probed.
const DefaultLockTTL = 5 * time.Minute

// Options configures a Store.
type Options struct {
	// MaxRecordBytes bounds one record's payload (0 = DefaultMaxRecordBytes).
	// Oversized declared lengths are corruption and quarantine the record.
	MaxRecordBytes int64
	// LockTTL is the stale-lock takeover age (0 = DefaultLockTTL): a
	// lock file older than this whose owner cannot be confirmed alive
	// is broken and taken over.
	LockTTL time.Duration
	// Telemetry receives store.* counters and the store.quarantine
	// flight-recorder event; nil disables both at zero cost.
	Telemetry *obs.Telemetry
	// Fault injects deterministic disk faults for testing: called with
	// the zero-based index of each Put, its return selects the fault
	// (see the Fault* constants; "" = none). Nil injects nothing.
	Fault FaultFunc
}

// Metrics are the store's operation counters since Open.
type Metrics struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	PutErrors   int64 `json:"put_errors"`
	Quarantined int64 `json:"quarantined"`
}

// Store is an open result cache. Safe for concurrent use by multiple
// goroutines and, for the on-disk state, multiple processes.
type Store struct {
	dir  string
	opts Options
	tel  *obs.Telemetry

	mu      sync.Mutex
	puts    int // Put index, drives fault injection
	tmpSeq  int
	metrics Metrics
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.LockTTL <= 0 {
		opts.LockTTL = DefaultLockTTL
	}
	for _, sub := range []string{objectsDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir, opts: opts, tel: opts.Telemetry}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the store handle. The on-disk state needs no
// finalization — every mutation is already durable or rolled back.
func (s *Store) Close() error { return nil }

// Metrics returns a snapshot of the operation counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// validKey reports whether key is a well-formed content address (hex,
// long enough to fan out). Rejecting anything else keeps hostile keys
// from escaping the objects directory.
func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, objectsDir, key[:2], key+recordExt)
}

// Get returns the payload stored under key, or ok=false on a miss. A
// record that fails verification (truncated, bit-flipped, version
// skew, oversized) is quarantined and reported as a miss — the caller
// recomputes and the cache heals itself.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	f, err := os.Open(s.objectPath(key))
	if err != nil {
		s.count(func(m *Metrics) { m.Misses++ }, "store.misses")
		return nil, false
	}
	payload, rerr := ReadRecord(f, s.opts.MaxRecordBytes)
	f.Close()
	if rerr != nil {
		s.Quarantine(key, rerr.Error())
		s.count(func(m *Metrics) { m.Misses++ }, "store.misses")
		return nil, false
	}
	s.count(func(m *Metrics) { m.Hits++ }, "store.hits")
	return payload, true
}

// Put stores payload under key, atomically: the framed record is
// written (and fsynced) to a temp file in the same directory, then
// renamed into place. Concurrent writers of the same key are benign —
// content addressing means they write identical records and rename is
// atomic — but the owner lock still serializes them so a half-written
// temp file is never observable as racy directory churn. Put is
// best-effort from the caller's point of view: an error means the
// result was not cached, never that the run failed.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if int64(len(payload)) > s.maxRecord() {
		s.count(func(m *Metrics) { m.PutErrors++ }, "store.put_errors")
		return &SizeError{Declared: int64(len(payload)), Max: s.maxRecord()}
	}
	s.mu.Lock()
	fault := ""
	if s.opts.Fault != nil {
		fault = s.opts.Fault(s.puts)
	}
	s.puts++
	s.tmpSeq++
	tmpName := fmt.Sprintf("%s%d-%d", tmpPrefix, os.Getpid(), s.tmpSeq)
	s.mu.Unlock()

	err := s.withLock(func() error {
		return s.putLocked(key, payload, tmpName, fault)
	})
	if err != nil {
		s.count(func(m *Metrics) { m.PutErrors++ }, "store.put_errors")
		return err
	}
	s.count(func(m *Metrics) { m.Puts++ }, "store.puts")
	return nil
}

func (s *Store) putLocked(key string, payload []byte, tmpName, fault string) error {
	rec := EncodeRecord(payload)
	switch fault {
	case FaultTorn:
		// A persisted torn write: the record survives a crash cut off
		// mid-payload. Rename it into place so the next reader sees it.
		rec = rec[:recordHeaderLen+len(payload)/2]
	case FaultFlip:
		rec = append([]byte(nil), rec...)
		rec[recordHeaderLen+len(payload)/2] ^= 0x40
	case FaultENOSPC:
		return fmt.Errorf("store: injected fault: %w", errNoSpace)
	}
	objDir := filepath.Join(s.dir, objectsDir, key[:2])
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(objDir, tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(rec)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	switch fault {
	case FaultKillWrite:
		// SIGKILL between temp-write and rename: the crash-mid-write
		// scenario. The orphan temp file must never surface as a hit.
		killSelf()
	case FaultRename:
		// A failed rename leaves the fsynced temp file orphaned; GC and
		// Verify clean such orphans up.
		return fmt.Errorf("store: injected fault: rename %s: permission denied", tmpName)
	}
	if err := os.Rename(tmp, s.objectPath(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(objDir)
	return nil
}

// Quarantine moves the record under key aside into the quarantine
// directory (tagged with a nanosecond suffix so repeated offenders
// never collide), counts it, and records a store.quarantine flight
// event. Used internally on verification failures and by callers whose
// payload-level decode failed (a checksum-valid record whose contents
// are semantically unusable).
func (s *Store) Quarantine(key, reason string) {
	if !validKey(key) {
		return
	}
	dst := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s-%d%s", key, time.Now().UnixNano(), recordExt))
	err := s.withLock(func() error {
		return os.Rename(s.objectPath(key), dst)
	})
	if err != nil {
		// The record may already be gone (a concurrent reader got there
		// first); removal is the fallback so a corrupt record never
		// serves twice.
		os.Remove(s.objectPath(key))
	}
	s.count(func(m *Metrics) { m.Quarantined++ }, "store.quarantined")
	if s.tel.Recording() {
		s.tel.Record(time.Time{}, obs.TraceEvent{
			Stage: "store.quarantine", Prefix: key[:8], Outcome: reason})
	}
}

func (s *Store) maxRecord() int64 {
	if s.opts.MaxRecordBytes > 0 {
		return s.opts.MaxRecordBytes
	}
	return DefaultMaxRecordBytes
}

func (s *Store) count(f func(*Metrics), counter string) {
	s.mu.Lock()
	f(&s.metrics)
	s.mu.Unlock()
	s.tel.Counter(counter).Inc()
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss; best-effort (not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// lockInfo is the JSON body of the owner lock file.
type lockInfo struct {
	PID  int       `json:"pid"`
	Time time.Time `json:"time"`
}

// withLock runs f holding the store's owner lock. Acquisition retries
// briefly, then attempts stale-lock takeover: a lock whose owner PID is
// dead, or older than LockTTL, is broken. In-process contention is
// serialized by a mutex first so the on-disk protocol only arbitrates
// between processes.
func (s *Store) withLock(f func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, lockFile)
	deadline := time.Now().Add(2 * time.Second)
	for {
		lf, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			body, _ := json.Marshal(lockInfo{PID: os.Getpid(), Time: time.Now()})
			_, _ = lf.Write(body)
			_ = lf.Close()
			ferr := f()
			_ = os.Remove(path)
			return ferr
		}
		if !os.IsExist(err) {
			return fmt.Errorf("store: acquiring lock: %w", err)
		}
		if s.lockStale(path) {
			_ = os.Remove(path)
			continue
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("store: lock %s held by another writer", path)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// lockStale reports whether the lock file at path can be broken: its
// recorded owner is provably dead, or it is older than LockTTL (crashed
// owner on a platform where liveness cannot be probed, or an unreadable
// lock body).
func (s *Store) lockStale(path string) bool {
	fi, err := os.Stat(path)
	if err != nil {
		return false // vanished: the holder released it, retry Open
	}
	if data, rerr := os.ReadFile(path); rerr == nil {
		var li lockInfo
		if json.Unmarshal(data, &li) == nil && li.PID > 0 {
			if alive, known := pidAlive(li.PID); known {
				if li.PID == os.Getpid() {
					// Our own PID with the in-process mutex held means a
					// previous run of this process died holding it (PID
					// reuse) — stale either way.
					return true
				}
				return !alive
			}
		}
	}
	return time.Since(fi.ModTime()) > s.opts.LockTTL
}

// ReadFileRecord reads and verifies the record in file at path,
// returning its payload. Used by fsck and tests.
func readFileRecord(path string, max int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := ReadRecord(f, max)
	if err != nil {
		return nil, err
	}
	// Trailing garbage after a valid frame is corruption too: the file
	// is not exactly one record.
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, &CorruptError{Reason: "trailing bytes after record"}
	}
	return payload, nil
}

package store

// Deterministic disk-fault injection, the store-side half of the
// SRE_FAULT machinery (internal/coord parses the plan syntax and
// exposes FaultPlan.DiskFault as a FaultFunc). Faults are keyed by the
// zero-based index of the Put that triggers them, so recovery tests and
// the CI crash-mid-write smoke drive exact failure points.
const (
	// FaultTorn persists a record truncated mid-payload — the on-disk
	// signature of a torn write that a crash made durable.
	FaultTorn = "torn"
	// FaultFlip flips one bit in the payload before the record lands —
	// silent media corruption.
	FaultFlip = "flip"
	// FaultENOSPC fails the Put with ENOSPC before any byte is written.
	FaultENOSPC = "enospc"
	// FaultRename fails the rename after the temp file is fully written
	// and fsynced, leaving an orphan temp for GC/Verify to reap.
	FaultRename = "rename"
	// FaultKillWrite SIGKILLs the process between temp-write and
	// rename — the crash-mid-write scenario the atomic-rename protocol
	// must survive.
	FaultKillWrite = "killwrite"
)

// FaultFunc selects the disk fault (one of the Fault* constants, or ""
// for none) to inject on the index-th Put of a store.
type FaultFunc func(index int) string

// IsDiskFault reports whether kind names a store disk fault.
func IsDiskFault(kind string) bool {
	switch kind {
	case FaultTorn, FaultFlip, FaultENOSPC, FaultRename, FaultKillWrite:
		return true
	}
	return false
}

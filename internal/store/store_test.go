package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sre/internal/obs"
)

const testKey = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Options{})
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(testKey)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get(strings.Repeat("ee", 32)); ok {
		t.Fatal("unwritten key should miss")
	}
	m := s.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Puts != 1 || m.Quarantined != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := openTest(t, Options{})
	for _, key := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("Z", 64), testKey + "\x00"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) should fail", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) should miss", key)
		}
	}
}

// corruptors damage an on-disk record in every way the reader must
// survive; each must turn the record into a quarantined miss.
var corruptors = map[string]func(t *testing.T, path string){
	"truncated": func(t *testing.T, path string) {
		data := readAll(t, path)
		writeAll(t, path, data[:len(data)/2])
	},
	"bit-flip": func(t *testing.T, path string) {
		data := readAll(t, path)
		data[len(data)/2] ^= 0x01
		writeAll(t, path, data)
	},
	"bad-magic": func(t *testing.T, path string) {
		data := readAll(t, path)
		copy(data, "NOPE")
		writeAll(t, path, data)
	},
	"version-skew": func(t *testing.T, path string) {
		data := readAll(t, path)
		data[4] = 0xFF // version field
		writeAll(t, path, data)
	},
	"length-bomb": func(t *testing.T, path string) {
		data := readAll(t, path)
		for i := 8; i < 16; i++ {
			data[i] = 0xFF // declared length 2^64-1
		}
		writeAll(t, path, data)
	},
	"empty-file": func(t *testing.T, path string) {
		writeAll(t, path, nil)
	},
	"trailing-garbage": func(t *testing.T, path string) {
		data := readAll(t, path)
		writeAll(t, path, append(data, 0xAB))
	},
}

func TestCorruptRecordQuarantined(t *testing.T) {
	for name, corrupt := range corruptors {
		t.Run(name, func(t *testing.T) {
			tel := obs.New()
			rec := obs.NewRecorder(0)
			tel.SetRecorder(rec)
			s := openTest(t, Options{Telemetry: tel})
			if err := s.Put(testKey, []byte("payload-payload-payload")); err != nil {
				t.Fatal(err)
			}
			path := s.objectPath(testKey)
			corrupt(t, path)
			if name == "trailing-garbage" {
				// Streaming Get stops at the frame end; only the full-file
				// fsck catches trailing bytes. Run it instead.
				rep, err := s.Verify()
				if err != nil {
					t.Fatal(err)
				}
				if rep.Quarantined != 1 {
					t.Fatalf("fsck report = %+v, want 1 quarantined", rep)
				}
			} else if _, ok := s.Get(testKey); ok {
				t.Fatal("corrupt record served as a hit")
			}
			if name != "trailing-garbage" {
				if m := s.Metrics(); m.Quarantined != 1 || m.Misses != 1 {
					t.Fatalf("metrics = %+v, want 1 quarantined + 1 miss", m)
				}
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt record still in objects tree")
			}
			q, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine dir has %d entries, want 1 (err %v)", len(q), err)
			}
			// The record heals: a re-put serves again.
			if err := s.Put(testKey, []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(testKey); !ok || string(got) != "recomputed" {
				t.Fatalf("re-put Get = %q, %v", got, ok)
			}
			events := rec.Events()
			found := false
			for _, e := range events {
				if e.Stage == "store.quarantine" {
					found = true
				}
			}
			if !found {
				t.Fatal("no store.quarantine flight event recorded")
			}
		})
	}
}

func TestMaxRecordBytesTypedError(t *testing.T) {
	s := openTest(t, Options{MaxRecordBytes: 64})
	err := s.Put(testKey, bytes.Repeat([]byte("x"), 65))
	var se *SizeError
	if !errors.As(err, &se) || se.Max != 64 {
		t.Fatalf("Put oversized = %v, want *SizeError{Max:64}", err)
	}
	if err := s.Put(testKey, bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatal(err)
	}
	// A stored record whose declared length exceeds the reader's cap is
	// quarantined, not allocated.
	s2, err := Open(s.dir, Options{MaxRecordBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(testKey); ok {
		t.Fatal("oversized record served under a smaller cap")
	}
	if m := s2.Metrics(); m.Quarantined != 1 {
		t.Fatalf("metrics = %+v, want 1 quarantined", m)
	}
}

func TestDiskFaults(t *testing.T) {
	t.Run("torn-and-flip", func(t *testing.T) {
		faults := map[int]string{0: FaultTorn, 1: FaultFlip}
		s := openTest(t, Options{Fault: func(i int) string { return faults[i] }})
		tornKey := strings.Repeat("aa", 32)
		flipKey := strings.Repeat("bb", 32)
		cleanKey := strings.Repeat("cc", 32)
		for _, k := range []string{tornKey, flipKey, cleanKey} {
			if err := s.Put(k, []byte("some payload bytes that are long enough to tear")); err != nil {
				t.Fatalf("Put(%s) = %v", k[:4], err)
			}
		}
		if _, ok := s.Get(tornKey); ok {
			t.Fatal("torn record served")
		}
		if _, ok := s.Get(flipKey); ok {
			t.Fatal("bit-flipped record served")
		}
		if _, ok := s.Get(cleanKey); !ok {
			t.Fatal("clean record missed")
		}
		if m := s.Metrics(); m.Quarantined != 2 {
			t.Fatalf("metrics = %+v, want 2 quarantined", m)
		}
	})
	t.Run("enospc-and-rename", func(t *testing.T) {
		faults := map[int]string{0: FaultENOSPC, 1: FaultRename}
		s := openTest(t, Options{Fault: func(i int) string { return faults[i] }})
		if err := s.Put(testKey, []byte("x")); err == nil {
			t.Fatal("ENOSPC Put should fail")
		}
		if err := s.Put(testKey, []byte("x")); err == nil {
			t.Fatal("failed-rename Put should fail")
		}
		if _, ok := s.Get(testKey); ok {
			t.Fatal("nothing should have landed")
		}
		if m := s.Metrics(); m.PutErrors != 2 {
			t.Fatalf("metrics = %+v, want 2 put errors", m)
		}
		// The failed rename left an fsynced orphan temp; fsck reaps it
		// once it is older than the lock TTL.
		st, err := s.Stats()
		if err != nil || st.TempFiles != 1 {
			t.Fatalf("stats = %+v (err %v), want 1 temp file", st, err)
		}
		s.opts.LockTTL = time.Nanosecond
		time.Sleep(10 * time.Millisecond)
		rep, err := s.Verify()
		if err != nil || rep.TempsReaped != 1 {
			t.Fatalf("fsck = %+v (err %v), want 1 temp reaped", rep, err)
		}
	})
}

func TestStaleLockTakeover(t *testing.T) {
	s := openTest(t, Options{})
	lock := filepath.Join(s.dir, lockFile)

	// A lock held by a provably dead PID is broken immediately.
	body, _ := json.Marshal(lockInfo{PID: 1 << 30, Time: time.Now()})
	if err := os.WriteFile(lock, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey, []byte("x")); err != nil {
		t.Fatalf("Put under dead-pid lock = %v", err)
	}

	// A garbage lock file falls back to the age check: young blocks,
	// old is taken over.
	s.opts.LockTTL = time.Hour
	if err := os.WriteFile(lock, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Put(testKey, []byte("y")); err == nil {
		t.Fatal("Put under fresh unreadable lock should time out")
	} else if time.Since(start) < time.Second {
		t.Fatalf("lock timeout returned too fast: %v", time.Since(start))
	}
	s.opts.LockTTL = time.Nanosecond
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey, []byte("z")); err != nil {
		t.Fatalf("Put under stale lock = %v", err)
	}
	if got, ok := s.Get(testKey); !ok || string(got) != "z" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestConcurrentPutsSameKey(t *testing.T) {
	s := openTest(t, Options{})
	payload := bytes.Repeat([]byte("deterministic"), 100)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- s.Put(testKey, payload) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Get(testKey)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("concurrent puts corrupted the record")
	}
}

func TestGCBudgets(t *testing.T) {
	s := openTest(t, Options{})
	keys := []string{strings.Repeat("aa", 32), strings.Repeat("bb", 32), strings.Repeat("cc", 32)}
	for i, k := range keys {
		if err := s.Put(k, bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
		// Stagger mtimes so oldest-first eviction is deterministic.
		mod := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(s.objectPath(k), mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := s.Stats()
	perRecord := st.Bytes / 3
	rep, err := s.GC(GCOptions{MaxBytes: 2 * perRecord})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 1 || rep.Remaining != 2 {
		t.Fatalf("size GC = %+v, want 1 evicted / 2 remaining", rep)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest record should have been evicted")
	}
	if _, ok := s.Get(keys[2]); !ok {
		t.Fatal("newest record should survive")
	}
	rep, err = s.GC(GCOptions{MaxAge: 90 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 1 || rep.Remaining != 1 {
		t.Fatalf("age GC = %+v, want 1 evicted / 1 remaining", rep)
	}
}

func TestVerifyCleanStore(t *testing.T) {
	s := openTest(t, Options{})
	for _, k := range []string{strings.Repeat("aa", 32), strings.Repeat("bb", 32)} {
		if err := s.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 || rep.OK != 2 || rep.Quarantined != 0 {
		t.Fatalf("fsck = %+v", rep)
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeAll(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

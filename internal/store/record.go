package store

// Record framing: every object in the store is one self-verifying
// record —
//
//	magic "SRC1" (4) | version u16 LE (2) | flags u16 LE (2) |
//	payload length u64 LE (8) | payload | crc64-ECMA(header+payload) (8)
//
// The checksum trailer covers the header too, so a bit flip anywhere in
// the file — length field included — fails verification rather than
// misdirecting the read. The decoder is total over arbitrary byte
// streams: truncation, version skew, oversized declared lengths, and
// checksum mismatches all return typed errors, never panics, and the
// payload is read incrementally so a corrupt length prefix cannot
// balloon memory (FuzzReadRecord pins this).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
)

// recordVersion is bumped whenever the frame layout or the payload
// schema changes incompatibly; readers quarantine records from other
// versions.
const recordVersion = 1

// recordHeaderLen and recordTrailerLen are the fixed framing overhead
// around a payload.
const (
	recordHeaderLen  = 16
	recordTrailerLen = 8
)

// DefaultMaxRecordBytes bounds a record's declared payload length when
// Options.MaxRecordBytes is zero. Serialized pipelines for one prefix
// are megabytes at the extreme; a declared length beyond this is a
// corrupt record, not a big result.
const DefaultMaxRecordBytes = 1 << 30

var recordMagic = [4]byte{'S', 'R', 'C', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// SizeError reports a record whose declared payload length exceeds the
// configured maximum. It is corruption from the store's point of view
// (records it wrote always fit), but typed separately so callers tuning
// MaxRecordBytes can tell the two apart.
type SizeError struct {
	Declared int64
	Max      int64
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("store: record declares %d payload bytes, max %d", e.Declared, e.Max)
}

// CorruptError reports a record that failed structural verification:
// bad magic, version skew, truncation, or a checksum mismatch.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "store: corrupt record: " + e.Reason }

// EncodeRecord frames a payload as a store record.
func EncodeRecord(payload []byte) []byte {
	out := make([]byte, 0, recordHeaderLen+len(payload)+recordTrailerLen)
	out = append(out, recordMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, recordVersion)
	out = binary.LittleEndian.AppendUint16(out, 0) // flags, reserved
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := crc64.Checksum(out, crcTable)
	return binary.LittleEndian.AppendUint64(out, sum)
}

// ReadRecord decodes one record from r, enforcing max as the payload
// length bound (0 means DefaultMaxRecordBytes). The payload is read
// incrementally — never pre-allocated at the declared length — and the
// whole frame, header included, must pass the checksum trailer.
func ReadRecord(r io.Reader, max int64) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxRecordBytes
	}
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated header"}
	}
	if !bytes.Equal(hdr[:4], recordMagic[:]) {
		return nil, &CorruptError{Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != recordVersion {
		return nil, &CorruptError{Reason: fmt.Sprintf("version %d, want %d", v, recordVersion)}
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > uint64(max) {
		return nil, &SizeError{Declared: int64(n), Max: max}
	}
	var buf bytes.Buffer
	buf.Write(hdr[:])
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, &CorruptError{Reason: "truncated payload"}
	}
	var trailer [recordTrailerLen]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated checksum"}
	}
	want := binary.LittleEndian.Uint64(trailer[:])
	if got := crc64.Checksum(buf.Bytes(), crcTable); got != want {
		return nil, &CorruptError{Reason: "checksum mismatch"}
	}
	return buf.Bytes()[recordHeaderLen:], nil
}

package store

// Maintenance: Stats (cheap inventory), Verify (full fsck that
// re-checksums every record and quarantines what fails), and GC
// (size/age budgets plus orphan-temp cleanup). All three walk only the
// store's own directories and never touch foreign files.

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Stats is a cheap inventory of the store (no record is opened).
type Stats struct {
	Records          int   `json:"records"`
	Bytes            int64 `json:"bytes"`
	QuarantinedFiles int   `json:"quarantined_files"`
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	TempFiles        int   `json:"temp_files"`
}

// FsckReport summarizes one Verify pass.
type FsckReport struct {
	Checked     int `json:"checked"`
	OK          int `json:"ok"`
	Quarantined int `json:"quarantined"`
	TempsReaped int `json:"temps_reaped"`
	// Failures details each quarantined record: one entry per failure,
	// in path order.
	Failures []FsckFailure `json:"failures,omitempty"`
}

// FsckFailure is one record a Verify pass quarantined.
type FsckFailure struct {
	// Key is the record's content-address key (its filename stem).
	Key string `json:"key"`
	// Path is the record file the failure was found at (its location
	// before quarantine moved it).
	Path string `json:"path"`
	// Reason is the validation error: a checksum mismatch, a size-cap
	// violation, or a structural decode failure.
	Reason string `json:"reason"`
}

// GCOptions bounds a GC pass. Zero values leave that axis unbounded.
type GCOptions struct {
	// MaxBytes evicts oldest-first until the objects tree fits.
	MaxBytes int64
	// MaxAge evicts records (and quarantined files) older than this.
	MaxAge time.Duration
}

// GCReport summarizes one GC pass.
type GCReport struct {
	Evicted        int   `json:"evicted"`
	EvictedBytes   int64 `json:"evicted_bytes"`
	TempsReaped    int   `json:"temps_reaped"`
	QuarantineSwept int   `json:"quarantine_swept"`
	Remaining      int   `json:"remaining"`
	RemainingBytes int64 `json:"remaining_bytes"`
}

type entry struct {
	path string
	size int64
	mod  time.Time
}

// walkObjects lists record files and orphan temp files under objects/.
func (s *Store) walkObjects() (recs, temps []entry, err error) {
	root := filepath.Join(s.dir, objectsDir)
	err = filepath.Walk(root, func(path string, fi os.FileInfo, werr error) error {
		if werr != nil || fi.IsDir() {
			return nil // a vanished file mid-walk is not an error
		}
		e := entry{path: path, size: fi.Size(), mod: fi.ModTime()}
		switch {
		case strings.HasPrefix(fi.Name(), tmpPrefix):
			temps = append(temps, e)
		case strings.HasSuffix(fi.Name(), recordExt):
			recs = append(recs, e)
		}
		return nil
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].path < recs[j].path })
	return recs, temps, err
}

// Stats inventories the store.
func (s *Store) Stats() (Stats, error) {
	var st Stats
	recs, temps, err := s.walkObjects()
	if err != nil {
		return st, err
	}
	st.Records = len(recs)
	st.TempFiles = len(temps)
	for _, e := range recs {
		st.Bytes += e.size
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if ents, qerr := os.ReadDir(qdir); qerr == nil {
		for _, de := range ents {
			if fi, ferr := de.Info(); ferr == nil && !fi.IsDir() {
				st.QuarantinedFiles++
				st.QuarantinedBytes += fi.Size()
			}
		}
	}
	return st, nil
}

// Verify is a full fsck: every record is re-read and re-checksummed;
// failures are quarantined exactly as a Get would, and orphan temp
// files older than the lock TTL (a crashed writer's leftovers, never a
// write in flight) are reaped.
func (s *Store) Verify() (FsckReport, error) {
	var rep FsckReport
	recs, temps, err := s.walkObjects()
	if err != nil {
		return rep, err
	}
	for _, e := range recs {
		rep.Checked++
		if _, rerr := readFileRecord(e.path, s.opts.MaxRecordBytes); rerr != nil {
			key := strings.TrimSuffix(filepath.Base(e.path), recordExt)
			s.Quarantine(key, rerr.Error())
			rep.Quarantined++
			rep.Failures = append(rep.Failures,
				FsckFailure{Key: key, Path: e.path, Reason: rerr.Error()})
			continue
		}
		rep.OK++
	}
	for _, e := range temps {
		if time.Since(e.mod) > s.opts.LockTTL {
			if os.Remove(e.path) == nil {
				rep.TempsReaped++
			}
		}
	}
	return rep, nil
}

// GC applies the size/age budgets: expired records first, then
// oldest-first eviction until the objects tree fits MaxBytes. Orphan
// temps past the lock TTL and quarantined files past MaxAge are swept
// in the same pass.
func (s *Store) GC(opts GCOptions) (GCReport, error) {
	var rep GCReport
	err := s.withLock(func() error {
		recs, temps, werr := s.walkObjects()
		if werr != nil {
			return werr
		}
		var total int64
		for _, e := range recs {
			total += e.size
		}
		evict := func(e entry) {
			if os.Remove(e.path) == nil {
				rep.Evicted++
				rep.EvictedBytes += e.size
				total -= e.size
			}
		}
		live := recs[:0]
		for _, e := range recs {
			if opts.MaxAge > 0 && time.Since(e.mod) > opts.MaxAge {
				evict(e)
				continue
			}
			live = append(live, e)
		}
		if opts.MaxBytes > 0 && total > opts.MaxBytes {
			sort.Slice(live, func(i, j int) bool { return live[i].mod.Before(live[j].mod) })
			for _, e := range live {
				if total <= opts.MaxBytes {
					break
				}
				evict(e)
			}
		}
		for _, e := range temps {
			if time.Since(e.mod) > s.opts.LockTTL {
				if os.Remove(e.path) == nil {
					rep.TempsReaped++
				}
			}
		}
		if opts.MaxAge > 0 {
			qdir := filepath.Join(s.dir, quarantineDir)
			if ents, qerr := os.ReadDir(qdir); qerr == nil {
				for _, de := range ents {
					fi, ferr := de.Info()
					if ferr != nil || fi.IsDir() {
						continue
					}
					if time.Since(fi.ModTime()) > opts.MaxAge {
						if os.Remove(filepath.Join(qdir, de.Name())) == nil {
							rep.QuarantineSwept++
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	st, serr := s.Stats()
	if serr == nil {
		rep.Remaining, rep.RemainingBytes = st.Records, st.Bytes
	}
	return rep, nil
}

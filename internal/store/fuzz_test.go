package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadRecord pins the record decoder's robustness contract: total
// over arbitrary byte streams (typed errors, never panics), bounded
// allocation regardless of the declared length, and exact round-trip of
// whatever it accepts.
func FuzzReadRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(nil))
	f.Add(EncodeRecord([]byte("payload")))
	f.Add(EncodeRecord(bytes.Repeat([]byte{0xAB}, 4096)))
	// A length bomb: valid header declaring far more than is present.
	bomb := EncodeRecord([]byte("tiny"))
	for i := 8; i < 16; i++ {
		bomb[i] = 0xFF
	}
	f.Add(bomb)
	f.Add([]byte("SRC1 but then garbage follows the magic bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadRecord(bytes.NewReader(data), 1<<20)
		if err != nil {
			var ce *CorruptError
			var se *SizeError
			if !errors.As(err, &ce) && !errors.As(err, &se) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted records re-encode to a prefix of the input (the frame
		// is self-delimiting; the fuzzer may append trailing bytes).
		re := EncodeRecord(payload)
		if !bytes.HasPrefix(data, re) {
			t.Fatalf("accepted record does not round-trip: %d payload bytes", len(payload))
		}
	})
}

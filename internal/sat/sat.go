// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver over CNF formulas: unit propagation with two watched literals,
// first-UIP conflict analysis, and non-chronological backtracking.
// It replaces the SMT solver (Z3) that Minesweeper-style
// verification builds on — the repro environment has no Z3 bindings, and
// the Minesweeper-substitute baseline only needs propositional
// reasoning over link-failure variables plus cardinality constraints.
package sat

import "fmt"

// Lit is a literal: variable index (from 0) shifted left, low bit = sign
// (1 = negated).
type Lit int32

// MkLit builds a literal for variable v, negated if neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String formats the literal as ±v<i>.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("¬v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learned bool
}

// Solver is a CDCL SAT solver. Create with NewSolver, add clauses, then
// call Solve (possibly repeatedly, with incremental clause additions in
// between).
type Solver struct {
	nVars   int
	clauses []*clause
	watches [][]*clause // watches[lit] = clauses watching lit

	assign  []lbool
	level   []int32
	reason  []*clause
	trail   []Lit
	trailLo []int // trail index at each decision level

	order    []int // static decision order (variable index)
	propaged int
	unsat    bool // formula proven unsatisfiable at level 0

	// Stats counts solver work, reported by the benchmarks.
	Stats struct {
		Decisions    int
		Propagations int
		Conflicts    int
		Learned      int
	}
}

// NewSolver creates a solver with n variables.
func NewSolver(n int) *Solver {
	s := &Solver{nVars: n}
	s.assign = make([]lbool, n)
	s.level = make([]int32, n)
	s.reason = make([]*clause, n)
	s.watches = make([][]*clause, 2*n)
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	return s
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

// AddClause adds a disjunction of literals. Returns false if the clause
// makes the formula trivially unsatisfiable (empty clause at level 0).
func (s *Solver) AddClause(lits ...Lit) bool {
	// Incremental use: clauses are always added at decision level 0.
	s.backtrackTo(0)
	if s.unsat {
		return false
	}
	// Simplify: drop duplicate literals; detect tautologies.
	seen := make(map[Lit]bool, len(lits))
	out := lits[:0:0]
	for _, l := range lits {
		if seen[l.Not()] {
			return true // tautology: always satisfied
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		return true
	}
	// The two watched literals must not be false already (we are at
	// decision level 0, so false means permanently false): move
	// non-false literals to the watch positions, degrade to a unit
	// assignment when only one candidate remains, and report
	// unsatisfiability when none does.
	w := 0
	for i := 0; i < len(out) && w < 2; i++ {
		if s.value(out[i]) != lFalse {
			out[i], out[w] = out[w], out[i]
			w++
		}
	}
	switch w {
	case 0:
		s.unsat = true
		return false
	case 1:
		if s.value(out[0]) == lTrue {
			return true // already satisfied at level 0
		}
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c, out[0])
	s.watch(c, out[1])
	return true
}

// AddAtMostKFalse adds clauses forcing at most k of the given variables
// to be false, via the sequential (totalizer-free) counter encoding with
// auxiliary variables. Returns the updated solver (auxiliary variables
// are appended).
func (s *Solver) AddAtMostKFalse(vars []int, k int) {
	// Equivalent: at most k of the literals ¬v are true.
	lits := make([]Lit, len(vars))
	for i, v := range vars {
		lits[i] = MkLit(v, true)
	}
	s.AddAtMostK(lits, k)
}

// AddAtMostK constrains at most k of the given literals to be true,
// using the sequential counter encoding (Sinz 2005).
func (s *Solver) AddAtMostK(lits []Lit, k int) {
	n := len(lits)
	if k >= n {
		return
	}
	if k == 0 {
		for _, l := range lits {
			s.AddClause(l.Not())
		}
		return
	}
	// Register auxiliary counter variables r[i][j]: "at least j+1 of
	// the first i+1 literals are true".
	aux := make([][]Lit, n)
	for i := 0; i < n; i++ {
		aux[i] = make([]Lit, k)
		for j := 0; j < k; j++ {
			aux[i][j] = MkLit(s.NewVar(), false)
		}
	}
	s.AddClause(lits[0].Not(), aux[0][0])
	for j := 1; j < k; j++ {
		s.AddClause(aux[0][j].Not())
	}
	for i := 1; i < n; i++ {
		s.AddClause(lits[i].Not(), aux[i][0])
		s.AddClause(aux[i-1][0].Not(), aux[i][0])
		for j := 1; j < k; j++ {
			s.AddClause(lits[i].Not(), aux[i-1][j-1].Not(), aux[i][j])
			s.AddClause(aux[i-1][j].Not(), aux[i][j])
		}
		s.AddClause(lits[i].Not(), aux[i-1][k-1].Not())
	}
}

// NewVar appends a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := s.nVars
	s.nVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.watches = append(s.watches, nil, nil)
	s.order = append(s.order, v)
	return v
}

func (s *Solver) watch(c *clause, l Lit) {
	s.watches[l.Not()] = append(s.watches[l.Not()], c)
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// enqueue assigns a literal true with the given reason clause. Returns
// false on conflict with the current assignment.
func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLo) }

// propagate runs unit propagation; returns the conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.propaged < len(s.trail) {
		l := s.trail[s.propaged]
		s.propaged++
		s.Stats.Propagations++
		ws := s.watches[l]
		s.watches[l] = ws[:0:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is lits[1].
			if c.lits[0] == l.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				s.watches[l] = append(s.watches[l], c)
				continue
			}
			// Find a new literal to watch.
			found := false
			for j := 2; j < len(c.lits); j++ {
				if s.value(c.lits[j]) != lFalse {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					s.watch(c, c.lits[1])
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			s.watches[l] = append(s.watches[l], c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches.
				s.watches[l] = append(s.watches[l], ws[i+1:]...)
				return c
			}
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	seen := make([]bool, s.nVars)
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conflict
	for {
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal of the current level on the trail.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		seen[p.Var()] = false
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learnt[0] = p.Not()
	// Backtrack to the second-highest level in the learned clause.
	back := 0
	for i := 1; i < len(learnt); i++ {
		if int(s.level[learnt[i].Var()]) > back {
			back = int(s.level[learnt[i].Var()])
		}
	}
	return learnt, back
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lo := s.trailLo[level]
	for i := len(s.trail) - 1; i >= lo; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:lo]
	s.trailLo = s.trailLo[:level]
	s.propaged = len(s.trail)
}

// Solve determines satisfiability under the given assumptions (literals
// forced true for this call only). If satisfiable, Model returns the
// assignment.
func (s *Solver) Solve(assumptions ...Lit) bool {
	s.backtrackTo(0)
	if s.unsat {
		return false
	}
	if s.propagate() != nil {
		s.unsat = true
		return false
	}
	// Apply assumptions as decision levels.
	for _, a := range assumptions {
		if s.value(a) == lTrue {
			continue
		}
		if s.value(a) == lFalse {
			s.backtrackTo(0)
			return false
		}
		s.trailLo = append(s.trailLo, len(s.trail))
		s.enqueue(a, nil)
		if s.propagate() != nil {
			s.backtrackTo(0)
			return false
		}
	}
	assumptionLevel := s.decisionLevel()
	for {
		conflict := s.propagate()
		if conflict != nil {
			s.Stats.Conflicts++
			if s.decisionLevel() <= assumptionLevel {
				s.backtrackTo(0)
				return false
			}
			learnt, back := s.analyze(conflict)
			if back < assumptionLevel {
				back = assumptionLevel
			}
			s.backtrackTo(back)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					s.backtrackTo(0)
					return false
				}
			} else {
				c := &clause{lits: learnt, learned: true}
				s.clauses = append(s.clauses, c)
				s.Stats.Learned++
				s.watch(c, learnt[0])
				s.watch(c, learnt[1])
				if !s.enqueue(learnt[0], c) {
					s.backtrackTo(0)
					return false
				}
			}
			continue
		}
		// Decide.
		next := -1
		for _, v := range s.order {
			if s.assign[v] == lUndef {
				next = v
				break
			}
		}
		if next == -1 {
			return true // full assignment found; caller reads Model
		}
		s.Stats.Decisions++
		s.trailLo = append(s.trailLo, len(s.trail))
		s.enqueue(MkLit(next, false), nil)
	}
}

// Model returns the satisfying assignment found by the last successful
// Solve call.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars)
	for v := 0; v < s.nVars; v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

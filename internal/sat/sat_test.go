package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := NewSolver(2)
	if !s.Solve() {
		t.Fatal("empty formula should be SAT")
	}
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(1, true))
	if !s.Solve() {
		t.Fatal("unit clauses should be SAT")
	}
	m := s.Model()
	if !m[0] || m[1] {
		t.Fatalf("model %v, want [true false]", m)
	}
}

func TestContradiction(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(MkLit(0, false))
	if ok := s.AddClause(MkLit(0, true)); ok && s.Solve() {
		t.Fatal("x ∧ ¬x should be UNSAT")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// (¬x0 ∨ x1)(¬x1 ∨ x2)(x0) → all true.
	s := NewSolver(3)
	s.AddClause(MkLit(0, true), MkLit(1, false))
	s.AddClause(MkLit(1, true), MkLit(2, false))
	s.AddClause(MkLit(0, false))
	if !s.Solve() {
		t.Fatal("SAT expected")
	}
	m := s.Model()
	if !m[0] || !m[1] || !m[2] {
		t.Fatalf("model %v", m)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — UNSAT and requires real search.
	const pigeons, holes = 4, 3
	s := NewSolver(pigeons * holes)
	v := func(p, h int) int { return p*holes + h }
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole should be UNSAT")
	}
	if s.Stats.Conflicts == 0 {
		t.Error("expected conflicts during pigeonhole search")
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(MkLit(0, false), MkLit(1, false)) // x0 ∨ x1
	if !s.Solve(MkLit(0, true)) {                 // assume ¬x0
		t.Fatal("SAT with ¬x0 expected")
	}
	if m := s.Model(); m[0] || !m[1] {
		t.Fatalf("model %v, want x1", m)
	}
	if !s.Solve(MkLit(1, true)) { // assume ¬x1
		t.Fatal("SAT with ¬x1 expected")
	}
	if s.Solve(MkLit(0, true), MkLit(1, true)) {
		t.Fatal("assuming both false should be UNSAT")
	}
	// Solver still usable afterwards.
	if !s.Solve() {
		t.Fatal("should be SAT with no assumptions")
	}
}

func TestIncrementalBlocking(t *testing.T) {
	// Enumerate all models of (x0 ∨ x1) over 2 vars via blocking clauses.
	s := NewSolver(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	count := 0
	for s.Solve() {
		count++
		if count > 4 {
			t.Fatal("too many models")
		}
		m := s.Model()
		block := make([]Lit, 2)
		for v := 0; v < 2; v++ {
			block[v] = MkLit(v, m[v])
		}
		s.AddClause(block...)
	}
	if count != 3 {
		t.Fatalf("model count = %d, want 3", count)
	}
}

func TestAtMostK(t *testing.T) {
	for k := 0; k <= 4; k++ {
		s := NewSolver(4)
		lits := make([]Lit, 4)
		for i := range lits {
			lits[i] = MkLit(i, false)
		}
		s.AddAtMostK(lits, k)
		// Count models over the original 4 variables.
		models := make(map[[4]bool]bool)
		for s.Solve() {
			m := s.Model()
			var key [4]bool
			block := []Lit{}
			for v := 0; v < 4; v++ {
				key[v] = m[v]
				block = append(block, MkLit(v, m[v]))
			}
			models[key] = true
			s.AddClause(block...)
		}
		want := 0
		for bits := 0; bits < 16; bits++ {
			ones := 0
			for i := 0; i < 4; i++ {
				if bits>>i&1 == 1 {
					ones++
				}
			}
			if ones <= k {
				want++
			}
		}
		if len(models) != want {
			t.Errorf("k=%d: %d models, want %d", k, len(models), want)
		}
	}
}

func TestAtMostKFalse(t *testing.T) {
	s := NewSolver(3)
	s.AddAtMostKFalse([]int{0, 1, 2}, 1)
	// Forcing two variables false must be UNSAT.
	if s.Solve(MkLit(0, true), MkLit(1, true)) {
		t.Fatal("two false vars should violate at-most-1-false")
	}
	if !s.Solve(MkLit(0, true)) {
		t.Fatal("one false var should be fine")
	}
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 5 + r.Intn(4)
		nc := 5 + r.Intn(20)
		clauses := make([][]Lit, nc)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(r.Intn(n), r.Intn(2) == 0)
			}
			clauses[i] = cl
		}
		s := NewSolver(n)
		trivUnsat := false
		for _, cl := range clauses {
			if !s.AddClause(cl...) {
				trivUnsat = true
			}
		}
		got := !trivUnsat && s.Solve()
		want := bruteSat(n, clauses)
		if got != want {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, got, want)
		}
		if got {
			// Verify the model actually satisfies every clause.
			m := s.Model()
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					if m[l.Var()] != l.Neg() {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("trial %d: model does not satisfy clause", trial)
				}
			}
		}
	}
}

func bruteSat(n int, clauses [][]Lit) bool {
	for bits := 0; bits < 1<<n; bits++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				val := bits>>l.Var()&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestLitString(t *testing.T) {
	if MkLit(3, false).String() != "v3" || MkLit(3, true).String() != "¬v3" {
		t.Fatal("literal formatting")
	}
	if MkLit(2, false).Not() != MkLit(2, true) {
		t.Fatal("Not")
	}
}

// Package route defines concrete routing protocol routes and the
// decision procedure that ranks them: administrative distance across
// protocols first, then protocol-specific preference (BGP best-path
// selection, OSPF cost). Symbolic route computation attaches topology
// conditions to these concrete routes (§4.1 of the paper: a symbolic
// route is a (route, tc) pair).
package route

import (
	"fmt"
	"strings"
)

// Protocol identifies the routing protocol that produced a route.
type Protocol uint8

// Supported protocols, matching the paper's implementation (§8:
// "Currently, SRE supports OSPF, BGP, and static route").
const (
	Connected Protocol = iota
	Static
	EBGP
	IBGP
	OSPF
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case Connected:
		return "connected"
	case Static:
		return "static"
	case EBGP:
		return "ebgp"
	case IBGP:
		return "ibgp"
	case OSPF:
		return "ospf"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// AdminDistance returns the default administrative distance (Cisco
// conventions): lower is preferred when ranking routes for the same
// prefix across protocols.
func (p Protocol) AdminDistance() int {
	switch p {
	case Connected:
		return 0
	case Static:
		return 1
	case EBGP:
		return 20
	case OSPF:
		return 110
	case IBGP:
		return 200
	default:
		return 255
	}
}

// Prefix is an IPv4 prefix in host byte order.
type Prefix struct {
	Addr uint32 // network address; bits below Len are zero
	Len  int    // prefix length, 0..32
}

// MustParsePrefix parses "a.b.c.d/len", panicking on malformed input.
// Intended for literals in tests and generators.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("route: prefix %q missing /len", s)
	}
	var a, b, c, d, l int
	if _, err := fmt.Sscanf(s[:slash], "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return Prefix{}, fmt.Errorf("route: bad address in %q: %v", s, err)
	}
	if _, err := fmt.Sscanf(s[slash+1:], "%d", &l); err != nil {
		return Prefix{}, fmt.Errorf("route: bad length in %q: %v", s, err)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return Prefix{}, fmt.Errorf("route: octet out of range in %q", s)
		}
	}
	if l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("route: length out of range in %q", s)
	}
	addr := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
	return Prefix{Addr: addr & MaskOf(l), Len: l}, nil
}

// MaskOf returns the network mask with the top len bits set.
func MaskOf(len int) uint32 {
	if len <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - len)
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&MaskOf(p.Len) == p.Addr
}

// Covers reports whether p covers q (q is equal to or more specific
// than p).
func (p Prefix) Covers(q Prefix) bool {
	return q.Len >= p.Len && q.Addr&MaskOf(p.Len) == p.Addr
}

// Halves splits p into its two (Len+1)-bit sub-prefixes, used by the
// degradation ladder to shrink the header space of an overloaded
// analysis. ok is false for host prefixes (Len == 32), which cannot be
// split further.
func (p Prefix) Halves() (lo, hi Prefix, ok bool) {
	if p.Len >= 32 {
		return p, p, false
	}
	lo = Prefix{Addr: p.Addr, Len: p.Len + 1}
	hi = Prefix{Addr: p.Addr | 1<<(31-p.Len), Len: p.Len + 1}
	return lo, hi, true
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		p.Addr>>24, p.Addr>>16&0xff, p.Addr>>8&0xff, p.Addr&0xff, p.Len)
}

// Route is a concrete protocol route: the data carried by one RIB entry,
// without its topology condition (which the src package attaches).
type Route struct {
	Prefix   Prefix
	Protocol Protocol
	// NextHop is the router ID of the next hop (-1 for locally
	// originated/connected routes).
	NextHop int
	// EgressLink is the link used to reach the next hop (-1 if local).
	EgressLink int

	// BGP attributes.
	LocalPref    int      // higher preferred; default 100
	ASPath       []uint32 // sequence of AS numbers, nearest first
	MED          int      // lower preferred
	Communities  []uint64
	OriginatorID int // router ID of the origin, used as final tiebreak

	// OSPF attribute.
	Cost int // accumulated path cost; lower preferred

	// PathLen abstracts the AS path under abstract interpretation
	// (§7.3): when set (>= 0), ranking uses it instead of len(ASPath).
	PathLen int

	// Hops counts propagation hops; the engine drops routes exceeding
	// its hop bound to guarantee termination (no best route under any
	// failure scenario traverses a non-simple path).
	Hops int

	// PathBloom over-approximates the set of ASes on the (abstracted)
	// path as a 128-bit Bloom filter. When abstract interpretation
	// discards the concrete AS path, the bloom keeps the loop check
	// sound: a route whose bloom contains the local AS is rejected.
	// Merged routes union their blooms, so the check over-approximates
	// (it may spuriously reject a merged route — a conservative loss
	// of backup precision, never a false route).
	PathBloom [2]uint64

	// Aggregate marks a locally generated BGP aggregate route.
	Aggregate bool
}

// NewLocal returns a locally originated route for p on the given
// protocol (Connected or the protocol that redistributes it).
func NewLocal(p Prefix, proto Protocol, origin int) *Route {
	return &Route{
		Prefix:       p,
		Protocol:     proto,
		NextHop:      -1,
		EgressLink:   -1,
		LocalPref:    100,
		OriginatorID: origin,
		PathLen:      -1,
	}
}

// Clone returns a deep copy of r.
func (r *Route) Clone() *Route {
	cp := *r
	cp.ASPath = append([]uint32(nil), r.ASPath...)
	cp.Communities = append([]uint64(nil), r.Communities...)
	return &cp
}

// ASPathLen returns the effective AS-path length used for ranking: the
// abstracted PathLen when abstract interpretation is active, the real
// path length otherwise.
func (r *Route) ASPathLen() int {
	if r.PathLen >= 0 {
		return r.PathLen
	}
	return len(r.ASPath)
}

// HasCommunity reports whether the route carries community c.
func (r *Route) HasCommunity(c uint64) bool {
	for _, v := range r.Communities {
		if v == c {
			return true
		}
	}
	return false
}

// ContainsAS reports whether the AS path contains asn (BGP loop
// prevention).
func (r *Route) ContainsAS(asn uint32) bool {
	for _, v := range r.ASPath {
		if v == asn {
			return true
		}
	}
	return false
}

// bloomBits returns the two Bloom-filter bit positions of an ASN.
func bloomBits(asn uint32) (uint, uint) {
	h1 := uint(asn*2654435761) % 128
	h2 := uint((asn*0x9E3779B9)>>7) % 128
	return h1, h2
}

// BloomAddAS records asn in the path bloom.
func (r *Route) BloomAddAS(asn uint32) {
	b1, b2 := bloomBits(asn)
	r.PathBloom[b1/64] |= 1 << (b1 % 64)
	r.PathBloom[b2/64] |= 1 << (b2 % 64)
}

// BloomMayContainAS reports whether asn may be on the abstracted path.
func (r *Route) BloomMayContainAS(asn uint32) bool {
	b1, b2 := bloomBits(asn)
	return r.PathBloom[b1/64]&(1<<(b1%64)) != 0 &&
		r.PathBloom[b2/64]&(1<<(b2%64)) != 0
}

// BloomUnion merges another route's path bloom into r's.
func (r *Route) BloomUnion(o *Route) {
	r.PathBloom[0] |= o.PathBloom[0]
	r.PathBloom[1] |= o.PathBloom[1]
}

// Compare ranks two routes for the same prefix: negative if a is
// preferred over b, positive if b is preferred, zero if they tie (an
// ECMP group). The order follows standard router behaviour:
//
//  1. lower administrative distance (protocol preference);
//  2. BGP: higher local-pref, shorter AS path, lower MED, eBGP over
//     iBGP, then lower originator ID as the deterministic tiebreak;
//  3. OSPF: lower cost, then lower originator ID;
//  4. Static/connected: lower originator ID.
//
// The final originator tiebreak is skipped when ECMP considers routes of
// equal cost equal — callers decide by using Compare (strict) or
// SamePriority (ECMP grouping).
func Compare(a, b *Route) int {
	if d := a.Protocol.AdminDistance() - b.Protocol.AdminDistance(); d != 0 {
		return d
	}
	switch a.Protocol {
	case EBGP, IBGP:
		if d := b.LocalPref - a.LocalPref; d != 0 {
			return d
		}
		if d := a.ASPathLen() - b.ASPathLen(); d != 0 {
			return d
		}
		if d := a.MED - b.MED; d != 0 {
			return d
		}
	case OSPF:
		if d := a.Cost - b.Cost; d != 0 {
			return d
		}
	}
	return 0
}

// Tiebreak orders routes deterministically inside an equal-priority
// group: by next hop, then egress link. Used to keep symbolic RIBs
// stable across runs.
func Tiebreak(a, b *Route) int {
	if d := a.NextHop - b.NextHop; d != 0 {
		return d
	}
	return a.EgressLink - b.EgressLink
}

// SamePriority reports whether two routes tie under Compare (candidates
// for an ECMP group).
func SamePriority(a, b *Route) bool { return Compare(a, b) == 0 }

// SameRoute reports whether two routes are the same logical route:
// identical prefix, protocol, next hop and egress link. Algorithm 1 uses
// this to detect re-advertisements that only update the topology
// condition.
func SameRoute(a, b *Route) bool {
	return a.Prefix == b.Prefix && a.Protocol == b.Protocol &&
		a.NextHop == b.NextHop && a.EgressLink == b.EgressLink &&
		a.attrKey() == b.attrKey()
}

// attrKey folds the identity-relevant attributes into a comparable
// value. Concrete AS paths distinguish routes unless abstract
// interpretation replaced them with a path length (§7.3) — merging
// routes that differ only in their concrete path is precisely the
// abstraction, so it must not happen otherwise (it would break the
// AS-path loop check downstream).
func (r *Route) attrKey() string {
	agg := 0
	if r.Aggregate {
		agg = 1
	}
	path := fmt.Sprint(r.ASPath)
	if r.PathLen >= 0 {
		path = fmt.Sprintf("len%d", r.PathLen)
	}
	return fmt.Sprintf("%d|%s|%d|%d|%d|%d", r.LocalPref, path, r.MED, r.Cost, r.OriginatorID, agg)
}

// Key returns a string identifying the logical route (prefix, protocol,
// next hop, egress link, and ranking attributes); advertisement state
// tracking uses it to detect re-advertisements and withdrawals.
func (r *Route) Key() string {
	return fmt.Sprintf("%s|%s|%d|%d|%s", r.Prefix, r.Protocol, r.NextHop, r.EgressLink, r.attrKey())
}

// String formats the route for debugging.
func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s nh=%d", r.Prefix, r.Protocol, r.NextHop)
	switch r.Protocol {
	case EBGP, IBGP:
		fmt.Fprintf(&b, " lp=%d aspath=%v", r.LocalPref, r.ASPath)
	case OSPF:
		fmt.Fprintf(&b, " cost=%d", r.Cost)
	}
	return b.String()
}

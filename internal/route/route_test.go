package route

import (
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("128.0.0.0/1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != 0x80000000 || p.Len != 1 {
		t.Fatalf("parsed %+v", p)
	}
	// Host bits below the mask are cleared.
	p, err = ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != 10<<24 {
		t.Fatalf("host bits not cleared: %x", p.Addr)
	}
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("String: %s", p)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0/8", "256.0.0.0/8", "10.0.0.0/33", "10.0.0.0/-1", "x.0.0.0/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestMustParsePrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParsePrefix("bogus")
}

func TestPrefixContainsCovers(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	other := MustParsePrefix("11.0.0.0/8")
	all := MustParsePrefix("0.0.0.0/0")
	if !p8.Contains(0x0A010203) || p8.Contains(0x0B000000) {
		t.Error("Contains")
	}
	if !p8.Covers(p16) || p16.Covers(p8) || p8.Covers(other) {
		t.Error("Covers")
	}
	if !all.Covers(p8) || !all.Contains(0xFFFFFFFF) {
		t.Error("default route should cover everything")
	}
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) || p8.Overlaps(other) {
		t.Error("Overlaps")
	}
}

func TestMaskOf(t *testing.T) {
	if MaskOf(0) != 0 || MaskOf(32) != 0xFFFFFFFF || MaskOf(8) != 0xFF000000 {
		t.Fatal("MaskOf")
	}
	if MaskOf(-3) != 0 {
		t.Fatal("negative mask")
	}
}

func TestAdminDistanceOrdering(t *testing.T) {
	// connected < static < eBGP < OSPF < iBGP
	order := []Protocol{Connected, Static, EBGP, OSPF, IBGP}
	for i := 1; i < len(order); i++ {
		if order[i-1].AdminDistance() >= order[i].AdminDistance() {
			t.Errorf("%v should beat %v", order[i-1], order[i])
		}
	}
}

func TestCompareBGP(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	base := func() *Route {
		r := NewLocal(p, EBGP, 1)
		r.ASPath = []uint32{1, 2}
		return r
	}
	hi := base()
	hi.LocalPref = 200
	if Compare(hi, base()) >= 0 {
		t.Error("higher local-pref should win")
	}
	short := base()
	short.ASPath = []uint32{1}
	if Compare(short, base()) >= 0 {
		t.Error("shorter AS path should win")
	}
	lowMED := base()
	lowMED.MED = -1
	if Compare(lowMED, base()) >= 0 {
		t.Error("lower MED should win")
	}
	if Compare(base(), base()) != 0 {
		t.Error("identical routes should tie (ECMP)")
	}
}

func TestCompareOSPF(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	a := NewLocal(p, OSPF, 1)
	a.Cost = 5
	b := NewLocal(p, OSPF, 2)
	b.Cost = 7
	if Compare(a, b) >= 0 {
		t.Error("lower cost should win")
	}
	b.Cost = 5
	if Compare(a, b) != 0 {
		t.Error("equal cost should tie")
	}
}

func TestCompareCrossProtocol(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	st := NewLocal(p, Static, 1)
	bgp := NewLocal(p, EBGP, 1)
	ospf := NewLocal(p, OSPF, 1)
	if Compare(st, bgp) >= 0 || Compare(bgp, ospf) >= 0 {
		t.Error("admin distance ordering broken")
	}
}

func TestPathLenAbstraction(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	r := NewLocal(p, EBGP, 1)
	r.ASPath = []uint32{1, 2, 3}
	if r.ASPathLen() != 3 {
		t.Fatal("concrete path length")
	}
	r.PathLen = 5
	if r.ASPathLen() != 5 {
		t.Fatal("abstracted path length should take precedence")
	}
}

func TestSameRouteDistinguishesASPaths(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	a := NewLocal(p, EBGP, 1)
	a.ASPath = []uint32{1, 2}
	b := a.Clone()
	if !SameRoute(a, b) {
		t.Fatal("clones should be the same route")
	}
	b.ASPath = []uint32{1, 3}
	if SameRoute(a, b) {
		t.Fatal("different concrete AS paths are different routes (without abstraction)")
	}
	// Under abstraction, equal lengths merge.
	a.PathLen, a.ASPath = 2, nil
	b.PathLen, b.ASPath = 2, nil
	if !SameRoute(a, b) {
		t.Fatal("abstracted equal-length routes should merge")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	a := NewLocal(p, EBGP, 1)
	a.ASPath = []uint32{1}
	a.Communities = []uint64{100}
	b := a.Clone()
	b.ASPath[0] = 99
	b.Communities[0] = 999
	if a.ASPath[0] != 1 || a.Communities[0] != 100 {
		t.Fatal("Clone shares slices")
	}
}

func TestHasCommunityContainsAS(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	r := NewLocal(p, EBGP, 1)
	r.ASPath = []uint32{65001, 65002}
	r.Communities = []uint64{7}
	if !r.ContainsAS(65001) || r.ContainsAS(65999) {
		t.Error("ContainsAS")
	}
	if !r.HasCommunity(7) || r.HasCommunity(8) {
		t.Error("HasCommunity")
	}
}

func TestQuickPrefixRoundTrip(t *testing.T) {
	f := func(addr uint32, lenRaw uint8) bool {
		l := int(lenRaw) % 33
		p := Prefix{Addr: addr & MaskOf(l), Len: l}
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoversTransitive(t *testing.T) {
	f := func(addr uint32, l1, l2, l3 uint8) bool {
		a := Prefix{Len: int(l1) % 33}
		a.Addr = addr & MaskOf(a.Len)
		b := Prefix{Len: int(l2) % 33}
		b.Addr = addr & MaskOf(b.Len)
		c := Prefix{Len: int(l3) % 33}
		c.Addr = addr & MaskOf(c.Len)
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

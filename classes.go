package sre

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sre/internal/bdd"
	"sre/internal/symbol"
	"sre/internal/topology"
)

// ForwardingClass is the public view of one packet failure equivalence
// class (PFEC): a forwarding path plus a summary of the packet and
// failure space that uses it.
type ForwardingClass struct {
	// Path lists the router names along the forwarding path.
	Path []string
	// Delivered reports whether the path ends in local delivery.
	Delivered bool
	// Packets counts the destination addresses covered (out of 2³²).
	Packets float64
	// MinFailures is the smallest number of failed links in any
	// scenario of the class (0 = used when everything is up).
	MinFailures int
	// Scenarios counts the failure scenarios covered (out of 2^links),
	// for the class's most permissive packet.
	Scenarios float64
}

// String renders the class compactly.
func (c ForwardingClass) String() string {
	status := "delivered"
	if !c.Delivered {
		status = "in transit"
	}
	return fmt.Sprintf("%s (%s, %.3g addrs, min failures %d)",
		strings.Join(c.Path, "→"), status, c.Packets, c.MinFailures)
}

// ForwardingClasses returns the PFECs discovered from the named source
// router, most-covering first. This is the raw product-space view that
// all analyses are derived from; use it to audit which paths exist and
// under which failure regimes they activate.
func (v *Verifier) ForwardingClasses(srcRouter string) (out []ForwardingClass, err error) {
	defer guard("analysis", v.tel, &err)
	s, ok := v.net.Topology.RouterByName(srcRouter)
	if !ok {
		return nil, fmt.Errorf("sre: unknown router %q", srcRouter)
	}
	nLinks := v.net.Topology.NumLinks()
	for _, pipe := range v.allPipes() {
		m := pipe.Sp.M
		for _, pf := range pipe.PFECs(s) {
			names := make([]string, len(pf.Path))
			for i, r := range pf.Path {
				names[i] = v.net.Topology.Name(r)
			}
			hdr := pipe.Sp.HeaderOnly(pf.Pred)
			topo := pipe.Sp.TopoOnly(pf.Pred)
			// Min failures: fewest down-links in any satisfying scenario =
			// shortest dashed path to True on the topology projection.
			minFail := 0
			if topo != bdd.True {
				if down, ok := minDownToSatisfy(m, topo); ok {
					minFail = down
				}
			}
			out = append(out, ForwardingClass{
				Path:        names,
				Delivered:   pf.Delivered,
				Packets:     m.SatCount(hdr, symbol.HeaderBits),
				MinFailures: minFail,
				Scenarios:   m.SatCount(topo, nLinks),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MinFailures != out[j].MinFailures {
			return out[i].MinFailures < out[j].MinFailures
		}
		return out[i].Packets > out[j].Packets
	})
	return out, nil
}

// minDownToSatisfy returns the minimum number of links assigned down on
// any satisfying assignment of the topology BDD.
func minDownToSatisfy(m *bdd.Manager, topo bdd.Node) (int, bool) {
	sp := m.ShortestPathToTrue(topo)
	if sp == math.MaxInt32 {
		return 0, false
	}
	return sp, true
}

// routerNames returns all router names, sorted (a convenience for
// tooling that enumerates sources).
func (v *Verifier) RouterNames() []string {
	t := v.net.Topology
	out := make([]string, t.NumRouters())
	for i := range out {
		out[i] = t.Name(topology.RouterID(i))
	}
	sort.Strings(out)
	return out
}

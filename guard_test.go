package sre

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sre/internal/bdd"
	"sre/internal/resil"
)

// TestGuardPanicFirewall checks the facade guard: an arbitrary panic
// behind a public entry point becomes ErrInternal carrying the stage and
// the panic payload, never a crash.
func TestGuardPanicFirewall(t *testing.T) {
	err := func() (err error) {
		defer guard("analysis", nil, &err)
		panic("symbolic state corrupted")
	}()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if ErrStage(err) != "analysis" {
		t.Errorf("ErrStage = %q, want %q", ErrStage(err), "analysis")
	}
	if !strings.Contains(err.Error(), "symbolic state corrupted") {
		t.Errorf("error %q should carry the panic payload", err)
	}
}

// TestGuardPassesResourceErrors checks that the guard recognises
// resource-limit and interruption panics from the BDD layer and rewraps
// them as their typed errors instead of ErrInternal.
func TestGuardPassesResourceErrors(t *testing.T) {
	limitErr := fmt.Errorf("table full: %w", bdd.ErrNodeLimit)
	err := func() (err error) {
		defer guard("verify", nil, &err)
		panic(limitErr)
	}()
	if !errors.Is(err, ErrBDDLimit) {
		t.Fatalf("err = %v, want ErrBDDLimit", err)
	}
	if errors.Is(err, ErrInternal) {
		t.Error("a node-limit overflow is not an internal error")
	}
	if ErrStage(err) != "verify" {
		t.Errorf("ErrStage = %q, want %q", ErrStage(err), "verify")
	}

	cancelErr := resil.Stage("src", resil.ErrCanceled)
	err = func() (err error) {
		defer guard("analysis", nil, &err)
		panic(cancelErr)
	}()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrInternal) {
		t.Error("cancellation is not an internal error")
	}
	// The innermost stage wins: the panic was born in SRC.
	if ErrStage(err) != "src" {
		t.Errorf("ErrStage = %q, want %q", ErrStage(err), "src")
	}
}

// TestGuardNoop leaves a clean return untouched.
func TestGuardNoop(t *testing.T) {
	err := func() (err error) {
		defer guard("analysis", nil, &err)
		return nil
	}()
	if err != nil {
		t.Fatalf("guard invented an error: %v", err)
	}
}

package sre_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§8). Each benchmark exercises the exact code path of the experiment
// at a CI-friendly scale; cmd/srebench runs the full-scale sweeps and
// prints the corresponding tables (see EXPERIMENTS.md for measured
// results and the comparison against the paper).

import (
	"fmt"
	"testing"

	"sre"
	"sre/internal/analysis"
	"sre/internal/baselines"
	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/prob"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/symbol"
	"sre/internal/topology"
	"sre/internal/workload"
)

// benchWAN is the WAN used by the comparative benches: a 16-router /
// 24-link mesh, small enough that even the scenario-enumerating
// baselines finish in seconds per op. cmd/srebench runs the full
// Bics/Columbus/USCarrier sizes.
func benchWAN() *config.Network {
	return workload.SyntheticWAN("bench", 16, 24, workload.BGP, 17)
}

// run executes the full SRE pipeline (SRC + SPF) at budget k.
func runPipeline(b *testing.B, net *config.Network, opts src.Options) *analysis.Pipeline {
	b.Helper()
	pipe, err := analysis.Run(net, opts)
	if err != nil {
		b.Fatal(err)
	}
	return pipe
}

// BenchmarkFig5_AllPairReachability measures checking all-pairs
// reachability under k=2 failures, one sub-benchmark per system
// (Figure 5). SRE symbolically covers the product space once; Batfish
// enumerates scenarios; Minesweeper runs one solver query per pair;
// Tiramisu computes min-cuts.
func BenchmarkFig5_AllPairReachability(b *testing.B) {
	const k = 2
	net := benchWAN()
	b.Run("SRE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe := runPipeline(b, net, src.Options{PruneK: k})
			pipe.AllPairsReachable(k)
			pipe.Release()
		}
	})
	b.Run("Batfish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf := &baselines.Batfish{Net: net}
			bf.AllPairsReachableUnderK(k)
		}
	})
	b.Run("Minesweeper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms := &baselines.Minesweeper{Net: net}
			ms.AllPairsReachableUnderK(k)
		}
	})
	b.Run("Tiramisu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ti := &baselines.Tiramisu{Net: net}
			ti.AllPairsReachableUnderK(k)
		}
	})
}

// BenchmarkFig6_SinglePairReachability measures one (source, prefix)
// query under k=2 failures per system (Figure 6): Tiramisu's min-cut
// wins, SRE pays the symbolic execution it would amortize over more
// queries.
func BenchmarkFig6_SinglePairReachability(b *testing.B) {
	const k = 2
	net := benchWAN()
	pfx := workload.RouterPrefix(7)
	srcID := topology.RouterID(0)
	b.Run("SRE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe := runPipeline(b, net, src.Options{PruneK: k, Prefixes: []routePrefix{pfx}})
			pipe.PairReachable(srcID, pfx, k)
			pipe.Release()
		}
	})
	b.Run("Batfish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf := &baselines.Batfish{Net: net}
			bf.SinglePairReachableUnderK(srcID, pfx, k)
		}
	})
	b.Run("Minesweeper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms := &baselines.Minesweeper{Net: net}
			ms.ReachableUnderK(srcID, pfx, k)
		}
	})
	b.Run("Tiramisu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ti := &baselines.Tiramisu{Net: net}
			ti.ReachableUnderK(srcID, pfx, k)
		}
	})
}

type routePrefix = route.Prefix

// BenchmarkFig7_SpecMining measures specification mining (Figure 7):
// SRE's stratified miner vs. Config2Spec-style per-scenario enumeration.
func BenchmarkFig7_SpecMining(b *testing.B) {
	const kMax = 2
	net := benchWAN()
	b.Run("SRE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mn := &analysis.Miner{Net: net, KMax: kMax}
			if _, err := mn.Mine(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Config2Spec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf := &baselines.Batfish{Net: net}
			bf.MineSpecs(kMax)
		}
	})
}

// BenchmarkFig8_Probability measures reachability-probability
// computation under link failures (Figure 8): single property and
// all properties, SRE vs. the NetDice-substitute.
func BenchmarkFig8_Probability(b *testing.B) {
	// Bench scale: a 16-router OSPF WAN; srebench runs the NetDice-size
	// topologies.
	net := workload.SyntheticWAN("benchprob", 16, 24, workload.OSPF, 23)
	const pDown = 0.001
	budget := prob.KForImprecision(net.Topology.NumLinks(), pDown, 1e-4)
	pfx := net.AllPrefixes()[3]
	srcID := topology.RouterID(10)
	b.Run("SRE/single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe := runPipeline(b, net, src.Options{PruneK: budget, Prefixes: []routePrefix{pfx}})
			prop := pipe.ReachBDD(srcID, pipe.OriginSet(pfx), pipe.OwnedHeaders(pfx))
			pipe.MinProbability(prop, prob.LinkModel{PDown: pDown})
			pipe.Release()
		}
	})
	b.Run("NetDice/single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nd := &baselines.NetDice{Net: net, PLinkDown: pDown, Imprecision: 1e-4}
			nd.Reachability(srcID, pfx)
		}
	})
	b.Run("SRE/all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe := runPipeline(b, net, src.Options{PruneK: budget})
			for _, p := range net.AllPrefixes() {
				og := pipe.OriginSet(p)
				hdr := pipe.OwnedHeaders(p)
				for s := 0; s < net.Topology.NumRouters(); s++ {
					if og[topology.RouterID(s)] {
						continue
					}
					pipe.MinProbability(pipe.ReachBDD(topology.RouterID(s), og, hdr), prob.LinkModel{PDown: pDown})
				}
			}
			pipe.Release()
		}
	})
	b.Run("NetDice/all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nd := &baselines.NetDice{Net: net, PLinkDown: pDown, Imprecision: 1e-4}
			nd.AllReachability()
		}
	})
}

// BenchmarkSec83_Differential measures product-space configuration
// diffing for one atomic change (§8.3), against DNA-style no-failure
// diffing.
func BenchmarkSec83_Differential(b *testing.B) {
	base := benchWAN()
	change := workload.AtomicChanges(base)[2] // export-deny-prefix
	after := base.Clone()
	change.Apply(after)
	model := prob.LinkModel{PDown: 0.001}
	b.Run("SRE_k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pb := runPipeline(b, base, src.Options{PruneK: 3})
			pa := runPipeline(b, after, src.Options{PruneK: 3})
			analysis.DiffReachability(pb, pa, &model)
			pb.Release()
			pa.Release()
		}
	})
	b.Run("DNA_k0", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dna := &baselines.DNA{Before: base, After: after}
			dna.Diff()
		}
	})
}

// BenchmarkFig9_PruningWAN measures failure-tolerance computation with
// different pruning configurations (Figure 9): no pruning, route
// pruning (one-shot), and route+prefix pruning (stratified).
func BenchmarkFig9_PruningWAN(b *testing.B) {
	const k = 2
	net := benchWAN()
	tolAll := func(pruneK int) {
		pipe, err := analysis.Run(net, src.Options{PruneK: pruneK})
		if err != nil {
			b.Fatal(err)
		}
		defer pipe.Release()
		for pair := range pipe.AllPairsReachable(0) {
			hdr := pipe.OwnedHeaders(pair.Prefix)
			pipe.MinTolerance(pipe.ReachBDD(pair.Src, pipe.OriginSet(pair.Prefix), hdr), hdr)
		}
	}
	// The unpruned variant runs on a 12-router network: without route
	// pruning the Bics-scale WAN explodes (that is Table 2's point).
	small := workload.SyntheticWAN("mini", 12, 18, workload.BGP, 3)
	b.Run("NoPrune_miniWAN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe, err := analysis.Run(small, src.Options{PruneK: -1})
			if err != nil {
				b.Fatal(err)
			}
			pipe.AllPairsReachable(k)
			pipe.Release()
		}
	})
	b.Run("RoutePrune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tolAll(k)
		}
	})
	b.Run("RoutePlusPrefixPrune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mn := &analysis.Miner{Net: net, KMax: k}
			if _, err := mn.Mine(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig10_AbstractionFatTree measures SRC+SPF on a BGP fat tree
// with and without AS-path abstraction (Figure 10).
func BenchmarkFig10_AbstractionFatTree(b *testing.B) {
	const k = 1
	net := workload.FatTree(4, workload.BGP)
	for _, abstract := range []bool{false, true} {
		b.Run(fmt.Sprintf("abstract=%v", abstract), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipe := runPipeline(b, net, src.Options{PruneK: k, Abstract: abstract})
				pipe.AllPairsReachable(k)
				pipe.Release()
			}
		})
	}
}

// BenchmarkTable2_RouteReduction measures the symbolic route counts that
// Table 2 reports, per optimization level (k=2 at bench scale).
func BenchmarkTable2_RouteReduction(b *testing.B) {
	net := benchWAN()
	variants := []struct {
		name string
		opts src.Options
	}{
		{"NoOpt", src.Options{PruneK: -1}},
		{"RoutePrune", src.Options{PruneK: 2}},
		{"RoutePruneAbstract", src.Options{PruneK: 2, Abstract: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var routes int
			for i := 0; i < b.N; i++ {
				eng := src.New(net, v.opts)
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				routes = eng.Statistics().RoutesImported
			}
			b.ReportMetric(float64(routes), "routes")
		})
	}
}

// BenchmarkFig11_Scalability measures SRE end-to-end on growing fat
// trees, reporting peak BDD nodes (the paper's memory proxy).
func BenchmarkFig11_Scalability(b *testing.B) {
	for _, arity := range []int{4, 8} {
		net := workload.FatTree(arity, workload.BGP)
		b.Run(fmt.Sprintf("nodes=%d", workload.FatTreeNodes(arity)), func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				sp := symbol.NewSpace(net.Topology.NumLinks(), bdd.Config{}, 0, nil)
				pipe, err := analysis.RunWithSpace(net, sp, src.Options{PruneK: 1, Abstract: true})
				if err != nil {
					b.Fatal(err)
				}
				pipe.AllPairsReachable(1)
				peak = sp.M.Statistics().PeakNodes
				pipe.Release()
			}
			b.ReportMetric(float64(peak), "peakBDDnodes")
		})
	}
}

// BenchmarkTable3_SATEncoding measures Hoyan-style DNF topology-condition
// route computation (Table 3): the condition length explodes with k,
// unlike the BDD encoding.
func BenchmarkTable3_SATEncoding(b *testing.B) {
	net := benchWAN()
	pfx := workload.RouterPrefix(4)
	for k := 0; k <= 2; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var peakLen int
			for i := 0; i < b.N; i++ {
				h := &baselines.Hoyan{Net: net, PruneK: k, TermLimit: 100000}
				res := h.ComputePrefix(pfx)
				peakLen = res.PeakTCLength
			}
			b.ReportMetric(float64(peakLen), "tcLength")
		})
	}
	b.Run("BDD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := src.New(net, src.Options{PruneK: 2, Prefixes: []routePrefix{pfx}})
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig13_Campus measures the SRC/SPF/FPA pipeline on the campus
// backbone (Figure 13).
func BenchmarkFig13_Campus(b *testing.B) {
	net := workload.Campus(workload.CampusOptions{VLANs: 40})
	for i := 0; i < b.N; i++ {
		pipe := runPipeline(b, net, src.Options{PruneK: 2})
		pipe.AllPairsReachable(2)
		pipe.Release()
	}
}

// BenchmarkFig14_WaypointProbability measures waypoint-probability
// computation (Figure 14), SRE vs. the NetDice-substitute.
func BenchmarkFig14_WaypointProbability(b *testing.B) {
	net := workload.SyntheticWAN("benchprob", 16, 24, workload.OSPF, 23)
	const pDown = 0.001
	budget := prob.KForImprecision(net.Topology.NumLinks(), pDown, 1e-4)
	pfx := net.AllPrefixes()[2]
	srcID := topology.RouterID(12)
	wp := topology.RouterID(3)
	b.Run("SRE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe := runPipeline(b, net, src.Options{PruneK: budget, Prefixes: []routePrefix{pfx}})
			prop := pipe.WaypointBDD(srcID, pipe.OriginSet(pfx), wp, pipe.OwnedHeaders(pfx))
			pipe.MinProbability(prop, prob.LinkModel{PDown: pDown})
			pipe.Release()
		}
	})
	b.Run("NetDice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nd := &baselines.NetDice{Net: net, PLinkDown: pDown, Imprecision: 1e-4}
			nd.WaypointProbability(srcID, pfx, wp)
		}
	})
}

// benchMultiPrefix builds a resilient verifier over every prefix of a
// 4-ary fat tree under a BDD node limit — the workload of
// srebench -exp parallel. At parallelism 1 this takes the sequential
// group-bisection path; above 1 the internal/sched pool runs one
// scoped pipeline per prefix, skipping the doomed oversized attempts,
// so the parallel benchmark is faster even on a single core.
func benchMultiPrefix(b *testing.B, parallelism int) {
	net := workload.FatTree(4, workload.BGP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := sre.NewVerifier(net, sre.Options{MaxFailures: 3, Resilient: true,
			BDDNodeLimit: 80000, Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		v.Release()
	}
}

func BenchmarkMultiPrefixSequential(b *testing.B) { benchMultiPrefix(b, 1) }

func BenchmarkMultiPrefixParallel(b *testing.B) { benchMultiPrefix(b, 4) }

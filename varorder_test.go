package sre_test

// Variable-order invariance through the public API. A variable order
// changes how BDDs are laid out, never what they mean: every order must
// report byte-identical results at every parallelism level and worker
// count, and a persistent cache written under one order must be a clean
// miss — not a corrupt decode — under another.

import (
	"reflect"
	"strings"
	"testing"

	"sre"
	"sre/internal/workload"
)

// fatTreeOrderRun is fatTreeRun with an explicit variable order and
// optional worker subprocesses.
func fatTreeOrderRun(t *testing.T, order string, parallelism, workers int) ([]sre.PrefixOutcome, int, []sre.PrefixResult) {
	t.Helper()
	net := workload.FatTree(4, workload.BGP)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 2, Resilient: true,
		Parallelism: parallelism, Workers: workers, VarOrder: order})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	outs := v.Outcomes()
	numPFECs := v.Metrics().NumPFECs
	sweep, err := v.FailureTolerances("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	return outs, numPFECs, sweep
}

// TestVarOrderParity pins the tentpole's public contract: declaration,
// bfs, mindeg, and auto orders are observationally identical — same
// outcomes, PFEC counts, and tolerance sweeps — at parallelism 1, 2,
// and 8.
func TestVarOrderParity(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeOrderRun(t, "declaration", 1, 0)
	if len(baseOuts) == 0 {
		t.Fatal("baseline reported no outcomes")
	}
	for _, order := range []string{"declaration", "bfs", "mindeg", "auto"} {
		for _, par := range []int{1, 2, 8} {
			if order == "declaration" && par == 1 {
				continue // the baseline itself
			}
			name := order + "/par=" + itoa(par)
			outs, pfecs, sweep := fatTreeOrderRun(t, order, par, 0)
			if !reflect.DeepEqual(outs, baseOuts) {
				t.Errorf("%s: outcomes diverge\n got %+v\nwant %+v", name, outs, baseOuts)
			}
			if pfecs != basePFECs {
				t.Errorf("%s: NumPFECs = %d, want %d", name, pfecs, basePFECs)
			}
			if !reflect.DeepEqual(sweep, baseSweep) {
				t.Errorf("%s: tolerance sweep diverges", name)
			}
		}
	}
}

// TestVarOrderWorkersParity runs the fleet path: worker subprocesses
// receive the order through the init frame and must lay out their
// spaces identically to the coordinator (serialized BDDs cross the
// pipe; a layout mismatch would corrupt every result).
func TestVarOrderWorkersParity(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeOrderRun(t, "declaration", 1, 0)
	for _, order := range []string{"bfs", "mindeg"} {
		outs, pfecs, sweep := fatTreeOrderRun(t, order, 0, 2)
		if !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("workers=2 %s: outcomes diverge", order)
		}
		if pfecs != basePFECs {
			t.Errorf("workers=2 %s: NumPFECs = %d, want %d", order, pfecs, basePFECs)
		}
		if !reflect.DeepEqual(sweep, baseSweep) {
			t.Errorf("workers=2 %s: tolerance sweep diverges", order)
		}
	}
}

// TestVarOrderUnknownRejected: a bad order fails fast at construction
// with a diagnostic naming the valid set, not deep in the engine.
func TestVarOrderUnknownRejected(t *testing.T) {
	net := workload.FatTree(4, workload.BGP)
	_, err := sre.NewVerifier(net, sre.Options{MaxFailures: 2, VarOrder: "sift"})
	if err == nil {
		t.Fatal("NewVerifier accepted unknown variable order")
	}
	if !strings.Contains(err.Error(), "sift") || !strings.Contains(err.Error(), "mindeg") {
		t.Errorf("error %q does not name the bad order and the valid set", err)
	}
}

// TestVarOrderCacheMiss pins the cache contract: a store warmed under
// declaration order is a clean, complete miss under bfs — zero hits,
// zero quarantines (order changes keys, it never corrupts records) —
// and the recomputed results are identical.
func TestVarOrderCacheMiss(t *testing.T) {
	dir := t.TempDir()
	run := func(order string) ([]sre.PrefixOutcome, sre.StoreMetrics) {
		st, err := sre.OpenStore(dir, sre.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		net := workload.FatTree(4, workload.BGP)
		v, err := sre.NewVerifier(net, sre.Options{
			MaxFailures: 2, Resilient: true, Store: st, VarOrder: order})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		return v.Outcomes(), st.Metrics()
	}

	coldOuts, coldM := run("declaration")
	if coldM.Puts == 0 {
		t.Fatalf("cold run published nothing: %+v", coldM)
	}

	// Same store, different order: every key must change.
	bfsOuts, bfsM := run("bfs")
	if bfsM.Hits != 0 {
		t.Errorf("order change replayed %d records written under another order", bfsM.Hits)
	}
	if bfsM.Quarantined != 0 {
		t.Errorf("order change quarantined %d records — keys must change, not decode", bfsM.Quarantined)
	}
	if bfsM.Puts == 0 {
		t.Errorf("bfs run published nothing: %+v", bfsM)
	}
	if !reflect.DeepEqual(bfsOuts, coldOuts) {
		t.Error("bfs recompute diverges from declaration results")
	}

	// Re-running under the original order still hits its own records.
	_, againM := run("declaration")
	if againM.Hits == 0 {
		t.Errorf("declaration rerun missed its own records: %+v", againM)
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "10+"
}

// CI-gate example: the §2.1 "verifying changes" workflow end to end.
//
// A requirements file captures the network's contract. Before rolling
// out a configuration change, the pipeline re-verifies every
// requirement over the product space of packets and failures — catching
// regressions that only manifest during failover, which per-snapshot
// testing misses.
//
// Run with: go run ./examples/cigate
package main

import (
	"fmt"
	"log"

	"sre"
	"sre/internal/workload"
)

// The contract for the walkthrough network: 128/1 must survive one
// failure, and 192/2 must never reach C around the waypoint B, under
// any double failure.
const contract = `
reach         A 128.0.0.0/1  tolerance>=1
reach         A 192.0.0.0/2  tolerance>=0
waypoint-only A 192.0.0.0/2  via B  tolerance>=2
probability   A 128.0.0.0/1  >=0.999  plink=0.001
`

func main() {
	net := workload.Figure1()
	reqs, err := sre.ParseRequirementsString(contract)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== verifying the current configuration ===")
	if !runGate(net, reqs) {
		log.Fatal("current configuration violates the contract")
	}

	// The proposed change: drop the inbound ACL on C (looks harmless —
	// steady-state forwarding is identical).
	proposed := net.Clone()
	c := proposed.Topology.MustRouter("C")
	a := proposed.Topology.MustRouter("A")
	ac, _ := proposed.Topology.LinkBetween(a, c)
	proposed.Router(c).Interfaces[ac].ACLIn = nil

	fmt.Println("\n=== verifying the proposed change ===")
	if runGate(proposed, reqs) {
		fmt.Println("change approved")
	} else {
		fmt.Println("change REJECTED: it breaks the waypoint contract under failures")
	}
}

// runGate verifies the requirements and prints a CI-style report.
func runGate(net *sre.Network, reqs []sre.Requirement) bool {
	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer v.Release()
	results, all := v.CheckRequirements(reqs)
	for _, r := range results {
		status := "ok  "
		if !r.Holds {
			status = "FAIL"
		}
		fmt.Printf("  %s %-13s %s %-14s → %s\n", status, r.Req.Kind, r.Req.Src, r.Req.Prefix, r.Got)
	}
	return all
}

// Fat-tree example: verifying a BGP data-center fabric.
//
// Data-center fabrics run eBGP with one private AS per router (RFC
// 7938). Their heavy path redundancy is exactly what makes per-scenario
// verification explode — and what SRE's abstract interpretation (§7.3)
// exploits: AS paths abstract to their length, so the many equal-length
// routes through parallel cores merge into single symbolic routes.
//
// The example builds a 20-router (k=4) fat tree, runs SRE with and
// without abstraction, and verifies that every edge-to-edge prefix
// tolerates one arbitrary link failure (it does: each edge router has
// two uplinks).
//
// Run with: go run ./examples/fattree
package main

import (
	"fmt"
	"log"
	"time"

	"sre"
	"sre/internal/config"
	"sre/internal/topology"
	"sre/internal/workload"
)

func main() {
	net := workload.FatTree(4, workload.BGP)
	fmt.Printf("k=4 fat tree: %d routers, %d links, %d edge prefixes\n",
		net.Topology.NumRouters(), net.Topology.NumLinks(), len(net.AllPrefixes()))

	for _, abstract := range []bool{false, true} {
		start := time.Now()
		v, err := sre.NewVerifier(net, sre.Options{MaxFailures: 2, Abstract: abstract})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nabstract=%v: %d PFECs in %v\n", abstract, v.NumPFECs(), time.Since(start).Round(time.Millisecond))
		if abstract {
			verifyTolerance(v, net)
		}
		v.Release()
	}
}

// verifyTolerance checks the fabric-wide single-failure guarantee from
// every edge router (where hosts attach) to every edge prefix.
func verifyTolerance(v *sre.Verifier, net *config.Network) {
	worst := sre.InfiniteTolerance
	var worstPair string
	checked := 0
	for _, pfx := range net.AllPrefixes() {
		origins := make(map[topology.RouterID]bool)
		for _, o := range net.OriginsOf(pfx) {
			origins[o] = true
		}
		for r := 0; r < net.Topology.NumRouters(); r++ {
			id := topology.RouterID(r)
			src := net.Topology.Name(id)
			if origins[id] || src[0] != 'e' {
				continue
			}
			k, err := v.FailureTolerance(src, pfx.String())
			if err != nil {
				log.Fatal(err)
			}
			checked++
			if k < worst {
				worst = k
				worstPair = fmt.Sprintf("%s -> %s", src, pfx)
			}
		}
	}
	fmt.Printf("checked %d edge-to-edge properties; worst tolerance: %d (%s)\n", checked, worst, worstPair)
	if worst >= 1 {
		fmt.Println("fabric survives any single link failure ✓")
	} else {
		fmt.Println("fabric has a single point of failure ✗")
	}
}

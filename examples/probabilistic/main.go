// Probabilistic verification example (the NetDice task, §8.2): compute
// the probability that traffic reaches its destination under
// independent link failures — and node failures — and check an
// availability target ("four 9s").
//
// SRE handles this by delaying the failure model: the same PFECs
// computed once answer deterministic AND probabilistic questions. The
// failure budget is chosen from the binomial imprecision bound of §7.1:
// scenarios with more simultaneous failures than the budget carry less
// probability mass than the requested imprecision.
//
// Run with: go run ./examples/probabilistic
package main

import (
	"fmt"
	"log"

	"sre"
	"sre/internal/topology"
	"sre/internal/workload"
)

func main() {
	// A 30-router ISP-style WAN running OSPF.
	net := workload.NetDiceWANs(1, workload.OSPF)[0]
	const (
		pLink       = 0.001  // per-link failure probability
		pNode       = 0.0001 // per-node failure probability
		imprecision = 1e-4   // acceptable probability under-estimation
		target      = 0.9999 // "four 9s" availability requirement
	)
	budget := sre.RequiredBudget(net, sre.LinkFailures(pLink), imprecision)
	fmt.Printf("%d routers, %d links; failure budget for imprecision %g: %d\n\n",
		net.Topology.NumRouters(), net.Topology.NumLinks(), imprecision, budget)

	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: budget})
	if err != nil {
		log.Fatal(err)
	}
	defer v.Release()

	// Availability report: reachability probability from a sample of
	// sources to a sample of prefixes.
	prefixes := net.AllPrefixes()
	fails := 0
	total := 0
	fmt.Println("availability report (link failures only):")
	for i := 0; i < 5; i++ {
		pfx := prefixes[i*len(prefixes)/5]
		origins := net.OriginsOf(pfx)
		for s := 0; s < net.Topology.NumRouters(); s += 7 {
			id := topology.RouterID(s)
			if id == origins[0] {
				continue
			}
			src := net.Topology.Name(id)
			p, err := v.Probability(src, pfx.String(), sre.LinkFailures(pLink))
			if err != nil {
				log.Fatal(err)
			}
			status := "meets 4x9s"
			if p < target {
				status = "BELOW TARGET"
				fails++
			}
			total++
			fmt.Printf("  %-14s -> %-16s  %.6f  %s\n", src, pfx, p, status)
		}
	}
	fmt.Printf("\n%d/%d sampled properties meet the %.4f target\n", total-fails, total, target)

	// Node failures lower availability further (§6.4).
	pfx := prefixes[0]
	src := net.Topology.Name(topology.RouterID(5))
	pl, _ := v.Probability(src, pfx.String(), sre.LinkFailures(pLink))
	pn, err := v.Probability(src, pfx.String(), sre.NodeAndLinkFailures(pLink, pNode))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith node failures: %s -> %s: %.6f (links only: %.6f)\n", src, pfx, pn, pl)
}

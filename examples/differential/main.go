// Differential analysis example (§6.5 / §8.3): before rolling out a
// configuration change, compare the network's behaviour over the WHOLE
// product space of packets and failures — not just the all-links-up
// snapshot that traditional diffing sees.
//
// The scenario mirrors the paper's running example: an operator deletes
// an inbound ACL. Nothing changes while all links are up (the route-map
// still steers traffic away), so a no-failure diff reports "no change" —
// but under certain single-link failures, traffic that used to be
// dropped starts reaching the destination, silently breaking a
// waypointing requirement.
//
// Run with: go run ./examples/differential
package main

import (
	"fmt"
	"log"

	"sre"
)

const before = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  bgp 65001
end
router B
  bgp 65002
end
router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func main() {
	netBefore, err := sre.ParseNetwork(before)
	if err != nil {
		log.Fatal(err)
	}
	// The proposed change: drop the inbound ACL on C's port to A.
	netAfter := netBefore.Clone()
	c := netAfter.Topology.MustRouter("C")
	a := netAfter.Topology.MustRouter("A")
	ac, _ := netAfter.Topology.LinkBetween(a, c)
	netAfter.Router(c).Interfaces[ac].ACLIn = nil

	fmt.Println("proposed change: delete the inbound ACL for 192.0.0.0/2 on C's port to A")

	// A no-failure diff (what DNA-style tools compute) sees nothing.
	shallow, err := sre.Diff(netBefore, netAfter, 0, sre.LinkFailures(0.001), sre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nno-failure diff: %d differences found\n", len(shallow))

	// The full product-space diff exposes the regression.
	deep, err := sre.Diff(netBefore, netAfter, 3, sre.LinkFailures(0.001), sre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("product-space diff (≤3 failures): %d differences\n\n", len(deep))
	for _, d := range deep {
		fmt.Printf("· %s -> %s\n", d.Src, d.Prefix)
		if d.FailuresOnly {
			fmt.Println("    invisible with all links up — a no-failure diff misses this")
		}
		fmt.Printf("    failure tolerance: %d -> %d\n", d.ToleranceDelta[0], d.ToleranceDelta[1])
		fmt.Printf("    reach probability: %.6f -> %.6f\n", d.ProbDelta[0], d.ProbDelta[1])
		if len(d.WitnessDown) > 0 {
			fmt.Printf("    witness: fail %v and behaviour differs\n", d.WitnessDown)
		}
	}
	fmt.Println("\nverdict: the change looks safe in steady state but alters failover behaviour;")
	fmt.Println("packets for 192/2 bypass the waypoint B (and its ACL) once A-B or B-C fails.")
}

// Specification mining example (the Config2Spec task, §8.1 of the
// paper): given only router configurations, discover what the network
// actually guarantees — which (source, prefix) pairs are reachable, how
// many simultaneous link failures each guarantee survives, which pairs
// are isolated, and which destinations are load-balanced.
//
// The miner runs SRE stratum by stratum with the paper's two pruning
// optimizations: route pruning (topology conditions restricted to at
// most k failures) and prefix pruning (pairs whose topological min-cut
// is exhausted are decided for free, and prefixes with no undecided
// pairs are skipped entirely).
//
// Run with: go run ./examples/specmining
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"sre"
	"sre/internal/workload"
)

func main() {
	// A Bics-scale WAN (33 routers, 48 links) running BGP, one /24 per
	// router.
	net := workload.WAN(workload.Bics, workload.BGP)
	fmt.Printf("mining %d routers, %d links, %d prefixes (up to 3 failures)\n\n",
		net.Topology.NumRouters(), net.Topology.NumLinks(), len(net.AllPrefixes()))

	start := time.Now()
	specs, err := sre.MineSpecs(net, 3, sre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Histogram of mined failure tolerances.
	hist := map[int]int{}
	for _, k := range specs.ReachTolerance {
		if k > 3 {
			k = 3 // "≥ 3"
		}
		hist[k]++
	}
	fmt.Printf("mined %d reachability specs in %v:\n", len(specs.ReachTolerance), elapsed.Round(time.Millisecond))
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		label := fmt.Sprintf("tolerance %d", k)
		if k == 3 {
			label = "tolerance ≥3"
		}
		if k == -1 {
			label = "unreachable "
		}
		fmt.Printf("  %-13s %5d pairs\n", label, hist[k])
	}
	fmt.Printf("\nisolated pairs: %d\n", len(specs.Isolated))
	multi := 0
	for _, n := range specs.LoadBalance {
		if n > 1 {
			multi++
		}
	}
	fmt.Printf("load-balanced (>1 simultaneous path): %d pairs\n", multi)
}

// Quickstart: the paper's Figure 1 walkthrough network, end to end.
//
// Three routers run BGP. Router C originates 128.0.0.0/1 and
// 192.0.0.0/2, but policy forces 192/2 through B: an outbound route-map
// on C hides 192/2 from A, and an inbound ACL on C's port to A drops
// 192/2 packets arriving directly.
//
// The example symbolically executes the network once and then answers
// several questions from the same PFECs — which is the point of SRE:
// one symbolic execution, many analyses.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sre"
)

const network = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end

router A
  bgp 65001
end

router B
  bgp 65002
end

router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func main() {
	net, err := sre.ParseNetwork(network)
	if err != nil {
		log.Fatal(err)
	}

	// Symbolically execute the whole network: control plane with
	// symbolic link states, data plane with symbolic headers+failures.
	// MaxFailures: -1 explores the complete failure space (8 scenarios
	// for 3 links — tiny here; use a bounded budget on real networks).
	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer v.Release()

	srcT, spfT := v.Stages()
	fmt.Printf("symbolic execution: %d PFECs (route computation %.1fms, packet forwarding %.1fms)\n\n",
		v.NumPFECs(), srcT*1000, spfT*1000)

	// §6.3 / Figure 4: failure tolerance. Packets in 192/2 only have
	// the path via B, so one failure can strand them; packets in 128/2
	// have the direct path plus the backup via B.
	for _, prefix := range []string{"192.0.0.0/2", "128.0.0.0/1"} {
		k, err := v.FailureTolerance("A", prefix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failure tolerance of Reach(A, C, %s): %d\n", prefix, k)
	}

	// §3.3 example 2: probability with each link up with p=0.9.
	p, err := v.Probability("A", "128.0.0.0/1", sre.LinkFailures(0.1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP[Reach(A, C, 128/2)] with link failure prob 0.1: %.3f (paper: 0.981)\n", p)

	// Waypointing: all 192/2 traffic should pass through B.
	wk, err := v.WaypointTolerance("A", "192.0.0.0/2", "B")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waypoint tolerance of Waypoint(A, C, B, 192/2): %d\n", wk)

	// Differential analysis (§6.5): delete the ACL on C and see what
	// changes — nothing under all-links-up, but failures expose it.
	after := net.Clone()
	c := after.Topology.MustRouter("C")
	a := after.Topology.MustRouter("A")
	ac, _ := after.Topology.LinkBetween(a, c)
	after.Router(c).Interfaces[ac].ACLIn = nil

	diffs, err := sre.Diff(net, after, 3, sre.LinkFailures(0.001), sre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter deleting C's inbound ACL (%d differences):\n", len(diffs))
	for _, d := range diffs {
		fmt.Printf("  %s -> %s: failures-only=%v, tolerance %d->%d, witness down=%v\n",
			d.Src, d.Prefix, d.FailuresOnly, d.ToleranceDelta[0], d.ToleranceDelta[1], d.WitnessDown)
	}
}

package sre

import (
	"errors"
	"fmt"
	"runtime/debug"

	"sre/internal/bdd"
	"sre/internal/obs"
	"sre/internal/resil"
)

// Typed errors of the resilient runtime. Match them with errors.Is; the
// concrete error usually also carries the interrupted pipeline stage,
// readable with ErrStage.
var (
	// ErrCanceled is returned when Options.Context is canceled mid-run.
	// Cancellation is cooperative: the pipeline polls the context from
	// its inner loops, so a run aborts within one polling interval.
	ErrCanceled = resil.ErrCanceled
	// ErrDeadline is returned when Options.Timeout (or the context's
	// own deadline) expires mid-run.
	ErrDeadline = resil.ErrDeadline
	// ErrNoConvergence is returned when the symbolic (or simulated)
	// control plane does not reach a fixed point within its iteration
	// bound; the error message names the oscillating routers.
	ErrNoConvergence = resil.ErrNoConvergence
	// ErrInternal is returned when an internal panic was caught at the
	// public API boundary instead of crashing the caller's process. It
	// always indicates a defect in this package; the error message
	// carries the panic value and a stack trace.
	ErrInternal = resil.ErrInternal
)

// ErrStage returns the pipeline stage an error interrupted — "src"
// (symbolic route computation), "spf" (symbolic packet forwarding),
// "analysis", "mine", "sim", "diff", "verify" — or "" when the error
// carries no stage tag.
func ErrStage(err error) string { return resil.StageOf(err) }

// guard is the panic firewall installed (via defer) at every public API
// entry point. BDD node-table overflows and cooperative interruptions
// travel as panics through deep recursion for cheapness; guard converts
// them back to their typed errors. Anything else is a defect: it is
// converted to ErrInternal with the panic value and stack attached, and
// counted on the resilience.panics telemetry counter, so one poisoned
// query cannot crash a process that has other work to finish.
func guard(stage string, tel *obs.Telemetry, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok && (errors.Is(e, bdd.ErrNodeLimit) || resil.Interruption(e)) {
		*errp = resil.Stage(stage, e)
		return
	}
	tel.Counter("resilience.panics").Inc()
	*errp = &resil.StageError{Stage: stage,
		Err: fmt.Errorf("%w: panic: %v\n%s", resil.ErrInternal, r, debug.Stack())}
}

package sre_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"sre"
	"sre/internal/workload"
)

// fatTreeRun builds a resilient verifier over every prefix of a 4-ary
// fat tree at the given parallelism and condenses everything the public
// API observes: the per-prefix outcomes, the total PFEC count, and an
// all-prefix tolerance sweep from one edge router.
func fatTreeRun(t *testing.T, parallelism int) ([]sre.PrefixOutcome, int, []sre.PrefixResult) {
	t.Helper()
	net := workload.FatTree(4, workload.BGP)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 2, Resilient: true, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	outs := v.Outcomes()
	numPFECs := v.Metrics().NumPFECs
	sweep, err := v.FailureTolerances("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	return outs, numPFECs, sweep
}

// TestParallelDeterminism pins the scheduler's core contract: the same
// verification at parallelism 1 (the sequential path), 2, and 8 returns
// identical outcomes, PFEC counts, and tolerances — results depend on
// the network, never on the worker count or completion order.
func TestParallelDeterminism(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeRun(t, 1)
	if len(baseOuts) == 0 {
		t.Fatal("resilient run reported no outcomes")
	}
	for _, p := range []int{2, 8} {
		outs, pfecs, sweep := fatTreeRun(t, p)
		if !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("parallelism %d: outcomes diverge\n got %+v\nwant %+v", p, outs, baseOuts)
		}
		if pfecs != basePFECs {
			t.Errorf("parallelism %d: NumPFECs = %d, sequential %d", p, pfecs, basePFECs)
		}
		if !reflect.DeepEqual(sweep, baseSweep) {
			t.Errorf("parallelism %d: tolerance sweep diverges\n got %+v\nwant %+v", p, sweep, baseSweep)
		}
	}
}

// TestParallelMiningDeterminism runs the stratified miner at several
// worker counts: the mined specifications must be identical maps.
func TestParallelMiningDeterminism(t *testing.T) {
	net := workload.FatTree(4, workload.BGP)
	base, err := sre.MineSpecs(net, 2, sre.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.ReachTolerance) == 0 {
		t.Fatal("miner decided no pairs")
	}
	for _, p := range []int{2, 8} {
		specs, err := sre.MineSpecs(net, 2, sre.Options{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(specs, base) {
			t.Errorf("parallelism %d: mined specs diverge\n got %+v\nwant %+v", p, specs, base)
		}
	}
}

// TestParallelDeadlineCarriesStage forces the deadline to expire inside
// a parallel run: the error must be a deadline interruption and carry
// the stage it interrupted, exactly like the sequential path.
func TestParallelDeadlineCarriesStage(t *testing.T) {
	net := workload.FatTree(4, workload.BGP)
	_, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: -1, Timeout: time.Nanosecond, Resilient: true, Parallelism: 4})
	if err == nil {
		t.Fatal("nanosecond deadline did not expire")
	}
	if !errors.Is(err, sre.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if sre.ErrStage(err) == "" {
		t.Errorf("deadline error should carry the interrupted stage: %v", err)
	}
}

package sre

import (
	"time"

	"sre/internal/analysis"
	"sre/internal/store"
)

// Store is a crash-safe, content-addressed on-disk cache of per-prefix
// verification results. Open one with OpenStore, pass it via
// Options.Store, and runs — in-process, parallel, or multi-process —
// consult it before computing each prefix and publish what they
// compute. The prefix decomposition (§7.2) keys each record by
// everything that can influence its result (the config slice the prefix
// can observe, the topology, the verification options, the kernel), so
// a warm cache replays results identical to a cold run at any
// parallelism or worker count.
//
// The store is safe against crashes and corruption by construction:
// records are checksummed, published via temp-file + atomic rename
// under an owner lock (with stale-lock takeover), and verified on every
// read — a torn, bit-flipped, or truncated record is quarantined and
// transparently recomputed, never trusted. Multiple processes may share
// one directory; readers never block.
type Store struct {
	s *store.Store
}

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// MaxRecordBytes bounds a record's declared payload length (0 = the
	// 1 GiB default). Oversized records — stored by a roomier writer or
	// declared by a corrupt length prefix — are rejected on read.
	MaxRecordBytes int64
	// LockTTL is how old a live-looking owner lock may grow before a
	// writer steals it (0 = 5 minutes). Locks of provably dead processes
	// are taken over immediately.
	LockTTL time.Duration
	// Telemetry, when non-nil, receives the store's counters
	// (store.hits, store.misses, store.puts, store.put_errors,
	// store.quarantined) and quarantine flight-recorder events.
	Telemetry *Telemetry
}

// StoreMetrics counts a store's cache traffic and corruption handling;
// Quarantined > 0 means corrupt records were detected, set aside, and
// recomputed.
type StoreMetrics = store.Metrics

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	s, err := store.Open(dir, store.Options{
		MaxRecordBytes: opts.MaxRecordBytes,
		LockTTL:        opts.LockTTL,
		Telemetry:      opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.s.Dir() }

// Close releases the store handle. Records already published stay on
// disk; the store holds no long-lived file locks between operations.
func (st *Store) Close() error { return st.s.Close() }

// Metrics returns the store's traffic counters for this process.
func (st *Store) Metrics() StoreMetrics { return st.s.Metrics() }

// StoreStats describes what is on disk under a store directory.
type StoreStats = store.Stats

// Stats scans the store directory and reports record and quarantine
// occupancy.
func (st *Store) Stats() (StoreStats, error) { return st.s.Stats() }

// StoreFsckReport is the result of a full store verification pass.
type StoreFsckReport = store.FsckReport

// StoreFsckFailure details one record quarantined by Verify: its key,
// the file it lived at, and the validation error.
type StoreFsckFailure = store.FsckFailure

// Verify re-reads and re-checksums every record (a full fsck),
// quarantining any that fail and reaping stale temp files.
func (st *Store) Verify() (StoreFsckReport, error) { return st.s.Verify() }

// StoreGCOptions bounds a garbage-collection pass.
type StoreGCOptions = store.GCOptions

// StoreGCReport is the result of a garbage-collection pass.
type StoreGCReport = store.GCReport

// GC evicts records past the age and size budgets (oldest first) and
// sweeps quarantined files older than the age budget.
func (st *Store) GC(opts StoreGCOptions) (StoreGCReport, error) { return st.s.GC(opts) }

// cache adapts the store to the analysis layer (nil-safe).
func (st *Store) cache() *analysis.ResultCache {
	if st == nil {
		return nil
	}
	return &analysis.ResultCache{S: st.s}
}

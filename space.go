package sre

import (
	"sre/internal/bdd"
	"sre/internal/src"
	"sre/internal/symbol"
)

// symbolSpace aliases the internal symbolic variable space so the facade
// can size it without exporting the internal package.
type symbolSpace = symbol.Space

// newSpace allocates the symbolic space for a network: 32 destination
// header bits, one variable per link — laid out by the resolved
// Options.VarOrder — and one node-failure variable per router (used by
// probabilistic analyses with node failures). The telemetry handle (may
// be nil) wires bdd.* counters and gauges into the underlying manager;
// the interrupt hook (may be nil) is polled from the manager's apply
// loops so cancellation reaches even the deepest BDD recursions.
func newSpace(net *Network, opts src.Options) *symbolSpace {
	return symbol.NewSpace(net.Topology.NumLinks(),
		bdd.Config{NodeLimit: opts.BDDNodeLimit, Telemetry: opts.Telemetry,
			Interrupt: opts.Interrupt, LegacyKernel: opts.LegacyBDDKernel,
			Reorder: src.BDDReorder(opts)},
		net.Topology.NumRouters(),
		src.LinkOrder(net, opts).Perm)
}

package sre

import (
	"sre/internal/bdd"
	"sre/internal/symbol"
)

// symbolSpace aliases the internal symbolic variable space so the facade
// can size it without exporting the internal package.
type symbolSpace = symbol.Space

// newSpace allocates the symbolic space for a network: 32 destination
// header bits, one variable per link, and one node-failure variable per
// router (used by probabilistic analyses with node failures).
func newSpace(net *Network, nodeLimit int) *symbolSpace {
	return symbol.NewSpace(net.Topology.NumLinks(),
		bdd.Config{NodeLimit: nodeLimit}, net.Topology.NumRouters())
}

package sre

import (
	"fmt"

	"sre/internal/analysis"
	"sre/internal/route"
)

// PrefixOutcome reports how one prefix of a resilient run fared: whether
// it was quarantined after a node-table overflow, which degradation
// rungs it was retried on, and the error when the ladder was exhausted.
type PrefixOutcome = analysis.PrefixOutcome

// Degradation-ladder rung names recorded in PrefixOutcome.Rungs.
const (
	RungAbstract     = analysis.RungAbstract
	RungHalveBudget  = analysis.RungHalveBudget
	RungSplitHeaders = analysis.RungSplitHeaders
	// RungWorkerCrash marks a prefix of a multi-process run that
	// exhausted its worker attempts and was re-verified in-process. It
	// attributes the crashes; the fallback ran the originally requested
	// options, so the prefix's results are exact.
	RungWorkerCrash = analysis.RungWorkerCrash
)

// Outcomes returns the per-prefix outcomes of a resilient run, sorted by
// prefix. It returns nil for verifiers built without Options.Resilient.
func (v *Verifier) Outcomes() []PrefixOutcome {
	if !v.resilient || v.part == nil {
		return nil
	}
	return v.part.Outcomes()
}

// Degraded reports whether any prefix of a resilient run was verified
// with weaker settings than requested, or failed outright. Callers that
// need exact results under the original options should treat a degraded
// run as partial.
func (v *Verifier) Degraded() bool {
	for _, o := range v.Outcomes() {
		if o.Degraded || o.Err != nil {
			return true
		}
	}
	return false
}

// CrashDegraded reports whether any prefix of a multi-process run
// (Options.Workers > 0) exhausted its worker attempts and fell back to
// in-process verification. Unlike Degraded it is not gated on
// Options.Resilient: crash attribution matters even when the fallback
// verified the prefix exactly. `sre` exits with status 3 when this is
// the only blemish on an otherwise successful run.
func (v *Verifier) CrashDegraded() bool {
	if v.part == nil {
		return false
	}
	for _, o := range v.part.Outcomes() {
		for _, r := range o.Rungs {
			if r == RungWorkerCrash {
				return true
			}
		}
	}
	return false
}

// allPipes returns every live pipeline behind the verifier: exactly one
// for a regular run, one per prefix group for a resilient run.
func (v *Verifier) allPipes() []*analysis.Pipeline {
	if v.part != nil {
		return v.part.Groups
	}
	return []*analysis.Pipeline{v.pipe}
}

// pipesFor returns the pipelines covering pfx. A regular verifier has a
// single pipeline covering everything. A resilient verifier may cover a
// prefix with one pipeline (its group, or its quarantine retry) or two
// (after the split-headers rung); queries combine results across them.
// Prefixes that exhausted the degradation ladder, or were never part of
// the run, yield an error.
func (v *Verifier) pipesFor(pfx route.Prefix) ([]*analysis.Pipeline, error) {
	if v.part == nil {
		return []*analysis.Pipeline{v.pipe}, nil
	}
	if o := v.part.Outcome(pfx); o != nil && o.Err != nil {
		return nil, fmt.Errorf("sre: prefix %s could not be verified (degradation ladder exhausted): %w", pfx, o.Err)
	}
	pipes := v.part.PipelinesFor(pfx)
	if len(pipes) == 0 {
		return nil, fmt.Errorf("sre: prefix %s was not part of this resilient run", pfx)
	}
	return pipes, nil
}

// analyzedPrefixes returns the prefixes this verifier has results for.
func (v *Verifier) analyzedPrefixes() []route.Prefix {
	if v.part != nil {
		outs := v.part.Outcomes()
		pfxs := make([]route.Prefix, len(outs))
		for i, o := range outs {
			pfxs[i] = o.Prefix
		}
		return pfxs
	}
	if len(v.prefixes) > 0 {
		return v.prefixes
	}
	return v.net.AllPrefixes()
}

// PrefixResult is one prefix's entry in a per-prefix query sweep: the
// measured value, or the error that prevented measuring it, plus the
// resilience flags of the prefix's outcome when the verifier ran in
// resilient mode.
type PrefixResult struct {
	Prefix string
	// Value is the measured tolerance; meaningful only when Err is nil.
	Value int
	// Err is set when the prefix could not be evaluated (quarantined
	// past the ladder, not originated, ...). Other prefixes in the same
	// sweep still carry results.
	Err error
	// Degraded/Quarantined/Rungs mirror the prefix's PrefixOutcome.
	Degraded    bool
	Quarantined bool
	Rungs       []string
}

// FailureTolerances sweeps FailureTolerance from srcRouter over every
// analyzed prefix. Unlike calling FailureTolerance in a loop, the sweep
// degrades gracefully: a prefix that failed verification contributes a
// PrefixResult with Err set instead of aborting the sweep, so partial
// results survive resource exhaustion on individual prefixes.
func (v *Verifier) FailureTolerances(srcRouter string) ([]PrefixResult, error) {
	if _, ok := v.net.Topology.RouterByName(srcRouter); !ok {
		return nil, fmt.Errorf("sre: unknown router %q", srcRouter)
	}
	prefixes := v.analyzedPrefixes()
	out := make([]PrefixResult, 0, len(prefixes))
	for _, pfx := range prefixes {
		pr := PrefixResult{Prefix: pfx.String()}
		if v.part != nil {
			if o := v.part.Outcome(pfx); o != nil {
				pr.Degraded, pr.Quarantined, pr.Rungs = o.Degraded, o.Quarantined, o.Rungs
			}
		}
		k, err := v.FailureTolerance(srcRouter, pfx.String())
		if err != nil {
			pr.Err = err
		} else {
			pr.Value = k
		}
		out = append(out, pr)
	}
	return out, nil
}

package sre_test

import (
	"math"
	"testing"

	"sre"
)

func TestForwardingClasses(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	classes, err := v.ForwardingClasses("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) == 0 {
		t.Fatal("no forwarding classes from A")
	}
	// The primary class: direct A→C for 128/2 with all relevant links
	// up (MinFailures 0), covering a quarter of the address space...
	// 128/2 = 2^30 addresses.
	var direct *sre.ForwardingClass
	for i := range classes {
		c := &classes[i]
		if len(c.Path) == 2 && c.Path[0] == "A" && c.Path[1] == "C" && c.Delivered {
			direct = c
		}
	}
	if direct == nil {
		t.Fatal("missing direct A→C class")
	}
	if direct.MinFailures != 0 {
		t.Errorf("direct path min failures = %d, want 0", direct.MinFailures)
	}
	if math.Abs(direct.Packets-math.Pow(2, 30)) > 1 {
		t.Errorf("direct path packets = %g, want 2^30 (the 128/2 owned space)", direct.Packets)
	}
	// Backup class via B requires at least one failure for 128/2, but
	// 192/2 uses it from zero failures — combined class MinFailures 0.
	for _, c := range classes {
		if len(c.Path) == 3 && c.Delivered && c.MinFailures > 1 {
			t.Errorf("3-hop class should activate within one failure: %v", c)
		}
	}
	if s := classes[0].String(); s == "" {
		t.Error("String should render")
	}
	if _, err := v.ForwardingClasses("nope"); err == nil {
		t.Error("unknown router must error")
	}
}

func TestRouterNames(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: 0})
	defer v.Release()
	names := v.RouterNames()
	if len(names) != 3 || names[0] != "A" || names[2] != "C" {
		t.Fatalf("RouterNames = %v", names)
	}
}

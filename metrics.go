package sre

import (
	"encoding/json"
	"io"
	"os"

	"sre/internal/obs"
	"sre/internal/prob"
)

// Telemetry collects counters, gauges, histograms, tracing spans, and
// progress events across the verification pipeline. Create one with
// NewTelemetry, pass it via Options.Telemetry (it may be shared across
// verifiers — counters accumulate), and read it back with
// Verifier.Metrics or Telemetry.WriteJSON.
type Telemetry = obs.Telemetry

// ProgressEvent is one live progress update from a pipeline stage, e.g.
// "spf: 412/1280 routers, 18.2k PFECs, bdd 1.4M nodes (peak 2.1M),
// cache hit 93%".
type ProgressEvent = obs.Event

// ProgressSink consumes progress events; see Options.Progress.
type ProgressSink = obs.Sink

// ProgressFunc adapts a function to the ProgressSink interface.
type ProgressFunc = obs.SinkFunc

// TraceSpan is a snapshot of one tracing span (stage timings with
// attributes, nested per pipeline structure).
type TraceSpan = obs.SpanSnapshot

// TelemetryReport is the JSON-marshalable snapshot of a Telemetry:
// counters, gauges, histogram summaries, and span trees.
type TelemetryReport = obs.Report

// NewTelemetry creates an empty telemetry registry. It also installs
// itself as the sink of the prob package's counters (the package's
// functions are free functions, so the hook is global; the last
// installed telemetry wins).
func NewTelemetry() *Telemetry {
	t := obs.New()
	prob.SetTelemetry(t)
	return t
}

// StderrProgress returns the default progress sink: when stderr is an
// interactive terminal, a single in-place status line (ANSI redraw);
// otherwise (pipes, files, CI logs) a rate-limited ticker printing one
// plain line per stage.
func StderrProgress() ProgressSink { return obs.NewAutoTicker(os.Stderr, 0) }

// FlightRecorder is a bounded, lock-striped ring buffer of structured
// pipeline events (stage boundaries, scheduler tasks, per-prefix
// degradation outcomes, BDD GC and overflow points). Create one with
// NewFlightRecorder, pass it via Options.Recorder, and export the
// recording with WriteChromeTrace (Perfetto / chrome://tracing) or
// WriteEventLog (NDJSON, the input of `srebench -compare`).
type FlightRecorder = obs.Recorder

// TraceEvent is one recorded flight-recorder event.
type TraceEvent = obs.TraceEvent

// EnvInfo describes the host environment of a run (Go version,
// GOMAXPROCS, CPU model, ...); embedded in exports so comparisons can
// refuse apples-to-oranges diffs.
type EnvInfo = obs.EnvInfo

// NewFlightRecorder creates a flight recorder holding up to capacity
// events (0 = the default, 65536); when full, the oldest events are
// overwritten and counted as dropped.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return obs.NewRecorder(capacity)
}

// Environment returns metadata about the current host and process.
func Environment() EnvInfo { return obs.Environment() }

// EventLogHeader is the first line of an NDJSON flight-recorder log.
type EventLogHeader = obs.EventLogHeader

// ReadEventLog parses an NDJSON event log written by
// FlightRecorder.WriteEventLog.
func ReadEventLog(r io.Reader) (EventLogHeader, []TraceEvent, error) {
	return obs.ReadEventLog(r)
}

// MetricsReport is the typed metrics summary of one verification run.
// All fields are available even when telemetry was disabled; Telemetry
// carries the full counter/span snapshot when it was enabled.
type MetricsReport struct {
	// SRCSeconds/SPFSeconds are the stage wall times of Figure 13.
	SRCSeconds float64 `json:"src_seconds"`
	SPFSeconds float64 `json:"spf_seconds"`

	NumRouters int `json:"num_routers"`
	NumLinks   int `json:"num_links"`
	// NumPFECs is the number of packet failure equivalence classes
	// discovered across all sources.
	NumPFECs int `json:"num_pfecs"`

	// Control-plane work counters (the paper's Table 2).
	RoutesImported int `json:"routes_imported"`
	RoutesPruned   int `json:"routes_pruned"`
	RIBRoutes      int `json:"rib_routes"`
	Activations    int `json:"activations"`

	BDD BDDMetrics `json:"bdd"`

	// Store reports persistent result-cache traffic when the run carried
	// one (Options.Store): hits, misses, publications, and — after
	// corruption — quarantined record counts.
	Store *StoreMetrics `json:"store,omitempty"`

	// Telemetry is the full registry snapshot, present when the
	// verifier ran with telemetry enabled.
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`
}

// BDDMetrics reports the state of the BDD manager behind a verifier.
type BDDMetrics struct {
	// LiveNodes is allocated slots minus the free list; PeakNodes is
	// the high-water mark (Figure 11's memory proxy).
	LiveNodes     int     `json:"live_nodes"`
	FreeNodes     int     `json:"free_nodes"`
	PeakNodes     int     `json:"peak_nodes"`
	GCRuns        int     `json:"gc_runs"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// AxCacheHits/AxCacheMisses count the dedicated AndExists
	// relational-product cache.
	AxCacheHits   uint64 `json:"ax_cache_hits"`
	AxCacheMisses uint64 `json:"ax_cache_misses"`
	// CacheRetained/CacheInvalidated count operation-cache entries kept
	// and dropped across GC sweeps (the legacy kernel wipes everything,
	// so it reports zero retained).
	CacheRetained    uint64 `json:"cache_retained"`
	CacheInvalidated uint64 `json:"cache_invalidated"`
	// PreGCCacheHitRatio is the hit ratio accumulated up to the most
	// recent collection; PostGCCacheHitRatio the ratio since. Comparable
	// figures mean cache warmth survives collections.
	PreGCCacheHitRatio  float64 `json:"pre_gc_cache_hit_ratio"`
	PostGCCacheHitRatio float64 `json:"post_gc_cache_hit_ratio"`
	// VarOrderMethod is the resolved static variable-order method the
	// run laid its spaces out with (never "auto": auto resolves to a
	// concrete method per topology).
	VarOrderMethod string `json:"var_order_method"`
	// ReorderEnabled records whether dynamic reordering was armed
	// (Options.DynamicReorder); Reorders counts the sifting passes that
	// actually fired across all managers. SiftedVars and SiftSwaps count
	// variables sifted and adjacent-level swaps; ReorderSeconds is the
	// wall time spent sifting. LastReorderBefore/After are the live node
	// counts around the most recent pass (summed over managers).
	ReorderEnabled    bool    `json:"reorder_enabled,omitempty"`
	Reorders          int     `json:"reorders,omitempty"`
	SiftedVars        int     `json:"sifted_vars,omitempty"`
	SiftSwaps         int     `json:"sift_swaps,omitempty"`
	ReorderSeconds    float64 `json:"reorder_seconds,omitempty"`
	LastReorderBefore int     `json:"last_reorder_before,omitempty"`
	LastReorderAfter  int     `json:"last_reorder_after,omitempty"`
}

// Metrics returns the metrics of the verifier's symbolic execution. The
// report is complete without telemetry; with Options.Telemetry set it
// additionally embeds the counter and span snapshot. For resilient runs
// the report aggregates over all prefix-group pipelines (each group has
// its own engine and BDD manager), so node and work counters are sums.
func (v *Verifier) Metrics() MetricsReport {
	r := MetricsReport{
		NumRouters: v.net.Topology.NumRouters(),
		NumLinks:   v.net.Topology.NumLinks(),
	}
	r.BDD.VarOrderMethod = v.varOrder
	r.BDD.ReorderEnabled = v.reorder
	var hitsAtGC, missAtGC uint64
	for _, pipe := range v.allPipes() {
		bst := pipe.Sp.M.Statistics()
		r.SRCSeconds += pipe.SRCTime.Seconds()
		r.SPFSeconds += pipe.SPFTime.Seconds()
		r.NumPFECs += pipe.NumPFECs()
		// Pipelines decoded from worker subprocesses have no engine: the
		// route-computation counters stayed in the worker and reach this
		// registry only through its merged telemetry shard.
		if pipe.Eng != nil {
			est := pipe.Eng.Statistics()
			r.RoutesImported += est.RoutesImported
			r.RoutesPruned += est.RoutesPruned
			r.RIBRoutes += est.RIBRoutes
			r.Activations += est.Activations
		}
		r.BDD.LiveNodes += bst.LiveNodes
		r.BDD.FreeNodes += bst.FreeNodes
		r.BDD.PeakNodes += bst.PeakNodes
		r.BDD.GCRuns += bst.GCRuns
		r.BDD.CacheHits += bst.CacheHits
		r.BDD.CacheMisses += bst.CacheMiss
		r.BDD.AxCacheHits += bst.AxCacheHits
		r.BDD.AxCacheMisses += bst.AxCacheMiss
		r.BDD.CacheRetained += bst.CacheRetained
		r.BDD.CacheInvalidated += bst.CacheInvalidated
		r.BDD.Reorders += bst.Reorders
		r.BDD.SiftedVars += bst.SiftedVars
		r.BDD.SiftSwaps += bst.SiftSwaps
		r.BDD.ReorderSeconds += float64(bst.ReorderNanos) / 1e9
		r.BDD.LastReorderBefore += bst.LastReorderBefore
		r.BDD.LastReorderAfter += bst.LastReorderAfter
		hitsAtGC += bst.HitsAtLastGC
		missAtGC += bst.MissAtLastGC
	}
	if total := r.BDD.CacheHits + r.BDD.CacheMisses; total > 0 {
		r.BDD.CacheHitRatio = float64(r.BDD.CacheHits) / float64(total)
	}
	if total := hitsAtGC + missAtGC; total > 0 {
		r.BDD.PreGCCacheHitRatio = float64(hitsAtGC) / float64(total)
	}
	if total := (r.BDD.CacheHits - hitsAtGC) + (r.BDD.CacheMisses - missAtGC); total > 0 {
		r.BDD.PostGCCacheHitRatio = float64(r.BDD.CacheHits-hitsAtGC) / float64(total)
	}
	if v.store != nil {
		m := v.store.Metrics()
		r.Store = &m
	}
	if v.tel != nil {
		for _, pipe := range v.allPipes() {
			pipe.Sp.M.SampleTelemetry()
		}
		// Multi-pipeline runs sample each manager into its own (already
		// merged) worker shard, where gauges combine by Max; the report
		// sums. Publish the summed node figures on the verifier's own
		// registry so the snapshot matches the stats regardless of how
		// many managers contributed.
		v.tel.Gauge("bdd.live_nodes").Set(float64(r.BDD.LiveNodes))
		v.tel.Gauge("bdd.peak_nodes").Set(float64(r.BDD.PeakNodes))
		v.tel.Gauge("bdd.free_nodes").Set(float64(r.BDD.FreeNodes))
		rep := v.tel.Snapshot()
		r.Telemetry = &rep
	}
	return r
}

// WriteMetrics writes the metrics report as indented JSON.
func (v *Verifier) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v.Metrics())
}

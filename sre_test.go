package sre_test

import (
	"math"
	"strings"
	"testing"

	"sre"
)

const figure1 = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end
router A
  bgp 65001
end
router B
  bgp 65002
end
router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func verifier(t *testing.T, opts sre.Options) *sre.Verifier {
	t.Helper()
	net, err := sre.ParseNetwork(figure1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sre.NewVerifier(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPublicFailureTolerance(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	k, err := v.FailureTolerance("A", "128.0.0.0/1")
	if err != nil {
		t.Fatal(err)
	}
	// The query covers the headers OWNED by 128/1 — excluding the
	// more-specific 192/2, which forwards along its own prefix. Both
	// disjoint paths serve 128/2: tolerance 1 (the paper's Figure 4).
	if k != 1 {
		t.Errorf("tolerance(A,128/1 owned space) = %d, want 1", k)
	}
	k, err = v.FailureTolerance("A", "192.0.0.0/2")
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("tolerance(A,192/2) = %d, want 0", k)
	}
}

func TestPublicProbability(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	p, err := v.Probability("A", "192.0.0.0/2", sre.LinkFailures(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.81) > 1e-12 {
		t.Errorf("probability = %v, want 0.81", p)
	}
	pn, err := v.Probability("A", "192.0.0.0/2", sre.NodeAndLinkFailures(0.1, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if pn >= p {
		t.Errorf("adding node failures should lower the probability: %v >= %v", pn, p)
	}
}

func TestPublicWaypoint(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	k, err := v.WaypointTolerance("A", "192.0.0.0/2", "B")
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("waypoint tolerance = %d, want 0", k)
	}
	k, err = v.WaypointTolerance("A", "128.0.0.0/1", "B")
	if err != nil {
		t.Fatal(err)
	}
	if k != -1 {
		t.Errorf("waypoint tolerance for 128/1 via B = %d, want -1 (direct path skips B)", k)
	}
}

func TestPublicErrors(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: 1})
	defer v.Release()
	if _, err := v.FailureTolerance("Z", "128.0.0.0/1"); err == nil || !strings.Contains(err.Error(), "unknown router") {
		t.Errorf("want unknown-router error, got %v", err)
	}
	if _, err := v.FailureTolerance("A", "not-a-prefix"); err == nil {
		t.Error("want parse error")
	}
	if _, err := v.FailureTolerance("A", "9.9.9.0/24"); err == nil || !strings.Contains(err.Error(), "not originated") {
		t.Errorf("want not-originated error, got %v", err)
	}
}

func TestPublicMineSpecs(t *testing.T) {
	net, err := sre.ParseNetwork(figure1)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := sre.MineSpecs(net, 2, sre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs.ReachTolerance) == 0 {
		t.Fatal("no specs mined")
	}
}

func TestPublicDiff(t *testing.T) {
	before, err := sre.ParseNetwork(figure1)
	if err != nil {
		t.Fatal(err)
	}
	after := before.Clone()
	c := after.Topology.MustRouter("C")
	a := after.Topology.MustRouter("A")
	ac, _ := after.Topology.LinkBetween(a, c)
	after.Router(c).Interfaces[ac].ACLIn = nil
	diffs, err := sre.Diff(before, after, 3, sre.LinkFailures(0.001), sre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diffs {
		if d.Src == "A" && d.Prefix == "192.0.0.0/2" {
			found = true
			if !d.FailuresOnly {
				t.Error("the ACL deletion should be invisible under no failures")
			}
			if d.ToleranceDelta != [2]int{0, 1} {
				t.Errorf("tolerance delta %v, want {0,1}", d.ToleranceDelta)
			}
		}
	}
	if !found {
		t.Fatal("expected difference for (A, 192.0.0.0/2)")
	}
}

func TestPublicStagesAndPFECs(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	srcT, spfT := v.Stages()
	if srcT <= 0 || spfT <= 0 {
		t.Error("stage timings must be positive")
	}
	if v.NumPFECs() == 0 {
		t.Error("expected PFECs")
	}
}

func TestRequiredBudget(t *testing.T) {
	net, err := sre.ParseNetwork(figure1)
	if err != nil {
		t.Fatal(err)
	}
	k := sre.RequiredBudget(net, sre.LinkFailures(0.001), 1e-4)
	if k < 1 || k > 3 {
		t.Errorf("budget %d out of expected range for 3 links @0.001", k)
	}
	// Round trip of the network format.
	text := sre.FormatNetwork(net)
	if _, err := sre.ParseNetwork(text); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestPublicNodeLimit(t *testing.T) {
	net, err := sre.ParseNetwork(figure1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sre.NewVerifier(net, sre.Options{MaxFailures: -1, BDDNodeLimit: 8})
	if err == nil {
		t.Fatal("expected BDD limit error")
	}
}

func TestPublicLoadBalance(t *testing.T) {
	net, err := sre.ParseNetwork(`
topology
  router A
  router B
  router C
  router D
  link A B
  link A C
  link B D
  link C D
end
router A
  ospf
  exit
end
router B
  ospf
  exit
end
router C
  ospf
  exit
end
router D
  ospf
    network 10.0.0.0/24
  exit
end
`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	n, err := v.LoadBalancedPaths("A", "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("load-balanced paths = %d, want 2", n)
	}
	iso, err := v.IsolationTolerance("A", "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if iso != -1 {
		t.Errorf("isolation tolerance = %d, want -1 (reachable under no failures)", iso)
	}
}

package sre_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sre"
)

// heavyLight is a 5-router BGP full mesh tuned so that one prefix is
// symbolically heavy and the others stay tiny. Router A originates
// 10.0.0.0/8 and lets it flood the mesh (the BDD for its forwarding
// behaviour peaks at a few thousand nodes under an unbounded failure
// budget), while B and C originate 20.0.0.0/8 and 30.0.0.0/8 but deny
// them towards every neighbor, so those prefixes never leave their
// origin (a few dozen nodes). Driving the node limit between the two
// scales exercises every quarantine/degradation path.
const heavyLight = `
topology
  router A
  router B
  router C
  router D
  router E
  link A B
  link A C
  link A D
  link A E
  link B C
  link B D
  link B E
  link C D
  link C E
  link D E
end
router A
  bgp 65001
    network 10.0.0.0/8
end
router B
  bgp 65002
    network 20.0.0.0/8
    neighbor A export-map LOCAL
    neighbor C export-map LOCAL
    neighbor D export-map LOCAL
    neighbor E export-map LOCAL
  route-map LOCAL
    10 deny prefix 20.0.0.0/8
    20 permit any
end
router C
  bgp 65003
    network 30.0.0.0/8
    neighbor A export-map LOCAL
    neighbor B export-map LOCAL
    neighbor D export-map LOCAL
    neighbor E export-map LOCAL
  route-map LOCAL
    10 deny prefix 30.0.0.0/8
    20 permit any
end
router D
  bgp 65004
end
router E
  bgp 65005
end
`

func heavyLightNet(t *testing.T) *sre.Network {
	t.Helper()
	net, err := sre.ParseNetwork(heavyLight)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestResilientDegradesHeavyPrefix drives a three-prefix resilient run
// into a node limit that only the heavy prefix overflows. The run must
// complete: the heavy prefix is quarantined and re-verified abstracted
// (degraded), the light prefixes verify untouched, and every prefix
// stays queryable.
func TestResilientDegradesHeavyPrefix(t *testing.T) {
	net := heavyLightNet(t)
	tel := sre.NewTelemetry()
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures:  -1,
		BDDNodeLimit: 800,
		Resilient:    true,
		Telemetry:    tel,
	})
	if err != nil {
		t.Fatalf("resilient NewVerifier: %v", err)
	}
	defer v.Release()

	if !v.Degraded() {
		t.Error("verifier should report Degraded()")
	}
	outcomes := v.Outcomes()
	if len(outcomes) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outcomes))
	}
	for _, o := range outcomes {
		switch o.Prefix.String() {
		case "10.0.0.0/8":
			if o.Err != nil {
				t.Errorf("heavy prefix failed outright: %v", o.Err)
			}
			if !o.Quarantined || !o.Degraded {
				t.Errorf("heavy prefix: Quarantined=%v Degraded=%v, want both true", o.Quarantined, o.Degraded)
			}
			if len(o.Rungs) == 0 || o.Rungs[0] != sre.RungAbstract {
				t.Errorf("heavy prefix rungs = %v, want [%q ...]", o.Rungs, sre.RungAbstract)
			}
		default:
			if o.Err != nil || o.Quarantined || o.Degraded {
				t.Errorf("light prefix %s: Err=%v Quarantined=%v Degraded=%v, want clean",
					o.Prefix, o.Err, o.Quarantined, o.Degraded)
			}
		}
	}

	// Every prefix — including the degraded one — answers queries.
	if k, err := v.FailureTolerance("D", "10.0.0.0/8"); err != nil {
		t.Errorf("FailureTolerance on degraded prefix: %v", err)
	} else if k < 0 {
		t.Errorf("FailureTolerance on degraded prefix = %d, want >= 0", k)
	}
	if _, err := v.FailureTolerance("B", "20.0.0.0/8"); err != nil {
		t.Errorf("FailureTolerance on light prefix: %v", err)
	}

	// The per-prefix sweep carries the outcome flags through.
	results, err := v.FailureTolerances("D")
	if err != nil {
		t.Fatalf("FailureTolerances: %v", err)
	}
	found := false
	for _, r := range results {
		if r.Prefix == "10.0.0.0/8" {
			found = true
			if !r.Degraded || !r.Quarantined {
				t.Errorf("sweep row for heavy prefix: Degraded=%v Quarantined=%v", r.Degraded, r.Quarantined)
			}
		}
	}
	if !found {
		t.Error("sweep is missing the heavy prefix")
	}

	rep := tel.Snapshot()
	if rep.Counters["resilience.quarantined"] < 1 {
		t.Errorf("resilience.quarantined = %d, want >= 1", rep.Counters["resilience.quarantined"])
	}
	if rep.Counters["resilience.degraded"] < 1 {
		t.Errorf("resilience.degraded = %d, want >= 1", rep.Counters["resilience.degraded"])
	}
	if rep.Counters["resilience.retries"] < 1 {
		t.Errorf("resilience.retries = %d, want >= 1", rep.Counters["resilience.retries"])
	}
}

// TestResilientLadderExhausted squeezes the node limit below what even
// the escalation ladder can satisfy for the heavy prefix. The run still
// completes: the heavy prefix is marked failed (outcome.Err set), its
// queries return an explanatory error, and the light prefixes remain
// fully verified.
func TestResilientLadderExhausted(t *testing.T) {
	net := heavyLightNet(t)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures:  -1,
		BDDNodeLimit: 400,
		Resilient:    true,
	})
	if err != nil {
		t.Fatalf("resilient NewVerifier: %v", err)
	}
	defer v.Release()

	var heavy *sre.PrefixOutcome
	for i, o := range v.Outcomes() {
		if o.Prefix.String() == "10.0.0.0/8" {
			heavy = &v.Outcomes()[i]
		} else if o.Err != nil {
			t.Errorf("light prefix %s failed: %v", o.Prefix, o.Err)
		}
	}
	if heavy == nil {
		t.Fatal("no outcome for the heavy prefix")
	}
	if heavy.Err == nil {
		t.Fatal("heavy prefix should have exhausted the ladder (Err set)")
	}
	if !errors.Is(heavy.Err, sre.ErrBDDLimit) {
		t.Errorf("heavy outcome error = %v, want ErrBDDLimit", heavy.Err)
	}
	if !heavy.Quarantined {
		t.Error("heavy prefix should be quarantined")
	}

	// Queries against the failed prefix explain themselves...
	if _, err := v.FailureTolerance("D", "10.0.0.0/8"); err == nil {
		t.Error("query on failed prefix should error")
	} else if !strings.Contains(err.Error(), "degradation ladder exhausted") {
		t.Errorf("query error %q should mention the exhausted ladder", err)
	}
	// ...while the light prefixes still answer.
	if _, err := v.FailureTolerance("B", "20.0.0.0/8"); err != nil {
		t.Errorf("light prefix query after heavy failure: %v", err)
	}
	if _, err := v.FailureTolerance("C", "30.0.0.0/8"); err != nil {
		t.Errorf("light prefix query after heavy failure: %v", err)
	}

	// Contrast: the same limit without Resilient aborts the whole run.
	if _, err := sre.NewVerifier(net, sre.Options{MaxFailures: -1, BDDNodeLimit: 400}); !errors.Is(err, sre.ErrBDDLimit) {
		t.Errorf("non-resilient run at the same limit: err = %v, want ErrBDDLimit", err)
	}
}

// TestResilientMineSpecs is the spec-mining regression from the issue:
// three prefixes, one forced over a small node limit, must still yield a
// mined spec for the others while the failing prefix is reported as
// degraded (clamped tolerances, DegradedPairs) rather than sinking the
// whole run.
func TestResilientMineSpecs(t *testing.T) {
	net := heavyLightNet(t)
	specs, err := sre.MineSpecs(net, 1, sre.Options{
		BDDNodeLimit: 100,
		Resilient:    true,
	})
	if err != nil {
		t.Fatalf("resilient MineSpecs: %v", err)
	}

	heavyReported := false
	for pfx, o := range specs.Outcomes {
		if pfx.String() != "10.0.0.0/8" {
			continue
		}
		heavyReported = true
		if !o.Quarantined {
			t.Error("heavy prefix should be quarantined in mining outcomes")
		}
	}
	if !heavyReported {
		t.Error("mining outcomes are missing the heavy prefix")
	}

	if len(specs.DegradedPairs) == 0 {
		t.Fatal("no degraded pairs recorded")
	}
	for key := range specs.DegradedPairs {
		if key.Prefix.String() != "10.0.0.0/8" {
			t.Errorf("degraded pair for %s, want only the heavy prefix", key.Prefix)
		}
		// Stratum 0 passed and stratum 1 overflowed, so the surviving
		// verdict must be the clamped lower bound k-1 = 0.
		if got := specs.ReachTolerance[key]; got != 0 {
			t.Errorf("clamped tolerance for %v = %d, want 0", key, got)
		}
	}

	// The light prefixes mined normally: a sound verdict per pair
	// (-1 = unreachable with all links up is sound — the light prefixes
	// never leave their origin).
	light := map[string]bool{}
	for key, tol := range specs.ReachTolerance {
		if specs.DegradedPairs[key] {
			continue
		}
		if tol < -1 {
			t.Errorf("nonsense tolerance %d for %v", tol, key)
		}
		light[key.Prefix.String()] = true
	}
	for _, want := range []string{"20.0.0.0/8", "30.0.0.0/8"} {
		if !light[want] {
			t.Errorf("no sound mined verdict for light prefix %s", want)
		}
	}
}

// TestCancelMidEscalationRung cancels the run the moment the ladder
// announces its first retry rung for the overflowing heavy prefix: the
// cancellation must land inside the rung's re-verification, surface as
// ErrCanceled (an interruption is never "recoverable" — the ladder must
// not swallow it as one more overflow), and abort the whole run instead
// of producing a verifier.
func TestCancelMidEscalationRung(t *testing.T) {
	net := heavyLightNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawRung atomic.Bool
	_, err := sre.NewVerifier(net, sre.Options{
		MaxFailures:  -1,
		BDDNodeLimit: 800,
		Resilient:    true,
		Context:      ctx,
		Progress: sre.ProgressFunc(func(e sre.ProgressEvent) {
			if e.Stage == "resilience" && strings.Contains(e.Detail, "retrying on rung") {
				sawRung.Store(true)
				cancel()
			}
		}),
	})
	if !sawRung.Load() {
		t.Fatal("run never reached an escalation rung (node-limit tuning drifted?)")
	}
	if err == nil {
		t.Fatal("run canceled mid-rung should not produce a verifier")
	}
	if !errors.Is(err, sre.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, sre.ErrBDDLimit) {
		t.Error("cancellation must not be misattributed to the node limit")
	}
}

// TestCancelBetweenStages cancels the run the moment SRC reports its
// final progress event; the deterministic stage-boundary check must stop
// the pipeline before forwarding starts.
func TestCancelBetweenStages(t *testing.T) {
	net := heavyLightNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: -1,
		Context:     ctx,
		Progress: sre.ProgressFunc(func(e sre.ProgressEvent) {
			if e.Stage == "src" && e.Final {
				cancel()
			}
		}),
	})
	if err == nil {
		t.Fatal("canceled run should not produce a verifier")
	}
	if !errors.Is(err, sre.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stage := sre.ErrStage(err); stage != "spf" {
		t.Errorf("ErrStage = %q, want %q (the SRC→SPF boundary)", stage, "spf")
	}
}

// TestPreCanceledContext aborts before any symbolic work happens.
func TestPreCanceledContext(t *testing.T) {
	net := heavyLightNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := sre.NewVerifier(net, sre.Options{MaxFailures: -1, Context: ctx})
	if !errors.Is(err, sre.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, sre.ErrDeadline) {
		t.Error("cancellation must not read as a deadline")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("abort took %v, want well under one polling interval", d)
	}
}

// TestDeadlineExpiry arms an already-expired deadline; the run must
// abort with ErrDeadline (distinct from ErrCanceled) at the first poll.
func TestDeadlineExpiry(t *testing.T) {
	net := heavyLightNet(t)
	_, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: -1,
		Timeout:     time.Nanosecond,
	})
	if !errors.Is(err, sre.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, sre.ErrCanceled) {
		t.Error("deadline expiry must not read as cancellation")
	}
	if stage := sre.ErrStage(err); stage == "" {
		t.Error("deadline error should carry the interrupted stage")
	}
}

// TestDeadlineOnQueries verifies MineSpecs honours the budget too.
func TestDeadlineOnQueries(t *testing.T) {
	net := heavyLightNet(t)
	_, err := sre.MineSpecs(net, 2, sre.Options{Timeout: time.Nanosecond})
	if !errors.Is(err, sre.ErrDeadline) {
		t.Fatalf("MineSpecs err = %v, want ErrDeadline", err)
	}
}

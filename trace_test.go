package sre_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"sre"
	"sre/internal/workload"
)

// TestTraceExportMatchesMetrics is the end-to-end contract of the
// flight recorder: a fat-tree run with a recorder produces a Chrome
// trace whose per-worker "src"+"spf" span durations sum to the stage
// wall time reported by Verifier.Metrics (within 5%), with one named
// track per scheduler worker.
func TestTraceExportMatchesMetrics(t *testing.T) {
	net := workload.FatTree(4, workload.BGP)
	rec := sre.NewFlightRecorder(0)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 2, Parallelism: 4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	m := v.Metrics()

	var buf bytes.Buffer
	env := sre.Environment()
	env.BDDKernel = "flat"
	env.Parallelism = 4
	if err := rec.WriteChromeTrace(&buf, env); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Dur  float64                `json:"dur"` // microseconds
			TID  int32                  `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		OtherData sre.EnvInfo `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.OtherData != env {
		t.Errorf("trace otherData = %+v, want the run environment %+v", trace.OtherData, env)
	}

	var srcUs, spfUs float64
	workers := map[int32]bool{}
	tracks := 0
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" {
			tracks++
			continue
		}
		workers[e.TID] = true
		switch e.Name {
		case "src":
			srcUs += e.Dur
		case "spf":
			spfUs += e.Dur
		}
	}
	if tracks != len(workers) {
		t.Errorf("%d thread_name tracks for %d distinct workers", tracks, len(workers))
	}
	if len(workers) < 2 {
		t.Errorf("expected spans on multiple worker tracks at parallelism 4, got %v", workers)
	}

	wantUs := (m.SRCSeconds + m.SPFSeconds) * 1e6
	gotUs := srcUs + spfUs
	if wantUs <= 0 {
		t.Fatalf("metrics report zero stage time: %+v", m)
	}
	if rel := math.Abs(gotUs-wantUs) / wantUs; rel > 0.05 {
		t.Errorf("trace src+spf spans sum to %.0fµs, metrics report %.0fµs (%.1f%% off, want <5%%)",
			gotUs, wantUs, 100*rel)
	}
}

// TestEventLogExport: the NDJSON export of the same run parses back
// with matching environment and covers every pipeline stage the run
// exercised.
func TestEventLogExport(t *testing.T) {
	net := workload.FatTree(4, workload.BGP)
	rec := sre.NewFlightRecorder(0)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 1, Parallelism: 2, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()

	var buf bytes.Buffer
	env := sre.Environment()
	if err := rec.WriteEventLog(&buf, env); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := sre.ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Env != env {
		t.Errorf("event log env = %+v, want %+v", hdr.Env, env)
	}
	if hdr.Events != len(events) || len(events) == 0 {
		t.Fatalf("header says %d events, log holds %d", hdr.Events, len(events))
	}
	stages := map[string]bool{}
	for _, e := range events {
		stages[e.Stage] = true
	}
	for _, want := range []string{"src", "src.run", "spf", "task", "prefix"} {
		if !stages[want] {
			t.Errorf("event log is missing stage %q (got %v)", want, stages)
		}
	}
}
